// Shared narration helpers for the example programs.
#pragma once

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "core/deployment.h"
#include "sim/simulation.h"

namespace oftt::examples {

inline void banner(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void note(sim::Simulation& sim, const std::string& text) {
  std::printf("[t=%7.3fs] %s\n", sim::to_seconds(sim.now()), text.c_str());
}

inline std::string role_line(core::PairDeployment& dep) {
  auto role_of = [](core::Engine* e) {
    return e ? core::role_name(e->role()) : "(engine down)";
  };
  return std::string("nodeA=") + role_of(dep.engine_a()) + "  nodeB=" + role_of(dep.engine_b());
}

}  // namespace oftt::examples
