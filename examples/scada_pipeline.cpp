// Fig. 1(b): integrated monitoring and control. A PLC (simulated
// device) is wrapped by an OPC server application (stateless — OPC
// *server* FTIM, no checkpoints); an OPC client application subscribes
// to its items, keeps running statistics (checkpointed — OPC *client*
// FTIM) and commands a valve when the tank level runs high. Both
// applications are replicated across the redundant pair, and both kinds
// of FTIM are exercised through a node failure.
//
// Run:  ./scada_pipeline
#include <cstdio>

#include "core/api.h"
#include "core/deployment.h"
#include "example_util.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"
#include "sim/timer.h"

using namespace oftt;
using namespace oftt::examples;

namespace {

const Clsid kPlcServerClsid = Guid::from_name("CLSID_ScadaPlcServer");

// The OPC server application: wraps the PLC device driver; stateless,
// so it uses the OPC-server FTIM (no checkpoints, heartbeats only).
void make_opc_server_app(sim::Process& process) {
  auto plc = std::make_shared<opc::PlcDevice>("PLC1", sim::milliseconds(50));
  plc->add_input("Tank.Level",
                 std::make_unique<opc::SineSignal>(60.0, 35.0, 40.0, /*noise=*/1.0));
  plc->add_input("Line.Speed", std::make_unique<opc::RandomWalkSignal>(100, 2, 80, 120));
  plc->add_input("Motor.Running", std::make_unique<opc::SquareSignal>(13.0));
  plc->add_output("Valve.Open", opc::OpcValue::from_bool(false));
  opc::install_opc_server(process, kPlcServerClsid, plc, "SoHaR simulated PLC");

  core::FtimOptions opts;
  opts.component = "opcserver";
  opts.kind = core::FtimKind::kOpcServer;  // stateless: no checkpointing
  core::OFTTInitialize(process, opts);
}

// The OPC client application: monitoring + control logic with
// checkpointable statistics.
class ScadaClientApp {
 public:
  explicit ScadaClientApp(sim::Process& process) : process_(&process) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("scada_main", 0x401000);
    region_ = &rt.memory().alloc("globals", 64);
    samples_ = nt::Cell<std::int64_t>(region_, 0);
    high_alarms_ = nt::Cell<std::int64_t>(region_, 8);
    valve_cmds_ = nt::Cell<std::int64_t>(region_, 16);

    core::FtimOptions opts;
    opts.component = "scada_client";
    opts.kind = core::FtimKind::kOpcClient;
    opts.checkpoint_period = sim::milliseconds(250);
    core::OFTTInitialize(process, opts);

    core::Ftim& ftim = *core::Ftim::find(process);
    ftim.on_activate([this](bool) { start_monitoring(); });
    ftim.on_deactivate([this] { conn_.reset(); });
  }

  std::int64_t samples() const { return samples_.get(); }
  std::int64_t high_alarms() const { return high_alarms_.get(); }
  std::int64_t valve_cmds() const { return valve_cmds_.get(); }

  static ScadaClientApp* find(sim::Node& node) {
    auto proc = node.find_process("scada_client");
    return proc && proc->alive() ? proc->find_attachment<ScadaClientApp>() : nullptr;
  }

 private:
  void start_monitoring() {
    // Fig. 2: the OPC client app talks to the OPC server app on its own
    // node — both are replicated as part of the logical unit.
    opc::OpcConnection::Config cfg;
    cfg.update_rate = sim::milliseconds(100);
    cfg.staleness_timeout = sim::seconds(1);
    conn_ = std::make_unique<opc::OpcConnection>(*process_, process_->node().id(),
                                                 kPlcServerClsid, cfg);
    conn_->subscribe({"Tank.Level", "Line.Speed"},
                     [this](const std::vector<opc::ItemState>& items) {
                       for (const auto& item : items) on_item(item);
                     });
  }

  void on_item(const opc::ItemState& item) {
    if (item.quality != opc::Quality::kGood) return;
    samples_.set(samples_.get() + 1);
    if (item.item_id == "Tank.Level") {
      bool high = item.value.as_real() > 85.0;
      if (high && !valve_open_) {
        high_alarms_.set(high_alarms_.get() + 1);
        command_valve(true);
      } else if (!high && valve_open_ && item.value.as_real() < 70.0) {
        command_valve(false);
      }
    }
  }

  void command_valve(bool open) {
    valve_open_ = open;
    valve_cmds_.set(valve_cmds_.get() + 1);
    conn_->write("Valve.Open", opc::OpcValue::from_bool(open), nullptr);
  }

  sim::Process* process_;
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> samples_, high_alarms_, valve_cmds_;
  std::unique_ptr<opc::OpcConnection> conn_;
  bool valve_open_ = false;
};

void report(core::PairDeployment& dep, const char* when) {
  int primary = dep.primary_node();
  std::printf("\n-- %s --\n   roles: %s\n", when, role_line(dep).c_str());
  if (primary < 0) return;
  if (ScadaClientApp* app = ScadaClientApp::find(*dep.node_by_id(primary))) {
    std::printf("   primary stats: %lld samples, %lld high alarms, %lld valve commands\n",
                static_cast<long long>(app->samples()),
                static_cast<long long>(app->high_alarms()),
                static_cast<long long>(app->valve_cmds()));
  }
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  sim::Simulation sim(/*seed=*/77);

  banner("SCADA pipeline: PLC -> OPC server app -> OPC client app");
  // The deployment's app_factory builds the OPC client app; the OPC
  // server app is added to each node's boot via a custom factory below.
  core::PairDeploymentOptions opts;
  opts.unit = "scada";
  opts.app_process = "scada_client";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<ScadaClientApp>(proc); };
  core::PairDeployment dep(sim, opts);
  // Add the OPC server application to both nodes (and to reboots).
  for (sim::Node* node : {&dep.node_a(), &dep.node_b()}) {
    auto base = [node] {
      node->start_process("opcserver", make_opc_server_app);
    };
    base();
  }

  sim.run_for(sim::seconds(60));
  report(dep, "after 60 s of monitoring and control");

  banner("OPC server application failure (stateless server FTIM path)");
  dep.node_a().find_process("opcserver")->kill("driver fault");
  note(sim, "opcserver killed on nodeA — engine restarts it locally; the "
            "client's staleness watchdog reconnects");
  sim.run_for(sim::seconds(30));
  report(dep, "30 s after OPC server failure");

  banner("Node failure (checkpointed client FTIM path)");
  dep.node_a().crash();
  note(sim, "nodeA power failure injected");
  sim.run_for(sim::seconds(45));
  report(dep, "45 s after node failure — statistics continued from checkpoint");

  std::printf("\ncheckpoints sent: %llu (client app only — the OPC server FTIM is stateless "
              "and sent %s)\n",
              static_cast<unsigned long long>(sim.counter_value("oftt.checkpoints_sent")),
              "none");
  return 0;
}
