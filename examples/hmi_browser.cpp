// An operator HMI session: browse an OPC server's address space, pick
// the interesting tags, subscribe with a percent deadband so jittery
// analog values don't flood the screen, and survive a server restart
// without operator action.
//
// Run:  ./hmi_browser
#include <cstdio>

#include "dcom/scm.h"
#include "example_util.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"

using namespace oftt;
using namespace oftt::examples;

namespace {

const Clsid kClsid = Guid::from_name("CLSID_HmiDemoPlc");

void install_plant(sim::Node& node) {
  dcom::install_scm(node);
  node.start_process("opcserver", [](sim::Process& proc) {
    auto plc = std::make_shared<opc::PlcDevice>("PLC7", sim::milliseconds(50));
    plc->add_input("Boiler.Temp", std::make_unique<opc::SineSignal>(180, 15, 45, 1.2));
    plc->add_input("Boiler.Pressure", std::make_unique<opc::RandomWalkSignal>(12, 0.2, 8, 16));
    plc->add_input("Feed.Flow", std::make_unique<opc::RandomWalkSignal>(40, 1.0, 20, 60));
    plc->add_input("Burner.On", std::make_unique<opc::SquareSignal>(30));
    plc->add_output("Damper.Cmd", opc::OpcValue::from_real(0.5));
    opc::install_opc_server(proc, kClsid, plc, "SoHaR boiler PLC");
  });
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  sim::Simulation sim(/*seed=*/808);

  sim::Node& plant = sim.add_node("plant_pc");
  sim::Node& hmi_pc = sim.add_node("hmi_pc");
  auto& lan = sim.add_network("lan");
  lan.attach(plant.id());
  lan.attach(hmi_pc.id());
  plant.set_boot_script(install_plant);
  plant.boot();
  hmi_pc.boot();

  auto hmi = hmi_pc.start_process("hmi", nullptr);
  opc::OpcConnection::Config cfg;
  cfg.update_rate = sim::milliseconds(100);
  cfg.staleness_timeout = sim::seconds(1);
  auto conn = std::make_shared<opc::OpcConnection>(*hmi, plant.id(), kClsid, cfg);
  hmi->add_component(conn);

  banner("Browsing the server's address space");
  std::vector<std::string> boiler_tags;
  conn->browse("", [&](HRESULT hr, const std::vector<std::string>& ids) {
    note(sim, "full address space (" + hresult_to_string(hr) + "):");
    for (const auto& id : ids) std::printf("    %s\n", id.c_str());
  });
  conn->browse("Boiler.", [&](HRESULT, const std::vector<std::string>& ids) {
    boiler_tags = ids;
  });
  sim.run_for(sim::milliseconds(200));
  note(sim, "subscribing to " + std::to_string(boiler_tags.size()) + " Boiler.* tags");

  std::map<std::string, double> latest;
  std::uint64_t updates = 0;
  conn->subscribe(boiler_tags, [&](const std::vector<opc::ItemState>& items) {
    for (const auto& i : items) {
      latest[i.item_id] = i.value.as_real();
      ++updates;
    }
  });
  sim.run_for(sim::seconds(10));
  note(sim, "after 10 s: " + std::to_string(updates) + " updates");
  for (const auto& [tag, value] : latest) {
    std::printf("    %-18s %8.2f\n", tag.c_str(), value);
  }

  banner("Server restart mid-session");
  plant.find_process("opcserver")->kill("patch installation");
  note(sim, "OPC server killed (SCM will relaunch on next activation)");
  std::uint64_t before = updates;
  sim.run_for(sim::seconds(8));
  note(sim, "updates resumed without operator action: +" +
               std::to_string(updates - before) + " (reconnects: " +
               std::to_string(conn->reconnects()) + ")");

  banner("Writing a setpoint");
  conn->write("Damper.Cmd", opc::OpcValue::from_real(0.75), [&](HRESULT hr) {
    note(sim, std::string("Damper.Cmd <- 0.75: ") + hresult_to_string(hr));
  });
  sim.run_for(sim::milliseconds(200));
  return 0;
}
