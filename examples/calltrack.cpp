// The paper's §4 demonstration, end to end.
//
// "The application keeps track of the usage of a simulated small office
// telephone system that consists of 5 telephone lines and 10 callers.
// Numbers of busy lines are displayed in the histogram."
//
// Hardware configuration (Fig. 3): two redundant nodes run the Call
// Track application (linked to the OFTT client FTIM) and the OFTT
// engine; the third PC runs the System Monitor, the Telephone System
// Simulator and the Calling History generator. We demonstrate continued
// operation through the paper's four failure classes:
//   (a) node failure, (b) NT crash, (c) application software failure,
//   (d) OFTT middleware failure.
//
// Run:  ./calltrack
#include <cstdio>

#include "core/api.h"
#include "core/deployment.h"
#include "core/diverter.h"
#include "example_util.h"
#include "msmq/queue_manager.h"
#include "opc/devices/telephone.h"
#include "sim/timer.h"

using namespace oftt;
using namespace oftt::examples;

namespace {

constexpr const char* kEventQueue = "calltrack.events";
constexpr int kLines = 5;

// ---------------------------------------------------------------------
// The Call Track application (runs on both pair nodes; client FTIM).
// State layout in the "globals" region — all of it checkpointed:
//   [0..7]   events processed
//   [8..15]  current busy-line count
//   [16..]   histogram: samples observed at busy level 0..kLines
// ---------------------------------------------------------------------
class CallTrackApp {
 public:
  explicit CallTrackApp(sim::Process& process)
      : process_(&process), sample_timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("calltrack_main", 0x401000);
    region_ = &rt.memory().alloc("globals", 128);
    events_ = nt::Cell<std::int64_t>(region_, 0);
    busy_ = nt::Cell<std::int64_t>(region_, 8);

    core::FtimOptions opts;
    opts.component = "calltrack";
    opts.checkpoint_period = sim::milliseconds(250);
    core::OFTTInitialize(process, opts);

    core::Ftim& ftim = *core::Ftim::find(process);
    ftim.on_activate([this](bool restored) {
      std::printf("          calltrack on %s activated (%s, %lld events so far)\n",
                  process_->node().name().c_str(),
                  restored ? "restored" : "cold",
                  static_cast<long long>(events_.get()));
      msmq::MsmqApi::of(*process_).subscribe(kEventQueue, [this](const msmq::Message& m) {
        on_event(m);
      });
      sample_timer_.start(sim::milliseconds(100), [this] { sample_histogram(); });
    });
    ftim.on_deactivate([this] { sample_timer_.stop(); });
  }

  std::int64_t events() const { return events_.get(); }
  std::int64_t histogram_bin(int busy) const {
    return region_->read<std::int64_t>(16 + static_cast<std::size_t>(busy) * 8);
  }
  std::int64_t histogram_total() const {
    std::int64_t sum = 0;
    for (int i = 0; i <= kLines; ++i) sum += histogram_bin(i);
    return sum;
  }

  std::string histogram_ascii() const {
    std::string out;
    std::int64_t total = std::max<std::int64_t>(histogram_total(), 1);
    for (int i = 0; i <= kLines; ++i) {
      char line[96];
      int bars = static_cast<int>(histogram_bin(i) * 50 / total);
      std::snprintf(line, sizeof line, "  %d busy |%-50s| %lld\n", i,
                    std::string(static_cast<std::size_t>(bars), '#').c_str(),
                    static_cast<long long>(histogram_bin(i)));
      out += line;
    }
    return out;
  }

  static CallTrackApp* find(sim::Node& node) {
    auto proc = node.find_process("calltrack");
    return proc && proc->alive() ? proc->find_attachment<CallTrackApp>() : nullptr;
  }

 private:
  void on_event(const msmq::Message& m) {
    BinaryReader r(m.body);
    opc::CallEvent e = opc::CallEvent::unmarshal(r);
    if (r.failed()) return;
    if (e.kind == opc::CallEvent::Kind::kStart) {
      busy_.set(std::min<std::int64_t>(busy_.get() + 1, kLines));
    } else if (e.kind == opc::CallEvent::Kind::kEnd) {
      busy_.set(std::max<std::int64_t>(busy_.get() - 1, 0));
    }
    events_.set(events_.get() + 1);
    // Event-based checkpoint: processed history survives any failure.
    core::OFTTSave(*process_);
  }

  void sample_histogram() {
    auto bin = static_cast<std::size_t>(busy_.get());
    std::size_t off = 16 + bin * 8;
    region_->write<std::int64_t>(off, region_->read<std::int64_t>(off) + 1);
  }

  sim::Process* process_;
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> events_;
  nt::Cell<std::int64_t> busy_;
  sim::PeriodicTimer sample_timer_;
};

// ---------------------------------------------------------------------
// Test-PC software (Table 1): telephone simulator + history generator.
// ---------------------------------------------------------------------
struct TestPcSoftware {
  std::shared_ptr<opc::TelephoneSystem> telephone;
  std::shared_ptr<core::MessageDiverter> diverter;
};

TestPcSoftware install_test_pc(core::PairDeployment& dep) {
  TestPcSoftware sw;
  auto telsim = dep.monitor_node().start_process("telsim", nullptr);

  core::DiverterOptions dopts;
  dopts.unit = "calltrack";
  dopts.queue = kEventQueue;
  dopts.node_a = dep.node_a().id();
  dopts.node_b = dep.node_b().id();
  sw.diverter = std::make_shared<core::MessageDiverter>(*telsim, dopts);
  telsim->add_component(sw.diverter);

  opc::TelephoneSystem::Config tcfg;
  tcfg.lines = kLines;
  tcfg.callers = 10;
  tcfg.mean_think_s = 6.0;
  tcfg.mean_hold_s = 5.0;
  sw.telephone = std::make_shared<opc::TelephoneSystem>(tcfg);
  auto diverter = sw.diverter;
  sw.telephone->set_event_listener([diverter](const opc::CallEvent& e) {
    BinaryWriter w;
    e.marshal(w);
    diverter->send("call", std::move(w).take());
  });
  sw.telephone->start(telsim->main_strand(), telsim->sim().fork_rng("telsim"));
  telsim->add_component(sw.telephone);

  // Calling History generator: replays synthetic history records into
  // the same unit (a second non-replicated source).
  auto histgen = dep.monitor_node().start_process("histgen", nullptr);
  core::DiverterOptions hopts = dopts;
  auto hist_diverter = std::make_shared<core::MessageDiverter>(*histgen, hopts);
  histgen->add_component(hist_diverter);
  auto timer = std::make_shared<sim::PeriodicTimer>(histgen->main_strand());
  timer->start(sim::seconds(2), [hist_diverter] {
    opc::CallEvent e;  // a no-op history marker record
    e.kind = opc::CallEvent::Kind::kBlocked;
    e.caller = -1;
    BinaryWriter w;
    e.marshal(w);
    hist_diverter->send("history", std::move(w).take());
  });
  histgen->add_component(timer);
  return sw;
}

void show_state(sim::Simulation& sim, core::PairDeployment& dep, const char* when) {
  int primary = dep.primary_node();
  std::printf("\n-- %s --\n   roles: %s\n", when, role_line(dep).c_str());
  if (primary < 0) {
    std::printf("   (no primary)\n");
    return;
  }
  CallTrackApp* app = CallTrackApp::find(*dep.node_by_id(primary));
  if (app == nullptr) {
    std::printf("   (calltrack app not running on primary)\n");
    return;
  }
  std::printf("   primary: node %d, %lld call events processed\n", primary,
              static_cast<long long>(app->events()));
  std::printf("   busy-line histogram (time samples per level):\n%s",
              app->histogram_ascii().c_str());
  (void)sim;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  sim::Simulation sim(/*seed=*/1955);

  banner("Call Track demonstration (paper section 4)");
  core::PairDeploymentOptions opts;
  opts.unit = "calltrack";
  opts.app_process = "calltrack";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CallTrackApp>(proc); };
  core::PairDeployment dep(sim, opts);
  TestPcSoftware test_pc = install_test_pc(dep);

  sim.run_for(sim::seconds(30));
  show_state(sim, dep, "steady state after 30 s of call traffic");

  banner("(a) node failure");
  dep.node_a().crash();
  note(sim, "nodeA power failure injected");
  sim.run_for(sim::seconds(30));
  show_state(sim, dep, "30 s after node failure");
  dep.node_a().boot();
  sim.run_for(sim::seconds(10));
  note(sim, "nodeA repaired and rejoined: " + role_line(dep));

  banner("(b) NT crash (blue screen of death)");
  dep.node_b().os_crash(sim::seconds(15));
  note(sim, "nodeB blue-screened; will auto-reboot in 15 s");
  sim.run_for(sim::seconds(30));
  show_state(sim, dep, "30 s after NT crash (nodeB rebooted and rejoined)");

  banner("(c) application software failure");
  {
    int primary = dep.primary_node();
    dep.node_by_id(primary)->find_process("calltrack")->kill("injected app fault");
    note(sim, "calltrack application crashed on primary");
  }
  sim.run_for(sim::seconds(30));
  show_state(sim, dep, "30 s after application failure (local restart)");

  banner("(d) OFTT middleware failure");
  {
    int primary = dep.primary_node();
    dep.node_by_id(primary)->find_process("oftt_engine")->kill("injected middleware fault");
    note(sim, "OFTT engine killed on primary");
  }
  sim.run_for(sim::seconds(30));
  show_state(sim, dep, "30 s after middleware failure");

  banner("Result");
  std::printf(
      "telephone simulator: %llu calls placed, %llu blocked; unit processed events through "
      "all four failure classes without losing its history.\n",
      static_cast<unsigned long long>(test_pc.telephone->total_calls()),
      static_cast<unsigned long long>(test_pc.telephone->blocked_calls()));
  std::printf("takeovers: %llu, local restarts: %llu, engine restarts: %llu\n",
              static_cast<unsigned long long>(sim.counter_value("oftt.takeovers")),
              static_cast<unsigned long long>(sim.counter_value("oftt.local_restarts")),
              static_cast<unsigned long long>(sim.counter_value("oftt.engine_restarts")));
  if (auto* monitor = dep.monitor()) {
    std::printf("\nSystem Monitor board:\n%s", monitor->render().c_str());
  }
  return 0;
}
