// Watchdogs and OFTTDistress: the two APIs for failures that heartbeats
// cannot see.
//
//  * A wedged main loop: the FTIM thread keeps heartbeating, so only
//    the reliable watchdog (deadline tracked inside the engine process)
//    catches the hang.
//  * An application-detected problem (e.g. parity errors on a sensor
//    bus): the app calls OFTTDistress to request a switchover while it
//    still can.
//
// Run:  ./watchdog_distress
#include <cstdio>

#include "core/api.h"
#include "core/deployment.h"
#include "example_util.h"
#include "sim/timer.h"

using namespace oftt;
using namespace oftt::examples;

namespace {

class ControlLoopApp {
 public:
  explicit ControlLoopApp(sim::Process& process)
      : process_(&process), loop_timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("control_loop", 0x401000);
    region_ = &rt.memory().alloc("globals", 32);
    iterations_ = nt::Cell<std::int64_t>(region_, 0);

    core::OFTTInitialize(process, {});
    core::Ftim& ftim = *core::Ftim::find(process);
    ftim.on_activate([this](bool) {
      // The control loop must complete an iteration every 200 ms; give
      // the watchdog 3x slack.
      core::OFTTWatchdogCreate(*process_, "control_loop", sim::milliseconds(600));
      loop_timer_.start(sim::milliseconds(200), [this] {
        iterations_.set(iterations_.get() + 1);
        core::OFTTWatchdogReset(*process_, "control_loop");
      });
    });
    ftim.on_deactivate([this] { loop_timer_.stop(); });
  }

  std::int64_t iterations() const { return iterations_.get(); }

  static ControlLoopApp* find(sim::Node& node) {
    auto proc = node.find_process("app");
    return proc && proc->alive() ? proc->find_attachment<ControlLoopApp>() : nullptr;
  }

 private:
  sim::Process* process_;
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> iterations_;
  sim::PeriodicTimer loop_timer_;
};

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  sim::Simulation sim(/*seed=*/4242);

  banner("Watchdog: catching a wedged control loop");
  core::PairDeploymentOptions opts;
  opts.unit = "controller";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<ControlLoopApp>(proc); };
  core::PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  note(sim, "pair formed: " + role_line(dep));
  note(sim, "control loop iterations on primary: " +
               std::to_string(ControlLoopApp::find(dep.node_a())->iterations()));

  // Wedge only the main thread. Heartbeats (FTIM thread) keep flowing.
  dep.node_a().find_process("app")->main_strand().hang();
  note(sim, "main thread wedged — FTIM heartbeats still flowing");
  sim.run_for(sim::seconds(3));
  note(sim, "watchdog expiries: " +
               std::to_string(sim.counter_value("oftt.watchdog_expired")) +
               ", local restarts: " + std::to_string(sim.counter_value("oftt.local_restarts")));
  note(sim, "loop recovered; iterations now: " +
               std::to_string(ControlLoopApp::find(dep.node_a())->iterations()));

  banner("Distress: the application requests a switchover itself");
  note(sim, "roles before distress: " + role_line(dep));
  {
    auto proc = dep.node_a().find_process("app");
    core::OFTTDistress(*proc, "sensor bus parity errors beyond threshold");
  }
  sim.run_for(sim::seconds(3));
  note(sim, "roles after distress:  " + role_line(dep));
  note(sim, "new primary iterations: " +
               std::to_string(ControlLoopApp::find(dep.node_b())->iterations()) +
               " (state carried over in checkpoint)");

  banner("Distress with no healthy peer is refused");
  dep.node_a().crash();
  sim.run_for(sim::seconds(2));
  {
    auto proc = dep.node_b().find_process("app");
    core::OFTTDistress(*proc, "second fault");  // engine logs, keeps serving
  }
  sim.run_for(sim::seconds(2));
  note(sim, "roles: " + role_line(dep) + " — lone node keeps serving");
  return 0;
}
