// Quickstart: make an application fault tolerant with one line.
//
// A process-monitoring app keeps a running total in a checkpointable
// memory region. Adding `OFTTInitialize(...)` is all it takes to get:
// primary/backup role management, periodic checkpointing to the peer
// node, failure detection, and automatic switchover.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/api.h"
#include "core/deployment.h"
#include "example_util.h"
#include "sim/timer.h"

using namespace oftt;
using namespace oftt::examples;

namespace {

// An ordinary monitoring application: totals samples from a (simulated)
// sensor. Its only OFTT integration is the OFTTInitialize call.
class TotalizerApp {
 public:
  explicit TotalizerApp(sim::Process& process) : timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("main", 0x401000);
    region_ = &rt.memory().alloc("globals", 64);
    total_ = nt::Cell<std::int64_t>(region_, 0);

    core::OFTTInitialize(process, {});  // <-- the one line

    core::Ftim::find(process)->on_activate([this](bool restored) {
      std::printf("          app activated (%s)\n",
                  restored ? "state restored from checkpoint" : "cold start");
      timer_.start(sim::milliseconds(100), [this] { total_.set(total_.get() + 1); });
    });
    core::Ftim::find(process)->on_deactivate([this] { timer_.stop(); });
  }

  std::int64_t total() const { return total_.get(); }

 private:
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> total_;
  sim::PeriodicTimer timer_;
};

std::int64_t total_on(sim::Node& node) {
  auto proc = node.find_process("app");
  if (!proc || !proc->alive()) return -1;
  auto* app = proc->find_attachment<TotalizerApp>();
  return app ? app->total() : -1;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  sim::Simulation sim(/*seed=*/2026);

  banner("OFTT quickstart: redundant pair + one-line integration");
  core::PairDeploymentOptions opts;
  opts.unit = "totalizer";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<TotalizerApp>(proc); };
  core::PairDeployment dep(sim, opts);

  sim.run_for(sim::seconds(5));
  note(sim, "pair formed: " + role_line(dep));
  note(sim, "primary total = " + std::to_string(total_on(dep.node_a())) +
               ", backup total = " + std::to_string(total_on(dep.node_b())) +
               " (backup copy is passive)");

  banner("Injecting a node failure on the primary");
  dep.node_a().crash();
  note(sim, "nodeA power failure injected");
  sim.run_for(sim::seconds(2));
  note(sim, "after detection + switchover: " + role_line(dep));
  note(sim, "new primary total = " + std::to_string(total_on(dep.node_b())) +
               " (restored from last checkpoint, then continued)");

  sim.run_for(sim::seconds(3));
  note(sim, "3 s later, total = " + std::to_string(total_on(dep.node_b())) +
               " — the unit never stopped counting");

  std::printf("\nDone. Checkpoints sent: %llu, takeovers: %llu\n",
              static_cast<unsigned long long>(sim.counter_value("oftt.checkpoints_sent")),
              static_cast<unsigned long long>(sim.counter_value("oftt.takeovers")));
  return 0;
}
