// COM runtime tests: identity rules, refcounting, QueryInterface,
// ComPtr semantics, class factories and activation.
#include <gtest/gtest.h>

#include "com/runtime.h"
#include "sim/simulation.h"

namespace oftt::com {
namespace {

struct IFoo : IUnknown {
  OFTT_COM_INTERFACE_ID(IFoo)
  virtual int foo() = 0;
};
struct IBar : IUnknown {
  OFTT_COM_INTERFACE_ID(IBar)
  virtual int bar() = 0;
};
struct IBaz : IUnknown {
  OFTT_COM_INTERFACE_ID(IBaz)
};

int g_live_objects = 0;

class FooBar final : public Object<FooBar, IFoo, IBar> {
 public:
  FooBar() { ++g_live_objects; }
  ~FooBar() override { --g_live_objects; }
  int foo() override { return 1; }
  int bar() override { return 2; }
};

TEST(ComObject, BornWithOneReferenceAndDiesAtZero) {
  g_live_objects = 0;
  {
    auto obj = FooBar::create();
    EXPECT_EQ(g_live_objects, 1);
    EXPECT_EQ(obj->ref_count(), 1u);
    obj->AddRef();
    EXPECT_EQ(obj->ref_count(), 2u);
    obj->Release();
    EXPECT_EQ(obj->ref_count(), 1u);
  }
  EXPECT_EQ(g_live_objects, 0);
}

TEST(ComObject, QueryInterfaceForEachListedInterface) {
  auto obj = FooBar::create();
  IFoo* foo = nullptr;
  IBar* bar = nullptr;
  EXPECT_EQ(obj->QueryInterface(IFoo::iid(), reinterpret_cast<void**>(&foo)), S_OK);
  EXPECT_EQ(obj->QueryInterface(IBar::iid(), reinterpret_cast<void**>(&bar)), S_OK);
  EXPECT_EQ(foo->foo(), 1);
  EXPECT_EQ(bar->bar(), 2);
  foo->Release();
  bar->Release();
}

TEST(ComObject, QueryInterfaceUnknownIidFails) {
  auto obj = FooBar::create();
  void* p = reinterpret_cast<void*>(0x1);
  EXPECT_EQ(obj->QueryInterface(IBaz::iid(), &p), E_NOINTERFACE);
  EXPECT_EQ(p, nullptr) << "out param must be nulled on failure";
  EXPECT_EQ(obj->QueryInterface(IFoo::iid(), nullptr), E_POINTER);
}

TEST(ComObject, IUnknownIdentityIsStable) {
  auto obj = FooBar::create();
  IUnknown* u1 = nullptr;
  IUnknown* u2 = nullptr;
  // QI for IUnknown from different interfaces must yield the same pointer.
  obj->QueryInterface(IUnknown::iid(), reinterpret_cast<void**>(&u1));
  auto bar = obj.as<IBar>();
  bar->QueryInterface(IUnknown::iid(), reinterpret_cast<void**>(&u2));
  EXPECT_EQ(u1, u2);
  u1->Release();
  u2->Release();
}

TEST(ComPtr, CopyAndMoveManageReferences) {
  g_live_objects = 0;
  {
    auto a = FooBar::create();
    ComPtr<IFoo> f = a.as<IFoo>();
    EXPECT_EQ(a->ref_count(), 2u);
    ComPtr<IFoo> g = f;  // copy
    EXPECT_EQ(a->ref_count(), 3u);
    ComPtr<IFoo> h = std::move(g);  // move: no count change
    EXPECT_EQ(a->ref_count(), 3u);
    EXPECT_FALSE(g);  // NOLINT(bugprone-use-after-move)
    h.reset();
    EXPECT_EQ(a->ref_count(), 2u);
  }
  EXPECT_EQ(g_live_objects, 0);
}

TEST(ComPtr, AttachDetachDoNotTouchCount) {
  auto a = FooBar::create();
  a->AddRef();
  ComPtr<FooBar> p = ComPtr<FooBar>::attach(a.get());
  EXPECT_EQ(a->ref_count(), 2u);
  FooBar* raw = p.detach();
  EXPECT_EQ(raw->ref_count(), 2u);
  raw->Release();
}

TEST(ComPtr, AsReturnsNullOnMissingInterface) {
  auto obj = FooBar::create();
  EXPECT_FALSE(obj.as<IBaz>());
  EXPECT_TRUE(obj.as<IFoo>());
}

class ComRuntimeTest : public ::testing::Test {
 protected:
  ComRuntimeTest() {
    node_ = &sim_.add_node("n");
    node_->boot();
    proc_ = node_->start_process("svc", nullptr);
    rt_ = &ComRuntime::of(*proc_);
  }
  sim::Simulation sim_;
  sim::Node* node_;
  std::shared_ptr<sim::Process> proc_;
  ComRuntime* rt_;
};

TEST_F(ComRuntimeTest, RegisterAndCreateInstance) {
  Clsid clsid = Guid::from_name("CLSID_FooBar");
  rt_->register_simple_class<FooBar>(clsid);
  EXPECT_TRUE(rt_->class_registered(clsid));

  ComPtr<IFoo> foo;
  ASSERT_EQ(rt_->create_instance(clsid, IFoo::iid(), foo.put_void()), S_OK);
  EXPECT_EQ(foo->foo(), 1);
}

TEST_F(ComRuntimeTest, UnregisteredClassFails) {
  ComPtr<IFoo> foo;
  EXPECT_EQ(rt_->create_instance(Guid::from_name("CLSID_Nope"), IFoo::iid(), foo.put_void()),
            REGDB_E_CLASSNOTREG);
  EXPECT_FALSE(foo);
}

TEST_F(ComRuntimeTest, ActivationToWrongInterfaceFails) {
  Clsid clsid = Guid::from_name("CLSID_FooBar");
  rt_->register_simple_class<FooBar>(clsid);
  ComPtr<IBaz> baz;
  EXPECT_EQ(rt_->create_instance(clsid, IBaz::iid(), baz.put_void()), E_NOINTERFACE);
}

TEST_F(ComRuntimeTest, RevokeClass) {
  Clsid clsid = Guid::from_name("CLSID_FooBar");
  rt_->register_simple_class<FooBar>(clsid);
  rt_->revoke_class(clsid);
  ComPtr<IFoo> foo;
  EXPECT_EQ(rt_->create_instance(clsid, IFoo::iid(), foo.put_void()), REGDB_E_CLASSNOTREG);
}

TEST_F(ComRuntimeTest, EachActivationCreatesDistinctInstance) {
  Clsid clsid = Guid::from_name("CLSID_FooBar");
  rt_->register_simple_class<FooBar>(clsid);
  ComPtr<IFoo> a, b;
  rt_->create_instance(clsid, IFoo::iid(), a.put_void());
  rt_->create_instance(clsid, IFoo::iid(), b.put_void());
  EXPECT_NE(a.get(), b.get());
}

TEST_F(ComRuntimeTest, ClassNameForDebugging) {
  Clsid clsid = Guid::from_name("CLSID_FooBar");
  auto factory = LambdaClassFactory::create([](REFIID, void**) { return E_FAIL; });
  rt_->register_class(clsid, ComPtr<IClassFactory>(factory.get()), "FooBar server");
  EXPECT_EQ(rt_->class_name(clsid), "FooBar server");
}

}  // namespace
}  // namespace oftt::com
