// DCOM (ORPC-lite) tests: marshaling, remote activation through the
// SCM, call/response, the failure modes the paper complains about
// (§3.3), ping-based GC, and the proxy/stub installation burden.
#include <gtest/gtest.h>

#include "com/object.h"
#include "com/runtime.h"
#include "dcom/client.h"
#include "dcom/marshal.h"
#include "dcom/scm.h"
#include "dcom/server.h"
#include "sim/simulation.h"

namespace oftt::dcom {
namespace {

using com::ComPtr;
using com::IUnknown;

// A small remotable interface with a hand-written proxy/stub, plus a
// callback interface to exercise interface-pointer marshaling.
struct ICalcSink : IUnknown {
  OFTT_COM_INTERFACE_ID(ICalcSink)
  virtual void OnResult(std::int32_t value) = 0;
};

struct ICalc : IUnknown {
  OFTT_COM_INTERFACE_ID(ICalc)
  virtual void Add(std::int32_t a, std::int32_t b,
                   std::function<void(HRESULT, std::int32_t)> done) = 0;
  virtual void AddVia(std::int32_t a, std::int32_t b, ComPtr<ICalcSink> sink) = 0;
};

class Calc final : public com::Object<Calc, ICalc> {
 public:
  void Add(std::int32_t a, std::int32_t b,
           std::function<void(HRESULT, std::int32_t)> done) override {
    done(S_OK, a + b);
  }
  void AddVia(std::int32_t a, std::int32_t b, ComPtr<ICalcSink> sink) override {
    if (sink) sink->OnResult(a + b);
  }
};

class CalcSink final : public com::Object<CalcSink, ICalcSink> {
 public:
  void OnResult(std::int32_t value) override { results.push_back(value); }
  std::vector<std::int32_t> results;
};

enum CalcMethod : std::uint16_t { kAdd = 1, kAddVia = 2 };
enum SinkMethod : std::uint16_t { kOnResult = 1 };

class CalcProxy final : public com::Object<CalcProxy, ICalc>, public ProxyBase {
 public:
  CalcProxy(OrpcClient& client, ObjectRef ref) : ProxyBase(client, std::move(ref)) {}
  void Add(std::int32_t a, std::int32_t b,
           std::function<void(HRESULT, std::int32_t)> done) override {
    BinaryWriter w;
    w.i32(a);
    w.i32(b);
    invoke(kAdd, std::move(w).take(), [done](HRESULT hr, BinaryReader& r) {
      done(hr, SUCCEEDED(hr) ? r.i32() : 0);
    });
  }
  void AddVia(std::int32_t a, std::int32_t b, ComPtr<ICalcSink> sink) override {
    BinaryWriter w;
    w.i32(a);
    w.i32(b);
    marshal_interface(OrpcServer::of(client().process()), w, sink);
    invoke(kAddVia, std::move(w).take(), nullptr);
  }
};

class SinkProxy final : public com::Object<SinkProxy, ICalcSink>, public ProxyBase {
 public:
  SinkProxy(OrpcClient& client, ObjectRef ref) : ProxyBase(client, std::move(ref)) {}
  void OnResult(std::int32_t value) override {
    BinaryWriter w;
    w.i32(value);
    invoke(kOnResult, std::move(w).take(), nullptr);
  }
};

StubDispatch make_calc_stub(ComPtr<IUnknown> obj, OrpcServer& server) {
  ComPtr<ICalc> target = obj.as<ICalc>();
  OrpcServer* srv = &server;
  return [target, srv](std::uint16_t m, BinaryReader& args, BinaryWriter& result) -> HRESULT {
    switch (m) {
      case kAdd: {
        std::int32_t a = args.i32(), b = args.i32();
        if (args.failed()) return E_INVALIDARG;
        HRESULT out = E_UNEXPECTED;
        target->Add(a, b, [&](HRESULT hr, std::int32_t v) {
          out = hr;
          result.i32(v);
        });
        return out;
      }
      case kAddVia: {
        std::int32_t a = args.i32(), b = args.i32();
        auto sink = unmarshal_interface<ICalcSink>(OrpcClient::of(srv->process()), args);
        if (args.failed()) return E_INVALIDARG;
        target->AddVia(a, b, sink);
        return S_OK;
      }
      default: return E_NOTIMPL;
    }
  };
}

StubDispatch make_sink_stub(ComPtr<IUnknown> obj, OrpcServer&) {
  ComPtr<ICalcSink> target = obj.as<ICalcSink>();
  return [target](std::uint16_t m, BinaryReader& args, BinaryWriter&) -> HRESULT {
    if (m != kOnResult) return E_NOTIMPL;
    std::int32_t v = args.i32();
    if (args.failed()) return E_INVALIDARG;
    target->OnResult(v);
    return S_OK;
  };
}

template <typename P>
ComPtr<IUnknown> make_proxy(OrpcClient& c, const ObjectRef& r) {
  return P::create(c, r).template as<IUnknown>();
}

OFTT_REGISTER_PROXY_STUB(ICalc, make_calc_stub, make_proxy<CalcProxy>);
OFTT_REGISTER_PROXY_STUB(ICalcSink, make_sink_stub, make_proxy<SinkProxy>);

const Clsid kCalcClsid = Guid::from_name("CLSID_Calc");

class DcomTest : public ::testing::Test {
 protected:
  DcomTest() : sim_(7) {
    server_node_ = &sim_.add_node("server");
    client_node_ = &sim_.add_node("client");
    auto& net = sim_.add_network("lan");
    net.attach(server_node_->id());
    net.attach(client_node_->id());

    server_node_->set_boot_script([](sim::Node& node) {
      install_scm(node);
      node.start_process("calcsvc", [](sim::Process& proc) {
        com::ComRuntime::of(proc).register_simple_class<Calc>(kCalcClsid);
        OrpcServer::of(proc).register_server_class(kCalcClsid, "Calc");
      });
    });
    server_node_->boot();
    client_node_->boot();
    client_proc_ = client_node_->start_process("app", nullptr);
  }

  ComPtr<ICalc> activate_calc() {
    ComPtr<ICalc> calc;
    auto& orpc = OrpcClient::of(*client_proc_);
    orpc.activate(server_node_->id(), kCalcClsid, ICalc::iid(),
                  [&](HRESULT hr, const ObjectRef& ref) {
                    if (SUCCEEDED(hr)) calc = orpc.unmarshal(ref).as<ICalc>();
                  });
    sim_.run_for(sim::milliseconds(50));
    return calc;
  }

  sim::Simulation sim_;
  sim::Node* server_node_;
  sim::Node* client_node_;
  std::shared_ptr<sim::Process> client_proc_;
};

TEST_F(DcomTest, RemoteActivationAndCall) {
  ComPtr<ICalc> calc = activate_calc();
  ASSERT_TRUE(calc);
  HRESULT got_hr = E_FAIL;
  std::int32_t got = 0;
  calc->Add(20, 22, [&](HRESULT hr, std::int32_t v) {
    got_hr = hr;
    got = v;
  });
  sim_.run_for(sim::milliseconds(50));
  EXPECT_EQ(got_hr, S_OK);
  EXPECT_EQ(got, 42);
}

TEST_F(DcomTest, ActivationOfUnregisteredClassFails) {
  HRESULT got = S_OK;
  OrpcClient::of(*client_proc_)
      .activate(server_node_->id(), Guid::from_name("CLSID_Missing"), ICalc::iid(),
                [&](HRESULT hr, const ObjectRef&) { got = hr; });
  sim_.run_for(sim::milliseconds(50));
  EXPECT_EQ(got, REGDB_E_CLASSNOTREG);
}

TEST_F(DcomTest, ScmLaunchesDeadServerProcess) {
  // Kill the server process; activation must relaunch it.
  server_node_->find_process("calcsvc")->kill("gone");
  ComPtr<ICalc> calc = activate_calc();
  ASSERT_TRUE(calc);
  auto svc = server_node_->find_process("calcsvc");
  ASSERT_TRUE(svc);
  EXPECT_TRUE(svc->alive());
}

TEST_F(DcomTest, CallToCrashedServerTimesOut) {
  ComPtr<ICalc> calc = activate_calc();
  ASSERT_TRUE(calc);
  server_node_->crash();
  HRESULT got = S_OK;
  calc->Add(1, 2, [&](HRESULT hr, std::int32_t) { got = hr; });
  sim_.run_for(sim::seconds(3));
  EXPECT_EQ(got, RPC_E_TIMEOUT);
  EXPECT_GT(sim_.counter_value("orpc.call_timeout"), 0u);
}

TEST_F(DcomTest, StaleReferenceAfterServerRestartIsDisconnected) {
  ComPtr<ICalc> calc = activate_calc();
  ASSERT_TRUE(calc);
  server_node_->restart_process("calcsvc");
  HRESULT got = S_OK;
  calc->Add(1, 2, [&](HRESULT hr, std::int32_t) { got = hr; });
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(got, RPC_E_DISCONNECTED);
}

TEST_F(DcomTest, CallbackInterfaceMarshalsBothWays) {
  ComPtr<ICalc> calc = activate_calc();
  ASSERT_TRUE(calc);
  auto sink = CalcSink::create();
  calc->AddVia(5, 6, ComPtr<ICalcSink>(sink.get()));
  sim_.run_for(sim::milliseconds(100));
  ASSERT_EQ(sink->results.size(), 1u);
  EXPECT_EQ(sink->results[0], 11);
}

TEST_F(DcomTest, MissingProxyStubCannotMarshal) {
  struct INope : IUnknown {
    OFTT_COM_INTERFACE_ID(INope)
  };
  auto calc_obj = Calc::create();
  auto svc = server_node_->find_process("calcsvc");
  ObjectRef ref = OrpcServer::of(*svc).export_object(calc_obj.as<IUnknown>(), INope::iid());
  EXPECT_FALSE(ref.valid()) << "paper §3.3: proxy/stub must be installed per interface";
}

TEST_F(DcomTest, PingGcReclaimsAbandonedExports) {
  ComPtr<ICalc> calc = activate_calc();
  ASSERT_TRUE(calc);
  auto svc = server_node_->find_process("calcsvc");
  auto& server = OrpcServer::of(*svc);
  EXPECT_EQ(server.export_count(), 1u);
  // Client process dies without releasing -> pings stop -> GC reclaims.
  calc.detach();  // deliberately leak the proxy reference
  client_proc_->kill("client gone");
  sim_.run_for(sim::seconds(30));
  EXPECT_EQ(server.export_count(), 0u);
  EXPECT_GT(sim_.counter_value("orpc.gc_reclaimed"), 0u);
}

TEST_F(DcomTest, PingsKeepLiveExportsAlive) {
  ComPtr<ICalc> calc = activate_calc();
  ASSERT_TRUE(calc);
  auto svc = server_node_->find_process("calcsvc");
  sim_.run_for(sim::seconds(30));
  EXPECT_EQ(OrpcServer::of(*svc).export_count(), 1u) << "held proxy must keep pinging";
}

TEST(DcomWire, PacketRoundTrips) {
  RequestPacket req;
  req.call_id = 7;
  req.oid = 9;
  req.iid = Guid::from_name("IID_X");
  req.method = 3;
  req.args = {1, 2};
  req.reply_node = 4;
  req.reply_port = "orpcc.app";
  RequestPacket out;
  ASSERT_TRUE(decode_request(encode_request(req), out));
  EXPECT_EQ(out.call_id, 7u);
  EXPECT_EQ(out.oid, 9u);
  EXPECT_EQ(out.method, 3);
  EXPECT_EQ(out.args, (Buffer{1, 2}));
  EXPECT_EQ(out.reply_port, "orpcc.app");

  ResponsePacket resp;
  resp.call_id = 7;
  resp.hr = RPC_E_SERVERFAULT;
  ResponsePacket rout;
  ASSERT_TRUE(decode_response(encode_response(resp), rout));
  EXPECT_EQ(rout.hr, RPC_E_SERVERFAULT);

  PingPacket ping;
  ping.oids = {1, 5, 9};
  PingPacket pout;
  ASSERT_TRUE(decode_ping(encode_ping(ping), pout));
  EXPECT_EQ(pout.oids, ping.oids);

  // Kind confusion is rejected.
  EXPECT_FALSE(decode_request(encode_ping(ping), out));
}

}  // namespace
}  // namespace oftt::dcom
