// DCOM edge cases: proxy re-marshaling identity, pinned exports, SCM
// unavailability, concurrent outstanding calls, and orphaned proxies.
#include <gtest/gtest.h>

#include "dcom/client.h"
#include "dcom/marshal.h"
#include "dcom/scm.h"
#include "dcom/server.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"
#include "sim/simulation.h"

namespace oftt::dcom {
namespace {

const Clsid kClsid = Guid::from_name("CLSID_EdgePlc");

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest() : sim_(19) {
    server_ = &sim_.add_node("server");
    client_ = &sim_.add_node("client");
    auto& net = sim_.add_network("lan");
    net.attach(server_->id());
    net.attach(client_->id());
    server_->set_boot_script([](sim::Node& node) {
      install_scm(node);
      node.start_process("opcserver", [](sim::Process& proc) {
        auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(10));
        plc->add_input("Sig", std::make_unique<opc::CounterSignal>());
        opc::install_opc_server(proc, kClsid, plc, "v");
      });
    });
    server_->boot();
    client_->boot();
    hmi_ = client_->start_process("hmi", nullptr);
  }

  com::ComPtr<opc::IOPCServer> activate() {
    com::ComPtr<opc::IOPCServer> out;
    auto& orpc = OrpcClient::of(*hmi_);
    orpc.activate(server_->id(), kClsid, opc::IOPCServer::iid(),
                  [&](HRESULT hr, const ObjectRef& ref) {
                    if (SUCCEEDED(hr)) out = orpc.unmarshal(ref).as<opc::IOPCServer>();
                  });
    sim_.run_for(sim::milliseconds(100));
    return out;
  }

  sim::Simulation sim_;
  sim::Node* server_;
  sim::Node* client_;
  std::shared_ptr<sim::Process> hmi_;
};

TEST_F(EdgeTest, RemarshalingAProxyForwardsTheOriginalReference) {
  // A proxy passed back through marshal_interface must serialize its
  // *original* ObjectRef (no proxy-of-proxy chains).
  auto server_iface = activate();
  ASSERT_TRUE(server_iface);
  auto* proxy = dynamic_cast<ProxyBase*>(server_iface.get());
  ASSERT_NE(proxy, nullptr);

  BinaryWriter w;
  marshal_interface(OrpcServer::of(*hmi_), w, server_iface);
  BinaryReader r(w.data());
  ASSERT_EQ(r.u8(), 1);
  ObjectRef round = ObjectRef::unmarshal(r);
  EXPECT_EQ(round, proxy->ref());
  EXPECT_EQ(round.node, server_->id()) << "still points at the real server";
}

TEST_F(EdgeTest, MarshalNullInterfaceIsNullOnTheOtherSide) {
  BinaryWriter w;
  marshal_interface(OrpcServer::of(*hmi_), w, com::ComPtr<opc::IOPCServer>{});
  BinaryReader r(w.data());
  auto back = unmarshal_interface<opc::IOPCServer>(OrpcClient::of(*hmi_), r);
  EXPECT_FALSE(back);
}

TEST_F(EdgeTest, PinnedExportsSurviveWithoutPings) {
  auto svc = server_->find_process("opcserver");
  auto dummy = opc::OpcServerObject::create(*svc, std::make_shared<opc::PlcDevice>(
                                                       "X", sim::milliseconds(10)), "v");
  auto& server = OrpcServer::of(*svc);
  ObjectRef pinned = server.export_with_dispatch(
      dummy.as<com::IUnknown>(), opc::IOPCServer::iid(),
      [](std::uint16_t, BinaryReader&, BinaryWriter&) { return S_OK; }, /*pinned=*/true);
  ASSERT_TRUE(pinned.valid());
  std::size_t count = server.export_count();
  sim_.run_for(sim::seconds(60));  // far beyond the GC horizon
  EXPECT_EQ(server.export_count(), count) << "pinned export must not be reclaimed";
}

TEST_F(EdgeTest, ActivationWithScmDownTimesOut) {
  server_->find_process("scm")->kill("service stopped");
  HRESULT got = S_OK;
  OrpcClient::of(*hmi_).activate(server_->id(), kClsid, opc::IOPCServer::iid(),
                                 [&](HRESULT hr, const ObjectRef&) { got = hr; });
  sim_.run_for(sim::seconds(3));
  EXPECT_EQ(got, RPC_E_TIMEOUT);
}

TEST_F(EdgeTest, ManyConcurrentOutstandingCallsAllComplete) {
  auto server_iface = activate();
  ASSERT_TRUE(server_iface);
  com::ComPtr<opc::IOPCGroup> group;
  server_iface->AddGroup("g", sim::milliseconds(100),
                         [&](HRESULT, com::ComPtr<opc::IOPCGroup> g) { group = std::move(g); });
  sim_.run_for(sim::milliseconds(100));
  ASSERT_TRUE(group);
  group->AddItems({"Sig"}, nullptr);
  sim_.run_for(sim::milliseconds(50));

  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    group->SyncRead({"Sig"}, [&](HRESULT hr, const std::vector<opc::ItemState>&) {
      if (SUCCEEDED(hr)) ++completed;
    });
  }
  EXPECT_GT(OrpcClient::of(*hmi_).outstanding_calls(), 0u);
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(completed, 200);
  EXPECT_EQ(OrpcClient::of(*hmi_).outstanding_calls(), 0u);
}

TEST_F(EdgeTest, CallsDuringNetworkPartitionTimeOutThenRecover) {
  auto server_iface = activate();
  ASSERT_TRUE(server_iface);
  sim_.network(0).set_link(server_->id(), client_->id(), false);
  HRESULT during = S_OK;
  server_iface->GetStatus([&](HRESULT hr, const opc::ServerStatus&) { during = hr; });
  sim_.run_for(sim::seconds(3));
  EXPECT_EQ(during, RPC_E_TIMEOUT);

  sim_.network(0).set_link(server_->id(), client_->id(), true);
  HRESULT after = E_FAIL;
  server_iface->GetStatus([&](HRESULT hr, const opc::ServerStatus&) { after = hr; });
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(after, S_OK) << "same proxy works again after the partition";
}

TEST_F(EdgeTest, LateResponsesAfterTimeoutAreDropped) {
  auto server_iface = activate();
  ASSERT_TRUE(server_iface);
  // Shrink the client timeout below the round-trip latency.
  OrpcClient::of(*hmi_).config().call_timeout = sim::microseconds(50);
  HRESULT got = S_OK;
  int completions = 0;
  server_iface->GetStatus([&](HRESULT hr, const opc::ServerStatus&) {
    got = hr;
    ++completions;
  });
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(got, RPC_E_TIMEOUT);
  EXPECT_EQ(completions, 1) << "the late real response must not double-complete";
  EXPECT_GT(sim_.counter_value("orpc.late_response"), 0u);
}

}  // namespace
}  // namespace oftt::dcom
