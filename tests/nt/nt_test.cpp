// NT runtime shim tests: memory regions/cells, thread discoverability
// (static vs dynamic), the IAT CreateThread hook, the misleading
// performance counter (§3.1), events and waitable timers.
#include <gtest/gtest.h>

#include "nt/runtime.h"
#include "sim/simulation.h"

namespace oftt::nt {
namespace {

class NtTest : public ::testing::Test {
 protected:
  NtTest() {
    node_ = &sim_.add_node("n");
    node_->boot();
    proc_ = node_->start_process("app", nullptr);
    rt_ = &NtRuntime::of(*proc_);
  }
  sim::Simulation sim_;
  sim::Node* node_;
  std::shared_ptr<sim::Process> proc_;
  NtRuntime* rt_;
};

TEST_F(NtTest, RegionsAllocateZeroedAndReadWrite) {
  Region& r = rt_->memory().alloc("globals", 128);
  EXPECT_EQ(r.size(), 128u);
  EXPECT_EQ(r.read<std::uint64_t>(0), 0u);
  r.write<std::uint64_t>(8, 0xFEEDFACE);
  EXPECT_EQ(r.read<std::uint64_t>(8), 0xFEEDFACEu);
}

TEST_F(NtTest, AllocIsIdempotentByName) {
  Region& a = rt_->memory().alloc("g", 64);
  Region& b = rt_->memory().alloc("g", 64);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(rt_->memory().total_bytes(), 64u);
}

TEST_F(NtTest, CellsViewRegionBytes) {
  Region& r = rt_->memory().alloc("g", 64);
  Cell<std::int32_t> c(&r, 4);
  c.set(-77);
  EXPECT_EQ(c.get(), -77);
  EXPECT_EQ(r.read<std::int32_t>(4), -77);
}

TEST_F(NtTest, SnapshotAndRestoreRoundTrip) {
  Region& r = rt_->memory().alloc("g", 32);
  r.write<std::uint32_t>(0, 123);
  Buffer snap = r.snapshot();
  r.write<std::uint32_t>(0, 456);
  r.restore(snap);
  EXPECT_EQ(r.read<std::uint32_t>(0), 123u);
}

TEST_F(NtTest, StaticThreadsAreOpenable) {
  Task& t = rt_->create_thread_static("main", 0x401000);
  EXPECT_TRUE(t.statically_created());
  EXPECT_EQ(rt_->open_thread(t.tid()), &t);
  EXPECT_EQ(rt_->perf_counter_start_address(t.tid()), 0x401000u);
}

TEST_F(NtTest, DynamicThreadsAreNotOpenableViaDocumentedApis) {
  Task& t = rt_->CreateThread("worker", 0x402000);
  EXPECT_FALSE(t.statically_created());
  // The paper's §3.1 behaviour: handle not obtainable, perf counter
  // reports the NTDLL stub instead of the real start routine.
  EXPECT_EQ(rt_->open_thread(t.tid()), nullptr);
  EXPECT_EQ(rt_->perf_counter_start_address(t.tid()), kNtdllThreadStartStub);
  EXPECT_NE(rt_->perf_counter_start_address(t.tid()), t.start_address());
}

TEST_F(NtTest, IatHookObservesDynamicThreadCreation) {
  std::vector<std::string> seen;
  NtRuntime::CreateThreadFn original;
  original = rt_->hook_create_thread(
      [&](const std::string& name, std::uint64_t start) -> Task& {
        seen.push_back(name);
        return original(name, start);
      });
  EXPECT_TRUE(rt_->create_thread_hooked());
  rt_->CreateThread("w1", 0x1000);
  rt_->CreateThread("w2", 0x2000);
  EXPECT_EQ(seen, (std::vector<std::string>{"w1", "w2"}));
  // Statically created threads do not route through the IAT.
  rt_->create_thread_static("s1", 0x3000);
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(NtTest, EnumerateSeesAllLiveThreads) {
  rt_->create_thread_static("a", 1);
  rt_->CreateThread("b", 2);
  EXPECT_EQ(rt_->enumerate_thread_ids().size(), 2u);
}

TEST_F(NtTest, ContextCaptureUsesProvider) {
  Task& t = rt_->create_thread_static("main", 0x401000);
  int value = 42;
  t.set_context_provider([&] {
    BinaryWriter w;
    w.i32(value);
    return std::move(w).take();
  });
  int restored = 0;
  t.set_context_restorer([&](const Buffer& b) {
    BinaryReader r(b);
    restored = r.i32();
  });
  TaskContext ctx = t.capture_context();
  EXPECT_EQ(ctx.start_address, 0x401000u);
  value = 99;  // mutate after capture; the snapshot must hold 42
  t.restore_context(ctx);
  EXPECT_EQ(restored, 42);
}

TEST_F(NtTest, TaskContextSerializationRoundTrip) {
  TaskContext c;
  c.start_address = 0x1234;
  c.instruction_pointer = 0x1274;
  c.stack_pointer = 0x7ff0;
  c.stack = {9, 8, 7};
  Buffer b = c.serialize();
  BinaryReader r(b);
  TaskContext d = TaskContext::deserialize(r);
  EXPECT_EQ(d.start_address, c.start_address);
  EXPECT_EQ(d.stack, c.stack);
}

TEST_F(NtTest, NtEventWaitersFireOnSet) {
  NtEvent& ev = rt_->create_event("ready");
  int fired = 0;
  ev.wait_async([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  ev.set();
  EXPECT_EQ(fired, 1);
  // Already-set event completes waits immediately.
  ev.wait_async([&] { ++fired; });
  EXPECT_EQ(fired, 2);
  ev.reset();
  EXPECT_FALSE(ev.is_set());
}

TEST_F(NtTest, WaitableTimerOneShotAndPeriodic) {
  auto timer = rt_->create_waitable_timer(proc_->main_strand());
  int fires = 0;
  timer->set(sim::milliseconds(10), 0, [&] { ++fires; });
  sim_.run_for(sim::milliseconds(100));
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(timer->armed());

  timer->set(sim::milliseconds(10), sim::milliseconds(10), [&] { ++fires; });
  sim_.run_for(sim::milliseconds(55));
  EXPECT_EQ(fires, 1 + 5);
  timer->cancel();
  sim_.run_for(sim::milliseconds(100));
  EXPECT_EQ(fires, 6);
}

TEST_F(NtTest, HungTaskStillCapturable) {
  Task& t = rt_->create_thread_static("main", 0x1);
  t.set_context_provider([] { return Buffer{1}; });
  t.hang();
  EXPECT_TRUE(t.hung());
  EXPECT_EQ(t.capture_context().stack, Buffer{1});
  t.unhang();
  EXPECT_FALSE(t.hung());
}

}  // namespace
}  // namespace oftt::nt
