// RingLog unit tests: layout, wrap-around, snapshot/restore fidelity.
#include <gtest/gtest.h>

#include "nt/ring_log.h"
#include "nt/runtime.h"
#include "sim/simulation.h"

namespace oftt::nt {
namespace {

struct Rec {
  std::int32_t a;
  std::int32_t b;
};

class RingLogTest : public ::testing::Test {
 protected:
  RingLogTest() {
    node_ = &sim_.add_node("n");
    node_->boot();
    proc_ = node_->start_process("app", nullptr);
    region_ = &NtRuntime::of(*proc_).memory().alloc("history",
                                                    RingLog<Rec>::bytes_required(8));
  }
  sim::Simulation sim_;
  sim::Node* node_;
  std::shared_ptr<sim::Process> proc_;
  Region* region_;
};

TEST_F(RingLogTest, StartsEmpty) {
  RingLog<Rec> log(region_, 0, 8);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.capacity(), 8u);
}

TEST_F(RingLogTest, AppendAndReadBackInOrder) {
  RingLog<Rec> log(region_, 0, 8);
  for (std::int32_t i = 0; i < 5; ++i) log.append(Rec{i, i * 10});
  EXPECT_EQ(log.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log.at(i).a, static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(log.newest().a, 4);
}

TEST_F(RingLogTest, WrapKeepsNewestCapacityRecords) {
  RingLog<Rec> log(region_, 0, 8);
  for (std::int32_t i = 0; i < 20; ++i) log.append(Rec{i, 0});
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(log.total_appended(), 20u);
  EXPECT_EQ(log.at(0).a, 12) << "oldest retained";
  EXPECT_EQ(log.newest().a, 19);
}

TEST_F(RingLogTest, ReattachSeesExistingContents) {
  {
    RingLog<Rec> log(region_, 0, 8);
    log.append(Rec{7, 7});
  }
  RingLog<Rec> again(region_, 0, 8);
  EXPECT_EQ(again.size(), 1u);
  EXPECT_EQ(again.newest().a, 7);
}

TEST_F(RingLogTest, SnapshotRestoreRoundTrip) {
  RingLog<Rec> log(region_, 0, 8);
  for (std::int32_t i = 0; i < 11; ++i) log.append(Rec{i, -i});
  Buffer snap = region_->snapshot();
  for (std::int32_t i = 100; i < 105; ++i) log.append(Rec{i, 0});
  region_->restore(snap);
  RingLog<Rec> restored(region_, 0, 8);
  EXPECT_EQ(restored.total_appended(), 11u);
  EXPECT_EQ(restored.newest().a, 10);
  EXPECT_EQ(restored.newest().b, -10);
}

TEST_F(RingLogTest, ClearResets) {
  RingLog<Rec> log(region_, 0, 8);
  log.append(Rec{1, 1});
  log.clear();
  EXPECT_TRUE(log.empty());
  log.append(Rec{2, 2});
  EXPECT_EQ(log.newest().a, 2);
}

TEST_F(RingLogTest, TwoLogsInOneRegion) {
  Region& big = NtRuntime::of(*proc_).memory().alloc(
      "two", RingLog<Rec>::bytes_required(4) * 2);
  RingLog<Rec> first(&big, 0, 4);
  RingLog<Rec> second(&big, RingLog<Rec>::bytes_required(4), 4);
  first.append(Rec{1, 0});
  second.append(Rec{2, 0});
  second.append(Rec{3, 0});
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(first.newest().a, 1);
  EXPECT_EQ(second.newest().a, 3);
}

}  // namespace
}  // namespace oftt::nt
