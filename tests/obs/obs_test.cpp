// Tests for the telemetry subsystem: event bus filtering and liveness
// pruning, the handle-based metrics registry, the bounded event log,
// the deterministic JSON exporter, and the failover span tracker —
// including the headline property that two runs with the same seed
// export byte-identical telemetry.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "obs/event_bus.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "support/counter_app.h"

namespace oftt {
namespace {

using core::PairDeployment;
using core::PairDeploymentOptions;
using testsupport::CounterApp;

// ---------------------------------------------------------------------
// EventBus
// ---------------------------------------------------------------------

TEST(EventBus, MaskFiltersAndHistoryRecords) {
  sim::SimTime now = 0;
  obs::EventBus bus([&now] { return now; });
  std::vector<obs::EventKind> got;
  bus.subscribe(obs::mask_of(obs::EventKind::kRoleChange, obs::EventKind::kDistress),
                [&](const obs::Event& e) { got.push_back(e.kind); });

  obs::Event e;
  e.kind = obs::EventKind::kCheckpointTaken;
  bus.publish(e);
  e.kind = obs::EventKind::kRoleChange;
  now = 5;
  bus.publish(e);
  e.kind = obs::EventKind::kDistress;
  bus.publish(e);

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], obs::EventKind::kRoleChange);
  EXPECT_EQ(got[1], obs::EventKind::kDistress);
  // Everything lands in the history, stamped with the bus clock.
  EXPECT_EQ(bus.published(), 3u);
  ASSERT_EQ(bus.history().size(), 3u);
  EXPECT_EQ(bus.history().entries()[0].at, 0);
  EXPECT_EQ(bus.history().entries()[1].at, 5);
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  obs::EventBus bus([] { return sim::SimTime{0}; });
  int delivered = 0;
  auto id = bus.subscribe_all([&](const obs::Event&) { ++delivered; });
  bus.publish({});
  bus.unsubscribe(id);
  bus.publish({});
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(EventBus, DeadAliveGuardPrunesWithoutDelivery) {
  obs::EventBus bus([] { return sim::SimTime{0}; });
  bool alive = true;
  int delivered = 0;
  bus.subscribe_all([&](const obs::Event&) { ++delivered; }, [&alive] { return alive; });
  bus.publish({});
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(bus.subscriber_count(), 1u);
  alive = false;
  bus.publish({});
  EXPECT_EQ(delivered, 1) << "dead subscriber must not see the event";
  EXPECT_EQ(bus.subscriber_count(), 0u) << "dead subscriber is pruned";
}

// ---------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------

TEST(ObsEventLog, EvictsOldestFirst) {
  obs::EventLog log(3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    obs::Event e;
    e.a = i;
    log.append(e);
  }
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.evicted(), 2u);
  // Oldest evicted first: 1 and 2 are gone, 3..5 remain in order.
  EXPECT_EQ(log.entries()[0].a, 3u);
  EXPECT_EQ(log.entries()[1].a, 4u);
  EXPECT_EQ(log.entries()[2].a, 5u);

  log.set_cap(1);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0].a, 5u) << "shrinking the cap keeps the newest";
  EXPECT_EQ(log.evicted(), 4u);
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

TEST(Metrics, HandlesResolveToSharedCells) {
  obs::MetricsRegistry reg;
  obs::Counter c1 = reg.counter("x.count");
  obs::Counter c2 = reg.counter("x.count");
  c1.inc();
  c2.inc(4);
  EXPECT_EQ(c1.value(), 5u);
  EXPECT_EQ(reg.counter_value("x.count"), 5u);
  EXPECT_EQ(reg.counter_value("never.created"), 0u);

  obs::Gauge g = reg.gauge("x.depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(reg.gauge_value("x.depth"), 5);
}

TEST(Metrics, DefaultHandlesAreInert) {
  obs::Counter none;
  none.inc();
  EXPECT_EQ(none.value(), 0u);
  EXPECT_FALSE(static_cast<bool>(none));
  obs::Gauge g;
  g.set(9);
  EXPECT_EQ(g.value(), 0);
  obs::Histogram h;
  h.record(3);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, HistogramBucketsAndQuantiles) {
  obs::MetricsRegistry reg;
  obs::Histogram h = reg.histogram("lat", {10, 100});
  for (std::int64_t v : {1, 5, 50, 50, 500}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 606);
  EXPECT_LE(h.quantile(0.0), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(1.0));
  // Re-resolving ignores the bounds argument and shares the cell.
  obs::Histogram again = reg.histogram("lat", {1});
  EXPECT_EQ(again.count(), 5u);
}

// ---------------------------------------------------------------------
// JSON writer + percentile
// ---------------------------------------------------------------------

TEST(Json, EscapesAndNestsDeterministically) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\n\t");
  w.key("arr");
  w.begin_array();
  w.value(std::int64_t{-5});
  w.value(true);
  w.null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\n\\t\",\"arr\":[-5,true,null]}");
}

TEST(Json, PercentileNearestRank) {
  EXPECT_EQ(obs::percentile({}, 0.5), 0);
  EXPECT_EQ(obs::percentile({7}, 0.99), 7);
  std::vector<std::int64_t> xs;
  for (std::int64_t i = 1; i <= 101; ++i) xs.push_back(i);
  EXPECT_EQ(obs::percentile(xs, 0.0), 1);
  EXPECT_EQ(obs::percentile(xs, 0.5), 51);
  EXPECT_EQ(obs::percentile(xs, 1.0), 101);
}

// ---------------------------------------------------------------------
// Failover spans + deterministic export
// ---------------------------------------------------------------------

PairDeploymentOptions traced_options() {
  PairDeploymentOptions opts;
  opts.with_diverter = true;  // completes the replay phase
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  return opts;
}

TEST(FailoverSpans, NodeCrashYieldsCausallyOrderedTrace) {
  sim::Simulation sim(301);
  PairDeployment dep(sim, traced_options());
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());
  dep.node_a().crash();
  sim.run_for(sim::seconds(10));

  const auto* complete = static_cast<const obs::FailoverTrace*>(nullptr);
  for (const auto& t : sim.telemetry().spans().traces()) {
    if (t.complete()) complete = &t;
  }
  ASSERT_NE(complete, nullptr) << "crash with a diverter deployed must close a trace";
  EXPECT_EQ(complete->node, dep.node_b().id());
  EXPECT_EQ(complete->unit, "unit");
  // The milestones are causally ordered in sim time.
  EXPECT_LE(complete->evidence_at, complete->detected_at);
  EXPECT_LE(complete->detected_at, complete->promoted_at);
  EXPECT_LE(complete->promoted_at, complete->active_at);
  EXPECT_LE(complete->active_at, complete->rerouted_at);
  for (obs::FailoverPhase p :
       {obs::FailoverPhase::kDetection, obs::FailoverPhase::kNegotiation,
        obs::FailoverPhase::kPromotion, obs::FailoverPhase::kReplay}) {
    EXPECT_GE(complete->phase(p), 0);
  }
  EXPECT_EQ(complete->total(), complete->rerouted_at - complete->evidence_at);
  // The span samples feed the bench aggregation.
  EXPECT_FALSE(sim.telemetry().spans().durations(obs::FailoverPhase::kDetection).empty());
}

std::string run_and_export(std::uint64_t seed) {
  sim::Simulation sim(seed);
  PairDeployment dep(sim, traced_options());
  sim.run_for(sim::seconds(5));
  dep.node_a().crash();
  sim.run_for(sim::seconds(10));
  return obs::export_json(sim.telemetry());
}

TEST(DeterministicTelemetry, SameSeedExportsByteIdenticalJson) {
  std::string first = run_and_export(42);
  std::string second = run_and_export(42);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // A different seed perturbs network latencies, so timestamps differ.
  EXPECT_NE(run_and_export(43), first);
}

}  // namespace
}  // namespace oftt
