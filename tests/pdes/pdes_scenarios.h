// Shared scenarios for the parallel-engine determinism tests and the
// bench_pdes speedup curves.
//
// Each scenario folds its observable history into per-node hash cells
// (plus one global cell for coordinator-context callbacks) and combines
// them at the end. Per-node cells are the parallel-safe analogue of
// kernel_scenario.h's single shared hash: within one node the fold
// order is that node's own event order — deterministic and identical
// for any worker count — while a single shared cell would additionally
// pin the *interleaving* between nodes, which no parallel execution
// (not even one worker, which runs shard-by-shard inside a window)
// reproduces.
//
// Two determinism contracts, per DESIGN §7.18:
//   - clean_ring_hash draws no rng at all (fixed latency, lossless), so
//     its digest is identical between kSequential and kParallel at any
//     worker count — the strongest cross-engine equality we can pin.
//   - the lossy/swim/opc scenarios draw rng; sequential mode draws from
//     the shared network stream, parallel mode from per-source-node
//     substreams, so their histories legitimately differ *between
//     engines* but must be byte-identical across 1/2/4 workers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chaos/coverage.h"
#include "core/deployment.h"
#include "opc/tag_store.h"
#include "opc/value.h"
#include "sim/fault_plan.h"
#include "sim/simulation.h"
#include "sim/timer.h"

namespace oftt::sim::pdestest {

inline void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

struct Digest {
  std::vector<std::uint64_t> node_cells;
  std::uint64_t global = kFnvOffset;

  explicit Digest(int nodes) : node_cells(static_cast<std::size_t>(nodes), kFnvOffset) {}

  std::uint64_t& cell(int node) { return node_cells[static_cast<std::size_t>(node)]; }

  std::uint64_t combined() const {
    std::uint64_t h = global;
    for (std::uint64_t c : node_cells) fold(h, c);
    return h;
  }
};

struct RingApp {
  explicit RingApp(Process& p) : ticker(p.main_strand()) {}
  PeriodicTimer ticker;
};

/// N-node ring on one network: node i ticks every 10 ms (phase-shifted
/// per node so no two events on one node ever share a timestamp) and
/// sends to node (i+1)%N; receivers fold arrival times. A FaultPlan
/// crashes and reboots a node mid-run, and a global cancel-race driver
/// exercises the coordinator path. `lossy` adds loss/dup/latency jitter
/// (rng); without it the scenario makes no rng draw at all.
inline std::uint64_t ring_hash(std::uint64_t seed, int nodes, bool lossy,
                               const EngineConfig* engine) {
  Simulation sim(seed);
  if (engine != nullptr) sim.set_engine(*engine);
  auto digest = std::make_shared<Digest>(nodes);

  Network& net = sim.add_network("lan");
  if (lossy) {
    net.set_latency(milliseconds(1), milliseconds(5));
    net.set_loss(0.2);
    net.set_duplicate(0.1);
  } else {
    net.set_latency(milliseconds(1), milliseconds(1));
  }

  for (int n = 0; n < nodes; ++n) {
    Node& node = sim.add_node("n" + std::to_string(n));
    net.attach(node.id());
    node.set_boot_script([&sim, digest, nodes](Node& self) {
      const int id = self.id();
      const int dst = (id + 1) % nodes;
      self.start_process("app", [&sim, digest, id, dst](Process& p) {
        auto app = std::make_shared<RingApp>(p);
        p.bind("x", [&sim, digest, id](const Datagram& d) {
          fold(digest->cell(id), static_cast<std::uint64_t>(sim.now()) * 3 + d.payload.size());
        });
        app->ticker.start(
            milliseconds(10),
            [&sim, digest, id, dst, &p] {
              fold(digest->cell(id), static_cast<std::uint64_t>(sim.now()));
              p.send(0, dst, "x", Buffer{1, 2, 3}, "x");
            },
            /*initial_delay=*/microseconds(100 + 37 * id));
        p.add_component(std::move(app));
      });
    });
    node.boot();
  }

  // Global cancel-race driver (coordinator context end to end).
  auto round = std::make_shared<int>(0);
  auto driver = std::make_shared<std::function<void()>>();
  *driver = [&sim, digest, round, driver] {
    fold(digest->global, static_cast<std::uint64_t>(sim.now()) + 17);
    EventHandle timeout = sim.schedule_after(milliseconds(30), [&sim, digest] {
      fold(digest->global, static_cast<std::uint64_t>(sim.now()) ^ 0x77);
    });
    SimTime cancel_at = (*round % 2 == 0) ? milliseconds(10) : milliseconds(40);
    sim.schedule_after(cancel_at, [&sim, digest, timeout]() mutable {
      fold(digest->global, timeout.valid() ? 0xC1 : 0xC0);
      sim.cancel(timeout);
    });
    ++*round;
    sim.schedule_after(milliseconds(50), [driver] { (*driver)(); });
  };
  sim.schedule_after(microseconds(25'501), [driver] { (*driver)(); });

  FaultPlan plan(sim);
  if (nodes > 1) {
    plan.os_crash(seconds(1), 1, /*reboot_after=*/milliseconds(500));
  }
  plan.arm();

  sim.run_until(seconds(3));

  for (const auto& inj : plan.journal()) {
    fold(digest->global, static_cast<std::uint64_t>(inj.at));
  }
  fold(digest->global, net.sent());
  fold(digest->global, net.delivered());
  fold(digest->global, net.dropped());
  for (int n = 0; n < nodes; ++n) {
    fold(digest->global, static_cast<std::uint64_t>(sim.node(n).boot_count()));
  }
  return digest->combined();
}

/// SWIM-detection cluster (the N-replica deployment the swim subsystem
/// is benched on) with a mid-run crash + reboot; digest is the
/// telemetry history hash plus role/network observables.
inline std::uint64_t swim_cluster_hash(std::uint64_t seed, int replicas, SimTime run_for,
                                       const EngineConfig* engine) {
  Simulation sim(seed);
  if (engine != nullptr) sim.set_engine(*engine);

  core::ClusterDeploymentOptions opts;
  opts.replicas = replicas;
  opts.with_msmq = false;
  opts.with_scm = false;
  opts.engine.detection = core::DetectionMode::kSwim;
  core::ClusterDeployment dep(sim, opts);

  chaos::CoverageProbe probe(sim.telemetry());

  FaultPlan plan(sim);
  plan.os_crash(run_for / 2, /*node=*/1, /*reboot_after=*/run_for / 4);
  plan.arm();

  sim.run_until(run_for);
  probe.finish();

  std::uint64_t h = probe.history_hash();
  fold(h, static_cast<std::uint64_t>(dep.primary_node()));
  for (int i = 0; i < replicas; ++i) {
    core::Engine* eng = dep.engine(i);
    fold(h, eng != nullptr ? eng->takeovers() : 0xDEAD);
  }
  Network& net = sim.network(0);
  fold(h, net.sent());
  fold(h, net.delivered());
  fold(h, net.dropped());
  return h;
}

struct TagFarmApp {
  TagFarmApp(Process& p, int tags) : store(32), ticker(p.main_strand()) {
    for (int i = 0; i < tags; ++i) store.intern("t" + std::to_string(i));
    for (int i = 0; i < tags; ++i) {
      store.set(static_cast<opc::TagId>(i), opc::OpcValue::from_real(0.0),
                opc::Quality::kGood, p.sim().now());
    }
  }
  opc::TagStore store;
  PeriodicTimer ticker;
  std::uint32_t tick_count = 0;
};

/// OPC tag farm: `producers` nodes each own a TagStore slice of the
/// plant (total tag count = producers * tags_per_node); every 20 ms a
/// producer rewrites a round-robin window of its tags and reports a
/// value checksum to a collector node, which folds arrivals. Slightly
/// lossy network, so parallel runs are compared across worker counts.
inline std::uint64_t opc_farm_hash(std::uint64_t seed, int producers, int tags_per_node,
                                   SimTime run_for, const EngineConfig* engine) {
  Simulation sim(seed);
  if (engine != nullptr) sim.set_engine(*engine);
  auto digest = std::make_shared<Digest>(producers + 1);

  Network& net = sim.add_network("plantlan");
  net.set_latency(milliseconds(1), milliseconds(3));
  net.set_loss(0.01);

  const int collector = producers;  // node id of the collector
  for (int n = 0; n < producers; ++n) {
    Node& node = sim.add_node("plc" + std::to_string(n));
    net.attach(node.id());
    node.set_boot_script([&sim, digest, tags_per_node, collector](Node& self) {
      const int id = self.id();
      self.start_process("app", [&sim, digest, id, tags_per_node, collector](Process& p) {
        auto app = std::make_shared<TagFarmApp>(p, tags_per_node);
        TagFarmApp* a = app.get();
        app->ticker.start(
            milliseconds(20),
            [&sim, digest, id, tags_per_node, collector, a, &p] {
              ++a->tick_count;
              const SimTime now = sim.now();
              const int window = 64;
              std::uint64_t checksum = kFnvOffset;
              for (int c = 0; c < window; ++c) {
                auto tag = static_cast<opc::TagId>(
                    (a->tick_count * static_cast<std::uint32_t>(window) +
                     static_cast<std::uint32_t>(c)) %
                    static_cast<std::uint32_t>(tags_per_node));
                a->store.set(tag, opc::OpcValue::from_real(static_cast<double>(a->tick_count)),
                             opc::Quality::kGood, now);
                fold(checksum, static_cast<std::uint64_t>(tag));
              }
              fold(digest->cell(id), checksum);
              Buffer report(8);
              for (int b = 0; b < 8; ++b) {
                report[static_cast<std::size_t>(b)] =
                    static_cast<std::uint8_t>(checksum >> (b * 8));
              }
              p.send(0, collector, "tags", std::move(report), "tags");
            },
            /*initial_delay=*/microseconds(200 + 53 * id));
        p.add_component(std::move(app));
      });
    });
    node.boot();
  }

  Node& sink = sim.add_node("historian");
  net.attach(sink.id());
  sink.set_boot_script([&sim, digest, collector](Node& self) {
    self.start_process("collector", [&sim, digest, collector](Process& p) {
      p.bind("tags", [&sim, digest, collector](const Datagram& d) {
        std::uint64_t word = 0;
        for (std::size_t b = 0; b < d.payload.size() && b < 8; ++b) {
          word |= static_cast<std::uint64_t>(d.payload[b]) << (b * 8);
        }
        fold(digest->cell(collector), static_cast<std::uint64_t>(sim.now()) ^ word);
      });
    });
  });
  sink.boot();

  sim.run_until(run_for);

  fold(digest->global, net.sent());
  fold(digest->global, net.delivered());
  fold(digest->global, net.dropped());
  return digest->combined();
}

}  // namespace oftt::sim::pdestest
