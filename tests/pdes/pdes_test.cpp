// Parallel-engine unit and contract tests: mailbox/partition units,
// engine-config and lookahead validation (the set_latency satellite),
// shard-queue cancel routing, the clean-scenario sequential==parallel
// equality, the ordered-logger byte-diff, and the oftt.pdes.* metrics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "core/monitor.h"
#include "sim/mailbox.h"
#include "sim/parallel_engine.h"
#include "sim/partition.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "pdes/pdes_scenarios.h"

namespace oftt::sim {
namespace {

EngineConfig parallel_cfg(int workers) {
  EngineConfig cfg;
  cfg.kind = EngineKind::kParallel;
  cfg.workers = workers;
  return cfg;
}

TEST(SpscMailbox, PreservesFifoOrderAndCapacityRoundsUp) {
  SpscMailbox box(10);  // rounds up to 16
  EXPECT_EQ(box.capacity(), 16u);
  for (int i = 0; i < 12; ++i) {
    box.push(CrossEvent{i, static_cast<std::uint64_t>(i), 0, nullptr});
  }
  EXPECT_EQ(box.spills(), 0u);
  EXPECT_EQ(box.peak(), 12u);
  std::vector<SimTime> got;
  box.drain([&](CrossEvent&& e) { got.push_back(e.at); });
  ASSERT_EQ(got.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  // Drained mailbox is reusable.
  box.push(CrossEvent{99, 0, 0, nullptr});
  got.clear();
  box.drain([&](CrossEvent&& e) { got.push_back(e.at); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 99);
}

TEST(SpscMailbox, OverflowSpillsInsteadOfBlocking) {
  SpscMailbox box(8);
  for (int i = 0; i < 8 + 5; ++i) {
    box.push(CrossEvent{i, 0, 0, nullptr});
  }
  EXPECT_EQ(box.spills(), 5u);
  EXPECT_EQ(box.peak(), 8u);
  std::vector<SimTime> got;
  box.drain([&](CrossEvent&& e) { got.push_back(e.at); });
  // Ring first, spill after — 13 events total, none lost.
  ASSERT_EQ(got.size(), 13u);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[12], 12);
}

TEST(Partition, StrategiesArePureFunctionsOfNodeId) {
  Partition rr{4, PartitionStrategy::kRoundRobin};
  EXPECT_EQ(rr.shard_of(0), 0);
  EXPECT_EQ(rr.shard_of(5), 1);
  EXPECT_EQ(rr.shard_of(7), 3);
  EXPECT_EQ(rr.shard_of(-1), 0);  // global / no node

  Partition blocked{4, PartitionStrategy::kBlocked};
  EXPECT_EQ(blocked.shard_of(0), 0);
  EXPECT_EQ(blocked.shard_of(7), 0);
  EXPECT_EQ(blocked.shard_of(8), 1);
  EXPECT_EQ(blocked.shard_of(33), 0);

  Partition one{1, PartitionStrategy::kRoundRobin};
  EXPECT_EQ(one.shard_of(12345), 0);
}

TEST(NetworkLatency, InvertedRangeThrowsInsteadOfClamping) {
  Simulation sim(1);
  Network& net = sim.add_network("ctrl");
  EXPECT_THROW(net.set_latency(milliseconds(5), milliseconds(1)), std::invalid_argument);
  EXPECT_THROW(net.set_latency(-1, milliseconds(1)), std::invalid_argument);
  // A valid call still lands.
  net.set_latency(milliseconds(1), milliseconds(2));
  EXPECT_EQ(net.latency_min(), milliseconds(1));
  EXPECT_EQ(net.latency_max(), milliseconds(2));
  try {
    net.set_latency(milliseconds(5), milliseconds(1));
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ctrl"), std::string::npos) << e.what();
  }
}

TEST(ParallelEngine, ZeroLookaheadRefusedWithLinkName) {
  Simulation sim(1);
  sim.set_engine(parallel_cfg(2));
  Network& net = sim.add_network("zero-lat-lan");
  net.set_latency(0, milliseconds(1));
  Node& node = sim.add_node("n0");
  net.attach(node.id());
  sim.schedule_after(milliseconds(1), [] {});
  try {
    sim.run_until(milliseconds(2));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("zero-lat-lan"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos) << e.what();
  }
}

TEST(ParallelEngine, EngineConfigFromEnv) {
  // Save/restore so this test composes with a CI lane that sets them.
  const char* old_engine = std::getenv("OFTT_ENGINE");
  const char* old_workers = std::getenv("OFTT_ENGINE_WORKERS");
  std::string saved_engine = old_engine != nullptr ? old_engine : "";
  std::string saved_workers = old_workers != nullptr ? old_workers : "";

  ::setenv("OFTT_ENGINE", "parallel", 1);
  ::setenv("OFTT_ENGINE_WORKERS", "3", 1);
  EngineConfig cfg = engine_config_from_env();
  EXPECT_EQ(cfg.kind, EngineKind::kParallel);
  EXPECT_EQ(cfg.workers, 3);

  ::setenv("OFTT_ENGINE", "sequential", 1);
  ::setenv("OFTT_ENGINE_WORKERS", "0", 1);  // invalid: keeps the default
  cfg = engine_config_from_env(parallel_cfg(4));
  EXPECT_EQ(cfg.kind, EngineKind::kSequential);
  EXPECT_EQ(cfg.workers, 4);

  ::unsetenv("OFTT_ENGINE");
  ::unsetenv("OFTT_ENGINE_WORKERS");
  cfg = engine_config_from_env();
  EXPECT_EQ(cfg.kind, EngineKind::kSequential);

  if (old_engine != nullptr) ::setenv("OFTT_ENGINE", saved_engine.c_str(), 1);
  if (old_workers != nullptr) ::setenv("OFTT_ENGINE_WORKERS", saved_workers.c_str(), 1);
}

TEST(ParallelEngine, ConfigValidation) {
  {
    Simulation sim(1);
    EXPECT_THROW(sim.set_engine(parallel_cfg(0)), std::invalid_argument);
  }
  {
    Simulation sim(1);
    sim.add_node("n0");
    EXPECT_THROW(sim.set_engine(parallel_cfg(2)), std::logic_error);
  }
  {
    Simulation sim(1);
    sim.set_engine(parallel_cfg(2));
    EngineConfig seq;
    EXPECT_THROW(sim.set_engine(seq), std::logic_error);
  }
}

TEST(ParallelEngine, SmokeTimersAndCrossNodeSends) {
  Simulation sim(7);
  sim.set_engine(parallel_cfg(2));
  ASSERT_NE(sim.parallel_engine(), nullptr);
  EXPECT_EQ(sim.parallel_engine()->workers(), 2);

  Network& net = sim.add_network("lan");
  net.set_latency(milliseconds(1), milliseconds(1));
  auto ticks = std::make_shared<int>(0);
  auto recvs = std::make_shared<int>(0);
  for (int n = 0; n < 4; ++n) {
    Node& node = sim.add_node("n" + std::to_string(n));
    net.attach(node.id());
    node.set_boot_script([&sim, ticks, recvs](Node& self) {
      const int id = self.id();
      const int dst = (id + 1) % 4;
      self.start_process("app", [&sim, ticks, recvs, id, dst](Process& p) {
        auto app = std::make_shared<pdestest::RingApp>(p);
        p.bind("x", [recvs](const Datagram&) { ++*recvs; });
        app->ticker.start(
            milliseconds(10),
            [ticks, dst, &p] {
              ++*ticks;
              p.send(0, dst, "x", Buffer{1}, "x");
            },
            microseconds(100 + 37 * id));
        p.add_component(std::move(app));
      });
    });
    node.boot();
  }
  sim.run_until(milliseconds(105));
  EXPECT_EQ(sim.now(), milliseconds(105));
  // Ticks at (100 + 37*id) us + k*10 ms: k = 0..10 fit in 105 ms.
  EXPECT_EQ(*ticks, 4 * 11);
  EXPECT_EQ(*recvs, 4 * 11);  // lossless fixed-latency: every send lands

  ParallelEngine& eng = *sim.parallel_engine();
  EXPECT_GT(eng.windows(), 0u);
  EXPECT_GT(eng.events_executed(), 0u);
}

TEST(ParallelEngine, StepAndEmptySemantics) {
  Simulation sim(3);
  sim.set_engine(parallel_cfg(2));
  EXPECT_TRUE(sim.parallel_engine()->empty());
  auto fired = std::make_shared<int>(0);
  sim.schedule_after(milliseconds(1), [fired] { ++*fired; });
  sim.schedule_after(milliseconds(2), [fired] { ++*fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(*fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(1));
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(*fired, 2);
}

TEST(ParallelEngine, CancelRoutesToOwningShardQueue) {
  Simulation sim(11);
  sim.set_engine(parallel_cfg(2));
  Network& net = sim.add_network("lan");
  net.set_latency(milliseconds(1), milliseconds(1));
  Node& n0 = sim.add_node("n0");
  Node& n1 = sim.add_node("n1");
  net.attach(n0.id());
  net.attach(n1.id());

  // schedule_on(node) routes into that node's shard queue; cancelling
  // through Simulation::cancel must reach the shard queue, not the
  // global one (EventQueue::cancel is a no-op for foreign handles).
  auto fired = std::make_shared<int>(0);
  EventHandle h0 = sim.schedule_on(milliseconds(5), nullptr, [fired] { ++*fired; }, 0);
  EventHandle h1 = sim.schedule_on(milliseconds(5), nullptr, [fired] { ++*fired; }, 1);
  EXPECT_TRUE(h0.valid());
  sim.cancel(h0);
  sim.run_until(milliseconds(10));
  EXPECT_EQ(*fired, 1);  // h1 fired, h0 cancelled
  sim.cancel(h1);        // post-fire cancel is a harmless no-op
}

// The strongest cross-engine contract: a scenario that makes zero rng
// draws (fixed latency, lossless) produces the *same* digest under the
// sequential kernel and the parallel engine at every worker count.
TEST(ParallelEngine, CleanScenarioMatchesSequentialExactly) {
  const std::uint64_t seq = pdestest::ring_hash(42, 5, /*lossy=*/false, nullptr);
  for (int workers : {1, 2, 4}) {
    EngineConfig cfg = parallel_cfg(workers);
    const std::uint64_t par = pdestest::ring_hash(42, 5, /*lossy=*/false, &cfg);
    EXPECT_EQ(par, seq) << "workers=" << workers;
  }
}

TEST(ParallelEngine, BlockedPartitionSameHistory) {
  const std::uint64_t seq = pdestest::ring_hash(42, 5, /*lossy=*/false, nullptr);
  EngineConfig cfg = parallel_cfg(2);
  cfg.partition = PartitionStrategy::kBlocked;
  EXPECT_EQ(pdestest::ring_hash(42, 5, /*lossy=*/false, &cfg), seq);
}

// Tiny mailboxes force the spill path; history must not change.
TEST(ParallelEngine, MailboxSpillDoesNotChangeHistory) {
  EngineConfig big = parallel_cfg(2);
  const std::uint64_t reference = pdestest::ring_hash(42, 5, /*lossy=*/true, &big);
  EngineConfig tiny = parallel_cfg(2);
  tiny.mailbox_capacity = 8;
  EXPECT_EQ(pdestest::ring_hash(42, 5, /*lossy=*/true, &tiny), reference);
}

// Satellite: ordered logging. Every line carries (sim-time, node, seq)
// and parallel runs merge-sort at the window barrier, so the rendered
// log stream is byte-identical to the sequential run.
std::vector<std::string> logged_ring_lines(const EngineConfig* engine) {
  Logger& logger = Logger::instance();
  auto lines = std::make_shared<std::vector<std::string>>();
  LogLevel old_level = logger.level();
  logger.set_level(LogLevel::kInfo);
  Logger::Sink old_sink = logger.set_sink([lines](const LogRecord& r) {
    lines->push_back(cat(r.sim_time_ns, "|", log_level_name(r.level), "|", r.component, "|",
                         r.message));
  });

  {
    Simulation sim(42);
    if (engine != nullptr) sim.set_engine(*engine);
    Network& net = sim.add_network("lan");
    net.set_latency(milliseconds(1), milliseconds(1));
    constexpr int kNodes = 3;
    for (int n = 0; n < kNodes; ++n) {
      Node& node = sim.add_node("n" + std::to_string(n));
      net.attach(node.id());
      node.set_boot_script([&sim](Node& self) {
        const int id = self.id();
        const int dst = (id + 1) % kNodes;
        self.start_process("app", [&sim, id, dst](Process& p) {
          auto app = std::make_shared<pdestest::RingApp>(p);
          p.bind("x", [&sim, id](const Datagram& d) {
            OFTT_LOG_INFO("ring", "n", id, " got ", d.payload.size(), "B");
          });
          app->ticker.start(
              milliseconds(10),
              [id, dst, &p] {
                OFTT_LOG_INFO("ring", "n", id, " tick -> n", dst);
                p.send(0, dst, "x", Buffer{1, 2, 3}, "x");
              },
              microseconds(100 + 37 * id));
          p.add_component(std::move(app));
        });
      });
      node.boot();
    }
    sim.run_until(milliseconds(200));
  }

  logger.set_sink(std::move(old_sink));
  logger.set_level(old_level);
  return *lines;
}

TEST(ParallelEngine, LogStreamByteIdenticalToSequential) {
  const std::vector<std::string> seq = logged_ring_lines(nullptr);
  ASSERT_FALSE(seq.empty());
  for (int workers : {1, 2, 4}) {
    EngineConfig cfg = parallel_cfg(workers);
    const std::vector<std::string> par = logged_ring_lines(&cfg);
    ASSERT_EQ(par.size(), seq.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      ASSERT_EQ(par[i], seq[i]) << "workers=" << workers << " line " << i;
    }
  }
}

// Satellite: oftt.pdes.* metrics are populated by a parallel run.
TEST(ParallelEngine, PdesMetricsPopulated) {
  Simulation sim(5);
  sim.set_engine(parallel_cfg(2));
  Network& net = sim.add_network("lan");
  net.set_latency(milliseconds(1), milliseconds(1));
  for (int n = 0; n < 4; ++n) {
    Node& node = sim.add_node("n" + std::to_string(n));
    net.attach(node.id());
    node.set_boot_script([&sim](Node& self) {
      const int id = self.id();
      const int dst = (id + 1) % 4;
      self.start_process("app", [&sim, id, dst](Process& p) {
        auto app = std::make_shared<pdestest::RingApp>(p);
        p.bind("x", [](const Datagram&) {});
        app->ticker.start(
            milliseconds(10), [dst, &p] { p.send(0, dst, "x", Buffer{1}, "x"); },
            microseconds(100 + 37 * id));
        p.add_component(std::move(app));
      });
    });
    node.boot();
  }
  sim.run_until(milliseconds(500));

  const obs::MetricsRegistry& m = sim.telemetry().metrics();
  EXPECT_GT(m.counter_value("oftt.pdes.windows"), 0u);
  EXPECT_GT(m.counter_value("oftt.pdes.events"), 0u);
  EXPECT_GE(m.gauge_value("oftt.pdes.stall_ns"), 0);
  const std::int64_t w0 = m.gauge_value("oftt.pdes.w0.events");
  const std::int64_t w1 = m.gauge_value("oftt.pdes.w1.events");
  EXPECT_GT(w0 + w1, 0);
  // Worker gauges partition the node-context events; the events counter
  // additionally includes coordinator (global) events.
  EXPECT_LE(static_cast<std::uint64_t>(w0 + w1), m.counter_value("oftt.pdes.events"));
  EXPECT_EQ(static_cast<std::uint64_t>(w0 + w1),
            sim.parallel_engine()->worker_events(0) + sim.parallel_engine()->worker_events(1));
}

// Satellite: the operator's monitor board surfaces the oftt.pdes.*
// metrics on a parallel run and stays silent (empty string) on a
// sequential one — the default deployment's render output is untouched.
TEST(ParallelEngine, MonitorPdesBoard) {
  auto board_for = [](const EngineConfig* cfg) {
    Simulation sim(7);
    if (cfg != nullptr) sim.set_engine(*cfg);
    core::ClusterDeploymentOptions opts;
    opts.replicas = 3;
    opts.with_msmq = false;
    opts.with_scm = false;
    opts.engine.detection = core::DetectionMode::kSwim;
    core::ClusterDeployment dep(sim, opts);
    sim.run_until(seconds(2));
    core::SystemMonitor* mon = dep.monitor();
    EXPECT_NE(mon, nullptr);
    return mon != nullptr ? mon->pdes_board() : std::string("<no monitor>");
  };

  EngineConfig cfg = parallel_cfg(2);
  const std::string board = board_for(&cfg);
  EXPECT_NE(board.find("=== Parallel engine (PDES) ==="), std::string::npos) << board;
  EXPECT_NE(board.find("worker 0"), std::string::npos) << board;
  EXPECT_NE(board.find("worker 1"), std::string::npos) << board;
  EXPECT_NE(board.find("windows="), std::string::npos) << board;
  EXPECT_TRUE(board_for(nullptr).empty());
}

}  // namespace
}  // namespace oftt::sim
