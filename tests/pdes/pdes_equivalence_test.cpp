// Parallel-engine determinism property tests: every pinned scenario
// family — the kernel-style lossy ring, the chaos worst-case corpus,
// the SWIM cluster, and the OPC tag plant — replays under
// EngineKind::kParallel with 1, 2 and 4 workers, and the event-history
// digest must be byte-identical across worker counts for each of five
// seeds. The worker count is the one knob the engine promises is
// unobservable; these tests are the promise, enforced in CI (the
// `pdes` ctest label, run in the OFTT_ENGINE=parallel lane and again
// under TSAN).
//
// Scenarios that draw no rng at all additionally match the sequential
// kernel exactly (covered in pdes_test.cpp); the lossy ones draw from
// per-source-node rng substreams in parallel mode, so their parallel
// digests are a separate (internally deterministic) universe from the
// pinned sequential hashes — which is why the pinned kernel_test /
// corpus hashes are untouched by this PR.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "chaos/corpus.h"
#include "sim/simulation.h"
#include "pdes/pdes_scenarios.h"

namespace oftt::sim {
namespace {

constexpr std::uint64_t kSeeds[] = {101, 202, 303, 404, 505};

EngineConfig parallel_cfg(int workers) {
  EngineConfig cfg;
  cfg.kind = EngineKind::kParallel;
  cfg.workers = workers;
  return cfg;
}

/// Worker counts diffed against the W=1 reference. The CI parallel lane
/// (OFTT_ENGINE=parallel, OFTT_ENGINE_WORKERS=N) pushes one extra count
/// through the whole suite on top of the standard {2, 4}.
std::vector<int> worker_matrix() {
  std::vector<int> ws = {2, 4};
  EngineConfig env = engine_config_from_env();
  if (env.kind == EngineKind::kParallel && env.workers > 1 &&
      std::find(ws.begin(), ws.end(), env.workers) == ws.end()) {
    ws.push_back(env.workers);
  }
  return ws;
}

/// Run `hash_fn(engine_cfg*)` under W=1 and assert every other worker
/// count in the matrix agrees.
template <typename HashFn>
void expect_worker_invariant(HashFn&& hash_fn, const char* what, std::uint64_t seed) {
  EngineConfig w1 = parallel_cfg(1);
  const std::uint64_t reference = hash_fn(&w1);
  for (int workers : worker_matrix()) {
    EngineConfig cfg = parallel_cfg(workers);
    EXPECT_EQ(hash_fn(&cfg), reference)
        << what << ": history diverged at seed " << seed << ", workers " << workers;
  }
}

TEST(PdesEquivalence, LossyKernelRingInvariantAcrossWorkers) {
  for (std::uint64_t seed : kSeeds) {
    expect_worker_invariant(
        [seed](const EngineConfig* cfg) {
          return pdestest::ring_hash(seed, 5, /*lossy=*/true, cfg);
        },
        "lossy ring", seed);
  }
}

TEST(PdesEquivalence, CleanRingMatchesSequentialForEverySeed) {
  std::vector<int> all_workers = worker_matrix();
  all_workers.insert(all_workers.begin(), 1);
  for (std::uint64_t seed : kSeeds) {
    const std::uint64_t seq = pdestest::ring_hash(seed, 5, /*lossy=*/false, nullptr);
    for (int workers : all_workers) {
      EngineConfig cfg = parallel_cfg(workers);
      EXPECT_EQ(pdestest::ring_hash(seed, 5, /*lossy=*/false, &cfg), seq)
          << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(PdesEquivalence, SwimClusterInvariantAcrossWorkers) {
  for (std::uint64_t seed : kSeeds) {
    expect_worker_invariant(
        [seed](const EngineConfig* cfg) {
          return pdestest::swim_cluster_hash(seed, /*replicas=*/9, seconds(20), cfg);
        },
        "swim cluster", seed);
  }
}

TEST(PdesEquivalence, OpcTagFarmInvariantAcrossWorkers) {
  for (std::uint64_t seed : kSeeds) {
    expect_worker_invariant(
        [seed](const EngineConfig* cfg) {
          return pdestest::opc_farm_hash(seed, /*producers=*/6, /*tags_per_node=*/2000,
                                         seconds(2), cfg);
        },
        "opc tag farm", seed);
  }
}

// The checked-in worst-case chaos corpus: every entry replays under the
// parallel engine with an invariant hash across worker counts. (The
// pinned entry.history_hash stays the property of the sequential
// replay, asserted by tests/chaos/corpus_test.cpp.)
TEST(PdesEquivalence, ChaosWorstCaseCorpusInvariantAcrossWorkers) {
  std::ifstream in(OFTT_CHAOS_CORPUS_FILE);
  ASSERT_TRUE(in.good()) << "missing corpus: " << OFTT_CHAOS_CORPUS_FILE;
  std::ostringstream text;
  text << in.rdbuf();
  std::vector<chaos::CorpusEntry> corpus = chaos::parse_corpus(text.str());
  ASSERT_FALSE(corpus.empty());

  for (const chaos::CorpusEntry& entry : corpus) {
    EngineConfig w1 = parallel_cfg(1);
    const chaos::EvalResult reference = chaos::replay(entry, w1);
    EXPECT_GT(reference.events, 0u) << entry.name;
    for (int workers : worker_matrix()) {
      EngineConfig cfg = parallel_cfg(workers);
      const chaos::EvalResult r = chaos::replay(entry, cfg);
      EXPECT_EQ(r.history_hash, reference.history_hash)
          << "corpus entry " << entry.name << " diverged at workers " << workers;
      EXPECT_EQ(r.events, reference.events) << entry.name << " workers " << workers;
      EXPECT_EQ(r.failover_p99, reference.failover_p99) << entry.name << " workers " << workers;
    }
  }
}

}  // namespace
}  // namespace oftt::sim
