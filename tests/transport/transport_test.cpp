// Transport session properties, exercised across seeds and fault mixes:
// exactly-once in-order delivery per receiver lifetime under loss,
// duplication, latency reorder and partitions; session reset on either
// side's reboot; cancel/void semantics; queue policies and window
// backpressure. The chaos and failover suites cover the integrated
// callers — this file attacks the Endpoint directly.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "sim/simulation.h"
#include "transport/session.h"

namespace oftt::transport {
namespace {

constexpr const char* kPort = "xport";

Buffer numbered(std::uint64_t v) {
  BinaryWriter w;
  w.u64(v);
  return std::move(w).take();
}

/// Process attachment owning one Endpoint; delivered payload values are
/// appended to an external log that outlives process reboots.
class TestPeer {
 public:
  TestPeer(sim::Process& p, std::vector<std::uint64_t>* log, SessionConfig config) {
    p.bind(kPort, [this](const sim::Datagram& d) { ep_->handle(d); });
    ep_ = std::make_unique<Endpoint>(p.main_strand(), kPort, std::move(config));
    ep_->on_deliver([log](int, int, const Buffer& b) {
      BinaryReader r(b);
      log->push_back(r.u64());
    });
  }
  Endpoint& ep() { return *ep_; }

 private:
  std::unique_ptr<Endpoint> ep_;
};

struct Harness {
  explicit Harness(std::uint64_t seed) : sim(seed) {
    a = &sim.add_node("a");
    b = &sim.add_node("b");
    net = &sim.add_network("lan");
    net->attach(a->id());
    net->attach(b->id());
    a->boot();
    b->boot();
  }

  TestPeer& install(sim::Node& n, std::vector<std::uint64_t>* log,
                    SessionConfig config = {}) {
    auto proc = n.start_process("xp", nullptr);
    return proc->attachment<TestPeer>(*proc, log, std::move(config));
  }

  sim::Simulation sim;
  sim::Node* a;
  sim::Node* b;
  sim::Network* net;
};

std::vector<std::uint64_t> iota1(std::uint64_t n) {
  std::vector<std::uint64_t> v;
  for (std::uint64_t i = 1; i <= n; ++i) v.push_back(i);
  return v;
}

bool strictly_increasing(const std::vector<std::uint64_t>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return false;
  }
  return true;
}

TEST(Transport, ExactlyOnceInOrderUnderLossDupAndReorderAcrossSeeds) {
  std::uint64_t total_retransmits = 0, total_rx_dups = 0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    SCOPED_TRACE(seed);
    Harness h(seed);
    h.net->set_loss(0.25);
    h.net->set_duplicate(0.20);
    h.net->set_latency(sim::microseconds(100), sim::milliseconds(8));
    std::vector<std::uint64_t> got;
    TestPeer& tx = h.install(*h.a, nullptr);
    TestPeer& rx = h.install(*h.b, &got);
    for (std::uint64_t i = 1; i <= 200; ++i) {
      ASSERT_TRUE(tx.ep().send(h.b->id(), numbered(i)));
    }
    h.sim.run_for(sim::seconds(30));
    EXPECT_EQ(got, iota1(200)) << "gaps, dups or reorder leaked through";
    EXPECT_EQ(tx.ep().inflight_bytes(), 0u) << "everything acked";
    total_retransmits += tx.ep().retransmits();
    total_rx_dups += rx.ep().duplicate_frames();
  }
  // With 25% loss and 20% duplication the faults must actually have
  // been exercised, not quietly absent.
  EXPECT_GT(total_retransmits, 0u);
  EXPECT_GT(total_rx_dups, 0u);
}

TEST(Transport, PartitionStallsThenHealDeliversEverything) {
  for (std::uint64_t seed : {7u, 8u, 9u, 10u, 11u}) {
    SCOPED_TRACE(seed);
    Harness h(seed);
    std::vector<std::uint64_t> got;
    TestPeer& tx = h.install(*h.a, nullptr);
    h.install(*h.b, &got);
    h.net->partition({{h.a->id()}, {h.b->id()}});
    for (std::uint64_t i = 1; i <= 50; ++i) {
      ASSERT_TRUE(tx.ep().send(h.b->id(), numbered(i)));
    }
    h.sim.run_for(sim::seconds(2));
    EXPECT_TRUE(got.empty()) << "partition must block delivery";
    h.net->heal();
    h.sim.run_for(sim::seconds(5));
    EXPECT_EQ(got, iota1(50)) << "retransmission must drain the backlog after heal";
  }
}

TEST(Transport, ReceiverRebootResetsSessionInOrderPerLifetime) {
  for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u}) {
    SCOPED_TRACE(seed);
    Harness h(seed);
    h.net->set_loss(0.05);
    std::vector<std::uint64_t> life1, life2;
    TestPeer& tx = h.install(*h.a, nullptr);
    h.install(*h.b, &life1);
    // Paced sends so the reboot lands mid-stream.
    for (std::uint64_t i = 1; i <= 100; ++i) {
      h.sim.schedule_at(sim::milliseconds(i * 5), [&tx, &h, i] {
        tx.ep().send(h.b->id(), numbered(i));
      });
    }
    h.sim.schedule_at(sim::milliseconds(250), [&h] { h.b->crash(); });
    h.sim.schedule_at(sim::milliseconds(300), [&h, &life2] {
      h.b->boot();
      h.install(*h.b, &life2);
    });
    h.sim.run_for(sim::seconds(10));

    // Each receiver lifetime sees an in-order, duplicate-free stream.
    EXPECT_TRUE(strictly_increasing(life1));
    EXPECT_TRUE(strictly_increasing(life2));
    ASSERT_FALSE(life2.empty());
    EXPECT_EQ(life2.back(), 100u) << "stream must complete after the reset";
    // Nothing is lost across the reboot: frames unacked at the crash are
    // re-dispatched under the fresh epoch (cross-lifetime duplicates are
    // allowed — that is the application dedup layer's job).
    std::set<std::uint64_t> seen(life1.begin(), life1.end());
    seen.insert(life2.begin(), life2.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_GE(tx.ep().session_resets(), 1u)
        << "sender must notice the peer's new incarnation";
  }
}

TEST(Transport, SenderRebootStartsFreshEpochReceiverFollows) {
  for (std::uint64_t seed : {31u, 32u, 33u, 34u, 35u}) {
    SCOPED_TRACE(seed);
    Harness h(seed);
    std::vector<std::uint64_t> got;
    TestPeer& rx = h.install(*h.b, &got);
    auto proc1 = h.a->start_process("xp", nullptr);
    TestPeer& tx1 = proc1->attachment<TestPeer>(*proc1, nullptr, SessionConfig{});
    for (std::uint64_t i = 1; i <= 30; ++i) {
      ASSERT_TRUE(tx1.ep().send(h.b->id(), numbered(i)));
    }
    h.sim.run_for(sim::milliseconds(100));
    // Sender process dies; its unacked frames die with it.
    proc1->kill("mid-stream crash");
    h.sim.run_for(sim::milliseconds(100));
    std::size_t from_first = got.size();
    EXPECT_EQ(got, iota1(from_first)) << "first lifetime delivered a clean prefix";

    // The reborn sender's endpoint opens a strictly newer epoch, so the
    // receiver adopts it and the old stream can never interleave.
    auto proc2 = h.a->start_process("xp2", nullptr);
    TestPeer& tx2 = proc2->attachment<TestPeer>(*proc2, nullptr, SessionConfig{});
    for (std::uint64_t i = 1; i <= 20; ++i) {
      ASSERT_TRUE(tx2.ep().send(h.b->id(), numbered(1000 + i)));
    }
    h.sim.run_for(sim::seconds(5));
    ASSERT_EQ(got.size(), from_first + 20);
    for (std::uint64_t i = 0; i < 20; ++i) {
      EXPECT_EQ(got[from_first + i], 1001 + i);
    }
    EXPECT_EQ(rx.ep().stale_frames(), 0u)
        << "nothing from the dead epoch should arrive after adoption";
  }
}

TEST(Transport, CancelVoidsInflightWithoutStallingSuccessors) {
  Harness h(42);
  std::vector<std::uint64_t> got;
  TestPeer& tx = h.install(*h.a, nullptr);
  h.install(*h.b, &got);
  h.net->partition({{h.a->id()}, {h.b->id()}});
  ASSERT_TRUE(tx.ep().send(h.b->id(), numbered(1), /*tag=*/1));
  ASSERT_TRUE(tx.ep().send(h.b->id(), numbered(2), /*tag=*/2));
  ASSERT_TRUE(tx.ep().send(h.b->id(), numbered(3), /*tag=*/3));
  h.sim.run_for(sim::milliseconds(50));
  EXPECT_EQ(tx.ep().cancel(h.b->id(), 2), 1u);
  h.net->heal();
  h.sim.run_for(sim::seconds(3));
  // The voided slot completes empty: 3 is not stalled behind it, and 2
  // is never delivered.
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(tx.ep().acked_tag(h.b->id()), 3u);
}

TEST(Transport, AckCallbackAndTagWatermark) {
  Harness h(43);
  std::vector<std::uint64_t> got;
  TestPeer& tx = h.install(*h.a, nullptr);
  h.install(*h.b, &got);
  std::vector<std::uint64_t> acked;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(tx.ep().send(h.b->id(), numbered(i), /*tag=*/i * 10,
                             [&acked](std::uint64_t tag) { acked.push_back(tag); }));
  }
  h.sim.run_for(sim::seconds(1));
  EXPECT_EQ(acked, (std::vector<std::uint64_t>{10, 20, 30, 40, 50}));
  EXPECT_EQ(tx.ep().acked_tag(h.b->id()), 50u);
  EXPECT_EQ(tx.ep().acked_tag(999), 0u) << "unknown peer has no watermark";
}

TEST(Transport, RejectPolicyRefusesWhenQueueFullDropOldestSheds) {
  Harness h(44);
  // A second sender node: sessions are keyed per peer node, so the two
  // policies need distinct origins.
  sim::Node* c = &h.sim.add_node("c");
  h.net->attach(c->id());
  c->boot();
  // Tiny window forces queueing; partition keeps everything parked.
  SessionConfig small;
  small.window_bytes = 8;
  small.queue_cap = 2;
  std::vector<std::uint64_t> got;
  TestPeer& tx = h.install(*h.a, nullptr, small);
  h.install(*h.b, &got);
  h.net->partition({{h.a->id()}, {h.b->id()}, {c->id()}});
  EXPECT_TRUE(tx.ep().send(h.b->id(), numbered(1)));   // inflight
  EXPECT_TRUE(tx.ep().send(h.b->id(), numbered(2)));   // queued
  EXPECT_TRUE(tx.ep().send(h.b->id(), numbered(3)));   // queued
  EXPECT_FALSE(tx.ep().send(h.b->id(), numbered(4)));  // kReject: full
  EXPECT_EQ(tx.ep().queued_frames(), 2u);

  SessionConfig shed;
  shed.window_bytes = 8;
  shed.queue_cap = 2;
  shed.queue_policy = QueuePolicy::kDropOldest;
  TestPeer& tx2 = h.install(*c, nullptr, shed);
  EXPECT_TRUE(tx2.ep().send(h.b->id(), numbered(101)));
  EXPECT_TRUE(tx2.ep().send(h.b->id(), numbered(102)));
  EXPECT_TRUE(tx2.ep().send(h.b->id(), numbered(103)));
  EXPECT_TRUE(tx2.ep().send(h.b->id(), numbered(104)));  // sheds 102
  EXPECT_EQ(tx2.ep().queue_drops(), 1u);
  h.net->heal();
  h.sim.run_for(sim::seconds(3));
  // Each origin's stream arrives in order; the shed frame never does.
  std::multiset<std::uint64_t> all(got.begin(), got.end());
  EXPECT_EQ(all, (std::multiset<std::uint64_t>{1, 2, 3, 101, 103, 104}));
}

TEST(Transport, MalformedTransportFramesCountedNotCrashed) {
  Harness h(45);
  std::vector<std::uint64_t> got;
  TestPeer& rx = h.install(*h.b, &got);
  auto proc = h.a->start_process("raw", nullptr);
  // A truncated data frame and a garbage ack, straight onto the port.
  proc->send(0, h.b->id(), kPort, Buffer{kDataFrame, 1, 2}, kPort);
  proc->send(0, h.b->id(), kPort, Buffer{kAckFrame, 0xFF}, kPort);
  h.sim.run_for(sim::milliseconds(50));
  EXPECT_EQ(rx.ep().malformed_frames(), 2u);
  EXPECT_TRUE(got.empty());
}

TEST(Transport, DeterministicAcrossIdenticalSeeds) {
  auto run = [](std::uint64_t seed) {
    Harness h(seed);
    h.net->set_loss(0.2);
    h.net->set_duplicate(0.1);
    std::vector<std::uint64_t> got;
    TestPeer& tx = h.install(*h.a, nullptr);
    h.install(*h.b, &got);
    for (std::uint64_t i = 1; i <= 60; ++i) tx.ep().send(h.b->id(), numbered(i));
    h.sim.run_for(sim::seconds(10));
    return std::make_pair(tx.ep().retransmits(), tx.ep().data_sent());
  };
  EXPECT_EQ(run(77), run(77)) << "same seed, same fault draws, same retransmit count";
  EXPECT_EQ(run(77).second, 60u);
}

}  // namespace
}  // namespace oftt::transport
