// TagStore / SubscriptionHub unit tests: interning, O(changed) dirty
// tracking, shard versioning, region-backed checkpoint sharding, and
// the change-driven group semantics built on top (including the
// percent-deadband first-sample contract).
#include <gtest/gtest.h>

#include <set>

#include "nt/memory.h"
#include "nt/runtime.h"
#include "opc/server.h"
#include "opc/tag_store.h"
#include "sim/simulation.h"

namespace oftt::opc {
namespace {

TEST(TagStore, InterningIsDenseAndStable) {
  TagStore store(4);
  TagId a = store.intern("plant.a");
  TagId b = store.intern("plant.b");
  TagId c = store.intern("plant.c");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(store.intern("plant.b"), b) << "re-intern returns the same id";
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.find("plant.c"), c);
  EXPECT_EQ(store.find("nope"), kInvalidTagId);
  EXPECT_EQ(store.name(b), "plant.b");
}

TEST(TagStore, SortedNamesMatchesSeedBrowseOrder) {
  TagStore store;
  store.intern("zeta");
  store.intern("alpha");
  store.intern("mid");
  std::vector<std::string> names = store.sorted_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "mid");
  EXPECT_EQ(names[2], "zeta");
}

TEST(TagStore, SequentialIdsRoundRobinAcrossShards) {
  TagStore store(8);
  for (int i = 0; i < 16; ++i) store.intern("t" + std::to_string(i));
  std::set<int> shards;
  for (TagId id = 0; id < 8; ++id) shards.insert(store.shard_of(id));
  EXPECT_EQ(shards.size(), 8u) << "first 8 sequential ids land on 8 distinct shards";
}

TEST(TagStore, TimestampOnlyUpdatesAreNotChanges) {
  TagStore store(2);
  TagId t = store.intern("t");
  EXPECT_TRUE(store.set(t, OpcValue::from_real(1.0), Quality::kGood, 10));
  EXPECT_EQ(store.dirty_count(), 1u);
  std::uint64_t ver = store.shard_version(store.shard_of(t));

  // Same value, same quality, later timestamp: stamp refreshes, nothing
  // dirties — the property that makes a mostly-constant scan O(changed).
  EXPECT_FALSE(store.set(t, OpcValue::from_real(1.0), Quality::kGood, 20));
  EXPECT_EQ(store.timestamp(t), 20);
  EXPECT_EQ(store.dirty_count(), 1u);
  EXPECT_EQ(store.shard_version(store.shard_of(t)), ver);
  EXPECT_EQ(store.mutations(), 1u);

  // Quality flip alone is a change.
  EXPECT_TRUE(store.set(t, OpcValue::from_real(1.0), Quality::kUncertain, 30));
  EXPECT_EQ(store.shard_version(store.shard_of(t)), ver + 1);
}

TEST(TagStore, DrainDirtyIsProportionalToChanges) {
  TagStore store(16);
  constexpr int kTags = 1000;
  for (int i = 0; i < kTags; ++i) {
    TagId t = store.intern("tag" + std::to_string(i));
    store.set(t, OpcValue::from_int(i), Quality::kGood, 0);
  }
  store.drain_dirty([](TagId) {});  // settle the initial population

  store.set(3, OpcValue::from_int(-1), Quality::kGood, 1);
  store.set(500, OpcValue::from_int(-2), Quality::kGood, 1);
  store.set(997, OpcValue::from_int(-3), Quality::kGood, 1);
  store.set(3, OpcValue::from_int(-4), Quality::kGood, 1);  // re-dirty, no dup

  std::vector<TagId> drained;
  store.drain_dirty([&](TagId id) { drained.push_back(id); });
  std::set<TagId> unique(drained.begin(), drained.end());
  EXPECT_EQ(drained.size(), 3u) << "dirty list dedups per-tag";
  EXPECT_EQ(unique, (std::set<TagId>{3, 500, 997}));
  EXPECT_EQ(store.dirty_count(), 0u);
}

TEST(TagStore, RegionBindingMarksPreciseDirtyRanges) {
  sim::Simulation sim(1);
  auto& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("p", nullptr);
  auto& memory = nt::NtRuntime::of(*proc).memory();

  TagStore store(4);
  constexpr int kTags = 256;
  for (int i = 0; i < kTags; ++i) {
    TagId t = store.intern("tag" + std::to_string(i));
    store.set(t, OpcValue::from_real(i), Quality::kGood, 0);
  }
  store.bind_regions(memory, "opc.plc");
  ASSERT_TRUE(store.bound());

  // Binding seeds current state; take that as the checkpoint baseline.
  std::size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    nt::Region* r = memory.find("opc.plc." + std::to_string(s));
    ASSERT_NE(r, nullptr);
    r->clear_dirty();
    total += r->size();
  }
  EXPECT_EQ(total, kTags * TagStore::kSlotBytes);

  // Mutate 5 of 256 tags: delta bytes stay ∝ mutations, not tag count.
  for (TagId t : {7u, 8u, 100u, 200u, 255u}) {
    store.set(t, OpcValue::from_real(-1.0), Quality::kGood, 1);
  }
  std::size_t dirty = 0;
  for (int s = 0; s < 4; ++s) {
    dirty += memory.find("opc.plc." + std::to_string(s))->dirty_bytes();
  }
  EXPECT_EQ(dirty, 5 * TagStore::kSlotBytes);
}

TEST(TagStore, ReloadFromRegionsRestoresNumericState) {
  sim::Simulation sim(2);
  auto& node = sim.add_node("n");
  node.boot();
  auto primary_proc = node.start_process("primary", nullptr);
  auto backup_proc = node.start_process("backup", nullptr);
  auto& mem_a = nt::NtRuntime::of(*primary_proc).memory();
  auto& mem_b = nt::NtRuntime::of(*backup_proc).memory();

  auto build = [](TagStore& st) {
    st.intern("real");
    st.intern("int");
    st.intern("flag");
    st.intern("label");
  };
  TagStore primary(2), backup(2);
  build(primary);
  build(backup);
  primary.set(0, OpcValue::from_real(3.25), Quality::kGood, 100);
  primary.set(1, OpcValue::from_int(-42), Quality::kUncertain, 101);
  primary.set(2, OpcValue::from_bool(true), Quality::kGood, 102);
  primary.set(3, OpcValue::from_string("ram-only"), Quality::kGood, 103);
  primary.bind_regions(mem_a, "s");
  backup.bind_regions(mem_b, "s");

  // Simulate the FTIM checkpoint path: region bytes ship primary ->
  // backup, then the backup-side store reloads on activation.
  for (int s = 0; s < 2; ++s) {
    nt::Region* src = mem_a.find("s." + std::to_string(s));
    nt::Region* dst = mem_b.find("s." + std::to_string(s));
    ASSERT_NE(src, nullptr);
    ASSERT_NE(dst, nullptr);
    ASSERT_EQ(src->size(), dst->size());
    std::memcpy(dst->data(), src->data(), src->size());
  }
  backup.reload_from_regions();

  EXPECT_EQ(backup.value(0), OpcValue::from_real(3.25));
  EXPECT_EQ(backup.quality(0), Quality::kGood);
  EXPECT_EQ(backup.timestamp(0), 100);
  EXPECT_EQ(backup.value(1), OpcValue::from_int(-42));
  EXPECT_EQ(backup.quality(1), Quality::kUncertain);
  EXPECT_EQ(backup.value(2), OpcValue::from_bool(true));
  // String slots are RAM-only: reload leaves whatever the backup had.
  EXPECT_FALSE(backup.value(3).is_string());
}

// --- SubscriptionHub ---

TEST(SubscriptionHub, FreshSubscriptionAnnouncesWithoutMutation) {
  TagStore store(2);
  TagId t = store.intern("t");
  store.set(t, OpcValue::from_int(1), Quality::kGood, 0);
  store.drain_dirty([](TagId) {});

  SubscriptionHub hub(store);
  auto sub = hub.add_subscription();
  hub.subscribe(sub, t);
  hub.pump(10);
  std::vector<TagId> pending;
  hub.take_pending(sub, pending);
  ASSERT_EQ(pending.size(), 1u) << "initial update with no store change";
  EXPECT_EQ(pending[0], t);

  hub.take_pending(sub, pending);
  EXPECT_TRUE(pending.empty()) << "announced once, then quiescent";
}

TEST(SubscriptionHub, RoutesEachChangeToEverySubscriberOnce) {
  TagStore store(2);
  TagId a = store.intern("a");
  TagId b = store.intern("b");
  SubscriptionHub hub(store);
  auto s1 = hub.add_subscription();
  auto s2 = hub.add_subscription();
  hub.subscribe(s1, a);
  hub.subscribe(s1, b);
  hub.subscribe(s2, b);
  hub.pump(0);
  std::vector<TagId> drain;
  hub.take_pending(s1, drain);
  hub.take_pending(s2, drain);

  store.set(b, OpcValue::from_int(7), Quality::kGood, 1);
  hub.pump(1);
  hub.pump(1);  // second pump at the same timestamp is a no-op

  std::vector<TagId> p1, p2;
  hub.take_pending(s1, p1);
  hub.take_pending(s2, p2);
  EXPECT_EQ(p1, std::vector<TagId>{b});
  EXPECT_EQ(p2, std::vector<TagId>{b});

  // Slow consumer: s2 misses a pump cycle but still sees the change
  // exactly once, not once per pump.
  store.set(a, OpcValue::from_int(9), Quality::kGood, 2);
  hub.pump(2);
  store.set(a, OpcValue::from_int(10), Quality::kGood, 3);
  hub.pump(3);
  hub.take_pending(s1, p1);
  EXPECT_EQ(p1, std::vector<TagId>{a}) << "two mutations of one tag dedup to one pending entry";
}

TEST(SubscriptionHub, InvalidateAllReannouncesEverything) {
  TagStore store(2);
  TagId a = store.intern("a");
  TagId b = store.intern("b");
  SubscriptionHub hub(store);
  auto sub = hub.add_subscription();
  hub.subscribe(sub, a);
  hub.subscribe(sub, b);
  hub.pump(0);
  std::vector<TagId> p;
  hub.take_pending(sub, p);

  hub.invalidate_all();  // the device-fault path: no store mutation at all
  hub.take_pending(sub, p);
  EXPECT_EQ(p, (std::vector<TagId>{a, b}));
}

TEST(SubscriptionHub, UnsubscribeStopsRouting) {
  TagStore store(2);
  TagId t = store.intern("t");
  SubscriptionHub hub(store);
  auto sub = hub.add_subscription();
  hub.subscribe(sub, t);
  hub.pump(0);
  std::vector<TagId> p;
  hub.take_pending(sub, p);

  hub.unsubscribe(sub, t);
  store.set(t, OpcValue::from_int(5), Quality::kGood, 1);
  hub.pump(1);
  hub.take_pending(sub, p);
  EXPECT_TRUE(p.empty());

  hub.remove_subscription(sub);
  auto reused = hub.add_subscription();
  EXPECT_EQ(reused, sub) << "dead subscription slots are reused";
}

// --- Device string API preservation + fault semantics ---

class ManualDevice final : public Device {
 public:
  using Device::Device;
  void poke(const std::string& tag, OpcValue v, sim::SimTime now,
            Quality q = Quality::kGood) {
    set_point(tag, std::move(v), now, q);
  }
};

TEST(Device, StringApiPreservedOverTagStore) {
  ManualDevice dev("d");
  dev.poke("x", OpcValue::from_real(1.5), 10);
  EXPECT_TRUE(dev.has_tag("x"));
  EXPECT_FALSE(dev.has_tag("y"));

  ItemState s = dev.read("x", 20);
  EXPECT_EQ(s.item_id, "x");
  EXPECT_EQ(s.value, OpcValue::from_real(1.5));
  EXPECT_EQ(s.quality, Quality::kGood);
  EXPECT_EQ(s.timestamp, 10);

  ItemState missing = dev.read("y", 20);
  EXPECT_EQ(missing.quality, Quality::kBad) << "unknown tags read BAD, not fail";

  EXPECT_EQ(dev.write("x", OpcValue::from_real(2.0), 30), S_OK);
  EXPECT_EQ(dev.read("x", 31).value, OpcValue::from_real(2.0));
  EXPECT_EQ(dev.write("y", OpcValue::from_int(0), 30), E_INVALIDARG);
}

TEST(Device, FaultedDeviceDegradesQualityAndRejectsWrites) {
  ManualDevice dev("d");
  dev.poke("x", OpcValue::from_real(1.0), 0);
  dev.set_faulted(true);
  EXPECT_EQ(dev.read("x", 1).quality, Quality::kBad);
  EXPECT_EQ(dev.write("x", OpcValue::from_real(2.0), 1), E_FAIL);
  dev.set_faulted(false);
  EXPECT_EQ(dev.read("x", 2).quality, Quality::kGood);
  EXPECT_EQ(dev.read("x", 2).value, OpcValue::from_real(1.0)) << "value survived the fault";
}

// --- Change-driven group: deadband first-sample semantics ---

class CountingSink final : public com::Object<CountingSink, IOPCDataCallback> {
 public:
  void OnDataChange(std::uint32_t, const std::vector<ItemState>& items) override {
    for (const auto& i : items) values.push_back(i.value.as_real());
  }
  void OnReadComplete(std::uint32_t, HRESULT, const std::vector<ItemState>&) override {}
  std::vector<double> values;
};

class DeadbandFirstSample : public ::testing::Test {
 protected:
  DeadbandFirstSample() {
    node_ = &sim_.add_node("n");
    node_->boot();
    proc_ = node_->start_process("p", nullptr);
    dev_ = std::make_shared<ManualDevice>("d");
    dev_->start(proc_->main_strand(), sim_.fork_rng("d"));
    group_ = OpcGroupObject::create(*proc_, dev_, "g", sim::milliseconds(10));
    sink_ = CountingSink::create();
  }

  void poke(double v) { dev_->poke("x", OpcValue::from_real(v), sim_.now()); }
  void tick() { sim_.run_for(sim::milliseconds(10)); }

  sim::Simulation sim_{3};
  sim::Node* node_;
  std::shared_ptr<sim::Process> proc_;
  std::shared_ptr<ManualDevice> dev_;
  com::ComPtr<OpcGroupObject> group_;
  com::ComPtr<CountingSink> sink_;
};

TEST_F(DeadbandFirstSample, FirstChangeAlwaysNotifiesAndRangeWarmsUpMonotonically) {
  poke(100.0);
  group_->AddItems({"x"}, nullptr);
  group_->SetDeadband(50.0, nullptr);  // brutal deadband: half the observed range
  group_->SetCallback(com::ComPtr<IOPCDataCallback>(sink_.get()), nullptr);

  tick();
  ASSERT_EQ(sink_->values, std::vector<double>{100.0}) << "initial update";

  // The very first *change* after subscription: the sample joins the
  // range before the check, so delta == range and no deadband fraction
  // below 100% can suppress it.
  poke(100.1);
  tick();
  ASSERT_EQ(sink_->values.size(), 2u) << "first change never deadband-suppressed";
  EXPECT_EQ(sink_->values.back(), 100.1);

  // Now the observed range is [100.0, 100.1]; a same-magnitude wiggle is
  // below 50% of it only if the range did NOT grow — but every sample
  // widens the range first, so this one announces too (delta 0.1 ==
  // range 0.1... then range [100.0, 100.2], delta/range = 0.5, not < 0.5).
  poke(100.2);
  tick();
  ASSERT_EQ(sink_->values.size(), 3u);

  // Warm the range up: a big swing widens it to [100.0, 200.2]...
  poke(200.2);
  tick();
  ASSERT_EQ(sink_->values.size(), 4u);
  // ...after which a 0.1 move is < 50% of the range: suppressed.
  poke(200.3);
  tick();
  EXPECT_EQ(sink_->values.size(), 4u) << "sub-deadband move suppressed after warm-up";
  EXPECT_GE(group_->suppressed_total(), 1u);
  // The range never narrows: small moves stay suppressed forever.
  poke(200.25);
  tick();
  EXPECT_EQ(sink_->values.size(), 4u);
  // A quality change pierces the deadband unconditionally.
  dev_->poke("x", OpcValue::from_real(200.25), sim_.now(), Quality::kUncertain);
  tick();
  EXPECT_EQ(sink_->values.size(), 5u) << "quality transitions are never suppressed";
}

TEST_F(DeadbandFirstSample, ReannounceAfterSetCallbackKeepsWarmedRange) {
  poke(0.0);
  group_->AddItems({"x"}, nullptr);
  group_->SetDeadband(10.0, nullptr);
  group_->SetCallback(com::ComPtr<IOPCDataCallback>(sink_.get()), nullptr);
  tick();
  poke(100.0);  // range warms to [0, 100]
  tick();
  ASSERT_EQ(sink_->values.size(), 2u);

  // New sink: everything re-announces once (seen reset)...
  auto sink2 = CountingSink::create();
  group_->SetCallback(com::ComPtr<IOPCDataCallback>(sink2.get()), nullptr);
  tick();
  ASSERT_EQ(sink2->values, std::vector<double>{100.0});
  // ...but the observed range survives the sink swap: a 5-unit move
  // against the [0,100] range is still inside the 10% deadband.
  poke(105.0);
  tick();
  EXPECT_EQ(sink2->values.size(), 1u) << "range is per-item state, not per-sink";
}

}  // namespace
}  // namespace oftt::opc
