// OPC layer tests: values/quality, devices, server groups, sync/async
// IO, subscriptions over DCOM, and the client's reconnect compensation.
#include <gtest/gtest.h>

#include "dcom/scm.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/devices/telephone.h"
#include "opc/server.h"
#include "sim/simulation.h"

namespace oftt::opc {
namespace {

TEST(OpcValue, TypesAndCoercion) {
  EXPECT_TRUE(OpcValue().empty());
  EXPECT_EQ(OpcValue::from_bool(true).as_int(), 1);
  EXPECT_EQ(OpcValue::from_int(7).as_real(), 7.0);
  EXPECT_DOUBLE_EQ(OpcValue::from_real(2.5).as_real(), 2.5);
  EXPECT_EQ(OpcValue::from_real(2.9).as_int(), 2);
  EXPECT_EQ(OpcValue::from_string("x").as_string(), "x");
  EXPECT_EQ(OpcValue::from_int(3).as_string(), "3");
  EXPECT_FALSE(OpcValue::from_int(0).as_bool());
}

TEST(OpcValue, MarshalRoundTripAllTypes) {
  for (const OpcValue& v :
       {OpcValue(), OpcValue::from_bool(true), OpcValue::from_int(-9),
        OpcValue::from_real(3.5), OpcValue::from_string("tag value")}) {
    BinaryWriter w;
    v.marshal(w);
    Buffer b = std::move(w).take();
    BinaryReader r(b);
    EXPECT_EQ(OpcValue::unmarshal(r), v);
  }
}

TEST(ItemStates, VectorMarshalRoundTrip) {
  std::vector<ItemState> items{
      {"a", OpcValue::from_int(1), Quality::kGood, sim::seconds(1)},
      {"b", OpcValue(), Quality::kBad, 0},
  };
  BinaryWriter w;
  marshal_item_states(w, items);
  Buffer b = std::move(w).take();
  BinaryReader r(b);
  EXPECT_EQ(unmarshal_item_states(r), items);
}

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() {
    node_ = &sim_.add_node("plc");
    node_->boot();
    proc_ = node_->start_process("driver", nullptr);
  }
  sim::Simulation sim_{3};
  sim::Node* node_;
  std::shared_ptr<sim::Process> proc_;
};

TEST_F(DeviceTest, PlcScansInputsOnCycle) {
  auto plc = std::make_shared<PlcDevice>("PLC1", sim::milliseconds(10));
  plc->add_input("Tank.Level", std::make_unique<SineSignal>(50.0, 10.0, 60.0));
  plc->add_input("Pump.Count", std::make_unique<CounterSignal>());
  plc->start(proc_->main_strand(), sim_.fork_rng("plc"));

  EXPECT_EQ(plc->read("Tank.Level", 0).quality, Quality::kUncertain) << "no scan yet";
  sim_.run_for(sim::milliseconds(105));
  EXPECT_EQ(plc->scan_count(), 10u);
  ItemState level = plc->read("Tank.Level", sim_.now());
  EXPECT_EQ(level.quality, Quality::kGood);
  EXPECT_NEAR(level.value.as_real(), 50.0, 11.0);
  EXPECT_GE(plc->read("Pump.Count", sim_.now()).value.as_int(), 9);
}

TEST_F(DeviceTest, OutputsWritableInputsNot) {
  auto plc = std::make_shared<PlcDevice>("PLC1", sim::milliseconds(10));
  plc->add_input("Sensor", std::make_unique<SquareSignal>(1.0));
  plc->add_output("Valve.Cmd", OpcValue::from_bool(false));
  plc->start(proc_->main_strand(), sim_.fork_rng("plc"));
  EXPECT_EQ(plc->write("Valve.Cmd", OpcValue::from_bool(true), 0), S_OK);
  EXPECT_TRUE(plc->read("Valve.Cmd", 0).value.as_bool());
  EXPECT_EQ(plc->write("Sensor", OpcValue::from_bool(true), 0), E_FAIL);
  EXPECT_EQ(plc->write("NoSuchTag", OpcValue::from_bool(true), 0), E_INVALIDARG);
}

TEST_F(DeviceTest, FaultedDeviceReadsBad) {
  auto plc = std::make_shared<PlcDevice>("PLC1", sim::milliseconds(10));
  plc->add_input("Sensor", std::make_unique<CounterSignal>());
  plc->start(proc_->main_strand(), sim_.fork_rng("plc"));
  sim_.run_for(sim::milliseconds(50));
  EXPECT_EQ(plc->read("Sensor", sim_.now()).quality, Quality::kGood);
  plc->set_faulted(true);
  EXPECT_EQ(plc->read("Sensor", sim_.now()).quality, Quality::kBad);
  EXPECT_EQ(plc->write("Sensor", OpcValue::from_int(1), 0), E_FAIL);
}

TEST_F(DeviceTest, UnknownTagReadsBadQuality) {
  auto plc = std::make_shared<PlcDevice>("PLC1", sim::milliseconds(10));
  EXPECT_EQ(plc->read("nope", 0).quality, Quality::kBad);
}

TEST_F(DeviceTest, RandomWalkStaysBounded) {
  auto model = std::make_unique<RandomWalkSignal>(5.0, 1.0, 0.0, 10.0);
  sim::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = model->sample(0, rng).as_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST_F(DeviceTest, TelephoneSystemObeysLineLimit) {
  TelephoneSystem::Config cfg;
  cfg.lines = 5;
  cfg.callers = 10;
  cfg.mean_think_s = 2.0;
  cfg.mean_hold_s = 4.0;  // heavy load -> blocking
  auto tel = std::make_shared<TelephoneSystem>(cfg);
  int max_busy = 0;
  tel->set_event_listener([&](const CallEvent&) { max_busy = std::max(max_busy, tel->busy_lines()); });
  tel->start(proc_->main_strand(), sim_.fork_rng("tel"));
  sim_.run_for(sim::minutes(10));
  EXPECT_LE(max_busy, 5);
  EXPECT_GT(tel->total_calls(), 50u);
  EXPECT_GT(tel->blocked_calls(), 0u) << "10 callers on 5 lines at this load must block";
  EXPECT_EQ(tel->read("Tel.BusyLines", sim_.now()).value.as_int(), tel->busy_lines());
}

// --- full OPC server/client over DCOM ---

const Clsid kPlcServerClsid = Guid::from_name("CLSID_PlcOpcServer");

class OpcEndToEnd : public ::testing::Test {
 protected:
  OpcEndToEnd() : sim_(17) {
    server_node_ = &sim_.add_node("industrial_pc");
    client_node_ = &sim_.add_node("monitor_pc");
    auto& net = sim_.add_network("lan");
    net.attach(server_node_->id());
    net.attach(client_node_->id());

    server_node_->set_boot_script([this](sim::Node& node) {
      dcom::install_scm(node);
      node.start_process("opcserver", [this](sim::Process& proc) {
        plc_ = std::make_shared<PlcDevice>("PLC1", sim::milliseconds(20));
        plc_->add_input("Line.Speed", std::make_unique<CounterSignal>());
        plc_->add_input("Tank.Level", std::make_unique<SineSignal>(50, 10, 30));
        plc_->add_output("Valve.Cmd", OpcValue::from_bool(false));
        install_opc_server(proc, kPlcServerClsid, plc_, "SoHaR simulated");
      });
    });
    server_node_->boot();
    client_node_->boot();
    client_proc_ = client_node_->start_process("hmi", nullptr);
  }

  sim::Simulation sim_;
  sim::Node* server_node_;
  sim::Node* client_node_;
  std::shared_ptr<sim::Process> client_proc_;
  std::shared_ptr<PlcDevice> plc_;
};

TEST_F(OpcEndToEnd, SubscriptionDeliversChangingData) {
  OpcConnection conn(*client_proc_, server_node_->id(), kPlcServerClsid);
  std::vector<ItemState> last;
  conn.subscribe({"Line.Speed", "Tank.Level"},
                 [&](const std::vector<ItemState>& items) {
                   for (const auto& i : items) last.push_back(i);
                 });
  sim_.run_for(sim::seconds(2));
  EXPECT_TRUE(conn.connected());
  EXPECT_GT(conn.updates_received(), 10u);
  bool saw_speed = false;
  for (const auto& i : last) {
    if (i.item_id == "Line.Speed") {
      saw_speed = true;
      EXPECT_EQ(i.quality, Quality::kGood);
    }
  }
  EXPECT_TRUE(saw_speed);
}

TEST_F(OpcEndToEnd, SyncReadAndWriteThroughGroup) {
  OpcConnection conn(*client_proc_, server_node_->id(), kPlcServerClsid);
  conn.subscribe({"Valve.Cmd"}, nullptr);
  sim_.run_for(sim::milliseconds(500));
  ASSERT_TRUE(conn.connected());

  HRESULT whr = E_FAIL;
  conn.write("Valve.Cmd", OpcValue::from_bool(true), [&](HRESULT hr) { whr = hr; });
  sim_.run_for(sim::milliseconds(100));
  EXPECT_EQ(whr, S_OK);

  std::vector<ItemState> read_back;
  conn.read({"Valve.Cmd"}, [&](HRESULT, const std::vector<ItemState>& items) {
    read_back = items;
  });
  sim_.run_for(sim::milliseconds(100));
  ASSERT_EQ(read_back.size(), 1u);
  EXPECT_TRUE(read_back[0].value.as_bool());
}

TEST_F(OpcEndToEnd, ChangesOnlyDeliveredOnChange) {
  // A constant output should be announced once, not every update tick.
  OpcConnection conn(*client_proc_, server_node_->id(), kPlcServerClsid);
  int valve_updates = 0;
  conn.subscribe({"Valve.Cmd"}, [&](const std::vector<ItemState>& items) {
    for (const auto& i : items) {
      if (i.item_id == "Valve.Cmd") ++valve_updates;
    }
  });
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(valve_updates, 1) << "unchanged item must not be re-announced";
}

TEST_F(OpcEndToEnd, DeviceFaultDegradesQuality) {
  OpcConnection conn(*client_proc_, server_node_->id(), kPlcServerClsid);
  Quality last_quality = Quality::kGood;
  conn.subscribe({"Line.Speed"}, [&](const std::vector<ItemState>& items) {
    for (const auto& i : items) last_quality = i.quality;
  });
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(last_quality, Quality::kGood);
  plc_->set_faulted(true);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(last_quality, Quality::kBad);
}

TEST_F(OpcEndToEnd, StalenessWatchdogReconnectsAfterServerRestart) {
  OpcConnection::Config cfg;
  cfg.staleness_timeout = sim::milliseconds(800);
  cfg.retry_backoff = sim::milliseconds(200);
  OpcConnection conn(*client_proc_, server_node_->id(), kPlcServerClsid, cfg);
  std::uint64_t updates_before = 0;
  conn.subscribe({"Line.Speed"}, nullptr);
  sim_.run_for(sim::seconds(1));
  ASSERT_TRUE(conn.connected());
  updates_before = conn.updates_received();

  // Kill the OPC server app; subscription goes silent; the client's
  // compensation logic must reconnect (SCM relaunches the server).
  server_node_->find_process("opcserver")->kill("server fault");
  sim_.run_for(sim::seconds(5));
  EXPECT_GT(conn.reconnects(), 0u);
  EXPECT_GT(conn.updates_received(), updates_before) << "data must flow again";
}

TEST_F(OpcEndToEnd, AddItemsReportsPerItemErrors) {
  OpcConnection conn(*client_proc_, server_node_->id(), kPlcServerClsid);
  conn.subscribe({"Line.Speed"}, nullptr);
  sim_.run_for(sim::milliseconds(500));
  ASSERT_TRUE(conn.connected());
  // Drive the raw interface for the per-item result check.
  std::vector<ItemState> items;
  conn.read({"Line.Speed", "Bogus.Tag"},
            [&](HRESULT, const std::vector<ItemState>& r) { items = r; });
  sim_.run_for(sim::milliseconds(100));
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].quality, Quality::kGood);
  EXPECT_EQ(items[1].quality, Quality::kBad);
}

}  // namespace
}  // namespace oftt::opc
