// Tests for the OPC percent deadband and MSMQ queue quotas.
#include <gtest/gtest.h>

#include <cmath>

#include "msmq/queue_manager.h"
#include "opc/server.h"
#include "sim/simulation.h"

namespace oftt {
namespace {

class NoiseSignal final : public opc::SignalModel {
 public:
  NoiseSignal(double base, double jitter, double spike_every_s)
      : base_(base), jitter_(jitter), spike_every_s_(spike_every_s) {}
  opc::OpcValue sample(double t, sim::Rng& rng) override {
    double v = base_ + (rng.next_double() - 0.5) * jitter_;
    if (spike_every_s_ > 0 && std::fmod(t, spike_every_s_) < 0.05) v = base_ * 2;
    return opc::OpcValue::from_real(v);
  }

 private:
  double base_, jitter_, spike_every_s_;
};

class CountingSink final : public com::Object<CountingSink, opc::IOPCDataCallback> {
 public:
  void OnDataChange(std::uint32_t, const std::vector<opc::ItemState>& items) override {
    count += items.size();
  }
  void OnReadComplete(std::uint32_t, HRESULT, const std::vector<opc::ItemState>&) override {}
  std::size_t count = 0;
};

TEST(Deadband, SuppressesJitterPassesSpikes) {
  sim::Simulation sim(111);
  sim::Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("opcserver", nullptr);
  // ±0.5 jitter around 100, with 2x spikes every 5 s.
  auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(10));
  plc->add_input("Noisy", std::make_unique<NoiseSignal>(100.0, 1.0, 5.0));
  plc->start(proc->main_strand(), sim.fork_rng("plc"));
  auto server = opc::OpcServerObject::create(*proc, plc, "v");

  auto run_with_deadband = [&](double percent) {
    com::ComPtr<opc::IOPCGroup> group;
    server->AddGroup("g" + std::to_string(percent), sim::milliseconds(10),
                     [&](HRESULT, com::ComPtr<opc::IOPCGroup> g) { group = std::move(g); });
    group->AddItems({"Noisy"}, nullptr);
    if (percent > 0) {
      HRESULT hr = E_FAIL;
      group->SetDeadband(percent, [&](HRESULT h) { hr = h; });
      EXPECT_EQ(hr, S_OK);
    }
    auto sink = CountingSink::create();
    group->SetCallback(com::ComPtr<opc::IOPCDataCallback>(sink.get()), nullptr);
    sim.run_for(sim::seconds(20));
    group->SetActive(false, nullptr);
    return sink->count;
  };

  std::size_t raw = run_with_deadband(0.0);
  std::size_t damped = run_with_deadband(20.0);
  EXPECT_GT(raw, 1000u) << "every jittered sample announced";
  EXPECT_LT(damped, raw / 5) << "deadband suppresses jitter";
  EXPECT_GT(damped, 2u) << "spikes still get through";
}

TEST(Deadband, RejectsInvalidPercent) {
  sim::Simulation sim(112);
  sim::Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("opcserver", nullptr);
  auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(10));
  auto server = opc::OpcServerObject::create(*proc, plc, "v");
  com::ComPtr<opc::IOPCGroup> group;
  server->AddGroup("g", sim::milliseconds(10),
                   [&](HRESULT, com::ComPtr<opc::IOPCGroup> g) { group = std::move(g); });
  HRESULT hr = S_OK;
  group->SetDeadband(-1.0, [&](HRESULT h) { hr = h; });
  EXPECT_EQ(hr, E_INVALIDARG);
  group->SetDeadband(101.0, [&](HRESULT h) { hr = h; });
  EXPECT_EQ(hr, E_INVALIDARG);
}

TEST(MsmqQuota, RejectsBeyondQuotaAndCounts) {
  sim::Simulation sim(113);
  sim::Node& node = sim.add_node("n");
  node.set_boot_script([](sim::Node& n) { msmq::QueueManager::install(n); });
  node.boot();
  auto* qm = msmq::QueueManager::find(node);
  qm->config().queue_quota = 5;
  auto app = node.start_process("app", nullptr);
  for (int i = 0; i < 12; ++i) {
    msmq::MsmqApi::of(*app).send("inbox", "m", Buffer{});
  }
  sim.run_for(sim::milliseconds(200));
  EXPECT_EQ(qm->local_depth("inbox"), 5u);
  EXPECT_EQ(qm->quota_rejections(), 7u);
  EXPECT_EQ(sim.counter_value("msmq.quota_rejected"), 7u);
}

TEST(MsmqQuota, DrainingReopensTheQueue) {
  sim::Simulation sim(114);
  sim::Node& node = sim.add_node("n");
  node.set_boot_script([](sim::Node& n) { msmq::QueueManager::install(n); });
  node.boot();
  auto* qm = msmq::QueueManager::find(node);
  qm->config().queue_quota = 3;
  auto app = node.start_process("app", nullptr);
  for (int i = 0; i < 5; ++i) msmq::MsmqApi::of(*app).send("inbox", "m", Buffer{});
  sim.run_for(sim::milliseconds(200));
  ASSERT_EQ(qm->local_depth("inbox"), 3u);

  int got = 0;
  msmq::MsmqApi::of(*app).subscribe("inbox", [&](const msmq::Message&) { ++got; });
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(got, 3);
  // Now there is room again.
  msmq::MsmqApi::of(*app).send("inbox", "late", Buffer{});
  sim.run_for(sim::milliseconds(200));
  EXPECT_EQ(got, 4);
}

TEST(MsmqPurge, RemovesAndReportsCount) {
  sim::Simulation sim(115);
  sim::Node& node = sim.add_node("n");
  node.set_boot_script([](sim::Node& n) { msmq::QueueManager::install(n); });
  node.boot();
  auto* qm = msmq::QueueManager::find(node);
  auto app = node.start_process("app", nullptr);
  for (int i = 0; i < 4; ++i) msmq::MsmqApi::of(*app).send("inbox", "m", Buffer{});
  sim.run_for(sim::milliseconds(200));
  EXPECT_EQ(qm->purge("inbox"), 4u);
  EXPECT_EQ(qm->local_depth("inbox"), 0u);
  EXPECT_EQ(qm->purge("inbox"), 0u);
  EXPECT_EQ(qm->purge("never-existed"), 0u);
}

}  // namespace
}  // namespace oftt
