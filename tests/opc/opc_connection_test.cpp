// OpcConnection lifecycle edge cases: connecting to a dead node,
// pre-connection operations, multiple independent connections, and
// backoff behaviour while the server is missing.
#include <gtest/gtest.h>

#include "dcom/scm.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"
#include "sim/simulation.h"

namespace oftt::opc {
namespace {

const Clsid kClsid = Guid::from_name("CLSID_ConnTestPlc");

class ConnTest : public ::testing::Test {
 protected:
  ConnTest() : sim_(141) {
    server_ = &sim_.add_node("server");
    client_ = &sim_.add_node("client");
    auto& net = sim_.add_network("lan");
    net.attach(server_->id());
    net.attach(client_->id());
    server_->set_boot_script([](sim::Node& node) {
      dcom::install_scm(node);
      node.start_process("opcserver", [](sim::Process& proc) {
        auto plc = std::make_shared<PlcDevice>("PLC", sim::milliseconds(10));
        plc->add_input("Sig", std::make_unique<CounterSignal>());
        install_opc_server(proc, kClsid, plc, "v");
      });
    });
    client_->boot();
    hmi_ = client_->start_process("hmi", nullptr);
  }

  sim::Simulation sim_;
  sim::Node* server_;
  sim::Node* client_;
  std::shared_ptr<sim::Process> hmi_;
};

TEST_F(ConnTest, SubscribeBeforeServerBootsConnectsWhenItArrives) {
  // Server node is still powered off; the connection keeps retrying
  // with backoff and latches on once the node boots.
  OpcConnection::Config cfg;
  cfg.retry_backoff = sim::milliseconds(300);
  OpcConnection conn(*hmi_, server_->id(), kClsid, cfg);
  int updates = 0;
  conn.subscribe({"Sig"}, [&](const std::vector<ItemState>&) { ++updates; });
  sim_.run_for(sim::seconds(5));
  EXPECT_FALSE(conn.connected());
  EXPECT_GT(conn.failures_seen(), 2u) << "kept retrying";

  server_->boot();
  sim_.run_for(sim::seconds(5));
  EXPECT_TRUE(conn.connected());
  EXPECT_GT(updates, 0);
}

TEST_F(ConnTest, ReadAndWriteBeforeConnectedFailCleanly) {
  OpcConnection conn(*hmi_, server_->id(), kClsid);
  HRESULT read_hr = S_OK, write_hr = S_OK;
  conn.read({"Sig"}, [&](HRESULT hr, const std::vector<ItemState>&) { read_hr = hr; });
  conn.write("Sig", OpcValue::from_int(1), [&](HRESULT hr) { write_hr = hr; });
  EXPECT_TRUE(FAILED(read_hr));
  EXPECT_TRUE(FAILED(write_hr));
}

TEST_F(ConnTest, TwoIndependentConnectionsGetIndependentGroups) {
  server_->boot();
  auto hmi2 = client_->start_process("hmi2", nullptr);
  OpcConnection a(*hmi_, server_->id(), kClsid);
  OpcConnection b(*hmi2, server_->id(), kClsid);
  int ua = 0, ub = 0;
  a.subscribe({"Sig"}, [&](const std::vector<ItemState>&) { ++ua; });
  b.subscribe({"Sig"}, [&](const std::vector<ItemState>&) { ++ub; });
  sim_.run_for(sim::seconds(2));
  EXPECT_TRUE(a.connected());
  EXPECT_TRUE(b.connected());
  EXPECT_GT(ua, 5);
  EXPECT_GT(ub, 5);
}

TEST_F(ConnTest, ServerNodeCrashMidSubscriptionRecoversAfterReboot) {
  server_->boot();
  OpcConnection::Config cfg;
  cfg.staleness_timeout = sim::milliseconds(500);
  cfg.retry_backoff = sim::milliseconds(300);
  OpcConnection conn(*hmi_, server_->id(), kClsid, cfg);
  int updates = 0;
  conn.subscribe({"Sig"}, [&](const std::vector<ItemState>&) { ++updates; });
  sim_.run_for(sim::seconds(2));
  ASSERT_TRUE(conn.connected());
  int before = updates;

  server_->crash();
  sim_.run_for(sim::seconds(3));
  EXPECT_EQ(updates, before) << "nothing while the node is dark";

  server_->boot();  // boot script reinstalls SCM + server
  sim_.run_for(sim::seconds(5));
  EXPECT_GT(updates, before) << "recovered without caller involvement";
  EXPECT_GT(conn.reconnects(), 0u);
}

TEST_F(ConnTest, UpdatesCountedPerBatchDelivery) {
  server_->boot();
  OpcConnection conn(*hmi_, server_->id(), kClsid);
  conn.subscribe({"Sig"}, nullptr);  // null data handler is legal
  sim_.run_for(sim::seconds(2));
  EXPECT_GT(conn.updates_received(), 10u);
}

}  // namespace
}  // namespace oftt::opc
