// OpcServerObject/OpcGroupObject unit tests — the in-process behaviour
// of the OPC server, without DCOM in the way.
#include <gtest/gtest.h>

#include "opc/server.h"
#include "sim/simulation.h"

namespace oftt::opc {
namespace {

class CollectingSink final : public com::Object<CollectingSink, IOPCDataCallback> {
 public:
  void OnDataChange(std::uint32_t, const std::vector<ItemState>& items) override {
    for (const auto& i : items) changes.push_back(i);
  }
  void OnReadComplete(std::uint32_t transaction, HRESULT hr,
                      const std::vector<ItemState>& items) override {
    read_transactions.push_back(transaction);
    read_hr = hr;
    read_items = items;
  }
  std::vector<ItemState> changes;
  std::vector<std::uint32_t> read_transactions;
  HRESULT read_hr = E_FAIL;
  std::vector<ItemState> read_items;
};

class OpcServerUnit : public ::testing::Test {
 protected:
  OpcServerUnit() {
    node_ = &sim_.add_node("n");
    node_->boot();
    proc_ = node_->start_process("opcserver", nullptr);
    plc_ = std::make_shared<PlcDevice>("PLC", sim::milliseconds(10));
    plc_->add_input("Sig", std::make_unique<CounterSignal>());
    plc_->add_output("Out", OpcValue::from_int(0));
    plc_->start(proc_->main_strand(), sim_.fork_rng("plc"));
    server_ = OpcServerObject::create(*proc_, plc_, "unit-test vendor");
  }

  com::ComPtr<IOPCGroup> add_group(const std::string& name,
                                   sim::SimTime rate = sim::milliseconds(50)) {
    com::ComPtr<IOPCGroup> group;
    server_->AddGroup(name, rate, [&](HRESULT hr, com::ComPtr<IOPCGroup> g) {
      EXPECT_EQ(hr, S_OK);
      group = std::move(g);
    });
    return group;
  }

  sim::Simulation sim_{7};
  sim::Node* node_;
  std::shared_ptr<sim::Process> proc_;
  std::shared_ptr<PlcDevice> plc_;
  com::ComPtr<OpcServerObject> server_;
};

TEST_F(OpcServerUnit, GetStatusReflectsGroupsAndHealth) {
  add_group("g1");
  add_group("g2");
  ServerStatus status;
  server_->GetStatus([&](HRESULT hr, const ServerStatus& s) {
    EXPECT_EQ(hr, S_OK);
    status = s;
  });
  EXPECT_EQ(status.group_count, 2u);
  EXPECT_EQ(status.vendor, "unit-test vendor");
  EXPECT_TRUE(status.running);
  plc_->set_faulted(true);
  server_->GetStatus([&](HRESULT, const ServerStatus& s) { status = s; });
  EXPECT_FALSE(status.running);
}

TEST_F(OpcServerUnit, DuplicateGroupNameRejected) {
  add_group("g");
  HRESULT hr = S_OK;
  server_->AddGroup("g", sim::milliseconds(50), [&](HRESULT h, com::ComPtr<IOPCGroup>) {
    hr = h;
  });
  EXPECT_EQ(hr, E_INVALIDARG);
}

TEST_F(OpcServerUnit, RemoveGroupStopsItsUpdates) {
  auto group = add_group("g");
  auto sink = CollectingSink::create();
  group->AddItems({"Sig"}, nullptr);
  group->SetCallback(com::ComPtr<IOPCDataCallback>(sink.get()), nullptr);
  sim_.run_for(sim::milliseconds(200));
  std::size_t n = sink->changes.size();
  EXPECT_GT(n, 0u);

  HRESULT hr = E_FAIL;
  server_->RemoveGroup("g", [&](HRESULT h) { hr = h; });
  EXPECT_EQ(hr, S_OK);
  server_->RemoveGroup("g", [&](HRESULT h) { hr = h; });
  EXPECT_EQ(hr, E_INVALIDARG) << "second removal";
  // The released group (refcount from server dropped; ours keeps the
  // object alive) — updates stop once we release too. With our ref
  // still held, the timer still runs; drop it:
  group = nullptr;
  sim_.run_for(sim::milliseconds(200));
  // No crash = pass; the timer generation guard killed the callbacks.
}

TEST_F(OpcServerUnit, AsyncReadNeedsCallback) {
  auto group = add_group("g");
  group->AddItems({"Sig"}, nullptr);
  HRESULT hr = S_OK;
  group->AsyncRead(1, [&](HRESULT h) { hr = h; });
  EXPECT_EQ(hr, E_FAIL) << "no callback registered";

  auto sink = CollectingSink::create();
  group->SetCallback(com::ComPtr<IOPCDataCallback>(sink.get()), nullptr);
  group->AsyncRead(42, [&](HRESULT h) { hr = h; });
  EXPECT_EQ(hr, S_OK);
  sim_.run_for(sim::milliseconds(10));
  ASSERT_EQ(sink->read_transactions.size(), 1u);
  EXPECT_EQ(sink->read_transactions[0], 42u);
  EXPECT_EQ(sink->read_hr, S_OK);
  ASSERT_EQ(sink->read_items.size(), 1u);
  EXPECT_EQ(sink->read_items[0].item_id, "Sig");
}

TEST_F(OpcServerUnit, SetActiveFalseSilencesUpdates) {
  auto group = add_group("g");
  auto sink = CollectingSink::create();
  group->AddItems({"Sig"}, nullptr);
  group->SetCallback(com::ComPtr<IOPCDataCallback>(sink.get()), nullptr);
  sim_.run_for(sim::milliseconds(200));
  group->SetActive(false, nullptr);
  std::size_t n = sink->changes.size();
  sim_.run_for(sim::milliseconds(200));
  EXPECT_EQ(sink->changes.size(), n);
  group->SetActive(true, nullptr);
  sim_.run_for(sim::milliseconds(200));
  EXPECT_GT(sink->changes.size(), n);
}

TEST_F(OpcServerUnit, NewCallbackGetsFullSnapshot) {
  auto group = add_group("g");
  group->AddItems({"Sig", "Out"}, nullptr);
  auto sink1 = CollectingSink::create();
  group->SetCallback(com::ComPtr<IOPCDataCallback>(sink1.get()), nullptr);
  sim_.run_for(sim::milliseconds(100));
  // "Out" never changes, so it was announced exactly once to sink1.
  // A replacement callback must get it re-announced.
  auto sink2 = CollectingSink::create();
  group->SetCallback(com::ComPtr<IOPCDataCallback>(sink2.get()), nullptr);
  sim_.run_for(sim::milliseconds(100));
  bool sink2_saw_out = false;
  for (const auto& i : sink2->changes) {
    if (i.item_id == "Out") sink2_saw_out = true;
  }
  EXPECT_TRUE(sink2_saw_out);
}

TEST_F(OpcServerUnit, RemoveItemsStopsTheirUpdates) {
  auto group = add_group("g");
  auto sink = CollectingSink::create();
  group->AddItems({"Sig", "Out"}, nullptr);
  group->SetCallback(com::ComPtr<IOPCDataCallback>(sink.get()), nullptr);
  sim_.run_for(sim::milliseconds(100));
  group->RemoveItems({"Sig"}, nullptr);
  sink->changes.clear();
  sim_.run_for(sim::milliseconds(200));
  for (const auto& i : sink->changes) {
    EXPECT_NE(i.item_id, "Sig");
  }
}

TEST_F(OpcServerUnit, WriteResultsPerItem) {
  auto group = add_group("g");
  std::vector<HRESULT> results;
  group->Write({{"Out", OpcValue::from_int(5)}, {"Sig", OpcValue::from_int(1)},
                {"Nope", OpcValue::from_int(1)}},
               [&](HRESULT hr, const std::vector<HRESULT>& r) {
                 EXPECT_EQ(hr, S_OK);
                 results = r;
               });
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0], S_OK);          // output: writable
  EXPECT_EQ(results[1], E_FAIL);        // input: not writable
  EXPECT_EQ(results[2], E_INVALIDARG);  // unknown tag
  EXPECT_EQ(plc_->read("Out", 0).value.as_int(), 5);
}

}  // namespace
}  // namespace oftt::opc
