// Coalesced notification plane tests: frame codec robustness (seeded
// garbage, truncation, count bombs — all fail-closed), one-frame-per-
// (client, tick) coalescing, overload surfacing, and the equivalence
// property: on a clean network a batched subscription delivers the
// exact ItemState sequence the legacy per-item callback path delivers;
// under datagram loss it delivers an in-order superset of it (legacy
// one-way ORPC calls are fire-and-forget datagrams, the notify plane
// rides a retransmitting endpoint).
#include <gtest/gtest.h>

#include <map>

#include "dcom/scm.h"
#include "obs/event_bus.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/notify.h"
#include "opc/server.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace oftt::opc {
namespace {

std::vector<SubBatch> sample_batches() {
  std::vector<SubBatch> batches;
  SubBatch a;
  a.sub_id = 7;
  a.items.push_back(NotifyItem{0, Quality::kGood, OpcValue::from_real(3.5), 1000});
  a.items.push_back(NotifyItem{9, Quality::kUncertain, OpcValue::from_int(-4), 1001});
  a.items.push_back(NotifyItem{2, Quality::kBad, OpcValue(), 0});
  SubBatch b;
  b.sub_id = 19;
  b.items.push_back(NotifyItem{123456, Quality::kGood, OpcValue::from_bool(true), 77});
  b.items.push_back(
      NotifyItem{3, Quality::kGood, OpcValue::from_string("mode: auto"), 78});
  batches.push_back(std::move(a));
  batches.push_back(std::move(b));
  return batches;
}

TEST(NotifyFrame, RoundTripsAllValueTypes) {
  std::vector<SubBatch> in = sample_batches();
  Buffer frame = encode_notify_frame(in);
  std::vector<SubBatch> out;
  ASSERT_TRUE(decode_notify_frame(frame, &out));
  EXPECT_EQ(out, in);
}

TEST(NotifyFrame, EmptyFrameRoundTrips) {
  Buffer frame = encode_notify_frame({});
  std::vector<SubBatch> out;
  ASSERT_TRUE(decode_notify_frame(frame, &out));
  EXPECT_TRUE(out.empty());
}

TEST(NotifyFrame, EveryTruncationPrefixFailsClosed) {
  Buffer frame = encode_notify_frame(sample_batches());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    Buffer prefix(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(len));
    std::vector<SubBatch> out = sample_batches();  // pre-polluted: must be cleared
    EXPECT_FALSE(decode_notify_frame(prefix, &out)) << "prefix length " << len;
    EXPECT_TRUE(out.empty()) << "failed decode must not leak partial batches";
  }
}

TEST(NotifyFrame, TrailingGarbageRejected) {
  Buffer frame = encode_notify_frame(sample_batches());
  frame.push_back(0x00);
  std::vector<SubBatch> out;
  EXPECT_FALSE(decode_notify_frame(frame, &out));
}

TEST(NotifyFrame, CountBombsRejectedByByteBudget) {
  // Claimed counts must fit in the bytes actually present — a 16-byte
  // frame claiming 4 billion batches (or items) dies on the guard, not
  // on a multi-gigabyte reserve.
  BinaryWriter w;
  w.u8(kNotifyFrame);
  w.u8(kNotifyVersion);
  w.u32(0xFFFFFFFFu);  // batch count bomb
  w.u32(1);
  w.u32(1);
  Buffer bomb = std::move(w).take();
  std::vector<SubBatch> out;
  EXPECT_FALSE(decode_notify_frame(bomb, &out));

  BinaryWriter w2;
  w2.u8(kNotifyFrame);
  w2.u8(kNotifyVersion);
  w2.u32(1);
  w2.u32(7);           // sub id
  w2.u32(0xFFFFFFFFu); // item count bomb
  EXPECT_FALSE(decode_notify_frame(std::move(w2).take(), &out));
}

TEST(NotifyFrame, InvalidQualityRejected) {
  std::vector<SubBatch> in;
  in.push_back(SubBatch{1, {NotifyItem{0, Quality::kGood, OpcValue::from_int(1), 5}}});
  Buffer frame = encode_notify_frame(in);
  // Quality byte sits right after frame/ver/counts/sub/count/tag.
  std::size_t q_off = 1 + 1 + 4 + 4 + 4 + 4;
  ASSERT_LT(q_off, frame.size());
  frame[q_off] = 2;  // not a valid Quality encoding
  std::vector<SubBatch> out;
  EXPECT_FALSE(decode_notify_frame(frame, &out));
}

TEST(NotifyFrame, SeededGarbageNeverCrashesAndFailsClosed) {
  sim::Rng rng(0xC0FFEE);
  for (int round = 0; round < 500; ++round) {
    std::size_t len = static_cast<std::size_t>(rng.uniform(0, 64));
    Buffer junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    std::vector<SubBatch> out;
    if (!decode_notify_frame(junk, &out)) {
      EXPECT_TRUE(out.empty());
    }
  }
  // Single-byte corruptions of a valid frame: decode either rejects
  // cleanly or yields a structurally valid batch set — never a crash,
  // never partial output on failure.
  Buffer valid = encode_notify_frame(sample_batches());
  for (int round = 0; round < 500; ++round) {
    Buffer mutated = valid;
    std::size_t pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(0, 254));
    std::vector<SubBatch> out;
    if (!decode_notify_frame(mutated, &out)) {
      EXPECT_TRUE(out.empty());
    }
  }
}

TEST(NotifyFrame, RandomizedBatchesRoundTrip) {
  sim::Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    std::vector<SubBatch> in;
    int nbatches = static_cast<int>(rng.uniform(0, 4));
    for (int b = 0; b < nbatches; ++b) {
      SubBatch batch;
      batch.sub_id = static_cast<std::uint32_t>(rng.uniform(0, 1 << 20));
      int nitems = static_cast<int>(rng.uniform(0, 8));
      for (int i = 0; i < nitems; ++i) {
        NotifyItem item;
        item.tag = static_cast<std::uint32_t>(rng.uniform(0, 1 << 20));
        item.timestamp = rng.uniform(0, 1'000'000'000);
        item.quality = rng.chance(0.1) ? Quality::kBad : Quality::kGood;
        switch (rng.uniform(0, 3)) {
          case 0: item.value = OpcValue::from_bool(rng.chance(0.5)); break;
          case 1: item.value = OpcValue::from_int(static_cast<std::int32_t>(
                      rng.uniform(-1000, 1000))); break;
          case 2: item.value = OpcValue::from_real(
                      static_cast<double>(rng.uniform(-5000, 5000)) / 16.0); break;
          default: item.value = OpcValue::from_string("s" + std::to_string(i)); break;
        }
        batch.items.push_back(std::move(item));
      }
      in.push_back(std::move(batch));
    }
    std::vector<SubBatch> out;
    ASSERT_TRUE(decode_notify_frame(encode_notify_frame(in), &out));
    EXPECT_EQ(out, in);
  }
}

// --- end-to-end: coalescing, equivalence, overload ---

const Clsid kClsid = Guid::from_name("CLSID_NotifyTestPlc");

struct ItemLog {
  std::map<std::string, std::vector<ItemState>> per_item;
  std::uint64_t batches = 0;

  void add(const std::vector<ItemState>& items) {
    ++batches;
    for (const auto& s : items) per_item[s.item_id].push_back(s);
  }
};

class NotifyEndToEnd : public ::testing::Test {
 protected:
  explicit NotifyEndToEnd(std::uint64_t seed = 141) : sim_(seed) {
    server_ = &sim_.add_node("server");
    client_ = &sim_.add_node("client");
    net_ = &sim_.add_network("lan");
    net_->attach(server_->id());
    net_->attach(client_->id());
    // Fixed latency: independent connection handshakes complete in
    // lockstep, so their group ticks align (what coalescing exploits).
    net_->set_latency(sim::milliseconds(1), sim::milliseconds(1));
    server_->set_boot_script([](sim::Node& node) {
      dcom::install_scm(node);
      node.start_process("opcserver", [](sim::Process& proc) {
        auto plc = std::make_shared<PlcDevice>("PLC", sim::milliseconds(10));
        plc->add_input("Sig", std::make_unique<CounterSignal>());
        plc->add_input("Wave", std::make_unique<SineSignal>(50.0, 20.0, 0.5));
        install_opc_server(proc, kClsid, plc, "v");
      });
    });
    server_->boot();
    client_->boot();
    hmi_ = client_->start_process("hmi", nullptr);
  }

  NotifyPlane* server_plane() {
    auto proc = server_->find_process("opcserver");
    return proc ? proc->find_attachment<NotifyPlane>() : nullptr;
  }

  sim::Simulation sim_;
  sim::Node* server_;
  sim::Node* client_;
  sim::Network* net_;
  std::shared_ptr<sim::Process> hmi_;
};

TEST_F(NotifyEndToEnd, AllGroupsOfAClientShareOneFramePerTick) {
  OpcConnection::Config cfg;
  cfg.batched_notifications = true;
  OpcConnection conn_a(*hmi_, server_->id(), kClsid, cfg);
  OpcConnection conn_b(*hmi_, server_->id(), kClsid, cfg);
  ItemLog log_a, log_b;
  conn_a.subscribe({"Sig", "Wave"},
                   [&](const std::vector<ItemState>& items) { log_a.add(items); });
  conn_b.subscribe({"Sig", "Wave"},
                   [&](const std::vector<ItemState>& items) { log_b.add(items); });
  sim_.run_for(sim::seconds(2));
  ASSERT_TRUE(conn_a.connected());
  ASSERT_TRUE(conn_b.connected());
  EXPECT_GT(log_a.batches, 10u);
  EXPECT_GT(log_b.batches, 10u);

  NotifyPlane* plane = server_plane();
  ASSERT_NE(plane, nullptr);
  std::uint64_t frames = plane->frames_sent();
  std::uint64_t total_batches = log_a.batches + log_b.batches;
  // Two groups, one client node: every frame carries ~2 batches. If the
  // plane sent one frame per (group, tick) instead, frames ≈ batches.
  EXPECT_GE(total_batches, frames + frames / 2)
      << "frames are shared across the client's groups, not per-group";
  EXPECT_EQ(plane->frames_rejected(), 0u);
  EXPECT_EQ(plane->batches_dropped(), 0u);

  // Both groups observe the same counter ticks through the shared frame.
  EXPECT_FALSE(log_a.per_item["Sig"].empty());
  EXPECT_EQ(log_a.per_item["Sig"].size(), log_b.per_item["Sig"].size());
}

/// Runs one (seed, mode) simulation and returns the client-side log.
ItemLog run_subscription(std::uint64_t seed, bool batched, double loss) {
  sim::Simulation sim(seed);
  auto& server = sim.add_node("server");
  auto& client = sim.add_node("client");
  auto& net = sim.add_network("lan");
  net.attach(server.id());
  net.attach(client.id());
  net.set_loss(loss);
  server.set_boot_script([](sim::Node& node) {
    dcom::install_scm(node);
    node.start_process("opcserver", [](sim::Process& proc) {
      auto plc = std::make_shared<PlcDevice>("PLC", sim::milliseconds(10));
      plc->add_input("Sig", std::make_unique<CounterSignal>());
      plc->add_input("Wave", std::make_unique<SineSignal>(50.0, 20.0, 0.5, 1.0));
      install_opc_server(proc, kClsid, plc, "v");
    });
  });
  server.boot();
  client.boot();
  auto hmi = client.start_process("hmi", nullptr);

  OpcConnection::Config cfg;
  cfg.batched_notifications = batched;
  OpcConnection conn(*hmi, server.id(), kClsid, cfg);
  ItemLog log;
  conn.subscribe({"Sig", "Wave"},
                 [&](const std::vector<ItemState>& items) { log.add(items); });
  sim.run_for(sim::seconds(3));
  EXPECT_TRUE(conn.connected()) << "seed " << seed << " batched " << batched;
  return log;
}

TEST(NotifyEquivalence, BatchedDeliversTheSeedPathItemSequenceCleanNetwork) {
  // The announce/suppress decisions live server-side, upstream of the
  // delivery mechanism, and the mechanism swap happens only after the
  // (identical) activate/AddGroup/AddItems prefix — so per item, on a
  // loss-free network, the batched plane must deliver byte-identical
  // ItemState sequences to the legacy per-group callback path.
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    ItemLog legacy = run_subscription(seed, /*batched=*/false, /*loss=*/0.0);
    ItemLog batched = run_subscription(seed, /*batched=*/true, /*loss=*/0.0);
    ASSERT_FALSE(legacy.per_item.empty()) << "seed " << seed;
    ASSERT_EQ(legacy.per_item.size(), batched.per_item.size()) << "seed " << seed;
    for (const auto& [item, states] : legacy.per_item) {
      ASSERT_TRUE(batched.per_item.count(item)) << "seed " << seed << " item " << item;
      const auto& bstates = batched.per_item.at(item);
      // The tail can differ by in-flight updates at the horizon; the
      // common prefix must match exactly.
      std::size_t n = std::min(states.size(), bstates.size());
      ASSERT_GT(n, 10u) << "seed " << seed << " item " << item;
      EXPECT_GE(states.size() + 2, bstates.size()) << "seed " << seed;
      EXPECT_GE(bstates.size() + 2, states.size()) << "seed " << seed;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(states[i], bstates[i])
            << "seed " << seed << " item " << item << " index " << i;
      }
    }
  }
}

/// True when every element of `sub` appears in `full`, in order.
bool is_subsequence(const std::vector<ItemState>& sub,
                    const std::vector<ItemState>& full) {
  std::size_t j = 0;
  for (const ItemState& s : sub) {
    while (j < full.size() && !(full[j] == s)) ++j;
    if (j == full.size()) return false;
    ++j;
  }
  return true;
}

TEST(NotifyEquivalence, BatchedNeverDeliversLessThanTheSeedPathUnderLoss) {
  // Under loss the two delivery mechanisms are NOT symmetric: legacy
  // one-way OnDataChange calls are raw ORPC datagrams — a lost call is
  // gone, the client's sequence has a hole. The notify plane rides a
  // retransmitting transport::Endpoint, so every announced update
  // lands. The equivalence property under loss is therefore: per item,
  // the legacy sequence is a subsequence of the batched one (the
  // batched path never delivers less), and across the seeds the loss
  // actually bites the legacy path (strictly fewer states in total).
  std::uint64_t legacy_total = 0, batched_total = 0;
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    ItemLog legacy = run_subscription(seed, /*batched=*/false, /*loss=*/0.03);
    ItemLog batched = run_subscription(seed, /*batched=*/true, /*loss=*/0.03);
    ASSERT_FALSE(legacy.per_item.empty()) << "seed " << seed;
    for (const auto& [item, states] : legacy.per_item) {
      ASSERT_TRUE(batched.per_item.count(item)) << "seed " << seed << " item " << item;
      const auto& bstates = batched.per_item.at(item);
      ASSERT_GT(bstates.size(), 10u) << "seed " << seed << " item " << item;
      // Horizon skew can leave the legacy run a couple of extra
      // in-flight deliveries at the very end; trim them before the
      // containment check.
      std::vector<ItemState> trimmed = states;
      if (trimmed.size() > bstates.size()) trimmed.resize(bstates.size());
      EXPECT_TRUE(is_subsequence(trimmed, bstates))
          << "seed " << seed << " item " << item
          << ": batched path must deliver an in-order superset";
      legacy_total += states.size();
      batched_total += bstates.size();
    }
  }
  EXPECT_GT(batched_total, legacy_total)
      << "3% loss over 5 seeds must drop at least one unretransmitted "
         "legacy OnDataChange";
}

TEST(NotifyOverload, RejectedFramesSurfaceDropsAndEvents) {
  sim::Simulation sim(7);
  auto& node = sim.add_node("n");
  auto& dark = sim.add_node("dark");  // attached but never booted
  auto& net = sim.add_network("lan");
  net.attach(node.id());
  net.attach(dark.id());
  node.boot();
  auto proc = node.start_process("p", nullptr);

  // Construct the plane attachment first, with a 1-frame queue AND a
  // window too small for a second in-flight frame. send() admits
  // straight into the window while it has room — queue_cap alone never
  // engages for small frames — so the window must saturate first: frame
  // 1 sits unacked towards the dark node (admitted alone under the
  // oversized-frame rule), frame 2 parks in the queue, frames 3..5
  // reject.
  transport::SessionConfig sc = NotifyPlane::default_config();
  sc.queue_cap = 1;
  sc.window_bytes = 1;
  auto& plane = proc->attachment<NotifyPlane>(*proc, sc);

  std::uint64_t drop_events = 0;
  sim.telemetry().bus().subscribe_all([&](const obs::Event& e) {
    if (e.kind == obs::EventKind::kOpcBatchDrop) ++drop_events;
  });

  for (int i = 0; i < 5; ++i) {
    proc->main_strand().schedule_after(sim::milliseconds(100 * (i + 1)), [&plane, &dark] {
      plane.enqueue(dark.id(), 1,
                    {NotifyItem{0, Quality::kGood, OpcValue::from_int(1), 0}});
    });
  }
  sim.run_for(sim::seconds(1));

  EXPECT_GE(plane.frames_rejected(), 3u);
  EXPECT_GE(plane.batches_dropped(), 3u);
  EXPECT_GE(drop_events, 3u) << "every rejected flush publishes kOpcBatchDrop";
  EXPECT_LE(plane.frames_sent(), 2u);
}

}  // namespace
}  // namespace oftt::opc
