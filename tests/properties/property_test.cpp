// Property-style parameterized suites (TEST_P sweeps) over the
// system's core invariants:
//  * event-queue behaviour matches a reference model under random
//    schedule/cancel workloads;
//  * MSMQ delivers exactly-once under any loss rate;
//  * checkpoints round-trip bit-exactly for any size/mode;
//  * failover preserves the single-primary invariant across
//    detection-timing configurations.
#include <gtest/gtest.h>

#include <map>

#include "core/deployment.h"
#include "msmq/queue_manager.h"
#include "sim/disk.h"
#include "sim/simulation.h"
#include "store/journal.h"
#include "support/counter_app.h"

namespace oftt {
namespace {

// ---------------------------------------------------------------------
// Event queue vs reference model
// ---------------------------------------------------------------------

class EventQueueModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModel, MatchesReferenceUnderRandomWorkload) {
  sim::Rng rng(GetParam());
  sim::Simulation sim(1);
  // Reference: map time -> fifo list of ids, with a cancelled set.
  std::multimap<sim::SimTime, int> model;
  std::set<int> cancelled;
  std::vector<sim::EventHandle> handles;
  std::vector<int> fired;
  int next_id = 0;

  for (int step = 0; step < 500; ++step) {
    double action = rng.next_double();
    if (action < 0.7) {
      sim::SimTime at = sim.now() + rng.uniform(0, 1000);
      int id = next_id++;
      handles.push_back(sim.schedule_at(at, [id, &fired] { fired.push_back(id); }));
      model.emplace(at, id);
    } else if (!handles.empty()) {
      std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(handles.size()) - 1));
      sim.cancel(handles[pick]);
      cancelled.insert(static_cast<int>(pick));
    }
  }
  sim.run();

  // Expected: all scheduled, in (time, insertion) order, minus cancelled.
  std::vector<int> expected;
  for (const auto& [at, id] : model) {
    if (!cancelled.count(id)) expected.push_back(id);
  }
  // Cancellation maps handle index == id here (insertion order).
  EXPECT_EQ(fired, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModel, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------
// MSMQ exactly-once under loss
// ---------------------------------------------------------------------

struct LossCase {
  double loss;
  int messages;
};

class MsmqLossSweep : public ::testing::TestWithParam<LossCase> {};

TEST_P(MsmqLossSweep, ExactlyOnceDeliveryUnderLoss) {
  const LossCase& c = GetParam();
  sim::Simulation sim(static_cast<std::uint64_t>(c.loss * 1000) + 3);
  sim::Node& a = sim.add_node("a");
  sim::Node& b = sim.add_node("b");
  auto& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  net.set_loss(c.loss);
  a.set_boot_script([](sim::Node& n) { msmq::QueueManager::install(n); });
  b.set_boot_script([](sim::Node& n) { msmq::QueueManager::install(n); });
  a.boot();
  b.boot();
  auto sender = a.start_process("src", nullptr);
  auto receiver = b.start_process("dst", nullptr);
  msmq::QueueManager::find(a)->set_route("q", b.id());

  std::multiset<std::string> got;
  msmq::MsmqApi::of(*receiver).subscribe("q", [&](const msmq::Message& m) {
    got.insert(m.label);
  });
  for (int i = 0; i < c.messages; ++i) {
    msmq::MsmqApi::of(*sender).send("q", "m" + std::to_string(i), Buffer{});
  }
  sim.run_for(sim::seconds(60));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(c.messages));
  for (int i = 0; i < c.messages; ++i) {
    EXPECT_EQ(got.count("m" + std::to_string(i)), 1u) << "message " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, MsmqLossSweep,
                         ::testing::Values(LossCase{0.0, 40}, LossCase{0.1, 40},
                                           LossCase{0.3, 40}, LossCase{0.5, 30},
                                           LossCase{0.7, 20}),
                         [](const ::testing::TestParamInfo<LossCase>& info) {
                           return "loss" +
                                  std::to_string(static_cast<int>(info.param.loss * 100));
                         });

// ---------------------------------------------------------------------
// Checkpoint round-trip fidelity
// ---------------------------------------------------------------------

struct CkptCase {
  std::size_t size;
  core::CheckpointMode mode;
};

class CheckpointSweep : public ::testing::TestWithParam<CkptCase> {};

TEST_P(CheckpointSweep, RoundTripsBitExactly) {
  const CkptCase& c = GetParam();
  sim::Simulation sim(9);
  sim::Node& node = sim.add_node("n");
  node.boot();
  auto src = node.start_process("src", nullptr);
  auto dst = node.start_process("dst", nullptr);
  auto& srt = nt::NtRuntime::of(*src);
  auto& drt = nt::NtRuntime::of(*dst);
  auto& region = srt.memory().alloc("globals", c.size);
  sim::Rng rng(c.size);
  for (std::size_t i = 0; i < c.size; ++i) {
    region.data()[i] = static_cast<std::uint8_t>(rng.next_u64());
  }
  std::vector<core::CellSpec> cells;
  if (c.mode == core::CheckpointMode::kSelective) {
    for (std::uint32_t off = 0; off + 16 <= c.size && cells.size() < 8; off += 128) {
      cells.push_back({"globals", off, 16});
    }
  }
  auto img = core::capture_checkpoint(srt, c.mode, cells, 1, 1, {});
  // Through the marshaling layer, as the wire would carry it.
  core::CheckpointImage decoded;
  ASSERT_TRUE(core::CheckpointImage::unmarshal(img.marshal(), decoded));
  drt.memory().alloc("globals", c.size);
  ASSERT_EQ(core::restore_checkpoint(drt, decoded), 0);

  auto* dst_region = drt.memory().find("globals");
  if (c.mode == core::CheckpointMode::kFull) {
    EXPECT_EQ(dst_region->snapshot(), region.snapshot());
  } else {
    for (const auto& cell : cells) {
      for (std::uint32_t i = 0; i < cell.size; ++i) {
        EXPECT_EQ(dst_region->data()[cell.offset + i], region.data()[cell.offset + i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndModes, CheckpointSweep,
    ::testing::Values(CkptCase{16, core::CheckpointMode::kFull},
                      CkptCase{1024, core::CheckpointMode::kFull},
                      CkptCase{65536, core::CheckpointMode::kFull},
                      CkptCase{1 << 20, core::CheckpointMode::kFull},
                      CkptCase{1024, core::CheckpointMode::kSelective},
                      CkptCase{65536, core::CheckpointMode::kSelective}),
    [](const ::testing::TestParamInfo<CkptCase>& info) {
      return (info.param.mode == core::CheckpointMode::kFull ? "full" : "sel") +
             std::to_string(info.param.size);
    });

// ---------------------------------------------------------------------
// Single-primary invariant across detection configurations
// ---------------------------------------------------------------------

struct FailoverCase {
  sim::SimTime heartbeat;
  int timeout_multiple;
  std::uint64_t seed;
};

class FailoverSweep : public ::testing::TestWithParam<FailoverCase> {};

TEST_P(FailoverSweep, ExactlyOnePrimaryAfterCrashAndRecovery) {
  const FailoverCase& c = GetParam();
  sim::Simulation sim(c.seed);
  core::PairDeploymentOptions opts;
  opts.engine.heartbeat_period = c.heartbeat;
  opts.engine.peer_timeout = c.heartbeat * c.timeout_multiple;
  opts.engine.component_timeout = c.heartbeat * c.timeout_multiple;
  opts.app_factory = [](sim::Process& proc) {
    proc.attachment<testsupport::CounterApp>(proc);
  };
  core::PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  ASSERT_NE(dep.primary_node(), -1);

  dep.node_a().os_crash(sim::seconds(4));  // crash + rejoin
  sim.run_for(sim::seconds(15));

  int primaries = 0;
  if (dep.engine_a() && dep.engine_a()->role() == core::Role::kPrimary) ++primaries;
  if (dep.engine_b() && dep.engine_b()->role() == core::Role::kPrimary) ++primaries;
  EXPECT_EQ(primaries, 1);
  EXPECT_EQ(dep.backup_node(), dep.node_a().id());
  // The unit still works.
  auto* app = testsupport::CounterApp::find(*dep.node_by_id(dep.primary_node()));
  ASSERT_NE(app, nullptr);
  std::int64_t before = app->count();
  sim.run_for(sim::seconds(2));
  EXPECT_GT(app->count(), before);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FailoverSweep,
    ::testing::Values(FailoverCase{sim::milliseconds(20), 4, 1},
                      FailoverCase{sim::milliseconds(50), 3, 2},
                      FailoverCase{sim::milliseconds(100), 5, 3},
                      FailoverCase{sim::milliseconds(100), 5, 4},
                      FailoverCase{sim::milliseconds(200), 3, 5},
                      FailoverCase{sim::milliseconds(500), 2, 6}),
    [](const ::testing::TestParamInfo<FailoverCase>& info) {
      return "hb" + std::to_string(info.param.heartbeat / 1'000'000) + "ms_x" +
             std::to_string(info.param.timeout_multiple) + "_s" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------
// Cluster wire messages: round-trip under fuzzed contents, fail-closed
// under version skew, and graceful rejection of every truncation.
// ---------------------------------------------------------------------

std::string random_string(sim::Rng& rng, int max_len = 12) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ._-/'\"\\";
  std::string s;
  std::int64_t n = rng.uniform(0, max_len);
  for (std::int64_t i = 0; i < n; ++i) {
    s += alphabet[rng.uniform(0, static_cast<std::int64_t>(sizeof alphabet) - 2)];
  }
  return s;
}

cluster::MembershipView random_view(sim::Rng& rng) {
  cluster::MembershipView v;
  v.version = static_cast<std::uint64_t>(rng.uniform(0, 1'000'000));
  v.incarnation = static_cast<std::uint32_t>(rng.uniform(0, 100'000));
  std::int64_t n = rng.uniform(1, 9);
  for (std::int64_t i = 0; i < n; ++i) {
    cluster::Member m;
    m.node = static_cast<int>(rng.uniform(0, 1'000));
    m.rank = static_cast<int>(i);
    m.role = static_cast<cluster::MemberRole>(rng.uniform(0, 3));
    m.incarnation = static_cast<std::uint32_t>(rng.uniform(0, 100'000));
    m.last_heartbeat = rng.uniform(0, 1'000'000'000'000);
    v.members.push_back(m);
  }
  return v;
}

/// Every strict prefix of a well-formed frame must be rejected (the
/// reader fails closed on underflow), and so must a frame claiming an
/// unknown cluster wire version.
template <typename Msg>
void check_rejections(const Buffer& frame) {
  for (std::size_t len = 0; len < frame.size(); ++len) {
    Buffer prefix(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(len));
    Msg out;
    EXPECT_FALSE(Msg::decode(prefix, out)) << "truncated to " << len << " bytes";
  }
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{core::kClusterWireVersion + 1},
                           std::uint8_t{0xFF}}) {
    Buffer skewed = frame;
    skewed[1] = bad;  // [0] is the kind byte, [1] the version tag
    Msg out;
    EXPECT_FALSE(Msg::decode(skewed, out))
        << "version " << int(bad) << " must fail closed";
  }
}

class ClusterWireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterWireFuzz, ViewGossipRoundTrips) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    core::ViewGossip g;
    g.from_node = static_cast<int>(rng.uniform(-1, 1'000));
    g.unit = random_string(rng);
    g.view = random_view(rng);
    Buffer frame = g.encode();
    core::ViewGossip out;
    ASSERT_TRUE(core::ViewGossip::decode(frame, out));
    EXPECT_EQ(out.from_node, g.from_node);
    EXPECT_EQ(out.unit, g.unit);
    EXPECT_EQ(out.view, g.view);
    if (iter == 0) check_rejections<core::ViewGossip>(frame);
  }
}

TEST_P(ClusterWireFuzz, PromoteRequestRoundTrips) {
  sim::Rng rng(GetParam() + 1000);
  for (int iter = 0; iter < 50; ++iter) {
    core::PromoteRequest req;
    req.candidate = static_cast<int>(rng.uniform(-1, 1'000));
    req.unit = random_string(rng);
    req.incarnation = static_cast<std::uint32_t>(rng.uniform(0, 1'000'000));
    req.view_version = static_cast<std::uint64_t>(rng.uniform(0, 1'000'000'000));
    req.reason = random_string(rng, 40);
    Buffer frame = req.encode();
    core::PromoteRequest out;
    ASSERT_TRUE(core::PromoteRequest::decode(frame, out));
    EXPECT_EQ(out.candidate, req.candidate);
    EXPECT_EQ(out.unit, req.unit);
    EXPECT_EQ(out.incarnation, req.incarnation);
    EXPECT_EQ(out.view_version, req.view_version);
    EXPECT_EQ(out.reason, req.reason);
    if (iter == 0) check_rejections<core::PromoteRequest>(frame);
  }
}

TEST_P(ClusterWireFuzz, PromoteAckRoundTrips) {
  sim::Rng rng(GetParam() + 2000);
  for (int iter = 0; iter < 50; ++iter) {
    core::PromoteAck ack;
    ack.voter = static_cast<int>(rng.uniform(-1, 1'000));
    ack.candidate = static_cast<int>(rng.uniform(-1, 1'000));
    ack.incarnation = static_cast<std::uint32_t>(rng.uniform(0, 1'000'000));
    ack.granted = rng.chance(0.5);
    Buffer frame = ack.encode();
    core::PromoteAck out;
    ASSERT_TRUE(core::PromoteAck::decode(frame, out));
    EXPECT_EQ(out.voter, ack.voter);
    EXPECT_EQ(out.candidate, ack.candidate);
    EXPECT_EQ(out.incarnation, ack.incarnation);
    EXPECT_EQ(out.granted, ack.granted);
    if (iter == 0) check_rejections<core::PromoteAck>(frame);
  }
}

TEST_P(ClusterWireFuzz, StatusReportCarriesViewAcrossVersionsOfItself) {
  sim::Rng rng(GetParam() + 3000);
  for (int iter = 0; iter < 50; ++iter) {
    core::StatusReport sr;
    sr.unit = random_string(rng);
    sr.node = static_cast<int>(rng.uniform(-1, 1'000));
    sr.role = static_cast<core::Role>(rng.uniform(0, 3));
    sr.incarnation = static_cast<std::uint32_t>(rng.uniform(0, 1'000'000));
    sr.peer_visible = rng.chance(0.5);
    if (rng.chance(0.5)) sr.view = random_view(rng);  // else pair mode: empty
    Buffer frame = sr.encode();
    core::StatusReport out;
    ASSERT_TRUE(core::StatusReport::decode(frame, out));
    EXPECT_EQ(out.unit, sr.unit);
    EXPECT_EQ(out.node, sr.node);
    EXPECT_EQ(out.view, sr.view);
    EXPECT_EQ(out.view.members.empty(), sr.view.members.empty());
  }
}

TEST(ClusterWire, MembershipDecodeRejectsUnknownRole) {
  cluster::MembershipView v = cluster::MembershipView::initial({1, 2});
  BinaryWriter w;
  v.encode(w);
  Buffer frame = std::move(w).take();
  // The role byte of the first member: version u64 + incarnation u32 +
  // count u16 + node i32 + rank i32 = offset 22.
  frame[22] = 0x7F;
  BinaryReader r(frame);
  cluster::MembershipView out;
  EXPECT_FALSE(cluster::MembershipView::decode(r, out));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterWireFuzz,
                         ::testing::Values(1, 7, 42, 1337, 9001));

// ---------------------------------------------------------------------
// Durable journal: any random sequence of appends, rotations,
// compactions, clean reopens and tail-tearing crashes always recovers a
// contiguous window of the durable history, and recover_image() always
// folds to the newest durable snapshot-plus-chain.
// ---------------------------------------------------------------------

bool same_record(const store::Record& a, const store::Record& b) {
  return a.type == b.type && a.id == b.id && a.base == b.base && a.payload == b.payload;
}

/// Reference fold, written from the spec: newest snapshot, then every
/// delta whose base continues the chain.
store::RecoveredImage reference_fold(const std::vector<store::Record>& records) {
  store::RecoveredImage img;
  std::ptrdiff_t snap = -1;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(records.size()) - 1; i >= 0; --i) {
    if (records[static_cast<std::size_t>(i)].type == store::RecordType::kSnapshot) {
      snap = i;
      break;
    }
  }
  if (snap < 0) return img;
  img.valid = true;
  img.snapshot = records[static_cast<std::size_t>(snap)].payload;
  img.snapshot_id = records[static_cast<std::size_t>(snap)].id;
  img.last_id = img.snapshot_id;
  for (std::size_t i = static_cast<std::size_t>(snap) + 1; i < records.size(); ++i) {
    if (records[i].type != store::RecordType::kDelta) continue;
    if (records[i].base != img.last_id) continue;
    img.last_id = records[i].id;
    img.deltas.push_back(records[i]);
  }
  return img;
}

class JournalModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JournalModel, AlwaysRecoversNewestDurableWindow) {
  sim::Rng rng(GetParam());
  sim::Simulation sim(1);
  auto& disk = sim::DiskStore::of(sim);
  store::JournalOptions opts;
  opts.segment_bytes = 96;  // a couple of records per segment
  opts.auto_compact = false;
  auto journal = std::make_unique<store::Journal>(sim, 0, "prop.j", opts);

  // `history` is the durable record window the journal must recover:
  // compaction trims its front, a crash tears records off its back.
  std::vector<store::Record> history;
  std::uint64_t next_id = 1;
  std::uint64_t last_id = 0;

  // Compaction trims the FRONT of the history (rec is a suffix window);
  // a crash tears records off the BACK (rec is a prefix). `torn` picks
  // which side the model reconciles.
  auto check = [&](const char* when, bool torn) {
    std::vector<store::Record> rec = journal->recover();
    ASSERT_LE(rec.size(), history.size()) << when;
    std::size_t lo = torn ? 0 : history.size() - rec.size();
    for (std::size_t i = 0; i < rec.size(); ++i) {
      ASSERT_TRUE(same_record(rec[i], history[lo + i]))
          << when << ": record " << i << " diverged from the model";
    }
    if (torn) {
      history.resize(rec.size());
    } else {
      history.erase(history.begin(), history.begin() + static_cast<std::ptrdiff_t>(lo));
    }
    // Whatever survives, the folded image must match the reference fold.
    store::RecoveredImage img = journal->recover_image();
    store::RecoveredImage want = reference_fold(history);
    ASSERT_EQ(img.valid, want.valid) << when;
    if (want.valid) {
      EXPECT_EQ(img.snapshot_id, want.snapshot_id) << when;
      EXPECT_EQ(img.snapshot, want.snapshot) << when;
      EXPECT_EQ(img.last_id, want.last_id) << when;
      ASSERT_EQ(img.deltas.size(), want.deltas.size()) << when;
      for (std::size_t i = 0; i < img.deltas.size(); ++i) {
        EXPECT_TRUE(same_record(img.deltas[i], want.deltas[i])) << when;
      }
    }
  };

  for (int step = 0; step < 250; ++step) {
    double action = rng.next_double();
    if (action < 0.60) {
      // Append: mostly deltas chaining from the last record, some
      // snapshots and some opaque messages.
      double kind = rng.next_double();
      store::Record r;
      r.id = next_id++;
      if (kind < 0.15) {
        r.type = store::RecordType::kSnapshot;
        r.base = 0;
      } else if (kind < 0.75) {
        r.type = store::RecordType::kDelta;
        r.base = last_id;
      } else {
        r.type = store::RecordType::kMessage;
        r.base = 0;
      }
      r.payload.resize(static_cast<std::size_t>(rng.uniform(0, 48)));
      for (auto& b : r.payload) b = static_cast<std::uint8_t>(rng.next_u64());
      ASSERT_TRUE(journal->append(r.type, r.id, r.base, r.payload));
      last_id = r.id;
      history.push_back(std::move(r));
    } else if (action < 0.70) {
      journal->compact();  // model effect verified by check()
    } else if (action < 0.85) {
      // Clean reopen: a restart with an intact disk loses nothing.
      std::size_t before = history.size();
      journal = std::make_unique<store::Journal>(sim, 0, "prop.j", opts);
      ASSERT_NO_FATAL_FAILURE(check("clean reopen", /*torn=*/false));
      ASSERT_EQ(history.size(), before) << "clean reopen must not lose records";
      continue;
    } else {
      // Crash: tear random bytes off the newest segment, then reboot.
      auto keys = disk.keys_with_prefix(0, "prop.j.seg.");
      if (!keys.empty()) {
        const std::string& key = keys.back();
        Buffer seg = *disk.read(0, key);
        if (!seg.empty()) {
          std::size_t cut = static_cast<std::size_t>(
              rng.uniform(1, std::min<std::int64_t>(40, static_cast<std::int64_t>(seg.size()))));
          seg.resize(seg.size() - cut);
          disk.write(0, key, seg);
        }
      }
      journal = std::make_unique<store::Journal>(sim, 0, "prop.j", opts);
      // The torn suffix is gone; everything in front of it survives.
      ASSERT_NO_FATAL_FAILURE(check("crash reopen", /*torn=*/true));
      // Chain future deltas from what actually survived.
      last_id = history.empty() ? 0 : history.back().id;
      continue;
    }
    ASSERT_NO_FATAL_FAILURE(check("after op", /*torn=*/false));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JournalModel, ::testing::Values(11, 23, 47, 101, 211));

}  // namespace
}  // namespace oftt
