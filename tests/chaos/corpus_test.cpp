// Corpus format tests plus the pinned-regression replay: every entry of
// the checked-in worst-case corpus must replay byte-identically — same
// event-history hash, same failover p99 — on every build. A diff here
// means a behaviour change in the recovery machinery (or the sim), and
// must be triaged, not re-pinned blindly.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "chaos/corpus.h"

namespace oftt::chaos {
namespace {

CorpusEntry make_entry(const std::string& name) {
  CorpusEntry e;
  e.name = name;
  e.reason = "new_coverage";
  e.eval_seed = 42;
  e.run_for = sim::seconds(75);
  e.history_hash = 0x00a1b2c3d4e5f607ull;
  e.failover_p99 = 812345678;
  e.ops_before_shrink = 4;
  e.spec.ops.push_back(
      FaultOp{OpKind::kOsCrash, sim::seconds(10), 1, sim::seconds(15), 0, 0});
  e.spec.normalize();
  return e;
}

TEST(Corpus, SerializeParseRoundTrip) {
  std::vector<CorpusEntry> corpus{make_entry("cov-0001"), make_entry("cov-0002")};
  corpus[1].history_hash = 0xffee000011223344ull;
  corpus[1].reason = "p99_regression";
  std::string text = serialize_corpus(corpus);
  std::vector<CorpusEntry> back = parse_corpus(text);
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back[i].name, corpus[i].name);
    EXPECT_EQ(back[i].reason, corpus[i].reason);
    EXPECT_EQ(back[i].eval_seed, corpus[i].eval_seed);
    EXPECT_EQ(back[i].run_for, corpus[i].run_for);
    EXPECT_EQ(back[i].history_hash, corpus[i].history_hash);
    EXPECT_EQ(back[i].failover_p99, corpus[i].failover_p99);
    EXPECT_EQ(back[i].spec, corpus[i].spec);
  }
  EXPECT_EQ(serialize_corpus(back), text) << "second round-trip must be byte-identical";
}

TEST(Corpus, EmptyCorpusRoundTrips) {
  EXPECT_TRUE(parse_corpus(serialize_corpus({})).empty());
}

TEST(Corpus, ParseFailsLoudlyOnCorruptInput) {
  std::string good = serialize_corpus({make_entry("cov-0001")});
  EXPECT_NO_THROW(parse_corpus(good));
  // Truncation, bad hash width, and a missing terminator must all throw
  // — a corrupt pinned corpus must never silently replay something else.
  EXPECT_THROW(parse_corpus(good.substr(0, good.size() - 12)), std::runtime_error);
  std::string bad_hash = good;
  bad_hash.replace(bad_hash.find("hash 00a1"), 9, "hash 0a1");
  EXPECT_THROW(parse_corpus(bad_hash), std::runtime_error);
  std::string wrong_key = good;
  wrong_key.replace(wrong_key.find("reason "), 7, "because ");
  EXPECT_THROW(parse_corpus(wrong_key), std::runtime_error);
}

TEST(PinnedCorpus, EveryEntryReplaysByteIdentically) {
  std::ifstream in(OFTT_CHAOS_CORPUS_FILE);
  ASSERT_TRUE(in.good()) << "missing pinned corpus: " << OFTT_CHAOS_CORPUS_FILE;
  std::stringstream buf;
  buf << in.rdbuf();
  std::vector<CorpusEntry> corpus = parse_corpus(buf.str());

  // The acceptance bar: at least three distinct worst-case schedules.
  ASSERT_GE(corpus.size(), 3u);
  std::set<std::uint64_t> fingerprints, hashes;
  for (const CorpusEntry& e : corpus) {
    EXPECT_TRUE(fingerprints.insert(e.spec.fingerprint()).second)
        << e.name << ": duplicate schedule";
    EXPECT_TRUE(hashes.insert(e.history_hash).second)
        << e.name << ": duplicate event history";
  }

  for (const CorpusEntry& e : corpus) {
    EvalResult r = replay(e);
    EXPECT_EQ(r.history_hash, e.history_hash)
        << e.name << " (" << e.reason << "): event history diverged from the pin — "
        << "a recovery-machinery behaviour change; triage before re-pinning";
    EXPECT_EQ(r.failover_p99, e.failover_p99) << e.name;
  }
}

}  // namespace
}  // namespace oftt::chaos
