// Campaign-runner tests: the evaluation is a pure function of
// (schedule, options), the inert-op proof holds, and one (seed, budget)
// pair finds byte-identical corpora for 1 and N evaluator threads —
// the property that lets worst-case finds be pinned as regressions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "chaos/campaign.h"
#include "chaos/corpus.h"

namespace oftt::chaos {
namespace {

/// A deliberately tiny budget: big enough to find survivors, small
/// enough to keep the suite fast. Short horizon, short runs.
CampaignOptions tiny_options() {
  CampaignOptions opts;
  opts.seed = 5;
  opts.population = 4;
  opts.generations = 2;
  opts.shrink_budget = 10;
  opts.eval.run_for = sim::seconds(40);
  opts.mutation.horizon = sim::seconds(28);
  opts.mutation.max_dur = sim::seconds(12);
  opts.mutation.max_ops = 6;
  return opts;
}

/// RAII evaluator-thread override (the same env knob the benches use).
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("OFTT_BENCH_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("OFTT_BENCH_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_old_) {
      ::setenv("OFTT_BENCH_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("OFTT_BENCH_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(Evaluate, IsAPureFunctionOfScheduleAndOptions) {
  EvalOptions opts;
  opts.run_for = sim::seconds(40);
  EvalResult a = evaluate(baseline_schedule(), opts);
  EvalResult b = evaluate(baseline_schedule(), opts);
  EXPECT_EQ(a.history_hash, b.history_hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.failover_p99, b.failover_p99);
  EXPECT_TRUE(a.coverage == b.coverage);
  EXPECT_EQ(a.op_fired, b.op_fired);
}

TEST(Evaluate, BaselineDrivesOneCompleteFailover) {
  EvalOptions opts;
  opts.run_for = sim::seconds(40);
  EvalResult r = evaluate(baseline_schedule(), opts);
  EXPECT_GE(r.complete_traces, 1) << "the reference OS crash must fail over";
  EXPECT_GT(r.failover_p99, 0);
  EXPECT_EQ(r.dual_primary, 0u) << "one clean crash must not split the brain";
  ASSERT_EQ(r.op_fired.size(), 1u);
  EXPECT_TRUE(r.op_fired[0]);
}

TEST(Evaluate, OpBeyondTheRunHorizonIsProvablyInert) {
  ScheduleSpec spec = baseline_schedule();
  FaultOp late;
  late.kind = OpKind::kKillApp;
  late.at = sim::seconds(300);  // far past run_for
  late.node = 0;
  spec.ops.push_back(late);
  spec.normalize();
  EvalOptions opts;
  opts.run_for = sim::seconds(40);
  EvalResult r = evaluate(spec, opts);
  ASSERT_EQ(r.op_fired.size(), 2u);
  EXPECT_TRUE(r.op_fired[0]) << "the 10 s crash fired";
  EXPECT_FALSE(r.op_fired[1]) << "the 300 s op never ran: provably inert";
  // And the inert op cannot have changed the run at all.
  EvalResult base = evaluate(baseline_schedule(), opts);
  EXPECT_EQ(r.history_hash, base.history_hash);
}

TEST(Campaign, FindsSurvivorsAndRecordsStats) {
  Campaign campaign(tiny_options());
  campaign.run();
  ASSERT_EQ(campaign.generations().size(), 2u);
  EXPECT_GT(campaign.baseline_p99(), 0);
  EXPECT_GE(campaign.total_evals(),
            tiny_options().population * tiny_options().generations + 1);
  EXPECT_GT(campaign.coverage().count(), 0u);
  // Random multi-fault schedules reach behaviours the single-crash
  // baseline does not: the tiny budget still yields corpus entries.
  EXPECT_FALSE(campaign.corpus().empty());
  for (const CorpusEntry& e : campaign.corpus()) {
    EXPECT_FALSE(e.spec.ops.empty());
    EXPECT_LE(e.spec.ops.size(), e.ops_before_shrink);
  }
}

TEST(Campaign, CorpusIsByteIdenticalAcrossEvaluatorThreadCounts) {
  std::string corpus_1, corpus_n;
  std::size_t bits_1 = 0, bits_n = 0;
  {
    ScopedThreads threads("1");
    Campaign c(tiny_options());
    c.run();
    corpus_1 = serialize_corpus(c.corpus());
    bits_1 = c.coverage().count();
  }
  {
    ScopedThreads threads("4");
    Campaign c(tiny_options());
    c.run();
    corpus_n = serialize_corpus(c.corpus());
    bits_n = c.coverage().count();
  }
  EXPECT_EQ(corpus_1, corpus_n);
  EXPECT_EQ(bits_1, bits_n);
}

TEST(Campaign, CorpusEntriesReplayToTheirRecordedHash) {
  Campaign campaign(tiny_options());
  campaign.run();
  ASSERT_FALSE(campaign.corpus().empty());
  for (const CorpusEntry& e : campaign.corpus()) {
    EvalResult r = replay(e);
    EXPECT_EQ(r.history_hash, e.history_hash) << e.name;
    EXPECT_EQ(r.failover_p99, e.failover_p99) << e.name;
  }
}

}  // namespace
}  // namespace oftt::chaos
