// Coverage-map and coverage-probe tests: bitmap algebra, feature
// hashing, and the behavioural features the probe derives from the
// telemetry stream (event bigrams, role-transition pairs, journal
// recovery depth, failover-span shapes, and the event-history hash).
#include <gtest/gtest.h>

#include "chaos/coverage.h"
#include "obs/event.h"
#include "obs/telemetry.h"
#include "sim/time.h"

namespace oftt::chaos {
namespace {

obs::Event make_event(obs::EventKind kind, int node, std::uint64_t a = 0,
                      std::uint64_t b = 0) {
  obs::Event e;
  e.kind = kind;
  e.node = node;
  e.a = a;
  e.b = b;
  return e;
}

TEST(CoverageMap, SetTestCountBasics) {
  CoverageMap map;
  EXPECT_EQ(map.count(), 0u);
  EXPECT_TRUE(map.set(42));
  EXPECT_FALSE(map.set(42)) << "second set of the same feature is not new";
  EXPECT_TRUE(map.test(42));
  EXPECT_FALSE(map.test(43));
  EXPECT_EQ(map.count(), 1u);
}

TEST(CoverageMap, NewBitsMinusCoversMerge) {
  CoverageMap a, b;
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  EXPECT_EQ(a.new_bits(b), 1u);
  EXPECT_EQ(b.new_bits(a), 1u);
  CoverageMap delta = a.minus(b);
  EXPECT_TRUE(delta.test(1));
  EXPECT_FALSE(delta.test(2));
  EXPECT_EQ(delta.count(), 1u);

  EXPECT_FALSE(a.covers(b));
  a.merge(b);
  EXPECT_TRUE(a.covers(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.new_bits(a), 0u);

  CoverageMap empty;
  EXPECT_TRUE(a.covers(empty)) << "every map covers the empty map";
}

TEST(CoverageFeature, DistinguishesTagAndTupleFields) {
  EXPECT_NE(coverage_feature(1, 5), coverage_feature(2, 5));
  EXPECT_NE(coverage_feature(1, 5), coverage_feature(1, 6));
  EXPECT_NE(coverage_feature(1, 5, 7), coverage_feature(1, 5, 8));
  EXPECT_EQ(coverage_feature(1, 5, 7), coverage_feature(1, 5, 7));
}

class ProbeTest : public ::testing::Test {
 protected:
  obs::Telemetry telemetry{[this] { return now_; }};
  sim::SimTime now_ = 0;
};

TEST_F(ProbeTest, HashAndCountsFollowThePublishedStream) {
  CoverageProbe probe(telemetry);
  std::uint64_t initial = probe.history_hash();
  telemetry.bus().publish(make_event(obs::EventKind::kRoleChange, 0, 2, 1));
  EXPECT_NE(probe.history_hash(), initial);
  now_ = sim::seconds(1);
  telemetry.bus().publish(make_event(obs::EventKind::kDualPrimary, 1));
  EXPECT_EQ(probe.events(), 2u);
  EXPECT_EQ(probe.count_of(obs::EventKind::kRoleChange), 1u);
  EXPECT_EQ(probe.count_of(obs::EventKind::kDualPrimary), 1u);
  EXPECT_EQ(probe.count_of(obs::EventKind::kNodeDown), 0u);
}

TEST_F(ProbeTest, IdenticalStreamsGiveIdenticalHashesAndMaps) {
  obs::Telemetry other{[this] { return now_; }};
  CoverageProbe p1(telemetry);
  CoverageProbe p2(other);
  for (int i = 0; i < 5; ++i) {
    obs::Event e = make_event(obs::EventKind::kCheckpointTaken, i % 2,
                              static_cast<std::uint64_t>(i), 100);
    telemetry.bus().publish(e);
    other.bus().publish(e);
  }
  p1.finish();
  p2.finish();
  EXPECT_EQ(p1.history_hash(), p2.history_hash());
  EXPECT_TRUE(p1.map() == p2.map());
}

TEST_F(ProbeTest, RoleTransitionPairsLightDistinctBits) {
  CoverageProbe probe(telemetry);
  // backup(1) -> primary(2) on node 0.
  telemetry.bus().publish(make_event(obs::EventKind::kRoleChange, 0, 1));
  std::size_t after_first = probe.map().count();
  telemetry.bus().publish(make_event(obs::EventKind::kRoleChange, 0, 2));
  std::size_t after_promote = probe.map().count();
  EXPECT_GT(after_promote, after_first) << "a new (from, to) pair is new coverage";
  // Demotion (2 -> 1) is a pair no earlier event produced.
  telemetry.bus().publish(make_event(obs::EventKind::kRoleChange, 0, 1));
  std::size_t after_demote = probe.map().count();
  EXPECT_GT(after_demote, after_promote);
  // Repeating an already-seen transition adds nothing new.
  telemetry.bus().publish(make_event(obs::EventKind::kRoleChange, 0, 2));
  EXPECT_EQ(probe.map().count(), after_demote);
}

TEST_F(ProbeTest, JournalRecoveryDepthIsBucketedLogarithmically) {
  CoverageProbe shallow(telemetry);
  telemetry.bus().publish(make_event(obs::EventKind::kJournalRecovered, 0, 3));
  CoverageMap shallow_map = shallow.map();

  obs::Telemetry other{[this] { return now_; }};
  CoverageProbe same_bucket(other);
  other.bus().publish(make_event(obs::EventKind::kJournalRecovered, 0, 2));
  EXPECT_EQ(same_bucket.map().new_bits(shallow_map), 0u)
      << "depths 2 and 3 share a log2 bucket";

  obs::Telemetry third{[this] { return now_; }};
  CoverageProbe deep(third);
  third.bus().publish(make_event(obs::EventKind::kJournalRecovered, 0, 64));
  EXPECT_GT(deep.map().new_bits(shallow_map), 0u)
      << "a much deeper replay is a new behaviour";
}

TEST_F(ProbeTest, FinishIsIdempotent) {
  CoverageProbe probe(telemetry);
  telemetry.bus().publish(make_event(obs::EventKind::kRoleChange, 0, 2));
  probe.finish();
  std::uint64_t hash = probe.history_hash();
  std::size_t bits = probe.map().count();
  probe.finish();
  EXPECT_EQ(probe.history_hash(), hash);
  EXPECT_EQ(probe.map().count(), bits);
}

}  // namespace
}  // namespace oftt::chaos
