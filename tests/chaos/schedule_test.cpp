// ScheduleSpec genome tests: canonical serialization round-trips,
// normalization, strict parsing, compilation onto a sim::FaultPlan
// (including the op -> plan-step mapping the shrinker's inert-op proof
// rests on), and the determinism of the mutation operators.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "chaos/mutate.h"
#include "chaos/schedule.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace oftt::chaos {
namespace {

FaultOp make_op(OpKind kind, sim::SimTime at, int node, sim::SimTime dur = 0,
                std::uint32_t p = 0, std::uint32_t q = 0) {
  FaultOp op;
  op.kind = kind;
  op.at = at;
  op.node = node;
  op.dur = dur;
  op.p_ppm = p;
  op.q_ppm = q;
  return op;
}

TEST(OpKind, NamesRoundTripForEveryKind) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(OpKind::kMaxOpKind); ++i) {
    OpKind kind = static_cast<OpKind>(i);
    OpKind back = OpKind::kMaxOpKind;
    ASSERT_TRUE(op_kind_from_name(op_kind_name(kind), &back)) << op_kind_name(kind);
    EXPECT_EQ(back, kind);
  }
  OpKind out = OpKind::kKillApp;
  EXPECT_FALSE(op_kind_from_name("meteor_strike", &out));
  EXPECT_EQ(out, OpKind::kKillApp) << "failed lookup must not clobber the out param";
}

TEST(Schedule, SerializeParseRoundTripIsExact) {
  ScheduleSpec spec;
  spec.ops.push_back(make_op(OpKind::kOsCrash, sim::seconds(10), 1, sim::seconds(15)));
  spec.ops.push_back(
      make_op(OpKind::kGilbertBurst, sim::seconds(20), 0, sim::seconds(5), 250000, 40000));
  spec.ops.push_back(make_op(OpKind::kKillApp, sim::seconds(8), 0));
  spec.normalize();
  std::string text = spec.serialize();
  ScheduleSpec back = ScheduleSpec::parse(text);
  EXPECT_EQ(back, spec);
  EXPECT_EQ(back.serialize(), text) << "second round-trip must be byte-identical";
  EXPECT_EQ(back.fingerprint(), spec.fingerprint());
}

TEST(Schedule, NormalizeGivesOneCanonicalFormPerOpMultiset) {
  ScheduleSpec a, b;
  FaultOp x = make_op(OpKind::kKillApp, sim::seconds(8), 0);
  FaultOp y = make_op(OpKind::kOsCrash, sim::seconds(10), 1, sim::seconds(15));
  a.ops = {x, y};
  b.ops = {y, x};
  a.normalize();
  b.normalize();
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Schedule, ParseRejectsMalformedInput) {
  EXPECT_THROW(ScheduleSpec::parse(""), std::runtime_error);
  EXPECT_THROW(ScheduleSpec::parse("schedule v2\nend\n"), std::runtime_error);
  EXPECT_THROW(ScheduleSpec::parse("schedule v1\n"), std::runtime_error)
      << "missing 'end' terminator";
  EXPECT_THROW(ScheduleSpec::parse("schedule v1\nop meteor at=1 node=0 dur=0 p=0 q=0\nend\n"),
               std::runtime_error);
  EXPECT_THROW(ScheduleSpec::parse("schedule v1\nop kill_app at=1 node=0\nend\n"),
               std::runtime_error)
      << "every field is mandatory";
  EXPECT_THROW(
      ScheduleSpec::parse("schedule v1\nop loss_burst at=1 node=0 dur=1 p=2000000 q=0\nend\n"),
      std::runtime_error)
      << "probabilities above 1000000 ppm are out of range";
  EXPECT_THROW(
      ScheduleSpec::parse("schedule v1\nop kill_app at=-5 node=0 dur=0 p=0 q=0\nend\n"),
      std::runtime_error);
}

TEST(Schedule, ParseToleratesCommentsAndBlankLines) {
  ScheduleSpec spec = ScheduleSpec::parse(
      "# worst case found by campaign 7\n\nschedule v1\n"
      "  op kill_app at=8000000000 node=0 dur=0 p=0 q=0  \n\nend\n");
  ASSERT_EQ(spec.ops.size(), 1u);
  EXPECT_EQ(spec.ops[0].kind, OpKind::kKillApp);
  EXPECT_EQ(spec.ops[0].at, sim::seconds(8));
}

TEST(Schedule, CompileMapsEachOpToItsPlanStepRange) {
  sim::Simulation sim;
  int a = sim.add_node("a").id();
  int b = sim.add_node("b").id();
  int pc = sim.add_node("pc").id();
  sim::Network& net = sim.add_network("lan");
  for (int id : {a, b, pc}) net.attach(id);

  ScheduleSpec spec;
  spec.ops.push_back(make_op(OpKind::kKillApp, sim::seconds(5), 0));        // 1 step
  spec.ops.push_back(
      make_op(OpKind::kPowerCycle, sim::seconds(10), 1, sim::seconds(4)));  // crash + boot
  spec.ops.push_back(
      make_op(OpKind::kPartition, sim::seconds(20), 0, sim::seconds(3)));   // cut + heal
  spec.normalize();

  sim::FaultPlan plan(sim);
  Targets targets;
  targets.nodes = {a, b};
  targets.bystanders = {pc};
  std::vector<CompiledOp> compiled = compile(spec, plan, targets);
  ASSERT_EQ(compiled.size(), 3u);
  EXPECT_EQ(compiled[0].first_step, 0u);
  EXPECT_EQ(compiled[0].step_count, 1u);
  EXPECT_EQ(compiled[1].first_step, 1u);
  EXPECT_EQ(compiled[1].step_count, 2u);
  EXPECT_EQ(compiled[2].first_step, 3u);
  EXPECT_EQ(compiled[2].step_count, 2u);
  EXPECT_EQ(plan.size(), 5u);
}

TEST(Schedule, CompileThrowsOnVictimIndexOutOfRange) {
  sim::Simulation sim;
  int a = sim.add_node("a").id();
  ScheduleSpec spec;
  spec.ops.push_back(make_op(OpKind::kKillApp, sim::seconds(5), 3));
  sim::FaultPlan plan(sim);
  Targets targets;
  targets.nodes = {a};
  EXPECT_THROW(compile(spec, plan, targets), std::out_of_range);
}

TEST(Mutate, SameSeedReplaysTheSameMutationHistory) {
  MutationParams params;
  sim::Rng r1(99), r2(99);
  ScheduleSpec s1 = random_schedule(r1, params, 4);
  ScheduleSpec s2 = random_schedule(r2, params, 4);
  EXPECT_EQ(s1.serialize(), s2.serialize());
  for (int i = 0; i < 50; ++i) {
    mutate(s1, r1, params);
    mutate(s2, r2, params);
    ASSERT_EQ(s1.serialize(), s2.serialize()) << "diverged at mutation " << i;
  }
}

TEST(Mutate, RespectsBoundsAndOpCap) {
  MutationParams params;
  params.max_ops = 5;
  sim::Rng rng(3);
  ScheduleSpec spec = random_schedule(rng, params, 3);
  for (int i = 0; i < 400; ++i) {
    mutate(spec, rng, params);
    ASSERT_LE(spec.ops.size(), static_cast<std::size_t>(params.max_ops));
    ASSERT_FALSE(spec.ops.empty()) << "mutation must never strand an empty genome";
    for (const FaultOp& op : spec.ops) {
      ASSERT_GE(op.at, params.min_at);
      ASSERT_LE(op.at, params.horizon);
      ASSERT_GE(op.node, 0);
      ASSERT_LT(op.node, params.nodes);
      if (op_kind_uses_dur(op.kind)) {
        ASSERT_GE(op.dur, params.min_dur);
        ASSERT_LE(op.dur, params.max_dur);
      }
      ASSERT_LE(op.p_ppm, 1'000'000u);
      ASSERT_LE(op.q_ppm, 1'000'000u);
    }
  }
}

TEST(Mutate, SpliceCrossesOverAtATimeCut) {
  MutationParams params;
  sim::Rng rng(11);
  ScheduleSpec a = random_schedule(rng, params, 6);
  ScheduleSpec b = random_schedule(rng, params, 6);
  ScheduleSpec child = splice(a, b, rng, params);
  ASSERT_FALSE(child.ops.empty());
  ASSERT_LE(child.ops.size(), static_cast<std::size_t>(params.max_ops));
  // Every child op must come from one of the parents.
  for (const FaultOp& op : child.ops) {
    bool from_a = std::find(a.ops.begin(), a.ops.end(), op) != a.ops.end();
    bool from_b = std::find(b.ops.begin(), b.ops.end(), op) != b.ops.end();
    EXPECT_TRUE(from_a || from_b);
  }
}

}  // namespace
}  // namespace oftt::chaos
