// CounterApp: the minimal checkpointable OFTT application used across
// tests and benches. Its whole state is a 64-bit counter (plus a filler
// blob to make checkpoints bigger when asked) living in an nt memory
// region; while active it increments the counter on a fixed tick.
#pragma once

#include "core/api.h"
#include "nt/runtime.h"
#include "sim/timer.h"

namespace oftt::testsupport {

struct CounterAppOptions {
  core::FtimOptions ftim;
  sim::SimTime tick = sim::milliseconds(50);
  std::size_t state_bytes = 64;  // size of the "globals" region
  /// Semi-active workload shape: the active side increments through
  /// OFTTPropose (ordered decision log) instead of touching the cell
  /// directly, and every replica registers the same deterministic
  /// apply handler. Under passive policies propose() degrades to a
  /// local apply, so the app behaves identically either way.
  bool drive_by_decisions = false;
};

class CounterApp {
 public:
  using Options = CounterAppOptions;

  CounterApp(sim::Process& process, Options options = Options())
      : process_(&process), timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("app_main", 0x401000);
    region_ = &rt.memory().alloc("globals", std::max<std::size_t>(options.state_bytes, 16));
    counter_ = nt::Cell<std::int64_t>(region_, 0);
    core::OFTTInitialize(process, options.ftim);
    core::Ftim& ftim = *core::Ftim::find(process);
    if (options.drive_by_decisions) {
      core::OFTTOnApplyDecision(
          process, [this](const Buffer&) { counter_.set(counter_.get() + 1); });
      ftim.on_activate([this, tick = options.tick](bool) {
        timer_.start(tick, [this] {
          core::OFTTPropose(*process_, Buffer{std::uint8_t{1}});  // "increment"
        });
      });
    } else {
      ftim.on_activate([this, tick = options.tick](bool) {
        timer_.start(tick, [this] { counter_.set(counter_.get() + 1); });
      });
    }
    ftim.on_deactivate([this] { timer_.stop(); });
  }

  std::int64_t count() const { return counter_.get(); }
  void set_count(std::int64_t v) { counter_.set(v); }
  nt::Region& region() { return *region_; }
  nt::Cell<std::int64_t>& counter_cell() { return counter_; }

  static CounterApp* find(sim::Node& node, const std::string& process_name = "app") {
    auto proc = node.find_process(process_name);
    return proc && proc->alive() ? proc->find_attachment<CounterApp>() : nullptr;
  }

 private:
  sim::Process* process_;
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> counter_;
  sim::PeriodicTimer timer_;
};

}  // namespace oftt::testsupport
