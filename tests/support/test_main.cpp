#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "common/logging.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Silence the library by default; OFTT_LOG=debug/info/warn re-enables
  // when debugging a failing scenario.
  oftt::LogLevel level = oftt::LogLevel::kOff;
  if (const char* env = std::getenv("OFTT_LOG")) {
    if (!std::strcmp(env, "trace")) level = oftt::LogLevel::kTrace;
    else if (!std::strcmp(env, "debug")) level = oftt::LogLevel::kDebug;
    else if (!std::strcmp(env, "info")) level = oftt::LogLevel::kInfo;
    else if (!std::strcmp(env, "warn")) level = oftt::LogLevel::kWarn;
    else if (!std::strcmp(env, "error")) level = oftt::LogLevel::kError;
  }
  oftt::Logger::instance().set_level(level);
  return RUN_ALL_TESTS();
}
