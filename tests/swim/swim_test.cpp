// src/swim unit coverage: update precedence and serialization, the
// Detector state machine (randomized round-robin probing, suspicion
// with a refutation window, incarnation-bumping self-defense, bounded
// piggyback dissemination), and the swim wire frames — round trips,
// fail-closed version skew, truncation, and deterministic fuzz.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/wire.h"
#include "sim/rng.h"
#include "sim/time.h"
#include "swim/detector.h"
#include "swim/swim.h"

namespace oftt {
namespace {

using swim::Detector;
using swim::DetectorConfig;
using swim::MemberState;
using swim::Transition;
using swim::Update;

// ---------------------------------------------------------------------
// Update precedence and serialization.
// ---------------------------------------------------------------------

TEST(SwimUpdate, PrecedenceOrdersIncarnationThenGravity) {
  // Higher incarnation always wins, whatever the states.
  EXPECT_TRUE((Update{7, 2, MemberState::kAlive}).supersedes(1, MemberState::kDead));
  EXPECT_FALSE((Update{7, 1, MemberState::kDead}).supersedes(2, MemberState::kAlive));
  // Same incarnation: strictly graver state wins.
  EXPECT_TRUE((Update{7, 3, MemberState::kSuspect}).supersedes(3, MemberState::kAlive));
  EXPECT_TRUE((Update{7, 3, MemberState::kDead}).supersedes(3, MemberState::kSuspect));
  EXPECT_FALSE((Update{7, 3, MemberState::kAlive}).supersedes(3, MemberState::kAlive));
  EXPECT_FALSE((Update{7, 3, MemberState::kAlive}).supersedes(3, MemberState::kSuspect));
  // The refutation rule: alive at a bumped incarnation beats suspicion
  // AND confirmed death (rejoin-by-reincarnation).
  EXPECT_TRUE((Update{7, 4, MemberState::kAlive}).supersedes(3, MemberState::kDead));
}

TEST(SwimUpdate, EncodeDecodeRoundTripsAndRejectsBadState) {
  Update in{42, 9u, MemberState::kSuspect};
  BinaryWriter w;
  in.encode(w);
  EXPECT_EQ(w.size(), 9u) << "an update is exactly i32 + u32 + u8 on the wire";

  BinaryReader r(w.data());
  Update out;
  ASSERT_TRUE(Update::decode(r, out));
  EXPECT_EQ(out, in);

  // A state byte beyond kDead must fail closed, not alias a state.
  Buffer bad = w.data();
  bad.back() = 7;
  BinaryReader rb(bad);
  EXPECT_FALSE(Update::decode(rb, out));
}

// ---------------------------------------------------------------------
// Detector state machine.
// ---------------------------------------------------------------------

constexpr sim::SimTime kPeriod = sim::milliseconds(100);
constexpr sim::SimTime kSuspicion = sim::seconds(1);

Detector make_detector(std::uint64_t seed = 1) {
  DetectorConfig dc;
  dc.self = 1;
  dc.members = {1, 2, 3, 4, 5};
  dc.probe_timeout = sim::milliseconds(40);
  dc.suspicion_timeout = kSuspicion;
  return Detector(dc, sim::Rng(seed));
}

TEST(SwimDetector, RoundRobinProbesEveryPeerOncePerTraversal) {
  Detector d = make_detector();
  std::vector<Transition> out;
  sim::SimTime now = 0;
  // Two full traversals: each must visit every peer exactly once
  // (randomized order), never self, never twice before the wrap.
  for (int pass = 0; pass < 2; ++pass) {
    std::set<int> seen;
    for (int i = 0; i < 4; ++i) {
      now += kPeriod;
      d.tick(now, out);
      int t = d.next_target(now);
      ASSERT_NE(t, 1) << "a member never probes itself";
      EXPECT_TRUE(seen.insert(t).second) << "peer " << t << " probed twice in one pass";
      d.on_ack(t, d.probe_seq(), now + sim::milliseconds(10));
    }
    EXPECT_EQ(seen, (std::set<int>{2, 3, 4, 5}));
  }
  EXPECT_TRUE(out.empty()) << "acked rounds must produce no transitions";
}

TEST(SwimDetector, UnackedRoundSuspectsThenConfirmsOnlyAfterFullWindow) {
  Detector d = make_detector();
  std::vector<Transition> out;
  sim::SimTime now = kPeriod;
  d.tick(now, out);
  int victim = d.next_target(now);
  ASSERT_GT(victim, 0);

  // No ack: the next tick closes the round as a suspicion.
  now += kPeriod;
  d.tick(now, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node, victim);
  EXPECT_EQ(out[0].to, MemberState::kSuspect);
  EXPECT_EQ(d.state(victim), MemberState::kSuspect);
  EXPECT_TRUE(d.presumed_live(victim)) << "suspects still count toward quorum";
  sim::SimTime suspected_at = now;

  // Ticks inside the refutation window must NOT confirm — this is the
  // property the cluster's failover safety rests on.
  out.clear();
  while (now < suspected_at + kSuspicion - kPeriod) {
    now += kPeriod;
    d.tick(now, out);
    // The suspect is skipped? No — suspects keep being probed; just
    // close each round by acking some other target.
    int t = d.next_target(now);
    if (t >= 0 && t != victim) d.on_ack(t, d.probe_seq(), now);
  }
  for (const Transition& tr : out) {
    EXPECT_NE(tr.to, MemberState::kDead)
        << "confirmed before the suspicion window elapsed";
  }

  // Past the deadline: confirmed, with the suspicion duration reported.
  out.clear();
  now = suspected_at + kSuspicion + kPeriod;
  d.tick(now, out);
  ASSERT_FALSE(out.empty());
  const Transition* dead = nullptr;
  for (const Transition& tr : out) {
    if (tr.node == victim && tr.to == MemberState::kDead) dead = &tr;
  }
  ASSERT_NE(dead, nullptr);
  EXPECT_GE(dead->suspected_for, kSuspicion);
  EXPECT_FALSE(d.presumed_live(victim));
}

TEST(SwimDetector, RefutationAtBumpedIncarnationClearsSuspicionAndDeath) {
  Detector d = make_detector();
  std::vector<Transition> out;
  // Drive peer 2 to suspect via an absorbed accusation.
  d.absorb(Update{2, 0, MemberState::kSuspect}, kPeriod, out);
  ASSERT_EQ(d.state(2), MemberState::kSuspect);

  // alive@1 supersedes suspect@0.
  out.clear();
  d.absorb(Update{2, 1, MemberState::kAlive}, 2 * kPeriod, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(d.state(2), MemberState::kAlive);
  EXPECT_FALSE(out[0].refuted_death) << "refuting a mere suspicion is not a false positive";

  // Death certificate, then a reincarnated alive: the refutation must
  // be flagged (that is the observable false positive / rejoin signal).
  out.clear();
  d.absorb(Update{2, 1, MemberState::kDead}, 3 * kPeriod, out);
  ASSERT_EQ(d.state(2), MemberState::kDead);
  out.clear();
  d.absorb(Update{2, 2, MemberState::kAlive}, 4 * kPeriod, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(d.state(2), MemberState::kAlive);
  EXPECT_TRUE(out[0].refuted_death);

  // Stale echo of the old accusation is ignored.
  out.clear();
  d.absorb(Update{2, 1, MemberState::kDead}, 5 * kPeriod, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(d.state(2), MemberState::kAlive);
}

TEST(SwimDetector, AccusationAgainstSelfBumpsIncarnationAndEnqueuesRefutation) {
  Detector d = make_detector();
  std::vector<Transition> out;
  EXPECT_EQ(d.self_incarnation(), 0u);
  d.absorb(Update{1, 0, MemberState::kSuspect}, kPeriod, out);
  EXPECT_EQ(d.self_incarnation(), 1u) << "self-defense bumps past the accusation";

  // The refutation must ride the very next frame out.
  std::vector<Update> batch = d.piggyback();
  bool found = false;
  for (const Update& u : batch) {
    if (u.node == 1) {
      found = true;
      EXPECT_EQ(u.state, MemberState::kAlive);
      EXPECT_EQ(u.incarnation, 1u);
    }
  }
  EXPECT_TRUE(found);

  // A death certificate about self at the bumped incarnation bumps again.
  d.absorb(Update{1, 1, MemberState::kDead}, 2 * kPeriod, out);
  EXPECT_EQ(d.self_incarnation(), 2u);
}

TEST(SwimDetector, PiggybackIsBoundedAndRetransmitBudgeted) {
  Detector d = make_detector();
  for (int n : {1, 2, 3, 4, 5}) d.announce(n);
  ASSERT_GT(d.budget(), 0);

  std::vector<Update> first = d.piggyback();
  EXPECT_LE(first.size(), d.config().max_piggyback);

  // Each buffered update rides exactly budget() frames, then drops out.
  int drains = 0;
  while (d.update_buffer_size() > 0 && drains < 1000) {
    d.piggyback();
    ++drains;
  }
  EXPECT_LT(drains, 1000) << "budget must bound dissemination, not loop forever";
  EXPECT_TRUE(d.piggyback().empty());
}

TEST(SwimDetector, PiggybackForAccusedPeerLeadsWithTheAccusation) {
  Detector d = make_detector();
  std::vector<Transition> out;
  d.absorb(Update{3, 0, MemberState::kSuspect}, kPeriod, out);
  // Exhaust the shared buffer so the guarantee cannot come from luck.
  while (d.update_buffer_size() > 0) d.piggyback();

  std::vector<Update> batch = d.piggyback_for(3);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front().node, 3);
  EXPECT_EQ(batch.front().state, MemberState::kSuspect)
      << "the accused must hear its own accusation on first contact";
}

TEST(SwimDetector, ProxiesExcludeSelfTargetAndDeadMembers) {
  Detector d = make_detector();
  std::vector<Transition> out;
  d.absorb(Update{4, 0, MemberState::kDead}, kPeriod, out);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> p = d.proxies(2, 3);
    EXPECT_LE(p.size(), 3u);
    for (int n : p) {
      EXPECT_NE(n, 1) << "self is not a proxy";
      EXPECT_NE(n, 2) << "the target cannot vouch for itself";
      EXPECT_NE(n, 4) << "dead members cannot relay";
    }
    std::set<int> uniq(p.begin(), p.end());
    EXPECT_EQ(uniq.size(), p.size()) << "proxies must be distinct";
  }
}

// ---------------------------------------------------------------------
// Wire frames.
// ---------------------------------------------------------------------

TEST(SwimWire, FramesRoundTripWithPiggyback) {
  std::vector<Update> updates = {{7, 3, MemberState::kSuspect},
                                 {9, 1, MemberState::kAlive}};
  core::SwimProbe probe;
  probe.from = 11;
  probe.origin = 10;
  probe.seq = 77;
  probe.role = core::Role::kPrimary;
  probe.incarnation = 5;
  probe.replica_ready = false;
  probe.updates = updates;
  core::SwimProbe probe_out;
  ASSERT_TRUE(core::SwimProbe::decode(probe.encode(), probe_out));
  EXPECT_EQ(probe_out.from, 11);
  EXPECT_EQ(probe_out.origin, 10);
  EXPECT_EQ(probe_out.seq, 77u);
  EXPECT_EQ(probe_out.role, core::Role::kPrimary);
  EXPECT_EQ(probe_out.incarnation, 5u);
  EXPECT_FALSE(probe_out.replica_ready);
  EXPECT_EQ(probe_out.updates, updates);

  core::SwimAck ack;
  ack.from = 12;
  ack.origin = 10;
  ack.seq = 77;
  ack.updates = updates;
  core::SwimAck ack_out;
  ASSERT_TRUE(core::SwimAck::decode(ack.encode(), ack_out));
  EXPECT_EQ(ack_out.from, 12);
  EXPECT_EQ(ack_out.origin, 10);
  EXPECT_EQ(ack_out.updates, updates);

  core::SwimPingReq req;
  req.from = 10;
  req.target = 12;
  req.seq = 78;
  core::SwimPingReq req_out;
  ASSERT_TRUE(core::SwimPingReq::decode(req.encode(), req_out));
  EXPECT_EQ(req_out.from, 10);
  EXPECT_EQ(req_out.target, 12);
  EXPECT_EQ(req_out.seq, 78u);

  // Cross-kind decoding fails on the kind byte alone.
  EXPECT_FALSE(core::SwimAck::decode(probe.encode(), ack_out));
  EXPECT_FALSE(core::SwimProbe::decode(ack.encode(), probe_out));
}

TEST(SwimWire, VersionSkewFailsClosed) {
  core::SwimProbe probe;
  probe.from = 1;
  probe.origin = 1;
  probe.seq = 1;
  Buffer b = probe.encode();
  // Layout: kind byte, then the cluster wire version.
  ASSERT_GE(b.size(), 2u);
  b[1] = core::kClusterWireVersion + 1;
  core::SwimProbe out;
  EXPECT_FALSE(core::SwimProbe::decode(b, out))
      << "a frame from a newer protocol version must be rejected, not misparsed";
}

TEST(SwimWire, TruncatedFramesRejected) {
  core::SwimAck ack;
  ack.from = 3;
  ack.origin = 4;
  ack.seq = 9;
  ack.updates = {{7, 3, MemberState::kDead}};
  Buffer b = ack.encode();
  for (std::size_t len = 0; len < b.size(); ++len) {
    Buffer prefix(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(len));
    core::SwimAck out;
    EXPECT_FALSE(core::SwimAck::decode(prefix, out)) << "prefix length " << len;
  }
}

// Deterministic fuzz, same idiom as Wire.FuzzGarbageFramesNeverDecode:
// random byte soup (with the correct kind byte forced half the time so
// the body parsers run) must never crash or allocate absurdly.
TEST(SwimWire, FuzzGarbageFramesNeverDecodeHugeBatches) {
  std::uint64_t s = 0xC0FFEE0DDF00Dull;
  auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint8_t>(s >> 56);
  };
  constexpr core::MsgKind kKinds[] = {core::MsgKind::kSwimProbe, core::MsgKind::kSwimAck,
                                      core::MsgKind::kSwimPingReq};
  for (int trial = 0; trial < 2000; ++trial) {
    Buffer junk(static_cast<std::size_t>(next()) % 64);
    for (auto& byte : junk) byte = next();
    if (!junk.empty() && trial % 2 == 0) {
      junk[0] = static_cast<std::uint8_t>(kKinds[trial % 3]);
      // Half of those also get a valid version byte, so the update-count
      // guard itself is exercised, not just the version check.
      if (junk.size() > 1 && trial % 4 == 0) junk[1] = core::kClusterWireVersion;
    }
    core::SwimProbe p;
    core::SwimAck a;
    core::SwimPingReq r;
    core::SwimProbe::decode(junk, p);  // must not crash / huge-alloc
    core::SwimAck::decode(junk, a);
    core::SwimPingReq::decode(junk, r);
    EXPECT_LT(p.updates.size(), 4096u);
    EXPECT_LT(a.updates.size(), 4096u);
    EXPECT_LT(r.updates.size(), 4096u);
  }
}

TEST(SwimWire, StatusReportCarriesSwimMembersAndGuardsTheCount) {
  core::StatusReport sr;
  sr.unit = "u";
  sr.node = 3;
  sr.swim_members = {{10, 0, MemberState::kAlive},
                     {11, 2, MemberState::kSuspect},
                     {12, 1, MemberState::kDead}};
  Buffer b = sr.encode();
  core::StatusReport out;
  ASSERT_TRUE(core::StatusReport::decode(b, out));
  EXPECT_EQ(out.swim_members, sr.swim_members);

  // Garble the trailing swim-member count (the final u32 when the list
  // is empty): decode must fail closed instead of attempting a giant
  // allocation.
  core::StatusReport empty;
  empty.unit = "u";
  empty.node = 3;
  Buffer bad = empty.encode();
  ASSERT_GE(bad.size(), 4u);
  for (std::size_t i = bad.size() - 4; i < bad.size(); ++i) bad[i] = 0xFF;
  core::StatusReport out2;
  EXPECT_FALSE(core::StatusReport::decode(bad, out2));
}

}  // namespace
}  // namespace oftt
