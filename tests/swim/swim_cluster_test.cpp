// Swim detection driven through full ClusterDeployments: startup
// election, confirmed-death failover with the global suspicion-window
// property, rejoin-by-reincarnation, the monitor's swim board, and the
// two seeded safety properties the subsystem is accountable for under
// adverse networks: a live member is never confirmed dead without its
// suspicion timeout elapsing, and a minority partition never elects.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/deployment.h"
#include "obs/event_bus.h"
#include "obs/telemetry.h"
#include "sim/fault_plan.h"
#include "sim/simulation.h"

namespace oftt::core {
namespace {

constexpr std::uint64_t kSeeds[] = {101, 202, 303, 404, 505};

ClusterDeploymentOptions swim_options(int replicas) {
  ClusterDeploymentOptions opts;
  opts.replicas = replicas;
  // Engine-only except the monitor: the tests below exercise detection
  // and role management, not the application stack.
  opts.with_msmq = false;
  opts.with_scm = false;
  opts.engine.detection = DetectionMode::kSwim;
  return opts;
}

TEST(SwimCluster, StartupElectsRankZeroAndDetectorsConverge) {
  sim::Simulation sim(9001);
  ClusterDeployment dep(sim, swim_options(5));
  sim.run_for(sim::seconds(5));

  EXPECT_EQ(dep.primary_count(), 1);
  EXPECT_EQ(dep.primary_node(), dep.node(0).id()) << "rank 0 must win the startup election";
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(dep.engine(i), nullptr);
    const swim::Detector* det = dep.engine(i)->swim_detector();
    ASSERT_NE(det, nullptr) << "swim mode must build a detector per engine";
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(det->state(dep.node(j).id()), swim::MemberState::kAlive)
          << "engine " << i << " about member " << j;
    }
  }
}

TEST(SwimCluster, LegacyConfigBuildsNoDetector) {
  sim::Simulation sim(9002);
  ClusterDeploymentOptions opts = swim_options(3);
  opts.engine.detection = DetectionMode::kGossip;
  ClusterDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(dep.engine(i), nullptr);
    EXPECT_EQ(dep.engine(i)->swim_detector(), nullptr);
  }
  EXPECT_EQ(dep.primary_node(), dep.node(0).id());
}

TEST(SwimCluster, KillingPrimaryConfirmsDeathAfterFullSuspicionWindowThenPromotes) {
  sim::Simulation sim(9003);
  ClusterDeploymentOptions opts = swim_options(5);
  opts.engine.swim_suspicion_timeout = sim::seconds(1);  // explicit, for the assertion
  ClusterDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  int victim = dep.primary_node();
  ASSERT_EQ(victim, dep.node(0).id());

  // The global suspicion-window property: the first death certificate
  // anywhere can only originate from a local suspicion expiry, so
  // first-confirm minus first-suspect must span the full window.
  sim::SimTime first_suspect = -1, first_confirm = -1;
  auto sub = sim.telemetry().bus().subscribe(
      obs::mask_of(obs::EventKind::kSwimSuspect, obs::EventKind::kSwimDeadConfirm),
      [&](const obs::Event& e) {
        if (static_cast<int>(e.a) != victim) return;
        if (e.kind == obs::EventKind::kSwimSuspect && first_suspect < 0) first_suspect = e.at;
        if (e.kind == obs::EventKind::kSwimDeadConfirm && first_confirm < 0)
          first_confirm = e.at;
      });
  dep.node(0).crash();

  sim::SimTime deadline = sim.now() + sim::seconds(15);
  while (sim.now() < deadline && dep.primary_node() < 0) {
    sim.run_for(sim::milliseconds(5));
  }
  sim.telemetry().bus().unsubscribe(sub);

  EXPECT_EQ(dep.primary_node(), dep.node(1).id()) << "rank-1 backup must take over";
  EXPECT_EQ(dep.primary_count(), 1);
  ASSERT_GE(first_suspect, 0) << "the dead primary was never suspected";
  ASSERT_GE(first_confirm, 0) << "the dead primary was never confirmed";
  EXPECT_GE(first_confirm - first_suspect, opts.engine.swim_suspicion_timeout)
      << "a death certificate originated before the refutation window closed";

  // The monitor's swim board converges on the verdict once the next
  // status reports land.
  sim.run_for(sim::seconds(3));
  ASSERT_NE(dep.monitor(), nullptr);
  auto board = dep.monitor()->swim_board_of("unit");
  ASSERT_TRUE(board.count(victim) != 0);
  EXPECT_GT(board[victim].dead, board[victim].alive)
      << "reporters must agree the old primary is dead";
  std::string screen = dep.monitor()->render();
  EXPECT_NE(screen.find("swim board"), std::string::npos);
}

TEST(SwimCluster, RebootedMemberRefutesItsDeathCertificateAndRejoins) {
  sim::Simulation sim(9004);
  ClusterDeployment dep(sim, swim_options(5));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  dep.node(0).crash();
  sim.run_for(sim::seconds(8));
  ASSERT_EQ(dep.primary_node(), dep.node(1).id());
  const swim::Detector* det1 = dep.engine(1)->swim_detector();
  ASSERT_NE(det1, nullptr);
  ASSERT_EQ(det1->state(dep.node(0).id()), swim::MemberState::kDead);

  // Reboot: the returning member must refute its own death certificate
  // (alive at a bumped incarnation) and be readmitted as a backup — no
  // separate join protocol.
  dep.node(0).boot();
  sim.run_for(sim::seconds(8));
  ASSERT_NE(dep.engine(0), nullptr);
  EXPECT_EQ(dep.primary_node(), dep.node(1).id()) << "rejoin must not unseat the new primary";
  EXPECT_EQ(dep.engine(0)->role(), Role::kBackup);
  EXPECT_EQ(det1->state(dep.node(0).id()), swim::MemberState::kAlive);
  EXPECT_GT(det1->incarnation(dep.node(0).id()), 0u)
      << "readmission must ride a bumped incarnation";
  const cluster::MembershipView& view = dep.engine(1)->view();
  ASSERT_NE(view.find(dep.node(0).id()), nullptr);
  EXPECT_EQ(view.find(dep.node(0).id())->role, cluster::MemberRole::kBackup);
}

// Property 1 (5 seeds): under a lossy but connected network — steady 2%
// independent loss plus a 30% mid-run burst — no live member is ever
// confirmed dead, so there is never a takeover and never a second
// primary. Suspicions may rise; they must all be refuted within the
// window by the direct ack, the k indirect paths, or the piggybacked
// refutation.
TEST(SwimProperty, NeverConfirmsLiveMemberDeadUnderLoss) {
  for (std::uint64_t seed : kSeeds) {
    sim::Simulation sim(seed);
    ClusterDeploymentOptions opts = swim_options(5);
    opts.net_loss = 0.02;
    ClusterDeployment dep(sim, opts);
    sim::FaultPlan plan(sim);
    plan.loss_burst(sim::seconds(8), 0, 0.30, sim::seconds(4), /*after=*/0.02);
    plan.arm();
    sim.run_for(sim::seconds(5));
    ASSERT_EQ(dep.primary_node(), dep.node(0).id()) << "seed " << seed;
    // Startup election done (node0's promotion is a takeover); nothing
    // after this point may add another.
    std::vector<std::uint64_t> takeovers_at_start;
    for (int i = 0; i < 5; ++i) takeovers_at_start.push_back(dep.engine(i)->takeovers());

    for (int step = 0; step < 30; ++step) {
      sim.run_for(sim::milliseconds(500));
      EXPECT_LE(dep.primary_count(), 1) << "seed " << seed;
    }
    EXPECT_EQ(dep.primary_node(), dep.node(0).id())
        << "seed " << seed << ": loss alone must never unseat a live primary";
    for (int i = 0; i < 5; ++i) {
      ASSERT_NE(dep.engine(i), nullptr) << "seed " << seed;
      EXPECT_EQ(dep.engine(i)->takeovers(), takeovers_at_start[static_cast<std::size_t>(i)])
          << "seed " << seed << " engine " << i;
      const swim::Detector* det = dep.engine(i)->swim_detector();
      ASSERT_NE(det, nullptr);
      for (int j = 0; j < 5; ++j) {
        EXPECT_NE(det->state(dep.node(j).id()), swim::MemberState::kDead)
            << "seed " << seed << ": engine " << i << " confirmed live member " << j;
      }
    }
  }
}

// Property 2 (5 seeds): a two-member minority partition never elects —
// its members can suspect and even confirm the unreachable majority,
// but the quorum gate must starve any campaign they start.
TEST(SwimProperty, MinorityPartitionNeverElects) {
  for (std::uint64_t seed : kSeeds) {
    sim::Simulation sim(seed ^ 0xABCDu);
    ClusterDeployment dep(sim, swim_options(5));
    sim.run_for(sim::seconds(5));
    ASSERT_EQ(dep.primary_node(), dep.node(0).id()) << "seed " << seed;

    sim::FaultPlan plan(sim);
    plan.partition(sim.now() + sim::milliseconds(200), 0,
                   {{dep.node(0).id(), dep.node(1).id(), dep.node(2).id(),
                     dep.monitor_node().id()},
                    {dep.node(3).id(), dep.node(4).id()}});
    plan.heal(sim.now() + sim::seconds(10), 0);
    plan.arm();

    for (int step = 0; step < 20; ++step) {
      sim.run_for(sim::milliseconds(500));
      EXPECT_NE(dep.engine(3)->role(), Role::kPrimary)
          << "seed " << seed << ": minority member 3 elected itself";
      EXPECT_NE(dep.engine(4)->role(), Role::kPrimary)
          << "seed " << seed << ": minority member 4 elected itself";
      EXPECT_LE(dep.primary_count(), 1) << "seed " << seed;
    }
    EXPECT_EQ(dep.engine(3)->takeovers(), 0u) << "seed " << seed;
    EXPECT_EQ(dep.engine(4)->takeovers(), 0u) << "seed " << seed;

    // After the heal, the cut-off members refute any suspicion or death
    // certificate about them and the cluster reconverges on the
    // original primary.
    sim.run_for(sim::seconds(6));
    EXPECT_EQ(dep.primary_node(), dep.node(0).id()) << "seed " << seed;
    EXPECT_EQ(dep.primary_count(), 1) << "seed " << seed;
  }
}

TEST(SwimCluster, PrimaryInMinorityStepsDownAndMajorityElects) {
  sim::Simulation sim(9005);
  ClusterDeployment dep(sim, swim_options(5));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  sim.network(0).partition(
      {{dep.node(0).id(), dep.node(1).id()},
       {dep.node(2).id(), dep.node(3).id(), dep.node(4).id(), dep.monitor_node().id()}});
  sim.run_for(sim::seconds(8));

  EXPECT_EQ(dep.engine(2)->role(), Role::kPrimary) << "majority must elect node2";
  EXPECT_NE(dep.engine(0)->role(), Role::kPrimary)
      << "minority primary must step down on quorum loss";

  sim.network(0).heal();
  sim.run_for(sim::seconds(6));
  EXPECT_EQ(dep.primary_node(), dep.node(2).id()) << "heal converges on the new incarnation";
  EXPECT_EQ(dep.primary_count(), 1);
}

// Determinism smoke: two runs of the same seeded scenario must agree on
// every observable — swim forks its rng per node, so nothing here may
// depend on address ordering or wall clock.
TEST(SwimCluster, SameSeedRunsAreIdentical) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation sim(seed);
    ClusterDeployment dep(sim, swim_options(5));
    sim.run_for(sim::seconds(5));
    dep.node(0).crash();
    sim.run_for(sim::seconds(10));
    return std::tuple(dep.primary_node(), sim.telemetry().bus().published(),
                      sim.telemetry().metrics().counter_value("oftt.swim_probes_sent"),
                      sim.network(0).sent());
  };
  EXPECT_EQ(run_once(4242), run_once(4242));
}

}  // namespace
}  // namespace oftt::core
