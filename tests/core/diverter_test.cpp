// Message Diverter tests: the primary/backup pair as one logical unit
// for an external non-replicated source, with "non-delivery detected
// and retried" through a switchover (paper §2.2.3).
#include <gtest/gtest.h>

#include <set>

#include "core/api.h"
#include "core/deployment.h"
#include "core/diverter.h"
#include "msmq/queue_manager.h"

namespace oftt::core {
namespace {

constexpr const char* kUnitQueue = "calltrack.events";

/// Consumes the unit's logical queue while active; counts processed
/// messages in checkpointable state and checkpoints after each message
/// (user-directed, per refs [10,11]) so no acknowledged work is lost.
class ConsumerApp {
 public:
  explicit ConsumerApp(sim::Process& process) : process_(&process) {
    auto& rt = nt::NtRuntime::of(process);
    region_ = &rt.memory().alloc("globals", 64);
    processed_ = nt::Cell<std::int64_t>(region_, 0);
    FtimOptions opts;
    opts.checkpoint_period = sim::milliseconds(500);
    OFTTInitialize(process, opts);
    Ftim& ftim = *Ftim::find(process);
    ftim.on_activate([this](bool) {
      msmq::MsmqApi::of(*process_).subscribe(kUnitQueue, [this](const msmq::Message& m) {
        processed_.set(processed_.get() + 1);
        seen_labels.insert(m.label);
        OFTTSave(*process_);  // event-based checkpoint: no processed msg lost
      });
    });
  }

  std::int64_t processed() const { return processed_.get(); }
  std::set<std::string> seen_labels;

  static ConsumerApp* find(sim::Node& node) {
    auto proc = node.find_process("app");
    return proc && proc->alive() ? proc->find_attachment<ConsumerApp>() : nullptr;
  }

 private:
  sim::Process* process_;
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> processed_;
};

class DiverterTest : public ::testing::Test {
 protected:
  DiverterTest() : sim_(31) {
    PairDeploymentOptions opts;
    opts.unit = "calltrack";
    opts.app_factory = [](sim::Process& proc) { proc.attachment<ConsumerApp>(proc); };
    dep_ = std::make_unique<PairDeployment>(sim_, opts);
    source_proc_ = dep_->monitor_node().start_process("telsim", nullptr);
    DiverterOptions dopts;
    dopts.unit = "calltrack";
    dopts.queue = kUnitQueue;
    dopts.node_a = dep_->node_a().id();
    dopts.node_b = dep_->node_b().id();
    diverter_ = std::make_shared<MessageDiverter>(*source_proc_, dopts);
    source_proc_->add_component(diverter_);
  }

  sim::Simulation sim_;
  std::unique_ptr<PairDeployment> dep_;
  std::shared_ptr<sim::Process> source_proc_;
  std::shared_ptr<MessageDiverter> diverter_;
};

TEST_F(DiverterTest, LearnsPrimaryAndRoutesMessages) {
  sim_.run_for(sim::seconds(3));
  EXPECT_EQ(diverter_->current_primary(), dep_->node_a().id());
  for (int i = 0; i < 10; ++i) diverter_->send("evt", Buffer{});
  sim_.run_for(sim::seconds(1));
  ConsumerApp* app = ConsumerApp::find(dep_->node_a());
  ASSERT_NE(app, nullptr);
  EXPECT_EQ(app->processed(), 10);
  ConsumerApp* backup = ConsumerApp::find(dep_->node_b());
  EXPECT_EQ(backup->processed(), 0) << "backup consumes nothing";
}

TEST_F(DiverterTest, SwitchoverMidStreamLosesNothing) {
  sim_.run_for(sim::seconds(3));
  // Stream one message every 20 ms; crash the primary mid-stream.
  int sent = 0;
  sim::PeriodicTimer stream(source_proc_->main_strand());
  stream.start(sim::milliseconds(20), [&] {
    diverter_->send("evt-" + std::to_string(sent++), Buffer{});
  });
  sim_.run_for(sim::seconds(2));
  dep_->node_a().crash();
  sim_.run_for(sim::seconds(4));
  stream.stop();
  sim_.run_for(sim::seconds(5));  // drain retries

  ASSERT_EQ(dep_->primary_node(), dep_->node_b().id());
  ConsumerApp* app_b = ConsumerApp::find(dep_->node_b());
  ASSERT_NE(app_b, nullptr);

  EXPECT_EQ(diverter_->reroutes(), 1u);
  // Everything sent after the last pre-crash checkpoint is either in
  // the checkpointed count or redelivered; with per-message OFTTSave
  // the total processed must be >= sent minus messages that reached the
  // dead node's local queue but were never processed... which per-event
  // checkpointing reduces to zero:
  EXPECT_GE(app_b->processed(), sent - 3)
      << "at most the in-flight handful may be outstanding";
  EXPECT_GT(app_b->seen_labels.size(), 0u);
}

TEST_F(DiverterTest, MessagesSentWhilePrimaryDownAreHeldAndRetried) {
  sim_.run_for(sim::seconds(3));
  dep_->node_a().crash();
  // Send immediately, before the diverter has learned of the takeover.
  for (int i = 0; i < 5; ++i) diverter_->send("held", Buffer{});
  sim_.run_for(sim::milliseconds(100));  // let the local QM take custody
  msmq::QueueManager* qm = msmq::QueueManager::find(dep_->monitor_node());
  ASSERT_NE(qm, nullptr);
  EXPECT_GT(qm->outgoing_depth(), 0u) << "store-and-forward holds messages";

  sim_.run_for(sim::seconds(5));
  ConsumerApp* app_b = ConsumerApp::find(dep_->node_b());
  ASSERT_NE(app_b, nullptr);
  EXPECT_EQ(app_b->processed(), 5) << "retry chased the route change";
}

TEST_F(DiverterTest, RerouteBackAfterFailback) {
  sim_.run_for(sim::seconds(3));
  dep_->node_a().os_crash(sim::seconds(2));  // BSOD + auto reboot
  sim_.run_for(sim::seconds(6));
  ASSERT_EQ(dep_->primary_node(), dep_->node_b().id());
  EXPECT_EQ(diverter_->current_primary(), dep_->node_b().id());

  // Operator moves the unit back to node A.
  ASSERT_NE(dep_->engine_b(), nullptr);
  EXPECT_EQ(dep_->engine_b()->request_switchover("failback"), S_OK);
  sim_.run_for(sim::seconds(3));
  EXPECT_EQ(dep_->primary_node(), dep_->node_a().id());
  EXPECT_EQ(diverter_->current_primary(), dep_->node_a().id());
  EXPECT_GE(diverter_->reroutes(), 2u);

  diverter_->send("after-failback", Buffer{});
  sim_.run_for(sim::seconds(1));
  ConsumerApp* app_a = ConsumerApp::find(dep_->node_a());
  ASSERT_NE(app_a, nullptr);
  EXPECT_TRUE(app_a->seen_labels.count("after-failback"));
}

TEST_F(DiverterTest, SwitchoverRequestRefusedWithoutPeer) {
  sim_.run_for(sim::seconds(3));
  dep_->node_b().crash();
  sim_.run_for(sim::seconds(2));
  ASSERT_NE(dep_->engine_a(), nullptr);
  EXPECT_EQ(dep_->engine_a()->request_switchover("x"), OFTT_E_NO_PEER);
  EXPECT_EQ(dep_->engine_a()->role(), Role::kPrimary) << "refused: still serving";
}

}  // namespace
}  // namespace oftt::core
