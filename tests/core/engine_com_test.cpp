// IOFTTEngine tests: the engine's COM face over DCOM — remote status
// queries, operator-initiated switchover, and run-time recovery-rule
// changes (the paper's dynamic-decision extension).
#include <gtest/gtest.h>

#include "core/api.h"
#include "core/deployment.h"
#include "core/engine_com.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

class EngineComTest : public ::testing::Test {
 protected:
  EngineComTest() : sim_(61) {
    PairDeploymentOptions opts;
    opts.unit = "unit";
    opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
    dep_ = std::make_unique<PairDeployment>(sim_, opts);
    operator_proc_ = dep_->monitor_node().start_process("operator", nullptr);
    sim_.run_for(sim::seconds(3));
  }

  com::ComPtr<IOFTTEngine> connect(int node) {
    com::ComPtr<IOFTTEngine> out;
    HRESULT got = E_FAIL;
    connect_engine(*operator_proc_, node, [&](HRESULT hr, com::ComPtr<IOFTTEngine> e) {
      got = hr;
      out = std::move(e);
    });
    sim_.run_for(sim::milliseconds(100));
    EXPECT_TRUE(SUCCEEDED(got)) << hresult_to_string(got);
    return out;
  }

  sim::Simulation sim_;
  std::unique_ptr<PairDeployment> dep_;
  std::shared_ptr<sim::Process> operator_proc_;
};

TEST_F(EngineComTest, RemoteStatusQuery) {
  auto engine = connect(dep_->node_a().id());
  ASSERT_TRUE(engine);
  StatusReport sr;
  HRESULT got = E_FAIL;
  engine->GetStatus([&](HRESULT hr, const StatusReport& s) {
    got = hr;
    sr = s;
  });
  sim_.run_for(sim::milliseconds(100));
  ASSERT_EQ(got, S_OK);
  EXPECT_EQ(sr.unit, "unit");
  EXPECT_EQ(sr.role, Role::kPrimary);
  EXPECT_TRUE(sr.peer_visible);
  ASSERT_EQ(sr.components.size(), 1u);
  EXPECT_EQ(sr.components[0].name, "app");
  EXPECT_EQ(sr.components[0].state, ComponentState::kUp);
}

TEST_F(EngineComTest, OperatorSwitchoverFromMonitorNode) {
  ASSERT_EQ(dep_->primary_node(), dep_->node_a().id());
  auto engine = connect(dep_->node_a().id());
  ASSERT_TRUE(engine);
  HRESULT got = E_FAIL;
  engine->RequestSwitchover("planned maintenance", [&](HRESULT hr) { got = hr; });
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(got, S_OK);
  EXPECT_EQ(dep_->primary_node(), dep_->node_b().id());
  // State carried over.
  CounterApp* app_b = CounterApp::find(dep_->node_b());
  ASSERT_NE(app_b, nullptr);
  EXPECT_GT(app_b->count(), 0);
}

TEST_F(EngineComTest, SwitchoverOnBackupIsRefused) {
  auto engine = connect(dep_->node_b().id());
  ASSERT_TRUE(engine);
  HRESULT got = S_OK;
  engine->RequestSwitchover("wrong node", [&](HRESULT hr) { got = hr; });
  sim_.run_for(sim::milliseconds(200));
  EXPECT_EQ(got, OFTT_E_NOT_PRIMARY);
  EXPECT_EQ(dep_->primary_node(), dep_->node_a().id());
}

TEST_F(EngineComTest, RemoteRecoveryRuleChange) {
  auto engine = connect(dep_->node_a().id());
  ASSERT_TRUE(engine);
  HRESULT got = E_FAIL;
  engine->SetRecoveryRule("app", 0, 1, [&](HRESULT hr) { got = hr; });
  sim_.run_for(sim::milliseconds(200));
  ASSERT_EQ(got, S_OK);
  // With 0 local restarts allowed, the first app crash escalates
  // straight to switchover.
  dep_->node_a().find_process("app")->kill("fault");
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(dep_->primary_node(), dep_->node_b().id());
}

TEST_F(EngineComTest, UnknownComponentRuleChangeFails) {
  auto engine = connect(dep_->node_a().id());
  ASSERT_TRUE(engine);
  HRESULT got = S_OK;
  engine->SetRecoveryRule("nope", 1, 1, [&](HRESULT hr) { got = hr; });
  sim_.run_for(sim::milliseconds(200));
  EXPECT_EQ(got, E_INVALIDARG);
}

TEST_F(EngineComTest, ConnectToDeadEngineFails) {
  dep_->node_a().crash();
  sim_.run_for(sim::seconds(1));
  HRESULT got = S_OK;
  connect_engine(*operator_proc_, dep_->node_a().id(),
                 [&](HRESULT hr, com::ComPtr<IOFTTEngine>) { got = hr; });
  sim_.run_for(sim::seconds(3));
  EXPECT_TRUE(FAILED(got));
}

TEST_F(EngineComTest, DynamicRuleViaApi) {
  // The application itself relaxes its rule at run time (OFTTSetRecoveryRule).
  auto app_proc = dep_->node_a().find_process("app");
  EXPECT_EQ(OFTTSetRecoveryRule(*app_proc, 5, 0), S_OK);
  sim_.run_for(sim::milliseconds(200));
  // Crash it thrice: with 5 restarts allowed and switchover disabled,
  // node A must remain primary throughout.
  for (int i = 0; i < 3; ++i) {
    dep_->node_a().find_process("app")->kill("fault");
    sim_.run_for(sim::seconds(2));
  }
  EXPECT_EQ(dep_->primary_node(), dep_->node_a().id());
  ASSERT_NE(dep_->engine_a(), nullptr);
  EXPECT_EQ(dep_->engine_a()->components().at("app").restarts, 3);
}

}  // namespace
}  // namespace oftt::core
