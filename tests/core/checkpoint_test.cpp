// Checkpoint capture/restore tests, including the §3.1 thread-
// discoverability behaviour (IAT hook vs documented APIs) and the
// full-vs-selective (OFTTSelSave) modes.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "core/checkpoint.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace oftt::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() {
    node_ = &sim_.add_node("n");
    node_->boot();
    src_proc_ = node_->start_process("src", nullptr);
    dst_proc_ = node_->start_process("dst", nullptr);
    src_ = &nt::NtRuntime::of(*src_proc_);
    dst_ = &nt::NtRuntime::of(*dst_proc_);
  }

  sim::Simulation sim_;
  sim::Node* node_;
  std::shared_ptr<sim::Process> src_proc_, dst_proc_;
  nt::NtRuntime* src_;
  nt::NtRuntime* dst_;
};

TEST_F(CheckpointTest, FullModeWalksAllRegions) {
  src_->memory().alloc("globals", 64).write<std::uint64_t>(0, 111);
  src_->memory().alloc("heap", 128).write<std::uint64_t>(8, 222);

  CheckpointImage img = capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, {});
  EXPECT_EQ(img.regions.size(), 2u);

  // Restore into a different process's address space.
  EXPECT_EQ(restore_checkpoint(*dst_, img), 0);
  EXPECT_EQ(dst_->memory().find("globals")->read<std::uint64_t>(0), 111u);
  EXPECT_EQ(dst_->memory().find("heap")->read<std::uint64_t>(8), 222u);
}

TEST_F(CheckpointTest, SelectiveModeCarriesOnlyDesignatedCells) {
  auto& g = src_->memory().alloc("globals", 256);
  g.write<std::uint64_t>(0, 1);
  g.write<std::uint64_t>(64, 2);

  std::vector<CellSpec> cells{{"globals", 64, 8}};
  CheckpointImage img = capture_checkpoint(*src_, CheckpointMode::kSelective, cells, 1, 1, {});
  EXPECT_TRUE(img.regions.empty());
  ASSERT_EQ(img.cells.size(), 1u);
  EXPECT_EQ(img.cells[0].bytes.size(), 8u);

  auto& dg = dst_->memory().alloc("globals", 256);
  dg.write<std::uint64_t>(0, 999);
  restore_checkpoint(*dst_, img);
  EXPECT_EQ(dg.read<std::uint64_t>(64), 2u);
  EXPECT_EQ(dg.read<std::uint64_t>(0), 999u) << "non-designated state untouched";
}

TEST_F(CheckpointTest, SelectiveIsSmallerThanFull) {
  src_->memory().alloc("globals", 1 << 20);  // 1 MiB of app state
  std::vector<CellSpec> cells{{"globals", 0, 16}};
  auto full = capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, {});
  auto sel = capture_checkpoint(*src_, CheckpointMode::kSelective, cells, 1, 1, {});
  EXPECT_GT(full.marshal().size(), (1u << 20));
  EXPECT_LT(sel.marshal().size(), 256u);
}

TEST_F(CheckpointTest, MarshalRoundTripWithChecksum) {
  src_->memory().alloc("g", 32).write<std::uint32_t>(0, 0xAB);
  auto& task = src_->create_thread_static("main", 0x401000);
  task.set_context_provider([] { return Buffer{5, 6}; });

  CheckpointImage img =
      capture_checkpoint(*src_, CheckpointMode::kFull, {}, 9, 3, {&task});
  img.taken_at = sim::seconds(1);
  Buffer blob = img.marshal();

  CheckpointImage out;
  ASSERT_TRUE(CheckpointImage::unmarshal(blob, out));
  EXPECT_EQ(out.seq, 9u);
  EXPECT_EQ(out.incarnation, 3u);
  EXPECT_EQ(out.regions.at("g").size(), 32u);
  EXPECT_EQ(out.task_contexts.size(), 1u);
}

TEST_F(CheckpointTest, CorruptedImageRejected) {
  src_->memory().alloc("g", 32);
  Buffer blob = capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, {}).marshal();
  blob[blob.size() / 2] ^= 0xFF;
  CheckpointImage out;
  EXPECT_FALSE(CheckpointImage::unmarshal(blob, out));
  EXPECT_FALSE(CheckpointImage::unmarshal(Buffer{1, 2, 3}, out));
}

TEST_F(CheckpointTest, TaskContextRestoredThroughRestorer) {
  auto& task = src_->create_thread_static("worker", 0x5000);
  int live_value = 7;
  task.set_context_provider([&] {
    BinaryWriter w;
    w.i32(live_value);
    return std::move(w).take();
  });
  CheckpointImage img = capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, {&task});

  auto& dtask = dst_->create_thread_static("worker", 0x5000);
  int restored = 0;
  dtask.set_context_restorer([&](const Buffer& b) {
    BinaryReader r(b);
    restored = r.i32();
  });
  restore_checkpoint(*dst_, img);
  EXPECT_EQ(restored, 7);
}

TEST_F(CheckpointTest, MissingTaskOnRestoreCountsAnomaly) {
  auto& task = src_->create_thread_static("worker", 0x5000);
  task.set_context_provider([] { return Buffer{}; });
  CheckpointImage img = capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, {&task});
  // dst has no "worker" task.
  EXPECT_EQ(restore_checkpoint(*dst_, img), 1);
}

TEST_F(CheckpointTest, RegionSizeMismatchClampsAndCounts) {
  src_->memory().alloc("g", 64);
  CheckpointImage img = capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, {});
  dst_->memory().alloc("g", 32);  // smaller on restore side
  EXPECT_EQ(restore_checkpoint(*dst_, img), 1);
}

TEST_F(CheckpointTest, SelectiveCellOutOfRangeSkipped) {
  src_->memory().alloc("g", 16);
  std::vector<CellSpec> cells{{"g", 12, 8}};  // runs past the end
  CheckpointImage img =
      capture_checkpoint(*src_, CheckpointMode::kSelective, cells, 1, 1, {});
  EXPECT_TRUE(img.cells.empty()) << "invalid designation must not capture garbage";
}

// --- delta checkpoints (dirty-region tracking driven) ---

TEST_F(CheckpointTest, DeltaCarriesOnlyDirtyRanges) {
  auto& g = src_->memory().alloc("globals", 256);
  g.write<std::uint64_t>(0, 1);
  g.write<std::uint64_t>(128, 2);
  src_->memory().clear_all_dirty();  // a full checkpoint was just taken

  g.write<std::uint64_t>(128, 3);  // the only mutation since

  CheckpointImage delta = capture_delta_checkpoint(*src_, 2, 1, 1, {});
  EXPECT_EQ(delta.mode, CheckpointMode::kDelta);
  EXPECT_EQ(delta.base_seq, 1u);
  EXPECT_TRUE(delta.regions.empty()) << "no whole-region blobs for a range write";
  ASSERT_EQ(delta.cells.size(), 1u);
  EXPECT_EQ(delta.cells[0].offset, 128u);
  EXPECT_EQ(delta.cells[0].bytes.size(), 8u);
}

TEST_F(CheckpointTest, DeltaSkipsCleanRegionsAndShipsNewRegionsWhole) {
  src_->memory().alloc("old", 64);
  src_->memory().clear_all_dirty();
  src_->memory().alloc("fresh", 32).write<std::uint8_t>(0, 7);

  CheckpointImage delta = capture_delta_checkpoint(*src_, 2, 1, 1, {});
  EXPECT_EQ(delta.regions.count("old"), 0u) << "untouched region must not ship";
  ASSERT_EQ(delta.regions.count("fresh"), 1u) << "new region is all-dirty: ships whole";
  EXPECT_EQ(delta.regions.at("fresh").size(), 32u);
}

TEST_F(CheckpointTest, DeltaFarSmallerThanFullForSparseWrites) {
  auto& g = src_->memory().alloc("globals", 1 << 20);  // 1 MiB of app state
  src_->memory().clear_all_dirty();
  g.write<std::uint64_t>(512, 42);

  auto full = capture_checkpoint(*src_, CheckpointMode::kFull, {}, 2, 1, {});
  auto delta = capture_delta_checkpoint(*src_, 2, 1, 1, {});
  EXPECT_GT(full.marshal().size(), (1u << 20));
  EXPECT_LT(delta.marshal().size(), 256u);
}

TEST_F(CheckpointTest, ApplyDeltaMergesIntoBaseAndRestoresCorrectly) {
  auto& g = src_->memory().alloc("globals", 256);
  g.write<std::uint64_t>(0, 10);
  g.write<std::uint64_t>(64, 20);
  CheckpointImage base = capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, {});
  src_->memory().clear_all_dirty();

  g.write<std::uint64_t>(64, 21);
  CheckpointImage delta = capture_delta_checkpoint(*src_, 2, 1, 1, {});
  const DeltaApplyResult res = apply_delta(base, delta);
  EXPECT_TRUE(res.applied());
  EXPECT_EQ(res.anomalies, 0);
  EXPECT_EQ(base.seq, 2u);

  restore_checkpoint(*dst_, base);
  EXPECT_EQ(dst_->memory().find("globals")->read<std::uint64_t>(0), 10u);
  EXPECT_EQ(dst_->memory().find("globals")->read<std::uint64_t>(64), 21u);
}

TEST_F(CheckpointTest, ApplyDeltaCountsCellsOutsideBase) {
  CheckpointImage base;
  base.seq = 1;
  base.regions["g"] = Buffer(16);
  CheckpointImage delta;
  delta.seq = 2;
  delta.mode = CheckpointMode::kDelta;
  delta.base_seq = 1;
  SelectiveCell missing{"nope", 0, Buffer(4)};
  SelectiveCell overrun{"g", 12, Buffer(8)};
  delta.cells = {missing, overrun};
  const DeltaApplyResult res = apply_delta(base, delta);
  EXPECT_TRUE(res.applied());
  EXPECT_EQ(res.anomalies, 2);
  EXPECT_EQ(base.seq, 2u) << "merge still advances despite the anomalies";
}

// --- unmarshal hardening: hostile buffers must be rejected cheaply ---

namespace fuzz {
/// A checksum-valid image header followed by a declared element count —
/// the checksum passes, so only the count validation stands between the
/// parser and a multi-gigabyte allocation loop.
Buffer image_with_declared_region_count(std::uint32_t count) {
  BinaryWriter w;
  w.u64(1);                                              // seq
  w.u64(0);                                              // base_seq
  w.u64(0);                                              // decision_seq
  w.u32(1);                                              // incarnation
  w.u8(static_cast<std::uint8_t>(CheckpointMode::kFull));  // mode
  w.i64(0);                                              // taken_at
  w.u32(count);                                          // nregions
  w.u64(fnv64(w.data()));
  return std::move(w).take();
}
}  // namespace fuzz

TEST_F(CheckpointTest, UnmarshalRejectsHugeDeclaredCounts) {
  CheckpointImage out;
  EXPECT_FALSE(CheckpointImage::unmarshal(fuzz::image_with_declared_region_count(0xFFFFFFFF), out));
  EXPECT_FALSE(CheckpointImage::unmarshal(fuzz::image_with_declared_region_count(1u << 20), out));
  // A count of zero for every section is a legitimate (empty) image.
  BinaryWriter w;
  w.u64(1);
  w.u64(0);
  w.u64(0);  // decision_seq
  w.u32(1);
  w.u8(static_cast<std::uint8_t>(CheckpointMode::kFull));
  w.i64(0);
  w.u32(0);  // regions
  w.u32(0);  // cells
  w.u32(0);  // task contexts
  w.u64(fnv64(w.data()));
  EXPECT_TRUE(CheckpointImage::unmarshal(std::move(w).take(), out));
}

TEST_F(CheckpointTest, UnmarshalSurvivesTruncationSweep) {
  src_->memory().alloc("g", 64).write<std::uint32_t>(0, 0xAB);
  auto& task = src_->create_thread_static("main", 0x401000);
  task.set_context_provider([] { return Buffer{1, 2, 3}; });
  Buffer blob =
      capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, {&task}).marshal();

  // Every strict prefix must be rejected — never parsed into a
  // half-filled image, never crashed on.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    CheckpointImage out;
    EXPECT_FALSE(CheckpointImage::unmarshal(Buffer(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(len)), out))
        << "prefix of " << len << " bytes must not unmarshal";
  }
  CheckpointImage out;
  EXPECT_TRUE(CheckpointImage::unmarshal(blob, out));
}

TEST_F(CheckpointTest, UnmarshalSurvivesRandomGarbage) {
  sim::Rng rng(0xC0FFEE);
  for (int round = 0; round < 200; ++round) {
    Buffer junk(static_cast<std::size_t>(rng.uniform(0, 512)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    CheckpointImage out;
    // The odds of 512 random bytes carrying a valid trailing fnv64 of
    // themselves are negligible; the parser must simply say no.
    EXPECT_FALSE(CheckpointImage::unmarshal(junk, out));
  }
}

// The §3.1 reproduction at the checkpoint level: without the IAT hook a
// dynamically created thread's context is absent from the image.
TEST_F(CheckpointTest, DynamicThreadContextMissingWithoutIatHook) {
  auto& static_task = src_->create_thread_static("main", 0x1);
  auto& dyn_task = src_->CreateThread("worker", 0x2);
  static_task.set_context_provider([] { return Buffer{1}; });
  dyn_task.set_context_provider([] { return Buffer{2}; });

  // What an unhooked FTIM can discover: documented APIs only.
  std::vector<nt::Task*> discoverable;
  for (auto tid : src_->enumerate_thread_ids()) {
    if (nt::Task* t = src_->open_thread(tid)) discoverable.push_back(t);
  }
  CheckpointImage img =
      capture_checkpoint(*src_, CheckpointMode::kFull, {}, 1, 1, discoverable);
  EXPECT_EQ(img.task_contexts.count("main"), 1u);
  EXPECT_EQ(img.task_contexts.count("worker"), 0u)
      << "dynamic thread invisible without the IAT hook (paper §3.1)";
}

}  // namespace
}  // namespace oftt::core
