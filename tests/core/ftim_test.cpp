// FTIM-focused tests: selective checkpoints end-to-end (OFTTSelSave),
// the IAT hook's effect on dynamic-thread state across switchover,
// server-kind statelessness, role reporting, and the RingLog history
// container surviving failover.
#include <gtest/gtest.h>

#include "core/api.h"
#include "core/deployment.h"
#include "nt/ring_log.h"
#include "sim/timer.h"

namespace oftt::core {
namespace {

// App with both "precious" designated state and bulk scratch state —
// selective checkpointing must carry only the former.
class SelectiveApp {
 public:
  explicit SelectiveApp(sim::Process& process) : timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("main", 0x1000);
    region_ = &rt.memory().alloc("globals", 1 << 16);
    precious_ = nt::Cell<std::int64_t>(region_, 0);
    scratch_ = nt::Cell<std::int64_t>(region_, 1024);

    FtimOptions opts;
    opts.checkpoint_mode = CheckpointMode::kSelective;
    opts.checkpoint_period = sim::milliseconds(100);
    OFTTInitialize(process, opts);
    OFTTSelSave(process, precious_.region()->name(),
                static_cast<std::uint32_t>(precious_.offset()), 8);
    Ftim::find(process)->on_activate([this](bool) {
      timer_.start(sim::milliseconds(20), [this] {
        precious_.set(precious_.get() + 1);
        scratch_.set(scratch_.get() + 100);
      });
    });
    Ftim::find(process)->on_deactivate([this] { timer_.stop(); });
  }

  std::int64_t precious() const { return precious_.get(); }
  std::int64_t scratch() const { return scratch_.get(); }

  static SelectiveApp* find(sim::Node& node) {
    auto proc = node.find_process("app");
    return proc && proc->alive() ? proc->find_attachment<SelectiveApp>() : nullptr;
  }

 private:
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> precious_, scratch_;
  sim::PeriodicTimer timer_;
};

TEST(SelectiveCheckpoint, DesignatedStateSurvivesSwitchoverScratchDoesNot) {
  sim::Simulation sim(101);
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<SelectiveApp>(proc); };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  SelectiveApp* app_a = SelectiveApp::find(dep.node_a());
  ASSERT_NE(app_a, nullptr);
  std::int64_t precious_before = app_a->precious();
  ASSERT_GT(precious_before, 0);
  ASSERT_GT(app_a->scratch(), 0);
  // Selective images are tiny regardless of the 64 KiB region.
  Ftim* primary_ftim = dep.ftim_on(dep.node_a());
  EXPECT_LT(primary_ftim->last_checkpoint_bytes(), 512u);

  dep.node_a().crash();
  sim.run_for(sim::seconds(2));
  SelectiveApp* app_b = SelectiveApp::find(dep.node_b());
  ASSERT_NE(app_b, nullptr);
  sim.run_for(sim::seconds(1));
  EXPECT_GT(app_b->precious(), precious_before - 10) << "designated state restored";
}

// App whose interesting state lives in a *dynamically created thread's*
// context — checkpointable only because the FTIM hooked CreateThread.
class DynThreadApp {
 public:
  DynThreadApp(sim::Process& process, bool install_hook) : timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("main", 0x1000);
    rt.memory().alloc("globals", 32);  // give full mode something stable

    FtimOptions opts;
    opts.install_iat_hook = install_hook;
    opts.checkpoint_period = sim::milliseconds(100);
    OFTTInitialize(process, opts);

    // The app spawns a worker AFTER initialization, via the Win32 import.
    nt::Task& worker = rt.CreateThread("worker", 0x2000);
    worker.set_context_provider([this] {
      BinaryWriter w;
      w.i64(worker_progress_);
      return std::move(w).take();
    });
    worker.set_context_restorer([this](const Buffer& b) {
      BinaryReader r(b);
      worker_progress_ = r.i64();
    });

    Ftim::find(process)->on_activate([this](bool) {
      timer_.start(sim::milliseconds(20), [this] { ++worker_progress_; });
    });
    Ftim::find(process)->on_deactivate([this] { timer_.stop(); });
  }

  std::int64_t worker_progress_ = 0;

  static DynThreadApp* find(sim::Node& node) {
    auto proc = node.find_process("app");
    return proc && proc->alive() ? proc->find_attachment<DynThreadApp>() : nullptr;
  }

 private:
  sim::PeriodicTimer timer_;
};

class IatHookSweep : public ::testing::TestWithParam<bool> {};

TEST_P(IatHookSweep, DynamicThreadStateSurvivesOnlyWithHook) {
  bool hook = GetParam();
  sim::Simulation sim(hook ? 102 : 103);
  PairDeploymentOptions opts;
  opts.app_factory = [hook](sim::Process& proc) {
    proc.attachment<DynThreadApp>(proc, hook);
  };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  std::int64_t progress_before = DynThreadApp::find(dep.node_a())->worker_progress_;
  ASSERT_GT(progress_before, 0);

  dep.node_a().crash();
  sim.run_for(sim::seconds(3));
  DynThreadApp* app_b = DynThreadApp::find(dep.node_b());
  ASSERT_NE(app_b, nullptr);
  if (hook) {
    EXPECT_GT(app_b->worker_progress_, progress_before - 10)
        << "hooked: worker context was in the checkpoint";
  } else {
    // §3.1: without the IAT hook the dynamic thread is invisible to the
    // checkpointer; its state restarts from scratch on the backup.
    EXPECT_LT(app_b->worker_progress_, progress_before)
        << "unhooked: worker context missing from checkpoints";
  }
}

INSTANTIATE_TEST_SUITE_P(HookOnOff, IatHookSweep, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "hooked" : "unhooked";
                         });

TEST(FtimKind, ServerFtimNeverCheckpoints) {
  sim::Simulation sim(104);
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) {
    nt::NtRuntime::of(proc).memory().alloc("globals", 4096);
    FtimOptions fopts;
    fopts.kind = FtimKind::kOpcServer;
    fopts.checkpoint_period = sim::milliseconds(50);
    OFTTInitialize(proc, fopts);
  };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  EXPECT_EQ(sim.counter_value("oftt.checkpoints_sent"), 0u);
  Ftim* ftim = dep.ftim_on(dep.node_a());
  ASSERT_NE(ftim, nullptr);
  EXPECT_TRUE(ftim->active());
  // OFTTSave on a server FTIM succeeds but is also a no-op by kind.
  EXPECT_EQ(OFTTSave(*dep.node_a().find_process("app")), S_OK);
  EXPECT_EQ(sim.counter_value("oftt.checkpoints_sent"), 0u);
}

TEST(Role, GetMyRoleTracksTransitions) {
  sim::Simulation sim(105);
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) {
    nt::NtRuntime::of(proc).memory().alloc("globals", 64);
    OFTTInitialize(proc, {});
  };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  EXPECT_EQ(OFTTGetMyRole(*dep.node_a().find_process("app")), Role::kPrimary);
  EXPECT_EQ(OFTTGetMyRole(*dep.node_b().find_process("app")), Role::kBackup);
  Engine::find(dep.node_a())->request_switchover("test");
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(OFTTGetMyRole(*dep.node_a().find_process("app")), Role::kBackup);
  EXPECT_EQ(OFTTGetMyRole(*dep.node_b().find_process("app")), Role::kPrimary);
}

// The history container: a RingLog of call records inside the
// checkpointed region survives switchover with its contents ordered.
struct CallRecord {
  std::int64_t at;
  std::int32_t caller;
  std::int32_t line;
};

class HistoryApp {
 public:
  explicit HistoryApp(sim::Process& process) : timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("main", 0x1000);
    region_ = &rt.memory().alloc("history",
                                 nt::RingLog<CallRecord>::bytes_required(64) + 64);
    log_ = nt::RingLog<CallRecord>(region_, 0, 64);
    OFTTInitialize(process, {});
    Ftim::find(process)->on_activate([this, &process](bool) {
      timer_.start(sim::milliseconds(30), [this, &process] {
        // Re-attach after a restore (header travels in the region).
        log_ = nt::RingLog<CallRecord>(region_, 0, 64);
        std::int64_t n = static_cast<std::int64_t>(log_.total_appended());
        log_.append(CallRecord{process.sim().now(), static_cast<std::int32_t>(n % 10),
                               static_cast<std::int32_t>(n % 5)});
      });
    });
    Ftim::find(process)->on_deactivate([this] { timer_.stop(); });
  }

  nt::RingLog<CallRecord>& log() { return log_; }

  static HistoryApp* find(sim::Node& node) {
    auto proc = node.find_process("app");
    return proc && proc->alive() ? proc->find_attachment<HistoryApp>() : nullptr;
  }

 private:
  nt::Region* region_ = nullptr;
  nt::RingLog<CallRecord> log_;
  sim::PeriodicTimer timer_;
};

TEST(RingLogFailover, HistorySurvivesSwitchoverOrdered) {
  sim::Simulation sim(106);
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<HistoryApp>(proc); };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  std::uint64_t total_before = HistoryApp::find(dep.node_a())->log().total_appended();
  ASSERT_GT(total_before, 50u) << "ring has wrapped";

  dep.node_a().crash();
  sim.run_for(sim::seconds(3));
  HistoryApp* app_b = HistoryApp::find(dep.node_b());
  ASSERT_NE(app_b, nullptr);
  auto& log = app_b->log();
  EXPECT_GT(log.total_appended(), total_before);
  EXPECT_EQ(log.size(), 64u);
  // Records remain strictly ordered across the failover boundary.
  for (std::uint64_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log.at(i - 1).at, log.at(i).at);
  }
}

}  // namespace
}  // namespace oftt::core
