// End-to-end failover tests: the four failure classes of the paper's §4
// demonstration — (a) node failure, (b) NT crash, (c) application
// software failure, (d) OFTT middleware failure — against the Fig. 3
// deployment, with application state continuity through checkpoints.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "sim/simulation.h"
#include "support/counter_app.h"

namespace oftt {
namespace {

using core::PairDeployment;
using core::PairDeploymentOptions;
using core::Role;
using testsupport::CounterApp;

PairDeploymentOptions standard_options() {
  PairDeploymentOptions opts;
  opts.unit = "calltrack";
  opts.app_factory = [](sim::Process& proc) {
    CounterApp::Options app;
    app.ftim.checkpoint_period = sim::milliseconds(200);
    proc.attachment<CounterApp>(proc, app);
  };
  return opts;
}

class FailoverTest : public ::testing::Test {
 protected:
  sim::Simulation sim{42};
};

TEST_F(FailoverTest, PairFormsWithSinglePrimary) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(2));
  ASSERT_NE(dep.primary_node(), -1);
  ASSERT_NE(dep.backup_node(), -1);
  EXPECT_NE(dep.primary_node(), dep.backup_node());
  // Deterministic tie-break: the lower node id wins.
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
}

TEST_F(FailoverTest, OnlyPrimaryAppRuns) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  CounterApp* app_a = CounterApp::find(dep.node_a());
  CounterApp* app_b = CounterApp::find(dep.node_b());
  ASSERT_NE(app_a, nullptr);
  ASSERT_NE(app_b, nullptr);
  EXPECT_GT(app_a->count(), 0) << "primary application should execute";
  EXPECT_EQ(app_b->count(), 0) << "backup copy must stay passive";
}

TEST_F(FailoverTest, CheckpointsFlowToBackup) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  core::Ftim* backup_ftim = dep.ftim_on(dep.node_b());
  ASSERT_NE(backup_ftim, nullptr);
  EXPECT_GT(backup_ftim->checkpoints_received(), 5u);
  ASSERT_TRUE(backup_ftim->has_checkpoint());
  EXPECT_TRUE(backup_ftim->latest_checkpoint()->regions.count("globals"));
}

// Failure class (a): node power failure.
TEST_F(FailoverTest, NodeFailurePromotesBackupWithState) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  std::int64_t count_before = CounterApp::find(dep.node_a())->count();
  ASSERT_GT(count_before, 0);

  dep.node_a().crash();
  sim.run_for(sim::seconds(2));

  EXPECT_EQ(dep.primary_node(), dep.node_b().id());
  CounterApp* app_b = CounterApp::find(dep.node_b());
  ASSERT_NE(app_b, nullptr);
  // Restored from the latest checkpoint: at most one checkpoint period
  // (200 ms / 50 ms tick = 4 increments) of work may be lost.
  EXPECT_GE(app_b->count(), count_before - 5);
  std::int64_t after_promotion = app_b->count();
  sim.run_for(sim::seconds(1));
  EXPECT_GT(app_b->count(), after_promotion) << "new primary must make progress";
}

// Failure class (b): NT crash (blue screen), followed by auto-reboot;
// the rebooted node must rejoin as backup, not fight for primary.
TEST_F(FailoverTest, OsCrashFailsOverAndRebootedNodeRejoinsAsBackup) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  dep.node_a().os_crash(/*reboot_after=*/sim::seconds(5));
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(dep.primary_node(), dep.node_b().id());

  sim.run_for(sim::seconds(8));  // node A reboots and renegotiates
  EXPECT_TRUE(dep.node_a().up());
  EXPECT_EQ(dep.primary_node(), dep.node_b().id()) << "survivor keeps primary";
  EXPECT_EQ(dep.backup_node(), dep.node_a().id()) << "rebooted node joins as backup";
  // And checkpoints flow to the new backup again.
  sim.run_for(sim::seconds(2));
  core::Ftim* ftim_a = dep.ftim_on(dep.node_a());
  ASSERT_NE(ftim_a, nullptr);
  EXPECT_GT(ftim_a->checkpoints_received(), 0u);
}

// Failure class (c): application software failure -> local restart
// first (transient), switchover after the rule's restart budget.
TEST_F(FailoverTest, AppCrashIsFirstRestartedLocally) {
  auto opts = standard_options();
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());

  auto app_proc = dep.node_a().find_process("app");
  ASSERT_TRUE(app_proc);
  app_proc->kill("injected app fault");
  sim.run_for(sim::seconds(2));

  // Default rule allows one local restart: still primary on node A,
  // fresh app instance running.
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
  CounterApp* app_a = CounterApp::find(dep.node_a());
  ASSERT_NE(app_a, nullptr);
  sim.run_for(sim::seconds(1));
  EXPECT_GT(app_a->count(), 0);
  auto* engine = dep.engine_a();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->components().at("app").restarts, 1);
}

TEST_F(FailoverTest, RepeatedAppCrashesEscalateToSwitchover) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());

  // First crash: local restart. Second crash: permanent -> switchover.
  dep.node_a().find_process("app")->kill("fault 1");
  sim.run_for(sim::seconds(2));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());
  dep.node_a().find_process("app")->kill("fault 2");
  sim.run_for(sim::seconds(2));

  EXPECT_EQ(dep.primary_node(), dep.node_b().id());
  CounterApp* app_b = CounterApp::find(dep.node_b());
  ASSERT_NE(app_b, nullptr);
  sim.run_for(sim::seconds(1));
  EXPECT_GT(app_b->count(), 0);
  // Node A's app is restarted as the (passive) backup copy.
  EXPECT_EQ(dep.backup_node(), dep.node_a().id());
}

// Failure class (d): OFTT middleware (engine) failure. The application
// side restarts the engine; the peer may take over meanwhile, and the
// restarted engine must rejoin without creating dual primaries.
TEST_F(FailoverTest, EngineFailureIsRecovered) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());

  dep.node_a().find_process("oftt_engine")->kill("injected middleware fault");
  sim.run_for(sim::seconds(4));

  // Exactly one primary afterwards.
  int primaries = 0;
  if (dep.engine_a() && dep.engine_a()->role() == Role::kPrimary) ++primaries;
  if (dep.engine_b() && dep.engine_b()->role() == Role::kPrimary) ++primaries;
  EXPECT_EQ(primaries, 1);
  // The engine was restarted by the FTIM.
  ASSERT_NE(dep.engine_a(), nullptr);
  EXPECT_GT(sim.counter_value("oftt.engine_restarts"), 0u);
  // The unit still makes progress.
  int primary = dep.primary_node();
  ASSERT_NE(primary, -1);
  CounterApp* app = CounterApp::find(*dep.node_by_id(primary));
  ASSERT_NE(app, nullptr);
  std::int64_t before = app->count();
  sim.run_for(sim::seconds(1));
  EXPECT_GT(app->count(), before);
}

TEST_F(FailoverTest, DistressTriggersSwitchover) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());

  auto app_proc = dep.node_a().find_process("app");
  core::OFTTDistress(*app_proc, "sensor bus parity errors");
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(dep.primary_node(), dep.node_b().id());
}

TEST_F(FailoverTest, MonitorObservesRoleTransitions) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  auto* monitor = dep.monitor();
  ASSERT_NE(monitor, nullptr);
  EXPECT_EQ(monitor->primary_of("calltrack"), dep.node_a().id());

  dep.node_a().crash();
  sim.run_for(sim::seconds(3));
  EXPECT_EQ(monitor->primary_of("calltrack"), dep.node_b().id());
  EXPECT_TRUE(monitor->node_silent("calltrack", dep.node_a().id(), sim::seconds(2)));
  EXPECT_FALSE(monitor->render().empty());
}

TEST_F(FailoverTest, BackupFailureKeepsPrimaryServing) {
  PairDeployment dep(sim, standard_options());
  sim.run_for(sim::seconds(3));
  dep.node_b().crash();
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
  CounterApp* app_a = CounterApp::find(dep.node_a());
  std::int64_t before = app_a->count();
  sim.run_for(sim::seconds(1));
  EXPECT_GT(app_a->count(), before);
  ASSERT_NE(dep.engine_a(), nullptr);
  EXPECT_FALSE(dep.engine_a()->peer_visible());
}

}  // namespace
}  // namespace oftt
