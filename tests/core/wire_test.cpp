// Wire-format tests: every OFTT control message round-trips, kind
// confusion is rejected, and truncated frames decode to failure rather
// than garbage (half-dead peers send half messages).
#include <gtest/gtest.h>

#include "core/wire.h"
#include "msmq/message.h"
#include "transport/session.h"

namespace oftt::core {
namespace {

TEST(Wire, ProbeRoundTrip) {
  Probe p;
  p.node = 3;
  p.boot_count = 2;
  p.incarnation = 9;
  p.role = Role::kNegotiating;
  Probe out;
  ASSERT_TRUE(Probe::decode(p.encode(false), out, false));
  EXPECT_EQ(out.node, 3);
  EXPECT_EQ(out.boot_count, 2);
  EXPECT_EQ(out.incarnation, 9u);
  EXPECT_EQ(out.role, Role::kNegotiating);
  // Probe and reply are distinct kinds.
  EXPECT_FALSE(Probe::decode(p.encode(false), out, true));
  ASSERT_TRUE(Probe::decode(p.encode(true), out, true));
}

TEST(Wire, PeerHeartbeatRoundTrip) {
  PeerHeartbeat hb;
  hb.node = 1;
  hb.role = Role::kPrimary;
  hb.incarnation = 4;
  hb.seq = 777;
  PeerHeartbeat out;
  ASSERT_TRUE(PeerHeartbeat::decode(hb.encode(), out));
  EXPECT_EQ(out.seq, 777u);
  EXPECT_EQ(out.role, Role::kPrimary);
}

TEST(Wire, TakeoverRoundTrip) {
  Takeover t;
  t.from_node = 0;
  t.incarnation = 12;
  t.reason = "component 'app' permanent failure";
  Takeover out;
  ASSERT_TRUE(Takeover::decode(t.encode(), out));
  EXPECT_EQ(out.reason, t.reason);
  EXPECT_EQ(out.incarnation, 12u);
}

TEST(Wire, FtRegisterRoundTripWithLiveState) {
  FtRegister reg;
  reg.component = "calltrack";
  reg.process_name = "calltrack_proc";
  reg.ftim_port = "oftt.ftim.calltrack_proc";
  reg.kind = FtimKind::kOpcServer;
  reg.max_local_restarts = 2;
  reg.switchover_on_permanent = 0;
  reg.currently_active = true;
  reg.incarnation = 5;
  FtRegister out;
  ASSERT_TRUE(FtRegister::decode(reg.encode(), out));
  EXPECT_EQ(out.component, "calltrack");
  EXPECT_EQ(out.kind, FtimKind::kOpcServer);
  EXPECT_EQ(out.max_local_restarts, 2);
  EXPECT_EQ(out.switchover_on_permanent, 0);
  EXPECT_TRUE(out.currently_active);
  EXPECT_EQ(out.incarnation, 5u);
}

TEST(Wire, HeartbeatAndDistressRoundTrip) {
  FtHeartbeat hb;
  hb.component = "c";
  hb.seq = 1;
  FtHeartbeat hout;
  ASSERT_TRUE(FtHeartbeat::decode(hb.encode(), hout));
  EXPECT_EQ(hout.component, "c");

  FtDistress d;
  d.component = "c";
  d.reason = "sensor bus";
  FtDistress dout;
  ASSERT_TRUE(FtDistress::decode(d.encode(), dout));
  EXPECT_EQ(dout.reason, "sensor bus");
}

TEST(Wire, WatchdogOpsPreserveKind) {
  for (MsgKind op :
       {MsgKind::kWatchdogCreate, MsgKind::kWatchdogReset, MsgKind::kWatchdogDelete}) {
    WatchdogMsg wd;
    wd.op = op;
    wd.component = "app";
    wd.watchdog = "loop";
    wd.timeout = sim::milliseconds(300);
    WatchdogMsg out;
    ASSERT_TRUE(WatchdogMsg::decode(wd.encode(), out));
    EXPECT_EQ(out.op, op);
    EXPECT_EQ(out.timeout, sim::milliseconds(300));
  }
  WatchdogMsg out;
  EXPECT_FALSE(WatchdogMsg::decode(FtHeartbeat{}.encode(), out));
}

TEST(Wire, SetRuleRoundTrip) {
  SetRule rule;
  rule.component = "app";
  rule.max_local_restarts = 7;
  rule.switchover_on_permanent = 0;
  SetRule out;
  ASSERT_TRUE(SetRule::decode(rule.encode(), out));
  EXPECT_EQ(out.max_local_restarts, 7);
  EXPECT_EQ(out.switchover_on_permanent, 0);
}

TEST(Wire, StatusReportRoundTripManyComponents) {
  StatusReport sr;
  sr.unit = "calltrack";
  sr.node = 1;
  sr.role = Role::kBackup;
  sr.incarnation = 3;
  sr.peer_visible = true;
  for (int i = 0; i < 20; ++i) {
    sr.components.push_back(ComponentStatus{"comp" + std::to_string(i),
                                            ComponentState::kRestarting, i,
                                            static_cast<std::uint64_t>(i) * 100});
  }
  StatusReport out;
  ASSERT_TRUE(StatusReport::decode(sr.encode(), out));
  ASSERT_EQ(out.components.size(), 20u);
  EXPECT_EQ(out.components[7].restarts, 7);
  EXPECT_EQ(out.components[7].state, ComponentState::kRestarting);
}

TEST(Wire, RoleAnnounceAndSubscribeRoundTrip) {
  RoleAnnounce ra;
  ra.unit = "u";
  ra.node = 2;
  ra.role = Role::kPrimary;
  ra.incarnation = 8;
  RoleAnnounce raout;
  ASSERT_TRUE(RoleAnnounce::decode(ra.encode(), raout));
  EXPECT_EQ(raout.incarnation, 8u);

  SubscribeRoles sub;
  sub.subscriber_node = 2;
  sub.subscriber_port = "oftt.divert.telsim";
  SubscribeRoles sout;
  ASSERT_TRUE(SubscribeRoles::decode(sub.encode(), sout));
  EXPECT_EQ(sout.subscriber_port, "oftt.divert.telsim");
}

TEST(Wire, CheckpointFrameRoundTrip) {
  Buffer image{9, 8, 7, 6};
  Buffer frame = encode_checkpoint("calltrack", image);
  std::string component;
  Buffer out;
  ASSERT_TRUE(decode_checkpoint(frame, component, out));
  EXPECT_EQ(component, "calltrack");
  EXPECT_EQ(out, image);
}

TEST(Wire, CheckpointNackRoundTrip) {
  Buffer frame = encode_checkpoint_nack("calltrack", 41);
  std::string component;
  std::uint64_t have_seq = 0;
  ASSERT_TRUE(decode_checkpoint_nack(frame, component, have_seq));
  EXPECT_EQ(component, "calltrack");
  EXPECT_EQ(have_seq, 41u);
}

TEST(Wire, CheckpointNackRejectsTruncationAndTrailingGarbage) {
  Buffer frame = encode_checkpoint_nack("c", 7);
  std::string component;
  std::uint64_t have_seq = 0;
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Buffer t(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_checkpoint_nack(t, component, have_seq)) << "cut at " << cut;
  }
  Buffer padded = frame;
  padded.push_back(0xEE);
  EXPECT_FALSE(decode_checkpoint_nack(padded, component, have_seq));
}

// A declared element count far past the remaining bytes must fail the
// count guard, not attempt a giant allocation. The count sits right
// after the fixed header fields, so stomp the 4 bytes preceding the
// first element and feed the result back through decode.
TEST(Wire, StatusReportCountGuardRejectsBogusCounts) {
  StatusReport sr;
  sr.unit = "u";
  sr.node = 1;
  Buffer b = sr.encode();  // zero components: count is the last 4 bytes
  ASSERT_GE(b.size(), 4u);
  for (std::size_t i = b.size() - 4; i < b.size(); ++i) b[i] = 0xFF;
  StatusReport out;
  EXPECT_FALSE(StatusReport::decode(b, out));
}

// Deterministic fuzz: random byte soup must never decode successfully
// into any frame type (the leading kind byte alone filters most, the
// fail-closed reader catches the rest) — and must never crash or
// allocate absurdly. Seeded LCG keeps the test reproducible.
TEST(Wire, FuzzGarbageFramesNeverDecode) {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint8_t>(s >> 56);
  };
  for (int trial = 0; trial < 2000; ++trial) {
    Buffer junk(static_cast<std::size_t>(next()) % 64);
    for (auto& byte : junk) byte = next();
    // Force the correct kind byte half the time so decoding exercises
    // the body parsers, not just the kind check.
    StatusReport sr;
    Probe p;
    Takeover t;
    std::string c;
    Buffer img;
    std::uint64_t seq = 0;
    if (!junk.empty() && trial % 2 == 0) {
      junk[0] = static_cast<std::uint8_t>(MsgKind::kStatusReport);
    }
    StatusReport::decode(junk, sr);  // must not crash / huge-alloc
    Probe::decode(junk, p, false);
    Takeover::decode(junk, t);
    decode_checkpoint(junk, c, img);
    decode_checkpoint_nack(junk, c, seq);
    EXPECT_LT(sr.components.size(), 4096u);
    EXPECT_LT(img.size(), 4096u);
  }
}

TEST(Wire, TruncatedFramesRejected) {
  StatusReport sr;
  sr.unit = "u";
  sr.components.push_back(ComponentStatus{"c", ComponentState::kUp, 0, 0});
  Buffer b = sr.encode();
  for (std::size_t cut : {std::size_t{1}, b.size() / 2, b.size() - 1}) {
    Buffer t(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(cut));
    StatusReport out;
    EXPECT_FALSE(StatusReport::decode(t, out)) << "cut at " << cut;
  }
}

TEST(Wire, KindConfusionRejectedAcrossAllTypes) {
  Buffer hb = PeerHeartbeat{}.encode();
  Probe p;
  Takeover t;
  FtRegister reg;
  StatusReport sr;
  RoleAnnounce ra;
  SetRule rule;
  EXPECT_FALSE(Probe::decode(hb, p, false));
  EXPECT_FALSE(Takeover::decode(hb, t));
  EXPECT_FALSE(FtRegister::decode(hb, reg));
  EXPECT_FALSE(StatusReport::decode(hb, sr));
  EXPECT_FALSE(RoleAnnounce::decode(hb, ra));
  EXPECT_FALSE(SetRule::decode(hb, rule));
}

// The transport session layer multiplexes onto the same ports as the
// control-plane frames, discriminated only by the leading byte. Pin
// that its frame kinds stay clear of every MsgKind and MqPacket value
// so `Endpoint::handle` can safely claim frames by first byte.
TEST(Wire, TransportFrameKindsCollideWithNothing) {
  const std::uint8_t transport_kinds[] = {transport::kDataFrame, transport::kAckFrame};
  for (std::uint8_t k : transport_kinds) {
    EXPECT_GT(k, static_cast<std::uint8_t>(MsgKind::kPromoteAck)) << int(k);
    EXPECT_GT(k, static_cast<std::uint8_t>(msmq::MqPacket::kXferAck)) << int(k);
  }
  Buffer fake{transport::kDataFrame};
  EXPECT_TRUE(transport::is_transport_frame(fake));
  Buffer real = PeerHeartbeat{}.encode();
  EXPECT_FALSE(transport::is_transport_frame(real));
}

TEST(Wire, EmptyBufferRejectedEverywhere) {
  Buffer empty;
  PeerHeartbeat hb;
  EXPECT_FALSE(PeerHeartbeat::decode(empty, hb));
  std::string c;
  Buffer img;
  EXPECT_FALSE(decode_checkpoint(empty, c, img));
  EXPECT_EQ(wire_kind(empty), 0);
}

}  // namespace
}  // namespace oftt::core
