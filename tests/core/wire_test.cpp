// Wire-format tests: every OFTT control message round-trips, kind
// confusion is rejected, and truncated frames decode to failure rather
// than garbage (half-dead peers send half messages).
#include <gtest/gtest.h>

#include "core/wire.h"

namespace oftt::core {
namespace {

TEST(Wire, ProbeRoundTrip) {
  Probe p;
  p.node = 3;
  p.boot_count = 2;
  p.incarnation = 9;
  p.role = Role::kNegotiating;
  Probe out;
  ASSERT_TRUE(Probe::decode(p.encode(false), out, false));
  EXPECT_EQ(out.node, 3);
  EXPECT_EQ(out.boot_count, 2);
  EXPECT_EQ(out.incarnation, 9u);
  EXPECT_EQ(out.role, Role::kNegotiating);
  // Probe and reply are distinct kinds.
  EXPECT_FALSE(Probe::decode(p.encode(false), out, true));
  ASSERT_TRUE(Probe::decode(p.encode(true), out, true));
}

TEST(Wire, PeerHeartbeatRoundTrip) {
  PeerHeartbeat hb;
  hb.node = 1;
  hb.role = Role::kPrimary;
  hb.incarnation = 4;
  hb.seq = 777;
  PeerHeartbeat out;
  ASSERT_TRUE(PeerHeartbeat::decode(hb.encode(), out));
  EXPECT_EQ(out.seq, 777u);
  EXPECT_EQ(out.role, Role::kPrimary);
}

TEST(Wire, TakeoverRoundTrip) {
  Takeover t;
  t.from_node = 0;
  t.incarnation = 12;
  t.reason = "component 'app' permanent failure";
  Takeover out;
  ASSERT_TRUE(Takeover::decode(t.encode(), out));
  EXPECT_EQ(out.reason, t.reason);
  EXPECT_EQ(out.incarnation, 12u);
}

TEST(Wire, FtRegisterRoundTripWithLiveState) {
  FtRegister reg;
  reg.component = "calltrack";
  reg.process_name = "calltrack_proc";
  reg.ftim_port = "oftt.ftim.calltrack_proc";
  reg.kind = FtimKind::kOpcServer;
  reg.max_local_restarts = 2;
  reg.switchover_on_permanent = 0;
  reg.currently_active = true;
  reg.incarnation = 5;
  FtRegister out;
  ASSERT_TRUE(FtRegister::decode(reg.encode(), out));
  EXPECT_EQ(out.component, "calltrack");
  EXPECT_EQ(out.kind, FtimKind::kOpcServer);
  EXPECT_EQ(out.max_local_restarts, 2);
  EXPECT_EQ(out.switchover_on_permanent, 0);
  EXPECT_TRUE(out.currently_active);
  EXPECT_EQ(out.incarnation, 5u);
}

TEST(Wire, HeartbeatAndDistressRoundTrip) {
  FtHeartbeat hb;
  hb.component = "c";
  hb.seq = 1;
  FtHeartbeat hout;
  ASSERT_TRUE(FtHeartbeat::decode(hb.encode(), hout));
  EXPECT_EQ(hout.component, "c");

  FtDistress d;
  d.component = "c";
  d.reason = "sensor bus";
  FtDistress dout;
  ASSERT_TRUE(FtDistress::decode(d.encode(), dout));
  EXPECT_EQ(dout.reason, "sensor bus");
}

TEST(Wire, WatchdogOpsPreserveKind) {
  for (MsgKind op :
       {MsgKind::kWatchdogCreate, MsgKind::kWatchdogReset, MsgKind::kWatchdogDelete}) {
    WatchdogMsg wd;
    wd.op = op;
    wd.component = "app";
    wd.watchdog = "loop";
    wd.timeout = sim::milliseconds(300);
    WatchdogMsg out;
    ASSERT_TRUE(WatchdogMsg::decode(wd.encode(), out));
    EXPECT_EQ(out.op, op);
    EXPECT_EQ(out.timeout, sim::milliseconds(300));
  }
  WatchdogMsg out;
  EXPECT_FALSE(WatchdogMsg::decode(FtHeartbeat{}.encode(), out));
}

TEST(Wire, SetRuleRoundTrip) {
  SetRule rule;
  rule.component = "app";
  rule.max_local_restarts = 7;
  rule.switchover_on_permanent = 0;
  SetRule out;
  ASSERT_TRUE(SetRule::decode(rule.encode(), out));
  EXPECT_EQ(out.max_local_restarts, 7);
  EXPECT_EQ(out.switchover_on_permanent, 0);
}

TEST(Wire, StatusReportRoundTripManyComponents) {
  StatusReport sr;
  sr.unit = "calltrack";
  sr.node = 1;
  sr.role = Role::kBackup;
  sr.incarnation = 3;
  sr.peer_visible = true;
  for (int i = 0; i < 20; ++i) {
    sr.components.push_back(ComponentStatus{"comp" + std::to_string(i),
                                            ComponentState::kRestarting, i,
                                            static_cast<std::uint64_t>(i) * 100});
  }
  StatusReport out;
  ASSERT_TRUE(StatusReport::decode(sr.encode(), out));
  ASSERT_EQ(out.components.size(), 20u);
  EXPECT_EQ(out.components[7].restarts, 7);
  EXPECT_EQ(out.components[7].state, ComponentState::kRestarting);
}

TEST(Wire, RoleAnnounceAndSubscribeRoundTrip) {
  RoleAnnounce ra;
  ra.unit = "u";
  ra.node = 2;
  ra.role = Role::kPrimary;
  ra.incarnation = 8;
  RoleAnnounce raout;
  ASSERT_TRUE(RoleAnnounce::decode(ra.encode(), raout));
  EXPECT_EQ(raout.incarnation, 8u);

  SubscribeRoles sub;
  sub.subscriber_node = 2;
  sub.subscriber_port = "oftt.divert.telsim";
  SubscribeRoles sout;
  ASSERT_TRUE(SubscribeRoles::decode(sub.encode(), sout));
  EXPECT_EQ(sout.subscriber_port, "oftt.divert.telsim");
}

TEST(Wire, CheckpointFrameRoundTrip) {
  Buffer image{9, 8, 7, 6};
  Buffer frame = encode_checkpoint("calltrack", image);
  std::string component;
  Buffer out;
  ASSERT_TRUE(decode_checkpoint(frame, component, out));
  EXPECT_EQ(component, "calltrack");
  EXPECT_EQ(out, image);
}

TEST(Wire, CheckpointBatchRoundTripPreservesOrder) {
  std::vector<Buffer> images{{1, 2, 3}, {}, {4}, Buffer(300, 0xAB)};
  Buffer frame = encode_checkpoint_batch("calltrack", images);
  std::string component;
  std::vector<Buffer> out;
  ASSERT_TRUE(decode_checkpoint_batch(frame, component, out));
  EXPECT_EQ(component, "calltrack");
  EXPECT_EQ(out, images);
}

TEST(Wire, CheckpointBatchRejectsTruncationAndBogusCounts) {
  Buffer frame = encode_checkpoint_batch("c", {{1, 2}, {3, 4, 5}});
  std::string component;
  std::vector<Buffer> out;
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Buffer t(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_checkpoint_batch(t, component, out)) << "cut at " << cut;
  }
  // A declared count far past the remaining bytes must fail the count
  // guard, not attempt a giant allocation. Count sits right after the
  // kind byte + component string.
  Buffer bogus = encode_checkpoint_batch("c", {});
  ASSERT_GE(bogus.size(), 4u);
  for (std::size_t i = bogus.size() - 4; i < bogus.size(); ++i) bogus[i] = 0xFF;
  EXPECT_FALSE(decode_checkpoint_batch(bogus, component, out));
}

TEST(Wire, TruncatedFramesRejected) {
  StatusReport sr;
  sr.unit = "u";
  sr.components.push_back(ComponentStatus{"c", ComponentState::kUp, 0, 0});
  Buffer b = sr.encode();
  for (std::size_t cut : {std::size_t{1}, b.size() / 2, b.size() - 1}) {
    Buffer t(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(cut));
    StatusReport out;
    EXPECT_FALSE(StatusReport::decode(t, out)) << "cut at " << cut;
  }
}

TEST(Wire, KindConfusionRejectedAcrossAllTypes) {
  Buffer hb = PeerHeartbeat{}.encode();
  Probe p;
  Takeover t;
  FtRegister reg;
  StatusReport sr;
  RoleAnnounce ra;
  SetRule rule;
  EXPECT_FALSE(Probe::decode(hb, p, false));
  EXPECT_FALSE(Takeover::decode(hb, t));
  EXPECT_FALSE(FtRegister::decode(hb, reg));
  EXPECT_FALSE(StatusReport::decode(hb, sr));
  EXPECT_FALSE(RoleAnnounce::decode(hb, ra));
  EXPECT_FALSE(SetRule::decode(hb, rule));
}

TEST(Wire, EmptyBufferRejectedEverywhere) {
  Buffer empty;
  PeerHeartbeat hb;
  EXPECT_FALSE(PeerHeartbeat::decode(empty, hb));
  std::string c;
  Buffer img;
  EXPECT_FALSE(decode_checkpoint(empty, c, img));
  EXPECT_EQ(wire_kind(empty), 0);
}

}  // namespace
}  // namespace oftt::core
