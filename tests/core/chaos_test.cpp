// Long-haul chaos scenario: minutes of simulated time under a scripted
// fault storm, asserting the system's global invariants at every
// checkpoint: eventually exactly one primary, application progress
// resumes, and no unbounded restart loops. Also covers the
// AvailabilityTracker and the bandwidth model.
#include <gtest/gtest.h>

#include "core/availability.h"
#include "core/deployment.h"
#include "sim/fault_plan.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

TEST(Chaos, SurvivesScriptedFaultStormWithInvariantsIntact) {
  sim::Simulation sim(121);
  PairDeploymentOptions opts;
  opts.dual_network = true;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  PairDeployment dep(sim, opts);
  int a = dep.node_a().id(), b = dep.node_b().id();

  sim::FaultPlan plan(sim);
  plan.kill_process(sim::seconds(10), a, "app")
      .os_crash(sim::seconds(25), a, sim::seconds(15))
      .hang_strand(sim::seconds(60), b, "app", "main")
      .kill_process(sim::seconds(80), b, "oftt_engine")
      .crash_node(sim::seconds(100), b)
      .boot_node(sim::seconds(130), b)
      .flap_link(sim::seconds(150), 0, a, b, sim::seconds(2), 3)
      .partition(sim::seconds(170), 1, {{a}, {b}})
      .heal(sim::seconds(180), 1)
      .kill_process(sim::seconds(200), a, "msmq")
      .os_crash(sim::seconds(220), a, sim::seconds(20));
  plan.arm();

  // Check invariants at quiet points between faults.
  std::int64_t last_progress_count = 0;
  for (sim::SimTime checkpoint :
       {sim::seconds(55), sim::seconds(95), sim::seconds(145), sim::seconds(195),
        sim::seconds(260)}) {
    sim.run_until(checkpoint);
    int primaries = 0;
    if (dep.engine_a() && dep.engine_a()->role() == Role::kPrimary) ++primaries;
    if (dep.engine_b() && dep.engine_b()->role() == Role::kPrimary) ++primaries;
    EXPECT_EQ(primaries, 1) << "at t=" << sim::to_seconds(checkpoint);

    int primary = dep.primary_node();
    ASSERT_NE(primary, -1);
    CounterApp* app = CounterApp::find(*dep.node_by_id(primary));
    ASSERT_NE(app, nullptr) << "at t=" << sim::to_seconds(checkpoint);
    std::int64_t now_count = app->count();
    EXPECT_GT(now_count, last_progress_count)
        << "progress stalled by t=" << sim::to_seconds(checkpoint);
    last_progress_count = now_count;
  }
  EXPECT_EQ(plan.journal().size(), plan.size()) << "every fault actually injected";
  // Bounded recovery machinery: restarts happened but did not run away.
  EXPECT_LT(sim.counter_value("oftt.local_restarts"), 40u);
}

TEST(Availability, TracksUptimeDowntimeAndEpisodes) {
  sim::Simulation sim(122);
  sim::Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("probe", nullptr);
  bool serving = true;
  AvailabilityTracker tracker(proc->main_strand(), [&] { return serving; },
                              sim::milliseconds(10));
  sim.run_for(sim::seconds(1));
  serving = false;
  sim.run_for(sim::milliseconds(500));
  serving = true;
  sim.run_for(sim::milliseconds(500));
  serving = false;
  sim.run_for(sim::milliseconds(200));
  serving = true;
  sim.run_for(sim::milliseconds(300));

  EXPECT_EQ(tracker.outages(), 2);
  EXPECT_NEAR(tracker.availability(), 1.8 / 2.5, 0.02);
  EXPECT_NEAR(sim::to_seconds(tracker.longest_outage()), 0.5, 0.05);
  tracker.stop();
}

TEST(Bandwidth, LargePayloadsPaySerializationDelay) {
  sim::Simulation sim(123);
  sim::Node& a = sim.add_node("a");
  sim::Node& b = sim.add_node("b");
  auto& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  net.set_latency(sim::milliseconds(1), sim::milliseconds(1));
  net.set_bandwidth(1.25e6);  // 10BASE-T
  a.boot();
  b.boot();
  auto pa = a.start_process("p", nullptr);
  sim::SimTime small_arrival = -1, big_arrival = -1;
  auto pb = b.start_process("p", nullptr);
  pb->bind("small", [&](const sim::Datagram&) { small_arrival = sim.now(); });
  pb->bind("big", [&](const sim::Datagram&) { big_arrival = sim.now(); });

  pa->send(0, b.id(), "small", Buffer(100, 0));
  pa->send(0, b.id(), "big", Buffer(1 << 20, 0));  // 1 MiB ~ 839 ms at 10 Mbit
  sim.run();
  ASSERT_GE(small_arrival, 0);
  ASSERT_GE(big_arrival, 0);
  EXPECT_LT(small_arrival, sim::milliseconds(2));
  EXPECT_GT(big_arrival, sim::milliseconds(800));
  EXPECT_LT(big_arrival, sim::milliseconds(900));
}

TEST(Bandwidth, FullCheckpointsLagOnSlowWireSelectiveDoNot) {
  // The E1 tradeoff at the system level: on a 10 Mbit LAN, a 1 MiB full
  // checkpoint takes ~0.8 s to ship; selective images stay sub-ms.
  for (bool selective : {false, true}) {
    sim::Simulation sim(selective ? 124 : 125);
    PairDeploymentOptions opts;
    opts.app_factory = [selective](sim::Process& proc) {
      CounterApp::Options app;
      app.state_bytes = 1 << 20;
      app.ftim.checkpoint_period = sim::milliseconds(400);
      if (selective) {
        app.ftim.checkpoint_mode = CheckpointMode::kSelective;
      }
      auto& capp = proc.attachment<CounterApp>(proc, app);
      if (selective) {
        OFTTSelSave(proc, capp.counter_cell());
      }
    };
    PairDeployment dep(sim, opts);
    sim.network(0).set_bandwidth(1.25e6);
    sim.run_for(sim::seconds(5));
    Ftim* backup = dep.ftim_on(dep.node_b());
    ASSERT_NE(backup, nullptr);
    if (selective) {
      EXPECT_GT(backup->checkpoints_received(), 5u);
    } else {
      // Full images still arrive, just slowly (and they serialize the
      // segment); at 400 ms period and ~840 ms transfer they queue up.
      EXPECT_GT(backup->checkpoints_received(), 0u);
    }
  }
}

}  // namespace
}  // namespace oftt::core
