// PairDeployment construction variants and SystemMonitor rendering.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

TEST(Deployment, MinimalEngineOnlyPairForms) {
  sim::Simulation sim(131);
  PairDeploymentOptions opts;
  opts.app_factory = nullptr;  // engines only
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  EXPECT_NE(dep.primary_node(), -1);
  EXPECT_NE(dep.backup_node(), -1);
  EXPECT_EQ(dep.ftim_on(dep.node_a()), nullptr);
}

TEST(Deployment, WithoutMonitorNothingIsReported) {
  sim::Simulation sim(132);
  PairDeploymentOptions opts;
  opts.with_monitor = false;
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  EXPECT_EQ(dep.monitor(), nullptr);
  EXPECT_NE(dep.primary_node(), -1) << "fault tolerance works without the monitor (paper)";
}

TEST(Deployment, WithoutMsmqAndScmStillFailsOver) {
  sim::Simulation sim(133);
  PairDeploymentOptions opts;
  opts.with_msmq = false;
  opts.with_scm = false;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  dep.node_a().crash();
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(dep.primary_node(), dep.node_b().id());
}

TEST(Deployment, NodeByIdResolvesAllThree) {
  sim::Simulation sim(134);
  PairDeployment dep(sim, PairDeploymentOptions{});
  EXPECT_EQ(dep.node_by_id(dep.node_a().id()), &dep.node_a());
  EXPECT_EQ(dep.node_by_id(dep.node_b().id()), &dep.node_b());
  EXPECT_EQ(dep.node_by_id(dep.monitor_node().id()), &dep.monitor_node());
  EXPECT_EQ(dep.node_by_id(99), nullptr);
}

TEST(Deployment, CustomUnitAndProcessNamesPropagate) {
  sim::Simulation sim(135);
  PairDeploymentOptions opts;
  opts.unit = "boiler7";
  opts.app_process = "boiler_hmi";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  ASSERT_NE(dep.engine_a(), nullptr);
  EXPECT_EQ(dep.engine_a()->unit(), "boiler7");
  EXPECT_TRUE(dep.node_a().find_process("boiler_hmi"));
  EXPECT_EQ(dep.engine_a()->components().count("boiler_hmi"), 1u);
  ASSERT_NE(dep.monitor(), nullptr);
  EXPECT_EQ(dep.monitor()->primary_of("boiler7"), dep.node_a().id());
}

TEST(MonitorRender, ShowsRolesComponentsAndSilence) {
  sim::Simulation sim(136);
  PairDeploymentOptions opts;
  opts.unit = "renderme";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  std::string board = dep.monitor()->render();
  EXPECT_NE(board.find("renderme"), std::string::npos);
  EXPECT_NE(board.find("PRIMARY"), std::string::npos);
  EXPECT_NE(board.find("BACKUP"), std::string::npos);
  EXPECT_NE(board.find("app"), std::string::npos);
  EXPECT_EQ(board.find("SILENT"), std::string::npos);

  dep.node_a().crash();
  sim.run_for(sim::seconds(5));
  board = dep.monitor()->render();
  EXPECT_NE(board.find("SILENT"), std::string::npos) << "dead node flagged";
}

TEST(Deployment, StaggeredBootViaOptionsFormsPair) {
  sim::Simulation sim(137);
  PairDeploymentOptions opts;
  opts.node_b_boot_delay = sim::seconds(1);
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
  EXPECT_EQ(dep.backup_node(), dep.node_b().id());
}

// Nonsensical timing/loss configs must be rejected at construction with
// a clear message, not simulated into confusing misbehaviour.
TEST(DeploymentValidation, RejectsNonsensicalOptions) {
  sim::Simulation sim(137);
  {
    PairDeploymentOptions opts;
    opts.engine.heartbeat_period = 0;  // would spin at scheduler resolution
    EXPECT_THROW(PairDeployment(sim, opts), std::invalid_argument);
  }
  {
    PairDeploymentOptions opts;
    opts.engine.heartbeat_period = sim::milliseconds(100);
    opts.engine.peer_timeout = sim::milliseconds(50);  // expires between heartbeats
    EXPECT_THROW(PairDeployment(sim, opts), std::invalid_argument);
  }
  {
    PairDeploymentOptions opts;
    opts.engine.component_timeout = -1;
    EXPECT_THROW(PairDeployment(sim, opts), std::invalid_argument);
  }
  {
    PairDeploymentOptions opts;
    opts.net_loss = 1.5;
    EXPECT_THROW(PairDeployment(sim, opts), std::invalid_argument);
  }
  {
    PairDeploymentOptions opts;
    opts.node_b_boot_delay = -sim::seconds(1);
    EXPECT_THROW(PairDeployment(sim, opts), std::invalid_argument);
  }
}

TEST(DeploymentValidation, ErrorMessagesNameTheOffendingKnob) {
  sim::Simulation sim(138);
  PairDeploymentOptions opts;
  opts.engine.heartbeat_period = sim::milliseconds(100);
  opts.engine.peer_timeout = sim::milliseconds(10);
  try {
    PairDeployment dep(sim, opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("peer_timeout"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("heartbeat_period"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace oftt::core
