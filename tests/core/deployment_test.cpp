// PairDeployment construction variants and SystemMonitor rendering.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

TEST(Deployment, MinimalEngineOnlyPairForms) {
  sim::Simulation sim(131);
  PairDeploymentOptions opts;
  opts.app_factory = nullptr;  // engines only
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  EXPECT_NE(dep.primary_node(), -1);
  EXPECT_NE(dep.backup_node(), -1);
  EXPECT_EQ(dep.ftim_on(dep.node_a()), nullptr);
}

TEST(Deployment, WithoutMonitorNothingIsReported) {
  sim::Simulation sim(132);
  PairDeploymentOptions opts;
  opts.with_monitor = false;
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  EXPECT_EQ(dep.monitor(), nullptr);
  EXPECT_NE(dep.primary_node(), -1) << "fault tolerance works without the monitor (paper)";
}

TEST(Deployment, WithoutMsmqAndScmStillFailsOver) {
  sim::Simulation sim(133);
  PairDeploymentOptions opts;
  opts.with_msmq = false;
  opts.with_scm = false;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  dep.node_a().crash();
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(dep.primary_node(), dep.node_b().id());
}

TEST(Deployment, NodeByIdResolvesAllThree) {
  sim::Simulation sim(134);
  PairDeployment dep(sim, PairDeploymentOptions{});
  EXPECT_EQ(dep.node_by_id(dep.node_a().id()), &dep.node_a());
  EXPECT_EQ(dep.node_by_id(dep.node_b().id()), &dep.node_b());
  EXPECT_EQ(dep.node_by_id(dep.monitor_node().id()), &dep.monitor_node());
  EXPECT_EQ(dep.node_by_id(99), nullptr);
}

TEST(Deployment, CustomUnitAndProcessNamesPropagate) {
  sim::Simulation sim(135);
  PairDeploymentOptions opts;
  opts.unit = "boiler7";
  opts.app_process = "boiler_hmi";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  ASSERT_NE(dep.engine_a(), nullptr);
  EXPECT_EQ(dep.engine_a()->unit(), "boiler7");
  EXPECT_TRUE(dep.node_a().find_process("boiler_hmi"));
  EXPECT_EQ(dep.engine_a()->components().count("boiler_hmi"), 1u);
  ASSERT_NE(dep.monitor(), nullptr);
  EXPECT_EQ(dep.monitor()->primary_of("boiler7"), dep.node_a().id());
}

TEST(MonitorRender, ShowsRolesComponentsAndSilence) {
  sim::Simulation sim(136);
  PairDeploymentOptions opts;
  opts.unit = "renderme";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  std::string board = dep.monitor()->render();
  EXPECT_NE(board.find("renderme"), std::string::npos);
  EXPECT_NE(board.find("PRIMARY"), std::string::npos);
  EXPECT_NE(board.find("BACKUP"), std::string::npos);
  EXPECT_NE(board.find("app"), std::string::npos);
  EXPECT_EQ(board.find("SILENT"), std::string::npos);

  dep.node_a().crash();
  sim.run_for(sim::seconds(5));
  board = dep.monitor()->render();
  EXPECT_NE(board.find("SILENT"), std::string::npos) << "dead node flagged";
}

TEST(Deployment, StaggeredBootViaOptionsFormsPair) {
  sim::Simulation sim(137);
  PairDeploymentOptions opts;
  opts.node_b_boot_delay = sim::seconds(1);
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
  EXPECT_EQ(dep.backup_node(), dep.node_b().id());
}

}  // namespace
}  // namespace oftt::core
