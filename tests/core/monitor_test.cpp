// System Monitor tests: the role-transition feed now arrives over the
// telemetry event bus — these cover the subscription (transitions are
// derived from kRoleChange events), the kind filter (unrelated events
// do not disturb the history), and liveness-guarded unsubscription when
// the monitor's process dies.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "obs/event_bus.h"
#include "obs/telemetry.h"
#include "sim/fault_plan.h"
#include "support/counter_app.h"

namespace oftt {
namespace {

using core::PairDeployment;
using core::PairDeploymentOptions;
using core::Role;
using testsupport::CounterApp;

PairDeploymentOptions app_options() {
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  return opts;
}

TEST(Monitor, DerivesTransitionsFromBusEvents) {
  sim::Simulation sim(71);
  PairDeployment dep(sim, app_options());
  sim.run_for(sim::seconds(5));

  auto* mon = dep.monitor();
  ASSERT_NE(mon, nullptr);
  // Startup: both engines announced a role; the first transition per
  // node comes from the unknown state.
  bool saw_primary = false, saw_backup = false;
  for (const auto& t : mon->transitions()) {
    EXPECT_EQ(t.unit, "unit");
    if (t.to == Role::kPrimary) saw_primary = true;
    if (t.to == Role::kBackup) saw_backup = true;
  }
  EXPECT_TRUE(saw_primary);
  EXPECT_TRUE(saw_backup);

  // Failover: the backup's promotion shows up with the correct `from`.
  std::size_t before = mon->transitions().size();
  dep.node_a().crash();
  sim.run_for(sim::seconds(5));
  ASSERT_GT(mon->transitions().size(), before);
  bool saw_promotion = false;
  for (std::size_t i = before; i < mon->transitions().size(); ++i) {
    const auto& t = mon->transitions()[i];
    if (t.node == dep.node_b().id() && t.from == Role::kBackup && t.to == Role::kPrimary) {
      saw_promotion = true;
    }
  }
  EXPECT_TRUE(saw_promotion);
}

TEST(Monitor, FiltersOutNonRoleEvents) {
  sim::Simulation sim(72);
  PairDeployment dep(sim, app_options());
  sim.run_for(sim::seconds(5));
  auto* mon = dep.monitor();
  ASSERT_NE(mon, nullptr);

  std::size_t before = mon->transitions().size();
  obs::Event e;
  e.kind = obs::EventKind::kCheckpointTaken;
  e.unit = "unit";
  e.a = 99;
  sim.telemetry().bus().publish(e);
  EXPECT_EQ(mon->transitions().size(), before)
      << "the monitor's mask admits only kRoleChange";
}

TEST(Monitor, UnsubscribesWhenItsProcessDies) {
  sim::Simulation sim(73);
  PairDeployment dep(sim, app_options());
  sim.run_for(sim::seconds(5));
  ASSERT_NE(dep.monitor(), nullptr);

  std::size_t live_before = sim.telemetry().bus().subscriber_count();
  ASSERT_GE(live_before, 1u);
  dep.monitor_node().find_process("system_monitor")->kill("injected");

  // Role churn after the death: publishing must neither crash nor
  // deliver into the dead monitor.
  dep.node_a().crash();
  sim.run_for(sim::seconds(5));
  EXPECT_EQ(dep.primary_node(), dep.node_b().id());
  EXPECT_LT(sim.telemetry().bus().subscriber_count(), live_before)
      << "the dead monitor's subscription is gone";
  EXPECT_EQ(dep.monitor(), nullptr);
}

TEST(Monitor, RendersFaultPlanFiredAndPendingOps) {
  sim::Simulation sim(74);
  PairDeployment dep(sim, app_options());
  sim::FaultPlan plan(sim);
  plan.kill_process(sim::seconds(2), dep.node_b().id(), "app");
  plan.crash_node(sim::seconds(60), dep.node_a().id());
  plan.arm();
  sim.run_for(sim::seconds(5));

  std::string board = core::SystemMonitor::render_fault_plan(plan);
  EXPECT_NE(board.find("1/2 fired"), std::string::npos) << board;
  EXPECT_NE(board.find("[fired   t=2"), std::string::npos) << board;
  EXPECT_NE(board.find("kill app on node"), std::string::npos) << board;
  EXPECT_NE(board.find("[pending t=60"), std::string::npos) << board;
  EXPECT_NE(board.find("crash node"), std::string::npos) << board;
}

}  // namespace
}  // namespace oftt
