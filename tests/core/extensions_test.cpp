// Tests for the extension features: engine event log, checkpoint
// acknowledgements / replication lag, OPC address-space browsing, and
// the declarative FaultPlan.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"
#include "sim/fault_plan.h"
#include "support/counter_app.h"

namespace oftt {
namespace {

using core::PairDeployment;
using core::PairDeploymentOptions;
using testsupport::CounterApp;

PairDeploymentOptions app_options() {
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  return opts;
}

TEST(EventLog, RecordsRoleChangesAndFailures) {
  sim::Simulation sim(91);
  PairDeployment dep(sim, app_options());
  sim.run_for(sim::seconds(3));
  dep.node_a().find_process("app")->kill("fault");
  sim.run_for(sim::seconds(2));

  ASSERT_NE(dep.engine_a(), nullptr);
  const auto& log = dep.engine_a()->event_log();
  ASSERT_FALSE(log.empty());
  bool saw_role = false, saw_failure = false, saw_restart = false;
  for (const auto& e : log.entries()) {
    if (e.kind == obs::EventKind::kRoleChange) saw_role = true;
    if (e.kind == obs::EventKind::kComponentFailed) saw_failure = true;
    if (e.kind == obs::EventKind::kComponentRestart) saw_restart = true;
  }
  EXPECT_TRUE(saw_role);
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_restart);
  // Timestamps are monotone.
  const auto& entries = log.entries();
  for (std::size_t i = 1; i < entries.size(); ++i)
    EXPECT_GE(entries[i].at, entries[i - 1].at);
}

TEST(EventLog, IsBounded) {
  sim::Simulation sim(92);
  PairDeployment dep(sim, app_options());
  sim.run_for(sim::seconds(3));
  ASSERT_NE(dep.engine_b(), nullptr);
  // Flap roles many times via distress ping-pong... cheaper: many rule
  // events are not logged; force role churn with repeated switchover.
  for (int i = 0; i < 300; ++i) {
    int primary = dep.primary_node();
    if (primary < 0) break;
    core::Engine::find(*dep.node_by_id(primary))->request_switchover("churn");
    sim.run_for(sim::milliseconds(300));
  }
  EXPECT_LE(dep.engine_a()->event_log().size(), 256u);
}

TEST(CheckpointAck, PrimaryObservesReplication) {
  sim::Simulation sim(93);
  PairDeployment dep(sim, app_options());
  sim.run_for(sim::seconds(5));
  core::Ftim* primary_ftim = dep.ftim_on(dep.node_a());
  ASSERT_NE(primary_ftim, nullptr);
  EXPECT_GT(primary_ftim->peer_acked_seq(), 0u);
  EXPECT_LE(primary_ftim->replication_lag(), 2u) << "healthy LAN: lag stays tiny";
}

TEST(CheckpointAck, LagGrowsWhenBackupUnreachable) {
  sim::Simulation sim(94);
  PairDeployment dep(sim, app_options());
  sim.run_for(sim::seconds(5));
  // Isolate the backup without triggering failover from its side is
  // impossible on one LAN — instead just kill it and watch lag grow.
  dep.node_b().crash();
  sim.run_for(sim::seconds(5));
  core::Ftim* primary_ftim = dep.ftim_on(dep.node_a());
  ASSERT_NE(primary_ftim, nullptr);
  EXPECT_GT(primary_ftim->replication_lag(), 5u);
  // Backup returns: acks resume, lag collapses.
  dep.node_b().boot();
  sim.run_for(sim::seconds(5));
  EXPECT_LE(primary_ftim->replication_lag(), 2u);
}

const Clsid kBrowseClsid = Guid::from_name("CLSID_BrowseTestPlc");

TEST(Browse, EnumeratesAddressSpaceRemotely) {
  sim::Simulation sim(95);
  sim::Node& server = sim.add_node("server");
  sim::Node& client = sim.add_node("client");
  auto& net = sim.add_network("lan");
  net.attach(server.id());
  net.attach(client.id());
  server.set_boot_script([](sim::Node& node) {
    dcom::install_scm(node);
    node.start_process("opcserver", [](sim::Process& proc) {
      auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(10));
      plc->add_input("Tank.Level", std::make_unique<opc::CounterSignal>());
      plc->add_input("Tank.Temp", std::make_unique<opc::CounterSignal>());
      plc->add_input("Pump.Speed", std::make_unique<opc::CounterSignal>());
      opc::install_opc_server(proc, kBrowseClsid, plc, "v");
    });
  });
  server.boot();
  client.boot();
  auto hmi = client.start_process("hmi", nullptr);
  opc::OpcConnection conn(*hmi, server.id(), kBrowseClsid);

  std::vector<std::string> all, tanks;
  conn.browse("", [&](HRESULT hr, const std::vector<std::string>& ids) {
    EXPECT_EQ(hr, S_OK);
    all = ids;
  });
  conn.browse("Tank.", [&](HRESULT hr, const std::vector<std::string>& ids) {
    EXPECT_EQ(hr, S_OK);
    tanks = ids;
  });
  sim.run_for(sim::milliseconds(200));
  EXPECT_EQ(all.size(), 3u);
  ASSERT_EQ(tanks.size(), 2u);
  EXPECT_EQ(tanks[0], "Tank.Level");
  EXPECT_EQ(tanks[1], "Tank.Temp");
}

TEST(Browse, SubscribeWhatYouBrowsed) {
  // The canonical client flow: browse, then subscribe to what you found.
  sim::Simulation sim(96);
  sim::Node& node = sim.add_node("n");
  auto& net = sim.add_network("lan");
  net.attach(node.id());
  node.set_boot_script([](sim::Node& n) {
    dcom::install_scm(n);
    n.start_process("opcserver", [](sim::Process& proc) {
      auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(10));
      plc->add_input("A", std::make_unique<opc::CounterSignal>());
      plc->add_input("B", std::make_unique<opc::CounterSignal>());
      opc::install_opc_server(proc, kBrowseClsid, plc, "v");
    });
  });
  node.boot();
  auto hmi = node.start_process("hmi", nullptr);
  auto conn = std::make_shared<opc::OpcConnection>(*hmi, node.id(), kBrowseClsid);
  hmi->add_component(conn);
  int updates = 0;
  conn->browse("", [&, conn](HRESULT hr, const std::vector<std::string>& ids) {
    ASSERT_EQ(hr, S_OK);
    conn->subscribe(ids, [&](const std::vector<opc::ItemState>&) { ++updates; });
  });
  sim.run_for(sim::seconds(1));
  EXPECT_GT(updates, 0);
}

TEST(FaultPlan, InjectsOnScheduleAndJournals) {
  sim::Simulation sim(97);
  PairDeployment dep(sim, app_options());
  sim.run_for(sim::seconds(2));

  sim::FaultPlan plan(sim);
  plan.kill_process(sim::seconds(4), dep.node_a().id(), "app")
      .crash_node(sim::seconds(8), dep.node_a().id())
      .boot_node(sim::seconds(12), dep.node_a().id());
  EXPECT_EQ(plan.size(), 3u);
  plan.arm();

  sim.run_for(sim::seconds(3));  // t=5: app killed, restarted locally
  EXPECT_EQ(plan.journal().size(), 1u);
  sim.run_for(sim::seconds(10));  // t=15: node crashed and rebooted
  ASSERT_EQ(plan.journal().size(), 3u);
  EXPECT_EQ(plan.journal()[1].at, sim::seconds(8));
  EXPECT_TRUE(dep.node_a().up());
  EXPECT_EQ(dep.primary_node(), dep.node_b().id());
}

TEST(FaultPlan, FlapLinkAlternates) {
  sim::Simulation sim(98);
  sim::Node& a = sim.add_node("a");
  sim::Node& b = sim.add_node("b");
  auto& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  a.boot();
  b.boot();
  sim::FaultPlan plan(sim);
  plan.flap_link(sim::seconds(1), 0, a.id(), b.id(), sim::seconds(1), 2);
  plan.arm();
  sim.run_for(sim::milliseconds(1500));
  EXPECT_FALSE(net.link_up(a.id(), b.id()));
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(net.link_up(a.id(), b.id()));
  sim.run_for(sim::seconds(1));
  EXPECT_FALSE(net.link_up(a.id(), b.id()));
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(net.link_up(a.id(), b.id()));
  EXPECT_EQ(plan.journal().size(), 4u);
}

}  // namespace
}  // namespace oftt
