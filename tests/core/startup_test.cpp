// Startup negotiation tests — the paper's §3.2 lesson. The original
// logic (no retries) erroneously shuts the first node down whenever NT's
// unpredictable startup staggers the pair beyond one probe timeout; the
// added retry logic fixes it. Parameterized sweep over (retries, skew).
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "sim/simulation.h"

namespace oftt::core {
namespace {

struct StartupCase {
  int retries;
  sim::SimTime skew;
  bool pair_should_form;
};

class StartupSweep : public ::testing::TestWithParam<StartupCase> {};

TEST_P(StartupSweep, PairFormationMatchesRetryBudget) {
  const StartupCase& c = GetParam();
  sim::Simulation sim(99);
  PairDeploymentOptions opts;
  opts.engine.startup_probe_timeout = sim::milliseconds(800);
  opts.engine.startup_retries = c.retries;
  opts.engine.alone_policy = AloneStartupPolicy::kShutdown;
  opts.node_b_boot_delay = c.skew;
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(20));

  bool formed = dep.primary_node() != -1 && dep.backup_node() != -1;
  EXPECT_EQ(formed, c.pair_should_form)
      << "retries=" << c.retries << " skew=" << sim::to_millis(c.skew) << "ms";
  if (!c.pair_should_form) {
    // The paper's observed failure: the first node shut itself down.
    EXPECT_GT(sim.counter_value("oftt.startup_shutdown"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RetryBySkew, StartupSweep,
    ::testing::Values(
        // Original logic (retries=0): only a skew below one probe
        // timeout forms a pair.
        StartupCase{0, sim::milliseconds(0), true},
        StartupCase{0, sim::milliseconds(400), true},
        StartupCase{0, sim::milliseconds(1200), false},
        StartupCase{0, sim::seconds(3), false},
        // Fixed logic (retries=3): tolerates up to ~4 probe windows.
        StartupCase{3, sim::milliseconds(1200), true},
        StartupCase{3, sim::seconds(3), true},
        StartupCase{3, sim::seconds(10), false},
        // More retries, more tolerance.
        StartupCase{10, sim::seconds(8), true}),
    [](const ::testing::TestParamInfo<StartupCase>& info) {
      return "retries" + std::to_string(info.param.retries) + "_skew" +
             std::to_string(info.param.skew / 1'000'000) + "ms";
    });

TEST(Startup, SimultaneousBootPicksLowerNodeAsPrimary) {
  sim::Simulation sim(1);
  PairDeploymentOptions opts;
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
  EXPECT_EQ(dep.backup_node(), dep.node_b().id());
}

TEST(Startup, LateJoinerAdoptsBackupRole) {
  sim::Simulation sim(2);
  PairDeploymentOptions opts;
  opts.engine.startup_retries = 5;
  opts.node_b_boot_delay = sim::seconds(2);
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(6));
  // A won the pair; B booted into an established primary.
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
  EXPECT_EQ(dep.backup_node(), dep.node_b().id());
}

TEST(Startup, AlonePolicyBecomePrimaryServesWithoutPeer) {
  sim::Simulation sim(3);
  PairDeploymentOptions opts;
  opts.engine.startup_retries = 1;
  opts.engine.alone_policy = AloneStartupPolicy::kBecomePrimary;
  opts.autostart = false;
  PairDeployment dep(sim, opts);
  dep.node_a().boot();  // B never boots
  sim.run_for(sim::seconds(10));
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
}

TEST(Startup, AlonePolicyShutdownAvoidsDualPrimaryAcrossDeadNetwork) {
  // Network dead at startup: with the conservative policy neither node
  // claims primary, so no split brain.
  sim::Simulation sim(4);
  PairDeploymentOptions opts;
  opts.engine.startup_retries = 1;
  opts.engine.alone_policy = AloneStartupPolicy::kShutdown;
  opts.autostart = false;
  PairDeployment dep(sim, opts);
  sim.network(0).set_down(true);
  dep.node_a().boot();
  dep.node_b().boot();
  sim.run_for(sim::seconds(10));
  EXPECT_EQ(dep.primary_node(), -1);
  EXPECT_EQ(sim.counter_value("oftt.startup_shutdown"), 2u);
}

TEST(Startup, AlonePolicyBecomePrimaryCreatesDualPrimaryAcrossDeadNetwork) {
  // The risk the paper's design avoids: the liberal policy split-brains
  // when the network (not the peer) is down...
  sim::Simulation sim(5);
  PairDeploymentOptions opts;
  opts.engine.startup_retries = 1;
  opts.engine.alone_policy = AloneStartupPolicy::kBecomePrimary;
  opts.autostart = false;
  PairDeployment dep(sim, opts);
  sim.network(0).set_down(true);
  dep.node_a().boot();
  dep.node_b().boot();
  sim.run_for(sim::seconds(10));
  int primaries = 0;
  if (dep.engine_a() && dep.engine_a()->role() == Role::kPrimary) ++primaries;
  if (dep.engine_b() && dep.engine_b()->role() == Role::kPrimary) ++primaries;
  EXPECT_EQ(primaries, 2) << "dual primary while partitioned";

  // ...but incarnation-based resolution heals it when the network returns.
  sim.network(0).set_down(false);
  sim.run_for(sim::seconds(5));
  primaries = 0;
  if (dep.engine_a() && dep.engine_a()->role() == Role::kPrimary) ++primaries;
  if (dep.engine_b() && dep.engine_b()->role() == Role::kPrimary) ++primaries;
  EXPECT_EQ(primaries, 1) << "dual primary resolved after partition heals";
  EXPECT_GT(sim.counter_value("oftt.dual_primary_detected"), 0u);
}

TEST(Startup, ProbeRoundsCountedForDiagnostics) {
  sim::Simulation sim(6);
  PairDeploymentOptions opts;
  opts.engine.startup_retries = 5;
  opts.node_b_boot_delay = sim::seconds(2);  // ~3 probe rounds at 800 ms
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(6));
  ASSERT_NE(dep.engine_a(), nullptr);
  EXPECT_GE(dep.engine_a()->startup_probe_rounds(), 2);
}

}  // namespace
}  // namespace oftt::core
