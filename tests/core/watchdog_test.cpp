// Reliable-watchdog and hang-detection tests: an application-thread
// hang leaves FTIM heartbeats flowing (FTIM is its own thread in the
// same address space), so only the watchdog catches it — which is why
// the API exists.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

/// An app that kicks a watchdog from its main (hangable) thread.
class WatchdogApp {
 public:
  explicit WatchdogApp(sim::Process& process) : kick_timer_(process.main_strand()) {
    nt::NtRuntime::of(process).create_thread_static("app_main", 0x1000);
    OFTTInitialize(process, {});
    OFTTWatchdogCreate(process, "main_loop", sim::milliseconds(400));
    kick_timer_.start(sim::milliseconds(100), [&process] {
      OFTTWatchdogReset(process, "main_loop");
    });
  }

 private:
  sim::PeriodicTimer kick_timer_;
};

PairDeploymentOptions watchdog_options() {
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<WatchdogApp>(proc); };
  return opts;
}

TEST(Watchdog, HealthyAppNeverExpires) {
  sim::Simulation sim(21);
  PairDeployment dep(sim, watchdog_options());
  sim.run_for(sim::seconds(10));
  EXPECT_EQ(sim.counter_value("oftt.watchdog_expired"), 0u);
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
}

TEST(Watchdog, MainThreadHangDetectedDespiteLiveHeartbeats) {
  sim::Simulation sim(22);
  PairDeployment dep(sim, watchdog_options());
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());

  // Hang only the application's main thread; the FTIM thread lives on.
  auto app_proc = dep.node_a().find_process("app");
  app_proc->main_strand().hang();
  sim.run_for(sim::seconds(2));

  EXPECT_GT(sim.counter_value("oftt.watchdog_expired"), 0u);
  // Heartbeats never stopped, so only the watchdog can have fired.
  EXPECT_GT(sim.counter_value("oftt.local_restarts"), 0u);
  // Recovered by local restart (first failure): still primary here.
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
  auto fresh = dep.node_a().find_process("app");
  EXPECT_TRUE(fresh->alive());
  EXPECT_NE(fresh.get(), app_proc.get());
}

TEST(Watchdog, FullProcessHangIsCaughtByHeartbeatTimeoutInstead) {
  sim::Simulation sim(23);
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) {
    proc.attachment<CounterApp>(proc);
  };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  dep.node_a().find_process("app")->hang_all();  // FTIM thread hangs too
  sim.run_for(sim::seconds(2));
  EXPECT_GT(sim.counter_value("oftt.component_failures"), 0u);
}

TEST(Watchdog, DeleteDisarms) {
  sim::Simulation sim(24);
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) {
    nt::NtRuntime::of(proc).create_thread_static("app_main", 0x1000);
    OFTTInitialize(proc, {});
    OFTTWatchdogCreate(proc, "oneshot", sim::milliseconds(300));
    // Never kicked — but deleted before expiry.
    proc.main_strand().schedule_after(sim::milliseconds(100), [&proc] {
      OFTTWatchdogDelete(proc, "oneshot");
    });
  };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  EXPECT_EQ(sim.counter_value("oftt.watchdog_expired"), 0u);
}

TEST(Watchdog, CreateUnarmedThenSetArms) {
  sim::Simulation sim(25);
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) {
    nt::NtRuntime::of(proc).create_thread_static("app_main", 0x1000);
    OFTTInitialize(proc, {});
    OFTTWatchdogCreate(proc, "lazy");  // unarmed: no timeout
    proc.main_strand().schedule_after(sim::seconds(2), [&proc] {
      OFTTWatchdogSet(proc, "lazy", sim::milliseconds(200));  // arm, never kick
    });
  };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.counter_value("oftt.watchdog_expired"), 0u) << "unarmed cannot expire";
  sim.run_for(sim::seconds(3));
  EXPECT_GT(sim.counter_value("oftt.watchdog_expired"), 0u) << "armed and unkicked expires";
}

TEST(Watchdog, ApiRequiresInitialization) {
  sim::Simulation sim(26);
  sim::Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("bare", nullptr);
  EXPECT_EQ(OFTTWatchdogCreate(*proc, "w", 1), OFTT_E_NOT_INITIALIZED);
  EXPECT_EQ(OFTTSave(*proc), OFTT_E_NOT_INITIALIZED);
  EXPECT_EQ(OFTTDistress(*proc, "x"), OFTT_E_NOT_INITIALIZED);
  EXPECT_EQ(OFTTGetMyRole(*proc), Role::kUnknown);
  EXPECT_EQ(OFTTSelSave(*proc, "g", 0, 8), OFTT_E_NOT_INITIALIZED);
}

TEST(Watchdog, DoubleInitializeRejected) {
  sim::Simulation sim(27);
  PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) {
    EXPECT_EQ(OFTTInitialize(proc, {}), S_OK);
    EXPECT_EQ(OFTTInitialize(proc, {}), OFTT_E_ALREADY_INITIALIZED);
  };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(1));
}

}  // namespace
}  // namespace oftt::core
