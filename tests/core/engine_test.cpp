// Engine behaviour tests beyond the end-to-end failover suite:
// dual-network tolerance (Fig. 1 "one or dual Ethernet networks"),
// lossy-LAN robustness, status reporting, and partition handling.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

PairDeploymentOptions app_options(bool dual) {
  PairDeploymentOptions opts;
  opts.dual_network = dual;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  return opts;
}

TEST(DualNetwork, SingleSegmentLossDoesNotFailOver) {
  sim::Simulation sim(71);
  PairDeployment dep(sim, app_options(/*dual=*/true));
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());

  // Cut LAN 0 between the pair: heartbeats still flow on LAN 1.
  sim.network(0).set_link(dep.node_a().id(), dep.node_b().id(), false);
  sim.run_for(sim::seconds(5));
  EXPECT_EQ(dep.primary_node(), dep.node_a().id()) << "no spurious takeover";
  EXPECT_EQ(sim.counter_value("oftt.takeovers"), 0u);
  ASSERT_NE(dep.engine_b(), nullptr);
  EXPECT_TRUE(dep.engine_b()->peer_visible());
}

TEST(DualNetwork, BothSegmentsCutLooksLikePeerDeath) {
  sim::Simulation sim(72);
  PairDeployment dep(sim, app_options(/*dual=*/true));
  sim.run_for(sim::seconds(3));
  sim.network(0).set_link(dep.node_a().id(), dep.node_b().id(), false);
  sim.network(1).set_link(dep.node_a().id(), dep.node_b().id(), false);
  sim.run_for(sim::seconds(2));
  // Backup can no longer see the primary anywhere: it promotes (and
  // the old primary, being partitioned, cannot be told — dual primary
  // until the partition heals).
  ASSERT_NE(dep.engine_b(), nullptr);
  EXPECT_EQ(dep.engine_b()->role(), Role::kPrimary);

  sim.network(0).set_link(dep.node_a().id(), dep.node_b().id(), true);
  sim.network(1).set_link(dep.node_a().id(), dep.node_b().id(), true);
  sim.run_for(sim::seconds(3));
  int primaries = 0;
  if (dep.engine_a() && dep.engine_a()->role() == Role::kPrimary) ++primaries;
  if (dep.engine_b() && dep.engine_b()->role() == Role::kPrimary) ++primaries;
  EXPECT_EQ(primaries, 1) << "incarnation resolution after heal";
}

TEST(SingleNetwork, PartitionCausesDualPrimaryThenHeals) {
  sim::Simulation sim(73);
  PairDeployment dep(sim, app_options(/*dual=*/false));
  sim.run_for(sim::seconds(3));
  sim.network(0).set_link(dep.node_a().id(), dep.node_b().id(), false);
  sim.run_for(sim::seconds(2));
  EXPECT_GT(sim.counter_value("oftt.takeovers"), 0u);
  sim.network(0).set_link(dep.node_a().id(), dep.node_b().id(), true);
  sim.run_for(sim::seconds(3));
  EXPECT_GT(sim.counter_value("oftt.dual_primary_detected"), 0u);
  int primaries = 0;
  if (dep.engine_a() && dep.engine_a()->role() == Role::kPrimary) ++primaries;
  if (dep.engine_b() && dep.engine_b()->role() == Role::kPrimary) ++primaries;
  EXPECT_EQ(primaries, 1);
}

TEST(LossyLan, ModerateLossCausesNoSpuriousFailover) {
  sim::Simulation sim(74);
  auto opts = app_options(false);
  opts.net_loss = 0.2;  // 20% heartbeat loss, timeout = 5 periods
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(30));
  EXPECT_EQ(sim.counter_value("oftt.takeovers"), 0u)
      << "P(5 consecutive losses) = 0.2^5 per window; must not trip in 30 s";
  EXPECT_EQ(dep.primary_node(), dep.node_a().id());
  // And checkpoints still arrive despite the loss.
  Ftim* backup = dep.ftim_on(dep.node_b());
  ASSERT_NE(backup, nullptr);
  EXPECT_GT(backup->checkpoints_received(), 10u);
}

TEST(StatusReporting, MonitorSeesComponentRestartCounts) {
  sim::Simulation sim(75);
  PairDeployment dep(sim, app_options(false));
  sim.run_for(sim::seconds(3));
  dep.node_a().find_process("app")->kill("fault");
  sim.run_for(sim::seconds(3));
  auto* monitor = dep.monitor();
  ASSERT_NE(monitor, nullptr);
  const auto* view = monitor->view("unit", dep.node_a().id());
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->report.components.size(), 1u);
  EXPECT_EQ(view->report.components[0].restarts, 1);
  EXPECT_GT(view->report.components[0].heartbeats, 0u);
}

TEST(StatusReporting, TransitionsRecordRoleHistory) {
  sim::Simulation sim(76);
  PairDeployment dep(sim, app_options(false));
  sim.run_for(sim::seconds(3));
  dep.node_a().crash();
  sim.run_for(sim::seconds(3));
  auto* monitor = dep.monitor();
  ASSERT_NE(monitor, nullptr);
  bool saw_b_promote = false;
  for (const auto& t : monitor->transitions()) {
    if (t.node == dep.node_b().id() && t.to == Role::kPrimary) saw_b_promote = true;
  }
  EXPECT_TRUE(saw_b_promote);
}

TEST(Engine, ComponentHeartbeatCountsAccumulate) {
  sim::Simulation sim(77);
  PairDeployment dep(sim, app_options(false));
  sim.run_for(sim::seconds(5));
  ASSERT_NE(dep.engine_a(), nullptr);
  const auto& comp = dep.engine_a()->components().at("app");
  // ~10 Hz heartbeats for ~5 s.
  EXPECT_GT(comp.heartbeats, 30u);
  EXPECT_EQ(comp.state, ComponentState::kUp);
}

TEST(Engine, TakeoverMessageWhileAlreadyPrimaryIsIgnored) {
  sim::Simulation sim(78);
  PairDeployment dep(sim, app_options(false));
  sim.run_for(sim::seconds(3));
  ASSERT_NE(dep.engine_a(), nullptr);
  std::uint32_t inc_before = dep.engine_a()->incarnation();
  // Forge a takeover to the current primary (e.g. a duplicated frame).
  Takeover t;
  t.from_node = dep.node_b().id();
  t.incarnation = 0;
  t.reason = "stale duplicate";
  auto proc = dep.node_b().find_process("oftt_engine");
  proc->send(0, dep.node_a().id(), kEnginePort, t.encode(), kEnginePort);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(dep.engine_a()->role(), Role::kPrimary);
  EXPECT_EQ(dep.engine_a()->incarnation(), inc_before);
}

TEST(Engine, GarbagePacketsAreCounted) {
  sim::Simulation sim(79);
  PairDeployment dep(sim, app_options(false));
  sim.run_for(sim::seconds(1));
  auto proc = dep.node_b().find_process("oftt_engine");
  proc->send(0, dep.node_a().id(), kEnginePort, Buffer{0xFF, 0x00, 0x01}, kEnginePort);
  proc->send(0, dep.node_a().id(), kEnginePort, Buffer{}, kEnginePort);
  sim.run_for(sim::seconds(1));
  EXPECT_GT(sim.counter_value("oftt.engine_bad_packet"), 0u);
  EXPECT_EQ(dep.primary_node(), dep.node_a().id()) << "garbage must not disturb roles";
}

TEST(Engine, RebootedBackupCatchesUpThroughCheckpoints) {
  sim::Simulation sim(80);
  PairDeployment dep(sim, app_options(false));
  sim.run_for(sim::seconds(3));
  dep.node_b().crash();
  sim.run_for(sim::seconds(5));
  std::int64_t count_mid = CounterApp::find(dep.node_a())->count();
  dep.node_b().boot();
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.backup_node(), dep.node_b().id());
  Ftim* backup = dep.ftim_on(dep.node_b());
  ASSERT_NE(backup, nullptr);
  ASSERT_TRUE(backup->has_checkpoint());
  // Its held checkpoint reflects post-outage progress.
  BinaryReader r(backup->latest_checkpoint()->regions.at("globals"));
  EXPECT_GE(r.i64(), count_mid);
}

TEST(Engine, EventHistoryCapEvictsOldestFirst) {
  sim::Simulation sim(81);
  auto opts = app_options(false);
  opts.engine.event_history_cap = 4;  // tiny operator log
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  // Churn roles until the log has wrapped several times.
  for (int i = 0; i < 8; ++i) {
    int primary = dep.primary_node();
    if (primary < 0) break;
    Engine::find(*dep.node_by_id(primary))->request_switchover("churn");
    sim.run_for(sim::seconds(1));
  }
  const auto& log = dep.engine_a()->event_log();
  EXPECT_EQ(log.cap(), 4u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_GT(log.evicted(), 0u) << "the churn must have wrapped the log";
  // Eviction is oldest-first: what remains is the newest suffix, still
  // in monotone time order.
  const auto& entries = log.entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i].at, entries[i - 1].at);
  }
  // The retained tail is recent: everything left was recorded after the
  // evicted prefix, so the oldest survivor is younger than the churn
  // start.
  EXPECT_GT(entries.front().at, sim::seconds(3));
}

}  // namespace
}  // namespace oftt::core
