// Pluggable replication policies: policy-object unit coverage, governor
// hysteresis, succession eligibility, knob validation, delta-frame
// hardening, and full-deployment scenarios for warm-passive streaming,
// semi-active decision logs, live policy switches (including under
// loss) and cold-restart policy recovery — plus the 5-seed determinism
// sweep per policy under a scripted fault storm.
#include <gtest/gtest.h>

#include "cluster/succession.h"
#include "core/checkpoint.h"
#include "core/deployment.h"
#include "core/replication.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "sim/fault_plan.h"
#include "sim/rng.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

// ---------------------------------------------------------------------
// Policy objects: the four decision points, per mode.
// ---------------------------------------------------------------------

ReplicationConfig standard_rcfg() {
  ReplicationConfig c;
  c.checkpoint_period = sim::milliseconds(500);
  c.delta_stream_period = sim::milliseconds(125);
  c.full_checkpoint_interval = 8;
  c.deltas_enabled = true;
  return c;
}

TEST(ReplicationPolicy, ColdPassiveReproducesThePaperScheme) {
  auto p = make_policy(ReplicationMode::kColdPassive);
  ReplicationConfig c = standard_rcfg();
  EXPECT_EQ(p->mode(), ReplicationMode::kColdPassive);
  EXPECT_EQ(p->capture_period(c), c.checkpoint_period);
  EXPECT_FALSE(p->apply_on_receipt());
  EXPECT_TRUE(p->restore_on_activate());
  EXPECT_FALSE(p->followers_execute());
  EXPECT_EQ(p->staleness_bound(c), 0) << "cold backups are never disqualified";
  // The Nth-full rhythm: first capture full, then interval-1 deltas.
  EXPECT_FALSE(p->capture_as_delta(c, {false, 0, 0})) << "first capture is full";
  EXPECT_TRUE(p->capture_as_delta(c, {false, 1, 0}));
  EXPECT_TRUE(p->capture_as_delta(c, {false, 7, 6}));
  EXPECT_FALSE(p->capture_as_delta(c, {false, 8, 7})) << "every Nth is self-contained";
  EXPECT_FALSE(p->capture_as_delta(c, {true, 5, 2})) << "force_full wins";
  c.deltas_enabled = false;
  EXPECT_FALSE(p->capture_as_delta(c, {false, 3, 1}));
}

TEST(ReplicationPolicy, WarmPassiveStreamsAtDeltaCadenceAndSkipsRestore) {
  auto p = make_policy(ReplicationMode::kWarmPassive);
  ReplicationConfig c = standard_rcfg();
  EXPECT_EQ(p->capture_period(c), c.delta_stream_period);
  EXPECT_TRUE(p->apply_on_receipt());
  EXPECT_FALSE(p->restore_on_activate());
  EXPECT_FALSE(p->followers_execute());
  EXPECT_EQ(p->staleness_bound(c), 8 * c.delta_stream_period);
  c.promotion_staleness_bound = sim::seconds(2);
  EXPECT_EQ(p->staleness_bound(c), sim::seconds(2)) << "explicit bound overrides";
}

TEST(ReplicationPolicy, SemiActiveIsPromotionOnlyWithSafetyNetFulls) {
  auto p = make_policy(ReplicationMode::kSemiActive);
  ReplicationConfig c = standard_rcfg();
  EXPECT_EQ(p->capture_period(c), c.checkpoint_period * 8) << "sparse safety net";
  EXPECT_FALSE(p->capture_as_delta(c, {false, 5, 3})) << "semi never ships deltas";
  EXPECT_TRUE(p->apply_on_receipt());
  EXPECT_FALSE(p->restore_on_activate());
  EXPECT_TRUE(p->followers_execute());
  EXPECT_EQ(p->staleness_bound(c), 8 * c.checkpoint_period);
}

TEST(ReplicationPolicy, PromotionReadinessIsJudgedAgainstTheFailureEvidence) {
  ReplicationConfig c = standard_rcfg();
  auto cold = make_policy(ReplicationMode::kColdPassive);
  auto warm = make_policy(ReplicationMode::kWarmPassive);
  const sim::SimTime evidence = sim::seconds(100);
  // Cold: always ready, even having applied nothing ever.
  EXPECT_TRUE(promotion_ready(*cold, c, 0, evidence));
  // Warm bound is 8 * 125 ms = 1 s around the evidence time.
  EXPECT_TRUE(promotion_ready(*warm, c, evidence - sim::milliseconds(900), evidence));
  EXPECT_FALSE(promotion_ready(*warm, c, evidence - sim::milliseconds(1100), evidence));
  EXPECT_TRUE(promotion_ready(*warm, c, evidence, evidence));
}

// ---------------------------------------------------------------------
// Governor: hysteresis in both directions, semi-active untouchable.
// ---------------------------------------------------------------------

TEST(PolicyGovernor, DegradesWarmToColdOnlyAfterSustainedLoss) {
  GovernorConfig g;
  g.enabled = true;
  g.hysteresis_windows = 2;
  PolicyGovernor gov(g);
  // One lossy window is noise.
  EXPECT_EQ(gov.evaluate(ReplicationMode::kWarmPassive, 1000.0, 0.2),
            ReplicationMode::kWarmPassive);
  // A calm window resets the streak.
  EXPECT_EQ(gov.evaluate(ReplicationMode::kWarmPassive, 1000.0, 0.0),
            ReplicationMode::kWarmPassive);
  EXPECT_EQ(gov.evaluate(ReplicationMode::kWarmPassive, 1000.0, 0.2),
            ReplicationMode::kWarmPassive);
  EXPECT_EQ(gov.evaluate(ReplicationMode::kWarmPassive, 1000.0, 0.2),
            ReplicationMode::kColdPassive)
      << "second consecutive lossy window trips the switch";
}

TEST(PolicyGovernor, DegradesWarmToColdOnSustainedHeavyByteRate) {
  GovernorConfig g;
  g.enabled = true;
  g.hysteresis_windows = 2;
  g.warm_bytes_per_s = 1024;
  PolicyGovernor gov(g);
  EXPECT_EQ(gov.evaluate(ReplicationMode::kWarmPassive, 4096.0, 0.0),
            ReplicationMode::kWarmPassive);
  EXPECT_EQ(gov.evaluate(ReplicationMode::kWarmPassive, 4096.0, 0.0),
            ReplicationMode::kColdPassive);
}

TEST(PolicyGovernor, UpgradesColdToWarmAfterCalmWindows) {
  GovernorConfig g;
  g.enabled = true;
  g.hysteresis_windows = 3;
  PolicyGovernor gov(g);
  EXPECT_EQ(gov.evaluate(ReplicationMode::kColdPassive, 100.0, 0.0),
            ReplicationMode::kColdPassive);
  EXPECT_EQ(gov.evaluate(ReplicationMode::kColdPassive, 100.0, 0.0),
            ReplicationMode::kColdPassive);
  EXPECT_EQ(gov.evaluate(ReplicationMode::kColdPassive, 100.0, 0.0),
            ReplicationMode::kWarmPassive);
}

TEST(PolicyGovernor, NeverTouchesSemiActive) {
  GovernorConfig g;
  g.enabled = true;
  g.hysteresis_windows = 1;
  PolicyGovernor gov(g);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(gov.evaluate(ReplicationMode::kSemiActive, 1e9, 0.9),
              ReplicationMode::kSemiActive);
  }
}

// ---------------------------------------------------------------------
// Succession eligibility: prefer fresh replicas, never go headless.
// ---------------------------------------------------------------------

TEST(SuccessionEligibility, PrefersEligibleAndFallsBackToSeniority) {
  cluster::MembershipView view = cluster::MembershipView::initial({1, 2, 3});
  std::set<int> live{2, 3};
  EXPECT_EQ(cluster::SuccessionPlanner::successor(view, live), 2);
  // Rank-1 node 2 is stale: rank-2 node 3 is preferred while eligible.
  EXPECT_EQ(cluster::SuccessionPlanner::successor(view, live, {3}), 3);
  EXPECT_EQ(cluster::SuccessionPlanner::successor(view, live, {2, 3}), 2);
  // Nobody eligible: a stale replica beats no primary at all.
  EXPECT_EQ(cluster::SuccessionPlanner::successor(view, live, {}), 2);
  EXPECT_EQ(cluster::SuccessionPlanner::successor(view, {}, {}), -1);
}

// ---------------------------------------------------------------------
// Knob validation: inconsistent combinations must throw, descriptively.
// ---------------------------------------------------------------------

TEST(ReplicationValidation, RejectsInconsistentFtimKnobs) {
  {
    FtimOptions o;
    o.checkpoint_period = 0;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
  }
  {
    FtimOptions o;
    o.full_checkpoint_interval = 0;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
  }
  {
    FtimOptions o;  // delta interval without dirty tracking
    o.track_dirty_ranges = false;
    o.full_checkpoint_interval = 8;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
    o.full_checkpoint_interval = 1;  // consistent again
    EXPECT_NO_THROW(validate_ftim_options(o));
  }
  {
    FtimOptions o;  // warm knob under a cold policy
    o.peer_node = 1;
    o.delta_stream_period = sim::milliseconds(50);
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
    o.replication = ReplicationMode::kWarmPassive;
    EXPECT_NO_THROW(validate_ftim_options(o));
  }
  {
    FtimOptions o;  // warm streaming needs dirty tracking
    o.peer_node = 1;
    o.replication = ReplicationMode::kWarmPassive;
    o.track_dirty_ranges = false;
    o.full_checkpoint_interval = 1;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
  }
  {
    FtimOptions o;  // non-cold replication with nobody to stream to
    o.replication = ReplicationMode::kWarmPassive;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
    o.replication = ReplicationMode::kSemiActive;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
  }
  {
    FtimOptions o;  // semi-active needs a checkpointable client
    o.peer_node = 1;
    o.replication = ReplicationMode::kSemiActive;
    o.kind = FtimKind::kOpcServer;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
  }
  {
    FtimOptions o;
    o.promotion_staleness_bound = -1;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
  }
  {
    FtimOptions o;
    o.governor.enabled = true;
    o.governor.period = 0;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
    o.governor.period = sim::seconds(1);
    o.governor.hysteresis_windows = 0;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
    o.governor.hysteresis_windows = 2;
    o.governor.loss_rate_high = 1.5;
    EXPECT_THROW(validate_ftim_options(o), std::invalid_argument);
  }
}

TEST(ReplicationValidation, DeploymentAndEngineRejectShapeMistakes) {
  sim::Simulation sim(8101);
  {
    // Warm replication with no application: nothing to stream.
    PairDeploymentOptions opts;
    opts.engine.replication = ReplicationMode::kWarmPassive;
    EXPECT_THROW(PairDeployment(sim, opts), std::invalid_argument);
  }
  {
    ClusterDeploymentOptions opts;
    opts.engine.replication = ReplicationMode::kSemiActive;
    EXPECT_THROW(ClusterDeployment(sim, opts), std::invalid_argument);
  }
  {
    // Engine in warm mode with neither a pair peer nor a cluster.
    sim::Node& lone = sim.add_node("lone");
    lone.boot();
    OfttConfig cfg;
    cfg.replication = ReplicationMode::kWarmPassive;
    EXPECT_THROW(Engine::install(lone, cfg), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------
// apply_delta hardening: mismatched chains refused, base untouched.
// ---------------------------------------------------------------------

class DeltaHardeningTest : public ::testing::Test {
 protected:
  DeltaHardeningTest() {
    node_ = &sim_.add_node("n");
    node_->boot();
    proc_ = node_->start_process("src", nullptr);
    rt_ = &nt::NtRuntime::of(*proc_);
  }

  CheckpointImage make_base() {
    auto& g = rt_->memory().alloc("globals", 128);
    g.write<std::uint64_t>(0, 7);
    CheckpointImage base = capture_checkpoint(*rt_, CheckpointMode::kFull, {}, 3, 2, {});
    rt_->memory().clear_all_dirty();
    return base;
  }

  CheckpointImage make_delta(std::uint64_t seq, std::uint64_t base_seq,
                             std::uint32_t incarnation) {
    rt_->memory().find("globals")->write<std::uint64_t>(0, 8);
    return capture_delta_checkpoint(*rt_, seq, base_seq, incarnation, {});
  }

  sim::Simulation sim_;
  sim::Node* node_;
  std::shared_ptr<sim::Process> proc_;
  nt::NtRuntime* rt_;
};

TEST_F(DeltaHardeningTest, MismatchedBaseSeqReturnsNeedFullAndLeavesBaseAlone) {
  CheckpointImage base = make_base();
  const Buffer before = base.marshal();
  CheckpointImage stale = make_delta(/*seq=*/4, /*base_seq=*/2, /*incarnation=*/2);
  EXPECT_EQ(apply_delta(base, stale).status, DeltaApply::kNeedFull);
  EXPECT_EQ(base.marshal(), before) << "refused merge must not mutate the base";
  CheckpointImage wrong_inc = make_delta(4, 3, /*incarnation=*/1);
  EXPECT_EQ(apply_delta(base, wrong_inc).status, DeltaApply::kNeedFull);
  CheckpointImage not_a_delta = make_delta(4, 3, 2);
  not_a_delta.mode = CheckpointMode::kFull;
  EXPECT_EQ(apply_delta(base, not_a_delta).status, DeltaApply::kNeedFull);
  EXPECT_EQ(base.marshal(), before);
  // The matching chain still merges.
  CheckpointImage good = make_delta(4, 3, 2);
  EXPECT_TRUE(apply_delta(base, good).applied());
  EXPECT_EQ(base.seq, 4u);
}

TEST_F(DeltaHardeningTest, DecisionWatermarkPropagatesForward) {
  CheckpointImage base = make_base();
  base.decision_seq = 10;
  CheckpointImage d = make_delta(4, 3, 2);
  d.decision_seq = 17;
  ASSERT_TRUE(apply_delta(base, d).applied());
  EXPECT_EQ(base.decision_seq, 17u);
  CheckpointImage older = make_delta(5, 4, 2);
  older.decision_seq = 12;  // stale watermark must not regress the base
  ASSERT_TRUE(apply_delta(base, older).applied());
  EXPECT_EQ(base.decision_seq, 17u);
}

TEST_F(DeltaHardeningTest, SeededFuzzOverTruncatedAndGarbledDeltaFrames) {
  CheckpointImage base = make_base();
  const Buffer pristine = base.marshal();
  Buffer blob = make_delta(4, 3, 2).marshal();

  // Every strict prefix is rejected at unmarshal (checksum/truncation).
  for (std::size_t len = 0; len < blob.size(); ++len) {
    CheckpointImage out;
    EXPECT_FALSE(CheckpointImage::unmarshal(
        Buffer(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(len)), out))
        << "prefix of " << len << " bytes must not unmarshal";
  }

  // Byte-flip fuzz: whatever survives unmarshal must either chain
  // correctly or be refused with the base image untouched — never a
  // crash, never a silent partial merge that corrupts the base chain.
  sim::Rng rng(0x5EED);
  for (int round = 0; round < 300; ++round) {
    Buffer mutated = blob;
    const int flips = 1 + static_cast<int>(rng.uniform(0, 7));
    for (int i = 0; i < flips; ++i) {
      auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(0, 254));
    }
    CheckpointImage out;
    if (!CheckpointImage::unmarshal(mutated, out)) continue;  // checksum caught it
    CheckpointImage scratch;
    ASSERT_TRUE(CheckpointImage::unmarshal(pristine, scratch));
    const DeltaApplyResult res = apply_delta(scratch, out);
    if (!res.applied()) {
      EXPECT_EQ(scratch.marshal(), pristine) << "refused merge must leave base intact";
    }
  }
}

// ---------------------------------------------------------------------
// Scenarios: warm-passive folds on receipt and promotes in place.
// ---------------------------------------------------------------------

PairDeploymentOptions policy_pair_options(ReplicationMode mode) {
  PairDeploymentOptions opts;
  opts.engine.replication = mode;
  opts.app_factory = [mode](sim::Process& proc) {
    CounterApp::Options app;
    app.ftim.replication = mode;
    app.drive_by_decisions = mode == ReplicationMode::kSemiActive;
    proc.attachment<CounterApp>(proc, app);
  };
  return opts;
}

TEST(WarmPassive, BackupFoldsDeltasAndPromotesWithoutBulkRestore) {
  sim::Simulation sim(9001);
  PairDeployment dep(sim, policy_pair_options(ReplicationMode::kWarmPassive));
  sim.run_for(sim::seconds(5));

  int primary = dep.primary_node();
  ASSERT_NE(primary, -1);
  sim::Node& backup_node = primary == dep.node_a().id() ? dep.node_b() : dep.node_a();
  Ftim* backup = dep.ftim_on(backup_node);
  ASSERT_NE(backup, nullptr);
  EXPECT_EQ(backup->replication_mode(), ReplicationMode::kWarmPassive);
  EXPECT_TRUE(backup->runtime_current()) << "warm backup folds state as it arrives";
  EXPECT_GT(backup->deltas_applied(), 5u) << "continuous delta stream expected";
  EXPECT_GT(backup->last_applied_at(), 0);

  const std::int64_t before =
      CounterApp::find(*dep.node_by_id(primary)) != nullptr
          ? CounterApp::find(*dep.node_by_id(primary))->count()
          : 0;
  ASSERT_GT(before, 0);
  dep.node_by_id(primary)->crash();
  sim.run_for(sim::seconds(5));

  CounterApp* app = CounterApp::find(backup_node);
  ASSERT_NE(app, nullptr);
  // No state dropped across the switchover (modulo the staleness bound,
  // a handful of 50 ms ticks), and progress resumed.
  EXPECT_GE(app->count(), before - 10);
  EXPECT_GT(app->count(), before - 10 + 20) << "new primary must make progress";
  // The promotion skipped the bulk restore: activation was in-place.
  std::string trace = obs::export_json(sim.telemetry(), /*include_history=*/true);
  EXPECT_NE(trace.find("promoted in place"), std::string::npos) << "warm switchover";
  EXPECT_EQ(trace.find("restored on activation"), std::string::npos)
      << "warm backup must not bulk-restore at activation";
}

TEST(SemiActive, FollowersExecuteTheDecisionLogAndPromoteByPromotionOnly) {
  sim::Simulation sim(9002);
  PairDeployment dep(sim, policy_pair_options(ReplicationMode::kSemiActive));
  sim.run_for(sim::seconds(5));

  int primary = dep.primary_node();
  ASSERT_NE(primary, -1);
  sim::Node& backup_node = primary == dep.node_a().id() ? dep.node_b() : dep.node_a();
  Ftim* leader = dep.ftim_on(*dep.node_by_id(primary));
  Ftim* follower = dep.ftim_on(backup_node);
  ASSERT_NE(leader, nullptr);
  ASSERT_NE(follower, nullptr);
  EXPECT_GT(leader->decisions_proposed(), 50u) << "50 ms ticks for ~5 s";
  EXPECT_GT(follower->decisions_applied(), 50u) << "follower executes the log";
  EXPECT_TRUE(follower->runtime_current());

  CounterApp* leader_app = CounterApp::find(*dep.node_by_id(primary));
  CounterApp* follower_app = CounterApp::find(backup_node);
  ASSERT_NE(leader_app, nullptr);
  ASSERT_NE(follower_app, nullptr);
  EXPECT_NEAR(static_cast<double>(follower_app->count()),
              static_cast<double>(leader_app->count()), 5.0)
      << "follower state rides the decision log, not checkpoint cadence";

  const std::int64_t before = leader_app->count();
  dep.node_by_id(primary)->crash();
  sim.run_for(sim::seconds(5));
  EXPECT_GE(follower_app->count(), before - 5);
  EXPECT_GT(follower_app->count(), before + 20) << "promoted follower keeps proposing";
}

// ---------------------------------------------------------------------
// Live switching: operator-driven, under loss, and across cold restart.
// ---------------------------------------------------------------------

TEST(PolicySwitch, LiveColdToWarmUnderLossPreservesStateAcrossFailover) {
  sim::Simulation sim(9003);
  PairDeploymentOptions opts = policy_pair_options(ReplicationMode::kColdPassive);
  opts.dual_network = true;
  opts.net_loss = 0.08;
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));

  int primary = dep.primary_node();
  ASSERT_NE(primary, -1);
  sim::Node& backup_node = primary == dep.node_a().id() ? dep.node_b() : dep.node_a();
  auto primary_app_proc = dep.node_by_id(primary)->find_process("app");
  ASSERT_NE(primary_app_proc, nullptr);
  EXPECT_EQ(OFTTGetReplicationMode(*primary_app_proc), ReplicationMode::kColdPassive);

  // Live switch on the active side; the announcement + pinned full
  // checkpoint must bring the backup along despite the lossy links.
  EXPECT_EQ(OFTTSwitchReplication(*primary_app_proc, ReplicationMode::kWarmPassive,
                                  "operator: tighten RTO"),
            S_OK);
  EXPECT_EQ(OFTTSwitchReplication(*primary_app_proc, ReplicationMode::kWarmPassive), S_FALSE)
      << "no-op switch reports S_FALSE";
  sim.run_for(sim::seconds(5));

  Ftim* backup = dep.ftim_on(backup_node);
  ASSERT_NE(backup, nullptr);
  EXPECT_EQ(backup->replication_mode(), ReplicationMode::kWarmPassive);
  EXPECT_GE(backup->policy_switches(), 1u);
  EXPECT_TRUE(backup->runtime_current()) << "held image folded at the switch";

  const std::int64_t before = CounterApp::find(*dep.node_by_id(primary))->count();
  dep.node_by_id(primary)->crash();
  sim.run_for(sim::seconds(5));
  CounterApp* app = CounterApp::find(backup_node);
  ASSERT_NE(app, nullptr);
  EXPECT_GE(app->count(), before - 15) << "switch must not drop replicated state";
  EXPECT_GT(app->count(), before) << "progress resumed under the new policy";
  std::string trace = obs::export_json(sim.telemetry(), /*include_history=*/true);
  EXPECT_NE(trace.find("policy_switch"), std::string::npos);
}

TEST(PolicySwitch, SwitchedPolicySurvivesOsCrashViaTheJournal) {
  sim::Simulation sim(9004);
  PairDeployment dep(sim, policy_pair_options(ReplicationMode::kColdPassive));
  sim.run_for(sim::seconds(4));

  int primary = dep.primary_node();
  ASSERT_NE(primary, -1);
  sim::Node& backup_node = primary == dep.node_a().id() ? dep.node_b() : dep.node_a();
  auto app_proc = dep.node_by_id(primary)->find_process("app");
  ASSERT_NE(app_proc, nullptr);
  ASSERT_EQ(OFTTSwitchReplication(*app_proc, ReplicationMode::kWarmPassive, "test"), S_OK);
  sim.run_for(sim::seconds(3));
  ASSERT_NE(dep.ftim_on(backup_node), nullptr);
  ASSERT_EQ(dep.ftim_on(backup_node)->replication_mode(), ReplicationMode::kWarmPassive);

  // Cold-restart the backup: its FtimOptions still say cold-passive,
  // but the policy journal on its disk says warm — journal wins.
  backup_node.os_crash(sim::seconds(5));
  sim.run_for(sim::seconds(10));
  Ftim* restarted = dep.ftim_on(backup_node);
  ASSERT_NE(restarted, nullptr);
  EXPECT_EQ(restarted->replication_mode(), ReplicationMode::kWarmPassive)
      << "policy must be restored from the journal on cold restart";
}

TEST(PolicyGovernorScenario, DegradesToColdUnderSustainedLossAndRecoversWarm) {
  sim::Simulation sim(9005);
  PairDeploymentOptions opts;
  opts.dual_network = true;
  opts.engine.replication = ReplicationMode::kWarmPassive;
  opts.app_factory = [](sim::Process& proc) {
    CounterApp::Options app;
    app.ftim.replication = ReplicationMode::kWarmPassive;
    app.ftim.governor.enabled = true;
    app.ftim.governor.period = sim::milliseconds(500);
    app.ftim.governor.loss_rate_high = 0.03;
    app.ftim.governor.hysteresis_windows = 2;
    proc.attachment<CounterApp>(proc, app);
  };
  PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(4));
  int primary = dep.primary_node();
  ASSERT_NE(primary, -1);
  Ftim* active = dep.ftim_on(*dep.node_by_id(primary));
  ASSERT_NE(active, nullptr);
  ASSERT_EQ(active->replication_mode(), ReplicationMode::kWarmPassive);

  // Sustained loss on both segments: the delta stream's retransmission
  // rate crosses the governor's threshold and the unit degrades.
  sim.network(0).set_loss(0.30);
  sim.network(1).set_loss(0.30);
  sim.run_for(sim::seconds(8));
  EXPECT_EQ(active->replication_mode(), ReplicationMode::kColdPassive)
      << "governor must degrade a lossy warm pair";
  EXPECT_GE(active->policy_switches(), 1u);

  // Calm again: the governor upgrades back once the loss subsides.
  sim.network(0).set_loss(0.0);
  sim.network(1).set_loss(0.0);
  sim.run_for(sim::seconds(10));
  EXPECT_EQ(active->replication_mode(), ReplicationMode::kWarmPassive)
      << "governor must recover the warm policy on a calm network";
}

// ---------------------------------------------------------------------
// Determinism: 5 seeds per policy under a scripted fault storm — the
// same seed must reproduce the full telemetry byte for byte.
// ---------------------------------------------------------------------

std::string run_policy_chaos(ReplicationMode mode, std::uint64_t seed) {
  sim::Simulation sim(seed);
  PairDeployment dep(sim, policy_pair_options(mode));
  int a = dep.node_a().id(), b = dep.node_b().id();
  sim::FaultPlan plan(sim);
  plan.kill_process(sim::seconds(5), a, "app")
      .os_crash(sim::seconds(10), a, sim::seconds(6))
      .flap_link(sim::seconds(20), 0, a, b, sim::seconds(1), 2);
  plan.arm();
  sim.run_for(sim::seconds(26));
  return obs::export_json(sim.telemetry(), /*include_history=*/true);
}

TEST(ReplicationDeterminism, FiveSeedsPerPolicyReproduceByteIdenticalTraces) {
  for (ReplicationMode mode : {ReplicationMode::kColdPassive, ReplicationMode::kWarmPassive,
                               ReplicationMode::kSemiActive}) {
    for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
      SCOPED_TRACE(cat("mode=", replication_mode_name(mode), " seed=", seed));
      std::string first = run_policy_chaos(mode, seed);
      std::string second = run_policy_chaos(mode, seed);
      EXPECT_EQ(first, second);
    }
  }
}

}  // namespace
}  // namespace oftt::core
