// N-replica cluster mode (src/cluster/): ranked succession, membership
// view gossip, and quorum-gated promotion, driven through full
// ClusterDeployments. Covers the acceptance scenarios: rank-1 promotion
// within one detection+negotiation cycle, minority partitions that must
// never promote, cascading double failures, deterministic failover
// traces including the ack-collection phase, checkpoint fan-out, and
// rejoin-as-backup.
#include <gtest/gtest.h>

#include "cluster/membership.h"
#include "cluster/quorum.h"
#include "cluster/succession.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/fault_plan.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

ClusterDeploymentOptions standard_options(int replicas) {
  ClusterDeploymentOptions opts;
  opts.replicas = replicas;
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CounterApp>(proc); };
  return opts;
}

// ---------------------------------------------------------------------
// Pure cluster-module unit coverage.
// ---------------------------------------------------------------------

TEST(Membership, QuorumIsMajorityOfFullViewAndPairDegradesToOne) {
  EXPECT_EQ(cluster::quorum_required(2), 1);  // pair mode: survivor alone
  EXPECT_EQ(cluster::quorum_required(3), 2);
  EXPECT_EQ(cluster::quorum_required(5), 3);
  EXPECT_EQ(cluster::quorum_required(9), 5);
}

TEST(Membership, MergeAdoptsOnlyNewerViewsAndKeepsFresherHeartbeats) {
  cluster::MembershipView a = cluster::MembershipView::initial({10, 11, 12});
  a.incarnation = 1;
  a.version = 3;
  a.find(11)->last_heartbeat = 900;

  cluster::MembershipView b = a;
  b.version = 4;
  b.find(10)->role = cluster::MemberRole::kDead;
  b.find(11)->last_heartbeat = 500;  // staler observation than ours

  cluster::MembershipView mine = a;
  EXPECT_TRUE(mine.merge(b));
  EXPECT_EQ(mine.version, 4u);
  EXPECT_EQ(mine.find(10)->role, cluster::MemberRole::kDead);
  EXPECT_EQ(mine.find(11)->last_heartbeat, 900) << "merge must not lose fresher local obs";

  // Older view: no adoption.
  cluster::MembershipView old = a;
  old.version = 2;
  EXPECT_FALSE(mine.merge(old));
  EXPECT_EQ(mine.version, 4u);
}

TEST(Succession, PromotionReranksSurvivorsAndMarksDeadLast) {
  cluster::MembershipView v = cluster::MembershipView::initial({10, 11, 12, 13, 14});
  cluster::SuccessionPlanner::promote(v, 10, 1, {10, 11, 12, 13, 14});
  // Primary dies; 12 was lost with it.
  EXPECT_EQ(cluster::SuccessionPlanner::successor(v, {11, 13, 14}), 11);
  cluster::SuccessionPlanner::promote(v, 11, 2, {11, 13, 14});
  EXPECT_EQ(v.primary()->node, 11);
  EXPECT_EQ(v.find(11)->rank, 0);
  EXPECT_EQ(v.find(13)->rank, 1);
  EXPECT_EQ(v.find(14)->rank, 2);
  EXPECT_EQ(v.find(10)->role, cluster::MemberRole::kDead);
  EXPECT_EQ(v.find(12)->role, cluster::MemberRole::kDead);
  EXPECT_GT(v.find(10)->rank, v.find(14)->rank);
  EXPECT_EQ(v.size(), 5u) << "dead members stay in the view (static quorum)";

  // Rejoin goes to the back of the whole line — behind even still-dead
  // members, so repeated rejoins readmit in FIFO order. successor()
  // skips dead members, so the dead one ahead never outranks it.
  EXPECT_TRUE(cluster::SuccessionPlanner::rejoin(v, 10));
  EXPECT_EQ(v.find(10)->role, cluster::MemberRole::kBackup);
  EXPECT_EQ(v.find(10)->rank, 4);
  EXPECT_EQ(v.find(12)->rank, 3);
  EXPECT_EQ(cluster::SuccessionPlanner::successor(v, {10}), 10);
  EXPECT_FALSE(cluster::SuccessionPlanner::rejoin(v, 10)) << "idempotent";
}

TEST(VoteLedger, OneCandidatePerIncarnation) {
  cluster::VoteLedger ledger;
  EXPECT_TRUE(ledger.grant(2, 10));
  EXPECT_TRUE(ledger.grant(2, 10)) << "retransmit from same candidate is idempotent";
  EXPECT_FALSE(ledger.grant(2, 11)) << "rival at same incarnation must be refused";
  EXPECT_FALSE(ledger.grant(1, 12)) << "stale incarnation must be refused";
  EXPECT_TRUE(ledger.grant(3, 11)) << "higher incarnation opens a new round";
}

// ---------------------------------------------------------------------
// Deployment-level behaviour.
// ---------------------------------------------------------------------

TEST(Cluster, StartupElectsRankZeroPrimaryWithQuorum) {
  sim::Simulation sim(7001);
  ClusterDeployment dep(sim, standard_options(3));
  sim.run_for(sim::seconds(5));

  EXPECT_EQ(dep.primary_count(), 1);
  EXPECT_EQ(dep.primary_node(), dep.node(0).id()) << "rank 0 must win the startup election";
  for (int i = 1; i < 3; ++i) {
    ASSERT_NE(dep.engine(i), nullptr);
    EXPECT_EQ(dep.engine(i)->role(), Role::kBackup);
  }
  const cluster::MembershipView& view = dep.engine(0)->view();
  ASSERT_NE(view.primary(), nullptr);
  EXPECT_EQ(view.primary()->node, dep.node(0).id());
  EXPECT_GE(sim.counter_value("oftt.takeovers"), 1u);
  // The startup election is not a failure: no failover trace opened.
  EXPECT_TRUE(sim.telemetry().spans().traces().empty());
}

TEST(Cluster, KillingPrimaryPromotesRankOneWithinOneDetectionCycle) {
  sim::Simulation sim(7002);
  ClusterDeploymentOptions opts = standard_options(5);
  ClusterDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  sim::SimTime injected = sim.now();
  dep.node(0).crash();

  // One detection cycle (peer_timeout) + one negotiation cycle (a few
  // heartbeat periods for the PromoteRequest/Ack round trip).
  sim::SimTime bound = opts.engine.peer_timeout + 10 * opts.engine.heartbeat_period;
  while (sim.now() - injected < bound && dep.primary_node() < 0) {
    sim.run_for(sim::milliseconds(1));
  }
  EXPECT_EQ(dep.primary_node(), dep.node(1).id())
      << "rank-1 backup must take over within detection + negotiation";
  EXPECT_EQ(dep.primary_count(), 1);

  // The promotion was quorum-gated and traced, ack-collection included.
  sim.run_for(sim::seconds(2));
  ASSERT_FALSE(sim.telemetry().spans().traces().empty());
  const obs::FailoverTrace& t = sim.telemetry().spans().traces().front();
  EXPECT_EQ(t.node, dep.node(1).id());
  ASSERT_GE(t.quorum_at, 0) << "cluster failover must record the quorum milestone";
  EXPECT_GE(t.phase(obs::FailoverPhase::kAckCollection), 0);
  EXPECT_EQ(t.quorum_needed, 3u);
  EXPECT_GE(t.quorum_votes, 3u);
  // Survivors re-ranked deterministically behind the new primary.
  const cluster::MembershipView& view = dep.engine(1)->view();
  EXPECT_EQ(view.find(dep.node(1).id())->rank, 0);
  EXPECT_EQ(view.find(dep.node(2).id())->rank, 1);
  EXPECT_EQ(view.find(dep.node(0).id())->role, cluster::MemberRole::kDead);
}

TEST(Cluster, MinorityPartitionNeverPromotes) {
  sim::Simulation sim(7003);
  ClusterDeployment dep(sim, standard_options(5));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  // 2/5 minority {node3, node4}; majority keeps the primary and the
  // monitor PC.
  sim.network(0).partition(
      {{dep.node(0).id(), dep.node(1).id(), dep.node(2).id(), dep.monitor_node().id()},
       {dep.node(3).id(), dep.node(4).id()}});

  for (int step = 0; step < 20; ++step) {
    sim.run_for(sim::milliseconds(500));
    EXPECT_EQ(dep.primary_node(), dep.node(0).id());
    EXPECT_EQ(dep.primary_count(), 1);
    EXPECT_NE(dep.engine(3)->role(), Role::kPrimary) << "minority member promoted";
    EXPECT_NE(dep.engine(4)->role(), Role::kPrimary) << "minority member promoted";
  }
  EXPECT_EQ(dep.engine(3)->takeovers(), 0u);
  EXPECT_EQ(dep.engine(4)->takeovers(), 0u);

  sim.network(0).heal();
  sim.run_for(sim::seconds(3));
  EXPECT_EQ(dep.primary_node(), dep.node(0).id());
  EXPECT_EQ(dep.primary_count(), 1);
}

TEST(Cluster, PrimaryInMinorityStepsDownAndMajorityElects) {
  sim::Simulation sim(7004);
  ClusterDeployment dep(sim, standard_options(5));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  // Primary trapped with one backup; the three-member majority side
  // must elect its lowest-ranked member (node2).
  sim.network(0).partition(
      {{dep.node(0).id(), dep.node(1).id()},
       {dep.node(2).id(), dep.node(3).id(), dep.node(4).id(), dep.monitor_node().id()}});
  sim.run_for(sim::seconds(3));

  EXPECT_EQ(dep.engine(2)->role(), Role::kPrimary) << "majority must elect node2";
  EXPECT_NE(dep.engine(0)->role(), Role::kPrimary)
      << "minority primary must step down on quorum loss";
  EXPECT_NE(dep.engine(1)->role(), Role::kPrimary);

  sim.network(0).heal();
  sim.run_for(sim::seconds(3));
  EXPECT_EQ(dep.primary_node(), dep.node(2).id()) << "heal converges on the new incarnation";
  EXPECT_EQ(dep.primary_count(), 1);
}

TEST(Cluster, CascadingDoubleFailureConvergesToSinglePrimary) {
  sim::Simulation sim(7005);
  ClusterDeployment dep(sim, standard_options(5));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  sim::FaultPlan plan(sim);
  plan.crash_node(sim.now() + sim::milliseconds(10), dep.node(0).id());
  // Kill the successor right as its campaign should be in flight
  // (detection at +510ms, promotion shortly after).
  plan.crash_node(sim.now() + sim::milliseconds(560), dep.node(1).id());
  plan.arm();
  sim.run_for(sim::seconds(5));

  EXPECT_EQ(dep.primary_node(), dep.node(2).id())
      << "survivors must converge on the next-ranked member";
  EXPECT_EQ(dep.primary_count(), 1);
  const cluster::MembershipView& view = dep.engine(2)->view();
  EXPECT_EQ(view.find(dep.node(0).id())->role, cluster::MemberRole::kDead);
  EXPECT_EQ(view.find(dep.node(1).id())->role, cluster::MemberRole::kDead);
  // Still quorate: 3 live of 5.
  EXPECT_EQ(dep.engine(2)->role(), Role::kPrimary);
}

TEST(Cluster, CheckpointsFanOutToAllBackupsAndStateSurvivesFailover) {
  sim::Simulation sim(7006);
  ClusterDeployment dep(sim, standard_options(3));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  Ftim* primary_ftim = dep.ftim_on(dep.node(0));
  ASSERT_NE(primary_ftim, nullptr);
  ASSERT_EQ(primary_ftim->checkpoint_peers().size(), 2u)
      << "cluster FTIM must target every other replica";
  EXPECT_GT(primary_ftim->acked_by(dep.node(1).id()), 0u);
  EXPECT_GT(primary_ftim->acked_by(dep.node(2).id()), 0u);
  EXPECT_GT(primary_ftim->min_acked_seq(), 0u);

  std::int64_t count_before = CounterApp::find(dep.node(0))->count();
  EXPECT_GT(count_before, 0);
  dep.node(0).crash();
  sim.run_for(sim::seconds(3));

  int primary = dep.primary_node();
  ASSERT_EQ(primary, dep.node(1).id());
  CounterApp* app = CounterApp::find(*dep.node_by_id(primary));
  ASSERT_NE(app, nullptr);
  EXPECT_GT(app->count(), count_before - 15)
      << "restored state must be within ~one checkpoint period of the lost primary";

  // The remaining backup keeps receiving checkpoints from the NEW
  // primary (ack path follows the sender, not a static peer).
  std::uint64_t acked = dep.ftim_on(*dep.node_by_id(primary))->acked_by(dep.node(2).id());
  EXPECT_GT(acked, 0u);
}

TEST(Cluster, RebootedPrimaryRejoinsAsLowestRankedBackup) {
  sim::Simulation sim(7007);
  ClusterDeployment dep(sim, standard_options(3));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  dep.node(0).crash();
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node(1).id());

  dep.node(0).boot();
  sim.run_for(sim::seconds(3));
  EXPECT_EQ(dep.primary_node(), dep.node(1).id()) << "rejoin must not disturb the primary";
  EXPECT_EQ(dep.engine(0)->role(), Role::kBackup);
  const cluster::MembershipView& view = dep.engine(1)->view();
  EXPECT_EQ(view.find(dep.node(0).id())->role, cluster::MemberRole::kBackup);
  EXPECT_EQ(view.find(dep.node(0).id())->rank, 2) << "readmitted at the back of the line";
}

TEST(Cluster, TwoReplicaClusterDegradesToPairBehaviour) {
  sim::Simulation sim(7008);
  ClusterDeployment dep(sim, standard_options(2));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  dep.node(0).crash();
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(dep.primary_node(), dep.node(1).id())
      << "N=2 quorum is 1: the survivor promotes on its own vote";
  EXPECT_EQ(dep.primary_count(), 1);
}

TEST(Cluster, OperatorSwitchoverHandsOffToRankOne) {
  sim::Simulation sim(7009);
  ClusterDeployment dep(sim, standard_options(3));
  sim.run_for(sim::seconds(5));
  ASSERT_EQ(dep.primary_node(), dep.node(0).id());

  EXPECT_EQ(dep.engine(0)->request_switchover("maintenance"), S_OK);
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(dep.primary_node(), dep.node(1).id());
  EXPECT_EQ(dep.primary_count(), 1);
  EXPECT_EQ(dep.engine(0)->role(), Role::kBackup);
}

TEST(Cluster, MonitorRendersMembershipView) {
  sim::Simulation sim(7010);
  ClusterDeployment dep(sim, standard_options(3));
  sim.run_for(sim::seconds(5));

  SystemMonitor* mon = dep.monitor();
  ASSERT_NE(mon, nullptr);
  const cluster::MembershipView* view = mon->membership_of("unit");
  ASSERT_NE(view, nullptr) << "StatusReports must carry the view to the monitor";
  ASSERT_NE(view->primary(), nullptr);
  EXPECT_EQ(view->primary()->node, dep.node(0).id());
  std::string board = mon->render();
  EXPECT_NE(board.find("membership"), std::string::npos) << board;
  EXPECT_NE(board.find("rank 0"), std::string::npos) << board;
  EXPECT_EQ(mon->primary_of("unit"), dep.node(0).id());
}

// ---------------------------------------------------------------------
// Determinism: identical seeds must yield byte-identical telemetry,
// ack-collection phase included.
// ---------------------------------------------------------------------

std::string run_failover_and_export(std::uint64_t seed) {
  sim::Simulation sim(seed);
  ClusterDeploymentOptions opts = standard_options(5);
  opts.with_diverter = true;
  ClusterDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  dep.node(0).crash();
  sim.run_for(sim::seconds(10));
  return obs::export_json(sim.telemetry(), /*include_history=*/true);
}

TEST(Cluster, IdenticalSeedsYieldByteIdenticalFailoverTraces) {
  std::string a = run_failover_and_export(4242);
  std::string b = run_failover_and_export(4242);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"quorum_at_ns\""), std::string::npos)
      << "exported traces must include the quorum milestone";
  EXPECT_NE(a.find("\"ack_collection\""), std::string::npos)
      << "exported traces must include the ack-collection phase";
  std::string c = run_failover_and_export(4243);
  EXPECT_NE(a, c) << "different seeds should differ somewhere";
}

// ---------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------

TEST(ClusterValidation, RejectsNonsensicalConfigs) {
  sim::Simulation sim(7011);
  {
    ClusterDeploymentOptions opts;
    opts.replicas = 1;
    EXPECT_THROW(ClusterDeployment(sim, opts), std::invalid_argument);
  }
  {
    ClusterDeploymentOptions opts;
    opts.engine.heartbeat_period = 0;
    EXPECT_THROW(ClusterDeployment(sim, opts), std::invalid_argument);
  }
  {
    sim::Node& lone = sim.add_node("lone");
    lone.boot();
    OfttConfig cfg;
    cfg.peer_node = lone.id();  // its own backup
    EXPECT_THROW(Engine::install(lone, cfg), std::invalid_argument);
    OfttConfig dup;
    dup.cluster_nodes = {lone.id(), lone.id()};
    EXPECT_THROW(Engine::install(lone, dup), std::invalid_argument);
    OfttConfig absent;
    absent.cluster_nodes = {lone.id() + 1, lone.id() + 2};
    EXPECT_THROW(Engine::install(lone, absent), std::invalid_argument);
  }
}

}  // namespace
}  // namespace oftt::core
