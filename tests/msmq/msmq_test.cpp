// MSMQ tests: local delivery, store-and-forward with ACK/retry, route
// re-resolution (the diverter hook), dedup, redelivery after subscriber
// crash, dead-lettering, and recoverable-message persistence.
#include <gtest/gtest.h>

#include "msmq/queue_manager.h"
#include "sim/simulation.h"

namespace oftt::msmq {
namespace {

class MsmqTest : public ::testing::Test {
 protected:
  MsmqTest() : sim_(11) {
    a_ = &sim_.add_node("a");
    b_ = &sim_.add_node("b");
    auto& net = sim_.add_network("lan");
    net.attach(a_->id());
    net.attach(b_->id());
    a_->set_boot_script([](sim::Node& n) { QueueManager::install(n); });
    b_->set_boot_script([](sim::Node& n) { QueueManager::install(n); });
    a_->boot();
    b_->boot();
  }

  QueueManager* qm(sim::Node& n) { return QueueManager::find(n); }

  sim::Simulation sim_;
  sim::Node* a_;
  sim::Node* b_;
};

TEST_F(MsmqTest, LocalQueueDeliversToSubscriber) {
  auto app = a_->start_process("app", nullptr);
  std::vector<std::string> got;
  MsmqApi::of(*app).subscribe("inbox", [&](const Message& m) { got.push_back(m.label); });
  MsmqApi::of(*app).send("inbox", "hello", Buffer{1, 2});
  sim_.run_for(sim::milliseconds(50));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hello");
}

TEST_F(MsmqTest, SubscribeAfterSendStillDelivers) {
  auto app = a_->start_process("app", nullptr);
  MsmqApi::of(*app).send("inbox", "early", Buffer{});
  sim_.run_for(sim::milliseconds(50));
  std::vector<std::string> got;
  MsmqApi::of(*app).subscribe("inbox", [&](const Message& m) { got.push_back(m.label); });
  sim_.run_for(sim::milliseconds(50));
  ASSERT_EQ(got.size(), 1u);
}

TEST_F(MsmqTest, CrossNodeTransferWithAck) {
  auto sender = a_->start_process("src", nullptr);
  auto receiver = b_->start_process("dst", nullptr);
  qm(*a_)->set_route("remote_inbox", b_->id());
  int got = 0;
  MsmqApi::of(*receiver).subscribe("remote_inbox", [&](const Message&) { ++got; });
  for (int i = 0; i < 10; ++i) MsmqApi::of(*sender).send("remote_inbox", "m", Buffer{});
  sim_.run_for(sim::milliseconds(500));
  EXPECT_EQ(got, 10);
  EXPECT_EQ(qm(*a_)->outgoing_depth(), 0u) << "all transfers acked";
}

TEST_F(MsmqTest, UnreachableDestinationRetriesUntilNodeReturns) {
  auto sender = a_->start_process("src", nullptr);
  qm(*a_)->set_route("inbox", b_->id());
  b_->crash();
  MsmqApi::of(*sender).send("inbox", "persistent", Buffer{});
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(qm(*a_)->outgoing_depth(), 1u) << "message held for retry";
  EXPECT_GT(qm(*a_)->retries(), 0u);

  b_->boot();
  auto receiver = b_->start_process("dst", nullptr);
  int got = 0;
  MsmqApi::of(*receiver).subscribe("inbox", [&](const Message&) { ++got; });
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(qm(*a_)->outgoing_depth(), 0u);
}

TEST_F(MsmqTest, RouteChangeMidRetryRedirectsDelivery) {
  // The diverter scenario: destination dies, route repointed, queued
  // messages chase the new primary.
  sim::Node* c = &sim_.add_node("c");
  sim_.network(0).attach(c->id());
  c->set_boot_script([](sim::Node& n) { QueueManager::install(n); });
  c->boot();

  auto sender = a_->start_process("src", nullptr);
  qm(*a_)->set_route("inbox", b_->id());
  b_->crash();
  for (int i = 0; i < 5; ++i) MsmqApi::of(*sender).send("inbox", "m", Buffer{});
  sim_.run_for(sim::milliseconds(500));
  EXPECT_EQ(qm(*a_)->outgoing_depth(), 5u);

  qm(*a_)->set_route("inbox", c->id());
  int got = 0;
  auto receiver = c->start_process("dst", nullptr);
  MsmqApi::of(*receiver).subscribe("inbox", [&](const Message&) { ++got; });
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(got, 5) << "non-delivery detected and retried to the new destination";
}

TEST_F(MsmqTest, LossyNetworkStillDeliversExactlyOnce) {
  sim_.network(0).set_loss(0.3);
  auto sender = a_->start_process("src", nullptr);
  auto receiver = b_->start_process("dst", nullptr);
  qm(*a_)->set_route("inbox", b_->id());
  int got = 0;
  MsmqApi::of(*receiver).subscribe("inbox", [&](const Message&) { ++got; });
  for (int i = 0; i < 50; ++i) MsmqApi::of(*sender).send("inbox", "m", Buffer{});
  sim_.run_for(sim::seconds(10));
  EXPECT_EQ(got, 50) << "retry must defeat loss, dedup must defeat retry";
}

TEST_F(MsmqTest, DuplicateTransfersAreDropped) {
  sim_.network(0).set_loss(0.5);  // many lost acks -> many retransmits
  auto sender = a_->start_process("src", nullptr);
  auto receiver = b_->start_process("dst", nullptr);
  qm(*a_)->set_route("inbox", b_->id());
  int got = 0;
  MsmqApi::of(*receiver).subscribe("inbox", [&](const Message&) { ++got; });
  for (int i = 0; i < 20; ++i) MsmqApi::of(*sender).send("inbox", "m", Buffer{});
  sim_.run_for(sim::seconds(20));
  EXPECT_EQ(got, 20);
  EXPECT_GT(qm(*b_)->duplicates_dropped(), 0u);
}

TEST_F(MsmqTest, TtlExhaustionDeadLetters) {
  auto sender = a_->start_process("src", nullptr);
  qm(*a_)->config().time_to_reach_queue = sim::milliseconds(500);
  qm(*a_)->set_route("inbox", b_->id());
  b_->crash();
  MsmqApi::of(*sender).send("inbox", "doomed", Buffer{});
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(qm(*a_)->outgoing_depth(), 0u);
  EXPECT_EQ(qm(*a_)->dead_letter_count(), 1u);
  EXPECT_GT(sim_.counter_value("msmq.dead_lettered"), 0u);
}

TEST_F(MsmqTest, SubscriberCrashCausesRedeliveryToRestartedApp) {
  auto app = a_->start_process("app", nullptr);
  int first_got = 0;
  MsmqApi::of(*app).subscribe("inbox", [&](const Message&) { ++first_got; });
  MsmqApi::of(*app).send("inbox", "m", Buffer{});
  // The delivery is in flight when the app dies: it never reaches the
  // handler, so the queue manager holds it unacked.
  app->kill("crash before processing");
  sim_.run_for(sim::milliseconds(300));
  EXPECT_EQ(first_got, 0);

  // A restarted app re-subscribes and the unacked message is redelivered.
  auto app2 = a_->start_process("app2", nullptr);
  int second_got = 0;
  MsmqApi::of(*app2).subscribe("inbox", [&](const Message&) { ++second_got; });
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(second_got, 1) << "unacked delivery must be redelivered";
}

TEST_F(MsmqTest, HungSubscriberAccumulatesUnackedThenRedelivery) {
  auto app = a_->start_process("app", nullptr);
  int got = 0;
  MsmqApi::of(*app).subscribe("inbox", [&](const Message&) { ++got; });
  app->main_strand().hang();  // app wedged: deliveries dropped, no acks
  for (int i = 0; i < 3; ++i) MsmqApi::of(*app).send("inbox", "m", Buffer{});
  sim_.run_for(sim::milliseconds(300));
  EXPECT_EQ(got, 0);

  // Hung apps cannot even send; inject via a sibling process instead.
  auto helper = a_->start_process("helper", nullptr);
  MsmqApi::of(*helper).send("inbox", "m", Buffer{});
  sim_.run_for(sim::milliseconds(300));
  EXPECT_EQ(got, 0);
  EXPECT_GE(qm(*a_)->local_depth("inbox"), 1u);

  app->main_strand().unhang();
  sim_.run_for(sim::seconds(1));
  EXPECT_GE(got, 1) << "redelivery reaches the recovered app";
}

TEST_F(MsmqTest, RecoverableMessagesSurviveNodeReboot) {
  auto sender = a_->start_process("src", nullptr);
  qm(*a_)->set_route("inbox", b_->id());
  b_->crash();  // destination down: messages park in outgoing store
  for (int i = 0; i < 3; ++i) {
    MsmqApi::of(*sender).send("inbox", "durable", Buffer{}, DeliveryMode::kRecoverable);
  }
  sim_.run_for(sim::milliseconds(300));
  ASSERT_EQ(qm(*a_)->outgoing_depth(), 3u);

  // Sender node power-cycles; the recoverable outgoing store must
  // reload from disk and delivery must complete once B returns.
  a_->crash();
  a_->boot();
  qm(*a_)->set_route("inbox", b_->id());
  EXPECT_EQ(qm(*a_)->outgoing_depth(), 3u) << "restored from disk";

  b_->boot();
  auto receiver = b_->start_process("dst", nullptr);
  int got = 0;
  MsmqApi::of(*receiver).subscribe("inbox", [&](const Message&) { ++got; });
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(got, 3);
}

TEST_F(MsmqTest, ExpressMessagesDoNotSurviveReboot) {
  auto sender = a_->start_process("src", nullptr);
  qm(*a_)->set_route("inbox", b_->id());
  b_->crash();
  MsmqApi::of(*sender).send("inbox", "volatile", Buffer{}, DeliveryMode::kExpress);
  sim_.run_for(sim::milliseconds(300));
  ASSERT_EQ(qm(*a_)->outgoing_depth(), 1u);
  a_->crash();
  a_->boot();
  EXPECT_EQ(qm(*a_)->outgoing_depth(), 0u) << "express messages are memory-only";
}

TEST_F(MsmqTest, MessageIdsUniqueAcrossReboot) {
  // Boot-generation bits keep post-reboot ids from colliding with
  // pre-reboot ids (which may still be in peers' dedup sets).
  auto app = a_->start_process("app", nullptr);
  auto receiver = b_->start_process("dst", nullptr);
  qm(*a_)->set_route("inbox", b_->id());
  int got = 0;
  MsmqApi::of(*receiver).subscribe("inbox", [&](const Message&) { ++got; });
  MsmqApi::of(*app).send("inbox", "pre", Buffer{});
  sim_.run_for(sim::milliseconds(300));
  a_->crash();
  a_->boot();
  auto app2 = a_->start_process("app", nullptr);
  qm(*a_)->set_route("inbox", b_->id());
  MsmqApi::of(*app2).send("inbox", "post", Buffer{});
  sim_.run_for(sim::milliseconds(500));
  EXPECT_EQ(got, 2) << "post-reboot message must not be treated as a duplicate";
}

TEST_F(MsmqTest, MessageMarshalRoundTrip) {
  Message m;
  m.id = 0x00010000000000ABull;
  m.src_node = 3;
  m.queue = "inbox";
  m.label = "label";
  m.body = {1, 2, 3};
  m.mode = DeliveryMode::kRecoverable;
  m.enqueued_at = sim::seconds(5);
  BinaryWriter w;
  m.marshal(w);
  Buffer b = std::move(w).take();
  BinaryReader r(b);
  Message out = Message::unmarshal(r);
  EXPECT_EQ(out.id, m.id);
  EXPECT_EQ(out.queue, "inbox");
  EXPECT_EQ(out.body, m.body);
  EXPECT_EQ(out.mode, DeliveryMode::kRecoverable);
}

}  // namespace
}  // namespace oftt::msmq
