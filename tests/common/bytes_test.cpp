// Serialization round-trips and defensive-reader behaviour. Every wire
// format in the system sits on these primitives.
#include <gtest/gtest.h>

#include <limits>

#include "common/bytes.h"
#include "common/guid.h"

namespace oftt {
namespace {

TEST(BinaryRoundTrip, Integers) {
  BinaryWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(std::numeric_limits<std::int64_t>::min());
  Buffer b = std::move(w).take();

  BinaryReader r(b);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(r.at_end());
  EXPECT_FALSE(r.failed());
}

TEST(BinaryRoundTrip, Doubles) {
  BinaryWriter w;
  w.f64(3.14159);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  Buffer b = std::move(w).take();
  BinaryReader r(b);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
}

TEST(BinaryRoundTrip, StringsAndBlobs) {
  BinaryWriter w;
  w.str("");
  w.str("hello OPC");
  w.str(std::string(10000, 'x'));
  w.blob(Buffer{1, 2, 3});
  Buffer b = std::move(w).take();
  BinaryReader r(b);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello OPC");
  EXPECT_EQ(r.str(), std::string(10000, 'x'));
  EXPECT_EQ(r.blob(), (Buffer{1, 2, 3}));
  EXPECT_FALSE(r.failed());
}

TEST(BinaryRoundTrip, EmbeddedNulBytesInStrings) {
  BinaryWriter w;
  std::string s("a\0b", 3);
  w.str(s);
  Buffer b = std::move(w).take();
  BinaryReader r(b);
  EXPECT_EQ(r.str(), s);
}

TEST(BinaryReader, TruncationSetsFailedInsteadOfCrashing) {
  BinaryWriter w;
  w.u64(7);
  Buffer b = std::move(w).take();
  b.resize(3);  // truncate mid-integer
  BinaryReader r(b);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_TRUE(r.failed());
  // Subsequent reads stay safe and zero-valued.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.failed());
}

TEST(BinaryReader, LyingLengthPrefixIsRejected) {
  BinaryWriter w;
  w.u32(0xFFFFFF);  // claims a 16 MiB string follows
  Buffer b = std::move(w).take();
  BinaryReader r(b);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.failed());
}

TEST(BinaryReader, RemainingTracksPosition) {
  BinaryWriter w;
  w.u32(1);
  w.u32(2);
  Buffer b = std::move(w).take();
  BinaryReader r(b);
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_TRUE(r.at_end());
}

TEST(Fnv64, StableAndSensitive) {
  Buffer a{1, 2, 3};
  Buffer b{1, 2, 4};
  EXPECT_EQ(fnv64(a), fnv64(a));
  EXPECT_NE(fnv64(a), fnv64(b));
  EXPECT_NE(fnv64(a), fnv64(Buffer{}));
}

TEST(Guid, FromNameIsDeterministicAndDistinct) {
  Guid a = Guid::from_name("IID_IOPCServer");
  Guid b = Guid::from_name("IID_IOPCServer");
  Guid c = Guid::from_name("IID_IOPCGroup");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.is_null());
}

TEST(Guid, ToStringParsesBack) {
  Guid a = Guid::from_name("CLSID_CallTrack");
  EXPECT_EQ(Guid::parse(a.to_string()), a);
  // Braces optional.
  std::string s = a.to_string();
  EXPECT_EQ(Guid::parse(s.substr(1, s.size() - 2)), a);
}

TEST(Guid, ParseRejectsMalformed) {
  EXPECT_TRUE(Guid::parse("not-a-guid").is_null());
  EXPECT_TRUE(Guid::parse("{1234}").is_null());
  EXPECT_TRUE(Guid::parse("").is_null());
  // Wrong length (one hex digit short).
  EXPECT_TRUE(Guid::parse("{0000000-0000-0000-0000-000000000000}").is_null());
}

TEST(Guid, HashSpreads) {
  GuidHash h;
  EXPECT_NE(h(Guid::from_name("a")), h(Guid::from_name("b")));
}

TEST(Guid, OrderingIsTotal) {
  Guid a = Guid::from_name("a");
  Guid b = Guid::from_name("b");
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_TRUE(a == a);
}

}  // namespace
}  // namespace oftt
