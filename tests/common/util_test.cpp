// Tests for the small common utilities: strings, HRESULT rendering,
// and the logger plumbing.
#include <gtest/gtest.h>

#include "common/hresult.h"
#include "common/logging.h"
#include "common/strings.h"

namespace oftt {
namespace {

TEST(Strings, Cat) {
  EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(cat(), "");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("oftt.engine", "oftt."));
  EXPECT_FALSE(starts_with("oftt", "oftt.engine"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("OPC Server"), "opc server"); }

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1024), "1.0 KiB");
  EXPECT_EQ(human_bytes(1536), "1.5 KiB");
  EXPECT_EQ(human_bytes(1 << 20), "1.0 MiB");
  EXPECT_EQ(human_bytes(std::uint64_t{3} << 30), "3.0 GiB");
}

TEST(Hresult, SeverityAndMacros) {
  EXPECT_TRUE(SUCCEEDED(S_OK));
  EXPECT_TRUE(SUCCEEDED(S_FALSE));
  EXPECT_TRUE(FAILED(E_FAIL));
  EXPECT_TRUE(FAILED(OFTT_E_NOT_PRIMARY));
  EXPECT_FALSE(FAILED(S_OK));
}

TEST(Hresult, FacilityLayout) {
  EXPECT_EQ(hresult_facility(OFTT_E_NO_PEER), FACILITY_OFTT);
  EXPECT_EQ(hresult_code(OFTT_E_NO_PEER), 0x003u);
  HRESULT custom = make_hresult(1, FACILITY_OFTT, 0x42);
  EXPECT_TRUE(FAILED(custom));
  EXPECT_EQ(hresult_code(custom), 0x42u);
}

TEST(Hresult, ToStringKnownAndUnknown) {
  EXPECT_EQ(hresult_to_string(S_OK), "S_OK");
  EXPECT_EQ(hresult_to_string(RPC_E_TIMEOUT), "RPC_E_TIMEOUT");
  EXPECT_EQ(hresult_to_string(OFTT_E_CHECKPOINT_FAILED), "OFTT_E_CHECKPOINT_FAILED");
  EXPECT_EQ(hresult_to_string(static_cast<HRESULT>(0x87654321)), "HRESULT(0x87654321)");
}

TEST(Logging, SinkReceivesRecordsAtOrAboveLevel) {
  auto& logger = Logger::instance();
  LogLevel old_level = logger.level();
  std::vector<LogRecord> records;
  auto old_sink = logger.set_sink([&](const LogRecord& r) { records.push_back(r); });
  logger.set_level(LogLevel::kWarn);

  OFTT_LOG_DEBUG("test", "below threshold");
  OFTT_LOG_WARN("test", "warned ", 42);
  OFTT_LOG_ERROR("test/sub", "boom");

  logger.set_sink(std::move(old_sink));
  logger.set_level(old_level);

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, LogLevel::kWarn);
  EXPECT_EQ(records[0].message, "warned 42");
  EXPECT_EQ(records[1].component, "test/sub");
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace oftt
