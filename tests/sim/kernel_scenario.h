// A fixed, kernel-exercising scenario whose entire event history is
// folded into one FNV-1a hash. The hash for seed 42 was captured on the
// pre-pool kernel (shared_ptr tombstones + std::function heap) and is
// pinned in kernel_test.cpp: the slab-pool/timer-wheel kernel must
// reproduce it bit for bit. Determinism is the contract — the kernel
// rewrite may only change what an event costs, never when it fires.
//
// The scenario deliberately crosses every kernel lane: strand-gated
// periodic timers (wheel), lossy/duplicating network delivery (wheel,
// short latencies), long-delay fault injections and reboots (heap),
// cancels that win and cancels that lose the race against firing, and
// strand hangs (liveness gating at dispatch).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/fault_plan.h"
#include "sim/simulation.h"
#include "sim/timer.h"

namespace oftt::sim::testhash {

inline void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
}

inline std::uint64_t kernel_scenario_hash(std::uint64_t seed) {
  Simulation sim(seed);
  std::uint64_t h = 14695981039346656037ull;

  Network& net = sim.add_network("lan");
  net.set_latency(milliseconds(1), milliseconds(5));
  net.set_loss(0.2);
  net.set_duplicate(0.1);

  constexpr int kNodes = 3;
  struct App {
    explicit App(Process& p) : ticker(p.main_strand()), aux(nullptr) {}
    PeriodicTimer ticker;
    std::unique_ptr<PeriodicTimer> aux;
  };
  for (int n = 0; n < kNodes; ++n) {
    Node& node = sim.add_node("n" + std::to_string(n));
    net.attach(node.id());
    node.set_boot_script([&sim, &h](Node& self) {
      const int dst = (self.id() + 1) % kNodes;
      self.start_process("app", [&sim, &h, dst](Process& p) {
        auto app = std::make_shared<App>(p);
        p.bind("x", [&h, &sim](const Datagram& d) {
          fold(h, static_cast<std::uint64_t>(sim.now()) * 3 + d.payload.size());
        });
        app->ticker.start(milliseconds(10), [&h, &sim, &p, dst] {
          fold(h, static_cast<std::uint64_t>(sim.now()));
          p.send(0, dst, "x", Buffer{1, 2, 3}, "x");
        });
        Strand& aux_strand = p.create_strand("aux");
        app->aux = std::make_unique<PeriodicTimer>(aux_strand);
        app->aux->start(milliseconds(37), [&h, &sim] {
          fold(h, static_cast<std::uint64_t>(sim.now()) ^ 0x55);
        });
        p.add_component(std::move(app));
      });
    });
    node.boot();
  }

  // Cancel races: a driver every 50 ms schedules a 30 ms "timeout" and
  // a canceller; on even rounds the cancel (at +10 ms) beats the fire,
  // on odd rounds it loses (at +40 ms) and must be a harmless no-op.
  auto round = std::make_shared<int>(0);
  auto driver = std::make_shared<std::function<void()>>();
  *driver = [&sim, &h, round, driver] {
    fold(h, static_cast<std::uint64_t>(sim.now()) + 17);
    EventHandle timeout = sim.schedule_after(milliseconds(30), [&sim, &h] {
      fold(h, static_cast<std::uint64_t>(sim.now()) ^ 0x77);
    });
    SimTime cancel_at = (*round % 2 == 0) ? milliseconds(10) : milliseconds(40);
    sim.schedule_after(cancel_at, [&sim, &h, timeout]() mutable {
      fold(h, timeout.valid() ? 0xC1 : 0xC0);
      sim.cancel(timeout);
    });
    ++*round;
    sim.schedule_after(milliseconds(50), [driver] { (*driver)(); });
  };
  sim.schedule_after(milliseconds(25), [driver] { (*driver)(); });

  FaultPlan plan(sim);
  plan.os_crash(seconds(2), 1, /*reboot_after=*/seconds(1));
  plan.crash_node(seconds(4), 2);
  plan.boot_node(seconds(5), 2);
  plan.hang_strand(seconds(6), 0, "app", "aux");
  plan.link(seconds(7), 0, 0, 1, /*up=*/false);
  plan.link(milliseconds(7800), 0, 0, 1, /*up=*/true);
  plan.arm();

  sim.run_until(seconds(10));

  for (const auto& inj : plan.journal()) fold(h, static_cast<std::uint64_t>(inj.at));
  fold(h, net.delivered());
  fold(h, net.dropped());
  for (int n = 0; n < kNodes; ++n) {
    fold(h, static_cast<std::uint64_t>(sim.node(n).boot_count()));
  }
  return h;
}

}  // namespace oftt::sim::testhash
