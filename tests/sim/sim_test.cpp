// Simulation-kernel tests: event ordering, cancellation, strand/process
// lifecycle, timers, and determinism.
#include <gtest/gtest.h>

#include "sim/disk.h"
#include "sim/fault_plan.h"
#include "sim/simulation.h"
#include "sim/timer.h"

namespace oftt::sim {
namespace {

TEST(EventQueue, FiresInTimeOrderWithFifoTies) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(milliseconds(10), [&] { order.push_back(2); });
  sim.schedule_at(milliseconds(5), [&] { order.push_back(1); });
  sim.schedule_at(milliseconds(10), [&] { order.push_back(3); });  // same time: FIFO
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(10));
}

TEST(EventQueue, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(milliseconds(1), [&] { fired = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(h.valid());
}

TEST(EventQueue, EventsScheduledDuringEventsRun) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(milliseconds(1), recurse);
  };
  sim.schedule_after(milliseconds(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), milliseconds(5));
}

TEST(Simulation, RunUntilAdvancesClockEvenWhenIdle) {
  Simulation sim;
  sim.run_until(seconds(3));
  EXPECT_EQ(sim.now(), seconds(3));
}

TEST(Simulation, RunForIsRelative) {
  Simulation sim;
  sim.run_for(seconds(1));
  sim.run_for(seconds(1));
  EXPECT_EQ(sim.now(), seconds(2));
}

TEST(Process, KilledProcessEventsDoNotFire) {
  Simulation sim;
  Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("p", nullptr);
  int fired = 0;
  proc->schedule_after(milliseconds(10), [&] { ++fired; });
  proc->kill("test");
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(proc->alive());
}

TEST(Process, HungStrandDropsEventsButProcessStaysAlive) {
  Simulation sim;
  Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("p", nullptr);
  int main_fired = 0, ftim_fired = 0;
  Strand& ftim = proc->create_strand("ftim");
  proc->schedule_after(milliseconds(10), [&] { ++main_fired; });
  ftim.schedule_after(milliseconds(10), [&] { ++ftim_fired; });
  proc->main_strand().hang();
  sim.run();
  EXPECT_EQ(main_fired, 0) << "hung strand must not execute";
  EXPECT_EQ(ftim_fired, 1) << "other threads in the process keep running";
  EXPECT_TRUE(proc->alive());
}

TEST(Process, ComponentsDestroyedOnKillInReverseOrder) {
  Simulation sim;
  Node& node = sim.add_node("n");
  node.boot();
  std::vector<int> destroyed;
  struct Tracker {
    Tracker(std::vector<int>* log, int id) : log_(log), id_(id) {}
    ~Tracker() { log_->push_back(id_); }
    std::vector<int>* log_;
    int id_;
  };
  auto proc = node.start_process("p", [&](Process& p) {
    p.add_component(std::make_shared<Tracker>(&destroyed, 1));
    p.add_component(std::make_shared<Tracker>(&destroyed, 2));
  });
  proc->kill("test");
  EXPECT_EQ(destroyed, (std::vector<int>{2, 1}));
}

TEST(Process, ExitSelfDefersDestruction) {
  Simulation sim;
  Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("p", nullptr);
  proc->schedule_after(milliseconds(1), [&] {
    proc->exit_self("done");
    // Still alive within our own frame.
    EXPECT_TRUE(proc->alive());
  });
  sim.run();
  EXPECT_FALSE(proc->alive());
}

TEST(Process, ExitListenersRun) {
  Simulation sim;
  Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("p", nullptr);
  std::string reason;
  proc->on_exit([&](const std::string& r) { reason = r; });
  proc->kill("segfault");
  EXPECT_EQ(reason, "segfault");
}

TEST(Node, CrashKillsEverythingAndBlocksDelivery) {
  Simulation sim;
  Node& node = sim.add_node("n");
  Network& net = sim.add_network("lan");
  net.attach(node.id());
  node.boot();
  auto proc = node.start_process("p", nullptr);
  int received = 0;
  proc->bind("port", [&](const Datagram&) { ++received; });
  node.crash();
  EXPECT_FALSE(node.up());
  EXPECT_FALSE(proc->alive());
  EXPECT_EQ(node.last_failure(), NodeFailureKind::kPowerFailure);

  Datagram d;
  d.dst_node = node.id();
  d.dst_port = "port";
  node.deliver(d);
  EXPECT_EQ(received, 0);
}

TEST(Node, RebootRunsBootScriptAgain) {
  Simulation sim;
  Node& node = sim.add_node("n");
  int boots = 0;
  node.set_boot_script([&](Node&) { ++boots; });
  node.boot();
  node.os_crash(milliseconds(100));
  EXPECT_FALSE(node.up());
  EXPECT_EQ(node.last_failure(), NodeFailureKind::kOsCrash);
  sim.run_for(milliseconds(200));
  EXPECT_TRUE(node.up());
  EXPECT_EQ(boots, 2);
  EXPECT_EQ(node.boot_count(), 2);
}

TEST(Node, RestartProcessCreatesFreshInstance) {
  Simulation sim;
  Node& node = sim.add_node("n");
  node.boot();
  int instances = 0;
  node.start_process("app", [&](Process&) { ++instances; });
  auto old_proc = node.find_process("app");
  auto new_proc = node.restart_process("app");
  EXPECT_EQ(instances, 2);
  EXPECT_FALSE(old_proc->alive());
  EXPECT_TRUE(new_proc->alive());
  EXPECT_NE(old_proc->pid(), new_proc->pid());
}

TEST(Network, DeliversWithLatencyInRange) {
  Simulation sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  Network& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  net.set_latency(milliseconds(1), milliseconds(2));
  a.boot();
  b.boot();
  auto pa = a.start_process("p", nullptr);
  auto pb = b.start_process("p", nullptr);
  SimTime arrival = -1;
  pb->bind("x", [&](const Datagram& d) {
    arrival = sim.now();
    EXPECT_EQ(d.src_node, a.id());
  });
  pa->send(0, b.id(), "x", Buffer{1});
  sim.run();
  ASSERT_GE(arrival, milliseconds(1));
  ASSERT_LE(arrival, milliseconds(2));
  EXPECT_EQ(net.delivered(), 1u);
}

TEST(Network, LossDropsApproximatelyTheConfiguredFraction) {
  Simulation sim(7);
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  Network& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  net.set_loss(0.3);
  a.boot();
  b.boot();
  auto pa = a.start_process("p", nullptr);
  auto pb = b.start_process("p", nullptr);
  int received = 0;
  pb->bind("x", [&](const Datagram&) { ++received; });
  for (int i = 0; i < 1000; ++i) pa->send(0, b.id(), "x", Buffer{});
  sim.run();
  EXPECT_NEAR(received, 700, 60);
  EXPECT_EQ(net.dropped() + static_cast<std::uint64_t>(received), 1000u);
}

TEST(Network, PartitionBlocksCrossGroupTraffic) {
  Simulation sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  Node& c = sim.add_node("c");
  Network& net = sim.add_network("lan");
  for (auto* n : {&a, &b, &c}) {
    net.attach(n->id());
    n->boot();
  }
  auto pa = a.start_process("p", nullptr);
  int b_got = 0, c_got = 0;
  b.start_process("p", nullptr)->bind("x", [&](const Datagram&) { ++b_got; });
  c.start_process("p", nullptr)->bind("x", [&](const Datagram&) { ++c_got; });

  net.partition({{a.id(), b.id()}, {c.id()}});
  pa->send(0, b.id(), "x", Buffer{});
  pa->send(0, c.id(), "x", Buffer{});
  sim.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);

  net.heal();
  pa->send(0, c.id(), "x", Buffer{});
  sim.run();
  EXPECT_EQ(c_got, 1);
}

TEST(Network, PerLinkFailure) {
  Simulation sim;
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  Network& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  a.boot();
  b.boot();
  auto pa = a.start_process("p", nullptr);
  int got = 0;
  b.start_process("p", nullptr)->bind("x", [&](const Datagram&) { ++got; });
  net.set_link(a.id(), b.id(), false);
  pa->send(0, b.id(), "x", Buffer{});
  sim.run();
  EXPECT_EQ(got, 0);
  net.set_link(a.id(), b.id(), true);
  pa->send(0, b.id(), "x", Buffer{});
  sim.run();
  EXPECT_EQ(got, 1);
}

TEST(Network, GilbertElliottBurstLossDropsInBursts) {
  Simulation sim(11);
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  Network& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  a.boot();
  b.boot();
  auto pa = a.start_process("p", nullptr);
  int received = 0;
  b.start_process("p", nullptr)->bind("x", [&](const Datagram&) { ++received; });

  // Good state lossless, Bad state a blackout. Stationary Bad fraction
  // = p_enter / (p_enter + p_exit) = 0.2.
  net.set_burst_loss(/*p_enter=*/0.05, /*p_exit=*/0.2, /*loss_good=*/0.0,
                     /*loss_bad=*/1.0);
  EXPECT_TRUE(net.burst_loss_enabled());
  const int kSends = 4000;
  for (int i = 0; i < kSends; ++i) pa->send(0, b.id(), "x", Buffer{});
  sim.run();
  EXPECT_EQ(net.burst_dropped() + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(kSends));
  // Burst correlation inflates the variance well past the binomial, so
  // the band is generous around the 20% stationary mean.
  EXPECT_NEAR(static_cast<double>(net.burst_dropped()) / kSends, 0.2, 0.1);

  net.clear_burst_loss();
  EXPECT_FALSE(net.burst_loss_enabled());
  std::uint64_t dropped_before = net.burst_dropped();
  received = 0;
  for (int i = 0; i < 100; ++i) pa->send(0, b.id(), "x", Buffer{});
  sim.run();
  EXPECT_EQ(received, 100) << "a cleared burst channel must not drop";
  EXPECT_EQ(net.burst_dropped(), dropped_before);
}

TEST(Network, GilbertElliottMeanBurstLengthTracksExitProbability) {
  // With Good lossless and Bad a blackout, consecutive-drop run lengths
  // are the Bad-state sojourns: geometric with mean 1/p_exit.
  Simulation sim(5);
  Node& a = sim.add_node("a");
  Node& b = sim.add_node("b");
  Network& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  a.boot();
  b.boot();
  auto pa = a.start_process("p", nullptr);
  std::vector<int> outcomes;  // 1 = delivered, in send order
  b.start_process("p", nullptr)->bind("x", [&](const Datagram&) { outcomes.back() = 1; });
  net.set_burst_loss(/*p_enter=*/0.02, /*p_exit=*/0.25, /*loss_good=*/0.0,
                     /*loss_bad=*/1.0);
  for (int i = 0; i < 6000; ++i) {
    outcomes.push_back(0);
    pa->send(0, b.id(), "x", Buffer{});
    sim.run();  // deliver before the next send so outcome order is exact
  }
  int bursts = 0;
  long long burst_len_total = 0;
  int run = 0;
  for (int ok : outcomes) {
    if (ok == 0) {
      ++run;
    } else if (run > 0) {
      ++bursts;
      burst_len_total += run;
      run = 0;
    }
  }
  ASSERT_GT(bursts, 20) << "storm too quiet to measure";
  double mean_burst = static_cast<double>(burst_len_total) / bursts;
  EXPECT_NEAR(mean_burst, 4.0, 1.5) << "mean sojourn must track 1/p_exit";
}

TEST(Network, DisabledBurstChannelLeavesUniformLossHistoryUnchanged) {
  // The burst chain must consume zero RNG draws while disabled, so
  // pre-existing uniform-loss scenarios replay identically whether or
  // not the knob was ever compiled in.
  auto run_once = [](bool touch_api) {
    Simulation sim(7);
    Node& a = sim.add_node("a");
    Node& b = sim.add_node("b");
    Network& net = sim.add_network("lan");
    net.attach(a.id());
    net.attach(b.id());
    net.set_loss(0.3);
    if (touch_api) net.clear_burst_loss();
    a.boot();
    b.boot();
    auto pa = a.start_process("p", nullptr);
    int received = 0;
    b.start_process("p", nullptr)->bind("x", [&](const Datagram&) { ++received; });
    for (int i = 0; i < 1000; ++i) pa->send(0, b.id(), "x", Buffer{});
    sim.run();
    return received;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(Network, LoopbackBypassesNetworkFaults) {
  Simulation sim;
  Node& a = sim.add_node("a");
  Network& net = sim.add_network("lan");
  net.attach(a.id());
  net.set_down(true);
  a.boot();
  auto p = a.start_process("p", nullptr);
  int got = 0;
  p->bind("x", [&](const Datagram&) { ++got; });
  p->send(0, a.id(), "x", Buffer{});
  sim.run();
  EXPECT_EQ(got, 1) << "local IPC must not traverse the dead LAN";
}

TEST(PeriodicTimer, FiresAtPeriodUntilStopped) {
  Simulation sim;
  Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("p", nullptr);
  int fires = 0;
  PeriodicTimer timer(proc->main_strand());
  timer.start(milliseconds(10), [&] {
    if (++fires == 5) timer.stop();
  });
  sim.run_for(seconds(1));
  EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, RestartFromInsideCallback) {
  Simulation sim;
  Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("p", nullptr);
  int fast = 0, slow = 0;
  PeriodicTimer timer(proc->main_strand());
  timer.start(milliseconds(10), [&] {
    ++fast;
    timer.start(milliseconds(100), [&] { ++slow; });
  });
  sim.run_for(milliseconds(350));
  EXPECT_EQ(fast, 1);
  EXPECT_EQ(slow, 3);
}

TEST(Rng, DeterministicAcrossRuns) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDecorrelates) {
  Rng root(123);
  Rng x = root.fork("x");
  Rng y = root.fork("y");
  EXPECT_NE(x.next_u64(), y.next_u64());
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000, 5.0, 0.2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Simulation, IdenticalSeedsGiveIdenticalHistories) {
  auto run = [](std::uint64_t seed) {
    Simulation sim(seed);
    Node& a = sim.add_node("a");
    Node& b = sim.add_node("b");
    Network& net = sim.add_network("lan");
    net.attach(a.id());
    net.attach(b.id());
    net.set_loss(0.5);
    a.boot();
    b.boot();
    auto pa = a.start_process("p", nullptr);
    std::vector<SimTime> arrivals;
    b.start_process("p", nullptr)->bind("x", [&](const Datagram&) {
      arrivals.push_back(sim.now());
    });
    for (int i = 0; i < 50; ++i) pa->send(0, b.id(), "x", Buffer{});
    sim.run();
    return arrivals;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(DiskStore, SurvivesRebootSemantics) {
  Simulation sim;
  Node& node = sim.add_node("n");
  auto& disk = DiskStore::of(sim);
  disk.write(node.id(), "mq.q.inbox", Buffer{1, 2, 3});
  node.boot();
  node.crash();
  node.boot();
  auto read = disk.read(node.id(), "mq.q.inbox");
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, (Buffer{1, 2, 3}));
}

TEST(DiskStore, PrefixEnumeration) {
  Simulation sim;
  auto& disk = DiskStore::of(sim);
  disk.write(0, "mq.q.a", {});
  disk.write(0, "mq.q.b", {});
  disk.write(0, "mq.out", {});
  disk.write(1, "mq.q.c", {});
  auto keys = disk.keys_with_prefix(0, "mq.q.");
  EXPECT_EQ(keys.size(), 2u);
}

// ---------------------------------------------------------------------
// FaultPlan arming semantics
// ---------------------------------------------------------------------

TEST(FaultPlan, ArmIsIdempotent) {
  Simulation sim;
  sim.add_node("n");
  FaultPlan plan(sim);
  plan.crash_node(milliseconds(10), 0);
  plan.arm();
  plan.arm();  // second call must not schedule the steps again
  EXPECT_TRUE(plan.armed());
  sim.run();
  EXPECT_EQ(plan.journal().size(), 1u) << "double-arm must not double-inject";
  EXPECT_FALSE(plan.mutated_after_arm());
}

TEST(FaultPlan, StepAddedAfterArmIsFlaggedAndStillRuns) {
  Simulation sim;
  Node& n = sim.add_node("n");
  n.boot();
  FaultPlan plan(sim);
  plan.crash_node(milliseconds(10), n.id());
  plan.arm();
  // Late declaration: used to be silently unscheduled. Now it is
  // flagged as a scenario-authoring smell but still injected, so the
  // plan's declared and scheduled contents never diverge.
  plan.boot_node(milliseconds(20), n.id());
  EXPECT_TRUE(plan.mutated_after_arm());
  EXPECT_EQ(plan.size(), 2u);
  sim.run();
  EXPECT_EQ(plan.journal().size(), 2u);
  EXPECT_TRUE(n.up()) << "the post-arm boot step must have executed";
}

TEST(FaultPlan, StepsSurviveVectorReallocationAfterArm) {
  Simulation sim;
  Node& n = sim.add_node("n");
  n.boot();
  FaultPlan plan(sim);
  plan.crash_node(milliseconds(5), n.id());
  plan.arm();
  // Growing the plan reallocates its step vector; the already-scheduled
  // closures must not reference into the old storage.
  for (int i = 0; i < 64; ++i) {
    plan.boot_node(milliseconds(100 + i), n.id());
  }
  sim.run();
  EXPECT_EQ(plan.journal().size(), 65u);
  EXPECT_EQ(plan.journal().front().what, "crash node 0");
  EXPECT_TRUE(n.up());
}

TEST(FaultPlan, IntrospectionSplitsFiredFromPending) {
  Simulation sim;
  Node& n = sim.add_node("n");
  n.boot();
  FaultPlan plan(sim);
  plan.kill_process(milliseconds(10), n.id(), "app");
  plan.crash_node(seconds(10), n.id());
  plan.arm();
  EXPECT_EQ(plan.fired_count(), 0u);
  ASSERT_EQ(plan.pending().size(), 2u);

  sim.run_until(seconds(1));
  EXPECT_EQ(plan.fired_count(), 1u);
  EXPECT_TRUE(plan.step_fired(0));
  EXPECT_FALSE(plan.step_fired(1));
  EXPECT_FALSE(plan.step_fired(99)) << "out-of-range index is simply not fired";
  auto pending = plan.pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].at, seconds(10));
  EXPECT_EQ(pending[0].what, "crash node " + std::to_string(n.id()));

  sim.run_until(seconds(11));
  EXPECT_EQ(plan.fired_count(), 2u);
  EXPECT_TRUE(plan.pending().empty());
}

TEST(FaultPlan, DiskFailWindowTogglesWriteFailures) {
  Simulation sim;
  Node& n = sim.add_node("n");
  n.boot();
  FaultPlan plan(sim);
  plan.disk_fail_window(seconds(1), n.id(), /*duration=*/seconds(2));
  plan.arm();

  DiskStore& disk = DiskStore::of(sim);
  sim.run_until(milliseconds(500));
  EXPECT_TRUE(disk.write(n.id(), "k", Buffer{1}));
  sim.run_until(seconds(2));
  EXPECT_TRUE(disk.writes_failing(n.id()));
  EXPECT_FALSE(disk.write(n.id(), "k", Buffer{2}));
  sim.run_until(seconds(4));
  EXPECT_FALSE(disk.writes_failing(n.id()));
  EXPECT_TRUE(disk.write(n.id(), "k", Buffer{3}));
}

}  // namespace
}  // namespace oftt::sim
