// Kernel fast-path tests: slab/pool handle semantics, timer-wheel vs
// reference-model ordering, bounded memory under cancel storms, and
// pinned whole-scenario hashes guarding the determinism contract of
// the pooled-event / timer-wheel rewrite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.h"
#include "sim/kernel_scenario.h"
#include "sim/node.h"
#include "sim/simulation.h"
#include "sim/time.h"
#include "sim/timer.h"

namespace oftt::sim {
namespace {

// ---------------------------------------------------------------------
// Determinism: whole-scenario history hashes, pinned against the values
// produced by the seed kernel (std::function + shared_ptr tombstones +
// pure comparison heap). The pool/wheel kernel must reproduce them
// bit-for-bit: it may only change what an event costs, never when it
// fires. If a kernel change breaks one of these, it reordered events.
TEST(KernelDeterminism, ScenarioHashesMatchSeedKernel) {
  EXPECT_EQ(testhash::kernel_scenario_hash(42), 0xe745d9cb8d362691ull);
  EXPECT_EQ(testhash::kernel_scenario_hash(7), 0xb06c4166e0c68ed9ull);
  EXPECT_EQ(testhash::kernel_scenario_hash(1234), 0xdda2b972aa99f72aull);
}

TEST(KernelDeterminism, SameSeedSameHash) {
  EXPECT_EQ(testhash::kernel_scenario_hash(99), testhash::kernel_scenario_hash(99));
  EXPECT_NE(testhash::kernel_scenario_hash(99), testhash::kernel_scenario_hash(100));
}

// ---------------------------------------------------------------------
// EventHandle::valid() semantics (documented in event_queue.h): true
// exactly while the event is scheduled and uncancelled.

TEST(KernelHandleSemantics, ValidWhileScheduledInvalidAfterFire) {
  Simulation sim;
  EventHandle h = sim.schedule_at(milliseconds(5), [] {});
  EXPECT_TRUE(h.valid());
  sim.run();
  EXPECT_FALSE(h.valid());
}

TEST(KernelHandleSemantics, InvalidInsideOwnCallback) {
  // The slot is released *before* the callback runs: a fired event's
  // handle reads invalid even inside its own callback.
  Simulation sim;
  EventHandle h;
  bool checked = false;
  h = sim.schedule_at(milliseconds(1), [&] {
    checked = true;
    EXPECT_FALSE(h.valid());
  });
  sim.run();
  EXPECT_TRUE(checked);
}

TEST(KernelHandleSemantics, FireThenCancelIsHarmless) {
  Simulation sim;
  int fired = 0;
  EventHandle h = sim.schedule_at(milliseconds(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.valid());
  sim.cancel(h);  // no-op: the event already fired
  sim.cancel(h);  // and double-cancel is equally harmless
  EXPECT_FALSE(h.valid());
  EXPECT_EQ(fired, 1);
}

TEST(KernelHandleSemantics, DoubleCancelAndRecycledSlotCannotAlias) {
  Simulation sim;
  int a_fired = 0, b_fired = 0;
  EventHandle a = sim.schedule_at(milliseconds(1), [&] { ++a_fired; });
  sim.cancel(a);
  // The slab recycles a's slot for b; a's stale handle must not reach b.
  EventHandle b = sim.schedule_at(milliseconds(2), [&] { ++b_fired; });
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  sim.cancel(a);  // double-cancel of a stale handle: must not touch b
  EXPECT_TRUE(b.valid());
  sim.run();
  EXPECT_EQ(a_fired, 0);
  EXPECT_EQ(b_fired, 1);
}

TEST(KernelHandleSemantics, DefaultHandleIsInert) {
  Simulation sim;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  sim.cancel(h);  // no-op
}

// ---------------------------------------------------------------------
// Randomized property test: the pooled/wheel queue against a naive
// reference model (a flat vector, min selected by (at, seq)). Delays
// deliberately straddle every routing lane: same-tick (heap), current
// window (L0), next windows (L1), beyond the ~68 s horizon (heap), and
// exact ties (FIFO order must hold).

struct RefEvent {
  SimTime at;
  std::uint64_t seq;
  int id;
};

TEST(KernelProperty, MatchesReferenceModelAcrossLanes) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 77ull, 4242ull}) {
    std::mt19937_64 rng(seed);
    EventQueue q;
    std::vector<RefEvent> model;
    std::vector<std::pair<int, EventHandle>> live_handles;
    std::vector<int> fired;
    std::uint64_t next_seq = 0;
    int next_id = 0;
    SimTime now = 0;

    auto random_delay = [&]() -> SimTime {
      switch (rng() % 6) {
        case 0: return static_cast<SimTime>(rng() % 1000);        // same tick
        case 1: return milliseconds(static_cast<int>(rng() % 200));   // L0-ish
        case 2: return milliseconds(static_cast<int>(rng() % 60000)); // L1 range
        case 3: return seconds(70 + static_cast<int>(rng() % 100));   // beyond horizon
        case 4: return 0;                                             // exact tie
        default: return microseconds(static_cast<int>(rng() % 5000));
      }
    };

    for (int step = 0; step < 4000; ++step) {
      unsigned op = static_cast<unsigned>(rng() % 10);
      if (op < 5) {  // schedule
        SimTime at = now + random_delay();
        int id = next_id++;
        EventHandle h = q.schedule(at, [&fired, id] { fired.push_back(id); });
        model.push_back(RefEvent{at, next_seq++, id});
        live_handles.emplace_back(id, h);
      } else if (op < 7) {  // cancel a random live event
        if (!live_handles.empty()) {
          std::size_t k = rng() % live_handles.size();
          int id = live_handles[k].first;
          q.cancel(live_handles[k].second);
          live_handles.erase(live_handles.begin() + static_cast<std::ptrdiff_t>(k));
          std::erase_if(model, [id](const RefEvent& e) { return e.id == id; });
        }
      } else {  // pop
        ASSERT_EQ(q.empty(), model.empty());
        if (model.empty()) continue;
        auto best = std::min_element(model.begin(), model.end(),
                                     [](const RefEvent& a, const RefEvent& b) {
                                       return a.at != b.at ? a.at < b.at : a.seq < b.seq;
                                     });
        SimTime expect_at = best->at;
        int expect_id = best->id;
        model.erase(best);

        ASSERT_EQ(q.next_time(), expect_at) << "seed " << seed << " step " << step;
        std::size_t fired_before = fired.size();
        EventFn fn;
        SimTime at = q.pop(fn);
        ASSERT_EQ(at, expect_at);
        ASSERT_TRUE(static_cast<bool>(fn));
        fn();
        ASSERT_EQ(fired.size(), fired_before + 1);
        ASSERT_EQ(fired.back(), expect_id) << "seed " << seed << " step " << step;
        now = at;
        std::erase_if(live_handles,
                      [expect_id](const auto& p) { return p.first == expect_id; });
      }
    }

    // Drain what's left: the full remaining order must match the model.
    while (!model.empty()) {
      auto best = std::min_element(model.begin(), model.end(),
                                   [](const RefEvent& a, const RefEvent& b) {
                                     return a.at != b.at ? a.at < b.at : a.seq < b.seq;
                                   });
      EventFn fn;
      SimTime at = q.pop(fn);
      ASSERT_EQ(at, best->at);
      ASSERT_TRUE(static_cast<bool>(fn));
      fn();
      ASSERT_EQ(fired.back(), best->id);
      model.erase(best);
    }
    EXPECT_TRUE(q.empty());
  }
}

// Recurring timers ride the wheel; interleave them with one-shots and
// check the merged order against a plain sorted schedule.
TEST(KernelProperty, TimerWheelInterleavesWithOneShots) {
  Simulation sim;
  std::vector<std::pair<SimTime, int>> observed;
  Node& n = sim.add_node("n0");
  n.boot();
  std::shared_ptr<Process> proc = n.start_process("p", nullptr);
  PeriodicTimer fast(proc->main_strand());
  PeriodicTimer slow(proc->main_strand());
  fast.start(milliseconds(10), [&] { observed.emplace_back(sim.now(), 0); });
  slow.start(milliseconds(175), [&] { observed.emplace_back(sim.now(), 1); });
  for (int i = 1; i <= 40; ++i) {
    sim.schedule_at(milliseconds(i * 23), [&, i] { observed.emplace_back(sim.now(), 100 + i); });
  }
  sim.run_until(seconds(1));
  // Times must be non-decreasing and every expected event present.
  for (std::size_t i = 1; i < observed.size(); ++i) {
    ASSERT_LE(observed[i - 1].first, observed[i].first);
  }
  EXPECT_EQ(std::count_if(observed.begin(), observed.end(),
                          [](const auto& e) { return e.second == 0; }),
            100);  // 10 ms timer in [10ms, 1s]
  EXPECT_EQ(std::count_if(observed.begin(), observed.end(),
                          [](const auto& e) { return e.second == 1; }),
            5);  // 175 ms timer: 175, 350, ..., 875
  EXPECT_EQ(std::count_if(observed.begin(), observed.end(),
                          [](const auto& e) { return e.second >= 100; }),
            40);
}

// ---------------------------------------------------------------------
// Bounded memory under schedule/cancel storms (the seed kernel's heap
// only dropped tombstones that surfaced at the top, so this pattern
// grew it without bound). Both lanes must stay bounded.

TEST(KernelBoundedMemory, HeapLaneCancelStormStaysCompact) {
  EventQueue q;
  // Far-future events route to the comparison heap (beyond the wheel
  // horizon). 100k schedule/cancel cycles with a small live set.
  for (int i = 0; i < 100000; ++i) {
    EventHandle h = q.schedule(minutes(10) + i, [] {});
    q.cancel(h);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_LT(q.debug_heap_size(), 300u);   // ~2x the compaction threshold
  EXPECT_LT(q.debug_slab_size(), 300u);   // slots recycle through the freelist
  EXPECT_GT(q.debug_compactions(), 0u);
}

TEST(KernelBoundedMemory, WheelLaneCancelStormStaysCompact) {
  EventQueue q;
  // Short-horizon events route to the wheel; cancelled nodes linger as
  // zombies only until the sweep reclaims them.
  for (int i = 0; i < 100000; ++i) {
    EventHandle h = q.schedule(milliseconds(50 + i % 200), [] {});
    q.cancel(h);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_LT(q.debug_wheel_size(), 300u);
  EXPECT_LT(q.debug_slab_size(), 300u);
  EXPECT_GT(q.debug_wheel_sweeps(), 0u);
}

TEST(KernelBoundedMemory, MixedLiveAndCancelledBoundedByLiveSet) {
  EventQueue q;
  std::vector<EventHandle> keep;
  for (int i = 0; i < 50000; ++i) {
    EventHandle h = q.schedule(seconds(100) + i, [] {});
    if (i % 100 == 0) {
      keep.push_back(h);  // 1% survives
    } else {
      q.cancel(h);
    }
  }
  EXPECT_EQ(q.size(), keep.size());
  // Tombstones may transiently double the structures but no worse.
  EXPECT_LT(q.debug_heap_size(), 2 * keep.size() + 200);
  EXPECT_LT(q.debug_slab_size(), 2 * keep.size() + 200);
}

}  // namespace
}  // namespace oftt::sim
