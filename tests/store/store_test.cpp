// Durable store unit tests: CRC-framed journal round-trips, segment
// rotation, snapshot compaction, torn-tail and bit-flip handling, and
// the full-disk failure modes of sim::DiskStore.
#include <gtest/gtest.h>

#include "sim/disk.h"
#include "sim/simulation.h"
#include "store/journal.h"

namespace oftt::store {
namespace {

Buffer payload(std::size_t n, std::uint8_t seed) {
  Buffer b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(seed + i);
  return b;
}

class JournalTest : public ::testing::Test {
 protected:
  sim::Simulation sim_;
  sim::DiskStore& disk() { return sim::DiskStore::of(sim_); }
};

TEST_F(JournalTest, RoundTripsRecordsInOrder) {
  Journal j(sim_, 0, "t.j");
  ASSERT_TRUE(j.append(RecordType::kSnapshot, 1, 0, payload(32, 1)));
  ASSERT_TRUE(j.append(RecordType::kDelta, 2, 1, payload(8, 2)));
  ASSERT_TRUE(j.append(RecordType::kMessage, 3, 0, payload(0, 0)));

  auto records = j.recover();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, RecordType::kSnapshot);
  EXPECT_EQ(records[0].id, 1u);
  EXPECT_EQ(records[0].payload, payload(32, 1));
  EXPECT_EQ(records[1].type, RecordType::kDelta);
  EXPECT_EQ(records[1].base, 1u);
  EXPECT_EQ(records[2].payload.size(), 0u);
}

TEST_F(JournalTest, SurvivesReopen) {
  {
    Journal j(sim_, 0, "t.j");
    j.append(RecordType::kSnapshot, 1, 0, payload(16, 1));
    j.append(RecordType::kDelta, 2, 1, payload(4, 2));
  }
  Journal reopened(sim_, 0, "t.j");
  auto records = reopened.recover();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].id, 2u);
  // Appends continue after the existing tail.
  ASSERT_TRUE(reopened.append(RecordType::kDelta, 3, 2, payload(4, 3)));
  EXPECT_EQ(reopened.recover().size(), 3u);
}

TEST_F(JournalTest, RotatesSegmentsPastSizeLimit) {
  JournalOptions opts;
  opts.segment_bytes = 128;
  opts.auto_compact = false;
  Journal j(sim_, 0, "t.j", opts);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(j.append(RecordType::kDelta, i, i - 1, payload(64, static_cast<std::uint8_t>(i))));
  }
  EXPECT_GT(j.segment_count(), 1u);
  // A freshly rotated active segment stays memory-only until its first
  // append, so disk may lag the in-memory count by exactly one.
  EXPECT_GE(disk().keys_with_prefix(0, "t.j.seg.").size(), j.segment_count() - 1);
  EXPECT_LE(disk().keys_with_prefix(0, "t.j.seg.").size(), j.segment_count());
  auto records = j.recover();
  ASSERT_EQ(records.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(records[i].id, i + 1);
}

TEST_F(JournalTest, SnapshotCompactionRetiresShadowedSegments) {
  JournalOptions opts;
  opts.segment_bytes = 128;
  Journal j(sim_, 0, "t.j", opts);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    j.append(RecordType::kDelta, i, i - 1, payload(64, 0));
  }
  std::size_t before = disk().used_bytes(0);
  ASSERT_GT(j.segment_count(), 2u);
  // A snapshot shadows everything before it: older segments retire.
  ASSERT_TRUE(j.append(RecordType::kSnapshot, 9, 0, payload(64, 0)));
  EXPECT_GT(j.bytes_reclaimed(), 0u);
  EXPECT_GE(j.compactions(), 1u);
  EXPECT_LT(disk().used_bytes(0), before);
  // The snapshot and nothing older is what recovery sees.
  auto records = j.recover();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().type, RecordType::kSnapshot);
  EXPECT_EQ(records.front().id, 9u);
}

TEST_F(JournalTest, RecoverImageFoldsNewestSnapshotPlusChain) {
  JournalOptions opts;
  opts.auto_compact = false;
  Journal j(sim_, 0, "t.j", opts);
  j.append(RecordType::kSnapshot, 1, 0, payload(16, 1));
  j.append(RecordType::kDelta, 2, 1, payload(4, 2));
  j.append(RecordType::kSnapshot, 3, 0, payload(16, 3));  // newest snapshot wins
  j.append(RecordType::kMessage, 99, 0, payload(4, 9));   // ignored by the fold
  j.append(RecordType::kDelta, 4, 3, payload(4, 4));
  j.append(RecordType::kDelta, 5, 4, payload(4, 5));
  j.append(RecordType::kDelta, 9, 8, payload(4, 9));      // chain break: base 8 never existed

  RecoveredImage img = j.recover_image();
  ASSERT_TRUE(img.valid);
  EXPECT_EQ(img.snapshot_id, 3u);
  EXPECT_EQ(img.snapshot, payload(16, 3));
  ASSERT_EQ(img.deltas.size(), 2u);
  EXPECT_EQ(img.deltas[0].id, 4u);
  EXPECT_EQ(img.deltas[1].id, 5u);
  EXPECT_EQ(img.last_id, 5u);
}

TEST_F(JournalTest, RecoverImageInvalidWithoutSnapshot) {
  Journal j(sim_, 0, "t.j");
  j.append(RecordType::kDelta, 2, 1, payload(4, 2));
  EXPECT_FALSE(j.recover_image().valid);
}

TEST_F(JournalTest, TornTailTruncatedOnReopen) {
  std::string key;
  {
    Journal j(sim_, 0, "t.j");
    j.append(RecordType::kSnapshot, 1, 0, payload(16, 1));
    j.append(RecordType::kDelta, 2, 1, payload(16, 2));
    j.append(RecordType::kDelta, 3, 2, payload(16, 3));
    key = disk().keys_with_prefix(0, "t.j.seg.").front();
  }
  // Crash signature: the last record's bytes only partially reached the
  // disk.
  Buffer seg = *disk().read(0, key);
  seg.resize(seg.size() - 7);
  disk().write(0, key, seg);

  Journal reopened(sim_, 0, "t.j");
  auto records = reopened.recover();
  ASSERT_EQ(records.size(), 2u) << "torn tail record must be dropped";
  EXPECT_EQ(records.back().id, 2u);
  // New appends land on the truncated (trustworthy) boundary.
  ASSERT_TRUE(reopened.append(RecordType::kDelta, 3, 2, payload(16, 3)));
  records = reopened.recover();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records.back().id, 3u);
}

TEST_F(JournalTest, BitFlipEndsScanAtCorruptRecord) {
  Journal j(sim_, 0, "t.j");
  j.append(RecordType::kSnapshot, 1, 0, payload(16, 1));
  j.append(RecordType::kDelta, 2, 1, payload(16, 2));
  j.append(RecordType::kDelta, 3, 2, payload(16, 3));
  std::string key = disk().keys_with_prefix(0, "t.j.seg.").front();
  Buffer seg = *disk().read(0, key);
  // Flip one payload bit inside the SECOND record. Each frame is 12
  // bytes of preamble + 17 bytes of record header + 16 bytes payload.
  seg[45 + 40] ^= 0x01;
  disk().write(0, key, seg);

  auto records = Journal(sim_, 0, "t.j").recover();
  ASSERT_EQ(records.size(), 1u) << "CRC must catch the flip and end the scan";
  EXPECT_EQ(records[0].id, 1u);
}

TEST_F(JournalTest, FailedDiskRefusesAppendsThenRecovers) {
  Journal j(sim_, 0, "t.j");
  ASSERT_TRUE(j.append(RecordType::kSnapshot, 1, 0, payload(16, 1)));
  disk().fail_writes(0, true);
  EXPECT_FALSE(j.append(RecordType::kDelta, 2, 1, payload(16, 2)));
  EXPECT_EQ(j.append_failures(), 1u);
  // Durable content is unaffected by the refused append.
  EXPECT_EQ(j.recover().size(), 1u);
  disk().fail_writes(0, false);
  EXPECT_TRUE(j.append(RecordType::kDelta, 2, 1, payload(16, 2)));
  EXPECT_EQ(j.recover().size(), 2u);
}

TEST_F(JournalTest, CapacityCapFailsWritesLikeAFullDisk) {
  disk().set_capacity(0, 256);
  Journal j(sim_, 0, "t.j");
  bool saw_failure = false;
  for (std::uint64_t i = 1; i <= 32 && !saw_failure; ++i) {
    saw_failure = !j.append(RecordType::kDelta, i, i - 1, payload(32, 0));
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_LE(disk().used_bytes(0), 256u);
  // The records that did land are all intact.
  auto records = j.recover();
  EXPECT_GT(records.size(), 0u);
}

TEST_F(JournalTest, MaxSegmentsDropsOldest) {
  JournalOptions opts;
  opts.segment_bytes = 128;
  opts.auto_compact = false;
  opts.max_segments = 2;
  Journal j(sim_, 0, "t.j", opts);
  for (std::uint64_t i = 1; i <= 12; ++i) {
    j.append(RecordType::kMessage, i, 0, payload(64, 0));
  }
  EXPECT_LE(j.segment_count(), 2u);
  EXPECT_LE(disk().keys_with_prefix(0, "t.j.seg.").size(), 2u);
  auto records = j.recover();
  ASSERT_FALSE(records.empty());
  EXPECT_GT(records.front().id, 1u) << "oldest messages must have been dropped";
  EXPECT_EQ(records.back().id, 12u) << "newest messages must survive";
}

TEST_F(JournalTest, WipeRemovesEverything) {
  Journal j(sim_, 0, "t.j");
  j.append(RecordType::kSnapshot, 1, 0, payload(16, 1));
  j.wipe();
  EXPECT_EQ(j.segment_count(), 0u);
  EXPECT_TRUE(disk().keys_with_prefix(0, "t.j.seg.").empty());
  EXPECT_TRUE(j.recover().empty());
  // The journal is usable again after a wipe.
  ASSERT_TRUE(j.append(RecordType::kSnapshot, 5, 0, payload(16, 5)));
  EXPECT_EQ(j.recover().size(), 1u);
}

TEST_F(JournalTest, JournalsOnDifferentNodesAreIndependent) {
  Journal a(sim_, 0, "t.j");
  Journal b(sim_, 1, "t.j");
  a.append(RecordType::kSnapshot, 1, 0, payload(16, 1));
  EXPECT_TRUE(b.recover().empty());
  EXPECT_EQ(a.recover().size(), 1u);
}

// --- DiskStore accounting / failure modes (no journal involved) ---

TEST(DiskStoreTest, UsedBytesTracksWritesOverwritesAndErases) {
  sim::Simulation sim;
  auto& disk = sim::DiskStore::of(sim);
  EXPECT_TRUE(disk.write(0, "a", Buffer(100)));
  EXPECT_TRUE(disk.write(0, "b", Buffer(50)));
  EXPECT_EQ(disk.used_bytes(0), 150u);
  EXPECT_TRUE(disk.write(0, "a", Buffer(10)));  // overwrite shrinks
  EXPECT_EQ(disk.used_bytes(0), 60u);
  disk.erase(0, "b");
  EXPECT_EQ(disk.used_bytes(0), 10u);
  disk.erase(0, "missing");  // no-op
  EXPECT_EQ(disk.used_bytes(0), 10u);
}

TEST(DiskStoreTest, ErasePrefixReclaimsOnlyMatchingKeys) {
  sim::Simulation sim;
  auto& disk = sim::DiskStore::of(sim);
  disk.write(0, "j.seg.00000000", Buffer(40));
  disk.write(0, "j.seg.00000001", Buffer(60));
  disk.write(0, "j.other", Buffer(5));
  disk.write(1, "j.seg.00000000", Buffer(7));  // other node untouched
  EXPECT_EQ(disk.erase_prefix(0, "j.seg."), 100u);
  EXPECT_EQ(disk.used_bytes(0), 5u);
  EXPECT_TRUE(disk.read(0, "j.other").has_value());
  EXPECT_TRUE(disk.read(1, "j.seg.00000000").has_value());
}

TEST(DiskStoreTest, CapacityRejectsWritesButKeepsExistingValue) {
  sim::Simulation sim;
  auto& disk = sim::DiskStore::of(sim);
  disk.set_capacity(0, 100);
  EXPECT_TRUE(disk.write(0, "k", Buffer(80)));
  // Growing past the cap fails and the old value survives intact.
  EXPECT_FALSE(disk.write(0, "k", Buffer(120)));
  EXPECT_EQ(disk.read(0, "k")->size(), 80u);
  EXPECT_FALSE(disk.write(0, "k2", Buffer(30)));
  // Shrinking within the cap is fine.
  EXPECT_TRUE(disk.write(0, "k", Buffer(100)));
  EXPECT_EQ(disk.used_bytes(0), 100u);
}

}  // namespace
}  // namespace oftt::store
