// Cold-restart recovery acceptance tests: a rebooted node rebuilds its
// checkpoint state from its own durable journal and pulls only the
// delta suffix it missed from the primary, instead of a full state
// transfer. Also: whole-unit outages, diverter send replay, role-hint
// persistence, and the full-disk failure mode.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "core/diverter.h"
#include "msmq/queue_manager.h"
#include "sim/fault_plan.h"
#include "sim/simulation.h"
#include "support/counter_app.h"

namespace oftt::core {
namespace {

using testsupport::CounterApp;

// A long full-checkpoint interval keeps the journal tail pure-delta
// across the induced outages: an intervening full snapshot would break
// the delta chain from the rejoiner's last durable seq and (correctly)
// force a full transfer — which is exactly what these tests must prove
// does NOT happen on the common path.
PairDeploymentOptions recovery_options() {
  PairDeploymentOptions opts;
  opts.unit = "calltrack";
  opts.app_factory = [](sim::Process& proc) {
    CounterApp::Options app;
    app.ftim.checkpoint_period = sim::milliseconds(200);
    app.ftim.full_checkpoint_interval = 64;
    proc.attachment<CounterApp>(proc, app);
  };
  return opts;
}

class RecoveryTest : public ::testing::Test {
 protected:
  sim::Simulation sim{7};
};

// The headline acceptance scenario: kill a node mid-run, reboot it, and
// watch it restore from its own journal with only the missing delta
// suffix crossing the network.
TEST_F(RecoveryTest, RebootedBackupRestoresFromJournalAndPullsOnlyDeltaSuffix) {
  PairDeployment dep(sim, recovery_options());
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());
  Ftim* ftim_b = dep.ftim_on(dep.node_b());
  ASSERT_NE(ftim_b, nullptr);
  std::uint64_t backup_seq_at_crash = ftim_b->latest_checkpoint()->seq;
  ASSERT_GT(backup_seq_at_crash, 0u);

  dep.node_b().crash();
  sim.run_for(sim::seconds(2));  // primary keeps checkpointing into the gap

  dep.node_b().boot();
  sim.run_for(sim::seconds(2));

  ftim_b = dep.ftim_on(dep.node_b());
  ASSERT_NE(ftim_b, nullptr);
  EXPECT_TRUE(ftim_b->recovered_from_journal())
      << "the rebooted FTIM must restore from its own disk";
  EXPECT_GT(ftim_b->journal_replayed_records(), 1u)
      << "snapshot plus at least one delta should replay";

  Ftim* ftim_a = dep.ftim_on(dep.node_a());
  ASSERT_NE(ftim_a, nullptr);
  EXPECT_GE(ftim_a->pulls_served_delta(), 1u)
      << "primary must answer the rejoin pull from its journal";
  EXPECT_EQ(ftim_a->pulls_served_full(), 0u)
      << "no full state transfer on a journal-assisted rejoin";
  EXPECT_EQ(ftim_a->full_checkpoints_sent(), 1u)
      << "only the initial checkpoint of the run is full";

  // The rejoined backup caught up past where it crashed and tracks the
  // primary again through ordinary deltas.
  ASSERT_TRUE(ftim_b->has_checkpoint());
  EXPECT_GT(ftim_b->latest_checkpoint()->seq, backup_seq_at_crash);
  EXPECT_GT(ftim_b->deltas_applied(), 0u);

  // And the recovered replica is a real backup: promote it and the
  // counter continues from the replicated state.
  std::int64_t count_before = CounterApp::find(dep.node_a())->count();
  dep.node_a().crash();
  sim.run_for(sim::seconds(2));
  ASSERT_EQ(dep.primary_node(), dep.node_b().id());
  CounterApp* app_b = CounterApp::find(dep.node_b());
  ASSERT_NE(app_b, nullptr);
  EXPECT_GE(app_b->count(), count_before - 5)
      << "at most one checkpoint period of work may be lost";
}

// Both nodes down at once (site power loss): each comes back from its
// own journal — there is no live peer to transfer state from.
TEST_F(RecoveryTest, WholePairOutageRecoversStateFromLocalJournals) {
  PairDeployment dep(sim, recovery_options());
  sim.run_for(sim::seconds(3));
  std::int64_t count_before = CounterApp::find(dep.node_a())->count();
  ASSERT_GT(count_before, 0);

  dep.node_a().crash();
  dep.node_b().crash();
  sim.run_for(sim::seconds(1));
  dep.node_a().boot();
  dep.node_b().boot();
  sim.run_for(sim::seconds(3));

  int primary = dep.primary_node();
  ASSERT_NE(primary, -1);
  Ftim* primary_ftim = dep.ftim_on(*dep.node_by_id(primary));
  ASSERT_NE(primary_ftim, nullptr);
  EXPECT_TRUE(primary_ftim->recovered_from_journal());

  CounterApp* app = CounterApp::find(*dep.node_by_id(primary));
  ASSERT_NE(app, nullptr);
  EXPECT_GE(app->count(), count_before - 5)
      << "state must survive a whole-unit outage via the journals";
  std::int64_t after_reboot = app->count();
  sim.run_for(sim::seconds(1));
  EXPECT_GT(app->count(), after_reboot) << "recovered unit must make progress";
}

// Local app restart on the primary (failure class c): the restarted
// process restores its own last checkpoint from the journal instead of
// resuming empty — previously only a peer's copy could seed it.
TEST_F(RecoveryTest, LocalAppRestartResumesFromOwnJournal) {
  PairDeployment dep(sim, recovery_options());
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());
  std::int64_t count_before = CounterApp::find(dep.node_a())->count();
  ASSERT_GT(count_before, 0);

  dep.node_a().find_process("app")->kill("injected app fault");
  sim.run_for(sim::seconds(2));

  ASSERT_EQ(dep.primary_node(), dep.node_a().id()) << "one local restart, no switchover";
  Ftim* ftim_a = dep.ftim_on(dep.node_a());
  ASSERT_NE(ftim_a, nullptr);
  EXPECT_TRUE(ftim_a->recovered_from_journal());
  CounterApp* app_a = CounterApp::find(dep.node_a());
  ASSERT_NE(app_a, nullptr);
  EXPECT_GE(app_a->count(), count_before)
      << "restart resumes from the last journaled checkpoint, not zero";
}

// The N-replica generalization: a crashed cluster member readmits
// itself from its journal plus a delta pull — no full transfer.
TEST_F(RecoveryTest, ClusterRejoinerReadmitsWithoutFullStateTransfer) {
  ClusterDeploymentOptions opts;
  opts.replicas = 3;
  opts.app_factory = [](sim::Process& proc) {
    CounterApp::Options app;
    app.ftim.checkpoint_period = sim::milliseconds(200);
    app.ftim.full_checkpoint_interval = 64;
    proc.attachment<CounterApp>(proc, app);
  };
  ClusterDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  int primary = dep.primary_node();
  ASSERT_NE(primary, -1);
  // Crash a backup replica (node 2 is never the initial primary).
  sim::Node& victim = dep.node(2);
  ASSERT_NE(victim.id(), primary);

  victim.crash();
  sim.run_for(sim::seconds(2));
  victim.boot();
  sim.run_for(sim::seconds(2));

  Ftim* rejoined = dep.ftim_on(victim);
  ASSERT_NE(rejoined, nullptr);
  EXPECT_TRUE(rejoined->recovered_from_journal());
  Ftim* primary_ftim = dep.ftim_on(*dep.node_by_id(primary));
  ASSERT_NE(primary_ftim, nullptr);
  EXPECT_GE(primary_ftim->pulls_served_delta(), 1u);
  EXPECT_EQ(primary_ftim->pulls_served_full(), 0u);
  EXPECT_EQ(dep.primary_count(), 1);
}

// Recoverable sends journaled by the diverter survive a diverter
// process crash: the restarted instance re-drives them through MSMQ.
TEST_F(RecoveryTest, DiverterReplaysJournaledSendsAfterRestart) {
  PairDeploymentOptions opts;
  opts.unit = "calltrack";
  opts.app_factory = nullptr;  // engine-only pair; we only watch the QM
  PairDeployment dep(sim, opts);
  DiverterOptions dopts;
  dopts.unit = "calltrack";
  dopts.queue = "calltrack.events";
  dopts.node_a = dep.node_a().id();
  dopts.node_b = dep.node_b().id();
  auto source = dep.monitor_node().start_process("telsim", nullptr);
  auto diverter = std::make_shared<MessageDiverter>(*source, dopts);
  source->add_component(diverter);
  sim.run_for(sim::seconds(3));

  for (int i = 0; i < 4; ++i) diverter->send("evt", Buffer(8));
  EXPECT_EQ(diverter->journaled_sends(), 4u);
  sim.run_for(sim::milliseconds(200));

  // The sender process dies; a fresh instance on the same node finds
  // the journaled sends on disk and replays them.
  source->kill("injected source crash");
  diverter.reset();
  auto source2 = dep.monitor_node().start_process("telsim", nullptr);
  auto diverter2 = std::make_shared<MessageDiverter>(*source2, dopts);
  source2->add_component(diverter2);
  EXPECT_EQ(diverter2->replayed_sends(), 4u);
  sim.run_for(sim::seconds(2));

  // At-least-once: the primary's queue saw both the originals and the
  // replays (duplicates are the contract, loss is not).
  msmq::QueueManager* qm = msmq::QueueManager::find(dep.node_a());
  ASSERT_NE(qm, nullptr);
  EXPECT_GE(qm->local_depth("calltrack.events"), 4u);

  // Express (lossy-by-contract) sends are never journaled.
  diverter2->send("fire-and-forget", Buffer(8), msmq::DeliveryMode::kExpress);
  EXPECT_EQ(diverter2->journaled_sends(), 4u);
}

// The engine's durable role hint: a rebooted engine seeds its
// incarnation clock from disk and rejoins without fighting the
// survivor for primary.
TEST_F(RecoveryTest, RebootedEngineRestoresRoleHint) {
  PairDeployment dep(sim, recovery_options());
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());
  EXPECT_FALSE(dep.engine_a()->role_hint_restored()) << "first boot has no hint";

  dep.node_a().os_crash(/*reboot_after=*/sim::seconds(3));
  sim.run_for(sim::seconds(8));

  ASSERT_NE(dep.engine_a(), nullptr);
  EXPECT_TRUE(dep.engine_a()->role_hint_restored());
  EXPECT_GE(dep.engine_a()->incarnation(), 1u)
      << "incarnation clock must not restart from zero";
  EXPECT_EQ(dep.primary_node(), dep.node_b().id()) << "survivor keeps primary";
  EXPECT_EQ(dep.backup_node(), dep.node_a().id());
}

// A full disk on the primary must not take the unit down: journal
// appends fail (and are counted), but checkpoint replication to the
// peer keeps flowing and the application keeps serving.
TEST_F(RecoveryTest, FullDiskDegradesJournalingButNotService) {
  PairDeployment dep(sim, recovery_options());
  sim::FaultPlan plan(sim);
  plan.disk_full(sim::seconds(2), dep.node_a().id());
  plan.arm();
  sim.run_for(sim::seconds(5));

  ASSERT_EQ(dep.primary_node(), dep.node_a().id());
  Ftim* ftim_a = dep.ftim_on(dep.node_a());
  ASSERT_NE(ftim_a, nullptr);
  ASSERT_NE(ftim_a->journal(), nullptr);
  EXPECT_GT(ftim_a->journal()->append_failures(), 0u);
  // Replication is unaffected: the backup still tracks the primary.
  Ftim* ftim_b = dep.ftim_on(dep.node_b());
  ASSERT_NE(ftim_b, nullptr);
  EXPECT_GT(ftim_b->checkpoints_received(), 10u);
  CounterApp* app = CounterApp::find(dep.node_a());
  std::int64_t before = app->count();
  sim.run_for(sim::seconds(1));
  EXPECT_GT(app->count(), before);
}

// A disk whose writes fail across the whole reboot-recovery window must
// not stop the rejoiner: journal *reads* drive the replay, and the
// appends that fail inside the window only degrade durability (they are
// counted, and resume once the window closes).
TEST_F(RecoveryTest, DiskFailWindowOverlappingJournalRecoveryStillRestores) {
  PairDeployment dep(sim, recovery_options());
  sim.run_for(sim::seconds(3));
  ASSERT_EQ(dep.primary_node(), dep.node_a().id());
  Ftim* ftim_b = dep.ftim_on(dep.node_b());
  ASSERT_NE(ftim_b, nullptr);
  std::uint64_t seq_at_crash = ftim_b->latest_checkpoint()->seq;
  ASSERT_GT(seq_at_crash, 0u);

  dep.node_b().crash();
  sim.run_for(sim::seconds(1));
  // Open the write-fail window before the reboot and close it well
  // after the replay: recovery runs entirely inside it.
  sim::FaultPlan plan(sim);
  plan.disk_fail_window(sim.now() + sim::milliseconds(10), dep.node_b().id(),
                        sim::seconds(4));
  plan.arm();
  sim.run_for(sim::milliseconds(100));
  dep.node_b().boot();
  sim.run_for(sim::seconds(2));  // journal replay + delta resync, disk failing

  ftim_b = dep.ftim_on(dep.node_b());
  ASSERT_NE(ftim_b, nullptr);
  ASSERT_NE(ftim_b->latest_checkpoint(), nullptr);
  EXPECT_GE(ftim_b->latest_checkpoint()->seq, seq_at_crash)
      << "journal reads drive recovery; failing writes must not block it";
  ASSERT_NE(ftim_b->journal(), nullptr);
  EXPECT_GT(ftim_b->journal()->append_failures(), 0u)
      << "checkpoints received inside the window could not be journaled";

  // Window closes; journaling resumes and the failure count freezes.
  sim.run_for(sim::seconds(3));
  std::uint64_t failures_at_close = ftim_b->journal()->append_failures();
  sim.run_for(sim::seconds(2));
  EXPECT_EQ(ftim_b->journal()->append_failures(), failures_at_close)
      << "appends must succeed again once the window closes";
  EXPECT_EQ(dep.primary_node(), dep.node_a().id())
      << "the primary never wavered through any of this";
}

}  // namespace
}  // namespace oftt::core
