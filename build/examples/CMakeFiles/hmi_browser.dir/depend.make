# Empty dependencies file for hmi_browser.
# This may be replaced when dependencies are built.
