file(REMOVE_RECURSE
  "CMakeFiles/hmi_browser.dir/hmi_browser.cpp.o"
  "CMakeFiles/hmi_browser.dir/hmi_browser.cpp.o.d"
  "hmi_browser"
  "hmi_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmi_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
