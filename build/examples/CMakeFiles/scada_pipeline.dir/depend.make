# Empty dependencies file for scada_pipeline.
# This may be replaced when dependencies are built.
