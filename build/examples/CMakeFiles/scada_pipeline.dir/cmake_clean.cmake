file(REMOVE_RECURSE
  "CMakeFiles/scada_pipeline.dir/scada_pipeline.cpp.o"
  "CMakeFiles/scada_pipeline.dir/scada_pipeline.cpp.o.d"
  "scada_pipeline"
  "scada_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scada_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
