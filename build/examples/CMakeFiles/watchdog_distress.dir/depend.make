# Empty dependencies file for watchdog_distress.
# This may be replaced when dependencies are built.
