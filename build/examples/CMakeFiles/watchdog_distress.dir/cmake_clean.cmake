file(REMOVE_RECURSE
  "CMakeFiles/watchdog_distress.dir/watchdog_distress.cpp.o"
  "CMakeFiles/watchdog_distress.dir/watchdog_distress.cpp.o.d"
  "watchdog_distress"
  "watchdog_distress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watchdog_distress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
