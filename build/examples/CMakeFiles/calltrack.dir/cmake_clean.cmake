file(REMOVE_RECURSE
  "CMakeFiles/calltrack.dir/calltrack.cpp.o"
  "CMakeFiles/calltrack.dir/calltrack.cpp.o.d"
  "calltrack"
  "calltrack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calltrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
