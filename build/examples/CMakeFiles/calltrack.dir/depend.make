# Empty dependencies file for calltrack.
# This may be replaced when dependencies are built.
