file(REMOVE_RECURSE
  "CMakeFiles/oftt_com.dir/runtime.cpp.o"
  "CMakeFiles/oftt_com.dir/runtime.cpp.o.d"
  "liboftt_com.a"
  "liboftt_com.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_com.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
