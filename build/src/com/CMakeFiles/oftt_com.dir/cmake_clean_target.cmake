file(REMOVE_RECURSE
  "liboftt_com.a"
)
