# Empty compiler generated dependencies file for oftt_com.
# This may be replaced when dependencies are built.
