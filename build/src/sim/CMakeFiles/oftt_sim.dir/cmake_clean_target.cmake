file(REMOVE_RECURSE
  "liboftt_sim.a"
)
