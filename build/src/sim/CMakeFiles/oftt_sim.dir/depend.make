# Empty dependencies file for oftt_sim.
# This may be replaced when dependencies are built.
