file(REMOVE_RECURSE
  "CMakeFiles/oftt_sim.dir/event_queue.cpp.o"
  "CMakeFiles/oftt_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/oftt_sim.dir/network.cpp.o"
  "CMakeFiles/oftt_sim.dir/network.cpp.o.d"
  "CMakeFiles/oftt_sim.dir/node.cpp.o"
  "CMakeFiles/oftt_sim.dir/node.cpp.o.d"
  "CMakeFiles/oftt_sim.dir/process.cpp.o"
  "CMakeFiles/oftt_sim.dir/process.cpp.o.d"
  "CMakeFiles/oftt_sim.dir/rng.cpp.o"
  "CMakeFiles/oftt_sim.dir/rng.cpp.o.d"
  "CMakeFiles/oftt_sim.dir/simulation.cpp.o"
  "CMakeFiles/oftt_sim.dir/simulation.cpp.o.d"
  "liboftt_sim.a"
  "liboftt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
