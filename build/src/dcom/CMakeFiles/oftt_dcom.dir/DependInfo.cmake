
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dcom/client.cpp" "src/dcom/CMakeFiles/oftt_dcom.dir/client.cpp.o" "gcc" "src/dcom/CMakeFiles/oftt_dcom.dir/client.cpp.o.d"
  "/root/repo/src/dcom/orpc.cpp" "src/dcom/CMakeFiles/oftt_dcom.dir/orpc.cpp.o" "gcc" "src/dcom/CMakeFiles/oftt_dcom.dir/orpc.cpp.o.d"
  "/root/repo/src/dcom/registry.cpp" "src/dcom/CMakeFiles/oftt_dcom.dir/registry.cpp.o" "gcc" "src/dcom/CMakeFiles/oftt_dcom.dir/registry.cpp.o.d"
  "/root/repo/src/dcom/scm.cpp" "src/dcom/CMakeFiles/oftt_dcom.dir/scm.cpp.o" "gcc" "src/dcom/CMakeFiles/oftt_dcom.dir/scm.cpp.o.d"
  "/root/repo/src/dcom/server.cpp" "src/dcom/CMakeFiles/oftt_dcom.dir/server.cpp.o" "gcc" "src/dcom/CMakeFiles/oftt_dcom.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/com/CMakeFiles/oftt_com.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oftt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oftt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
