# Empty dependencies file for oftt_dcom.
# This may be replaced when dependencies are built.
