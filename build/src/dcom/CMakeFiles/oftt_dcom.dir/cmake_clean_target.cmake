file(REMOVE_RECURSE
  "liboftt_dcom.a"
)
