file(REMOVE_RECURSE
  "CMakeFiles/oftt_dcom.dir/client.cpp.o"
  "CMakeFiles/oftt_dcom.dir/client.cpp.o.d"
  "CMakeFiles/oftt_dcom.dir/orpc.cpp.o"
  "CMakeFiles/oftt_dcom.dir/orpc.cpp.o.d"
  "CMakeFiles/oftt_dcom.dir/registry.cpp.o"
  "CMakeFiles/oftt_dcom.dir/registry.cpp.o.d"
  "CMakeFiles/oftt_dcom.dir/scm.cpp.o"
  "CMakeFiles/oftt_dcom.dir/scm.cpp.o.d"
  "CMakeFiles/oftt_dcom.dir/server.cpp.o"
  "CMakeFiles/oftt_dcom.dir/server.cpp.o.d"
  "liboftt_dcom.a"
  "liboftt_dcom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_dcom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
