# Empty compiler generated dependencies file for oftt_nt.
# This may be replaced when dependencies are built.
