file(REMOVE_RECURSE
  "CMakeFiles/oftt_nt.dir/runtime.cpp.o"
  "CMakeFiles/oftt_nt.dir/runtime.cpp.o.d"
  "liboftt_nt.a"
  "liboftt_nt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_nt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
