file(REMOVE_RECURSE
  "liboftt_nt.a"
)
