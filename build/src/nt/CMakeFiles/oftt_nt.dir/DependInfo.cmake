
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nt/runtime.cpp" "src/nt/CMakeFiles/oftt_nt.dir/runtime.cpp.o" "gcc" "src/nt/CMakeFiles/oftt_nt.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/oftt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oftt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
