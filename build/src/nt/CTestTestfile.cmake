# CMake generated Testfile for 
# Source directory: /root/repo/src/nt
# Build directory: /root/repo/build/src/nt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
