# Empty dependencies file for oftt_msmq.
# This may be replaced when dependencies are built.
