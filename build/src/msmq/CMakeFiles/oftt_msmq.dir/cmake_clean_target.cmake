file(REMOVE_RECURSE
  "liboftt_msmq.a"
)
