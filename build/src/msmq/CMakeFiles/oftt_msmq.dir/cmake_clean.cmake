file(REMOVE_RECURSE
  "CMakeFiles/oftt_msmq.dir/queue_manager.cpp.o"
  "CMakeFiles/oftt_msmq.dir/queue_manager.cpp.o.d"
  "liboftt_msmq.a"
  "liboftt_msmq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_msmq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
