
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opc/client.cpp" "src/opc/CMakeFiles/oftt_opc.dir/client.cpp.o" "gcc" "src/opc/CMakeFiles/oftt_opc.dir/client.cpp.o.d"
  "/root/repo/src/opc/device.cpp" "src/opc/CMakeFiles/oftt_opc.dir/device.cpp.o" "gcc" "src/opc/CMakeFiles/oftt_opc.dir/device.cpp.o.d"
  "/root/repo/src/opc/devices/telephone.cpp" "src/opc/CMakeFiles/oftt_opc.dir/devices/telephone.cpp.o" "gcc" "src/opc/CMakeFiles/oftt_opc.dir/devices/telephone.cpp.o.d"
  "/root/repo/src/opc/proxy_stub.cpp" "src/opc/CMakeFiles/oftt_opc.dir/proxy_stub.cpp.o" "gcc" "src/opc/CMakeFiles/oftt_opc.dir/proxy_stub.cpp.o.d"
  "/root/repo/src/opc/server.cpp" "src/opc/CMakeFiles/oftt_opc.dir/server.cpp.o" "gcc" "src/opc/CMakeFiles/oftt_opc.dir/server.cpp.o.d"
  "/root/repo/src/opc/value.cpp" "src/opc/CMakeFiles/oftt_opc.dir/value.cpp.o" "gcc" "src/opc/CMakeFiles/oftt_opc.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dcom/CMakeFiles/oftt_dcom.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oftt_com.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oftt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oftt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
