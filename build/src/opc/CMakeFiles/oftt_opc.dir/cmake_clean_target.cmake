file(REMOVE_RECURSE
  "liboftt_opc.a"
)
