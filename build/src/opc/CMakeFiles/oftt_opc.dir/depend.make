# Empty dependencies file for oftt_opc.
# This may be replaced when dependencies are built.
