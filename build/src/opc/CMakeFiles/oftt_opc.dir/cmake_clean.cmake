file(REMOVE_RECURSE
  "CMakeFiles/oftt_opc.dir/client.cpp.o"
  "CMakeFiles/oftt_opc.dir/client.cpp.o.d"
  "CMakeFiles/oftt_opc.dir/device.cpp.o"
  "CMakeFiles/oftt_opc.dir/device.cpp.o.d"
  "CMakeFiles/oftt_opc.dir/devices/telephone.cpp.o"
  "CMakeFiles/oftt_opc.dir/devices/telephone.cpp.o.d"
  "CMakeFiles/oftt_opc.dir/proxy_stub.cpp.o"
  "CMakeFiles/oftt_opc.dir/proxy_stub.cpp.o.d"
  "CMakeFiles/oftt_opc.dir/server.cpp.o"
  "CMakeFiles/oftt_opc.dir/server.cpp.o.d"
  "CMakeFiles/oftt_opc.dir/value.cpp.o"
  "CMakeFiles/oftt_opc.dir/value.cpp.o.d"
  "liboftt_opc.a"
  "liboftt_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
