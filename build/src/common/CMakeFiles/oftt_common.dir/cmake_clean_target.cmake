file(REMOVE_RECURSE
  "liboftt_common.a"
)
