file(REMOVE_RECURSE
  "CMakeFiles/oftt_common.dir/bytes.cpp.o"
  "CMakeFiles/oftt_common.dir/bytes.cpp.o.d"
  "CMakeFiles/oftt_common.dir/guid.cpp.o"
  "CMakeFiles/oftt_common.dir/guid.cpp.o.d"
  "CMakeFiles/oftt_common.dir/hresult.cpp.o"
  "CMakeFiles/oftt_common.dir/hresult.cpp.o.d"
  "CMakeFiles/oftt_common.dir/logging.cpp.o"
  "CMakeFiles/oftt_common.dir/logging.cpp.o.d"
  "CMakeFiles/oftt_common.dir/strings.cpp.o"
  "CMakeFiles/oftt_common.dir/strings.cpp.o.d"
  "liboftt_common.a"
  "liboftt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
