# Empty compiler generated dependencies file for oftt_common.
# This may be replaced when dependencies are built.
