
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytes.cpp" "src/common/CMakeFiles/oftt_common.dir/bytes.cpp.o" "gcc" "src/common/CMakeFiles/oftt_common.dir/bytes.cpp.o.d"
  "/root/repo/src/common/guid.cpp" "src/common/CMakeFiles/oftt_common.dir/guid.cpp.o" "gcc" "src/common/CMakeFiles/oftt_common.dir/guid.cpp.o.d"
  "/root/repo/src/common/hresult.cpp" "src/common/CMakeFiles/oftt_common.dir/hresult.cpp.o" "gcc" "src/common/CMakeFiles/oftt_common.dir/hresult.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/oftt_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/oftt_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/common/CMakeFiles/oftt_common.dir/strings.cpp.o" "gcc" "src/common/CMakeFiles/oftt_common.dir/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
