file(REMOVE_RECURSE
  "liboftt_core.a"
)
