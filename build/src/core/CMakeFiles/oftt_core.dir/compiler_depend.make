# Empty compiler generated dependencies file for oftt_core.
# This may be replaced when dependencies are built.
