
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cpp" "src/core/CMakeFiles/oftt_core.dir/api.cpp.o" "gcc" "src/core/CMakeFiles/oftt_core.dir/api.cpp.o.d"
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/oftt_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/oftt_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/diverter.cpp" "src/core/CMakeFiles/oftt_core.dir/diverter.cpp.o" "gcc" "src/core/CMakeFiles/oftt_core.dir/diverter.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/oftt_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/oftt_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/engine_com.cpp" "src/core/CMakeFiles/oftt_core.dir/engine_com.cpp.o" "gcc" "src/core/CMakeFiles/oftt_core.dir/engine_com.cpp.o.d"
  "/root/repo/src/core/ftim.cpp" "src/core/CMakeFiles/oftt_core.dir/ftim.cpp.o" "gcc" "src/core/CMakeFiles/oftt_core.dir/ftim.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/oftt_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/oftt_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/oftt_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/oftt_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msmq/CMakeFiles/oftt_msmq.dir/DependInfo.cmake"
  "/root/repo/build/src/dcom/CMakeFiles/oftt_dcom.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oftt_com.dir/DependInfo.cmake"
  "/root/repo/build/src/nt/CMakeFiles/oftt_nt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oftt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oftt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
