file(REMOVE_RECURSE
  "CMakeFiles/oftt_core.dir/api.cpp.o"
  "CMakeFiles/oftt_core.dir/api.cpp.o.d"
  "CMakeFiles/oftt_core.dir/checkpoint.cpp.o"
  "CMakeFiles/oftt_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/oftt_core.dir/diverter.cpp.o"
  "CMakeFiles/oftt_core.dir/diverter.cpp.o.d"
  "CMakeFiles/oftt_core.dir/engine.cpp.o"
  "CMakeFiles/oftt_core.dir/engine.cpp.o.d"
  "CMakeFiles/oftt_core.dir/engine_com.cpp.o"
  "CMakeFiles/oftt_core.dir/engine_com.cpp.o.d"
  "CMakeFiles/oftt_core.dir/ftim.cpp.o"
  "CMakeFiles/oftt_core.dir/ftim.cpp.o.d"
  "CMakeFiles/oftt_core.dir/monitor.cpp.o"
  "CMakeFiles/oftt_core.dir/monitor.cpp.o.d"
  "CMakeFiles/oftt_core.dir/wire.cpp.o"
  "CMakeFiles/oftt_core.dir/wire.cpp.o.d"
  "liboftt_core.a"
  "liboftt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
