file(REMOVE_RECURSE
  "CMakeFiles/bench_dcom_faults.dir/bench_dcom_faults.cpp.o"
  "CMakeFiles/bench_dcom_faults.dir/bench_dcom_faults.cpp.o.d"
  "bench_dcom_faults"
  "bench_dcom_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dcom_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
