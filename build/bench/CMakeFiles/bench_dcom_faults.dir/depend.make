# Empty dependencies file for bench_dcom_faults.
# This may be replaced when dependencies are built.
