file(REMOVE_RECURSE
  "CMakeFiles/bench_networks.dir/bench_networks.cpp.o"
  "CMakeFiles/bench_networks.dir/bench_networks.cpp.o.d"
  "bench_networks"
  "bench_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
