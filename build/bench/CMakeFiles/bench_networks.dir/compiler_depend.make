# Empty compiler generated dependencies file for bench_networks.
# This may be replaced when dependencies are built.
