# Empty compiler generated dependencies file for bench_checkpoint.
# This may be replaced when dependencies are built.
