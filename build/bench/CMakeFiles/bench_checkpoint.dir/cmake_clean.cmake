file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint.dir/bench_checkpoint.cpp.o"
  "CMakeFiles/bench_checkpoint.dir/bench_checkpoint.cpp.o.d"
  "bench_checkpoint"
  "bench_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
