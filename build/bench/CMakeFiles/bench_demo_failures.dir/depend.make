# Empty dependencies file for bench_demo_failures.
# This may be replaced when dependencies are built.
