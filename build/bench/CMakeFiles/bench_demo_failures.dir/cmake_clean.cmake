file(REMOVE_RECURSE
  "CMakeFiles/bench_demo_failures.dir/bench_demo_failures.cpp.o"
  "CMakeFiles/bench_demo_failures.dir/bench_demo_failures.cpp.o.d"
  "bench_demo_failures"
  "bench_demo_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_demo_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
