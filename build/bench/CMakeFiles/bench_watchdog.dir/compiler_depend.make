# Empty compiler generated dependencies file for bench_watchdog.
# This may be replaced when dependencies are built.
