file(REMOVE_RECURSE
  "CMakeFiles/bench_watchdog.dir/bench_watchdog.cpp.o"
  "CMakeFiles/bench_watchdog.dir/bench_watchdog.cpp.o.d"
  "bench_watchdog"
  "bench_watchdog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
