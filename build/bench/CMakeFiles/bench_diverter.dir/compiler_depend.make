# Empty compiler generated dependencies file for bench_diverter.
# This may be replaced when dependencies are built.
