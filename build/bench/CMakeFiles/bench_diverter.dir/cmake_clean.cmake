file(REMOVE_RECURSE
  "CMakeFiles/bench_diverter.dir/bench_diverter.cpp.o"
  "CMakeFiles/bench_diverter.dir/bench_diverter.cpp.o.d"
  "bench_diverter"
  "bench_diverter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diverter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
