file(REMOVE_RECURSE
  "CMakeFiles/bench_startup.dir/bench_startup.cpp.o"
  "CMakeFiles/bench_startup.dir/bench_startup.cpp.o.d"
  "bench_startup"
  "bench_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
