# Empty dependencies file for bench_startup.
# This may be replaced when dependencies are built.
