# Empty compiler generated dependencies file for bench_ftim_overhead.
# This may be replaced when dependencies are built.
