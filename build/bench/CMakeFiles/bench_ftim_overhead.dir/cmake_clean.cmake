file(REMOVE_RECURSE
  "CMakeFiles/bench_ftim_overhead.dir/bench_ftim_overhead.cpp.o"
  "CMakeFiles/bench_ftim_overhead.dir/bench_ftim_overhead.cpp.o.d"
  "bench_ftim_overhead"
  "bench_ftim_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ftim_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
