file(REMOVE_RECURSE
  "CMakeFiles/bench_failover.dir/bench_failover.cpp.o"
  "CMakeFiles/bench_failover.dir/bench_failover.cpp.o.d"
  "bench_failover"
  "bench_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
