# Empty compiler generated dependencies file for bench_topologies.
# This may be replaced when dependencies are built.
