file(REMOVE_RECURSE
  "CMakeFiles/bench_topologies.dir/bench_topologies.cpp.o"
  "CMakeFiles/bench_topologies.dir/bench_topologies.cpp.o.d"
  "bench_topologies"
  "bench_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
