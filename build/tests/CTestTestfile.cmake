# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bytes_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/nt_test[1]_include.cmake")
include("/root/repo/build/tests/com_test[1]_include.cmake")
include("/root/repo/build/tests/dcom_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
include("/root/repo/build/tests/msmq_test[1]_include.cmake")
include("/root/repo/build/tests/opc_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/startup_test[1]_include.cmake")
include("/root/repo/build/tests/watchdog_test[1]_include.cmake")
include("/root/repo/build/tests/diverter_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_com_test[1]_include.cmake")
include("/root/repo/build/tests/opc_server_unit_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/ftim_test[1]_include.cmake")
include("/root/repo/build/tests/ring_log_test[1]_include.cmake")
include("/root/repo/build/tests/deadband_quota_test[1]_include.cmake")
include("/root/repo/build/tests/dcom_edge_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/deployment_test[1]_include.cmake")
include("/root/repo/build/tests/opc_connection_test[1]_include.cmake")
