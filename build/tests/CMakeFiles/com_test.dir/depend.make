# Empty dependencies file for com_test.
# This may be replaced when dependencies are built.
