file(REMOVE_RECURSE
  "CMakeFiles/com_test.dir/com/com_test.cpp.o"
  "CMakeFiles/com_test.dir/com/com_test.cpp.o.d"
  "com_test"
  "com_test.pdb"
  "com_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/com_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
