# Empty dependencies file for dcom_test.
# This may be replaced when dependencies are built.
