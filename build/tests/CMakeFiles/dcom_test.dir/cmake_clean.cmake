file(REMOVE_RECURSE
  "CMakeFiles/dcom_test.dir/dcom/dcom_test.cpp.o"
  "CMakeFiles/dcom_test.dir/dcom/dcom_test.cpp.o.d"
  "dcom_test"
  "dcom_test.pdb"
  "dcom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
