file(REMOVE_RECURSE
  "CMakeFiles/deadband_quota_test.dir/opc/deadband_quota_test.cpp.o"
  "CMakeFiles/deadband_quota_test.dir/opc/deadband_quota_test.cpp.o.d"
  "deadband_quota_test"
  "deadband_quota_test.pdb"
  "deadband_quota_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadband_quota_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
