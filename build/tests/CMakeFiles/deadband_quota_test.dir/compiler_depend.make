# Empty compiler generated dependencies file for deadband_quota_test.
# This may be replaced when dependencies are built.
