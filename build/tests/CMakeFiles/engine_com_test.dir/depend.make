# Empty dependencies file for engine_com_test.
# This may be replaced when dependencies are built.
