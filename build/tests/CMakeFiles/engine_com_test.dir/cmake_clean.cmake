file(REMOVE_RECURSE
  "CMakeFiles/engine_com_test.dir/core/engine_com_test.cpp.o"
  "CMakeFiles/engine_com_test.dir/core/engine_com_test.cpp.o.d"
  "engine_com_test"
  "engine_com_test.pdb"
  "engine_com_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_com_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
