# Empty dependencies file for ring_log_test.
# This may be replaced when dependencies are built.
