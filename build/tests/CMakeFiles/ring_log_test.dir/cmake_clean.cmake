file(REMOVE_RECURSE
  "CMakeFiles/ring_log_test.dir/nt/ring_log_test.cpp.o"
  "CMakeFiles/ring_log_test.dir/nt/ring_log_test.cpp.o.d"
  "ring_log_test"
  "ring_log_test.pdb"
  "ring_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
