file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_test.dir/core/checkpoint_test.cpp.o"
  "CMakeFiles/checkpoint_test.dir/core/checkpoint_test.cpp.o.d"
  "checkpoint_test"
  "checkpoint_test.pdb"
  "checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
