file(REMOVE_RECURSE
  "CMakeFiles/ftim_test.dir/core/ftim_test.cpp.o"
  "CMakeFiles/ftim_test.dir/core/ftim_test.cpp.o.d"
  "ftim_test"
  "ftim_test.pdb"
  "ftim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
