# Empty dependencies file for ftim_test.
# This may be replaced when dependencies are built.
