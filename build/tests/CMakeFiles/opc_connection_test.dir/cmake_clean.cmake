file(REMOVE_RECURSE
  "CMakeFiles/opc_connection_test.dir/opc/opc_connection_test.cpp.o"
  "CMakeFiles/opc_connection_test.dir/opc/opc_connection_test.cpp.o.d"
  "opc_connection_test"
  "opc_connection_test.pdb"
  "opc_connection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opc_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
