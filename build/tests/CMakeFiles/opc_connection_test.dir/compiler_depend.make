# Empty compiler generated dependencies file for opc_connection_test.
# This may be replaced when dependencies are built.
