file(REMOVE_RECURSE
  "CMakeFiles/nt_test.dir/nt/nt_test.cpp.o"
  "CMakeFiles/nt_test.dir/nt/nt_test.cpp.o.d"
  "nt_test"
  "nt_test.pdb"
  "nt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
