# Empty compiler generated dependencies file for nt_test.
# This may be replaced when dependencies are built.
