# Empty compiler generated dependencies file for msmq_test.
# This may be replaced when dependencies are built.
