file(REMOVE_RECURSE
  "CMakeFiles/msmq_test.dir/msmq/msmq_test.cpp.o"
  "CMakeFiles/msmq_test.dir/msmq/msmq_test.cpp.o.d"
  "msmq_test"
  "msmq_test.pdb"
  "msmq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msmq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
