# Empty compiler generated dependencies file for dcom_edge_test.
# This may be replaced when dependencies are built.
