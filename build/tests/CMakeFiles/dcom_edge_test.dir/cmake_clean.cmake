file(REMOVE_RECURSE
  "CMakeFiles/dcom_edge_test.dir/dcom/dcom_edge_test.cpp.o"
  "CMakeFiles/dcom_edge_test.dir/dcom/dcom_edge_test.cpp.o.d"
  "dcom_edge_test"
  "dcom_edge_test.pdb"
  "dcom_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcom_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
