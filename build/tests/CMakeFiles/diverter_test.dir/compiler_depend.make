# Empty compiler generated dependencies file for diverter_test.
# This may be replaced when dependencies are built.
