file(REMOVE_RECURSE
  "CMakeFiles/diverter_test.dir/core/diverter_test.cpp.o"
  "CMakeFiles/diverter_test.dir/core/diverter_test.cpp.o.d"
  "diverter_test"
  "diverter_test.pdb"
  "diverter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diverter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
