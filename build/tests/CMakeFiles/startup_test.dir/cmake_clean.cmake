file(REMOVE_RECURSE
  "CMakeFiles/startup_test.dir/core/startup_test.cpp.o"
  "CMakeFiles/startup_test.dir/core/startup_test.cpp.o.d"
  "startup_test"
  "startup_test.pdb"
  "startup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/startup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
