# Empty compiler generated dependencies file for startup_test.
# This may be replaced when dependencies are built.
