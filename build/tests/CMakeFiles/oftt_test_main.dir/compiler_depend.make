# Empty compiler generated dependencies file for oftt_test_main.
# This may be replaced when dependencies are built.
