file(REMOVE_RECURSE
  "CMakeFiles/oftt_test_main.dir/support/test_main.cpp.o"
  "CMakeFiles/oftt_test_main.dir/support/test_main.cpp.o.d"
  "liboftt_test_main.a"
  "liboftt_test_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oftt_test_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
