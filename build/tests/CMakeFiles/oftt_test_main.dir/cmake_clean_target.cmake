file(REMOVE_RECURSE
  "liboftt_test_main.a"
)
