file(REMOVE_RECURSE
  "CMakeFiles/opc_server_unit_test.dir/opc/opc_server_unit_test.cpp.o"
  "CMakeFiles/opc_server_unit_test.dir/opc/opc_server_unit_test.cpp.o.d"
  "opc_server_unit_test"
  "opc_server_unit_test.pdb"
  "opc_server_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opc_server_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
