# Empty dependencies file for opc_server_unit_test.
# This may be replaced when dependencies are built.
