# Empty dependencies file for bytes_test.
# This may be replaced when dependencies are built.
