
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/sim_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oftt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opc/CMakeFiles/oftt_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/msmq/CMakeFiles/oftt_msmq.dir/DependInfo.cmake"
  "/root/repo/build/src/dcom/CMakeFiles/oftt_dcom.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oftt_com.dir/DependInfo.cmake"
  "/root/repo/build/src/nt/CMakeFiles/oftt_nt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oftt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oftt_common.dir/DependInfo.cmake"
  "/root/repo/build/tests/CMakeFiles/oftt_test_main.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
