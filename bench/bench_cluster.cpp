// Experiment E8 — N-replica cluster mode (src/cluster/): what does
// generalizing the paper's node pair to N replicas cost, and what does
// it buy?
//
//  E8a: steady-state message overhead. Every member heartbeats every
//       other member (O(N^2) datagrams) and the primary gossips its
//       membership view; measured as datagrams/s on the wire for
//       N in {2,3,5,9}, engine-only deployments so nothing else talks.
//  E8b: failover latency. Kill the primary and time the rank-1 backup's
//       quorum-gated promotion: detection (peer timeout), ack
//       collection (PromoteRequest -> majority PromoteAck), negotiation
//       and promotion, per N, p50/p99 across seeds. N=2 needs no acks
//       (quorum 1) — the spread from N=2 to N=9 is the price of
//       split-brain safety.
//
// Exports BENCH_cluster.json.
#include <chrono>
#include <cinttypes>

#include "bench_util.h"
#include "chaos/coverage.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"
#include "support/counter_app.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

constexpr int kReplicaCounts[] = {2, 3, 5, 9};

// ---------------------------------------------------------------------
// E8a — steady-state heartbeat/gossip overhead.
// ---------------------------------------------------------------------

struct OverheadResult {
  std::int64_t dgrams_per_sec = 0;  // whole cluster
  std::int64_t per_member = 0;
  std::int64_t bytes_per_sec = 0;   // payload bytes offered to the wire
  std::int64_t bytes_per_member = 0;
};

OverheadResult run_overhead(int replicas, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::ClusterDeploymentOptions opts;
  opts.replicas = replicas;
  // Engine-only: no monitor, no MSMQ, no SCM, no app — every datagram
  // on the wire is membership traffic (heartbeats, gossip, campaigns).
  opts.with_monitor = false;
  opts.with_msmq = false;
  opts.with_scm = false;
  core::ClusterDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));  // converge the startup election

  const sim::SimTime window = sim::seconds(10);
  std::uint64_t before = sim.network(0).sent();
  std::uint64_t bytes_before = sim.network(0).bytes_sent();
  sim.run_for(window);
  std::uint64_t delta = sim.network(0).sent() - before;
  std::uint64_t bytes_delta = sim.network(0).bytes_sent() - bytes_before;

  OverheadResult r;
  auto secs = static_cast<std::uint64_t>(sim::to_seconds(window));
  r.dgrams_per_sec = static_cast<std::int64_t>(delta / secs);
  r.per_member = r.dgrams_per_sec / replicas;
  r.bytes_per_sec = static_cast<std::int64_t>(bytes_delta / secs);
  r.bytes_per_member = r.bytes_per_sec / replicas;
  return r;
}

// ---------------------------------------------------------------------
// E8b — failover latency per cluster size.
// ---------------------------------------------------------------------

struct PhaseSamples {
  std::vector<std::int64_t> detection, ack_collection, negotiation, promotion, total;
  std::vector<std::int64_t> observed;  // injection -> new primary, by polling
};

void run_failover_once(int replicas, std::uint64_t seed, PhaseSamples& out) {
  sim::Simulation sim(seed);
  core::ClusterDeploymentOptions opts;
  opts.replicas = replicas;
  opts.with_diverter = true;  // the replay phase only completes with one
  opts.app_factory = [](sim::Process& proc) {
    testsupport::CounterApp::Options app;
    app.tick = sim::milliseconds(10);
    proc.attachment<testsupport::CounterApp>(proc, app);
  };
  core::ClusterDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  if (dep.primary_node() != dep.node(0).id()) return;

  sim::SimTime injected = sim.now();
  dep.node(0).crash();

  sim::SimTime deadline = injected + sim::seconds(30);
  while (sim.now() < deadline && dep.primary_node() < 0) {
    sim.run_for(sim::milliseconds(1));
  }
  if (dep.primary_node() < 0) return;
  out.observed.push_back(sim.now() - injected);
  sim.run_for(sim::seconds(10));  // let the trace close (replay/reroute)

  for (const auto& t : sim.telemetry().spans().traces()) {
    if (!t.complete()) continue;
    out.detection.push_back(t.phase(obs::FailoverPhase::kDetection));
    out.ack_collection.push_back(t.phase(obs::FailoverPhase::kAckCollection));
    out.negotiation.push_back(t.phase(obs::FailoverPhase::kNegotiation));
    out.promotion.push_back(t.phase(obs::FailoverPhase::kPromotion));
    out.total.push_back(t.total());
  }
}

// ---------------------------------------------------------------------
// E8c — parallel lane: the N=9 membership workload under kParallel.
// ---------------------------------------------------------------------

struct ParallelLaneRun {
  double wall_s = 0;
  std::uint64_t hash = 0;
};

ParallelLaneRun run_parallel_lane(int replicas, std::uint64_t seed, int workers) {
  sim::Simulation sim(seed);
  if (workers > 0) {
    sim::EngineConfig cfg;
    cfg.kind = sim::EngineKind::kParallel;
    cfg.workers = workers;
    sim.set_engine(cfg);
  }
  core::ClusterDeploymentOptions opts;
  opts.replicas = replicas;
  opts.with_monitor = false;
  opts.with_msmq = false;
  opts.with_scm = false;
  core::ClusterDeployment dep(sim, opts);
  chaos::CoverageProbe probe(sim.telemetry());
  auto t0 = std::chrono::steady_clock::now();
  sim.run_until(sim::seconds(15));
  ParallelLaneRun r;
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  probe.finish();
  r.hash = probe.history_hash();
  return r;
}

void json_phase(obs::JsonWriter& w, const char* name, const std::vector<std::int64_t>& xs) {
  w.begin_object();
  w.kv("phase", name);
  w.kv("n", static_cast<std::uint64_t>(xs.size()));
  w.kv("p50_ns", obs::percentile(xs, 0.50));
  w.kv("p99_ns", obs::percentile(xs, 0.99));
  w.end_object();
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(15);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "cluster");
  w.kv("seeds", static_cast<std::uint64_t>(kSeeds));
  w.key("sizes");
  w.begin_array();

  title("E8a: steady-state membership overhead",
        "engine-only clusters; every datagram is heartbeat/gossip/campaign traffic; "
        "all-to-all heartbeats make this O(N^2)");
  row({"replicas", "quorum", "dgrams/s", "per member", "bytes/s", "B/s member"});
  rule(6);
  std::vector<OverheadResult> overhead;
  for (int n : kReplicaCounts) {
    OverheadResult r = run_overhead(n, 11);
    overhead.push_back(r);
    row({fmt_int(n), fmt_int(cluster::quorum_required(static_cast<std::size_t>(n))),
         fmt_int(r.dgrams_per_sec), fmt_int(r.per_member), fmt_int(r.bytes_per_sec),
         fmt_int(r.bytes_per_member)});
  }

  title("E8b: failover latency vs cluster size",
        "kill the primary; rank-1 backup must campaign, collect a majority of "
        "PromoteAcks, and promote; p50/p99 over " +
            std::to_string(kSeeds) + " seeds");
  row({"N / phase", "p50 ms", "p99 ms", "traces"});
  rule(4);
  for (std::size_t i = 0; i < std::size(kReplicaCounts); ++i) {
    int n = kReplicaCounts[i];
    // One independent simulation per seed: run them on the sweep pool
    // and concatenate the phase samples in seed order afterwards, which
    // reproduces the old serial loop's sample order exactly.
    std::vector<PhaseSamples> runs = sweep_seeds(kSeeds, [&](int s) {
      PhaseSamples one;
      run_failover_once(n, static_cast<std::uint64_t>(s) * 131 + 3, one);
      return one;
    });
    PhaseSamples ps;
    for (const PhaseSamples& one : runs) {
      for (auto [dst, src] : {std::pair{&ps.detection, &one.detection},
                              {&ps.ack_collection, &one.ack_collection},
                              {&ps.negotiation, &one.negotiation},
                              {&ps.promotion, &one.promotion},
                              {&ps.total, &one.total},
                              {&ps.observed, &one.observed}}) {
        dst->insert(dst->end(), src->begin(), src->end());
      }
    }
    const std::vector<std::pair<const char*, const std::vector<std::int64_t>*>> phases = {
        {"detection", &ps.detection},   {"ack_collection", &ps.ack_collection},
        {"negotiation", &ps.negotiation}, {"promotion", &ps.promotion},
        {"total", &ps.total},           {"observed", &ps.observed}};
    for (const auto& [name, xs] : phases) {
      row({"N=" + std::to_string(n) + " " + name,
           fmt(static_cast<double>(obs::percentile(*xs, 0.50)) / 1e6, 2),
           fmt(static_cast<double>(obs::percentile(*xs, 0.99)) / 1e6, 2),
           fmt_int(static_cast<long long>(xs->size()))});
    }

    w.begin_object();
    w.kv("replicas", n);
    w.kv("quorum", static_cast<std::uint64_t>(
                       cluster::quorum_required(static_cast<std::size_t>(n))));
    w.kv("steady_dgrams_per_sec", overhead[i].dgrams_per_sec);
    w.kv("steady_dgrams_per_sec_per_member", overhead[i].per_member);
    w.kv("steady_bytes_per_sec", overhead[i].bytes_per_sec);
    w.kv("steady_bytes_per_sec_per_member", overhead[i].bytes_per_member);
    w.key("failover_phases");
    w.begin_array();
    for (const auto& [name, xs] : phases) json_phase(w, name, *xs);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // E8c -------------------------------------------------------------------
  title("E8c: parallel lane — N=9 membership workload under kParallel",
        "same deployment on the parallel engine; telemetry digest must be "
        "invariant across worker counts");
  row({"engine", "wall s", "digest"});
  rule(3);
  ParallelLaneRun lane_seq = run_parallel_lane(9, 11, 0);
  char lane_hex[32];
  std::snprintf(lane_hex, sizeof lane_hex, "%016" PRIx64, lane_seq.hash);
  row({"sequential", fmt(lane_seq.wall_s, 3), lane_hex});
  bool lane_ok = true;
  std::uint64_t lane_ref = 0;
  w.key("parallel_lane");
  w.begin_array();
  for (int workers : {1, 2, 4}) {
    ParallelLaneRun r = run_parallel_lane(9, 11, workers);
    if (workers == 1) lane_ref = r.hash;
    if (r.hash != lane_ref) lane_ok = false;
    std::snprintf(lane_hex, sizeof lane_hex, "%016" PRIx64, r.hash);
    row({"parallel W=" + std::to_string(workers), fmt(r.wall_s, 3), lane_hex});
    w.begin_object();
    w.kv("workers", workers);
    w.kv("wall_s", r.wall_s);
    w.kv("hash", lane_hex);
    w.end_object();
  }
  w.end_array();
  w.kv("parallel_lane_ok", lane_ok);
  w.end_object();
  write_file("BENCH_cluster.json", w.take());
  if (!lane_ok) {
    std::printf("DETERMINISM VIOLATION: parallel digest diverged across worker counts\n");
    return 1;
  }

  std::printf(
      "\n(detection dominates and is configuration-bound — peer_timeout — so failover\n"
      " latency is nearly flat in N; ack collection adds one LAN round trip once N > 2;\n"
      " the steady-state cost of that safety grows quadratically with N)\n");
  return 0;
}
