// Experiment E16 — the sharded million-tag OPC data plane.
//
// The seed's OPC path polled every subscribed item every group tick
// (O(items × groups) string-keyed reads) and shipped one ORPC call per
// (group, tick) with tag names repeated in every update. E16 measures
// what the TagStore + SubscriptionHub + coalesced-notify rework buys,
// at the roadmap's scale:
//
//  E16a: change-driven group tick cost vs tag count — one group over
//        N ∈ {10⁴..10⁶} tags, C tags mutated per tick. The invariant
//        (asserted, not just reported): notifications == changed tags
//        exactly, independent of N. Wall-clock notifications/s is the
//        floor-gated throughput of the whole hub→group→sink path.
//  E16b: coalescing and update-to-notify latency vs client count —
//        clients spread over 10 nodes, several subscriptions per node;
//        batches-per-frame shows every frame shared across a node's
//        groups, p99 latency comes from the plane's own histogram.
//  E16c: failover vs tag count — a warm-passive pair whose application
//        state is a TagStore bound to one region per shard. Delta
//        checkpoint bytes track the mutation rate (not the tag count)
//        and crash-to-progress switchover stays sub-second at 10⁶ tags.
//
// Exports BENCH_opc.json. The JSON carries only sim-domain values
// (byte-identical per seed at any worker-thread count — the CI
// determinism lane diffs it); wall-clock throughput appears on stdout
// only, where the OFTT_BENCH_ENFORCE_FLOOR gate reads it.
#include <chrono>
#include <memory>

#include "bench_util.h"
#include "com/object.h"
#include "core/api.h"
#include "core/deployment.h"
#include "dcom/scm.h"
#include "nt/runtime.h"
#include "obs/json.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/notify.h"
#include "opc/server.h"
#include "opc_floor.h"
#include "pdes/pdes_scenarios.h"
#include "sim/simulation.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------
// E16a — change-driven group tick cost vs tag count.
// ---------------------------------------------------------------------

class CountingSink final : public com::Object<CountingSink, opc::IOPCDataCallback> {
 public:
  void OnDataChange(std::uint32_t, const std::vector<opc::ItemState>& items) override {
    delivered += items.size();
  }
  void OnReadComplete(std::uint32_t, HRESULT, const std::vector<opc::ItemState>&) override {}
  std::uint64_t delivered = 0;
};

struct TickCost {
  int tags = 0;
  int changed_per_tick = 0;
  int ticks = 0;
  std::uint64_t notified = 0;   // during the measured window (sim-exact)
  std::uint64_t routed = 0;     // hub routes during the window
  double wall_s = 0;            // stdout/floor only, never exported
  double notify_per_sec() const {
    return wall_s > 0 ? static_cast<double>(notified) / wall_s : 0;
  }
};

TickCost run_tick_cost(int tags, int changed, int ticks, std::uint64_t seed) {
  const sim::SimTime rate = sim::milliseconds(10);
  sim::Simulation sim(seed);
  auto& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("srv", nullptr);

  auto dev = std::make_shared<opc::Device>("plant");
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(tags));
  for (int i = 0; i < tags; ++i) names.push_back("t" + std::to_string(i));
  for (int i = 0; i < tags; ++i) {
    opc::TagId id = dev->store().intern(names[static_cast<std::size_t>(i)]);
    dev->store().set(id, opc::OpcValue::from_real(0.0), opc::Quality::kGood, sim.now());
  }

  auto group = opc::OpcGroupObject::create(*proc, dev, "bench", rate);
  group->AddItems(names, nullptr);
  auto sink = CountingSink::create();
  group->SetCallback(com::ComPtr<opc::IOPCDataCallback>(sink.get()), nullptr);
  // Warm: the fresh subscription announces all N once; offset the
  // window boundaries off the tick instants.
  sim.run_for(2 * rate + rate / 2);

  TickCost r;
  r.tags = tags;
  r.changed_per_tick = changed;
  r.ticks = ticks;
  const std::uint64_t notified0 = group->notified_total();
  const std::uint64_t routed0 = dev->hub().routed();
  const auto wall0 = Clock::now();
  for (int t = 0; t < ticks; ++t) {
    int start = (t * changed) % tags;
    for (int c = 0; c < changed; ++c) {
      opc::TagId id = static_cast<opc::TagId>((start + c) % tags);
      dev->store().set(id, opc::OpcValue::from_real(static_cast<double>(t + 1)),
                       opc::Quality::kGood, sim.now());
    }
    sim.run_for(rate);
  }
  sim.run_for(2 * rate);  // drain the final mutation
  r.wall_s = std::chrono::duration<double>(Clock::now() - wall0).count();
  r.notified = group->notified_total() - notified0;
  r.routed = dev->hub().routed() - routed0;
  return r;
}

// ---------------------------------------------------------------------
// E16b — coalescing and latency vs client count.
// ---------------------------------------------------------------------

const Clsid kClsid = Guid::from_name("CLSID_BenchOpcPlc");

struct CoalesceResult {
  int clients = 0;
  int client_nodes = 0;
  int connected = 0;
  std::uint64_t frames = 0;        // server plane frames in the window
  std::uint64_t batches = 0;       // client-side OnDataChange batches
  std::uint64_t notifications = 0; // items delivered in the window
  std::int64_t latency_p50_ns = 0; // update-to-notify, plane histogram
  std::int64_t latency_p99_ns = 0;
  std::uint64_t dropped = 0;
  double coalesce_ratio() const {
    return frames > 0 ? static_cast<double>(batches) / static_cast<double>(frames) : 0;
  }
};

CoalesceResult run_coalesce(int clients, std::uint64_t seed) {
  sim::Simulation sim(seed);
  auto& server = sim.add_node("server");
  auto& net = sim.add_network("lan");
  net.attach(server.id());
  // Fixed latency: the independent connection handshakes complete in
  // lockstep, so the groups of a client node tick at the same instants
  // — the alignment frame coalescing exploits.
  net.set_latency(sim::milliseconds(1), sim::milliseconds(1));
  server.set_boot_script([](sim::Node& node) {
    dcom::install_scm(node);
    node.start_process("opcserver", [](sim::Process& proc) {
      auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(50));
      plc->add_input("s0", std::make_unique<opc::CounterSignal>());
      plc->add_input("s1", std::make_unique<opc::SineSignal>(50.0, 20.0, 0.7));
      plc->add_input("s2", std::make_unique<opc::SineSignal>(10.0, 5.0, 1.3));
      plc->add_input("s3", std::make_unique<opc::CounterSignal>());
      opc::install_opc_server(proc, kClsid, plc, "bench");
    });
  });
  server.boot();

  CoalesceResult r;
  r.clients = clients;
  r.client_nodes = std::min(clients, 10);
  const int per_node = clients / r.client_nodes;
  std::uint64_t batches = 0, notifications = 0;
  std::vector<std::shared_ptr<sim::Process>> hmis;
  std::vector<std::unique_ptr<opc::OpcConnection>> conns;
  for (int n = 0; n < r.client_nodes; ++n) {
    auto& cn = sim.add_node("client" + std::to_string(n));
    net.attach(cn.id());
    cn.boot();
    auto hmi = cn.start_process("hmi", nullptr);
    for (int c = 0; c < per_node; ++c) {
      opc::OpcConnection::Config cfg;
      cfg.batched_notifications = true;
      auto conn = std::make_unique<opc::OpcConnection>(*hmi, server.id(), kClsid, cfg);
      conn->subscribe({"s0", "s1", "s2", "s3"},
                      [&batches, &notifications](const std::vector<opc::ItemState>& items) {
                        ++batches;
                        notifications += items.size();
                      });
      conns.push_back(std::move(conn));
    }
    hmis.push_back(std::move(hmi));
  }
  sim.run_for(sim::seconds(3));  // connect + initial announces

  opc::NotifyPlane* plane = nullptr;
  if (auto proc = server.find_process("opcserver")) {
    plane = proc->find_attachment<opc::NotifyPlane>();
  }
  const std::uint64_t frames0 = plane != nullptr ? plane->frames_sent() : 0;
  const std::uint64_t batches0 = batches, items0 = notifications;
  sim.run_for(sim::seconds(5));  // measured window

  for (const auto& c : conns) {
    if (c->connected()) ++r.connected;
  }
  r.frames = (plane != nullptr ? plane->frames_sent() : 0) - frames0;
  r.batches = batches - batches0;
  r.notifications = notifications - items0;
  r.dropped = plane != nullptr ? plane->batches_dropped() : 0;
  const auto& hists = sim.telemetry().metrics().histograms();
  if (auto it = hists.find("oftt.opc.update_to_notify_ns"); it != hists.end()) {
    r.latency_p50_ns = it->second->quantile(0.50);
    r.latency_p99_ns = it->second->quantile(0.99);
  }
  return r;
}

// ---------------------------------------------------------------------
// E16c — warm-passive failover with a region-sharded TagStore.
// ---------------------------------------------------------------------

struct TagPlantOptions {
  core::FtimOptions ftim;
  int tags = 10'000;
  int mutate_per_tick = 256;
  sim::SimTime tick = sim::milliseconds(20);
};

/// The application under test: plant state is a TagStore sharded into
/// nt regions ("tags.<shard>") so FTIM delta checkpoints carry only
/// mutated slots. Tag 0 is the progress counter the switchover
/// measurement watches; while active, every tick bumps it and rewrites
/// a round-robin window of `mutate_per_tick` tags.
class TagPlantApp {
 public:
  TagPlantApp(sim::Process& process, TagPlantOptions options)
      : process_(&process),
        options_(options),
        store_(32),
        timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("plant_main", 0x501000);
    for (int i = 0; i < options_.tags; ++i) store_.intern("p" + std::to_string(i));
    for (int i = 0; i < options_.tags; ++i) {
      store_.set(static_cast<opc::TagId>(i), opc::OpcValue::from_real(0.0),
                 opc::Quality::kGood, process.sim().now());
    }
    store_.bind_regions(rt.memory(), "tags");
    core::OFTTInitialize(process, options_.ftim);
    core::Ftim& ftim = *core::Ftim::find(process);
    ftim.on_activate([this](bool) {
      // Re-read the (possibly FTIM-restored) region bytes into the
      // store's RAM arrays unconditionally: on the initial activation
      // the regions hold the just-bound initial slots, so the reload is
      // the identity; after a failover they hold the streamed state.
      store_.reload_from_regions();
      tick_count_ = static_cast<std::uint32_t>(store_.value(0).as_int(0));
      timer_.start(options_.tick, [this] { plant_tick(); });
    });
    ftim.on_deactivate([this] { timer_.stop(); });
  }

  std::uint32_t ticks() const { return tick_count_; }
  const opc::TagStore& store() const { return store_; }

  static TagPlantApp* find(sim::Node& node) {
    auto proc = node.find_process("app");
    return proc && proc->alive() ? proc->find_attachment<TagPlantApp>() : nullptr;
  }

 private:
  void plant_tick() {
    ++tick_count_;
    sim::SimTime now = process_->sim().now();
    store_.set(0, opc::OpcValue::from_int(static_cast<std::int32_t>(tick_count_)),
               opc::Quality::kGood, now);
    const int span = options_.tags - 1;
    int start = 1 + static_cast<int>((static_cast<std::uint64_t>(tick_count_) *
                                      static_cast<std::uint64_t>(options_.mutate_per_tick)) %
                                     static_cast<std::uint64_t>(span));
    for (int c = 0; c < options_.mutate_per_tick; ++c) {
      auto id = static_cast<opc::TagId>(1 + (start - 1 + c) % span);
      store_.set(id, opc::OpcValue::from_real(static_cast<double>(tick_count_)),
                 opc::Quality::kGood, now);
    }
  }

  sim::Process* process_;
  TagPlantOptions options_;
  opc::TagStore store_;
  sim::PeriodicTimer timer_;
  std::uint32_t tick_count_ = 0;
};

struct FailoverResult {
  sim::SimTime switchover_ns = -1;  // crash -> survivor app progressing
  std::int64_t ticks_lost = 0;      // progress-counter staleness at takeover
  std::uint64_t full_bytes = 0;     // primary lifetime totals at crash time
  std::uint64_t delta_bytes = 0;
  std::uint64_t window_delta_bytes = 0;  // 3 s steady-state window
};

FailoverResult run_failover(int tags, int mutate, std::uint64_t seed) {
  FailoverResult out;
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.engine.replication = core::ReplicationMode::kWarmPassive;
  TagPlantOptions app;
  app.tags = tags;
  app.mutate_per_tick = mutate;
  app.ftim.replication = core::ReplicationMode::kWarmPassive;
  app.ftim.checkpoint_period = sim::milliseconds(500);
  app.ftim.delta_stream_period = sim::milliseconds(50);
  app.ftim.restore_rate_bytes_per_s = 64ull * 1024 * 1024;
  opts.app_factory = [app](sim::Process& proc) {
    proc.attachment<TagPlantApp>(proc, app);
  };
  core::PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  int primary = dep.primary_node();
  if (primary < 0) return out;

  // Steady-state delta traffic over a 3 s window, after the initial
  // full image has shipped: bytes ∝ mutation rate, not tag count.
  std::uint64_t window0 = 0;
  if (core::Ftim* f = dep.ftim_on(*dep.node_by_id(primary))) {
    window0 = f->delta_bytes_sent();
  }
  sim.run_for(sim::seconds(3));
  if (core::Ftim* f = dep.ftim_on(*dep.node_by_id(primary))) {
    out.window_delta_bytes = f->delta_bytes_sent() - window0;
    out.full_bytes = f->full_bytes_sent();
    out.delta_bytes = f->delta_bytes_sent();
  }

  sim::Node& survivor = primary == dep.node_a().id() ? dep.node_b() : dep.node_a();
  auto* primary_app = TagPlantApp::find(*dep.node_by_id(primary));
  if (primary_app == nullptr) return out;
  const std::int64_t before = primary_app->ticks();
  const sim::SimTime injected = sim.now();
  dep.node_by_id(primary)->crash();

  const sim::SimTime deadline = injected + sim::seconds(20);
  while (sim.now() < deadline) {
    sim.run_for(sim::milliseconds(1));
    auto* app = TagPlantApp::find(survivor);
    if (app != nullptr && dep.primary_node() == survivor.id() &&
        static_cast<std::int64_t>(app->ticks()) > before) {
      out.switchover_ns = sim.now() - injected;
      out.ticks_lost =
          std::max<std::int64_t>(0, before + 1 - static_cast<std::int64_t>(app->ticks()));
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  bool floor_ok = true;
  bool invariant_ok = true;

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "opc");

  // E16a -----------------------------------------------------------------
  const std::vector<int> tag_counts = smoke_mode()
                                          ? std::vector<int>{1'000, 10'000}
                                          : std::vector<int>{10'000, 100'000, 1'000'000};
  const int kChanged = smoke_mode() ? 100 : 1'000;
  const int kTicks = smoke_mode() ? 10 : 50;
  title("E16a: change-driven group tick cost vs tag count",
        "one group over N tags, " + std::to_string(kChanged) +
            " mutated per 10 ms tick; notifications must equal changed tags "
            "exactly — O(changed), never O(tags)");
  row({"N tags", "notified", "expected", "hub routed", "wall notif/s"});
  rule(5);
  std::vector<TickCost> tick_costs;
  for (int n : tag_counts) {
    TickCost r = run_tick_cost(n, kChanged, kTicks, 17);
    tick_costs.push_back(r);
    row({fmt_int(n), fmt_int(static_cast<long long>(r.notified)),
         fmt_int(static_cast<long long>(kChanged) * kTicks),
         fmt_int(static_cast<long long>(r.routed)), fmt(r.notify_per_sec() / 1e6, 2) + "M"});
    if (r.notified != static_cast<std::uint64_t>(kChanged) * static_cast<std::uint64_t>(kTicks)) {
      invariant_ok = false;
    }
    if (r.notify_per_sec() < 0.7 * kFloorNotifyPerSec) floor_ok = false;
  }

  // E16b -----------------------------------------------------------------
  const std::vector<int> client_counts =
      smoke_mode() ? std::vector<int>{20} : std::vector<int>{100, 1'000, 10'000};
  title("E16b: coalesced frames and update-to-notify latency vs clients",
        "subscriptions spread over up to 10 client nodes, 4 items each at 100 ms; "
        "batches-per-frame > 1 means frames are shared across a node's groups");
  row({"clients", "connected", "frames", "batches", "batch/frame", "p99 ms"});
  rule(6);
  std::vector<CoalesceResult> coalesce;
  for (int c : client_counts) {
    CoalesceResult r = run_coalesce(c, 29);
    coalesce.push_back(r);
    row({fmt_int(c), fmt_int(r.connected), fmt_int(static_cast<long long>(r.frames)),
         fmt_int(static_cast<long long>(r.batches)), fmt(r.coalesce_ratio(), 2),
         fmt(static_cast<double>(r.latency_p99_ns) / 1e6, 2)});
    if (r.coalesce_ratio() < kFloorCoalesceRatio) floor_ok = false;
  }

  // E16c -----------------------------------------------------------------
  const std::vector<int> failover_tags = smoke_mode()
                                             ? std::vector<int>{5'000}
                                             : std::vector<int>{10'000, 100'000, 1'000'000};
  const int kMutate = 256;
  const int kSeeds = seeds_or(3, 2);
  title("E16c: warm-passive failover with region-sharded tag state",
        "pair deployment, app state = TagStore bound to one region per shard, " +
            std::to_string(kMutate) +
            " tags mutated per 20 ms tick; delta bytes follow the mutation rate "
            "and switchover stays sub-second at any tag count");
  row({"N tags", "switch p50 ms", "switch p99 ms", "ticks lost", "delta B/s", "runs"});
  rule(6);
  struct FailoverAgg {
    int tags = 0;
    std::vector<std::int64_t> switchovers;
    std::int64_t max_ticks_lost = 0;
    std::uint64_t window_delta_bytes = 0;
    std::uint64_t full_bytes = 0;
  };
  std::vector<FailoverAgg> failover_aggs;
  for (int n : failover_tags) {
    std::vector<FailoverResult> runs = sweep_seeds(kSeeds, [&](int s) {
      return run_failover(n, kMutate, static_cast<std::uint64_t>(s) * 613 + 3);
    });
    FailoverAgg agg;
    agg.tags = n;
    for (const FailoverResult& one : runs) {
      if (one.switchover_ns >= 0) agg.switchovers.push_back(one.switchover_ns);
      agg.max_ticks_lost = std::max(agg.max_ticks_lost, one.ticks_lost);
      agg.window_delta_bytes = std::max(agg.window_delta_bytes, one.window_delta_bytes);
      agg.full_bytes = std::max(agg.full_bytes, one.full_bytes);
    }
    std::int64_t p50 = obs::percentile(agg.switchovers, 0.50);
    std::int64_t p99 = obs::percentile(agg.switchovers, 0.99);
    row({fmt_int(n), fmt(static_cast<double>(p50) / 1e6, 1),
         fmt(static_cast<double>(p99) / 1e6, 1),
         fmt_int(agg.max_ticks_lost),
         fmt_int(static_cast<long long>(agg.window_delta_bytes / 3)),
         fmt_int(static_cast<long long>(agg.switchovers.size()))});
    if (agg.switchovers.size() < static_cast<std::size_t>(kSeeds)) invariant_ok = false;
    if (p99 > kFloorSwitchoverP99Ns) floor_ok = false;
    failover_aggs.push_back(std::move(agg));
  }

  // JSON export (sim-domain values only — the CI determinism lane diffs
  // this file across worker-thread counts; wall-clock stays on stdout).
  w.kv("changed_per_tick", kChanged);
  w.kv("ticks", kTicks);
  w.key("tick_cost");
  w.begin_array();
  for (const TickCost& r : tick_costs) {
    w.begin_object();
    w.kv("tags", r.tags);
    w.kv("notified", r.notified);
    w.kv("expected", static_cast<std::uint64_t>(kChanged) * static_cast<std::uint64_t>(kTicks));
    w.kv("hub_routed", r.routed);
    w.end_object();
  }
  w.end_array();
  w.key("coalescing");
  w.begin_array();
  for (const CoalesceResult& r : coalesce) {
    w.begin_object();
    w.kv("clients", r.clients);
    w.kv("client_nodes", r.client_nodes);
    w.kv("connected", r.connected);
    w.kv("frames", r.frames);
    w.kv("batches", r.batches);
    w.kv("notifications", r.notifications);
    w.kv("batches_dropped", r.dropped);
    w.kv("latency_p50_ns", r.latency_p50_ns);
    w.kv("latency_p99_ns", r.latency_p99_ns);
    w.end_object();
  }
  w.end_array();
  w.key("failover");
  w.begin_array();
  for (const FailoverAgg& agg : failover_aggs) {
    w.begin_object();
    w.kv("tags", agg.tags);
    w.kv("runs", static_cast<std::uint64_t>(agg.switchovers.size()));
    w.kv("switchover_p50_ns", obs::percentile(agg.switchovers, 0.50));
    w.kv("switchover_p99_ns", obs::percentile(agg.switchovers, 0.99));
    w.kv("max_ticks_lost", agg.max_ticks_lost);
    w.kv("steady_delta_bytes_3s", agg.window_delta_bytes);
    w.kv("full_bytes_at_crash", agg.full_bytes);
    w.end_object();
  }
  w.end_array();
  // E16d -----------------------------------------------------------------
  // Parallel lane: the distributed tag farm (producers + historian)
  // under kParallel; the digest must be invariant across worker counts.
  const int kFarmProducers = smoke_mode() ? 4 : 10;
  const int kFarmTagsPerNode = smoke_mode() ? 1'000 : 10'000;
  title("E16d: parallel lane — distributed tag farm under kParallel",
        std::to_string(kFarmProducers) + " producer nodes x " +
            std::to_string(kFarmTagsPerNode) +
            " tags reporting to a historian; digest invariant across workers");
  row({"workers", "wall s", "digest"});
  rule(3);
  bool farm_ok = true;
  std::uint64_t farm_ref = 0;
  w.key("parallel_lane");
  w.begin_array();
  for (int workers : {1, 2, 4}) {
    sim::EngineConfig cfg;
    cfg.kind = sim::EngineKind::kParallel;
    cfg.workers = workers;
    auto t0 = Clock::now();
    std::uint64_t h = sim::pdestest::opc_farm_hash(17, kFarmProducers, kFarmTagsPerNode,
                                                   sim::seconds(2), &cfg);
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    if (workers == 1) farm_ref = h;
    if (h != farm_ref) farm_ok = false;
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(h));
    row({fmt_int(workers), fmt(wall, 3), hex});
    w.begin_object();
    w.kv("workers", workers);
    w.kv("hash", hex);
    w.end_object();
  }
  w.end_array();
  if (!farm_ok) invariant_ok = false;
  w.kv("parallel_lane_ok", farm_ok);

  w.kv("invariants_ok", invariant_ok);
  w.end_object();
  write_file("BENCH_opc.json", w.take());

  if (!invariant_ok) {
    std::printf("INVARIANT VIOLATION: notifications != changed tags, or a failover "
                "run never recovered\n");
    return 1;
  }
  const char* enforce = std::getenv("OFTT_BENCH_ENFORCE_FLOOR");
  if (enforce != nullptr && enforce[0] != '\0' && !floor_ok) {
    std::printf("FLOOR REGRESSION: a measurement fell below opc_floor.h "
                "(throughput < 70%% of floor, coalesce ratio, or switchover p99)\n");
    return 1;
  }
  std::printf(
      "\n(notifications tracked changed tags exactly at every N — the group tick\n"
      " is O(changed); frames were shared across each client node's groups; and\n"
      " warm-passive switchover stayed flat while only delta bytes, not tag\n"
      " count, rode the checkpoint stream)\n");
  return 0;
}
