// Experiment E2 — failure detection latency and recovery time for each
// of the paper's failure classes (§4: node failure, NT crash,
// application failure, OFTT middleware failure), swept over the
// heartbeat period / timeout configuration.
//
// Detection latency: failure injection -> first engine reaction
// (takeover or component-failure handling). Recovery time: injection ->
// the unit's application is active again (on either node) with state.
#include "bench_util.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"
#include "support/counter_app.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

enum class FailureClass { kNodeFailure, kNtCrash, kAppFailure, kMiddlewareFailure };

const char* failure_name(FailureClass f) {
  switch (f) {
    case FailureClass::kNodeFailure: return "(a) node failure";
    case FailureClass::kNtCrash: return "(b) NT crash";
    case FailureClass::kAppFailure: return "(c) app failure";
    case FailureClass::kMiddlewareFailure: return "(d) middleware";
  }
  return "?";
}

struct Result {
  double detect_ms = -1;
  double recover_ms = -1;
  bool state_continuous = false;
};

Result run_once(FailureClass failure, sim::SimTime hb_period, int timeout_multiple,
                std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.engine.heartbeat_period = hb_period;
  opts.engine.peer_timeout = hb_period * timeout_multiple;
  opts.engine.component_timeout = hb_period * timeout_multiple;
  opts.app_factory = [hb_period](sim::Process& proc) {
    testsupport::CounterApp::Options app;
    app.ftim.heartbeat_period = hb_period;
    app.ftim.checkpoint_period = hb_period * 2;
    app.tick = sim::milliseconds(10);
    proc.attachment<testsupport::CounterApp>(proc, app);
  };
  core::PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  if (dep.primary_node() != dep.node_a().id()) return {};

  std::int64_t count_before = testsupport::CounterApp::find(dep.node_a())->count();
  std::uint64_t failures_before = sim.counter_value("oftt.component_failures");
  std::uint64_t takeovers_before = sim.counter_value("oftt.takeovers");
  sim::SimTime injected = sim.now();

  switch (failure) {
    case FailureClass::kNodeFailure: dep.node_a().crash(); break;
    case FailureClass::kNtCrash: dep.node_a().os_crash(); break;
    case FailureClass::kAppFailure:
      dep.node_a().find_process("app")->kill("injected");
      break;
    case FailureClass::kMiddlewareFailure:
      dep.node_a().find_process("oftt_engine")->kill("injected");
      break;
  }

  Result res;
  // Step until the engine reacts, then until the app makes progress.
  sim::SimTime deadline = injected + sim::seconds(30);
  while (sim.now() < deadline && res.detect_ms < 0) {
    sim.run_for(sim::milliseconds(1));
    if (sim.counter_value("oftt.component_failures") > failures_before ||
        sim.counter_value("oftt.takeovers") > takeovers_before ||
        sim.counter_value("oftt.engine_restarts") > 0) {
      res.detect_ms = sim::to_millis(sim.now() - injected);
    }
  }
  while (sim.now() < deadline && res.recover_ms < 0) {
    sim.run_for(sim::milliseconds(1));
    int primary = dep.primary_node();
    if (primary < 0) continue;
    auto* app = testsupport::CounterApp::find(*dep.node_by_id(primary));
    if (app != nullptr && app->count() > count_before) {
      res.recover_ms = sim::to_millis(sim.now() - injected);
      // Continuity: no more than ~one checkpoint period of ticks lost.
      res.state_continuous = app->count() >= count_before - 8;
    }
  }
  return res;
}

// ---------------------------------------------------------------------
// E2b — per-phase failover latency from the telemetry spans.
// ---------------------------------------------------------------------

/// One phase's samples across seeds, in sim-time nanoseconds (integers,
/// so the JSON export is byte-identical for identical seeds).
struct PhaseSamples {
  std::vector<std::int64_t> detection, negotiation, promotion, replay, total;
};

enum class TraceClass { kNodeCrash, kNtCrash, kSwitchover };

const char* trace_class_name(TraceClass c) {
  switch (c) {
    case TraceClass::kNodeCrash: return "node_crash";
    case TraceClass::kNtCrash: return "nt_crash";
    case TraceClass::kSwitchover: return "switchover";
  }
  return "?";
}

/// Run one failover with the Message Diverter deployed (so the replay
/// phase completes) and harvest every complete trace's phase durations.
void run_trace_once(TraceClass cls, std::uint64_t seed, PhaseSamples& out) {
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.with_diverter = true;
  opts.app_factory = [](sim::Process& proc) {
    testsupport::CounterApp::Options app;
    app.tick = sim::milliseconds(10);
    proc.attachment<testsupport::CounterApp>(proc, app);
  };
  core::PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  if (dep.primary_node() != dep.node_a().id()) return;

  switch (cls) {
    case TraceClass::kNodeCrash: dep.node_a().crash(); break;
    case TraceClass::kNtCrash: dep.node_a().os_crash(); break;
    case TraceClass::kSwitchover:
      core::Engine::find(dep.node_a())->request_switchover("planned handoff");
      break;
  }
  sim.run_for(sim::seconds(20));

  for (const auto& t : sim.telemetry().spans().traces()) {
    if (!t.complete()) continue;
    out.detection.push_back(t.phase(obs::FailoverPhase::kDetection));
    out.negotiation.push_back(t.phase(obs::FailoverPhase::kNegotiation));
    out.promotion.push_back(t.phase(obs::FailoverPhase::kPromotion));
    out.replay.push_back(t.phase(obs::FailoverPhase::kReplay));
    out.total.push_back(t.total());
  }
}

void json_phase(obs::JsonWriter& w, const char* name, const std::vector<std::int64_t>& xs) {
  w.begin_object();
  w.kv("phase", name);
  w.kv("n", static_cast<std::uint64_t>(xs.size()));
  w.kv("p50_ns", obs::percentile(xs, 0.50));
  w.kv("p99_ns", obs::percentile(xs, 0.99));
  w.kv("min_ns", xs.empty() ? std::int64_t{0} : *std::min_element(xs.begin(), xs.end()));
  w.kv("max_ns", xs.empty() ? std::int64_t{0} : *std::max_element(xs.begin(), xs.end()));
  w.end_object();
}

void run_e2b(int seeds) {
  title("E2b: failover phase latencies (telemetry spans)",
        "one failover per seed with the Message Diverter deployed; phases from the "
        "detection -> negotiation -> promotion -> replay trace; p50/p99 over " +
            std::to_string(seeds) + " seeds");
  row({"class / phase", "p50 ms", "p99 ms", "traces"});
  rule(4);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "failover_phases");
  w.kv("seeds", static_cast<std::uint64_t>(seeds));
  w.key("classes");
  w.begin_array();
  for (TraceClass cls :
       {TraceClass::kNodeCrash, TraceClass::kNtCrash, TraceClass::kSwitchover}) {
    PhaseSamples ps;
    for (int s = 0; s < seeds; ++s) {
      run_trace_once(cls, static_cast<std::uint64_t>(s) * 131 + 3, ps);
    }
    const std::vector<std::pair<const char*, const std::vector<std::int64_t>*>> phases = {
        {"detection", &ps.detection}, {"negotiation", &ps.negotiation},
        {"promotion", &ps.promotion}, {"replay", &ps.replay},
        {"total", &ps.total}};
    for (const auto& [name, xs] : phases) {
      row({std::string(trace_class_name(cls)) + " " + name,
           fmt(static_cast<double>(obs::percentile(*xs, 0.50)) / 1e6, 2),
           fmt(static_cast<double>(obs::percentile(*xs, 0.99)) / 1e6, 2),
           fmt_int(static_cast<long long>(xs->size()))});
    }
    w.begin_object();
    w.kv("class", trace_class_name(cls));
    w.key("phases");
    w.begin_array();
    for (const auto& [name, xs] : phases) json_phase(w, name, *xs);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_file("BENCH_failover.json", w.take());
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(15);

  title("E2: detection latency and recovery time per failure class",
        "mean over " + std::to_string(kSeeds) +
            " seeds; detection = injection -> engine reaction; recovery = injection -> "
            "application active and progressing again (state restored)");

  for (auto [hb, mult] : {std::pair<sim::SimTime, int>{sim::milliseconds(100), 5},
                          {sim::milliseconds(50), 4},
                          {sim::milliseconds(20), 4},
                          {sim::milliseconds(200), 3}}) {
    std::printf("\nheartbeat period %.0f ms, timeout %.0f ms:\n", sim::to_millis(hb),
                sim::to_millis(hb * mult));
    row({"failure class", "detect ms", "recover ms", "state ok"});
    rule(4);
    for (FailureClass f : {FailureClass::kNodeFailure, FailureClass::kNtCrash,
                           FailureClass::kAppFailure, FailureClass::kMiddlewareFailure}) {
      std::vector<double> detect, recover;
      int continuous = 0, ok = 0;
      for (int s = 0; s < kSeeds; ++s) {
        Result r = run_once(f, hb, mult, static_cast<std::uint64_t>(s) * 101 + 7);
        if (r.recover_ms < 0) continue;
        ++ok;
        detect.push_back(r.detect_ms);
        recover.push_back(r.recover_ms);
        if (r.state_continuous) ++continuous;
      }
      row({failure_name(f), fmt(stats_of(detect).mean, 1), fmt(stats_of(recover).mean, 1),
           ok > 0 ? fmt_pct(static_cast<double>(continuous) / ok, 0) : "n/a"});
    }
  }
  std::printf(
      "\n(detection scales with the configured timeout; app failures are detected by the\n"
      " local engine's component heartbeat, node/NT failures by the peer engine over the\n"
      " LAN, middleware failures by the application-side FTIM's engine check)\n");

  run_e2b(kSeeds);
  return 0;
}
