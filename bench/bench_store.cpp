// Experiment E10 — the durable state store (src/store/): what do delta
// checkpoints and the node-local journal buy?
//
//  E10a: replication bytes vs mutation rate. A pair replicates a 32 KiB
//       state region while the app dirties a controlled fraction of it
//       per checkpoint period. Delta-enabled FTIMs (every 8th
//       checkpoint full) against full-only FTIMs, measured as
//       checkpoint bytes/s on the wire. At low mutation rates deltas
//       should ship a small fraction of the full-only traffic; at 100%
//       dirty they converge (plus the periodic full).
//  E10b: cold-restart recovery. Power-cycle the backup mid-run and
//       measure what the reboot costs with the journal (recover
//       locally, pull only the missed delta suffix) against without it
//       (nothing on disk, nack the first live delta, force a fresh full
//       image). Reported as resync bytes shipped by the primary and the
//       journal replay depth.
//
// Exports BENCH_store.json.
#include "bench_util.h"
#include "core/api.h"
#include "core/deployment.h"
#include "nt/runtime.h"
#include "obs/json.h"
#include "sim/simulation.h"
#include "sim/timer.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

constexpr std::size_t kRegionBytes = 32 * 1024;
constexpr sim::SimTime kTick = sim::milliseconds(20);
constexpr sim::SimTime kCheckpointPeriod = sim::milliseconds(200);

// Dirty fraction of the region per checkpoint period.
constexpr double kMutationRates[] = {0.001, 0.01, 0.1, 0.5, 1.0};

/// A checkpointable app that dirties a controlled slice of its state
/// region per tick: a rotating write cursor, so successive ticks touch
/// adjacent bytes and the dirty ranges coalesce the way a real hot
/// working set would.
class SweepApp {
 public:
  struct Options {
    core::FtimOptions ftim;
    std::size_t dirty_per_tick = 64;  // bytes written per tick
  };

  SweepApp(sim::Process& process, Options opt)
      : opt_(std::move(opt)), timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("app_main", 0x401000);
    region_ = &rt.memory().alloc("globals", kRegionBytes);
    core::OFTTInitialize(process, opt_.ftim);
    core::Ftim& ftim = *core::Ftim::find(process);
    ftim.on_activate([this](bool) {
      timer_.start(kTick, [this] { touch(); });
    });
    ftim.on_deactivate([this] { timer_.stop(); });
  }

 private:
  void touch() {
    const std::size_t cells = std::max<std::size_t>(opt_.dirty_per_tick / 8, 1);
    for (std::size_t i = 0; i < cells; ++i) {
      std::size_t off = (cursor_ % (kRegionBytes / 8)) * 8;
      region_->write(off, ++value_);
      ++cursor_;
    }
  }

  Options opt_;
  nt::Region* region_ = nullptr;
  std::size_t cursor_ = 0;
  std::uint64_t value_ = 0;
  sim::PeriodicTimer timer_;
};

core::PairDeploymentOptions pair_options(double mutation_rate, std::uint32_t full_interval,
                                         bool journal) {
  core::PairDeploymentOptions opts;
  opts.unit = "sweep";
  opts.with_monitor = false;
  const double ticks_per_period =
      static_cast<double>(kCheckpointPeriod) / static_cast<double>(kTick);
  const std::size_t dirty_per_tick = std::max<std::size_t>(
      static_cast<std::size_t>(mutation_rate * kRegionBytes / ticks_per_period), 8);
  opts.app_factory = [=](sim::Process& proc) {
    SweepApp::Options app;
    app.ftim.checkpoint_period = kCheckpointPeriod;
    app.ftim.full_checkpoint_interval = full_interval;
    app.ftim.journal_checkpoints = journal;
    app.dirty_per_tick = dirty_per_tick;
    proc.attachment<SweepApp>(proc, app);
  };
  return opts;
}

// ---------------------------------------------------------------------
// E10a — replication bytes vs mutation rate, delta vs full-only.
// ---------------------------------------------------------------------

struct SweepResult {
  double bytes_per_sec = 0;
  std::uint64_t fulls = 0, deltas = 0;
};

SweepResult run_sweep(double rate, std::uint32_t full_interval, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::PairDeployment dep(sim, pair_options(rate, full_interval, /*journal=*/true));
  sim.run_for(sim::seconds(3));  // settle roles, first full checkpoint

  core::Ftim* primary = dep.ftim_on(dep.node_a());
  if (primary == nullptr || !primary->active()) return {};
  const std::uint64_t bytes0 = primary->full_bytes_sent() + primary->delta_bytes_sent();
  const std::uint64_t fulls0 = primary->full_checkpoints_sent();
  const std::uint64_t deltas0 = primary->delta_checkpoints_sent();

  const sim::SimTime window = sim::seconds(20);
  sim.run_for(window);

  SweepResult r;
  r.bytes_per_sec =
      static_cast<double>(primary->full_bytes_sent() + primary->delta_bytes_sent() - bytes0) /
      sim::to_seconds(window);
  r.fulls = primary->full_checkpoints_sent() - fulls0;
  r.deltas = primary->delta_checkpoints_sent() - deltas0;
  return r;
}

// ---------------------------------------------------------------------
// E10b — cold-restart resync cost, with and without the journal.
// ---------------------------------------------------------------------

struct RestartResult {
  bool valid = false;
  bool recovered_from_journal = false;
  std::uint64_t replayed_records = 0;
  std::uint64_t resync_bytes = 0;  // primary checkpoint bytes, boot -> +3s
  std::uint64_t full_resyncs = 0;  // full images the reboot forced
  std::uint64_t nacks = 0;
};

RestartResult run_restart(bool journal, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::PairDeployment dep(sim, pair_options(0.01, /*full_interval=*/64, journal));
  sim.run_for(sim::seconds(5));

  core::Ftim* primary = dep.ftim_on(dep.node_a());
  if (primary == nullptr || !primary->active()) return {};

  dep.node_b().crash();
  sim.run_for(sim::seconds(1));
  const std::uint64_t bytes0 = primary->full_bytes_sent() + primary->delta_bytes_sent();
  const std::uint64_t fulls0 = primary->full_checkpoints_sent();
  const std::uint64_t nacks0 = primary->need_full_nacks();
  // Steady-state delta traffic over the same window, so the resync cost
  // can be reported net of what replication would have shipped anyway.
  dep.node_b().boot();
  sim.run_for(sim::seconds(3));

  RestartResult r;
  r.valid = true;
  core::Ftim* backup = dep.ftim_on(dep.node_b());
  if (backup != nullptr) {
    r.recovered_from_journal = backup->recovered_from_journal();
    r.replayed_records = backup->journal_replayed_records();
  }
  r.resync_bytes = primary->full_bytes_sent() + primary->delta_bytes_sent() - bytes0;
  r.full_resyncs = primary->full_checkpoints_sent() - fulls0;
  r.nacks = primary->need_full_nacks() - nacks0;
  return r;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(10);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "store");
  w.kv("seeds", static_cast<std::uint64_t>(kSeeds));
  w.kv("region_bytes", static_cast<std::uint64_t>(kRegionBytes));

  title("E10a: replication bytes vs mutation rate",
        "pair replicating a 32 KiB region; app dirties a fixed fraction per 200 ms "
        "checkpoint period; delta-enabled (every 8th full) vs full-only FTIMs");
  row({"dirty/period", "full-only B/s", "delta B/s", "ratio", "fulls", "deltas"});
  rule(6);
  w.key("mutation_sweep");
  w.begin_array();
  for (double rate : kMutationRates) {
    std::vector<double> full_bps, delta_bps;
    std::uint64_t fulls = 0, deltas = 0;
    auto runs = sweep_seeds(kSeeds, [&](int s) {
      std::uint64_t seed = static_cast<std::uint64_t>(s) * 977 + 13;
      return std::pair{run_sweep(rate, /*full_interval=*/1, seed),
                       run_sweep(rate, /*full_interval=*/8, seed)};
    });
    for (int s = 0; s < kSeeds; ++s) {
      const auto& [fo, de] = runs[static_cast<std::size_t>(s)];
      if (fo.bytes_per_sec <= 0 || de.bytes_per_sec <= 0) continue;
      full_bps.push_back(fo.bytes_per_sec);
      delta_bps.push_back(de.bytes_per_sec);
      fulls += de.fulls;
      deltas += de.deltas;
    }
    Stats fs = stats_of(full_bps), ds = stats_of(delta_bps);
    double ratio = fs.p50 > 0 ? ds.p50 / fs.p50 : 0;
    row({fmt_pct(rate), fmt(fs.p50, 0), fmt(ds.p50, 0), fmt(ratio, 3),
         fmt_int(static_cast<long long>(fulls)), fmt_int(static_cast<long long>(deltas))});
    w.begin_object();
    w.kv("dirty_fraction_per_period", rate);
    w.kv("full_only_bytes_per_sec_p50", fs.p50);
    w.kv("delta_bytes_per_sec_p50", ds.p50);
    w.kv("delta_to_full_ratio", ratio);
    w.kv("n", static_cast<std::uint64_t>(full_bps.size()));
    w.end_object();
  }
  w.end_array();

  title("E10b: cold-restart resync cost",
        "power-cycle the backup for 1 s; with a journal it recovers locally and pulls "
        "only the missed delta suffix, without one the primary must ship a full image");
  row({"journal", "recovered", "replayed p50", "resync B p50", "full resyncs", "nacks"});
  rule(6);
  w.key("cold_restart");
  w.begin_array();
  for (bool journal : {true, false}) {
    std::vector<double> replayed, resync_bytes;
    std::uint64_t recovered = 0, full_resyncs = 0, nacks = 0, n = 0;
    std::vector<RestartResult> runs = sweep_seeds(kSeeds, [&](int s) {
      return run_restart(journal, static_cast<std::uint64_t>(s) * 977 + 13);
    });
    for (int s = 0; s < kSeeds; ++s) {
      const RestartResult& r = runs[static_cast<std::size_t>(s)];
      if (!r.valid) continue;
      ++n;
      recovered += r.recovered_from_journal ? 1 : 0;
      replayed.push_back(static_cast<double>(r.replayed_records));
      resync_bytes.push_back(static_cast<double>(r.resync_bytes));
      full_resyncs += r.full_resyncs;
      nacks += r.nacks;
    }
    Stats rp = stats_of(replayed), rb = stats_of(resync_bytes);
    row({journal ? "on" : "off",
         fmt_int(static_cast<long long>(recovered)) + "/" + fmt_int(static_cast<long long>(n)),
         fmt(rp.p50, 0), fmt(rb.p50, 0), fmt_int(static_cast<long long>(full_resyncs)),
         fmt_int(static_cast<long long>(nacks))});
    w.begin_object();
    w.kv("journal", journal);
    w.kv("n", n);
    w.kv("recovered_from_journal", recovered);
    w.kv("replayed_records_p50", rp.p50);
    w.kv("resync_bytes_p50", rb.p50);
    w.kv("full_resyncs", full_resyncs);
    w.kv("need_full_nacks", nacks);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_file("BENCH_store.json", w.take());

  std::printf(
      "\n(deltas ship the dirty working set, not the region: at 0.1%% mutation the wire\n"
      " carries a small fraction of full-only traffic, converging as the dirty fraction\n"
      " approaches 1. A journaled backup reboots into its own durable chain and pulls\n"
      " only the delta suffix it missed — the unjournaled one costs a full image.)\n");
  return 0;
}
