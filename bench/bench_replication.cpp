// Experiment E13 — what each replication policy costs and what it buys.
//
// Three questions, one per table:
//   steady state  — bytes/s on the wire per policy (full images vs
//                   delta stream vs decision log) for the same workload
//   switchover    — crash-to-recovery time per policy, with the bulk
//                   restore cost made visible (restore_rate models the
//                   deserialization/rebuild of a 1 MiB image), expected
//                   ordering cold > warm > semi
//   live switch   — a cold pair switched to warm mid-run, then failed
//                   over: the switch must not drop state, and recovery
//                   must run at warm speed
//
// Exported to BENCH_replication.json (sim-time integers, so identical
// seeds produce byte-identical JSON).
#include <array>

#include "bench_util.h"
#include "core/api.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "sim/simulation.h"
#include "support/counter_app.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

constexpr std::size_t kStateBytes = 1 << 20;          // 1 MiB app state
constexpr std::uint64_t kRestoreRate = 2 * 1024 * 1024;  // 2 MiB/s rebuild

core::PairDeploymentOptions deployment_for(core::ReplicationMode mode) {
  core::PairDeploymentOptions opts;
  opts.engine.replication = mode;
  opts.app_factory = [mode](sim::Process& proc) {
    testsupport::CounterApp::Options app;
    app.ftim.replication = mode;
    app.ftim.restore_rate_bytes_per_s = kRestoreRate;
    app.state_bytes = kStateBytes;
    app.drive_by_decisions = mode == core::ReplicationMode::kSemiActive;
    proc.attachment<testsupport::CounterApp>(proc, app);
  };
  return opts;
}

struct SteadyState {
  std::uint64_t full_bytes = 0, delta_bytes = 0, decision_bytes = 0;
  std::uint64_t checkpoints = 0, decisions = 0;
};

SteadyState steady_state(core::ReplicationMode mode, std::uint64_t seed,
                         sim::SimTime horizon) {
  sim::Simulation sim(seed);
  core::PairDeployment dep(sim, deployment_for(mode));
  sim.run_for(horizon);
  SteadyState s;
  for (sim::Node* n : {&dep.node_a(), &dep.node_b()}) {
    if (core::Ftim* f = dep.ftim_on(*n)) {
      s.full_bytes += f->full_bytes_sent();
      s.delta_bytes += f->delta_bytes_sent();
      s.decision_bytes += f->decision_bytes_sent();
      s.checkpoints += f->checkpoints_sent();
      s.decisions += f->decisions_proposed();
    }
  }
  return s;
}

struct Switchover {
  sim::SimTime recover_ns = -1;  // crash -> new primary's app progressing
  std::int64_t ticks_lost = 0;   // counter regression across the handoff
  std::uint64_t policy_switches = 0;
};

/// Crash the primary at `crash_at` and step until the surviving side's
/// application makes progress again. `switch_to_warm_at` >= 0 performs
/// a live cold->warm policy switch before the crash (the live-switch
/// scenario); pass -1 to leave the policy alone.
Switchover run_switchover(core::ReplicationMode mode, std::uint64_t seed,
                          sim::SimTime switch_to_warm_at) {
  sim::Simulation sim(seed);
  core::PairDeployment dep(sim, deployment_for(mode));
  sim.run_for(sim::seconds(5));
  int primary = dep.primary_node();
  if (primary < 0) return {};
  if (switch_to_warm_at >= 0) {
    sim.run_for(switch_to_warm_at - sim.now());
    auto proc = dep.node_by_id(primary)->find_process("app");
    if (!proc ||
        core::OFTTSwitchReplication(*proc, core::ReplicationMode::kWarmPassive,
                                    "bench live switch") != S_OK) {
      return {};
    }
  }
  if (sim.now() < sim::seconds(12)) sim.run_for(sim::seconds(12) - sim.now());

  sim::Node& survivor =
      primary == dep.node_a().id() ? dep.node_b() : dep.node_a();
  auto* primary_app = testsupport::CounterApp::find(*dep.node_by_id(primary));
  if (primary_app == nullptr) return {};
  const std::int64_t before = primary_app->count();
  const sim::SimTime injected = sim.now();
  dep.node_by_id(primary)->crash();

  Switchover res;
  const sim::SimTime deadline = injected + sim::seconds(30);
  while (sim.now() < deadline) {
    sim.run_for(sim::milliseconds(1));
    auto* app = testsupport::CounterApp::find(survivor);
    if (app != nullptr && dep.primary_node() == survivor.id() && app->count() > before) {
      res.recover_ns = sim.now() - injected;
      res.ticks_lost = std::max<std::int64_t>(0, before - app->count() + 1);
      break;
    }
  }
  if (core::Ftim* f = dep.ftim_on(survivor)) res.policy_switches = f->policy_switches();
  return res;
}

const char* mode_name(core::ReplicationMode m) { return core::replication_mode_name(m); }

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int seeds = seeds_or(10);
  const sim::SimTime horizon = sim::seconds(smoke_mode() ? 10 : 30);
  const std::array<core::ReplicationMode, 3> modes = {
      core::ReplicationMode::kColdPassive, core::ReplicationMode::kWarmPassive,
      core::ReplicationMode::kSemiActive};

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "replication");
  w.kv("state_bytes", std::uint64_t{kStateBytes});
  w.kv("restore_rate_bytes_per_s", std::uint64_t{kRestoreRate});

  // ------------------------------------------------------------------
  title("E13: steady-state wire cost per replication policy",
        "one redundant pair, 1 MiB app state, identical workload; bytes sent by the "
        "active side over " + std::to_string(sim::to_seconds(horizon)) + " s");
  row({"policy", "full KiB", "delta KiB", "decision KiB", "ckpts", "decisions"});
  rule(6);
  w.key("steady_state");
  w.begin_array();
  for (core::ReplicationMode mode : modes) {
    SteadyState s = steady_state(mode, 1, horizon);
    row({mode_name(mode), fmt(static_cast<double>(s.full_bytes) / 1024.0, 1),
         fmt(static_cast<double>(s.delta_bytes) / 1024.0, 1),
         fmt(static_cast<double>(s.decision_bytes) / 1024.0, 1),
         fmt_int(static_cast<long long>(s.checkpoints)),
         fmt_int(static_cast<long long>(s.decisions))});
    w.begin_object();
    w.kv("policy", mode_name(mode));
    w.kv("full_bytes", s.full_bytes);
    w.kv("delta_bytes", s.delta_bytes);
    w.kv("decision_bytes", s.decision_bytes);
    w.kv("checkpoints_sent", s.checkpoints);
    w.kv("decisions_proposed", s.decisions);
    w.end_object();
  }
  w.end_array();

  // ------------------------------------------------------------------
  title("E13b: switchover time per policy",
        "crash the primary at t=12s; time until the survivor's application is active "
        "and progressing. The 1 MiB bulk restore at 2 MiB/s is what the warm/semi "
        "policies avoid paying at the worst possible moment.");
  row({"policy", "p50 ms", "p95 ms", "max ms", "ticks lost p95"});
  rule(5);
  w.key("switchover");
  w.begin_array();
  for (core::ReplicationMode mode : modes) {
    auto results = sweep_seeds(seeds, [mode](int i) {
      return run_switchover(mode, 100 + static_cast<std::uint64_t>(i), -1);
    });
    std::vector<double> ms, lost;
    for (const Switchover& r : results) {
      if (r.recover_ns < 0) continue;
      ms.push_back(sim::to_millis(r.recover_ns));
      lost.push_back(static_cast<double>(r.ticks_lost));
    }
    Stats st = stats_of(ms), lt = stats_of(lost);
    row({mode_name(mode), fmt(st.p50, 1), fmt(st.p95, 1), fmt(st.max, 1),
         fmt(lt.p95, 0)});
    w.begin_object();
    w.kv("policy", mode_name(mode));
    w.key("recover_ns");
    w.begin_array();
    for (const Switchover& r : results) w.value(r.recover_ns);
    w.end_array();
    w.key("ticks_lost");
    w.begin_array();
    for (const Switchover& r : results) w.value(r.ticks_lost);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // ------------------------------------------------------------------
  title("E13c: live cold->warm switch, then failover",
        "pair starts cold-passive; at t=8s the operator switches it to warm-passive "
        "in place; the primary crashes at t=12s. Recovery must run at warm speed and "
        "the switch itself must not drop state.");
  row({"scenario", "p50 ms", "p95 ms", "ticks lost p95", "switches"});
  rule(5);
  w.key("live_switch");
  w.begin_array();
  {
    auto results = sweep_seeds(seeds, [](int i) {
      return run_switchover(core::ReplicationMode::kColdPassive,
                            300 + static_cast<std::uint64_t>(i), sim::seconds(8));
    });
    std::vector<double> ms, lost;
    std::uint64_t switches = 0;
    for (const Switchover& r : results) {
      if (r.recover_ns < 0) continue;
      ms.push_back(sim::to_millis(r.recover_ns));
      lost.push_back(static_cast<double>(r.ticks_lost));
      switches += r.policy_switches;
    }
    Stats st = stats_of(ms), lt = stats_of(lost);
    row({"cold->warm @8s", fmt(st.p50, 1), fmt(st.p95, 1), fmt(lt.p95, 0),
         fmt_int(static_cast<long long>(switches))});
    w.begin_object();
    w.kv("scenario", "cold_to_warm_then_crash");
    w.kv("survivor_policy_switches", switches);
    w.key("recover_ns");
    w.begin_array();
    for (const Switchover& r : results) w.value(r.recover_ns);
    w.end_array();
    w.key("ticks_lost");
    w.begin_array();
    for (const Switchover& r : results) w.value(r.ticks_lost);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  write_file("BENCH_replication.json", w.take());
  return 0;
}
