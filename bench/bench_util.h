// Shared helpers for the experiment harnesses: fixed-width table
// printing and small statistics.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/sweep.h"

namespace oftt::bench {

/// CI smoke mode: when OFTT_BENCH_SMOKE is set (non-empty, not "0"),
/// benches shrink their seed/iteration counts so every binary finishes
/// in a few seconds. The numbers are meaningless then — the point is
/// exercising each harness end to end (build, run, JSON export) on
/// every change, not measuring.
inline bool smoke_mode() {
  const char* v = std::getenv("OFTT_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/// `full` seeds normally, a tiny count under OFTT_BENCH_SMOKE.
inline int seeds_or(int full, int smoke = 2) { return smoke_mode() ? smoke : full; }

inline void title(const std::string& name, const std::string& what) {
  std::printf("\n%s\n%s\n", name.c_str(), std::string(name.size(), '=').c_str());
  std::printf("%s\n\n", what.c_str());
}

/// Print a row of columns each padded to width 14 (first column 28).
inline void row(const std::vector<std::string>& cols) {
  for (std::size_t i = 0; i < cols.size(); ++i) {
    std::printf(i == 0 ? "%-28s" : "%14s", cols[i].c_str());
  }
  std::printf("\n");
}

inline void rule(std::size_t cols) {
  std::printf("%s\n", std::string(28 + 14 * (cols - 1), '-').c_str());
}

inline std::string fmt(double v, int prec = 2) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}
inline std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}
inline std::string fmt_pct(double v, int prec = 1) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, v * 100.0);
  return buf;
}

/// Write `content` to `path` (overwrite). The benches use this for the
/// BENCH_*.json exports; returns false (and logs) when the path is not
/// writable rather than aborting the run.
inline bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::printf("(could not write %s)\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s (%zu bytes)\n", path.c_str(), content.size());
  return true;
}

// The sweep thread pool itself lives in src/common/sweep.h (shared
// with the chaos campaign runner); the bench-facing names stay here.
using oftt::sweep_seeds;
using oftt::sweep_threads;

struct Stats {
  double mean = 0, p50 = 0, p95 = 0, min = 0, max = 0;
  std::size_t n = 0;
};

inline Stats stats_of(std::vector<double> xs) {
  Stats s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.mean = std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  s.p50 = xs[xs.size() / 2];
  s.p95 = xs[static_cast<std::size_t>(static_cast<double>(xs.size() - 1) * 0.95)];
  s.min = xs.front();
  s.max = xs.back();
  return s;
}

}  // namespace oftt::bench
