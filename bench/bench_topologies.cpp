// Experiment F1 — the two reference system configurations of Fig. 1:
//   (a) control with remote monitoring: PLCs -> industrial PCs (OPC
//       servers) -> monitor/control PCs (OPC clients) over the plant LAN;
//   (b) integrated monitoring and control: OPC server and client
//       applications co-resident on the redundant pair.
// We build both, drive sensor traffic, and report end-to-end data flow
// (update rates, freshness) with the pair healthy and degraded.
#include "bench_util.h"
#include "core/api.h"
#include "core/deployment.h"
#include "dcom/scm.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

const Clsid kClsid = Guid::from_name("CLSID_TopologyPlc");

std::shared_ptr<opc::PlcDevice> make_plc(const std::string& name) {
  auto plc = std::make_shared<opc::PlcDevice>(name, sim::milliseconds(20));
  plc->add_input(name + ".Level", std::make_unique<opc::SineSignal>(50, 20, 15, 0.5));
  plc->add_input(name + ".Flow", std::make_unique<opc::RandomWalkSignal>(10, 0.5, 0, 20));
  plc->add_input(name + ".Pump", std::make_unique<opc::SquareSignal>(7));
  return plc;
}

void report_config_a() {
  // Fig. 1(a): two industrial PCs each wrapping a PLC; a separate
  // monitor/control PC subscribes to both over the enterprise LAN.
  sim::Simulation sim(41);
  sim::Node& ipc1 = sim.add_node("industrial_pc1");
  sim::Node& ipc2 = sim.add_node("industrial_pc2");
  sim::Node& mon = sim.add_node("monitor_pc");
  auto& lan = sim.add_network("lan");
  for (auto* n : {&ipc1, &ipc2, &mon}) lan.attach(n->id());
  for (auto* n : {&ipc1, &ipc2}) {
    n->set_boot_script([](sim::Node& node) {
      dcom::install_scm(node);
      node.start_process("opcserver", [&node](sim::Process& proc) {
        opc::install_opc_server(proc, kClsid, make_plc("PLC_" + node.name()), "vendor");
      });
    });
    n->boot();
  }
  mon.boot();
  auto hmi = mon.start_process("hmi", nullptr);

  std::uint64_t updates1 = 0, updates2 = 0;
  sim::SimTime last_update = 0;
  auto sub = [&](sim::Node& server, std::uint64_t& counter) {
    auto conn = std::make_shared<opc::OpcConnection>(*hmi, server.id(), kClsid);
    std::string prefix = "PLC_" + server.name();
    conn->subscribe({prefix + ".Level", prefix + ".Flow", prefix + ".Pump"},
                    [&](const std::vector<opc::ItemState>& items) {
                      counter += items.size();
                      last_update = sim.now();
                    });
    hmi->add_component(conn);
  };
  sub(ipc1, updates1);
  sub(ipc2, updates2);

  sim.run_for(sim::seconds(30));
  row({"(a) remote monitoring", fmt(static_cast<double>(updates1) / 30.0, 1),
       fmt(static_cast<double>(updates2) / 30.0, 1),
       fmt(sim::to_millis(sim.now() - last_update), 0) + " ms"});
}

class MonitorApp {
 public:
  explicit MonitorApp(sim::Process& process) : process_(&process) {
    auto& rt = nt::NtRuntime::of(process);
    region_ = &rt.memory().alloc("globals", 64);
    updates_ = nt::Cell<std::int64_t>(region_, 0);
    core::FtimOptions opts;
    opts.checkpoint_period = sim::milliseconds(500);
    core::OFTTInitialize(process, opts);
    core::Ftim::find(process)->on_activate([this](bool) {
      conn_ = std::make_unique<opc::OpcConnection>(*process_, process_->node().id(), kClsid);
      conn_->subscribe({"PLC.Level", "PLC.Flow", "PLC.Pump"},
                       [this](const std::vector<opc::ItemState>& items) {
                         updates_.set(updates_.get() +
                                      static_cast<std::int64_t>(items.size()));
                       });
    });
    core::Ftim::find(process)->on_deactivate([this] { conn_.reset(); });
  }

  std::int64_t updates() const { return updates_.get(); }

 private:
  sim::Process* process_;
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> updates_;
  std::unique_ptr<opc::OpcConnection> conn_;
};

void report_config_b() {
  // Fig. 1(b): OPC server + OPC client co-resident on the redundant
  // pair; we report flow before and after losing a node.
  sim::Simulation sim(42);
  core::PairDeploymentOptions opts;
  opts.unit = "integrated";
  opts.app_process = "monitor_app";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<MonitorApp>(proc); };
  core::PairDeployment dep(sim, opts);
  for (sim::Node* n : {&dep.node_a(), &dep.node_b()}) {
    n->start_process("opcserver", [](sim::Process& proc) {
      auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(20));
      plc->add_input("PLC.Level", std::make_unique<opc::SineSignal>(50, 20, 15, 0.5));
      plc->add_input("PLC.Flow", std::make_unique<opc::RandomWalkSignal>(10, 0.5, 0, 20));
      plc->add_input("PLC.Pump", std::make_unique<opc::SquareSignal>(7));
      opc::install_opc_server(proc, kClsid, plc, "vendor");
    });
  }
  sim.run_for(sim::seconds(30));
  std::int64_t updates_at_crash =
      dep.node_a().find_process("monitor_app")->find_attachment<MonitorApp>()->updates();
  double healthy_rate = static_cast<double>(updates_at_crash) / 27.0;

  dep.node_a().crash();
  sim.run_for(sim::seconds(30));
  auto* app_b =
      dep.node_b().find_process("monitor_app")->find_attachment<MonitorApp>();
  // app_b resumed from the checkpointed update counter.
  double degraded_rate =
      static_cast<double>(app_b->updates() - updates_at_crash) / 30.0;

  row({"(b) integrated, healthy", fmt(healthy_rate, 1), "-", "-"});
  row({"(b) after node loss", fmt(degraded_rate, 1), "-",
       "takeovers=" + fmt_int(static_cast<long long>(sim.counter_value("oftt.takeovers")))});
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  title("F1: reference system configurations (Fig. 1)",
        "end-to-end OPC data flow through both reference topologies");
  row({"configuration", "updates/s #1", "updates/s #2", "staleness"});
  rule(4);
  report_config_a();
  report_config_b();
  std::printf("\n(configuration (b) keeps flowing after a node loss because the whole\n"
              " server+client stack fails over as one logical unit)\n");
  return 0;
}
