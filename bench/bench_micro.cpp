// Experiment M1 — microbenchmarks (google-benchmark, real CPU time):
// the serialization, marshaling and checkpoint-capture primitives every
// OFTT control-plane message rides on.
#include <benchmark/benchmark.h>

#include <map>

#include "common/bytes.h"
#include "common/strings.h"
#include "core/checkpoint.h"
#include "core/wire.h"
#include "dcom/orpc.h"
#include "msmq/message.h"
#include "obs/metrics.h"
#include "opc/value.h"
#include "sim/simulation.h"

namespace {

using namespace oftt;

void BM_BinaryWriterSmallMessage(benchmark::State& state) {
  for (auto _ : state) {
    BinaryWriter w;
    w.u64(123456);
    w.str("component.name");
    w.i32(-1);
    w.guid(Guid::from_name("IID_IOPCServer"));
    benchmark::DoNotOptimize(w.data().data());
  }
}
BENCHMARK(BM_BinaryWriterSmallMessage);

void BM_BinaryReaderSmallMessage(benchmark::State& state) {
  BinaryWriter w;
  w.u64(123456);
  w.str("component.name");
  w.i32(-1);
  Buffer b = std::move(w).take();
  for (auto _ : state) {
    BinaryReader r(b);
    benchmark::DoNotOptimize(r.u64());
    benchmark::DoNotOptimize(r.str());
    benchmark::DoNotOptimize(r.i32());
  }
}
BENCHMARK(BM_BinaryReaderSmallMessage);

void BM_GuidFromName(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Guid::from_name("CLSID_SomeLongCoClassName"));
  }
}
BENCHMARK(BM_GuidFromName);

void BM_Fnv64(benchmark::State& state) {
  Buffer b(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fnv64(b));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fnv64)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_OrpcRequestRoundTrip(benchmark::State& state) {
  dcom::RequestPacket req;
  req.call_id = 42;
  req.oid = 7;
  req.iid = Guid::from_name("IID_IOPCGroup");
  req.method = 3;
  req.args = Buffer(128, 1);
  req.reply_node = 2;
  req.reply_port = "orpcc.app";
  for (auto _ : state) {
    Buffer b = dcom::encode_request(req);
    dcom::RequestPacket out;
    dcom::decode_request(b, out);
    benchmark::DoNotOptimize(out.call_id);
  }
}
BENCHMARK(BM_OrpcRequestRoundTrip);

void BM_OpcItemStatesMarshal(benchmark::State& state) {
  std::vector<opc::ItemState> items;
  for (int i = 0; i < state.range(0); ++i) {
    items.push_back({"Device.Tag" + std::to_string(i), opc::OpcValue::from_real(1.5 * i),
                     opc::Quality::kGood, sim::seconds(1)});
  }
  for (auto _ : state) {
    BinaryWriter w;
    opc::marshal_item_states(w, items);
    BinaryReader r(w.data());
    benchmark::DoNotOptimize(opc::unmarshal_item_states(r));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OpcItemStatesMarshal)->Arg(1)->Arg(16)->Arg(256);

void BM_MsmqMessageMarshal(benchmark::State& state) {
  msmq::Message m;
  m.id = 0xABCDEF;
  m.src_node = 1;
  m.queue = "calltrack.events";
  m.label = "call";
  m.body = Buffer(static_cast<std::size_t>(state.range(0)), 7);
  m.mode = msmq::DeliveryMode::kRecoverable;
  for (auto _ : state) {
    BinaryWriter w;
    m.marshal(w);
    BinaryReader r(w.data());
    benchmark::DoNotOptimize(msmq::Message::unmarshal(r));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MsmqMessageMarshal)->Arg(16)->Arg(1024);

void BM_CheckpointCaptureFull(benchmark::State& state) {
  sim::Simulation sim(1);
  sim::Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("app", nullptr);
  auto& rt = nt::NtRuntime::of(*proc);
  rt.memory().alloc("globals", static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto img = core::capture_checkpoint(rt, core::CheckpointMode::kFull, {}, 1, 1, {});
    benchmark::DoNotOptimize(img.marshal().size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckpointCaptureFull)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_CheckpointCaptureSelective(benchmark::State& state) {
  sim::Simulation sim(1);
  sim::Node& node = sim.add_node("n");
  node.boot();
  auto proc = node.start_process("app", nullptr);
  auto& rt = nt::NtRuntime::of(*proc);
  rt.memory().alloc("globals", static_cast<std::size_t>(state.range(0)));
  std::vector<core::CellSpec> cells{{"globals", 0, 32}};
  for (auto _ : state) {
    auto img = core::capture_checkpoint(rt, core::CheckpointMode::kSelective, cells, 1, 1, {});
    benchmark::DoNotOptimize(img.marshal().size());
  }
}
BENCHMARK(BM_CheckpointCaptureSelective)->Arg(1 << 10)->Arg(1 << 20);

void BM_CheckpointRestore(benchmark::State& state) {
  sim::Simulation sim(1);
  sim::Node& node = sim.add_node("n");
  node.boot();
  auto src = node.start_process("src", nullptr);
  auto dst = node.start_process("dst", nullptr);
  auto& srt = nt::NtRuntime::of(*src);
  auto& drt = nt::NtRuntime::of(*dst);
  srt.memory().alloc("globals", static_cast<std::size_t>(state.range(0)));
  drt.memory().alloc("globals", static_cast<std::size_t>(state.range(0)));
  auto img = core::capture_checkpoint(srt, core::CheckpointMode::kFull, {}, 1, 1, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::restore_checkpoint(drt, img));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckpointRestore)->Arg(1 << 16)->Arg(1 << 20);

void BM_StatusReportEncode(benchmark::State& state) {
  core::StatusReport sr;
  sr.unit = "calltrack";
  sr.node = 1;
  sr.role = core::Role::kPrimary;
  for (int i = 0; i < 8; ++i) {
    sr.components.push_back(
        {"component" + std::to_string(i), core::ComponentState::kUp, 0, 12345});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sr.encode().size());
  }
}
BENCHMARK(BM_StatusReportEncode);

void BM_CounterStringMapLookup(benchmark::State& state) {
  // The pre-refactor hot path: every datagram built a key string and
  // walked a string-keyed map (the old Simulation::counter(std::string)
  // interface). Kept as the "before" half of the comparison.
  std::map<std::string, std::uint64_t, std::less<>> counters;
  const std::string suffix = "deliver";
  for (auto _ : state) {
    counters[cat("node.", suffix, ".count")] += 1;
  }
  benchmark::DoNotOptimize(counters);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterStringMapLookup);

void BM_CounterHandleInc(benchmark::State& state) {
  // The post-refactor hot path: the handle is resolved once at component
  // construction; per datagram it is a null-checked pointer increment.
  obs::MetricsRegistry metrics;
  obs::Counter c = metrics.counter("node.deliver.count");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterHandleInc);

void BM_SimulationEventThroughput(benchmark::State& state) {
  // How many discrete events per second the kernel itself sustains.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim(1);
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(i, [&fired] { ++fired; });
    }
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulationEventThroughput);

}  // namespace

BENCHMARK_MAIN();
