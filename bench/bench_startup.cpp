// Experiment E3 — startup non-determinism (paper §3.2).
//
// Paper: "because of the lack of predictability in the start-up time,
// the first node that starts up would frequently shut down since the
// second node may not start operation of the OFTT middleware before the
// time-out period elapsed. As a result, additional logic was added to
// initiate retries several times before it shuts down. It effectively
// solves the original problem."
//
// We sweep (retry count x boot skew) over many random seeds and report
// P(pair forms), P(erroneous shutdown); and separately the dual-primary
// risk of the liberal alone-policy under a dead network.
#include "bench_util.h"
#include "core/deployment.h"
#include "sim/simulation.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

struct Outcome {
  int formed = 0;
  int shutdown = 0;
  int dual_primary = 0;
};

Outcome run_trials(int retries, sim::SimTime max_skew, int trials,
                   core::AloneStartupPolicy policy, bool network_dead) {
  Outcome out;
  for (int t = 0; t < trials; ++t) {
    sim::Simulation sim(static_cast<std::uint64_t>(t) * 7919 + 13);
    core::PairDeploymentOptions opts;
    opts.engine.startup_probe_timeout = sim::milliseconds(800);
    opts.engine.startup_retries = retries;
    opts.engine.alone_policy = policy;
    opts.with_monitor = false;
    opts.autostart = false;
    core::PairDeployment dep(sim, opts);
    if (network_dead) sim.network(0).set_down(true);
    // NT startup time is unpredictable: random skew in [0, max_skew].
    sim::SimTime skew = sim.rng().uniform(0, max_skew);
    dep.node_a().boot();
    dep.node_b().reboot(skew > 0 ? skew : 1);
    sim.run_for(sim::seconds(40));

    int primaries = 0;
    if (dep.engine_a() && dep.engine_a()->role() == core::Role::kPrimary) ++primaries;
    if (dep.engine_b() && dep.engine_b()->role() == core::Role::kPrimary) ++primaries;
    bool formed = dep.primary_node() != -1 && dep.backup_node() != -1;
    if (formed) ++out.formed;
    if (sim.counter_value("oftt.startup_shutdown") > 0) ++out.shutdown;
    if (primaries == 2) ++out.dual_primary;
  }
  return out;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kTrials = 60;

  title("E3: startup negotiation vs NT boot-time non-determinism",
        "probe timeout 800 ms, boot skew uniform in [0, max]; " + std::to_string(kTrials) +
            " seeds per cell; paper's original logic = 0 retries, fix = several retries");

  row({"skew \\ retries", "0 (orig)", "1", "3 (fix)", "5"});
  rule(5);
  for (sim::SimTime max_skew :
       {sim::milliseconds(200), sim::milliseconds(600), sim::seconds(2), sim::seconds(4),
        sim::seconds(8)}) {
    std::vector<std::string> cols{fmt(sim::to_seconds(max_skew), 1) + "s"};
    for (int retries : {0, 1, 3, 5}) {
      Outcome o = run_trials(retries, max_skew, kTrials, core::AloneStartupPolicy::kShutdown,
                             /*network_dead=*/false);
      cols.push_back(fmt_pct(static_cast<double>(o.formed) / kTrials, 0));
    }
    row(cols);
  }
  std::printf("\n(cells: probability the redundant pair forms; failures are the paper's\n"
              " observed erroneous shutdown of the first node)\n");

  title("E3b: alone-policy tradeoff when the network is down at startup",
        "both nodes boot, LAN dead; conservative policy shuts down, liberal risks dual "
        "primary (the situation the paper's design guards against)");
  row({"alone policy", "pair forms", "shutdowns", "dual primary"});
  rule(4);
  {
    Outcome o = run_trials(1, sim::milliseconds(100), kTrials,
                           core::AloneStartupPolicy::kShutdown, /*network_dead=*/true);
    row({"shutdown (paper)", fmt_pct(static_cast<double>(o.formed) / kTrials, 0),
         fmt_pct(static_cast<double>(o.shutdown) / kTrials, 0),
         fmt_pct(static_cast<double>(o.dual_primary) / kTrials, 0)});
  }
  {
    Outcome o = run_trials(1, sim::milliseconds(100), kTrials,
                           core::AloneStartupPolicy::kBecomePrimary, /*network_dead=*/true);
    row({"become-primary", fmt_pct(static_cast<double>(o.formed) / kTrials, 0),
         fmt_pct(static_cast<double>(o.shutdown) / kTrials, 0),
         fmt_pct(static_cast<double>(o.dual_primary) / kTrials, 0)});
  }
  return 0;
}
