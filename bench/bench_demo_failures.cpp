// Experiment F3 — the paper's §4 demonstration as a measured table:
// the call-track workload (5 lines / 10 callers) on the Fig. 3
// configuration, with each of the four failure classes injected. For
// each class we report detection->recovery timing, state continuity
// (call events retained across the failure) and whether the unit kept
// serving.
#include "bench_util.h"
#include "core/api.h"
#include "core/deployment.h"
#include "core/diverter.h"
#include "msmq/queue_manager.h"
#include "opc/devices/telephone.h"
#include "sim/timer.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

constexpr const char* kQueue = "calltrack.events";

class CallTrack {
 public:
  explicit CallTrack(sim::Process& process) : process_(&process) {
    auto& rt = nt::NtRuntime::of(process);
    region_ = &rt.memory().alloc("globals", 128);
    events_ = nt::Cell<std::int64_t>(region_, 0);
    core::FtimOptions opts;
    opts.component = "calltrack";
    opts.checkpoint_period = sim::milliseconds(250);
    core::OFTTInitialize(process, opts);
    core::Ftim::find(process)->on_activate([this](bool) {
      msmq::MsmqApi::of(*process_).subscribe(kQueue, [this](const msmq::Message&) {
        events_.set(events_.get() + 1);
        core::OFTTSave(*process_);
      });
    });
  }
  std::int64_t events() const { return events_.get(); }

  static CallTrack* find(sim::Node& node) {
    auto proc = node.find_process("calltrack");
    return proc && proc->alive() ? proc->find_attachment<CallTrack>() : nullptr;
  }

 private:
  sim::Process* process_;
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> events_;
};

struct DemoResult {
  bool survived = false;
  double outage_ms = -1;   // injection -> unit processing events again
  std::int64_t events_before = 0;
  std::int64_t events_retained = 0;  // right after recovery
};

DemoResult run_demo(int failure_class, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.unit = "calltrack";
  opts.app_process = "calltrack";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<CallTrack>(proc); };
  core::PairDeployment dep(sim, opts);

  auto telsim = dep.monitor_node().start_process("telsim", nullptr);
  core::DiverterOptions dopts;
  dopts.unit = "calltrack";
  dopts.queue = kQueue;
  dopts.node_a = dep.node_a().id();
  dopts.node_b = dep.node_b().id();
  auto diverter = std::make_shared<core::MessageDiverter>(*telsim, dopts);
  telsim->add_component(diverter);
  opc::TelephoneSystem::Config tcfg;
  tcfg.mean_think_s = 3.0;
  tcfg.mean_hold_s = 4.0;
  auto tel = std::make_shared<opc::TelephoneSystem>(tcfg);
  tel->set_event_listener([diverter](const opc::CallEvent& e) {
    BinaryWriter w;
    e.marshal(w);
    diverter->send("call", std::move(w).take());
  });
  tel->start(telsim->main_strand(), sim.fork_rng("tel"));
  telsim->add_component(tel);

  sim.run_for(sim::seconds(20));
  int primary = dep.primary_node();
  if (primary < 0) return {};
  DemoResult res;
  res.events_before = CallTrack::find(*dep.node_by_id(primary))->events();
  sim::SimTime injected = sim.now();

  switch (failure_class) {
    case 0: dep.node_by_id(primary)->crash(); break;
    case 1: dep.node_by_id(primary)->os_crash(sim::seconds(20)); break;
    case 2: dep.node_by_id(primary)->find_process("calltrack")->kill("injected"); break;
    case 3: dep.node_by_id(primary)->find_process("oftt_engine")->kill("injected"); break;
    default: return {};
  }

  sim::SimTime deadline = injected + sim::seconds(60);
  while (sim.now() < deadline) {
    sim.run_for(sim::milliseconds(5));
    int p = dep.primary_node();
    if (p < 0) continue;
    CallTrack* app = CallTrack::find(*dep.node_by_id(p));
    if (app != nullptr && app->events() > res.events_before) {
      res.outage_ms = sim::to_millis(sim.now() - injected);
      res.events_retained = app->events();
      res.survived = true;
      break;
    }
  }
  // Let it keep running; confirm it is still alive at the end.
  sim.run_for(sim::seconds(20));
  int p = dep.primary_node();
  if (p < 0) {
    res.survived = false;
  } else if (CallTrack* app = CallTrack::find(*dep.node_by_id(p))) {
    res.survived = res.survived && app->events() > res.events_retained;
  }
  return res;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(8);
  const char* names[] = {"(a) node failure", "(b) NT crash", "(c) app failure",
                         "(d) OFTT middleware"};

  title("F3: the paper's demonstration — continued operation under four failure classes",
        "call-track workload (5 lines / 10 callers, Fig. 3 config); " +
            std::to_string(kSeeds) + " seeds per class");
  row({"failure class", "survived", "outage ms", "events kept"});
  rule(4);
  for (int f = 0; f < 4; ++f) {
    int survived = 0;
    std::vector<double> outages;
    std::int64_t before_sum = 0, retained_sum = 0;
    std::vector<DemoResult> runs = sweep_seeds(
        kSeeds, [&](int s) { return run_demo(f, static_cast<std::uint64_t>(s) * 131 + 17); });
    for (int s = 0; s < kSeeds; ++s) {
      const DemoResult& r = runs[static_cast<std::size_t>(s)];
      if (r.survived) {
        ++survived;
        outages.push_back(r.outage_ms);
        before_sum += r.events_before;
        retained_sum += std::min(r.events_retained, r.events_before);
      }
    }
    row({names[f], fmt_pct(static_cast<double>(survived) / kSeeds, 0),
         fmt(stats_of(outages).mean, 0),
         before_sum ? fmt_pct(static_cast<double>(retained_sum) / before_sum, 1) : "n/a"});
  }
  std::printf(
      "\n(outage = injection until the unit processes telephone events again. 'events\n"
      " kept' compares post-recovery state with pre-failure state: per-event OFTTSave\n"
      " keeps it at 100%%. The paper demonstrated the same four classes qualitatively.)\n");
  return 0;
}
