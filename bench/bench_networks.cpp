// Experiment E8 (design ablation) — "two redundant computers are paired
// up via one or dual Ethernet networks" (Fig. 1). What the second
// segment buys: we flap links and partition segments under both
// configurations and count spurious takeovers, dual-primary windows,
// and checkpoint continuity.
#include "bench_util.h"
#include "core/deployment.h"
#include "sim/fault_plan.h"
#include "support/counter_app.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

struct Outcome {
  std::uint64_t takeovers = 0;
  std::uint64_t dual_primary = 0;
  bool single_primary_at_end = false;
  std::uint64_t checkpoints_received = 0;
};

Outcome run(bool dual, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.dual_network = dual;
  opts.app_factory = [](sim::Process& proc) {
    proc.attachment<testsupport::CounterApp>(proc);
  };
  core::PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));

  int a = dep.node_a().id(), b = dep.node_b().id();
  sim::FaultPlan plan(sim);
  // A flaky primary NIC on LAN0: 2 s outages, 6 of them.
  plan.flap_link(sim::seconds(5), 0, a, b, sim::seconds(2), 6);
  plan.arm();
  sim.run_for(sim::seconds(40));

  Outcome out;
  out.takeovers = sim.counter_value("oftt.takeovers");
  out.dual_primary = sim.counter_value("oftt.dual_primary_detected");
  int primaries = 0;
  if (dep.engine_a() && dep.engine_a()->role() == core::Role::kPrimary) ++primaries;
  if (dep.engine_b() && dep.engine_b()->role() == core::Role::kPrimary) ++primaries;
  out.single_primary_at_end = primaries == 1;
  out.checkpoints_received = sim.counter_value("oftt.checkpoints_received");
  return out;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(10);
  title("E8: one vs dual Ethernet under link flapping (design ablation)",
        "the pair's LAN0 link flaps 6x for 2 s each; heartbeat timeout 500 ms; totals "
        "over " + std::to_string(kSeeds) + " seeds");
  row({"configuration", "takeovers", "dual-primary", "stable end", "ckpts recvd"});
  rule(5);
  for (bool dual : {false, true}) {
    std::uint64_t takeovers = 0, dual_primary = 0, ckpts = 0;
    int stable = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Outcome o = run(dual, static_cast<std::uint64_t>(s) * 37 + 2);
      takeovers += o.takeovers;
      dual_primary += o.dual_primary;
      ckpts += o.checkpoints_received;
      if (o.single_primary_at_end) ++stable;
    }
    row({dual ? "dual Ethernet" : "single Ethernet",
         fmt_int(static_cast<long long>(takeovers)),
         fmt_int(static_cast<long long>(dual_primary)),
         fmt_pct(static_cast<double>(stable) / kSeeds, 0),
         fmt_int(static_cast<long long>(ckpts))});
  }
  std::printf(
      "\n(every flap of the single segment looks like peer death -> spurious takeover and\n"
      " a dual-primary window until the link returns; the dual configuration rides\n"
      " through on the second segment with zero role churn)\n");
  return 0;
}
