// Experiment E11 — what the unified session transport (src/transport/)
// buys over the improvised reliability it replaced.
//
//  E11a: checkpoint-stream goodput under loss. A sender ships 300
//       checkpoint-sized (4 KiB) frames to a peer at 0 / 1 / 5% datagram
//       loss, via two mechanisms run head to head on identical seeds:
//       "naive" reproduces the pre-transport pattern (one datagram per
//       frame, per-frame ack, fixed 200 ms retry sweep — the old MSMQ
//       retry timer / FTIM checkpoint-ack shape), "session" is a
//       transport::Endpoint with 50 ms initial RTO, backoff, and
//       selective acks. Goodput = payload bytes / time until every
//       frame is acknowledged.
//  E11b: end-to-end failover under loss. The integrated stack
//       (PairDeployment + CounterApp, checkpoints riding the session)
//       with the primary crashed, recovery time measured at the same
//       loss rates — p50/p99 across seeds, plus how often the restored
//       state was continuous (no more than ~a checkpoint period lost).
//
// Exports BENCH_transport.json.
#include <map>
#include <set>

#include "bench_util.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "support/counter_app.h"
#include "transport/session.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

constexpr std::size_t kFrameBytes = 4 * 1024;
constexpr int kFrames = 300;
constexpr const char* kPort = "bench.xfer";
constexpr double kLossRates[] = {0.0, 0.01, 0.05};

// ---------------------------------------------------------------------
// E11a — goodput: naive fixed-period retry vs session transport.
// ---------------------------------------------------------------------

/// The deleted reliability pattern, reconstructed for comparison: every
/// unacked frame is re-sent wholesale by a fixed 200 ms sweep, acks are
/// one datagram per frame, receiver dedups by frame id.
class NaiveSender {
 public:
  NaiveSender(sim::Process& p, int peer) : process_(&p), peer_(peer), timer_(p.main_strand()) {
    p.bind(kPort, [this](const sim::Datagram& d) {
      BinaryReader r(d.payload);
      if (r.u8() != 0xE2) return;
      std::uint64_t id = r.u64();
      if (!r.failed()) unacked_.erase(id);
    });
    timer_.start(sim::milliseconds(200), [this] { sweep(); });
  }

  void enqueue(std::uint64_t id, Buffer frame) { unacked_.emplace(id, std::move(frame)); }
  void kick() { sweep(); }
  bool done() const { return unacked_.empty(); }
  std::uint64_t sends() const { return sends_; }

 private:
  void sweep() {
    for (const auto& [id, frame] : unacked_) {
      BinaryWriter w;
      w.u8(0xE1);
      w.u64(id);
      w.blob(frame);
      process_->send(0, peer_, kPort, std::move(w).take(), kPort);
      ++sends_;
    }
  }

  sim::Process* process_;
  int peer_;
  std::map<std::uint64_t, Buffer> unacked_;
  std::uint64_t sends_ = 0;
  sim::PeriodicTimer timer_;
};

class NaiveReceiver {
 public:
  explicit NaiveReceiver(sim::Process& p) : process_(&p) {
    p.bind(kPort, [this](const sim::Datagram& d) {
      BinaryReader r(d.payload);
      if (r.u8() != 0xE1) return;
      std::uint64_t id = r.u64();
      Buffer frame = r.blob();
      if (r.failed()) return;
      if (seen_.insert(id).second) bytes_ += frame.size();
      BinaryWriter w;
      w.u8(0xE2);
      w.u64(id);
      process_->send(d.network_id, d.src_node, kPort, std::move(w).take(), kPort);
    });
  }
  std::size_t bytes() const { return bytes_; }

 private:
  sim::Process* process_;
  std::set<std::uint64_t> seen_;
  std::size_t bytes_ = 0;
};

/// Session-side receiver: the Endpoint does everything.
class SessionPeer {
 public:
  explicit SessionPeer(sim::Process& p) {
    p.bind(kPort, [this](const sim::Datagram& d) { ep_->handle(d); });
    ep_ = std::make_unique<transport::Endpoint>(p.main_strand(), kPort,
                                                transport::SessionConfig{});
    ep_->on_deliver([this](int, int, const Buffer& b) { bytes_ += b.size(); });
  }
  transport::Endpoint& ep() { return *ep_; }
  std::size_t bytes() const { return bytes_; }

 private:
  std::unique_ptr<transport::Endpoint> ep_;
  std::size_t bytes_ = 0;
};

struct GoodputResult {
  bool valid = false;
  double mib_per_sec = 0;
  std::uint64_t transmissions = 0;  // total datagrams carrying payload
};

GoodputResult run_goodput(bool use_session, double loss, std::uint64_t seed) {
  sim::Simulation sim(seed);
  sim::Node& a = sim.add_node("a");
  sim::Node& b = sim.add_node("b");
  sim::Network& net = sim.add_network("lan");
  net.attach(a.id());
  net.attach(b.id());
  net.set_loss(loss);
  a.boot();
  b.boot();
  auto tx_proc = a.start_process("tx", nullptr);
  auto rx_proc = b.start_process("rx", nullptr);

  Buffer frame(kFrameBytes, 0x5A);
  sim::SimTime started = sim.now();
  const sim::SimTime deadline = started + sim::minutes(5);

  GoodputResult res;
  if (use_session) {
    auto& rx = rx_proc->attachment<SessionPeer>(*rx_proc);
    auto& tx = tx_proc->attachment<SessionPeer>(*tx_proc);
    for (int i = 0; i < kFrames; ++i) tx.ep().send(b.id(), frame);
    while (sim.now() < deadline && tx.ep().inflight_bytes() > 0) {
      sim.run_for(sim::milliseconds(5));
    }
    if (tx.ep().inflight_bytes() > 0 || rx.bytes() != kFrames * kFrameBytes) return res;
    res.transmissions = tx.ep().data_sent() + tx.ep().retransmits();
  } else {
    auto& rx = rx_proc->attachment<NaiveReceiver>(*rx_proc);
    auto& tx = tx_proc->attachment<NaiveSender>(*tx_proc, b.id());
    for (int i = 0; i < kFrames; ++i) {
      tx.enqueue(static_cast<std::uint64_t>(i) + 1, frame);
    }
    tx.kick();
    while (sim.now() < deadline && !tx.done()) {
      sim.run_for(sim::milliseconds(5));
    }
    if (!tx.done() || rx.bytes() != kFrames * kFrameBytes) return res;
    res.transmissions = tx.sends();
  }
  double secs = sim::to_seconds(sim.now() - started);
  if (secs <= 0) return res;
  res.valid = true;
  res.mib_per_sec = static_cast<double>(kFrames * kFrameBytes) / (1024.0 * 1024.0) / secs;
  return res;
}

// ---------------------------------------------------------------------
// E11b — failover latency under loss with the integrated stack.
// ---------------------------------------------------------------------

struct FailoverResult {
  double recover_ms = -1;
  bool state_continuous = false;
};

FailoverResult run_failover(double loss, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.unit = "bench";
  opts.with_monitor = false;
  opts.app_factory = [](sim::Process& proc) {
    testsupport::CounterApp::Options app;
    app.ftim.checkpoint_period = sim::milliseconds(200);
    app.tick = sim::milliseconds(10);
    proc.attachment<testsupport::CounterApp>(proc, app);
  };
  core::PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(5));
  if (dep.primary_node() != dep.node_a().id()) return {};
  // Loss switches on only after a clean start, so every run fails over
  // from an equivalent steady state.
  for (std::size_t n = 0; n < sim.network_count(); ++n) sim.network(n).set_loss(loss);
  sim.run_for(sim::seconds(2));

  std::int64_t count_before = testsupport::CounterApp::find(dep.node_a())->count();
  sim::SimTime injected = sim.now();
  dep.node_a().crash();

  FailoverResult res;
  sim::SimTime deadline = injected + sim::seconds(30);
  while (sim.now() < deadline && res.recover_ms < 0) {
    sim.run_for(sim::milliseconds(1));
    auto* app = testsupport::CounterApp::find(dep.node_b());
    if (app != nullptr && app->count() > count_before) {
      res.recover_ms = sim::to_millis(sim.now() - injected);
      res.state_continuous = app->count() >= count_before - 8;
    }
  }
  return res;
}

double p99_of(std::vector<double> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  return xs[static_cast<std::size_t>(static_cast<double>(xs.size() - 1) * 0.99)];
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(20);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "transport");
  w.kv("seeds", static_cast<std::uint64_t>(kSeeds));
  w.kv("frame_bytes", static_cast<std::uint64_t>(kFrameBytes));
  w.kv("frames", static_cast<std::uint64_t>(kFrames));

  title("E11a: checkpoint-stream goodput under loss",
        "300 x 4 KiB frames; naive = per-frame ack + fixed 200 ms retry sweep "
        "(the pre-transport pattern), session = transport::Endpoint");
  row({"loss", "naive MiB/s", "session MiB/s", "speedup", "naive sends", "sess sends"});
  rule(6);
  w.key("goodput");
  w.begin_array();
  for (double loss : kLossRates) {
    std::vector<double> naive_mibs, sess_mibs;
    std::uint64_t naive_sends = 0, sess_sends = 0;
    // Both deployments for one seed stay on the same worker so the
    // paired comparison is unchanged; seeds fan out across the pool.
    auto runs = sweep_seeds(kSeeds, [&](int s) {
      std::uint64_t seed = static_cast<std::uint64_t>(s) * 1471 + 7;
      return std::pair{run_goodput(/*use_session=*/false, loss, seed),
                       run_goodput(/*use_session=*/true, loss, seed)};
    });
    for (int s = 0; s < kSeeds; ++s) {
      const auto& [na, se] = runs[static_cast<std::size_t>(s)];
      if (!na.valid || !se.valid) continue;
      naive_mibs.push_back(na.mib_per_sec);
      sess_mibs.push_back(se.mib_per_sec);
      naive_sends += na.transmissions;
      sess_sends += se.transmissions;
    }
    Stats ns = stats_of(naive_mibs), ss = stats_of(sess_mibs);
    double speedup = ns.p50 > 0 ? ss.p50 / ns.p50 : 0;
    row({fmt_pct(loss), fmt(ns.p50, 2), fmt(ss.p50, 2), fmt(speedup, 2),
         fmt_int(static_cast<long long>(naive_sends)),
         fmt_int(static_cast<long long>(sess_sends))});
    w.begin_object();
    w.kv("loss", loss);
    w.kv("naive_mib_per_sec_p50", ns.p50);
    w.kv("session_mib_per_sec_p50", ss.p50);
    w.kv("speedup_p50", speedup);
    w.kv("naive_transmissions", naive_sends);
    w.kv("session_transmissions", sess_sends);
    w.kv("n", static_cast<std::uint64_t>(naive_mibs.size()));
    w.end_object();
  }
  w.end_array();

  title("E11b: failover latency under loss",
        "pair deployment, primary node crash; checkpoints ride the session "
        "transport; recovery = backup app makes progress with restored state");
  row({"loss", "recover p50 ms", "recover p99 ms", "continuous", "n"});
  rule(5);
  w.key("failover");
  w.begin_array();
  for (double loss : kLossRates) {
    std::vector<double> recover;
    int continuous = 0, n = 0;
    std::vector<FailoverResult> runs = sweep_seeds(kSeeds, [&](int s) {
      return run_failover(loss, static_cast<std::uint64_t>(s) * 613 + 101);
    });
    for (int s = 0; s < kSeeds; ++s) {
      const FailoverResult& r = runs[static_cast<std::size_t>(s)];
      if (r.recover_ms < 0) continue;
      ++n;
      recover.push_back(r.recover_ms);
      if (r.state_continuous) ++continuous;
    }
    Stats rs = stats_of(recover);
    double p99 = p99_of(recover);
    row({fmt_pct(loss), fmt(rs.p50, 1), fmt(p99, 1),
         fmt_int(continuous) + "/" + fmt_int(n), fmt_int(n)});
    w.begin_object();
    w.kv("loss", loss);
    w.kv("recover_ms_p50", rs.p50);
    w.kv("recover_ms_p99", p99);
    w.kv("state_continuous", static_cast<std::uint64_t>(continuous));
    w.kv("n", static_cast<std::uint64_t>(n));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_file("BENCH_transport.json", w.take());

  std::printf(
      "\n(the session's 50 ms backoff RTO and selective acks recover lost frames an\n"
      " order of magnitude faster than the old fixed 200 ms sweep, and retransmit\n"
      " only the missing frames instead of every unacked one; failover latency is\n"
      " detection-dominated and should hold roughly flat across loss rates because\n"
      " heartbeats deliberately stay raw while replication absorbs the loss.)\n");
  return 0;
}
