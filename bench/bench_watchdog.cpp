// Experiment E7 — reliable watchdog hang detection (§2.2.2 watchdog
// API). An application main-loop hang is invisible to heartbeats (the
// FTIM thread keeps beating); detection latency is governed purely by
// the watchdog timeout. We sweep the timeout and also show the
// distress-initiated switchover path.
#include "bench_util.h"
#include "core/api.h"
#include "core/deployment.h"
#include "sim/timer.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

class LoopApp {
 public:
  LoopApp(sim::Process& process, sim::SimTime wd_timeout, sim::SimTime kick_period)
      : timer_(process.main_strand()) {
    nt::NtRuntime::of(process).create_thread_static("loop", 0x1000);
    core::OFTTInitialize(process, {});
    core::Ftim::find(process)->on_activate([&process, this, wd_timeout, kick_period](bool) {
      core::OFTTWatchdogCreate(process, "loop", wd_timeout);
      timer_.start(kick_period, [&process] { core::OFTTWatchdogReset(process, "loop"); });
    });
  }

 private:
  sim::PeriodicTimer timer_;
};

double measure_detection_ms(sim::SimTime wd_timeout, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.app_factory = [wd_timeout](sim::Process& proc) {
    proc.attachment<LoopApp>(proc, wd_timeout, sim::milliseconds(50));
  };
  core::PairDeployment dep(sim, opts);
  sim.run_for(sim::seconds(3));
  if (dep.primary_node() != dep.node_a().id()) return -1;
  dep.node_a().find_process("app")->main_strand().hang();
  sim::SimTime injected = sim.now();
  sim::SimTime deadline = injected + sim::seconds(30);
  while (sim.now() < deadline) {
    sim.run_for(sim::milliseconds(1));
    if (sim.counter_value("oftt.watchdog_expired") > 0) {
      return sim::to_millis(sim.now() - injected);
    }
  }
  return -1;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(10);
  title("E7: hang-detection latency vs watchdog timeout",
        "application main thread wedged while FTIM heartbeats continue; " +
            std::to_string(kSeeds) + " seeds per point");
  row({"watchdog timeout", "detect mean ms", "detect p95 ms", "bound ok"});
  rule(4);
  for (sim::SimTime timeout : {sim::milliseconds(200), sim::milliseconds(500),
                               sim::seconds(1), sim::seconds(2)}) {
    std::vector<double> xs;
    for (int s = 0; s < kSeeds; ++s) {
      double d = measure_detection_ms(timeout, static_cast<std::uint64_t>(s) * 11 + 3);
      if (d >= 0) xs.push_back(d);
    }
    Stats st = stats_of(xs);
    // Expiry is checked each engine heartbeat tick: bound = timeout + period.
    bool bounded = st.max <= sim::to_millis(timeout) + 150.0;
    row({fmt(sim::to_millis(timeout), 0) + " ms", fmt(st.mean, 1), fmt(st.p95, 1),
         bounded ? "yes" : "NO"});
  }

  title("E7b: distress-initiated switchover latency",
        "application detects its own trouble and calls OFTTDistress; time to the peer "
        "becoming primary");
  {
    std::vector<double> xs;
    for (int s = 0; s < kSeeds; ++s) {
      sim::Simulation sim(static_cast<std::uint64_t>(s) * 17 + 1);
      core::PairDeploymentOptions opts;
      opts.app_factory = [](sim::Process& proc) {
        nt::NtRuntime::of(proc).create_thread_static("loop", 0x1000);
        core::OFTTInitialize(proc, {});
      };
      core::PairDeployment dep(sim, opts);
      sim.run_for(sim::seconds(3));
      if (dep.primary_node() != dep.node_a().id()) continue;
      auto proc = dep.node_a().find_process("app");
      sim::SimTime at = sim.now();
      core::OFTTDistress(*proc, "bench");
      while (sim.now() < at + sim::seconds(10)) {
        sim.run_for(sim::milliseconds(1));
        if (dep.engine_b() && dep.engine_b()->role() == core::Role::kPrimary) break;
      }
      xs.push_back(sim::to_millis(sim.now() - at));
    }
    Stats st = stats_of(xs);
    row({"distress -> peer primary", fmt(st.mean, 1) + " ms", fmt(st.p95, 1) + " ms", ""});
  }
  std::printf("\n(distress rides one engine-to-engine takeover message: milliseconds, not\n"
              " timeout-bound — the value of the application reporting instead of dying)\n");
  return 0;
}
