// Experiment E17 — conservative parallel simulation: speedup and
// determinism of src/sim/parallel_engine.
//
//  E17a: wall-clock speedup vs workers. Engine-only SWIM clusters at
//        N in {9, 64, 512} (the E15 workload — detection traffic on
//        every node, nodes spread round-robin across shards), run to a
//        fixed sim horizon under the sequential kernel and under
//        kParallel with W in {1, 2, 4}. Reported as wall seconds and
//        speedup of W workers over W=1 (the apples-to-apples number:
//        W=1 pays the window/barrier machinery without parallelism).
//  E17b: determinism. The telemetry history digest at each N must be
//        byte-identical across all worker counts — including N=512,
//        which is too slow for the unit-test lane and is pinned here
//        instead. Any divergence fails the run (exit 1) regardless of
//        floor settings: determinism is not hardware-dependent.
//
// Engine internals (windows, horizon-stall wall time, mailbox spills)
// are reported per run so a speedup regression can be attributed:
// stalls growing means lookahead got tighter relative to event density,
// spills mean the SPSC rings are undersized for the traffic.
//
// Exports BENCH_pdes.json. Floor gate: see pdes_floor.h.
#include <chrono>
#include <cinttypes>
#include <thread>

#include "bench_util.h"
#include "chaos/coverage.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "pdes_floor.h"
#include "sim/fault_plan.h"
#include "sim/parallel_engine.h"
#include "sim/simulation.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<int> pdes_sizes() {
  return smoke_mode() ? std::vector<int>{9, 64} : std::vector<int>{9, 64, 512};
}

struct PdesRun {
  double wall_s = 0;
  std::uint64_t hash = 0;
  // Parallel-engine internals (zero for the sequential baseline).
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  std::uint64_t spills = 0;
  double stall_ms = 0;
};

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
}

/// One engine-only SWIM cluster run: boot, converge, crash the primary
/// mid-run, reboot it, run to the horizon; digest the telemetry history
/// plus wire counters.
PdesRun run_cluster(int replicas, std::uint64_t seed, const sim::EngineConfig* cfg,
                    sim::SimTime horizon) {
  sim::Simulation sim(seed);
  if (cfg != nullptr) sim.set_engine(*cfg);

  core::ClusterDeploymentOptions opts;
  opts.replicas = replicas;
  opts.with_monitor = false;
  opts.with_msmq = false;
  opts.with_scm = false;
  opts.engine.detection = core::DetectionMode::kSwim;
  core::ClusterDeployment dep(sim, opts);

  chaos::CoverageProbe probe(sim.telemetry());
  sim::FaultPlan plan(sim);
  plan.os_crash(horizon / 2, /*node=*/1, /*reboot_after=*/horizon / 4);
  plan.arm();

  auto t0 = Clock::now();
  sim.run_until(horizon);
  PdesRun r;
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  probe.finish();
  r.hash = probe.history_hash();
  fold(r.hash, sim.network(0).sent());
  fold(r.hash, sim.network(0).delivered());
  fold(r.hash, sim.network(0).dropped());
  fold(r.hash, static_cast<std::uint64_t>(dep.primary_node()));

  if (sim::ParallelEngine* eng = sim.parallel_engine()) {
    r.windows = eng->windows();
    r.events = eng->events_executed();
    r.spills = eng->mailbox_spills();
    r.stall_ms = static_cast<double>(eng->stall_ns()) / 1e6;
  }
  return r;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const bool smoke = smoke_mode();
  const std::uint64_t kSeed = 4242;
  const std::vector<int> sizes = pdes_sizes();
  const int workers_lanes[] = {1, 2, 4};

  title("E17: conservative parallel engine — speedup vs workers",
        "engine-only SWIM clusters run to a fixed sim horizon; speedup is wall time "
        "at W=1 over wall time at W (same window machinery, more lanes); the digest "
        "must be identical in every row of one N");

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "pdes");
  w.kv("smoke", smoke);
  w.kv("hardware_threads",
       static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("sizes");
  w.begin_array();

  row({"N / engine", "wall s", "speedup", "windows", "events", "spills", "stall ms"});
  rule(7);

  bool hashes_ok = true;
  double speedup_w4_n512 = 0;
  for (int n : sizes) {
    // Horizon scales down with N so the full matrix stays tractable on
    // a laptop; N=512 is the row the floor reads.
    const sim::SimTime horizon = n >= 512 ? sim::seconds(10)
                                : n >= 64 ? sim::seconds(20)
                                          : sim::seconds(40);
    PdesRun seq = run_cluster(n, kSeed, nullptr, horizon);
    row({"N=" + std::to_string(n) + " sequential", fmt(seq.wall_s, 2), "-", "-", "-", "-",
         "-"});

    std::vector<PdesRun> lanes;
    for (int workers : workers_lanes) {
      sim::EngineConfig cfg;
      cfg.kind = sim::EngineKind::kParallel;
      cfg.workers = workers;
      lanes.push_back(run_cluster(n, kSeed, &cfg, horizon));
      const PdesRun& r = lanes.back();
      const double speedup = r.wall_s > 0 ? lanes.front().wall_s / r.wall_s : 0;
      row({"N=" + std::to_string(n) + " parallel W=" + std::to_string(workers),
           fmt(r.wall_s, 2), fmt(speedup, 2) + "x",
           fmt_int(static_cast<long long>(r.windows)),
           fmt_int(static_cast<long long>(r.events)),
           fmt_int(static_cast<long long>(r.spills)), fmt(r.stall_ms, 1)});
      if (r.hash != lanes.front().hash) hashes_ok = false;
      if (n == 512 && workers == 4) speedup_w4_n512 = speedup;
    }

    w.begin_object();
    w.kv("replicas", n);
    w.kv("horizon_s", sim::to_seconds(horizon));
    w.kv("sequential_wall_s", seq.wall_s);
    w.kv("sequential_hash", hex16(seq.hash));
    w.key("parallel");
    w.begin_array();
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const PdesRun& r = lanes[i];
      w.begin_object();
      w.kv("workers", workers_lanes[i]);
      w.kv("wall_s", r.wall_s);
      w.kv("speedup_vs_w1", r.wall_s > 0 ? lanes.front().wall_s / r.wall_s : 0.0);
      w.kv("hash", hex16(r.hash));
      w.kv("windows", r.windows);
      w.kv("events", r.events);
      w.kv("mailbox_spills", r.spills);
      w.kv("stall_ms", r.stall_ms);
      w.end_object();
    }
    w.end_array();
    w.kv("hash_invariant_across_workers", lanes.size() == 3 &&
                                              lanes[0].hash == lanes[1].hash &&
                                              lanes[1].hash == lanes[2].hash);
    w.end_object();
  }
  w.end_array();
  w.kv("hashes_ok", hashes_ok);
  w.kv("speedup_w4_n512", speedup_w4_n512);
  w.kv("floor_speedup_w4_n512", kFloorSpeedupW4N512);
  w.end_object();
  write_file("BENCH_pdes.json", w.take());

  std::printf(
      "\n(the digest row-for-row equality IS the engine's contract: worker count is\n"
      " an unobservable knob. Speedup asymptotes at the horizon/lookahead window\n"
      " granularity — more workers only help while every shard has events inside\n"
      " the current window.)\n");

  if (!hashes_ok) {
    std::printf("DETERMINISM VIOLATION: history hash diverged across worker counts\n");
    return 1;
  }
  const char* enforce = std::getenv("OFTT_BENCH_ENFORCE_FLOOR");
  const bool gate = enforce != nullptr && enforce[0] != '\0' && !smoke &&
                    std::thread::hardware_concurrency() >= kFloorMinCores;
  if (gate && speedup_w4_n512 < kFloorSpeedupW4N512) {
    std::printf("FLOOR REGRESSION: W=4 speedup at N=512 is %.2fx, floor is %.2fx\n",
                speedup_w4_n512, kFloorSpeedupW4N512);
    return 1;
  }
  return 0;
}
