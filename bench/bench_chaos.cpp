// Experiment E9 (endurance) — availability under a sustained random
// fault storm, OFTT on vs off. The paper's thesis is that PC-based
// monitoring systems need this middleware because "failures can have
// significant financial consequences"; this experiment puts a number on
// it: minutes of simulated plant time under random node crashes, NT
// crashes, app crashes, hangs, and link flaps, measuring the fraction
// of time the unit kept processing.
#include <cmath>

#include "bench_util.h"
#include "core/availability.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/fault_plan.h"
#include "support/counter_app.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

struct ChaosResult {
  double availability = 0;
  /// Integer parts-per-million mirror of `availability` for the
  /// deterministic JSON export (no floating-point formatting).
  std::int64_t availability_ppm = 0;
  int outages = 0;
  double longest_outage_s = 0;
  std::int64_t longest_outage_ns = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t local_restarts = 0;
  /// Durations of complete failover traces under the storm (sim ns).
  std::vector<std::int64_t> trace_totals;
};

/// The same workload without any middleware: it just runs when its
/// process runs, and nobody restarts it but a reboot.
class BareApp {
 public:
  explicit BareApp(sim::Process& process) : timer_(process.main_strand()) {
    count_ = 0;
    timer_.start(sim::milliseconds(10), [this] { ++count_; });
  }
  std::int64_t count() const { return count_; }

  static BareApp* find(sim::Node& node) {
    auto proc = node.find_process("app");
    return proc && proc->alive() ? proc->find_attachment<BareApp>() : nullptr;
  }

 private:
  std::int64_t count_;
  sim::PeriodicTimer timer_;
};

ChaosResult run_chaos(bool with_oftt, std::uint64_t seed, sim::SimTime duration) {
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.app_factory = [](sim::Process& proc) {
    testsupport::CounterApp::Options app;
    app.tick = sim::milliseconds(10);
    proc.attachment<testsupport::CounterApp>(proc, app);
  };
  if (with_oftt) {
    // Deploy the Message Diverter so failover traces run to completion
    // (detection -> ... -> reroute) and can be harvested below.
    opts.with_diverter = true;
  } else {
    // Baseline "bare PC": the same app with no engines, no FTIM, no
    // backup. Recovery only via the reboots the fault script models.
    opts.app_factory = nullptr;
    opts.with_msmq = false;
    opts.with_scm = false;
    opts.autostart = false;
  }
  core::PairDeployment dep(sim, opts);
  if (!with_oftt) {
    dep.node_a().set_boot_script([](sim::Node& node) {
      node.start_process("app", [](sim::Process& proc) { proc.attachment<BareApp>(proc); });
    });
    dep.node_a().boot();
  }
  sim.run_for(sim::seconds(3));

  // Random fault storm: one fault every ~20 s, always against the pair.
  sim::Rng rng = sim.fork_rng("chaos");
  sim::FaultPlan plan(sim);
  sim::SimTime t = sim.now() + sim::seconds(5);
  while (t < duration) {
    int victim = rng.chance(0.5) ? dep.node_a().id() : dep.node_b().id();
    if (!with_oftt) victim = dep.node_a().id();
    switch (rng.uniform(0, 3)) {
      case 0:
        // Power failure; field tech resets it after 30-90 s.
        plan.crash_node(t, victim);
        plan.boot_node(t + sim::seconds(30 + rng.uniform(0, 60)), victim);
        break;
      case 1:
        plan.os_crash(t, victim, /*reboot_after=*/sim::seconds(20 + rng.uniform(0, 20)));
        break;
      case 2: plan.kill_process(t, victim, "app"); break;
      case 3:
        plan.hang_process(t, victim, "app");
        break;
    }
    t += sim::seconds(15 + rng.uniform(0, 15));
  }
  plan.arm();

  // Availability probe: is any node's app making progress?
  auto probe_node = sim.add_node("probe").id();
  sim.node(probe_node).boot();
  auto probe_proc = sim.node(probe_node).start_process("probe", nullptr);
  auto last_counts = std::make_shared<std::map<int, std::int64_t>>();
  sim::SimTime last_progress = 0;
  auto tracker = std::make_shared<core::AvailabilityTracker>(
      probe_proc->main_strand(),
      [&, last_counts]() {
        // Progress = any node's app counter moved since the last probe
        // (counters may reset on cold restarts; change is what matters).
        bool moved = false;
        for (sim::Node* n : {&dep.node_a(), &dep.node_b()}) {
          std::int64_t v = -1;
          if (auto* app = testsupport::CounterApp::find(*n)) v = app->count();
          if (auto* bare = BareApp::find(*n)) v = bare->count();
          std::int64_t& prev = (*last_counts)[n->id()];
          if (v >= 0 && v != prev) moved = true;
          prev = v;
        }
        if (moved) last_progress = sim.now();
        // Serving = progress within the last 200 ms (20 app ticks).
        return sim.now() - last_progress < sim::milliseconds(200);
      },
      sim::milliseconds(10));
  probe_proc->add_component(tracker);

  sim.run_until(duration);
  ChaosResult res;
  res.availability = tracker->availability();
  res.availability_ppm = std::llround(res.availability * 1e6);
  res.outages = tracker->outages();
  res.longest_outage_ns = tracker->longest_outage();
  res.longest_outage_s = sim::to_seconds(tracker->longest_outage());
  res.takeovers = sim.counter_value("oftt.takeovers");
  res.local_restarts = sim.counter_value("oftt.local_restarts");
  for (const auto& tr : sim.telemetry().spans().traces()) {
    if (tr.complete()) res.trace_totals.push_back(tr.total());
  }
  return res;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(5);
  const sim::SimTime kDuration = sim::minutes(20);
  title("E9: availability under a sustained random fault storm",
        "20 simulated minutes, a random fault every ~20 s (power, BSOD, app crash, "
        "hang); " + std::to_string(kSeeds) +
            " seeds; baseline = the same workload on a single unprotected PC");
  row({"deployment", "availability", "outages", "longest s", "takeovers", "restarts"});
  rule(6);

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "chaos");
  w.kv("seeds", static_cast<std::uint64_t>(kSeeds));
  w.kv("duration_ns", static_cast<std::int64_t>(kDuration));
  w.key("deployments");
  w.begin_array();
  for (bool with_oftt : {false, true}) {
    std::vector<double> avail;
    int outages = 0;
    double longest = 0;
    std::uint64_t takeovers = 0, restarts = 0;
    std::vector<std::int64_t> trace_totals;
    w.begin_object();
    w.kv("deployment", with_oftt ? "oftt_pair" : "single_pc");
    w.key("runs");
    w.begin_array();
    // Runs are independent simulations: sweep them across the thread
    // pool, then merge (and emit JSON) serially in seed order.
    std::vector<ChaosResult> runs = sweep_seeds(kSeeds, [&](int s) {
      return run_chaos(with_oftt, static_cast<std::uint64_t>(s) * 997 + 11, kDuration);
    });
    for (int s = 0; s < kSeeds; ++s) {
      std::uint64_t seed = static_cast<std::uint64_t>(s) * 997 + 11;
      const ChaosResult& r = runs[static_cast<std::size_t>(s)];
      avail.push_back(r.availability);
      outages += r.outages;
      longest = std::max(longest, r.longest_outage_s);
      takeovers += r.takeovers;
      restarts += r.local_restarts;
      trace_totals.insert(trace_totals.end(), r.trace_totals.begin(), r.trace_totals.end());
      w.begin_object();
      w.kv("seed", seed);
      w.kv("availability_ppm", r.availability_ppm);
      w.kv("outages", r.outages);
      w.kv("longest_outage_ns", r.longest_outage_ns);
      w.kv("takeovers", r.takeovers);
      w.kv("local_restarts", r.local_restarts);
      w.end_object();
    }
    w.end_array();
    w.key("failover_total");
    w.begin_object();
    w.kv("n", static_cast<std::uint64_t>(trace_totals.size()));
    w.kv("p50_ns", obs::percentile(trace_totals, 0.50));
    w.kv("p99_ns", obs::percentile(trace_totals, 0.99));
    w.end_object();
    w.end_object();
    row({with_oftt ? "OFTT pair" : "single PC (no OFTT)", fmt_pct(stats_of(avail).mean, 2),
         fmt_int(outages), fmt(longest, 1), fmt_int(static_cast<long long>(takeovers)),
         fmt_int(static_cast<long long>(restarts))});
  }
  w.end_array();
  w.end_object();
  write_file("BENCH_chaos.json", w.take());
  std::printf(
      "\n(the unprotected PC is down for every reboot and for every app crash until the\n"
      " next reboot; the OFTT pair turns most faults into sub-second switchovers, so its\n"
      " residual downtime is dominated by double faults — both nodes simultaneously\n"
      " dead — which this storm intensity makes deliberately common)\n");
  return 0;
}
