// Checked-in events/sec floors for the CI perf-smoke lane (E12).
//
// bench_kernel fails (exit 1, with OFTT_BENCH_ENFORCE_FLOOR set) when a
// workload measures below 70% of its floor — a >30% kernel regression
// gate. Floors are deliberately set well below the numbers measured on
// a development machine (see EXPERIMENTS.md E12): shared CI runners are
// slower and noisy, and the gate exists to catch kernel-shaped
// regressions (an accidental allocation back on the hot path), not to
// measure hardware. Update them when E12 is re-baselined.
#pragma once

namespace oftt::bench {

// Baseline: pool/wheel kernel on a 1-core dev container measured
// 15-22M (schedule_fire), 44-55M (cancel_heavy), 26-28M (timer_heavy)
// events/sec in smoke mode; floors sit at roughly half the worst run.
// The seed kernel's timer-heavy rate (~8M) fails the 70% gate of the
// timer floor, so a wholesale hot-path regression cannot slip through.
inline constexpr double kFloorScheduleFire = 10.0e6;
inline constexpr double kFloorCancelHeavy = 25.0e6;
inline constexpr double kFloorTimerHeavy = 12.0e6;

}  // namespace oftt::bench
