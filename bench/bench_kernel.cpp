// Experiment E12 — the discrete-event kernel hot path itself: how many
// events per second can `sim::Simulation` schedule, fire and cancel?
// Every other experiment in EXPERIMENTS.md is bottlenecked by this
// loop, so its cost is measured directly, on three workload shapes:
//
//  schedule_fire — self-rescheduling one-shot chains (the shape of
//       datagram delivery and deadline events): each fired event
//       schedules its successor at a pseudo-random short delay.
//  cancel_heavy — the RTO/watchdog pattern: most scheduled events are
//       cancelled before they fire (a completion races a timeout and
//       usually wins). Exercises O(1) cancel plus tombstone reclaim.
//  timer_heavy — steady-state heartbeat traffic: hundreds of
//       PeriodicTimers on process strands at engine-like periods, the
//       event mix that dominates cluster runs at large N.
//
// Reported as events/sec and ns/event of *wall* time (sim time is free;
// the wall cost of the kernel loop is exactly what this bench exists to
// measure). Exports BENCH_kernel.json.
//
// CI perf-smoke lane: with OFTT_BENCH_ENFORCE_FLOOR set, the run fails
// (exit 1) if any workload's events/sec drops below 70% of the
// checked-in floor in kernel_floor.h — a >30% kernel regression gate.
#include <chrono>
#include <cinttypes>

#include "bench_util.h"
#include "kernel_floor.h"
#include "obs/json.h"
#include "pdes/pdes_scenarios.h"
#include "sim/simulation.h"
#include "sim/timer.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct KernelResult {
  std::uint64_t fired = 0;      // events that executed
  std::uint64_t scheduled = 0;  // schedule() calls
  std::uint64_t cancelled = 0;  // cancel() calls that hit a live event
  double wall_s = 0;
  /// Primary metric: kernel operations (schedule + fire + cancel) per
  /// wall second.
  double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(fired + scheduled + cancelled) / wall_s : 0;
  }
  double ns_per_event() const {
    std::uint64_t ops = fired + scheduled + cancelled;
    return ops > 0 ? wall_s * 1e9 / static_cast<double>(ops) : 0;
  }
  /// Determinism probe: FNV-1a over the sim-time of every fired event.
  std::uint64_t history_hash = 14695981039346656037ull;
};

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
}

// ---------------------------------------------------------------------
// schedule_fire — self-rescheduling one-shot chains.
// ---------------------------------------------------------------------

KernelResult run_schedule_fire(std::uint64_t seed, std::uint64_t target_events) {
  sim::Simulation sim(seed);
  KernelResult res;
  constexpr int kChains = 64;
  // Deterministic per-chain delay pattern; no rng in the hot loop.
  std::function<void(int)> hop = [&](int chain) {
    ++res.fired;
    fold(res.history_hash, static_cast<std::uint64_t>(sim.now()));
    if (res.fired + kChains > target_events) return;
    sim::SimTime delay = sim::microseconds(10 + (res.fired * 7 + static_cast<std::uint64_t>(chain) * 13) % 190);
    ++res.scheduled;
    sim.schedule_after(delay, [&hop, chain] { hop(chain); });
  };
  auto t0 = Clock::now();
  for (int c = 0; c < kChains; ++c) {
    ++res.scheduled;
    sim.schedule_after(sim::microseconds(static_cast<std::int64_t>(c)), [&hop, c] { hop(c); });
  }
  sim.run();
  res.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return res;
}

// ---------------------------------------------------------------------
// cancel_heavy — completion races a timeout; the timeout mostly loses.
// ---------------------------------------------------------------------

KernelResult run_cancel_heavy(std::uint64_t seed, std::uint64_t target_ops) {
  sim::Simulation sim(seed);
  KernelResult res;
  constexpr int kPerBatch = 100;
  std::vector<sim::EventHandle> timeouts;
  timeouts.reserve(kPerBatch);
  std::function<void()> batch = [&] {
    ++res.fired;
    fold(res.history_hash, static_cast<std::uint64_t>(sim.now()));
    // Schedule a batch of "timeouts" 10 ms out, then cancel 90% of them
    // (the completion arrived); the survivors fire as normal events.
    timeouts.clear();
    for (int i = 0; i < kPerBatch; ++i) {
      ++res.scheduled;
      timeouts.push_back(sim.schedule_after(sim::milliseconds(10), [&res, &sim] {
        ++res.fired;
        fold(res.history_hash, static_cast<std::uint64_t>(sim.now()));
      }));
    }
    for (int i = 0; i < kPerBatch; ++i) {
      if (i % 10 == 0) continue;  // every 10th survives to fire
      sim.cancel(timeouts[static_cast<std::size_t>(i)]);
      ++res.cancelled;
    }
    if (res.scheduled < target_ops) {
      ++res.scheduled;
      sim.schedule_after(sim::milliseconds(1), batch);
    }
  };
  auto t0 = Clock::now();
  ++res.scheduled;
  sim.schedule_after(sim::milliseconds(1), batch);
  sim.run();
  res.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return res;
}

// ---------------------------------------------------------------------
// timer_heavy — heartbeat-shaped periodic traffic on process strands.
// ---------------------------------------------------------------------

KernelResult run_timer_heavy(std::uint64_t seed, int timers, sim::SimTime duration) {
  sim::Simulation sim(seed);
  KernelResult res;
  constexpr int kNodes = 8;
  std::vector<sim::Node*> nodes;
  for (int n = 0; n < kNodes; ++n) {
    nodes.push_back(&sim.add_node("n" + std::to_string(n)));
    nodes.back()->boot();
  }
  std::vector<std::shared_ptr<sim::Process>> procs;
  std::vector<std::unique_ptr<sim::PeriodicTimer>> running;
  for (int t = 0; t < timers; ++t) {
    auto proc = nodes[static_cast<std::size_t>(t % kNodes)]->start_process(
        "p" + std::to_string(t), nullptr);
    procs.push_back(proc);
    auto timer = std::make_unique<sim::PeriodicTimer>(proc->main_strand());
    // Engine-like periods: 10..500 ms, deterministic spread.
    sim::SimTime period = sim::milliseconds(10 + (t % 50) * 10);
    timer->start(period, [&res, &sim] {
      ++res.fired;
      fold(res.history_hash, static_cast<std::uint64_t>(sim.now()));
    });
    running.push_back(std::move(timer));
  }
  auto t0 = Clock::now();
  sim.run_until(duration);
  res.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  // Each periodic fire re-arms itself: one schedule per fire.
  res.scheduled = res.fired;
  return res;
}

struct Workload {
  const char* name;
  KernelResult result;
  double floor_eps;  // checked-in events/sec floor (0 = ungated)
};

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const bool smoke = smoke_mode();
  const std::uint64_t kSeed = 1234;
  const std::uint64_t kChainEvents = smoke ? 200'000 : 2'000'000;
  const std::uint64_t kCancelOps = smoke ? 200'000 : 2'000'000;
  const int kTimers = smoke ? 100 : 250;
  const sim::SimTime kTimerDuration = smoke ? sim::seconds(20) : sim::minutes(2);

  title("E12: event-kernel hot path",
        "wall-clock cost of the schedule/fire/cancel cycle on three workload shapes; "
        "events/sec counts kernel operations (schedules + fires + cancels)");

  Workload workloads[] = {
      {"schedule_fire", run_schedule_fire(kSeed, kChainEvents), kFloorScheduleFire},
      {"cancel_heavy", run_cancel_heavy(kSeed, kCancelOps), kFloorCancelHeavy},
      {"timer_heavy", run_timer_heavy(kSeed, kTimers, kTimerDuration), kFloorTimerHeavy},
  };

  row({"workload", "events/s", "ns/event", "fired", "cancelled", "wall s"});
  rule(6);
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "kernel");
  w.kv("smoke", smoke);
  w.key("workloads");
  w.begin_array();
  bool floor_ok = true;
  for (const Workload& wl : workloads) {
    const KernelResult& r = wl.result;
    row({wl.name, fmt(r.events_per_sec() / 1e6, 2) + "M", fmt(r.ns_per_event(), 1),
         fmt_int(static_cast<long long>(r.fired)), fmt_int(static_cast<long long>(r.cancelled)),
         fmt(r.wall_s, 2)});
    w.begin_object();
    w.kv("workload", wl.name);
    w.kv("events_per_sec", r.events_per_sec());
    w.kv("ns_per_event", r.ns_per_event());
    w.kv("fired", r.fired);
    w.kv("scheduled", r.scheduled);
    w.kv("cancelled", r.cancelled);
    w.kv("wall_s", r.wall_s);
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, r.history_hash);
    w.kv("history_hash", hash);
    w.kv("floor_events_per_sec", wl.floor_eps);
    w.end_object();
    if (wl.floor_eps > 0 && r.events_per_sec() < 0.7 * wl.floor_eps) floor_ok = false;
  }
  w.end_array();

  // Parallel lane: the E17 ring scenario (rng-free variant) under the
  // sequential kernel and kParallel W in {1,2,4}. The digest must match
  // the sequential kernel exactly — this is the only bench row where
  // cross-*engine* equality (not just worker invariance) is asserted.
  title("E12 parallel lane: sequential vs kParallel on the clean ring",
        "rng-free scenario (fixed latency, lossless): digest must match the "
        "sequential kernel bit for bit at every worker count");
  row({"engine", "wall s", "digest"});
  rule(3);
  const int kRingNodes = smoke ? 5 : 9;
  bool ring_ok = true;
  auto ring_t0 = Clock::now();
  const std::uint64_t ring_seq = sim::pdestest::ring_hash(kSeed, kRingNodes, false, nullptr);
  double ring_seq_wall = std::chrono::duration<double>(Clock::now() - ring_t0).count();
  char ring_hex[32];
  std::snprintf(ring_hex, sizeof ring_hex, "%016" PRIx64, ring_seq);
  row({"sequential", fmt(ring_seq_wall, 3), ring_hex});
  w.key("parallel_lane");
  w.begin_array();
  for (int workers : {1, 2, 4}) {
    sim::EngineConfig cfg;
    cfg.kind = sim::EngineKind::kParallel;
    cfg.workers = workers;
    auto t0 = Clock::now();
    const std::uint64_t h = sim::pdestest::ring_hash(kSeed, kRingNodes, false, &cfg);
    double wall = std::chrono::duration<double>(Clock::now() - t0).count();
    std::snprintf(ring_hex, sizeof ring_hex, "%016" PRIx64, h);
    row({"parallel W=" + std::to_string(workers), fmt(wall, 3), ring_hex});
    if (h != ring_seq) ring_ok = false;
    w.begin_object();
    w.kv("workers", workers);
    w.kv("wall_s", wall);
    w.kv("hash", ring_hex);
    w.kv("matches_sequential", h == ring_seq);
    w.end_object();
  }
  w.end_array();
  w.kv("parallel_lane_ok", ring_ok);
  w.end_object();
  write_file("BENCH_kernel.json", w.take());

  std::printf(
      "\n(history_hash folds the sim-time of every fired event: identical across kernel\n"
      " implementations by contract — the pool/wheel rewrite must not change when\n"
      " anything fires, only what firing costs.)\n");
  if (!ring_ok) {
    std::printf("DETERMINISM VIOLATION: parallel ring digest diverged from sequential\n");
    return 1;
  }

  const char* enforce = std::getenv("OFTT_BENCH_ENFORCE_FLOOR");
  if (enforce != nullptr && enforce[0] != '\0' && !floor_ok) {
    std::printf("FLOOR REGRESSION: events/sec fell more than 30%% below kernel_floor.h\n");
    return 1;
  }
  return 0;
}
