// Experiment E4 — Message Diverter behaviour through a switchover
// (paper §2.2.3: "If a message is sent during a switchover, the message
// non-delivery is detected and retried").
//
// An external source streams sequenced messages at a fixed rate while
// the primary crashes mid-stream. We count delivered / lost / duplicate
// messages at the application, comparing MSMQ delivery modes and the
// application's checkpoint discipline (periodic vs per-event OFTTSave).
#include <set>

#include "bench_util.h"
#include "core/api.h"
#include "core/deployment.h"
#include "core/diverter.h"
#include "msmq/queue_manager.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

constexpr const char* kQueue = "unit.inbox";

class SeqConsumer {
 public:
  SeqConsumer(sim::Process& process, bool save_per_event) : process_(&process) {
    auto& rt = nt::NtRuntime::of(process);
    region_ = &rt.memory().alloc("globals", 1 << 14);
    count_ = nt::Cell<std::int64_t>(region_, 0);
    core::FtimOptions opts;
    opts.checkpoint_period = sim::milliseconds(250);
    core::OFTTInitialize(process, opts);
    core::Ftim::find(process)->on_activate([this, save_per_event](bool) {
      msmq::MsmqApi::of(*process_).subscribe(kQueue, [this, save_per_event](
                                                         const msmq::Message& m) {
        BinaryReader r(m.body);
        std::int64_t seq = r.i64();
        // Sequence-number bitmap in checkpointed state: duplicates and
        // losses are visible after any number of failovers.
        std::size_t byte = 8 + static_cast<std::size_t>(seq) / 8;
        std::uint8_t bit = static_cast<std::uint8_t>(1u << (seq % 8));
        std::uint8_t cur = region_->read<std::uint8_t>(byte);
        if (cur & bit) {
          ++dups_this_instance;
        } else {
          region_->write<std::uint8_t>(byte, static_cast<std::uint8_t>(cur | bit));
          count_.set(count_.get() + 1);
        }
        if (save_per_event) core::OFTTSave(*process_);
      });
    });
  }

  std::int64_t delivered_unique(std::int64_t total) const {
    std::int64_t n = 0;
    for (std::int64_t s = 0; s < total; ++s) {
      if (region_->read<std::uint8_t>(8 + static_cast<std::size_t>(s) / 8) &
          (1u << (s % 8))) {
        ++n;
      }
    }
    return n;
  }

  int dups_this_instance = 0;

  static SeqConsumer* find(sim::Node& node) {
    auto proc = node.find_process("app");
    return proc && proc->alive() ? proc->find_attachment<SeqConsumer>() : nullptr;
  }

 private:
  sim::Process* process_;
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> count_;
};

struct Outcome {
  std::int64_t sent = 0;
  std::int64_t delivered = 0;
  std::int64_t lost = 0;
  bool failover_ok = false;
};

Outcome run_once(msmq::DeliveryMode mode, bool save_per_event, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::PairDeploymentOptions opts;
  opts.unit = "unit";
  opts.app_factory = [save_per_event](sim::Process& proc) {
    proc.attachment<SeqConsumer>(proc, save_per_event);
  };
  core::PairDeployment dep(sim, opts);

  auto src = dep.monitor_node().start_process("source", nullptr);
  core::DiverterOptions dopts;
  dopts.unit = "unit";
  dopts.queue = kQueue;
  dopts.node_a = dep.node_a().id();
  dopts.node_b = dep.node_b().id();
  auto diverter = std::make_shared<core::MessageDiverter>(*src, dopts);
  src->add_component(diverter);

  sim.run_for(sim::seconds(3));

  Outcome out;
  sim::PeriodicTimer stream(src->main_strand());
  stream.start(sim::milliseconds(10), [&] {
    BinaryWriter w;
    w.i64(out.sent++);
    diverter->send("m", std::move(w).take(), mode);
  });
  sim.run_for(sim::seconds(2));
  dep.node_a().crash();  // mid-stream primary loss
  sim.run_for(sim::seconds(4));
  stream.stop();
  sim.run_for(sim::seconds(10));  // drain retries

  out.failover_ok = dep.primary_node() == dep.node_b().id();
  if (SeqConsumer* app = SeqConsumer::find(dep.node_b())) {
    out.delivered = app->delivered_unique(out.sent);
  }
  out.lost = out.sent - out.delivered;
  return out;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(10);
  title("E4: message continuity through a mid-stream switchover",
        "source streams 100 msg/s; primary node crashes mid-stream; totals over " +
            std::to_string(kSeeds) +
            " seeds. Loss window = messages acknowledged into the dead primary's queue "
            "after its last shipped checkpoint");

  row({"mode / checkpointing", "sent", "delivered", "lost", "loss rate"});
  rule(5);
  struct Config {
    const char* name;
    msmq::DeliveryMode mode;
    bool per_event;
  };
  for (const Config& cfg :
       {Config{"recoverable + per-event save", msmq::DeliveryMode::kRecoverable, true},
        Config{"recoverable + periodic ckpt", msmq::DeliveryMode::kRecoverable, false},
        Config{"express + per-event save", msmq::DeliveryMode::kExpress, true}}) {
    std::int64_t sent = 0, delivered = 0;
    for (int s = 0; s < kSeeds; ++s) {
      Outcome o = run_once(cfg.mode, cfg.per_event, static_cast<std::uint64_t>(s) * 31 + 5);
      if (!o.failover_ok) continue;
      sent += o.sent;
      delivered += o.delivered;
    }
    row({cfg.name, fmt_int(sent), fmt_int(delivered), fmt_int(sent - delivered),
         sent ? fmt_pct(static_cast<double>(sent - delivered) / static_cast<double>(sent), 2)
              : "n/a"});
  }
  std::printf(
      "\n(per-event OFTTSave closes the checkpoint-lag window: only messages that reached\n"
      " the dead node's local queue without being processed can be lost; the store-and-\n"
      " forward layer retries everything not yet acknowledged to the new primary)\n");
  return 0;
}
