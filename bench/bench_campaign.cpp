// Experiment E14 — coverage-guided fault-schedule search. Where E9
// samples random fault storms, E14 *searches*: a population of fault
// schedules evolves under mutation and splice, evaluations run in
// parallel on the sweep pool, and schedules that light new coverage
// bits or worsen failover p99 past 1.2x the single-crash baseline are
// shrunk to minimal reproducers. The output corpus is deterministic for
// a (campaign seed, budget) pair regardless of evaluator thread count —
// the property the CI lane diffs — and can be written out to refresh
// the pinned regression corpus (tests/chaos/corpus/worst_case.corpus)
// via OFTT_CAMPAIGN_CORPUS_OUT=<path>.
#include <cinttypes>

#include "bench_util.h"
#include "chaos/campaign.h"
#include "chaos/corpus.h"
#include "obs/json.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

chaos::CampaignOptions campaign_options() {
  chaos::CampaignOptions opts;
  opts.seed = 1;
  if (smoke_mode()) {
    // Bounded-budget CI lane: exercise every stage (evolve, shrink,
    // corpus, export) in seconds, not minutes.
    opts.population = 4;
    opts.generations = 2;
    opts.shrink_budget = 10;
    opts.eval.run_for = sim::seconds(40);
    opts.mutation.horizon = sim::seconds(28);
    opts.mutation.max_dur = sim::seconds(12);
    opts.mutation.max_ops = 6;
  } else {
    opts.population = 16;
    opts.generations = 8;
  }
  return opts;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  chaos::CampaignOptions opts = campaign_options();
  title("E14: coverage-guided fault-schedule search",
        "population " + std::to_string(opts.population) + " x " +
            std::to_string(opts.generations) +
            " generations, parallel evaluation on the sweep pool; survivors = new "
            "coverage or failover p99 > 1.2x the single-crash baseline, shrunk to "
            "minimal reproducers");

  chaos::Campaign campaign(opts);
  campaign.run();

  row({"generation", "evals", "cov bits", "corpus", "best p99 ms"});
  rule(5);
  for (const chaos::GenerationStats& g : campaign.generations()) {
    row({fmt_int(g.generation), fmt_int(g.evals),
         fmt_int(static_cast<long long>(g.coverage_bits)),
         fmt_int(static_cast<long long>(g.corpus_size)),
         fmt(static_cast<double>(g.best_p99) / 1e6, 1)});
  }

  std::printf("\nbaseline failover p99: %.1f ms, %d evaluations total\n",
              static_cast<double>(campaign.baseline_p99()) / 1e6,
              campaign.total_evals());

  std::printf("\nworst-case corpus (%zu entries):\n", campaign.corpus().size());
  row({"name", "reason", "ops", "was", "p99 ms", "history hash"});
  rule(6);
  for (const chaos::CorpusEntry& e : campaign.corpus()) {
    row({e.name, e.reason, fmt_int(static_cast<long long>(e.spec.ops.size())),
         fmt_int(static_cast<long long>(e.ops_before_shrink)),
         fmt(static_cast<double>(e.failover_p99) / 1e6, 1), hex16(e.history_hash)});
  }

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "campaign");
  w.kv("seed", opts.seed);
  w.kv("population", opts.population);
  w.kv("generations", opts.generations);
  w.kv("eval_seed", opts.eval.sim_seed);
  w.kv("run_for_ns", static_cast<std::int64_t>(opts.eval.run_for));
  w.kv("baseline_p99_ns", campaign.baseline_p99());
  w.kv("total_evals", campaign.total_evals());
  w.kv("coverage_bits", static_cast<std::uint64_t>(campaign.coverage().count()));
  w.key("generation_stats");
  w.begin_array();
  for (const chaos::GenerationStats& g : campaign.generations()) {
    w.begin_object();
    w.kv("generation", g.generation);
    w.kv("evals", g.evals);
    w.kv("coverage_bits", static_cast<std::uint64_t>(g.coverage_bits));
    w.kv("corpus_size", static_cast<std::uint64_t>(g.corpus_size));
    w.kv("best_p99_ns", g.best_p99);
    w.end_object();
  }
  w.end_array();
  w.key("corpus");
  w.begin_array();
  for (const chaos::CorpusEntry& e : campaign.corpus()) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("reason", e.reason);
    w.kv("ops", static_cast<std::uint64_t>(e.spec.ops.size()));
    w.kv("ops_before_shrink", static_cast<std::uint64_t>(e.ops_before_shrink));
    w.kv("failover_p99_ns", e.failover_p99);
    w.kv("history_hash", hex16(e.history_hash));
    w.kv("schedule", e.spec.serialize());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  write_file("BENCH_campaign.json", w.take());

  if (const char* out = std::getenv("OFTT_CAMPAIGN_CORPUS_OUT");
      out != nullptr && out[0] != '\0') {
    write_file(out, chaos::serialize_corpus(campaign.corpus()));
  }

  std::printf(
      "\n(every corpus entry is a shrunk, replayable reproducer: same eval seed, same\n"
      " schedule => byte-identical event history; the pinned worst cases in\n"
      " tests/chaos/corpus/ replay as ctest regressions on every build)\n");
  return 0;
}
