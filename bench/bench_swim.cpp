// Experiment E15 — SWIM-style failure detection at scale (src/swim/).
//
// E8 showed the price of the all-to-all heartbeat: O(N^2) datagrams on
// the wire, which at N=512 would be ~2.6M sends per heartbeat period.
// E15 measures what the swim detector buys back, on engine-only
// clusters so every datagram is detection/membership traffic:
//
//  E15a: steady-state wire cost vs N — datagrams/s and bytes/s, total
//        and per member, for swim at N in {9,32,128,512}; legacy gossip
//        alongside at N in {9,32} (running it at 512 is the point of
//        this experiment: you can't). Per-member cost should be flat
//        (O(1) sends per protocol period), total traffic linear-ish
//        (the per-update piggyback budget grows with log N).
//  E15b: detection + failover latency vs N — crash the primary; time
//        from crash to the first SwimDeadConfirm anywhere (detection)
//        and to a promoted successor (failover), p50/p99 over seeds.
//        Suspicion timeouts scale with log N, so failover p99 at N=512
//        should stay within ~2x of N=9 — not 57x.
//  E15c: false-positive rate — 1% datagram loss, zero faults injected;
//        a false positive is a death certificate later refuted by its
//        subject. Reported per member-minute.
//
// Exports BENCH_swim.json.
#include "bench_util.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

std::vector<int> swim_sizes() {
  return smoke_mode() ? std::vector<int>{9, 32} : std::vector<int>{9, 32, 128, 512};
}
constexpr int kLegacySizes[] = {9, 32};

core::ClusterDeploymentOptions engine_only(int replicas, core::DetectionMode mode,
                                           double loss) {
  core::ClusterDeploymentOptions opts;
  opts.replicas = replicas;
  // Engine-only: no monitor, no MSMQ, no SCM, no app — every datagram
  // on the wire is detection or membership traffic.
  opts.with_monitor = false;
  opts.with_msmq = false;
  opts.with_scm = false;
  opts.engine.detection = mode;
  opts.net_loss = loss;
  return opts;
}

// ---------------------------------------------------------------------
// E15a — steady-state wire cost.
// ---------------------------------------------------------------------

struct Overhead {
  std::int64_t dgrams_per_sec = 0;
  std::int64_t bytes_per_sec = 0;
  std::int64_t dgrams_per_member = 0;
  std::int64_t bytes_per_member = 0;
};

Overhead run_overhead(int replicas, core::DetectionMode mode, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::ClusterDeployment dep(sim, engine_only(replicas, mode, 0.0));
  sim.run_for(sim::seconds(5));  // converge the startup election

  const sim::SimTime window = sim::seconds(10);
  std::uint64_t dgrams0 = sim.network(0).sent();
  std::uint64_t bytes0 = sim.network(0).bytes_sent();
  sim.run_for(window);
  auto secs = static_cast<std::uint64_t>(sim::to_seconds(window));

  Overhead r;
  r.dgrams_per_sec = static_cast<std::int64_t>((sim.network(0).sent() - dgrams0) / secs);
  r.bytes_per_sec =
      static_cast<std::int64_t>((sim.network(0).bytes_sent() - bytes0) / secs);
  r.dgrams_per_member = r.dgrams_per_sec / replicas;
  r.bytes_per_member = r.bytes_per_sec / replicas;
  return r;
}

// ---------------------------------------------------------------------
// E15b — detection and failover latency.
// ---------------------------------------------------------------------

struct FailoverSample {
  std::int64_t detection = -1;  // crash -> first SwimDeadConfirm(victim)
  std::int64_t failover = -1;   // crash -> a successor holds PRIMARY
};

FailoverSample run_failover_once(int replicas, std::uint64_t seed) {
  FailoverSample out;
  sim::Simulation sim(seed);
  core::ClusterDeployment dep(sim, engine_only(replicas, core::DetectionMode::kSwim, 0.0));
  sim.run_for(sim::seconds(5));
  int victim = dep.primary_node();
  if (victim < 0) return out;

  sim::SimTime injected = sim.now();
  sim::SimTime confirmed_at = -1;
  auto sub = sim.telemetry().bus().subscribe(
      obs::mask_of(obs::EventKind::kSwimDeadConfirm), [&](const obs::Event& e) {
        if (confirmed_at < 0 && static_cast<int>(e.a) == victim) confirmed_at = e.at;
      });
  dep.node_by_id(victim)->crash();

  sim::SimTime deadline = injected + sim::seconds(60);
  while (sim.now() < deadline && dep.primary_node() < 0) {
    sim.run_for(sim::milliseconds(5));
  }
  sim.telemetry().bus().unsubscribe(sub);
  if (confirmed_at >= 0) out.detection = confirmed_at - injected;
  if (dep.primary_node() >= 0) out.failover = sim.now() - injected;
  return out;
}

// ---------------------------------------------------------------------
// E15c — false positives under loss.
// ---------------------------------------------------------------------

struct FpResult {
  std::uint64_t false_positives = 0;
  double member_minutes = 0;
};

FpResult run_fp(int replicas, std::uint64_t seed) {
  sim::Simulation sim(seed);
  core::ClusterDeployment dep(sim,
                              engine_only(replicas, core::DetectionMode::kSwim, 0.01));
  sim.run_for(sim::seconds(5));
  const sim::SimTime window = sim::seconds(20);
  std::uint64_t before = sim.telemetry().metrics().counter_value("oftt.swim_false_positive");
  sim.run_for(window);
  FpResult r;
  r.false_positives =
      sim.telemetry().metrics().counter_value("oftt.swim_false_positive") - before;
  r.member_minutes = static_cast<double>(replicas) * sim::to_seconds(window) / 60.0;
  return r;
}

void json_latency(obs::JsonWriter& w, const char* name,
                  const std::vector<std::int64_t>& xs) {
  w.key(name);
  w.begin_object();
  w.kv("n", static_cast<std::uint64_t>(xs.size()));
  w.kv("p50_ns", obs::percentile(xs, 0.50));
  w.kv("p99_ns", obs::percentile(xs, 0.99));
  w.end_object();
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  const int kSeeds = seeds_or(10);
  const std::vector<int> sizes = swim_sizes();

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "swim");
  w.kv("seeds", static_cast<std::uint64_t>(kSeeds));

  // E15a -----------------------------------------------------------------
  title("E15a: steady-state detection wire cost",
        "engine-only clusters; swim probes one member per period and piggybacks "
        "updates, vs the legacy all-to-all heartbeat");
  row({"detection / N", "dgrams/s", "per member", "bytes/s", "B/s member"});
  rule(5);
  std::vector<Overhead> swim_overhead;
  for (int n : sizes) {
    Overhead r = run_overhead(n, core::DetectionMode::kSwim, 11);
    swim_overhead.push_back(r);
    row({"swim N=" + std::to_string(n), fmt_int(r.dgrams_per_sec),
         fmt_int(r.dgrams_per_member), fmt_int(r.bytes_per_sec),
         fmt_int(r.bytes_per_member)});
  }
  std::vector<Overhead> legacy_overhead;
  for (int n : kLegacySizes) {
    Overhead r = run_overhead(n, core::DetectionMode::kGossip, 11);
    legacy_overhead.push_back(r);
    row({"gossip N=" + std::to_string(n), fmt_int(r.dgrams_per_sec),
         fmt_int(r.dgrams_per_member), fmt_int(r.bytes_per_sec),
         fmt_int(r.bytes_per_member)});
  }

  // E15b -----------------------------------------------------------------
  title("E15b: detection and failover latency vs N",
        "crash the primary; detection = first confirmed death certificate anywhere, "
        "failover = a successor holds PRIMARY; p50/p99 over " +
            std::to_string(kSeeds) + " seeds");
  row({"N", "detect p50 ms", "detect p99 ms", "failover p50", "failover p99", "runs"});
  rule(6);
  std::vector<std::vector<std::int64_t>> detection_by_size, failover_by_size;
  for (int n : sizes) {
    std::vector<FailoverSample> runs = sweep_seeds(kSeeds, [&](int s) {
      return run_failover_once(n, static_cast<std::uint64_t>(s) * 977 + 5);
    });
    std::vector<std::int64_t> det, fail;
    for (const FailoverSample& one : runs) {
      if (one.detection >= 0) det.push_back(one.detection);
      if (one.failover >= 0) fail.push_back(one.failover);
    }
    row({fmt_int(n), fmt(static_cast<double>(obs::percentile(det, 0.50)) / 1e6, 1),
         fmt(static_cast<double>(obs::percentile(det, 0.99)) / 1e6, 1),
         fmt(static_cast<double>(obs::percentile(fail, 0.50)) / 1e6, 1),
         fmt(static_cast<double>(obs::percentile(fail, 0.99)) / 1e6, 1),
         fmt_int(static_cast<long long>(fail.size()))});
    detection_by_size.push_back(std::move(det));
    failover_by_size.push_back(std::move(fail));
  }

  // E15c -----------------------------------------------------------------
  const int kFpSeeds = seeds_or(5, 1);
  title("E15c: false-positive rate under 1% loss",
        "no faults injected; a false positive is a death certificate the subject "
        "later refutes; per member-minute over " +
            std::to_string(kFpSeeds) + " seeds");
  row({"N", "false positives", "member-min", "fp / member-min"});
  rule(4);
  std::vector<FpResult> fp_by_size;
  for (int n : sizes) {
    std::vector<FpResult> runs = sweep_seeds(kFpSeeds, [&](int s) {
      return run_fp(n, static_cast<std::uint64_t>(s) * 389 + 7);
    });
    FpResult agg;
    for (const FpResult& one : runs) {
      agg.false_positives += one.false_positives;
      agg.member_minutes += one.member_minutes;
    }
    fp_by_size.push_back(agg);
    row({fmt_int(n), fmt_int(static_cast<long long>(agg.false_positives)),
         fmt(agg.member_minutes, 1),
         fmt(static_cast<double>(agg.false_positives) / agg.member_minutes, 3)});
  }

  // JSON export ----------------------------------------------------------
  w.key("sizes");
  w.begin_array();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    w.begin_object();
    w.kv("replicas", sizes[i]);
    w.kv("detection", "swim");
    w.kv("steady_dgrams_per_sec", swim_overhead[i].dgrams_per_sec);
    w.kv("steady_dgrams_per_sec_per_member", swim_overhead[i].dgrams_per_member);
    w.kv("steady_bytes_per_sec", swim_overhead[i].bytes_per_sec);
    w.kv("steady_bytes_per_sec_per_member", swim_overhead[i].bytes_per_member);
    json_latency(w, "detection", detection_by_size[i]);
    json_latency(w, "failover", failover_by_size[i]);
    w.kv("false_positives", static_cast<std::uint64_t>(fp_by_size[i].false_positives));
    w.kv("fp_per_member_minute",
         fp_by_size[i].member_minutes > 0
             ? static_cast<double>(fp_by_size[i].false_positives) /
                   fp_by_size[i].member_minutes
             : 0.0);
    w.end_object();
  }
  w.end_array();
  w.key("legacy_sizes");
  w.begin_array();
  for (std::size_t i = 0; i < std::size(kLegacySizes); ++i) {
    w.begin_object();
    w.kv("replicas", kLegacySizes[i]);
    w.kv("detection", "gossip");
    w.kv("steady_dgrams_per_sec", legacy_overhead[i].dgrams_per_sec);
    w.kv("steady_dgrams_per_sec_per_member", legacy_overhead[i].dgrams_per_member);
    w.kv("steady_bytes_per_sec", legacy_overhead[i].bytes_per_sec);
    w.kv("steady_bytes_per_sec_per_member", legacy_overhead[i].bytes_per_member);
    w.end_object();
  }
  w.end_array();

  // Acceptance ratio: failover p99 at the largest N vs the smallest.
  double ratio = 0.0;
  if (!failover_by_size.empty() && !failover_by_size.front().empty() &&
      !failover_by_size.back().empty()) {
    ratio = static_cast<double>(obs::percentile(failover_by_size.back(), 0.99)) /
            static_cast<double>(obs::percentile(failover_by_size.front(), 0.99));
  }
  w.kv("failover_p99_ratio_largest_vs_smallest", ratio);
  w.end_object();
  write_file("BENCH_swim.json", w.take());

  std::printf(
      "\n(failover p99 at N=%d is %.2fx N=%d — the suspicion timeout grows with\n"
      " log N while per-member wire cost stays O(1); the legacy gossip rows above\n"
      " show the O(N^2) traffic swim exists to avoid)\n",
      sizes.back(), ratio, sizes.front());
  return 0;
}
