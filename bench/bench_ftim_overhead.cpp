// Experiment E5 — the cost of adding OFTT to an OPC application
// ("minimal interference ... on the normal application development
// process", §2.2): OPC update throughput and control-plane message load
// with no FTIM, with the stateless OPC-server FTIM, and with the
// checkpointed OPC-client FTIM at several checkpoint periods.
#include "bench_util.h"
#include "core/api.h"
#include "core/deployment.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

const Clsid kClsid = Guid::from_name("CLSID_BenchPlc");

struct Config {
  const char* name;
  bool client_ftim = false;
  bool server_ftim = false;
  sim::SimTime checkpoint_period = 0;  // 0: n/a
  std::size_t state_bytes = 1 << 16;
};

struct Measured {
  double updates_per_s = 0;
  double ckpt_bytes_per_s = 0;
  double control_msgs_per_s = 0;  // heartbeats + engine traffic
};

Measured run(const Config& cfg) {
  sim::Simulation sim(5);
  core::PairDeploymentOptions opts;
  opts.unit = "bench";
  opts.app_process = "opcclient";
  opts.app_factory = nullptr;  // installed below so we can vary FTIM use
  core::PairDeployment dep(sim, opts);

  // OPC server app on node A.
  auto server_proc = dep.node_a().start_process("opcserver", [&cfg](sim::Process& proc) {
    auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(10));
    for (int i = 0; i < 16; ++i) {
      plc->add_input("Sig" + std::to_string(i), std::make_unique<opc::CounterSignal>());
    }
    opc::install_opc_server(proc, kClsid, plc, "bench");
    if (cfg.server_ftim) {
      core::FtimOptions fopts;
      fopts.kind = core::FtimKind::kOpcServer;
      core::OFTTInitialize(proc, fopts);
    }
  });
  (void)server_proc;

  // OPC client app on node A too (Fig. 2 places both on the pair).
  std::uint64_t updates = 0;
  auto client_proc = dep.node_a().start_process("opcclient", [&](sim::Process& proc) {
    if (cfg.client_ftim) {
      nt::NtRuntime::of(proc).memory().alloc("globals", cfg.state_bytes);
      core::FtimOptions fopts;
      fopts.checkpoint_period = cfg.checkpoint_period;
      core::OFTTInitialize(proc, fopts);
    }
  });
  auto conn = std::make_shared<opc::OpcConnection>(*client_proc, dep.node_a().id(), kClsid);
  std::vector<std::string> items;
  for (int i = 0; i < 16; ++i) items.push_back("Sig" + std::to_string(i));
  conn->subscribe(items, [&updates](const std::vector<opc::ItemState>& batch) {
    updates += batch.size();
  });
  client_proc->add_component(conn);

  sim.run_for(sim::seconds(5));
  std::uint64_t updates_before = updates;
  std::uint64_t ckpt_before = sim.counter_value("oftt.checkpoints_sent");
  std::uint64_t net_before = sim.network(0).sent();

  const double window_s = 20.0;
  std::size_t ckpt_bytes = 0;
  if (core::Ftim* ftim = core::Ftim::find(*client_proc)) {
    ckpt_bytes = ftim->last_checkpoint_bytes();
  }
  sim.run_for(sim::seconds(static_cast<std::int64_t>(window_s)));

  Measured m;
  m.updates_per_s = static_cast<double>(updates - updates_before) / window_s;
  double ckpts = static_cast<double>(sim.counter_value("oftt.checkpoints_sent") - ckpt_before);
  if (core::Ftim* ftim = core::Ftim::find(*client_proc)) {
    ckpt_bytes = std::max(ckpt_bytes, ftim->last_checkpoint_bytes());
  }
  m.ckpt_bytes_per_s = ckpts * static_cast<double>(ckpt_bytes) / window_s;
  m.control_msgs_per_s = static_cast<double>(sim.network(0).sent() - net_before) / window_s;
  return m;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  title("E5: fault-tolerance overhead on an OPC application",
        "16 items updating at 100 Hz; client app holds 64 KiB of state; 20 s window");

  row({"configuration", "updates/s", "ckpt KiB/s", "LAN msgs/s"});
  rule(4);
  for (const Config& cfg : {
           Config{"no FTIM (baseline)", false, false, 0},
           Config{"server FTIM (stateless)", false, true, 0},
           Config{"client FTIM, ckpt 1 s", true, false, sim::seconds(1)},
           Config{"client FTIM, ckpt 250 ms", true, false, sim::milliseconds(250)},
           Config{"client FTIM, ckpt 50 ms", true, false, sim::milliseconds(50)},
       }) {
    Measured m = run(cfg);
    row({cfg.name, fmt(m.updates_per_s, 1), fmt(m.ckpt_bytes_per_s / 1024.0, 1),
         fmt(m.control_msgs_per_s, 1)});
  }
  std::printf(
      "\n(data-path throughput is unchanged by the FTIM — fault tolerance rides the\n"
      " control plane: heartbeats at fixed rate plus checkpoint traffic proportional to\n"
      " state size / period. The stateless server FTIM adds heartbeats only.)\n");
  return 0;
}
