// Experiment E6 — DCOM under failure (paper §3.3: "the DCOM does not
// have a well-defined built-in fault tolerance infrastructure. For
// example, its RPC service does not behave well in the presence of
// failures, and additional design efforts have to be made in order to
// compensate for the deficiency").
//
// Part 1: ORPC call latency, local vs remote.
// Part 2: call outcomes while the server dies, raw DCOM vs the
// OFTT-style compensation (reconnect + retry via OpcConnection).
#include "bench_util.h"
#include "dcom/scm.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"
#include "sim/simulation.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

const Clsid kClsid = Guid::from_name("CLSID_BenchDcomPlc");

void install_server(sim::Node& node) {
  dcom::install_scm(node);
  node.start_process("opcserver", [](sim::Process& proc) {
    auto plc = std::make_shared<opc::PlcDevice>("PLC", sim::milliseconds(10));
    plc->add_input("Sig", std::make_unique<opc::CounterSignal>());
    opc::install_opc_server(proc, kClsid, plc, "bench");
  });
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);

  title("E6a: ORPC call latency (SyncRead through IOPCGroup)",
        "500 calls each; local = same node (loopback LPC), remote = across the LAN");
  row({"path", "mean ms", "p50 ms", "p95 ms"});
  rule(4);
  for (bool remote : {false, true}) {
    sim::Simulation sim(9);
    sim::Node& server = sim.add_node("server");
    sim::Node& client = sim.add_node("client");
    auto& net = sim.add_network("lan");
    net.attach(server.id());
    net.attach(client.id());
    server.set_boot_script([](sim::Node& n) { install_server(n); });
    server.boot();
    client.boot();
    sim::Node& client_node = remote ? client : server;
    auto proc = client_node.start_process("hmi", nullptr);
    auto conn = std::make_shared<opc::OpcConnection>(*proc, server.id(), kClsid);
    conn->subscribe({"Sig"}, nullptr);
    proc->add_component(conn);
    sim.run_for(sim::seconds(1));

    std::vector<double> latencies;
    for (int i = 0; i < 500; ++i) {
      sim::SimTime sent = sim.now();
      bool done = false;
      conn->read({"Sig"}, [&](HRESULT, const std::vector<opc::ItemState>&) {
        latencies.push_back(sim::to_millis(sim.now() - sent));
        done = true;
      });
      while (!done && sim.step()) {
      }
      sim.run_for(sim::milliseconds(1));
    }
    Stats s = stats_of(latencies);
    row({remote ? "remote (LAN)" : "local (same node)", fmt(s.mean, 3), fmt(s.p50, 3),
         fmt(s.p95, 3)});
  }

  title("E6b: calls issued while the server process dies",
        "100 SyncReads at 20 ms spacing; server killed after call 30; raw DCOM has no "
        "recovery, the compensated client reconnects via SCM relaunch");
  row({"client", "ok", "timeout", "disconnected", "recovered"});
  rule(5);
  for (bool compensated : {false, true}) {
    sim::Simulation sim(10);
    sim::Node& server = sim.add_node("server");
    sim::Node& client = sim.add_node("client");
    auto& net = sim.add_network("lan");
    net.attach(server.id());
    net.attach(client.id());
    server.set_boot_script([](sim::Node& n) { install_server(n); });
    server.boot();
    client.boot();
    auto proc = client.start_process("hmi", nullptr);
    opc::OpcConnection::Config cfg;
    if (compensated) {
      cfg.staleness_timeout = sim::milliseconds(400);
      cfg.retry_backoff = sim::milliseconds(200);
    } else {
      cfg.staleness_timeout = 0;  // raw: no watchdog, no reconnect
      cfg.retry_backoff = sim::seconds(3600);
    }
    auto conn = std::make_shared<opc::OpcConnection>(*proc, server.id(), kClsid, cfg);
    conn->subscribe({"Sig"}, nullptr);
    proc->add_component(conn);
    sim.run_for(sim::seconds(1));

    int ok = 0, timeout = 0, disconnected = 0, other = 0;
    for (int i = 0; i < 100; ++i) {
      if (i == 30) server.find_process("opcserver")->kill("injected");
      conn->read({"Sig"}, [&](HRESULT hr, const std::vector<opc::ItemState>&) {
        if (SUCCEEDED(hr)) ++ok;
        else if (hr == RPC_E_TIMEOUT) ++timeout;
        else if (hr == RPC_E_DISCONNECTED) ++disconnected;
        else ++other;
      });
      sim.run_for(sim::milliseconds(20));
    }
    sim.run_for(sim::seconds(3));
    (void)other;
    row({compensated ? "with compensation" : "raw DCOM", fmt_int(ok), fmt_int(timeout),
         fmt_int(disconnected), compensated && ok > 35 ? "yes" : (ok > 35 ? "yes" : "no")});
  }
  std::printf(
      "\n(raw DCOM: every call after the crash fails until the application itself\n"
      " rebuilds the connection — the 'additional design efforts' the paper describes.\n"
      " The compensated client detects staleness, re-activates through the SCM, and\n"
      " resumes; the OFTT engine automates the same pattern for whole applications.)\n");
  return 0;
}
