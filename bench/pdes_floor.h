// Checked-in acceptance floors for E17 (bench_pdes): the conservative
// parallel engine must buy real wall-clock speedup on the workload it
// was built for — the N=512 SWIM cluster, whose 512 shard-spread nodes
// give every worker a full plate between windows.
//
// Floors are enforced only when OFTT_BENCH_ENFORCE_FLOOR is set AND the
// host has at least kFloorMinCores hardware threads: speedup is a
// property of the machine, and a 1-core container measuring 1.0x is
// reporting its own cgroup quota, not an engine regression. Hash
// invariance across worker counts, by contrast, is enforced on every
// run — determinism does not depend on the hardware.
#pragma once

namespace oftt::bench {

/// Minimum wall-clock speedup of kParallel workers=4 over workers=1 on
/// the N=512 engine-only SWIM cluster.
inline constexpr double kFloorSpeedupW4N512 = 2.0;

/// Cores below which the speedup floor is vacuous and skipped.
inline constexpr unsigned kFloorMinCores = 4;

}  // namespace oftt::bench
