// Checked-in floors for the OPC data-plane perf-smoke lane (E16).
//
// bench_opc fails (exit 1, with OFTT_BENCH_ENFORCE_FLOOR set) when a
// measurement falls below its floor. Two kinds of gate live here:
//
//  - kFloorNotifyPerSec is wall-clock (host) throughput of the
//    change-driven group tick path and follows the kernel_floor.h
//    philosophy: set far below dev-machine numbers so shared CI
//    runners pass, tight enough that a wholesale O(changed) -> O(tags)
//    regression (the seed's poll-and-diff cost creeping back) cannot.
//  - kFloorCoalesceRatio and kFloorSwitchoverP99Ns are *sim-domain*
//    and therefore deterministic per seed — they are behaviour gates,
//    not hardware gates, and can sit close to the expected values:
//    frames must be shared across a client's groups (ratio well above
//    1), and warm-passive switchover with sharded tag checkpoints must
//    stay sub-second regardless of tag count.
//
// The logical invariant (notifications per measured tick == changed
// tags exactly) is asserted unconditionally — that one is never a
// hardware question. Update the wall floor when E16 is re-baselined.
#pragma once

namespace oftt::bench {

// Baseline: the in-process change-driven tick path measured
// 1.8M-2.9M notifications/sec on a 1-core dev container across
// N = 10^4..10^6 tags; the floor sits well below the
// worst run. The seed's O(items) poll at N = 10^6 manages ~2k/s of
// *changed*-tag throughput (it re-reads a million points to find a
// thousand changes), so a regression to polling fails by three orders
// of magnitude.
inline constexpr double kFloorNotifyPerSec = 500e3;

// E16b: with >= 2 groups per client node, batches per frame must show
// real coalescing (one frame per (client, tick), not per group).
inline constexpr double kFloorCoalesceRatio = 1.5;

// E16c: crash-to-new-primary-progress, p99 across seeds, at every tag
// count. Sim-time, deterministic; 1.5 s leaves headroom over the
// detection timeout + activation path while still failing any
// tag-count-proportional restore cost at N = 10^6.
inline constexpr long long kFloorSwitchoverP99Ns = 1'500'000'000;

}  // namespace oftt::bench
