// Experiment E1 — checkpoint cost: full memory walkthrough vs
// user-directed selective checkpointing (OFTTSelSave), over application
// state size. The paper adopts user-directed checkpointing citing
// [10,11]: "in some cases, user directed checkpointing mechanism can
// improve the performance."
//
// Reported per state size: image bytes on the wire, and the real CPU
// cost of capture+marshal on this machine (the capture code is real
// computation, not simulated).
#include <array>
#include <chrono>

#include "bench_util.h"
#include "common/strings.h"
#include "core/checkpoint.h"
#include "core/deployment.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "sim/simulation.h"
#include "support/counter_app.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

double time_capture_us(nt::NtRuntime& rt, core::CheckpointMode mode,
                       const std::vector<core::CellSpec>& cells, int iters) {
  using clock = std::chrono::steady_clock;
  // Warmup.
  auto img = core::capture_checkpoint(rt, mode, cells, 1, 1, {});
  Buffer blob = img.marshal();
  auto start = clock::now();
  std::size_t sink = 0;
  for (int i = 0; i < iters; ++i) {
    auto im = core::capture_checkpoint(rt, mode, cells, static_cast<std::uint64_t>(i), 1, {});
    sink += im.marshal().size();
  }
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - start).count();
  if (sink == 0) std::printf("!");  // keep the optimizer honest
  return static_cast<double>(us) / iters;
}

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  title("E1: full memory-walkthrough vs selective (OFTTSelSave) checkpointing",
        "selective set = 4 designated variables (32 bytes) regardless of state size; "
        "capture time is real CPU time on this host");

  row({"app state size", "full bytes", "sel bytes", "full us", "sel us", "ratio"});
  rule(6);

  // (state size, full image bytes, selective image bytes) — the
  // deterministic part of the table, exported to BENCH_checkpoint.json.
  std::vector<std::array<std::uint64_t, 3>> size_rows;

  for (std::size_t size : {std::size_t{1} << 10, std::size_t{1} << 14, std::size_t{1} << 17,
                           std::size_t{1} << 20, std::size_t{1} << 22, std::size_t{1} << 24}) {
    sim::Simulation sim(1);
    sim::Node& node = sim.add_node("n");
    node.boot();
    auto proc = node.start_process("app", nullptr);
    auto& rt = nt::NtRuntime::of(*proc);
    auto& region = rt.memory().alloc("globals", size);
    // Touch the state so it is not trivially zero.
    for (std::size_t i = 0; i < size; i += 4096) region.data()[i] = static_cast<uint8_t>(i);

    std::vector<core::CellSpec> cells;
    for (std::uint32_t i = 0; i < 4; ++i) cells.push_back({"globals", i * 8, 8});

    auto full_img = core::capture_checkpoint(rt, core::CheckpointMode::kFull, {}, 1, 1, {});
    auto sel_img =
        core::capture_checkpoint(rt, core::CheckpointMode::kSelective, cells, 1, 1, {});
    std::size_t full_bytes = full_img.marshal().size();
    std::size_t sel_bytes = sel_img.marshal().size();
    size_rows.push_back({size, full_bytes, sel_bytes});

    int iters = size >= (1u << 22) ? 20 : 200;
    double full_us = time_capture_us(rt, core::CheckpointMode::kFull, {}, iters);
    double sel_us = time_capture_us(rt, core::CheckpointMode::kSelective, cells, iters);

    row({human_bytes(size), fmt_int(static_cast<long long>(full_bytes)),
         fmt_int(static_cast<long long>(sel_bytes)), fmt(full_us, 1), fmt(sel_us, 2),
         fmt(full_us / sel_us, 0) + "x"});
  }

  std::printf(
      "\n(the selective designation keeps both wire bytes and capture cost constant as the\n"
      " application grows — the reason the OFTT exposes OFTTSelSave instead of relying on\n"
      " transparent full-address-space checkpoints alone)\n");

  // Second table: what this buys at the system level — checkpoint bytes
  // shipped per second for a periodic checkpointer.
  title("E1b: wire load of periodic checkpointing",
        "bytes/s shipped to the backup at several checkpoint periods, 1 MiB app state");
  row({"checkpoint period", "full KiB/s", "selective KiB/s"});
  rule(3);
  {
    sim::Simulation sim(1);
    sim::Node& node = sim.add_node("n");
    node.boot();
    auto proc = node.start_process("app", nullptr);
    auto& rt = nt::NtRuntime::of(*proc);
    rt.memory().alloc("globals", 1 << 20);
    std::vector<core::CellSpec> cells{{"globals", 0, 32}};
    double full_bytes = static_cast<double>(
        core::capture_checkpoint(rt, core::CheckpointMode::kFull, {}, 1, 1, {}).marshal().size());
    double sel_bytes = static_cast<double>(
        core::capture_checkpoint(rt, core::CheckpointMode::kSelective, cells, 1, 1, {})
            .marshal()
            .size());
    for (double period_s : {0.1, 0.25, 0.5, 1.0, 5.0}) {
      row({fmt(period_s, 2) + " s", fmt(full_bytes / period_s / 1024.0, 1),
           fmt(sel_bytes / period_s / 1024.0, 2)});
    }
  }

  // Deterministic JSON export: the image sizes above plus the live
  // checkpoint-bytes histogram from a short redundant-pair run (what the
  // FTIM actually shipped, via the telemetry registry).
  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "checkpoint");
  w.key("image_sizes");
  w.begin_array();
  for (const auto& r : size_rows) {
    w.begin_object();
    w.kv("state_bytes", r[0]);
    w.kv("full_bytes", r[1]);
    w.kv("selective_bytes", r[2]);
    w.end_object();
  }
  w.end_array();
  {
    sim::Simulation sim(17);
    core::PairDeploymentOptions opts;
    opts.app_factory = [](sim::Process& proc) {
      proc.attachment<testsupport::CounterApp>(proc);
    };
    core::PairDeployment dep(sim, opts);
    sim.run_for(sim::seconds(20));
    obs::Histogram h = sim.telemetry().metrics().histogram("oftt.checkpoint_bytes", {});
    w.key("pair_run_20s");
    w.begin_object();
    w.kv("seed", std::uint64_t{17});
    w.kv("checkpoints_sent", sim.counter_value("oftt.checkpoints_sent"));
    w.kv("checkpoints_received", sim.counter_value("oftt.checkpoints_received"));
    w.kv("checkpoint_bytes_count", h.count());
    w.kv("checkpoint_bytes_sum", h.sum());
    w.kv("checkpoint_bytes_p50", h.quantile(0.50));
    w.kv("checkpoint_bytes_p99", h.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  write_file("BENCH_checkpoint.json", w.take());
  return 0;
}
