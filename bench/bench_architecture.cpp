// Experiment F2 — the OFTT software architecture of Fig. 2, measured.
// We instantiate the full picture (primary + backup, each with an OPC
// server app and an OPC client app linked to FTIMs, OFTT engines, the
// message diverter feeding from an external source, the system monitor)
// and report the steady-state message rate on every arrow of the figure.
#include "bench_util.h"
#include "core/api.h"
#include "core/deployment.h"
#include "core/diverter.h"
#include "msmq/queue_manager.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"

using namespace oftt;
using namespace oftt::bench;

namespace {

const Clsid kClsid = Guid::from_name("CLSID_ArchPlc");
constexpr const char* kQueue = "arch.inbox";

class ClientApp {
 public:
  explicit ClientApp(sim::Process& process) : process_(&process) {
    auto& rt = nt::NtRuntime::of(process);
    region_ = &rt.memory().alloc("globals", 4096);
    core::FtimOptions opts;
    opts.component = "opc_client_app";
    opts.checkpoint_period = sim::milliseconds(250);
    core::OFTTInitialize(process, opts);
    core::Ftim::find(process)->on_activate([this](bool) {
      conn_ = std::make_unique<opc::OpcConnection>(*process_, process_->node().id(), kClsid);
      conn_->subscribe({"T.Level", "T.Flow"}, [this](const std::vector<opc::ItemState>&) {
        ++opc_updates;
      });
      msmq::MsmqApi::of(*process_).subscribe(kQueue,
                                             [this](const msmq::Message&) { ++mq_messages; });
    });
    core::Ftim::find(process)->on_deactivate([this] { conn_.reset(); });
  }
  std::uint64_t opc_updates = 0;
  std::uint64_t mq_messages = 0;

 private:
  sim::Process* process_;
  nt::Region* region_ = nullptr;
  std::unique_ptr<opc::OpcConnection> conn_;
};

}  // namespace

int main() {
  Logger::instance().set_level(LogLevel::kOff);
  title("F2: steady-state traffic on every channel of the Fig. 2 architecture",
        "60 s window after warmup; heartbeats 100 ms, checkpoints 250 ms, OPC updates "
        "100 ms, external source 20 msg/s");

  sim::Simulation sim(55);
  core::PairDeploymentOptions opts;
  opts.unit = "arch";
  opts.app_process = "opc_client_app";
  opts.app_factory = [](sim::Process& proc) { proc.attachment<ClientApp>(proc); };
  core::PairDeployment dep(sim, opts);
  for (sim::Node* n : {&dep.node_a(), &dep.node_b()}) {
    n->start_process("opc_server_app", [](sim::Process& proc) {
      auto plc = std::make_shared<opc::PlcDevice>("T", sim::milliseconds(50));
      plc->add_input("T.Level", std::make_unique<opc::SineSignal>(50, 10, 13, 0.2));
      plc->add_input("T.Flow", std::make_unique<opc::RandomWalkSignal>(5, 0.2, 0, 10));
      opc::install_opc_server(proc, kClsid, plc, "vendor");
      core::FtimOptions fopts;
      fopts.component = "opc_server_app";
      fopts.kind = core::FtimKind::kOpcServer;
      core::OFTTInitialize(proc, fopts);
    });
  }
  // External non-replicated data source + diverter on the test PC.
  auto src = dep.monitor_node().start_process("source", nullptr);
  core::DiverterOptions dopts;
  dopts.unit = "arch";
  dopts.queue = kQueue;
  dopts.node_a = dep.node_a().id();
  dopts.node_b = dep.node_b().id();
  auto diverter = std::make_shared<core::MessageDiverter>(*src, dopts);
  src->add_component(diverter);
  auto pump = std::make_shared<sim::PeriodicTimer>(src->main_strand());
  pump->start(sim::milliseconds(50), [diverter] { diverter->send("evt", Buffer{1, 2, 3}); });
  src->add_component(pump);

  sim.run_for(sim::seconds(10));  // warmup

  struct Snapshot {
    std::uint64_t ckpts, lan_sent, lan_delivered;
    std::uint64_t opc_updates, mq_messages;
    std::uint64_t monitor_reports;
  };
  auto snap = [&]() -> Snapshot {
    Snapshot s{};
    s.ckpts = sim.counter_value("oftt.checkpoints_sent");
    s.lan_sent = sim.network(0).sent();
    s.lan_delivered = sim.network(0).delivered();
    int primary = dep.primary_node();
    if (primary >= 0) {
      auto* app = dep.node_by_id(primary)
                      ->find_process("opc_client_app")
                      ->find_attachment<ClientApp>();
      s.opc_updates = app->opc_updates;
      s.mq_messages = app->mq_messages;
    }
    if (auto* mon = dep.monitor()) s.monitor_reports = mon->reports_received();
    return s;
  };

  Snapshot before = snap();
  const double window = 60.0;
  sim.run_for(sim::seconds(60));
  Snapshot after = snap();

  auto rate = [&](std::uint64_t b, std::uint64_t a) {
    return fmt(static_cast<double>(a - b) / window, 1);
  };

  row({"channel (Fig. 2 arrow)", "msgs/s"});
  rule(2);
  row({"checkpoint data (FTIM->FTIM)", rate(before.ckpts, after.ckpts)});
  row({"OPC data (server->client app)", rate(before.opc_updates, after.opc_updates)});
  row({"diverted source msgs (MSMQ)", rate(before.mq_messages, after.mq_messages)});
  row({"status reports (->monitor)", rate(before.monitor_reports, after.monitor_reports)});
  row({"total LAN datagrams", rate(before.lan_sent, after.lan_sent)});
  double delivered_frac =
      static_cast<double>(after.lan_delivered - before.lan_delivered) /
      static_cast<double>(after.lan_sent - before.lan_sent);
  row({"LAN delivery fraction", fmt_pct(delivered_frac, 1)});

  std::printf("\nfinal roles: nodeA=%s nodeB=%s — components per the System Monitor:\n%s",
              dep.engine_a() ? core::role_name(dep.engine_a()->role()) : "?",
              dep.engine_b() ? core::role_name(dep.engine_b()->role()) : "?",
              dep.monitor() ? dep.monitor()->render().c_str() : "(none)\n");
  return 0;
}
