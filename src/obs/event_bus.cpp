#include "obs/event_bus.h"

#include <algorithm>

namespace oftt::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kRoleChange: return "role_change";
    case EventKind::kFailureDetected: return "failure_detected";
    case EventKind::kComponentFailed: return "component_failed";
    case EventKind::kComponentRestart: return "component_restart";
    case EventKind::kDistress: return "distress";
    case EventKind::kWatchdogExpired: return "watchdog_expired";
    case EventKind::kDualPrimary: return "dual_primary";
    case EventKind::kStartupShutdown: return "startup_shutdown";
    case EventKind::kComponentActivated: return "component_activated";
    case EventKind::kComponentDeactivated: return "component_deactivated";
    case EventKind::kCheckpointTaken: return "checkpoint_taken";
    case EventKind::kCheckpointApplied: return "checkpoint_applied";
    case EventKind::kEngineRestart: return "engine_restart";
    case EventKind::kDiverterReroute: return "diverter_reroute";
    case EventKind::kNodeDown: return "node_down";
    case EventKind::kNodeUp: return "node_up";
    case EventKind::kPromotionRequested: return "promotion_requested";
    case EventKind::kPromotionQuorum: return "promotion_quorum";
    case EventKind::kViewChange: return "view_change";
    case EventKind::kJournalRecovered: return "journal_recovered";
    case EventKind::kResyncDelta: return "resync_delta";
    case EventKind::kResyncFull: return "resync_full";
    case EventKind::kSessionReset: return "session_reset";
    case EventKind::kPolicySwitch: return "policy_switch";
    case EventKind::kSwimSuspect: return "swim_suspect";
    case EventKind::kSwimRefute: return "swim_refute";
    case EventKind::kSwimDeadConfirm: return "swim_dead_confirm";
    case EventKind::kOpcBatch: return "opc_batch";
    case EventKind::kOpcBatchDrop: return "opc_batch_drop";
    case EventKind::kOpcDeviceFault: return "opc_device_fault";
    case EventKind::kMaxKind: break;
  }
  return "unknown";
}

EventBus::SubscriberId EventBus::subscribe(EventMask mask, Handler handler, AliveFn alive) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Subscription sub;
  sub.id = next_id_++;
  sub.mask = mask;
  sub.handler = std::move(handler);
  sub.alive = std::move(alive);
  subs_.push_back(std::move(sub));
  return subs_.back().id;
}

void EventBus::unsubscribe(SubscriberId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& sub : subs_) {
    if (sub.id == id) {
      sub.dead = true;
      needs_prune_ = true;
    }
  }
  if (dispatch_depth_ == 0) prune();
}

void EventBus::publish(Event e) {
  e.at = clock_ ? clock_() : 0;
  // Parallel-engine path: a worker-context publish is captured into the
  // worker's buffer and replayed (dispatch_now) at the barrier in
  // deterministic merge order.
  if (defer_ && defer_(e)) return;
  dispatch_now(std::move(e));
}

void EventBus::dispatch_now(Event e) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  ++published_;
  const EventMask mask = mask_of(e.kind);
  // Index-based: a handler may subscribe (push_back) or unsubscribe
  // during dispatch; new subscribers do not see the in-flight event.
  ++dispatch_depth_;
  const std::size_t count = subs_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Subscription& sub = subs_[i];
    if (sub.dead || (sub.mask & mask) == 0) continue;
    if (sub.alive && !sub.alive()) {
      sub.dead = true;
      needs_prune_ = true;
      continue;
    }
    sub.handler(e);
  }
  --dispatch_depth_;
  if (dispatch_depth_ == 0 && needs_prune_) prune();
  history_.append(std::move(e));
}

std::size_t EventBus::subscriber_count() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& sub : subs_) {
    if (!sub.dead && sub.alive && !sub.alive()) sub.dead = true;
  }
  prune();
  return subs_.size();
}

void EventBus::prune() {
  std::erase_if(subs_, [](const Subscription& s) { return s.dead; });
  needs_prune_ = false;
}

}  // namespace oftt::obs
