// The telemetry event taxonomy: one typed record for everything the
// OFTT components report about themselves. Replaces the three ad-hoc
// mechanisms that grew before it (the Logger free-text stream, the
// Simulation string-keyed counter map, and the Engine's private event
// deque) with a single stream the System Monitor, the failover span
// tracker, and the benches all consume.
//
// Events are timestamped in *sim* time, so a given seed produces a
// byte-identical event history — the property the §4 measurements and
// the deterministic-trace tests rely on.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace oftt::obs {

/// Every kind of thing an OFTT component can report. Grouped by the
/// subsystem that publishes it; the numeric value is stable (it is part
/// of the exported JSON) — append, never renumber.
enum class EventKind : std::uint32_t {
  // Engine: role management and failure handling.
  kRoleChange = 0,        // a = new Role, b = incarnation
  kFailureDetected = 1,   // opens a failover trace; a = evidence time (ns)
  kComponentFailed = 2,
  kComponentRestart = 3,  // a = restart count
  kDistress = 4,
  kWatchdogExpired = 5,
  kDualPrimary = 6,
  kStartupShutdown = 7,
  // FTIM: checkpointing and activation.
  kComponentActivated = 8,    // a = checkpoint seq restored (0 = cold)
  kComponentDeactivated = 9,
  kCheckpointTaken = 10,      // a = seq, b = bytes
  kCheckpointApplied = 11,    // a = seq
  kEngineRestart = 12,        // FTIM restarted a dead engine
  // Diverter: external routing.
  kDiverterReroute = 13,      // a = new primary node id
  // Simulation: node-level faults.
  kNodeDown = 14,             // a = NodeFailureKind
  kNodeUp = 15,               // a = boot count
  // Cluster: N-replica role management (quorum-gated promotion).
  kPromotionRequested = 16,   // a = proposed incarnation, b = votes needed
  kPromotionQuorum = 17,      // a = votes collected (incl self), b = votes needed
  kViewChange = 18,           // a = view version, b = view incarnation
  // Durable store: local journal recovery and resync after reboot.
  kJournalRecovered = 19,     // a = records replayed, b = recovered seq
  kResyncDelta = 20,          // a = deltas shipped, b = bytes shipped
  kResyncFull = 21,           // a = seq shipped, b = bytes shipped
  // Transport: reliable session layer.
  kSessionReset = 22,         // a = peer node id, b = new tx epoch
  // Replication: live policy switches (governor- or app-driven).
  kPolicySwitch = 23,         // a = new ReplicationMode, b = old
  // Swim failure detection (cluster mode with detection = swim).
  kSwimSuspect = 24,          // a = suspected node, b = accused incarnation
  kSwimRefute = 25,           // a = refuting node, b = new incarnation
  kSwimDeadConfirm = 26,      // a = confirmed node, b = incarnation
  // OPC data plane: batched change notifications and device health.
  kOpcBatch = 27,             // a = batch item count, b = deadband-suppressed
  kOpcBatchDrop = 28,         // a = client node, b = drops so far
  kOpcDeviceFault = 29,       // a = 1 faulted / 0 restored
  kMaxKind = 30,              // one past the last kind (mask width)
};

const char* event_kind_name(EventKind kind);

/// Value of a kRoleChange event's `a` field when the new role is
/// PRIMARY. Mirrors core::Role::kPrimary — obs cannot include core
/// headers (core sits above it), so the publish site in core/engine.cpp
/// static_asserts the two stay equal.
inline constexpr std::uint64_t kRoleChangePrimary = 2;

/// Bitmask over EventKind for subscriber filters.
using EventMask = std::uint64_t;

constexpr EventMask mask_of(EventKind kind) {
  return EventMask{1} << static_cast<std::uint32_t>(kind);
}
constexpr EventMask kAllEvents = ~EventMask{0};

template <typename... Kinds>
constexpr EventMask mask_of(EventKind first, Kinds... rest) {
  return (mask_of(first) | ... | mask_of(rest));
}

struct Event {
  sim::SimTime at = 0;     // stamped by the bus at publish time
  EventKind kind = EventKind::kRoleChange;
  int node = -1;           // originating node, -1 if not node-scoped
  std::string unit;        // logical execution unit ("" if none)
  std::string component;   // component/process scope ("" if none)
  std::string detail;      // human-readable description
  std::uint64_t a = 0;     // kind-specific numeric payload
  std::uint64_t b = 0;     // second kind-specific numeric payload
};

}  // namespace oftt::obs
