// Failover spans: scoped trace records stitching one failover incident
// — detection, negotiation, promotion, diverter replay — into a single
// causally-ordered timeline. The tracker is a pure EventBus subscriber:
// components only publish their local events; the tracker correlates
// them by unit and node into FailoverTrace records.
//
// Phase anatomy (all timestamps in sim time, so identical seeds yield
// byte-identical traces):
//
//   evidence_at   last proof of life from the failed side (or the
//                 handoff decision instant for operator switchover)
//   detected_at   an engine concluded failure (kFailureDetected)
//   quorum_at     a cluster candidate collected a promotion quorum
//                 (kPromotionQuorum; absent in pair mode, -1)
//   promoted_at   the surviving engine entered PRIMARY (kRoleChange)
//   active_at     the application component on the new primary went
//                 active, state restored (kComponentActivated)
//   rerouted_at   the Message Diverter repointed the unit's logical
//                 queue at the new primary (kDiverterReroute)
//
//   detection      = detected_at - evidence_at
//   ack_collection = quorum_at   - detected_at   (cluster mode only)
//   negotiation    = promoted_at - (quorum_at if set else detected_at)
//   promotion      = active_at   - promoted_at
//   replay         = rerouted_at - active_at
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_bus.h"

namespace oftt::obs {

enum class FailoverPhase { kDetection, kAckCollection, kNegotiation, kPromotion, kReplay };

const char* failover_phase_name(FailoverPhase phase);

struct FailoverTrace {
  std::uint64_t id = 0;
  std::string unit;
  int node = -1;  // node that ended up primary
  std::string reason;
  sim::SimTime evidence_at = -1;
  sim::SimTime detected_at = -1;
  sim::SimTime quorum_at = -1;   // cluster mode only; -1 in pair mode
  sim::SimTime promoted_at = -1;
  sim::SimTime active_at = -1;
  sim::SimTime rerouted_at = -1;
  std::uint64_t quorum_votes = 0;   // votes collected (incl candidate's own)
  std::uint64_t quorum_needed = 0;  // majority threshold for the view

  bool complete() const { return rerouted_at >= 0; }
  /// Phase duration, or -1 if either endpoint is missing.
  sim::SimTime phase(FailoverPhase p) const;
  /// evidence -> latest recorded milestone.
  sim::SimTime total() const;
};

class FailoverSpans {
 public:
  /// Subscribes to `bus`; lives as long as the bus (both are owned by
  /// the Telemetry facade, which guarantees the lifetimes).
  explicit FailoverSpans(EventBus& bus);
  ~FailoverSpans();

  FailoverSpans(const FailoverSpans&) = delete;
  FailoverSpans& operator=(const FailoverSpans&) = delete;

  /// All traces, in open order; incomplete traces have -1 milestones.
  const std::vector<FailoverTrace>& traces() const { return traces_; }

  /// Durations of one phase across traces (complete traces only when
  /// `complete_only`), in trace order.
  std::vector<sim::SimTime> durations(FailoverPhase phase, bool complete_only = true) const;

 private:
  void on_event(const Event& e);
  FailoverTrace* open_trace(const std::string& unit);

  EventBus* bus_;
  EventBus::SubscriberId sub_ = 0;
  std::vector<FailoverTrace> traces_;
  std::uint64_t next_id_ = 1;
};

}  // namespace oftt::obs
