// Telemetry: the per-simulation observability facade — one event bus,
// one metrics registry, one failover span tracker. The Simulation owns
// an instance and every component reaches it through
// `sim.telemetry()`; nothing else in the system keeps private
// instrumentation state.
//
// The facade also owns the Logger integration: it installs the sim
// clock into the process-wide Logger (so free-text log lines carry
// virtual timestamps) and can mirror published events into the log
// stream, making events and log lines one merged, ordered record.
#pragma once

#include <functional>
#include <memory>

#include "obs/event_bus.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace oftt::obs {

class Telemetry {
 public:
  using ClockFn = std::function<sim::SimTime()>;

  /// `clock` supplies the current sim time for event stamping and log
  /// timestamps; it is also installed as the Logger clock for the
  /// lifetime of this object.
  explicit Telemetry(ClockFn clock);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  EventBus& bus() { return bus_; }
  const EventBus& bus() const { return bus_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  FailoverSpans& spans() { return spans_; }
  const FailoverSpans& spans() const { return spans_; }

  /// Mirror every published event into the Logger at TRACE level (off
  /// by default; handy when correlating events with free-text logs).
  void set_mirror_events_to_log(bool on);

 private:
  ClockFn clock_;
  EventBus bus_;
  MetricsRegistry metrics_;
  FailoverSpans spans_;
  EventBus::SubscriberId log_mirror_sub_ = 0;
};

}  // namespace oftt::obs
