#include "obs/span.h"

#include <algorithm>

namespace oftt::obs {

const char* failover_phase_name(FailoverPhase phase) {
  switch (phase) {
    case FailoverPhase::kDetection: return "detection";
    case FailoverPhase::kAckCollection: return "ack_collection";
    case FailoverPhase::kNegotiation: return "negotiation";
    case FailoverPhase::kPromotion: return "promotion";
    case FailoverPhase::kReplay: return "replay";
  }
  return "?";
}

sim::SimTime FailoverTrace::phase(FailoverPhase p) const {
  auto gap = [](sim::SimTime from, sim::SimTime to) -> sim::SimTime {
    if (from < 0 || to < 0) return -1;
    return to >= from ? to - from : 0;
  };
  switch (p) {
    case FailoverPhase::kDetection: return gap(evidence_at, detected_at);
    case FailoverPhase::kAckCollection: return gap(detected_at, quorum_at);
    case FailoverPhase::kNegotiation:
      return gap(quorum_at >= 0 ? quorum_at : detected_at, promoted_at);
    case FailoverPhase::kPromotion: return gap(promoted_at, active_at);
    case FailoverPhase::kReplay: return gap(active_at, rerouted_at);
  }
  return -1;
}

sim::SimTime FailoverTrace::total() const {
  sim::SimTime last = std::max({detected_at, quorum_at, promoted_at, active_at, rerouted_at});
  if (evidence_at < 0 || last < 0) return -1;
  return last - evidence_at;
}

FailoverSpans::FailoverSpans(EventBus& bus) : bus_(&bus) {
  sub_ = bus_->subscribe(
      mask_of(EventKind::kFailureDetected, EventKind::kPromotionQuorum,
              EventKind::kRoleChange, EventKind::kComponentActivated,
              EventKind::kDiverterReroute),
      [this](const Event& e) { on_event(e); });
}

FailoverSpans::~FailoverSpans() { bus_->unsubscribe(sub_); }

FailoverTrace* FailoverSpans::open_trace(const std::string& unit) {
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if (it->unit == unit && !it->complete()) return &*it;
  }
  return nullptr;
}

void FailoverSpans::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kFailureDetected: {
      FailoverTrace t;
      t.id = next_id_++;
      t.unit = e.unit;
      t.reason = e.detail;
      t.evidence_at = static_cast<sim::SimTime>(e.a);
      t.detected_at = e.at;
      traces_.push_back(std::move(t));
      break;
    }
    case EventKind::kPromotionQuorum: {
      FailoverTrace* t = open_trace(e.unit);
      if (t != nullptr && t->quorum_at < 0 && t->promoted_at < 0) {
        t->quorum_at = e.at;
        t->quorum_votes = e.a;
        t->quorum_needed = e.b;
      }
      break;
    }
    case EventKind::kRoleChange: {
      if (e.a != kRoleChangePrimary) return;
      FailoverTrace* t = open_trace(e.unit);
      if (t != nullptr && t->promoted_at < 0) {
        t->promoted_at = e.at;
        t->node = e.node;
      }
      break;
    }
    case EventKind::kComponentActivated: {
      for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
        if (!it->complete() && it->promoted_at >= 0 && it->node == e.node &&
            it->active_at < 0) {
          it->active_at = e.at;
          break;
        }
      }
      break;
    }
    case EventKind::kDiverterReroute: {
      FailoverTrace* t = open_trace(e.unit);
      if (t != nullptr && t->promoted_at >= 0 &&
          static_cast<int>(e.a) == t->node && t->rerouted_at < 0) {
        t->rerouted_at = e.at;
      }
      break;
    }
    default:
      break;
  }
}

std::vector<sim::SimTime> FailoverSpans::durations(FailoverPhase phase,
                                                   bool complete_only) const {
  std::vector<sim::SimTime> out;
  for (const FailoverTrace& t : traces_) {
    if (complete_only && !t.complete()) continue;
    sim::SimTime d = t.phase(phase);
    if (d >= 0) out.push_back(d);
  }
  return out;
}

}  // namespace oftt::obs
