#include "obs/json.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "obs/telemetry.h"

namespace oftt::obs {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_.pop_back();
}

void JsonWriter::key(std::string_view k) {
  comma();
  append_escaped(k);
  out_ += ':';
  pending_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma();
  append_escaped(v);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::value(double v) {
  comma();
  char buf[32];
  // %g keeps the output compact; JSON has no inf/nan, so clamp to null.
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
  } else {
    out_ += "null";
  }
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  comma();
  out_ += "null";
}

void JsonWriter::append_escaped(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

namespace {

void write_trace(JsonWriter& w, const FailoverTrace& t) {
  w.begin_object();
  w.kv("id", t.id);
  w.kv("unit", t.unit);
  w.kv("node", t.node);
  w.kv("reason", t.reason);
  w.kv("complete", t.complete());
  auto stamp = [&w](std::string_view k, sim::SimTime v) {
    w.key(k);
    if (v < 0) {
      w.null();
    } else {
      w.value(static_cast<std::int64_t>(v));
    }
  };
  stamp("evidence_at_ns", t.evidence_at);
  stamp("detected_at_ns", t.detected_at);
  stamp("quorum_at_ns", t.quorum_at);
  stamp("promoted_at_ns", t.promoted_at);
  stamp("active_at_ns", t.active_at);
  stamp("rerouted_at_ns", t.rerouted_at);
  if (t.quorum_at >= 0) {
    w.kv("quorum_votes", t.quorum_votes);
    w.kv("quorum_needed", t.quorum_needed);
  }
  w.key("phases_ns");
  w.begin_object();
  for (FailoverPhase p :
       {FailoverPhase::kDetection, FailoverPhase::kAckCollection,
        FailoverPhase::kNegotiation, FailoverPhase::kPromotion, FailoverPhase::kReplay}) {
    stamp(failover_phase_name(p), t.phase(p));
  }
  w.end_object();
  w.end_object();
}

void write_event(JsonWriter& w, const Event& e) {
  w.begin_object();
  w.kv("at_ns", static_cast<std::int64_t>(e.at));
  w.kv("kind", event_kind_name(e.kind));
  w.kv("node", e.node);
  if (!e.unit.empty()) w.kv("unit", e.unit);
  if (!e.component.empty()) w.kv("component", e.component);
  if (!e.detail.empty()) w.kv("detail", e.detail);
  if (e.a != 0) w.kv("a", e.a);
  if (e.b != 0) w.kv("b", e.b);
  w.end_object();
}

}  // namespace

std::string export_json(const Telemetry& telemetry, bool include_history) {
  JsonWriter w;
  w.begin_object();

  w.key("counters");
  w.begin_object();
  for (const auto& [name, cell] : telemetry.metrics().counters()) {
    w.kv(name, cell->value.load(std::memory_order_relaxed));
  }
  w.end_object();

  w.key("gauges");
  w.begin_object();
  for (const auto& [name, cell] : telemetry.metrics().gauges()) {
    w.kv(name, cell->value.load(std::memory_order_relaxed));
  }
  w.end_object();

  w.key("histograms");
  w.begin_object();
  for (const auto& [name, cell] : telemetry.metrics().histograms()) {
    w.key(name);
    w.begin_object();
    w.kv("count", cell->count.load(std::memory_order_relaxed));
    w.kv("sum", cell->sum.load(std::memory_order_relaxed));
    if (cell->count.load(std::memory_order_relaxed) > 0) {
      w.kv("min", cell->min.load(std::memory_order_relaxed));
      w.kv("max", cell->max.load(std::memory_order_relaxed));
      w.kv("p50", cell->quantile(0.50));
      w.kv("p99", cell->quantile(0.99));
    }
    w.key("bounds");
    w.begin_array();
    for (std::int64_t b : cell->bounds) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (std::uint64_t c : cell->counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("traces");
  w.begin_array();
  for (const FailoverTrace& t : telemetry.spans().traces()) write_trace(w, t);
  w.end_array();

  w.key("events");
  w.begin_object();
  w.kv("published", telemetry.bus().published());
  w.kv("evicted", telemetry.bus().history().evicted());
  if (include_history) {
    w.key("history");
    w.begin_array();
    for (const Event& e : telemetry.bus().history().entries()) write_event(w, e);
    w.end_array();
  }
  w.end_object();

  w.end_object();
  return w.take();
}

std::int64_t percentile(std::vector<std::int64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[idx];
}

}  // namespace oftt::obs
