#include "obs/metrics.h"

#include <algorithm>

namespace oftt::obs {
namespace detail {

void HistogramCell::record(std::int64_t v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  std::size_t i = 0;
  while (i < bounds.size() && v > bounds[i]) ++i;
  ++counts[i];
}

std::int64_t HistogramCell::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, nearest-rank).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    std::uint64_t next = seen + counts[i];
    if (rank <= next) {
      std::int64_t lo = i == 0 ? min : bounds[i - 1];
      std::int64_t hi = i < bounds.size() ? bounds[i] : max;
      lo = std::clamp(lo, min, max);
      hi = std::clamp(hi, min, max);
      if (hi <= lo || counts[i] == 1) return hi;
      // Linear interpolation across the bucket's samples.
      double frac = static_cast<double>(rank - seen) / static_cast<double>(counts[i]);
      return lo + static_cast<std::int64_t>(static_cast<double>(hi - lo) * frac);
    }
    seen = next;
  }
  return max;
}

}  // namespace detail

Counter MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_cells_.emplace_back();
    it = counters_.emplace(std::string(name), &counter_cells_.back()).first;
  }
  return Counter(it->second);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_cells_.emplace_back();
    it = gauges_.emplace(std::string(name), &gauge_cells_.back()).first;
  }
  return Gauge(it->second);
}

Histogram MetricsRegistry::histogram(std::string_view name, std::vector<std::int64_t> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histogram_cells_.emplace_back();
    detail::HistogramCell& cell = histogram_cells_.back();
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    cell.bounds = std::move(bounds);
    cell.counts.assign(cell.bounds.size() + 1, 0);
    it = histograms_.emplace(std::string(name), &cell).first;
  }
  return Histogram(it->second);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value;
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value;
}

}  // namespace oftt::obs
