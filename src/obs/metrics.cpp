#include "obs/metrics.h"

#include <algorithm>

namespace oftt::obs {
namespace detail {

void HistogramCell::record(std::int64_t v) {
  count.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(v, std::memory_order_relaxed);
  std::int64_t seen = min.load(std::memory_order_relaxed);
  while (v < seen && !min.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max.load(std::memory_order_relaxed);
  while (v > seen && !max.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  std::size_t i = 0;
  while (i < bounds.size() && v > bounds[i]) ++i;
  counts[i].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t HistogramCell::quantile(double q) const {
  std::uint64_t n = count.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  std::int64_t lo_bound = min.load(std::memory_order_relaxed);
  std::int64_t hi_bound = max.load(std::memory_order_relaxed);
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, nearest-rank).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::uint64_t c = counts[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    std::uint64_t next = seen + c;
    if (rank <= next) {
      std::int64_t lo = i == 0 ? lo_bound : bounds[i - 1];
      std::int64_t hi = i < bounds.size() ? bounds[i] : hi_bound;
      lo = std::clamp(lo, lo_bound, hi_bound);
      hi = std::clamp(hi, lo_bound, hi_bound);
      if (hi <= lo || c == 1) return hi;
      // Linear interpolation across the bucket's samples.
      double frac = static_cast<double>(rank - seen) / static_cast<double>(c);
      return lo + static_cast<std::int64_t>(static_cast<double>(hi - lo) * frac);
    }
    seen = next;
  }
  return hi_bound;
}

}  // namespace detail

Counter MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_cells_.emplace_back();
    it = counters_.emplace(std::string(name), &counter_cells_.back()).first;
  }
  return Counter(it->second);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_cells_.emplace_back();
    it = gauges_.emplace(std::string(name), &gauge_cells_.back()).first;
  }
  return Gauge(it->second);
}

Histogram MetricsRegistry::histogram(std::string_view name, std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histogram_cells_.emplace_back();
    detail::HistogramCell& cell = histogram_cells_.back();
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    cell.bounds = std::move(bounds);
    // Atomics are not copyable, so the bucket array is sized once here
    // (vector move-assign) and never resized.
    cell.counts = std::vector<std::atomic<std::uint64_t>>(cell.bounds.size() + 1);
    it = histograms_.emplace(std::string(name), &cell).first;
  }
  return Histogram(it->second);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value.load(std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value.load(std::memory_order_relaxed);
}

}  // namespace oftt::obs
