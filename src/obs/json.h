// Minimal deterministic JSON writer plus the telemetry exporter the
// benches use to produce BENCH_*.json. Determinism is a contract:
// object keys are emitted in the order written (the exporter iterates
// sorted maps), numbers are integers (sim-time nanoseconds — no
// floating-point formatting), and strings are escaped byte-for-byte the
// same way every run. Two runs with the same seed therefore produce
// byte-identical output, which the deterministic-telemetry tests check.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oftt::obs {

class Telemetry;

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);
  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double v);
  void value(bool v);
  void null();

  /// Convenience: key + value.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  void append_escaped(std::string_view s);

  std::string out_;
  // True when the next element at this depth needs a ',' first.
  std::vector<bool> need_comma_{false};
  bool pending_key_ = false;
};

/// Full telemetry dump: counters, gauges, histograms, failover traces,
/// and the bounded event history. Deterministic for a given seed.
std::string export_json(const Telemetry& telemetry, bool include_history = true);

/// Exact nearest-rank percentile of a sample set (q in 0..1); 0 when
/// empty. Used by the benches for per-phase p50/p99.
std::int64_t percentile(std::vector<std::int64_t> samples, double q);

}  // namespace oftt::obs
