// EventBus: the typed telemetry channel every OFTT component publishes
// into. Subscribers register a kind-filter (bitmask) plus an optional
// liveness guard; a subscriber whose guard reports dead (e.g. its
// process was killed) is pruned lazily at the next publish, so
// unsubscribe-on-process-death needs no explicit bookkeeping at the
// death site.
//
// Publishing is allocation-light: the Event is stamped with the current
// sim time, dispatched to matching live subscribers, and appended to
// the bounded sim-wide history.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "obs/event.h"
#include "obs/event_log.h"

namespace oftt::obs {

class EventBus {
 public:
  using SubscriberId = std::uint64_t;
  using Handler = std::function<void(const Event&)>;
  using AliveFn = std::function<bool()>;
  using ClockFn = std::function<sim::SimTime()>;
  /// Parallel-engine hook: called with the stamped event before
  /// dispatch; returning true means the event was captured into a
  /// per-worker buffer and will be replayed later via dispatch_now()
  /// in deterministic (time, node-key) order. Returning false keeps
  /// the normal immediate dispatch.
  using DeferFn = std::function<bool(Event&)>;

  explicit EventBus(ClockFn clock) : clock_(std::move(clock)) {}

  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Register a handler for every published event whose kind is in
  /// `mask`. If `alive` is given, the subscription dies automatically
  /// once it returns false (checked before each delivery).
  SubscriberId subscribe(EventMask mask, Handler handler, AliveFn alive = nullptr);
  SubscriberId subscribe_all(Handler handler, AliveFn alive = nullptr) {
    return subscribe(kAllEvents, std::move(handler), std::move(alive));
  }
  void unsubscribe(SubscriberId id);

  /// Stamp `e.at` with the current sim time, deliver to matching
  /// subscribers, append to the history.
  void publish(Event e);

  /// Install (or clear, with nullptr) the parallel-engine defer hook.
  void set_defer(DeferFn defer) { defer_ = std::move(defer); }
  /// Deliver an already-stamped event (the barrier replay path): runs
  /// subscribers and appends to the history exactly like publish(), but
  /// never re-stamps and never re-defers.
  void dispatch_now(Event e);

  const EventLog& history() const { return history_; }
  void set_history_cap(std::size_t cap) { history_.set_cap(cap); }

  std::uint64_t published() const { return published_; }
  /// Live subscribers (prunes dead ones first).
  std::size_t subscriber_count();

 private:
  struct Subscription {
    SubscriberId id = 0;
    EventMask mask = 0;
    Handler handler;
    AliveFn alive;
    bool dead = false;
  };

  void prune();

  ClockFn clock_;
  DeferFn defer_;
  // Guards subs_/history_/published_ against a worker-side subscribe
  // racing the coordinator's barrier replay. Recursive because a
  // handler may publish (or subscribe) while a dispatch is in flight —
  // the pre-parallel bus already supported that reentrancy.
  std::recursive_mutex mu_;
  std::vector<Subscription> subs_;
  SubscriberId next_id_ = 1;
  EventLog history_;
  std::uint64_t published_ = 0;
  int dispatch_depth_ = 0;
  bool needs_prune_ = false;
};

}  // namespace oftt::obs
