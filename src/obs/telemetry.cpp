#include "obs/telemetry.h"

#include "common/logging.h"
#include "common/strings.h"

namespace oftt::obs {

Telemetry::Telemetry(ClockFn clock)
    : clock_(std::move(clock)), bus_([this] { return clock_(); }), spans_(bus_) {
  Logger::instance().set_clock([this] { return clock_(); });
}

Telemetry::~Telemetry() { Logger::instance().set_clock(nullptr); }

void Telemetry::set_mirror_events_to_log(bool on) {
  if (on && log_mirror_sub_ == 0) {
    log_mirror_sub_ = bus_.subscribe_all([](const Event& e) {
      OFTT_LOG_TRACE("obs/event", event_kind_name(e.kind), " node=", e.node, " unit='",
                     e.unit, "' component='", e.component, "' a=", e.a, " b=", e.b,
                     e.detail.empty() ? "" : " — ", e.detail);
    });
  } else if (!on && log_mirror_sub_ != 0) {
    bus_.unsubscribe(log_mirror_sub_);
    log_mirror_sub_ = 0;
  }
}

}  // namespace oftt::obs
