// MetricsRegistry: named counters, gauges and fixed-bucket histograms
// addressed by cheap handles. A handle is resolved from the metric name
// exactly once (at component construction), after which the hot path is
// a pointer-chase increment — no std::map<std::string, ...> lookup and
// no string concatenation per datagram, which is what the old
// Simulation::counter(std::string) interface cost on every network
// send/deliver.
//
// Cells live in deques so handles stay valid as the registry grows.
// Handles are trivially copyable and default-construct to an inert
// state (increments are dropped), so components can hold them by value.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace oftt::obs {

namespace detail {
// Cells are relaxed atomics: under the parallel engine, workers on
// different nodes increment shared cells (node.deliver_*, net.lost)
// concurrently. Counter/histogram reads are sums, so every observable
// value stays a deterministic function of the event history no matter
// how increments interleave; sequential runs pay one uncontended
// lock-free RMW, which is within noise of the old plain increment.
struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};
struct GaugeCell {
  std::atomic<std::int64_t> value{0};
};
struct HistogramCell {
  std::vector<std::int64_t> bounds;  // upper bounds, ascending; implicit +inf last
  std::vector<std::atomic<std::uint64_t>> counts;  // bounds.size() + 1 buckets
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  // Sentinels until the first sample; readers gate on count > 0.
  std::atomic<std::int64_t> min{INT64_MAX};
  std::atomic<std::int64_t> max{INT64_MIN};

  void record(std::int64_t v);
  /// Approximate quantile (0..1): linear interpolation inside the
  /// bucket holding the q-th sample; exact at bucket edges.
  std::int64_t quantile(double q) const;
};
}  // namespace detail

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1) {
    if (cell_ != nullptr) cell_->value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    if (cell_ != nullptr) cell_->value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void record(std::int64_t v) {
    if (cell_ != nullptr) cell_->record(v);
  }
  std::uint64_t count() const {
    return cell_ != nullptr ? cell_->count.load(std::memory_order_relaxed) : 0;
  }
  std::int64_t sum() const {
    return cell_ != nullptr ? cell_->sum.load(std::memory_order_relaxed) : 0;
  }
  std::int64_t quantile(double q) const {
    return cell_ != nullptr ? cell_->quantile(q) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve-or-create. Call once per component, keep the handle.
  /// Resolution is mutex-guarded (parallel-engine workers construct
  /// components — and thus resolve handles — concurrently at node
  /// boots); the handles themselves are lock-free.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `bounds` are ascending upper bucket bounds; an implicit +inf
  /// bucket is appended. Re-resolving an existing histogram ignores the
  /// bounds argument.
  Histogram histogram(std::string_view name, std::vector<std::int64_t> bounds);

  // Slow by-name reads for tests/benches (not hot paths).
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;

  // Deterministically ordered snapshots for the JSON exporter.
  const std::map<std::string, detail::CounterCell*, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, detail::GaugeCell*, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, detail::HistogramCell*, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  mutable std::mutex mu_;
  std::deque<detail::CounterCell> counter_cells_;
  std::deque<detail::GaugeCell> gauge_cells_;
  std::deque<detail::HistogramCell> histogram_cells_;
  std::map<std::string, detail::CounterCell*, std::less<>> counters_;
  std::map<std::string, detail::GaugeCell*, std::less<>> gauges_;
  std::map<std::string, detail::HistogramCell*, std::less<>> histograms_;
};

}  // namespace oftt::obs
