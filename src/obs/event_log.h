// A bounded, eviction-ordered event history. Used twice: the EventBus
// keeps one as the sim-wide history, and each Engine keeps one as its
// operator-facing incident log (the paper's "status reporting" record an
// operator pulls after an incident). The bound is a hard cap — the
// oldest entry is evicted first, and the number of evictions is counted
// so a reader can tell the log wrapped.
#pragma once

#include <cstdint>
#include <deque>

#include "obs/event.h"

namespace oftt::obs {

class EventLog {
 public:
  explicit EventLog(std::size_t cap = 256) : cap_(cap == 0 ? 1 : cap) {}

  void append(Event e) {
    entries_.push_back(std::move(e));
    while (entries_.size() > cap_) {
      entries_.pop_front();
      ++evicted_;
    }
  }

  const std::deque<Event>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  std::size_t cap() const { return cap_; }
  void set_cap(std::size_t cap) {
    cap_ = cap == 0 ? 1 : cap;
    while (entries_.size() > cap_) {
      entries_.pop_front();
      ++evicted_;
    }
  }

  /// Entries dropped off the front since construction.
  std::uint64_t evicted() const { return evicted_; }

 private:
  std::size_t cap_;
  std::deque<Event> entries_;
  std::uint64_t evicted_ = 0;
};

}  // namespace oftt::obs
