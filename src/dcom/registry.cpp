#include "dcom/registry.h"

namespace oftt::dcom {

InterfaceRegistry& InterfaceRegistry::instance() {
  static InterfaceRegistry reg;
  return reg;
}

void InterfaceRegistry::register_interface(const Iid& iid, StubFactory stub, ProxyFactory proxy) {
  stubs_[iid] = std::move(stub);
  proxies_[iid] = std::move(proxy);
}

const StubFactory* InterfaceRegistry::find_stub(const Iid& iid) const {
  auto it = stubs_.find(iid);
  return it == stubs_.end() ? nullptr : &it->second;
}

const ProxyFactory* InterfaceRegistry::find_proxy(const Iid& iid) const {
  auto it = proxies_.find(iid);
  return it == proxies_.end() ? nullptr : &it->second;
}

}  // namespace oftt::dcom
