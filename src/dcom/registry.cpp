#include "dcom/registry.h"

namespace oftt::dcom {

InterfaceRegistry& InterfaceRegistry::instance() {
  static InterfaceRegistry reg;
  return reg;
}

void InterfaceRegistry::register_interface(const Iid& iid, StubFactory stub, ProxyFactory proxy) {
  std::lock_guard<std::mutex> lock(mu_);
  // emplace, not operator[]: a concurrent (or repeated) registration of
  // the same interface must not replace the factories another thread
  // may already hold pointers to.
  stubs_.emplace(iid, std::move(stub));
  proxies_.emplace(iid, std::move(proxy));
}

bool InterfaceRegistry::registered(const Iid& iid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stubs_.count(iid) != 0;
}

const StubFactory* InterfaceRegistry::find_stub(const Iid& iid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stubs_.find(iid);
  return it == stubs_.end() ? nullptr : &it->second;
}

const ProxyFactory* InterfaceRegistry::find_proxy(const Iid& iid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = proxies_.find(iid);
  return it == proxies_.end() ? nullptr : &it->second;
}

}  // namespace oftt::dcom
