// OrpcClient: the importing side — issues REQUESTs with timeouts,
// matches RESPONSEs, runs the DCOM pinger for every proxy this process
// holds, and performs remote activation through the peer node's SCM.
//
// Calls are asynchronous (completion handler), because the whole world
// is event-driven; DCOM's synchronous-looking failure modes (a call
// that never returns until a long RPC timeout — §3.3) appear here as
// RPC_E_TIMEOUT completions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "com/unknown.h"
#include "dcom/orpc.h"
#include "dcom/registry.h"
#include "obs/metrics.h"
#include "sim/timer.h"

namespace oftt::dcom {

struct OrpcClientConfig {
  sim::SimTime call_timeout = sim::seconds(1);
  sim::SimTime ping_period = sim::seconds(2);
};

class ProxyBase;

class OrpcClient {
 public:
  /// hr + marshaled out-values (valid only when SUCCEEDED(hr)).
  using ResultHandler = std::function<void(HRESULT, BinaryReader&)>;
  using ActivateHandler = std::function<void(HRESULT, const ObjectRef&)>;

  explicit OrpcClient(sim::Process& process);

  static OrpcClient& of(sim::Process& process) {
    return process.attachment<OrpcClient>(process);
  }

  sim::Process& process() { return *process_; }
  OrpcClientConfig& config() { return config_; }

  /// Invoke method on a remote object. `handler` may be null
  /// (fire-and-forget: no response matching, no timeout reporting).
  void invoke(const ObjectRef& ref, std::uint16_t method, Buffer args, ResultHandler handler,
              sim::SimTime timeout = -1);

  /// Remote CoCreateInstance: ask `node`'s SCM to activate clsid and
  /// hand back an ObjectRef for iid.
  void activate(int node, const Clsid& clsid, const Iid& iid, ActivateHandler handler,
                sim::SimTime timeout = -1);

  /// Build a typed proxy from a marshaled reference (registered
  /// ProxyFactory). Null if no proxy/stub is installed for ref.iid.
  com::ComPtr<com::IUnknown> unmarshal(const ObjectRef& ref);

  ~OrpcClient();

  /// Pinger bookkeeping (ProxyBase calls these).
  void add_ping_ref(const ObjectRef& ref);
  void release_ping_ref(const ObjectRef& ref);

  // Proxy lifetime tracking: process teardown destroys attachments in
  // unspecified order, so the client orphans surviving proxies rather
  // than letting them dangle into it.
  void attach_proxy(ProxyBase* proxy) { live_proxies_.insert(proxy); }
  void detach_proxy(ProxyBase* proxy) { live_proxies_.erase(proxy); }

  std::size_t outstanding_calls() const { return calls_.size(); }

 private:
  void on_datagram(const sim::Datagram& d);
  void ping_sweep();
  void fail_call(std::uint64_t call_id, HRESULT hr);
  bool send_to(const ObjectRef& ref, Buffer payload);

  struct PendingCall {
    ResultHandler handler;
    sim::EventHandle timeout;
  };
  struct PendingActivation {
    ActivateHandler handler;
    sim::EventHandle timeout;
  };

  sim::Process* process_;
  std::string reply_port_;
  OrpcClientConfig config_;
  std::uint64_t next_call_id_ = 1;
  std::map<std::uint64_t, PendingCall> calls_;
  std::map<std::uint64_t, PendingActivation> activations_;
  // (node, port) -> oid -> refcount held by live proxies.
  std::map<std::pair<int, std::string>, std::map<std::uint64_t, int>> ping_refs_;
  std::set<ProxyBase*> live_proxies_;
  // Pre-resolved metric handles for the call completion paths.
  obs::Counter ctr_activate_timeout_;
  obs::Counter ctr_bad_packet_;
  obs::Counter ctr_late_response_;
  obs::Counter ctr_call_timeout_;
  sim::PeriodicTimer ping_timer_;
};

/// Base class for hand-written typed proxies. Holds the client, the
/// reference, and keeps the remote object alive via the pinger. A proxy
/// that outlives its client (process teardown) is "orphaned": calls on
/// it complete with RPC_E_DISCONNECTED.
class ProxyBase {
 public:
  const ObjectRef& ref() const { return ref_; }

 protected:
  ProxyBase(OrpcClient& client, ObjectRef ref) : client_(&client), ref_(std::move(ref)) {
    client_->add_ping_ref(ref_);
    client_->attach_proxy(this);
  }
  virtual ~ProxyBase() {
    if (client_ != nullptr) {
      client_->release_ping_ref(ref_);
      client_->detach_proxy(this);
    }
  }

  void invoke(std::uint16_t method, Buffer args, OrpcClient::ResultHandler handler,
              sim::SimTime timeout = -1) {
    if (client_ == nullptr) {
      if (handler) {
        Buffer empty;
        BinaryReader r(empty);
        handler(RPC_E_DISCONNECTED, r);
      }
      return;
    }
    client_->invoke(ref_, method, std::move(args), std::move(handler), timeout);
  }

  OrpcClient& client() { return *client_; }

 private:
  friend class OrpcClient;
  OrpcClient* client_;
  ObjectRef ref_;
};

}  // namespace oftt::dcom
