// ORPC-lite: the wire protocol of the simulated DCOM layer.
//
// Real DCOM frames MSRPC PDUs carrying an OBJREF; here an ObjectRef
// names (node, server port, object id, interface) and four packet kinds
// flow over the datagram network: REQUEST, RESPONSE, PING, ACTIVATE(+
// its RESPONSE reuses the same response frame). Reliability is the
// caller's problem — precisely the deficiency the paper calls out in
// §3.3 ("its RPC service does not behave well in the presence of
// failures") and which the OFTT core has to compensate for.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/guid.h"
#include "common/hresult.h"

namespace oftt::dcom {

/// Marshaled object reference (OBJREF analogue).
struct ObjectRef {
  int node = -1;
  std::string port;  // ORPC endpoint of the owning process
  std::uint64_t oid = 0;
  Iid iid;

  bool valid() const { return node >= 0 && oid != 0; }
  bool operator==(const ObjectRef&) const = default;

  void marshal(BinaryWriter& w) const {
    w.i32(node);
    w.str(port);
    w.u64(oid);
    w.guid(iid);
  }
  static ObjectRef unmarshal(BinaryReader& r) {
    ObjectRef ref;
    ref.node = r.i32();
    ref.port = r.str();
    ref.oid = r.u64();
    ref.iid = r.guid();
    return ref;
  }

  std::string to_string() const;
};

enum class PacketKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kPing = 3,
  kActivate = 4,
};

struct RequestPacket {
  std::uint64_t call_id = 0;
  std::uint64_t oid = 0;
  Iid iid;
  std::uint16_t method = 0;
  Buffer args;
  int reply_node = -1;
  std::string reply_port;
};

struct ResponsePacket {
  std::uint64_t call_id = 0;
  HRESULT hr = S_OK;
  Buffer result;
};

struct PingPacket {
  std::vector<std::uint64_t> oids;
};

struct ActivatePacket {
  std::uint64_t call_id = 0;
  Clsid clsid;
  Iid iid;
  int reply_node = -1;
  std::string reply_port;
};

Buffer encode_request(const RequestPacket& p);
Buffer encode_response(const ResponsePacket& p);
Buffer encode_ping(const PingPacket& p);
Buffer encode_activate(const ActivatePacket& p);

/// Peek the packet kind (first byte); returns 0 on empty payload.
std::uint8_t packet_kind(const Buffer& payload);

bool decode_request(const Buffer& payload, RequestPacket& out);
bool decode_response(const Buffer& payload, ResponsePacket& out);
bool decode_ping(const Buffer& payload, PingPacket& out);
bool decode_activate(const Buffer& payload, ActivatePacket& out);

}  // namespace oftt::dcom
