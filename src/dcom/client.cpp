#include "dcom/client.h"

#include "common/logging.h"
#include "common/strings.h"
#include "dcom/scm.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::dcom {

OrpcClient::OrpcClient(sim::Process& process)
    : process_(&process),
      reply_port_(cat("orpcc.", process.name())),
      ctr_activate_timeout_(
          process.sim().telemetry().metrics().counter("orpc.activate_timeout")),
      ctr_bad_packet_(process.sim().telemetry().metrics().counter("orpc.bad_packet")),
      ctr_late_response_(process.sim().telemetry().metrics().counter("orpc.late_response")),
      ctr_call_timeout_(process.sim().telemetry().metrics().counter("orpc.call_timeout")),
      ping_timer_(process.main_strand()) {
  process_->bind(reply_port_, [this](const sim::Datagram& d) { on_datagram(d); });
  ping_timer_.start(config_.ping_period, [this] { ping_sweep(); });
}

OrpcClient::~OrpcClient() {
  for (ProxyBase* proxy : live_proxies_) proxy->client_ = nullptr;
}

bool OrpcClient::send_to(const ObjectRef& ref, Buffer payload) {
  int net = sim::pick_network(process_->sim(), process_->node().id(), ref.node);
  if (net < 0) return false;
  return process_->send(net, ref.node, ref.port, std::move(payload), reply_port_);
}

void OrpcClient::invoke(const ObjectRef& ref, std::uint16_t method, Buffer args,
                        ResultHandler handler, sim::SimTime timeout) {
  if (!ref.valid()) {
    if (handler) {
      Buffer empty;
      BinaryReader r(empty);
      handler(E_INVALIDARG, r);
    }
    return;
  }
  RequestPacket req;
  req.call_id = next_call_id_++;
  req.oid = ref.oid;
  req.iid = ref.iid;
  req.method = method;
  req.args = std::move(args);
  if (handler) {
    req.reply_node = process_->node().id();
    req.reply_port = reply_port_;
  }
  bool sent = send_to(ref, encode_request(req));
  if (!handler) return;

  if (!sent) {
    // Local refusal (no common network): fail fast like a dead wire.
    Buffer empty;
    BinaryReader r(empty);
    handler(RPC_E_DISCONNECTED, r);
    return;
  }
  sim::SimTime to = timeout >= 0 ? timeout : config_.call_timeout;
  std::uint64_t id = req.call_id;
  PendingCall pending;
  pending.handler = std::move(handler);
  pending.timeout =
      process_->main_strand().schedule_after(to, [this, id] { fail_call(id, RPC_E_TIMEOUT); });
  calls_.emplace(id, std::move(pending));
}

void OrpcClient::activate(int node, const Clsid& clsid, const Iid& iid, ActivateHandler handler,
                          sim::SimTime timeout) {
  ActivatePacket act;
  act.call_id = next_call_id_++;
  act.clsid = clsid;
  act.iid = iid;
  act.reply_node = process_->node().id();
  act.reply_port = reply_port_;

  ObjectRef scm_ref;
  scm_ref.node = node;
  scm_ref.port = kScmPort;
  scm_ref.oid = 1;  // unused for activation routing
  bool sent = send_to(scm_ref, encode_activate(act));
  if (!handler) return;
  if (!sent) {
    handler(RPC_E_DISCONNECTED, ObjectRef{});
    return;
  }
  sim::SimTime to = timeout >= 0 ? timeout : config_.call_timeout;
  std::uint64_t id = act.call_id;
  PendingActivation pending;
  pending.handler = std::move(handler);
  pending.timeout = process_->main_strand().schedule_after(to, [this, id] {
    auto it = activations_.find(id);
    if (it == activations_.end()) return;
    auto h = std::move(it->second.handler);
    activations_.erase(it);
    ctr_activate_timeout_.inc();
    h(RPC_E_TIMEOUT, ObjectRef{});
  });
  activations_.emplace(id, std::move(pending));
}

com::ComPtr<com::IUnknown> OrpcClient::unmarshal(const ObjectRef& ref) {
  if (!ref.valid()) return {};
  const ProxyFactory* factory = InterfaceRegistry::instance().find_proxy(ref.iid);
  if (factory == nullptr) {
    OFTT_LOG_ERROR("dcom", process_->name(), ": no proxy registered for ", ref.iid.to_string());
    return {};
  }
  return (*factory)(*this, ref);
}

void OrpcClient::on_datagram(const sim::Datagram& d) {
  ResponsePacket resp;
  if (!decode_response(d.payload, resp)) {
    ctr_bad_packet_.inc();
    return;
  }
  if (auto it = calls_.find(resp.call_id); it != calls_.end()) {
    auto pending = std::move(it->second);
    process_->sim().cancel(pending.timeout);
    calls_.erase(it);
    BinaryReader r(resp.result);
    pending.handler(resp.hr, r);
    return;
  }
  if (auto it = activations_.find(resp.call_id); it != activations_.end()) {
    auto pending = std::move(it->second);
    process_->sim().cancel(pending.timeout);
    activations_.erase(it);
    ObjectRef ref;
    if (SUCCEEDED(resp.hr)) {
      BinaryReader r(resp.result);
      ref = ObjectRef::unmarshal(r);
      if (r.failed()) resp.hr = E_UNEXPECTED;
    }
    pending.handler(resp.hr, ref);
    return;
  }
  // Late response after timeout: drop.
  ctr_late_response_.inc();
}

void OrpcClient::fail_call(std::uint64_t call_id, HRESULT hr) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  auto handler = std::move(it->second.handler);
  calls_.erase(it);
  ctr_call_timeout_.inc();
  Buffer empty;
  BinaryReader r(empty);
  handler(hr, r);
}

void OrpcClient::add_ping_ref(const ObjectRef& ref) {
  ping_refs_[{ref.node, ref.port}][ref.oid]++;
}

void OrpcClient::release_ping_ref(const ObjectRef& ref) {
  auto it = ping_refs_.find({ref.node, ref.port});
  if (it == ping_refs_.end()) return;
  auto oid_it = it->second.find(ref.oid);
  if (oid_it == it->second.end()) return;
  if (--oid_it->second <= 0) it->second.erase(oid_it);
  if (it->second.empty()) ping_refs_.erase(it);
}

void OrpcClient::ping_sweep() {
  for (const auto& [dest, oids] : ping_refs_) {
    PingPacket ping;
    ping.oids.reserve(oids.size());
    for (const auto& [oid, _] : oids) ping.oids.push_back(oid);
    ObjectRef ref;
    ref.node = dest.first;
    ref.port = dest.second;
    ref.oid = 1;
    send_to(ref, encode_ping(ping));
  }
}

}  // namespace oftt::dcom
