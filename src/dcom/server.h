// OrpcServer: the exporting side of the DCOM simulation. One per
// process (attachment); owns the export table, dispatches REQUESTs to
// stubs, answers ACTIVATE, and garbage-collects exports whose clients
// stopped pinging (the DCOM pinger).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "com/runtime.h"
#include "dcom/orpc.h"
#include "dcom/registry.h"
#include "obs/metrics.h"
#include "sim/timer.h"

namespace oftt::dcom {

struct OrpcConfig {
  sim::SimTime ping_period = sim::seconds(2);
  int ping_grace_periods = 3;  // missed pings before an export is reclaimed
};

class OrpcServer {
 public:
  explicit OrpcServer(sim::Process& process);

  static OrpcServer& of(sim::Process& process) {
    return process.attachment<OrpcServer>(process);
  }

  sim::Process& process() { return *process_; }
  const std::string& port() const { return port_; }

  /// Export a live object under `iid` using the registered stub factory.
  /// Returns an invalid ref if no proxy/stub is installed for the iid —
  /// the paper's "forgot to install the proxy/stub DLL" failure.
  ObjectRef export_object(com::ComPtr<com::IUnknown> object, const Iid& iid,
                          bool pinned = false);

  /// Export with an explicit dispatcher (used by tests and generated code).
  ObjectRef export_with_dispatch(com::ComPtr<com::IUnknown> keepalive, const Iid& iid,
                                 StubDispatch dispatch, bool pinned = false);

  void revoke(std::uint64_t oid);
  bool exported(std::uint64_t oid) const { return exports_.count(oid) != 0; }
  std::size_t export_count() const { return exports_.size(); }

  /// Make this process's coclass remotely activatable (registers into
  /// the simulation-wide directory; see scm.h).
  void register_server_class(const Clsid& clsid, const std::string& name = "");

 private:
  void on_datagram(const sim::Datagram& d);
  void handle_request(const sim::Datagram& d);
  void handle_activate(const sim::Datagram& d);
  void handle_ping(const PingPacket& ping);
  void gc_sweep();
  void send_response(int node, const std::string& reply_port, ResponsePacket resp);

  struct Export {
    com::ComPtr<com::IUnknown> keepalive;
    Iid iid;
    StubDispatch dispatch;
    sim::SimTime last_ping = 0;
    bool pinned = false;
  };

  sim::Process* process_;
  std::string port_;
  std::uint64_t next_oid_ = 1;
  std::map<std::uint64_t, Export> exports_;
  OrpcConfig config_;
  // Pre-resolved metric handles (dispatch + GC paths).
  obs::Counter ctr_bad_packet_;
  obs::Counter ctr_gc_reclaimed_;
  sim::PeriodicTimer gc_timer_;
};

}  // namespace oftt::dcom
