#include "dcom/scm.h"

#include "common/logging.h"
#include "dcom/orpc.h"
#include "dcom/server.h"

namespace oftt::dcom {
namespace {

/// The SCM service object living inside the "scm" process.
class ScmService {
 public:
  explicit ScmService(sim::Process& process) : process_(&process) {
    process_->bind(kScmPort, [this](const sim::Datagram& d) { on_datagram(d); });
  }

 private:
  void on_datagram(const sim::Datagram& d) {
    ActivatePacket act;
    if (!decode_activate(d.payload, act)) return;
    sim::Node& node = process_->node();
    const Directory::Entry* entry = Directory::of(node.sim()).find(node.id(), act.clsid);
    if (entry == nullptr) {
      respond(act, REGDB_E_CLASSNOTREG);
      return;
    }
    auto server = node.find_process(entry->process);
    if (!server || !server->alive()) {
      // Launch the local server, as CoCreateInstance would.
      server = node.restart_process(entry->process);
      if (!server || !server->alive()) {
        respond(act, CO_E_SERVER_EXEC_FAILURE);
        return;
      }
      OFTT_LOG_INFO("dcom/scm", node.name(), ": launched local server '", entry->process,
                    "' for activation");
    }
    // Forward the activation to the server's ORPC endpoint; it responds
    // to the original requester directly.
    int net = sim::pick_network(node.sim(), node.id(), node.id());
    if (net < 0) return;
    process_->send(net, node.id(), entry->orpc_port, encode_activate(act), kScmPort);
  }

  void respond(const ActivatePacket& act, HRESULT hr) {
    if (act.reply_node < 0) return;
    ResponsePacket resp;
    resp.call_id = act.call_id;
    resp.hr = hr;
    int net = sim::pick_network(process_->sim(), process_->node().id(), act.reply_node);
    if (net < 0) return;
    process_->send(net, act.reply_node, act.reply_port, encode_response(resp), kScmPort);
  }

  sim::Process* process_;
};

}  // namespace

std::shared_ptr<sim::Process> install_scm(sim::Node& node) {
  return node.start_process("scm", [](sim::Process& proc) {
    proc.add_component(std::make_shared<ScmService>(proc));
  });
}

}  // namespace oftt::dcom
