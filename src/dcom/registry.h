// Proxy/stub registration — the simulated equivalent of building and
// installing the MIDL-generated proxy/stub DLLs the paper complains
// about (§3.3: "generation and installation of the DCOM server object
// proxy and stub increase extra development and configuration
// management effort"). An interface that never registered here cannot
// be marshaled: activation and interface-marshaling fail, which is the
// authentic misconfiguration failure mode.
#pragma once

#include <functional>
#include <map>
#include <mutex>

#include "com/unknown.h"
#include "common/bytes.h"
#include "dcom/orpc.h"

namespace oftt::dcom {

class OrpcClient;
class OrpcServer;

/// Server side: turns a live object into a method dispatcher. The
/// OrpcServer is passed so stubs can export interface out-params.
using StubDispatch =
    std::function<HRESULT(std::uint16_t method, BinaryReader& args, BinaryWriter& result)>;
using StubFactory =
    std::function<StubDispatch(com::ComPtr<com::IUnknown> object, OrpcServer& server)>;

/// Client side: turns an ObjectRef into a typed proxy (as IUnknown).
using ProxyFactory =
    std::function<com::ComPtr<com::IUnknown>(OrpcClient& client, const ObjectRef& ref)>;

/// Thread-safe: proxy/stub "DLL installation" happens lazily from the
/// first activation on whichever thread gets there first, and parallel
/// seed-sweep workers can race it. Registration never overwrites an
/// existing entry (first one wins), so factory pointers handed out by
/// find_* stay valid and immutable for the process lifetime (std::map
/// nodes are stable; entries are never erased).
class InterfaceRegistry {
 public:
  static InterfaceRegistry& instance();

  void register_interface(const Iid& iid, StubFactory stub, ProxyFactory proxy);
  bool registered(const Iid& iid) const;

  const StubFactory* find_stub(const Iid& iid) const;
  const ProxyFactory* find_proxy(const Iid& iid) const;

 private:
  mutable std::mutex mu_;
  std::map<Iid, StubFactory> stubs_;
  std::map<Iid, ProxyFactory> proxies_;
};

/// Static registrar: place
///   OFTT_REGISTER_PROXY_STUB(IFoo, MakeFooStub, MakeFooProxy);
/// at namespace scope in the interface's proxy/stub translation unit.
struct ProxyStubRegistrar {
  ProxyStubRegistrar(const Iid& iid, StubFactory stub, ProxyFactory proxy) {
    InterfaceRegistry::instance().register_interface(iid, std::move(stub), std::move(proxy));
  }
};

#define OFTT_REGISTER_PROXY_STUB(Interface, StubFn, ProxyFn)             \
  static const ::oftt::dcom::ProxyStubRegistrar oftt_ps_reg_##Interface( \
      Interface::iid(), StubFn, ProxyFn)

}  // namespace oftt::dcom
