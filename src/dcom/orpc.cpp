#include "dcom/orpc.h"

#include "common/strings.h"

namespace oftt::dcom {

std::string ObjectRef::to_string() const {
  return cat("objref(node=", node, ", port=", port, ", oid=", oid, ")");
}

Buffer encode_request(const RequestPacket& p) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PacketKind::kRequest));
  w.u64(p.call_id);
  w.u64(p.oid);
  w.guid(p.iid);
  w.u16(p.method);
  w.blob(p.args);
  w.i32(p.reply_node);
  w.str(p.reply_port);
  return std::move(w).take();
}

Buffer encode_response(const ResponsePacket& p) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PacketKind::kResponse));
  w.u64(p.call_id);
  w.i32(p.hr);
  w.blob(p.result);
  return std::move(w).take();
}

Buffer encode_ping(const PingPacket& p) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PacketKind::kPing));
  w.u32(static_cast<std::uint32_t>(p.oids.size()));
  for (auto oid : p.oids) w.u64(oid);
  return std::move(w).take();
}

Buffer encode_activate(const ActivatePacket& p) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(PacketKind::kActivate));
  w.u64(p.call_id);
  w.guid(p.clsid);
  w.guid(p.iid);
  w.i32(p.reply_node);
  w.str(p.reply_port);
  return std::move(w).take();
}

std::uint8_t packet_kind(const Buffer& payload) { return payload.empty() ? 0 : payload[0]; }

bool decode_request(const Buffer& payload, RequestPacket& out) {
  BinaryReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(PacketKind::kRequest)) return false;
  out.call_id = r.u64();
  out.oid = r.u64();
  out.iid = r.guid();
  out.method = r.u16();
  out.args = r.blob();
  out.reply_node = r.i32();
  out.reply_port = r.str();
  return !r.failed();
}

bool decode_response(const Buffer& payload, ResponsePacket& out) {
  BinaryReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(PacketKind::kResponse)) return false;
  out.call_id = r.u64();
  out.hr = r.i32();
  out.result = r.blob();
  return !r.failed();
}

bool decode_ping(const Buffer& payload, PingPacket& out) {
  BinaryReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(PacketKind::kPing)) return false;
  std::uint32_t n = r.u32();
  out.oids.clear();
  out.oids.reserve(n);
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) out.oids.push_back(r.u64());
  return !r.failed();
}

bool decode_activate(const Buffer& payload, ActivatePacket& out) {
  BinaryReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(PacketKind::kActivate)) return false;
  out.call_id = r.u64();
  out.clsid = r.guid();
  out.iid = r.guid();
  out.reply_node = r.i32();
  out.reply_port = r.str();
  return !r.failed();
}

}  // namespace oftt::dcom
