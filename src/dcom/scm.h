// Remote activation: the Directory (the simulation's HKEY_CLASSES_ROOT,
// replicated to every PC like a configured NT registry) plus the SCM
// service process on each node, which receives ACTIVATE packets,
// launches the local server process if it is not running, and forwards
// the activation to that process's ORPC endpoint.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/guid.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::dcom {

/// Well-known SCM datagram port on every node.
inline constexpr const char* kScmPort = "scm";

class Directory {
 public:
  struct Entry {
    std::string process;    // local-server process name (for launch)
    std::string orpc_port;  // its ORPC endpoint
    std::string name;       // debug name
  };

  static Directory& of(sim::Simulation& sim) { return sim.attachment<Directory>(); }

  void register_class(int node, const Clsid& clsid, Entry entry) {
    std::lock_guard<std::mutex> lock(mu_);
    table_[{node, clsid}] = std::move(entry);
  }
  const Entry* find(int node, const Clsid& clsid) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_.find({node, clsid});
    return it == table_.end() ? nullptr : &it->second;
  }

 private:
  // Boot scripts register classes as nodes (re)boot — on worker threads
  // under the parallel engine. std::map node pointers are stable, so a
  // returned Entry* stays valid; the lock only guards the tree shape.
  mutable std::mutex mu_;
  std::map<std::pair<int, Clsid>, Entry> table_;
};

/// Start the SCM service process on a node (idempotent per boot; call it
/// from the node's boot script). Returns the process.
std::shared_ptr<sim::Process> install_scm(sim::Node& node);

}  // namespace oftt::dcom
