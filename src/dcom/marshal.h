// Interface-pointer marshaling helpers used by hand-written proxy/stub
// code: an interface argument or result crosses the wire as an
// ObjectRef (exported on the sending side, proxied on the receiving
// side). Works symmetrically — a client marshaling a callback sink
// exports it on its own OrpcServer, exactly like DCOM.
#pragma once

#include "dcom/client.h"
#include "dcom/server.h"

namespace oftt::dcom {

template <typename I>
void marshal_interface(OrpcServer& server, BinaryWriter& w, const com::ComPtr<I>& obj) {
  if (!obj) {
    w.u8(0);
    return;
  }
  // If the object is itself a proxy, re-marshal its original reference
  // instead of proxying a proxy.
  if (auto* proxy = dynamic_cast<ProxyBase*>(obj.get())) {
    w.u8(1);
    proxy->ref().marshal(w);
    return;
  }
  com::ComPtr<com::IUnknown> unk = obj.template as<com::IUnknown>();
  ObjectRef ref = server.export_object(unk, I::iid());
  if (!ref.valid()) {
    w.u8(0);  // no proxy/stub installed; degrade to null (logged by server)
    return;
  }
  w.u8(1);
  ref.marshal(w);
}

template <typename I>
com::ComPtr<I> unmarshal_interface(OrpcClient& client, BinaryReader& r) {
  if (r.u8() == 0) return {};
  ObjectRef ref = ObjectRef::unmarshal(r);
  if (r.failed()) return {};
  com::ComPtr<com::IUnknown> unk = client.unmarshal(ref);
  if (!unk) return {};
  return unk.template as<I>();
}

}  // namespace oftt::dcom
