#include "dcom/server.h"

#include "common/logging.h"
#include "common/strings.h"
#include "dcom/scm.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::dcom {

OrpcServer::OrpcServer(sim::Process& process)
    : process_(&process),
      port_(cat("orpc.", process.name())),
      ctr_bad_packet_(process.sim().telemetry().metrics().counter("orpc.bad_packet")),
      ctr_gc_reclaimed_(process.sim().telemetry().metrics().counter("orpc.gc_reclaimed")),
      gc_timer_(process.main_strand()) {
  process_->bind(port_, [this](const sim::Datagram& d) { on_datagram(d); });
  gc_timer_.start(config_.ping_period, [this] { gc_sweep(); });
}

ObjectRef OrpcServer::export_object(com::ComPtr<com::IUnknown> object, const Iid& iid,
                                    bool pinned) {
  const StubFactory* factory = InterfaceRegistry::instance().find_stub(iid);
  if (factory == nullptr) {
    OFTT_LOG_ERROR("dcom", process_->name(), ": no proxy/stub registered for ",
                   iid.to_string(), " — cannot marshal");
    return ObjectRef{};
  }
  return export_with_dispatch(object, iid, (*factory)(object, *this), pinned);
}

ObjectRef OrpcServer::export_with_dispatch(com::ComPtr<com::IUnknown> keepalive, const Iid& iid,
                                           StubDispatch dispatch, bool pinned) {
  std::uint64_t oid = next_oid_++;
  exports_[oid] = Export{std::move(keepalive), iid, std::move(dispatch),
                         process_->sim().now(), pinned};
  ObjectRef ref;
  ref.node = process_->node().id();
  ref.port = port_;
  ref.oid = oid;
  ref.iid = iid;
  return ref;
}

void OrpcServer::revoke(std::uint64_t oid) { exports_.erase(oid); }

void OrpcServer::register_server_class(const Clsid& clsid, const std::string& name) {
  Directory::of(process_->sim())
      .register_class(process_->node().id(), clsid,
                      Directory::Entry{process_->name(), port_, name});
}

void OrpcServer::on_datagram(const sim::Datagram& d) {
  switch (packet_kind(d.payload)) {
    case static_cast<std::uint8_t>(PacketKind::kRequest): handle_request(d); break;
    case static_cast<std::uint8_t>(PacketKind::kActivate): handle_activate(d); break;
    case static_cast<std::uint8_t>(PacketKind::kPing): {
      PingPacket ping;
      if (decode_ping(d.payload, ping)) handle_ping(ping);
      break;
    }
    default: ctr_bad_packet_.inc(); break;
  }
}

void OrpcServer::handle_request(const sim::Datagram& d) {
  RequestPacket req;
  if (!decode_request(d.payload, req)) {
    ctr_bad_packet_.inc();
    return;
  }
  ResponsePacket resp;
  resp.call_id = req.call_id;
  auto it = exports_.find(req.oid);
  if (it == exports_.end()) {
    // Stale reference — the object was reclaimed or the process restarted.
    resp.hr = RPC_E_DISCONNECTED;
  } else {
    BinaryReader args(req.args);
    BinaryWriter result;
    resp.hr = it->second.dispatch(req.method, args, result);
    resp.result = std::move(result).take();
    it->second.last_ping = process_->sim().now();
  }
  send_response(req.reply_node, req.reply_port, std::move(resp));
}

void OrpcServer::handle_activate(const sim::Datagram& d) {
  ActivatePacket act;
  if (!decode_activate(d.payload, act)) return;
  ResponsePacket resp;
  resp.call_id = act.call_id;

  com::ComRuntime& com = com::ComRuntime::of(*process_);
  com::ComPtr<com::IUnknown> obj;
  HRESULT hr = com.create_instance(act.clsid, com::IUnknown::iid(), obj.put_void());
  if (FAILED(hr)) {
    resp.hr = hr;
  } else {
    ObjectRef ref = export_object(obj, act.iid);
    if (!ref.valid()) {
      resp.hr = REGDB_E_CLASSNOTREG;  // missing proxy/stub installation
    } else {
      resp.hr = S_OK;
      BinaryWriter w;
      ref.marshal(w);
      resp.result = std::move(w).take();
    }
  }
  send_response(act.reply_node, act.reply_port, std::move(resp));
}

void OrpcServer::handle_ping(const PingPacket& ping) {
  sim::SimTime now = process_->sim().now();
  for (auto oid : ping.oids) {
    auto it = exports_.find(oid);
    if (it != exports_.end()) it->second.last_ping = now;
  }
}

void OrpcServer::gc_sweep() {
  sim::SimTime now = process_->sim().now();
  sim::SimTime limit = config_.ping_period * config_.ping_grace_periods;
  for (auto it = exports_.begin(); it != exports_.end();) {
    if (!it->second.pinned && now - it->second.last_ping > limit) {
      OFTT_LOG_DEBUG("dcom", process_->name(), ": GC reclaimed oid ", it->first);
      ctr_gc_reclaimed_.inc();
      it = exports_.erase(it);
    } else {
      ++it;
    }
  }
}

void OrpcServer::send_response(int node, const std::string& reply_port, ResponsePacket resp) {
  if (node < 0) return;
  int net = sim::pick_network(process_->sim(), process_->node().id(), node);
  if (net < 0) return;
  process_->send(net, node, reply_port, encode_response(resp), port_);
}

}  // namespace oftt::dcom
