// The OFTT Engine: "the core of the OFTT toolkit [that] controls all
// aspects of fault tolerance" (§2.2.1).
//
//  * Role management — primary/backup negotiation at startup (with the
//    §3.2 retry logic) and at switchover, incarnation-numbered to
//    resolve dual-primary collisions after partitions.
//  * Failure detection — per-component heartbeats from every FTIM on
//    this node, reliable watchdog deadlines, and the peer engine's
//    heartbeat over one or both Ethernet segments.
//  * Recovery management — static rules: up to N local restarts for
//    transient faults, then transfer of control to the backup node.
//  * Status reporting — periodic StatusReports to the System Monitor
//    and RoleAnnounces to subscribers (the Message Diverter).
//
// Runs as its own process ("oftt_engine"), started by the application —
// which is also who restarts it if it dies (failure class d).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "cluster/membership.h"
#include "cluster/quorum.h"
#include "cluster/succession.h"
#include "common/hresult.h"
#include "core/config.h"
#include "core/wire.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/node.h"
#include "sim/timer.h"
#include "swim/detector.h"
#include "transport/session.h"

namespace oftt::core {

class Engine {
 public:
  Engine(sim::Process& process, OfttConfig config);

  /// Start the engine process on a node. Call from boot scripts.
  static std::shared_ptr<sim::Process> install(sim::Node& node, OfttConfig config);
  /// Find a node's engine; null while the engine process is down.
  static Engine* find(sim::Node& node);

  Role role() const { return role_; }
  std::uint32_t incarnation() const { return incarnation_; }
  const std::string& unit() const { return config_.unit_name; }
  bool peer_visible() const;
  const OfttConfig& config() const { return config_; }

  struct WatchdogState {
    sim::SimTime deadline = sim::kNever;
    sim::SimTime period = 0;  // remembered for Reset-without-timeout
  };
  struct Component {
    FtRegister reg;
    /// Set by a run-time SetRule: the dynamic rule outlives component
    /// re-registration (which would otherwise reinstate the static one).
    bool rule_overridden = false;
    sim::SimTime last_hb = 0;
    ComponentState state = ComponentState::kUp;
    int restarts = 0;
    std::uint64_t heartbeats = 0;
    std::map<std::string, WatchdogState> watchdogs;
    /// Replication-policy view, piggybacked on the FTIM heartbeat.
    ReplicationMode policy = ReplicationMode::kColdPassive;
    bool replica_ready = true;
    sim::SimTime last_applied_at = 0;
  };
  const std::map<std::string, Component>& components() const { return components_; }

  /// Every OPC-client component on this node is promotion-ready per its
  /// replication policy (true when none registered — nothing to hold
  /// back). Piggybacked on peer heartbeats so succession can prefer
  /// nodes whose replicas are fresh.
  bool node_replica_ready() const;

  /// Operator-initiated switchover (System Monitor / tests).
  HRESULT request_switchover(const std::string& reason);

  /// Run-time recovery-rule change (the paper's dynamic-decision
  /// extension); -1 restores the engine default for that field.
  HRESULT set_recovery_rule(const std::string& component, int max_local_restarts,
                            int switchover_on_permanent);

  // Introspection for tests and benches.
  int startup_probe_rounds() const { return probe_rounds_; }
  std::uint64_t takeovers() const { return takeovers_; }
  /// True when this engine seeded its incarnation clock from the
  /// on-disk role hint a previous incarnation persisted (cold restart).
  bool role_hint_restored() const { return role_hint_restored_; }

  /// Cluster mode (config().cluster_mode()): this engine's current
  /// membership view and whether a promotion campaign is in flight.
  const cluster::MembershipView& view() const { return view_; }
  bool campaigning() const { return campaign_.active; }

  /// Swim detection (config().detection == kSwim, cluster mode): this
  /// engine's failure detector; null under legacy gossip detection.
  const swim::Detector* swim_detector() const { return swim_.get(); }

  /// Bounded in-memory event history (role changes, failures,
  /// recoveries) — what an operator pulls after an incident. Every
  /// entry is also published on the simulation-wide telemetry bus;
  /// this is the engine-local bounded copy. Cap comes from
  /// OfttConfig::event_history_cap.
  const obs::EventLog& event_log() const { return event_log_; }

 private:
  void on_datagram(const sim::Datagram& d);
  /// The shared message switch: raw datagrams land here after the
  /// session endpoint declines them; session-delivered payloads arrive
  /// re-wrapped so both paths hit the same dispatch.
  void dispatch(const sim::Datagram& d);

  // startup negotiation
  void probe_round();
  void resolve_with_peer(Role peer_role, std::uint32_t peer_inc, int peer_node);
  void decide_alone();

  // role transitions
  void promote(const std::string& reason);
  void demote(const std::string& reason);
  void enter_role(Role role);
  void set_components_active(bool active);
  /// Durable role hint ("oftt.role.<unit>" on the node's disk): written
  /// on every role change, read at boot so a rebooted engine rejoins
  /// with a current incarnation clock instead of a stale one.
  void persist_role_hint();
  void restore_role_hint();

  // detection & recovery
  void tick();
  void check_components(sim::SimTime now);
  void component_failed(Component& c, const std::string& why);
  void do_switchover(const std::string& reason);
  void restart_component(Component& c);

  // cluster mode (N-replica role management)
  void cluster_tick(sim::SimTime now);
  std::set<int> live_members(sim::SimTime now) const;
  void start_campaign(sim::SimTime now, const std::string& reason, sim::SimTime evidence,
                      bool had_primary);
  void send_campaign_requests();
  void maybe_promote_on_quorum();
  void cluster_handoff(const std::string& reason);
  void gossip_view();
  void handle_view_gossip(const ViewGossip& g, sim::SimTime now);
  void handle_promote_request(const sim::Datagram& d, const PromoteRequest& req,
                              sim::SimTime now);
  void handle_promote_ack(const PromoteAck& ack);

  // swim failure detection (cluster mode with detection = kSwim)
  sim::SimTime swim_suspicion_timeout() const;
  void swim_tick(sim::SimTime now);
  void swim_publish(const std::vector<swim::Transition>& transitions, sim::SimTime now);
  /// Shared prologue for every received swim frame: liveness + readiness
  /// bookkeeping and dual-primary arbitration riding detection traffic.
  void swim_note_sender(int node, Role role, std::uint32_t inc, bool ready,
                        sim::SimTime now);
  void swim_absorb(const std::vector<swim::Update>& updates, sim::SimTime now);
  /// Immediate one-update broadcast for rare, failover-critical news
  /// (death confirmations, our own refutation) — collapses worst-case
  /// epidemic latency to one datagram hop.
  void swim_burst(const swim::Update& u);
  void handle_swim_probe(const sim::Datagram& d, const SwimProbe& p, sim::SimTime now);
  void handle_swim_ack(const sim::Datagram& d, const SwimAck& a, sim::SimTime now);
  void handle_swim_ping_req(const sim::Datagram& d, const SwimPingReq& req,
                            sim::SimTime now);

  // messaging
  void send_peer(const Buffer& payload);
  void send_to_member(int node, const Buffer& payload);
  void send_status();
  void announce_role();
  void send_set_active(const Component& c, bool active);

  /// Stamp unit/node, append to the local incident log, publish on the
  /// telemetry bus.
  void record(obs::Event e);

  sim::Process* process_;
  OfttConfig config_;
  Role role_ = Role::kNegotiating;
  std::uint32_t incarnation_ = 0;
  int probe_rounds_ = 0;
  bool negotiation_resolved_ = false;
  bool role_hint_restored_ = false;
  std::uint64_t hb_seq_ = 0;
  std::uint64_t takeovers_ = 0;

  std::map<int, sim::SimTime> peer_last_hb_;  // by network id
  std::uint32_t peer_incarnation_ = 0;
  Role peer_role_ = Role::kUnknown;

  // Cluster mode (empty / inert when config_.cluster_mode() is false).
  /// Reliable sessions for view gossip and promotion rounds: a single
  /// lost datagram must not stall a view change or an election.
  /// Heartbeats and probes deliberately stay raw — failure detection
  /// must feel loss (see DESIGN.md, transport section).
  std::unique_ptr<transport::Endpoint> ep_;
  cluster::MembershipView view_;
  std::map<int, sim::SimTime> member_last_hb_;  // freshest across networks
  /// Per-member replica readiness from peer heartbeats (succession
  /// prefers ready members; unknown members count as ready).
  std::map<int, bool> member_ready_;
  cluster::VoteLedger votes_;
  cluster::Campaign campaign_;
  sim::SimTime started_at_ = 0;

  /// Swim failure detection (null under legacy gossip detection).
  std::unique_ptr<swim::Detector> swim_;
  /// Round-robin cursor for the primary's O(1)-per-tick view refresh in
  /// swim mode (the legacy broadcast would put the O(N) cost back).
  std::size_t swim_gossip_rr_ = 0;

  std::map<std::string, Component> components_;
  std::set<std::pair<int, std::string>> role_subscribers_;
  obs::EventLog event_log_;

  // Pre-resolved metric handles (no string-keyed lookups at use sites).
  obs::Counter ctr_takeovers_;
  obs::Counter ctr_startup_shutdown_;
  obs::Counter ctr_component_failures_;
  obs::Counter ctr_local_restarts_;
  obs::Counter ctr_watchdog_expired_;
  obs::Counter ctr_dual_primary_;
  obs::Counter ctr_distress_;
  obs::Counter ctr_bad_packet_;
  obs::Counter ctr_swim_probes_sent_;
  obs::Counter ctr_swim_probes_acked_;
  obs::Counter ctr_swim_indirect_;
  obs::Counter ctr_swim_false_positive_;
  obs::Histogram hist_swim_suspicion_ms_;

  sim::PeriodicTimer hb_timer_;
  sim::PeriodicTimer status_timer_;
};

}  // namespace oftt::core
