// The System Monitor (§2.2.4): displays the status of hardware, OS,
// OFTT components and applications. Purely observational — "it does not
// need to be present for the operation of the OFTT fault tolerance
// provisions" — so it only consumes StatusReports.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/wire.h"
#include "sim/process.h"

namespace oftt::core {

class SystemMonitor {
 public:
  explicit SystemMonitor(sim::Process& process);

  struct NodeView {
    StatusReport report;
    sim::SimTime last_seen = 0;
  };
  struct Transition {
    sim::SimTime at = 0;
    std::string unit;
    int node = -1;
    Role from = Role::kUnknown;
    Role to = Role::kUnknown;
  };

  /// Latest report for (unit, node); null if never seen.
  const NodeView* view(const std::string& unit, int node) const;
  /// Current primary node of a unit, or -1.
  int primary_of(const std::string& unit) const;
  /// True when no report from (unit, node) within `staleness`.
  bool node_silent(const std::string& unit, int node, sim::SimTime staleness) const;

  const std::vector<Transition>& transitions() const { return transitions_; }
  std::uint64_t reports_received() const { return reports_; }

  /// ASCII status board (what the operator's screen would show).
  std::string render() const;

 private:
  void on_report(const sim::Datagram& d);

  sim::Process* process_;
  std::map<std::pair<std::string, int>, NodeView> views_;
  std::vector<Transition> transitions_;
  std::uint64_t reports_ = 0;
};

}  // namespace oftt::core
