// The System Monitor (§2.2.4): displays the status of hardware, OS,
// OFTT components and applications. Purely observational — "it does not
// need to be present for the operation of the OFTT fault tolerance
// provisions".
//
// Two feeds: StatusReports arrive as datagrams from each engine (the
// networked, lossy view an operator's screen shows), while the role
// transition history comes from the telemetry event bus — typed
// kRoleChange events, filtered by subscription mask, with a liveness
// guard so a killed monitor process stops receiving deliveries without
// any bookkeeping at the death site.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/wire.h"
#include "obs/event_bus.h"
#include "sim/process.h"

namespace oftt::sim {
class FaultPlan;
}

namespace oftt::core {

class SystemMonitor {
 public:
  explicit SystemMonitor(sim::Process& process);
  ~SystemMonitor();

  SystemMonitor(const SystemMonitor&) = delete;
  SystemMonitor& operator=(const SystemMonitor&) = delete;

  struct NodeView {
    StatusReport report;
    sim::SimTime last_seen = 0;
  };
  struct Transition {
    sim::SimTime at = 0;
    std::string unit;
    int node = -1;
    Role from = Role::kUnknown;
    Role to = Role::kUnknown;
  };

  /// Latest report for (unit, node); null if never seen.
  const NodeView* view(const std::string& unit, int node) const;
  /// Current primary node of a unit, or -1.
  int primary_of(const std::string& unit) const;
  /// Cluster mode: the freshest membership view reported for a unit
  /// (highest (incarnation, version) across reporters). Null when no
  /// reporter carries one (pair mode).
  const cluster::MembershipView* membership_of(const std::string& unit) const;
  /// Swim detection: per-member verdict tallies across every reporter of
  /// a unit — how many reporters currently call the member alive /
  /// suspect / dead, and the highest incarnation any of them holds.
  /// Empty when no reporter runs swim (legacy gossip detection).
  struct SwimTally {
    int alive = 0;
    int suspect = 0;
    int dead = 0;
    std::uint32_t incarnation = 0;
  };
  std::map<int, SwimTally> swim_board_of(const std::string& unit) const;
  /// True when no report from (unit, node) within `staleness`.
  bool node_silent(const std::string& unit, int node, sim::SimTime staleness) const;

  const std::vector<Transition>& transitions() const { return transitions_; }
  std::uint64_t reports_received() const { return reports_; }

  /// ASCII status board (what the operator's screen would show).
  std::string render() const;

  /// OPC data-plane board: per-group items / notified / suppressed plus
  /// the coalesced-plane throughput and per-client pending-batch depth,
  /// read straight from the "oftt.opc." metrics namespace. Empty string
  /// when no OPC component has published.
  std::string opc_board() const;

  /// Parallel-engine board: windows executed, events per worker lane,
  /// horizon-stall time and mailbox high-water/spill counts, read from
  /// the "oftt.pdes." metrics namespace. Empty string on a sequential
  /// run (the default engine publishes nothing there).
  std::string pdes_board() const;

  /// Render an injected fault schedule: every fired injection with its
  /// timestamp, then the still-pending ops. What the operator's screen
  /// shows during a chaos campaign ("what has the harness done to my
  /// plant, and what is still coming").
  static std::string render_fault_plan(const sim::FaultPlan& plan);

 private:
  void on_report(const sim::Datagram& d);
  void on_role_event(const obs::Event& e);

  sim::Process* process_;
  std::map<std::pair<std::string, int>, NodeView> views_;
  std::vector<Transition> transitions_;
  // Last role seen per (unit, node) on the bus — gives each transition
  // its `from` side.
  std::map<std::pair<std::string, int>, Role> last_roles_;
  std::uint64_t reports_ = 0;
  obs::EventBus::SubscriberId sub_ = 0;
};

}  // namespace oftt::core
