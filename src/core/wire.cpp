#include "core/wire.h"

namespace oftt::core {

const char* role_name(Role r) {
  switch (r) {
    case Role::kUnknown: return "UNKNOWN";
    case Role::kNegotiating: return "NEGOTIATING";
    case Role::kPrimary: return "PRIMARY";
    case Role::kBackup: return "BACKUP";
    case Role::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

const char* replication_mode_name(ReplicationMode m) {
  switch (m) {
    case ReplicationMode::kColdPassive: return "cold-passive";
    case ReplicationMode::kWarmPassive: return "warm-passive";
    case ReplicationMode::kSemiActive: return "semi-active";
  }
  return "?";
}

const char* detection_mode_name(DetectionMode m) {
  switch (m) {
    case DetectionMode::kGossip: return "gossip";
    case DetectionMode::kSwim: return "swim";
  }
  return "?";
}

const char* component_state_name(ComponentState s) {
  switch (s) {
    case ComponentState::kUp: return "UP";
    case ComponentState::kSuspect: return "SUSPECT";
    case ComponentState::kFailed: return "FAILED";
    case ComponentState::kRestarting: return "RESTARTING";
  }
  return "?";
}

std::string ftim_port(const std::string& process_name) { return "oftt.ftim." + process_name; }

std::uint8_t wire_kind(const Buffer& payload) { return payload.empty() ? 0 : payload[0]; }

namespace {
BinaryWriter begin(MsgKind kind) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  return w;
}
bool begin_read(const Buffer& b, MsgKind kind, BinaryReader& r) {
  return static_cast<MsgKind>(r.u8()) == kind && b.size() >= 1;
}
}  // namespace

Buffer Probe::encode(bool reply) const {
  BinaryWriter w = begin(reply ? MsgKind::kProbeReply : MsgKind::kProbe);
  w.i32(node);
  w.i32(boot_count);
  w.u32(incarnation);
  w.u8(static_cast<std::uint8_t>(role));
  return std::move(w).take();
}

bool Probe::decode(const Buffer& b, Probe& out, bool reply) {
  BinaryReader r(b);
  if (!begin_read(b, reply ? MsgKind::kProbeReply : MsgKind::kProbe, r)) return false;
  out.node = r.i32();
  out.boot_count = r.i32();
  out.incarnation = r.u32();
  out.role = static_cast<Role>(r.u8());
  return !r.failed();
}

Buffer PeerHeartbeat::encode() const {
  BinaryWriter w = begin(MsgKind::kPeerHeartbeat);
  w.i32(node);
  w.u8(static_cast<std::uint8_t>(role));
  w.u32(incarnation);
  w.u64(seq);
  w.boolean(replica_ready);
  return std::move(w).take();
}

bool PeerHeartbeat::decode(const Buffer& b, PeerHeartbeat& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kPeerHeartbeat, r)) return false;
  out.node = r.i32();
  out.role = static_cast<Role>(r.u8());
  out.incarnation = r.u32();
  out.seq = r.u64();
  out.replica_ready = r.boolean();
  return !r.failed();
}

Buffer Takeover::encode() const {
  BinaryWriter w = begin(MsgKind::kTakeover);
  w.i32(from_node);
  w.u32(incarnation);
  w.str(reason);
  return std::move(w).take();
}

bool Takeover::decode(const Buffer& b, Takeover& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kTakeover, r)) return false;
  out.from_node = r.i32();
  out.incarnation = r.u32();
  out.reason = r.str();
  return !r.failed();
}

Buffer FtRegister::encode() const {
  BinaryWriter w = begin(MsgKind::kFtRegister);
  w.str(component);
  w.str(process_name);
  w.str(ftim_port);
  w.u8(static_cast<std::uint8_t>(kind));
  w.i32(max_local_restarts);
  w.i32(switchover_on_permanent);
  w.boolean(currently_active);
  w.u32(incarnation);
  return std::move(w).take();
}

bool FtRegister::decode(const Buffer& b, FtRegister& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kFtRegister, r)) return false;
  out.component = r.str();
  out.process_name = r.str();
  out.ftim_port = r.str();
  out.kind = static_cast<FtimKind>(r.u8());
  out.max_local_restarts = r.i32();
  out.switchover_on_permanent = r.i32();
  out.currently_active = r.boolean();
  out.incarnation = r.u32();
  return !r.failed();
}

Buffer FtHeartbeat::encode() const {
  BinaryWriter w = begin(MsgKind::kFtHeartbeat);
  w.str(component);
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(policy));
  w.boolean(ready);
  w.i64(applied_at);
  return std::move(w).take();
}

bool FtHeartbeat::decode(const Buffer& b, FtHeartbeat& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kFtHeartbeat, r)) return false;
  out.component = r.str();
  out.seq = r.u64();
  out.policy = static_cast<ReplicationMode>(r.u8());
  out.ready = r.boolean();
  out.applied_at = r.i64();
  return !r.failed();
}

Buffer FtDistress::encode() const {
  BinaryWriter w = begin(MsgKind::kFtDistress);
  w.str(component);
  w.str(reason);
  return std::move(w).take();
}

bool FtDistress::decode(const Buffer& b, FtDistress& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kFtDistress, r)) return false;
  out.component = r.str();
  out.reason = r.str();
  return !r.failed();
}

Buffer WatchdogMsg::encode() const {
  BinaryWriter w = begin(op);
  w.str(component);
  w.str(watchdog);
  w.i64(timeout);
  return std::move(w).take();
}

bool WatchdogMsg::decode(const Buffer& b, WatchdogMsg& out) {
  BinaryReader r(b);
  auto kind = static_cast<MsgKind>(r.u8());
  if (kind != MsgKind::kWatchdogCreate && kind != MsgKind::kWatchdogReset &&
      kind != MsgKind::kWatchdogDelete) {
    return false;
  }
  out.op = kind;
  out.component = r.str();
  out.watchdog = r.str();
  out.timeout = r.i64();
  return !r.failed();
}

Buffer SetRule::encode() const {
  BinaryWriter w = begin(MsgKind::kSetRule);
  w.str(component);
  w.i32(max_local_restarts);
  w.i32(switchover_on_permanent);
  return std::move(w).take();
}

bool SetRule::decode(const Buffer& b, SetRule& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kSetRule, r)) return false;
  out.component = r.str();
  out.max_local_restarts = r.i32();
  out.switchover_on_permanent = r.i32();
  return !r.failed();
}

Buffer SetActive::encode() const {
  BinaryWriter w = begin(MsgKind::kSetActive);
  w.boolean(active);
  w.u32(incarnation);
  w.u8(static_cast<std::uint8_t>(role));
  return std::move(w).take();
}

bool SetActive::decode(const Buffer& b, SetActive& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kSetActive, r)) return false;
  out.active = r.boolean();
  out.incarnation = r.u32();
  out.role = static_cast<Role>(r.u8());
  return !r.failed();
}

Buffer EngineHello::encode() const {
  BinaryWriter w = begin(MsgKind::kEngineHello);
  w.i32(node);
  return std::move(w).take();
}

bool EngineHello::decode(const Buffer& b, EngineHello& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kEngineHello, r)) return false;
  out.node = r.i32();
  return !r.failed();
}

Buffer StatusReport::encode() const {
  BinaryWriter w = begin(MsgKind::kStatusReport);
  w.str(unit);
  w.i32(node);
  w.u8(static_cast<std::uint8_t>(role));
  w.u32(incarnation);
  w.boolean(peer_visible);
  w.u32(static_cast<std::uint32_t>(components.size()));
  for (const auto& c : components) {
    w.str(c.name);
    w.u8(static_cast<std::uint8_t>(c.state));
    w.i32(c.restarts);
    w.u64(c.heartbeats);
    w.u8(static_cast<std::uint8_t>(c.policy));
    w.boolean(c.ready);
  }
  w.boolean(!view.members.empty());
  if (!view.members.empty()) view.encode(w);
  w.u32(static_cast<std::uint32_t>(swim_members.size()));
  for (const auto& u : swim_members) u.encode(w);
  return std::move(w).take();
}

bool StatusReport::decode(const Buffer& b, StatusReport& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kStatusReport, r)) return false;
  out.unit = r.str();
  out.node = r.i32();
  out.role = static_cast<Role>(r.u8());
  out.incarnation = r.u32();
  out.peer_visible = r.boolean();
  std::uint32_t n = r.u32();
  // A component status serializes to at least 19 bytes (4-byte name
  // length + u8 state + i32 restarts + u64 heartbeats + u8 policy +
  // bool ready): reject garbage counts before the loop allocates
  // anything.
  if (n > r.remaining() / 19) return false;
  out.components.clear();
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) {
    ComponentStatus c;
    c.name = r.str();
    c.state = static_cast<ComponentState>(r.u8());
    c.restarts = r.i32();
    c.heartbeats = r.u64();
    c.policy = static_cast<ReplicationMode>(r.u8());
    c.ready = r.boolean();
    out.components.push_back(std::move(c));
  }
  out.view = cluster::MembershipView{};
  if (!r.failed() && r.boolean()) {
    if (!cluster::MembershipView::decode(r, out.view)) return false;
  }
  if (r.failed()) return false;
  std::uint32_t sn = r.u32();
  // A swim update serializes to exactly 9 bytes (i32 node + u32
  // incarnation + u8 state).
  if (sn > r.remaining() / 9) return false;
  out.swim_members.clear();
  for (std::uint32_t i = 0; i < sn; ++i) {
    swim::Update u;
    if (!swim::Update::decode(r, u)) return false;
    out.swim_members.push_back(u);
  }
  return !r.failed();
}

Buffer RoleAnnounce::encode() const {
  BinaryWriter w = begin(MsgKind::kRoleAnnounce);
  w.str(unit);
  w.i32(node);
  w.u8(static_cast<std::uint8_t>(role));
  w.u32(incarnation);
  return std::move(w).take();
}

bool RoleAnnounce::decode(const Buffer& b, RoleAnnounce& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kRoleAnnounce, r)) return false;
  out.unit = r.str();
  out.node = r.i32();
  out.role = static_cast<Role>(r.u8());
  out.incarnation = r.u32();
  return !r.failed();
}

Buffer SubscribeRoles::encode() const {
  BinaryWriter w = begin(MsgKind::kSubscribeRoles);
  w.i32(subscriber_node);
  w.str(subscriber_port);
  return std::move(w).take();
}

bool SubscribeRoles::decode(const Buffer& b, SubscribeRoles& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kSubscribeRoles, r)) return false;
  out.subscriber_node = r.i32();
  out.subscriber_port = r.str();
  return !r.failed();
}

Buffer ViewGossip::encode() const {
  BinaryWriter w = begin(MsgKind::kViewGossip);
  w.u8(kClusterWireVersion);
  w.i32(from_node);
  w.str(unit);
  view.encode(w);
  return std::move(w).take();
}

bool ViewGossip::decode(const Buffer& b, ViewGossip& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kViewGossip, r)) return false;
  if (r.u8() != kClusterWireVersion) return false;
  out.from_node = r.i32();
  out.unit = r.str();
  if (!cluster::MembershipView::decode(r, out.view)) return false;
  return !r.failed();
}

Buffer PromoteRequest::encode() const {
  BinaryWriter w = begin(MsgKind::kPromoteRequest);
  w.u8(kClusterWireVersion);
  w.i32(candidate);
  w.str(unit);
  w.u32(incarnation);
  w.u64(view_version);
  w.str(reason);
  return std::move(w).take();
}

bool PromoteRequest::decode(const Buffer& b, PromoteRequest& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kPromoteRequest, r)) return false;
  if (r.u8() != kClusterWireVersion) return false;
  out.candidate = r.i32();
  out.unit = r.str();
  out.incarnation = r.u32();
  out.view_version = r.u64();
  out.reason = r.str();
  return !r.failed();
}

Buffer PromoteAck::encode() const {
  BinaryWriter w = begin(MsgKind::kPromoteAck);
  w.u8(kClusterWireVersion);
  w.i32(voter);
  w.i32(candidate);
  w.u32(incarnation);
  w.boolean(granted);
  return std::move(w).take();
}

bool PromoteAck::decode(const Buffer& b, PromoteAck& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kPromoteAck, r)) return false;
  if (r.u8() != kClusterWireVersion) return false;
  out.voter = r.i32();
  out.candidate = r.i32();
  out.incarnation = r.u32();
  out.granted = r.boolean();
  return !r.failed();
}

Buffer DecisionMsg::encode() const {
  BinaryWriter w = begin(MsgKind::kDecision);
  w.str(component);
  w.u64(seq);
  w.i64(decided_at);
  w.blob(payload);
  return std::move(w).take();
}

bool DecisionMsg::decode(const Buffer& b, DecisionMsg& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kDecision, r)) return false;
  out.component = r.str();
  out.seq = r.u64();
  out.decided_at = r.i64();
  out.payload = r.blob();
  return !r.failed();
}

Buffer PolicySwitchMsg::encode() const {
  BinaryWriter w = begin(MsgKind::kPolicySwitch);
  w.str(component);
  w.u8(static_cast<std::uint8_t>(to));
  w.u32(incarnation);
  w.u64(at_seq);
  w.u64(decision_seq);
  w.str(reason);
  return std::move(w).take();
}

bool PolicySwitchMsg::decode(const Buffer& b, PolicySwitchMsg& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kPolicySwitch, r)) return false;
  out.component = r.str();
  out.to = static_cast<ReplicationMode>(r.u8());
  out.incarnation = r.u32();
  out.at_seq = r.u64();
  out.decision_seq = r.u64();
  out.reason = r.str();
  return !r.failed();
}

Buffer encode_checkpoint(const std::string& component, const Buffer& image) {
  BinaryWriter w = begin(MsgKind::kCheckpoint);
  w.str(component);
  w.blob(image);
  return std::move(w).take();
}

bool decode_checkpoint(const Buffer& b, std::string& component, Buffer& image) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kCheckpoint, r)) return false;
  component = r.str();
  image = r.blob();
  return !r.failed();
}

Buffer encode_checkpoint_nack(const std::string& component, std::uint64_t have_seq) {
  BinaryWriter w = begin(MsgKind::kCheckpointNack);
  w.str(component);
  w.u64(have_seq);
  return std::move(w).take();
}

bool decode_checkpoint_nack(const Buffer& b, std::string& component,
                            std::uint64_t& have_seq) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kCheckpointNack, r)) return false;
  component = r.str();
  have_seq = r.u64();
  return !r.failed() && r.at_end();
}

Buffer CheckpointPull::encode() const {
  BinaryWriter w = begin(MsgKind::kCheckpointPull);
  w.str(component);
  w.u64(have_seq);
  w.u32(have_incarnation);
  w.i32(from_node);
  return std::move(w).take();
}

bool CheckpointPull::decode(const Buffer& b, CheckpointPull& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kCheckpointPull, r)) return false;
  out.component = r.str();
  out.have_seq = r.u64();
  out.have_incarnation = r.u32();
  out.from_node = r.i32();
  return !r.failed();
}

namespace {

// The three swim frames share one payload layout after their two
// leading i32 addresses; factoring it keeps the encoders byte-for-byte
// consistent so a proxy can relay frames without re-encoding.
void swim_encode_tail(BinaryWriter& w, std::uint64_t seq, Role role,
                      std::uint32_t incarnation, bool replica_ready,
                      const std::vector<swim::Update>& updates) {
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(role));
  w.u32(incarnation);
  w.boolean(replica_ready);
  w.u8(static_cast<std::uint8_t>(updates.size()));
  for (const auto& u : updates) u.encode(w);
}

bool swim_decode_tail(BinaryReader& r, std::uint64_t& seq, Role& role,
                      std::uint32_t& incarnation, bool& replica_ready,
                      std::vector<swim::Update>& updates) {
  seq = r.u64();
  role = static_cast<Role>(r.u8());
  incarnation = r.u32();
  replica_ready = r.boolean();
  std::uint8_t n = r.u8();
  if (r.failed()) return false;
  // A swim update serializes to exactly 9 bytes; the count byte caps
  // the batch at 255 but a garbled count must still not over-read.
  if (n > r.remaining() / 9) return false;
  updates.clear();
  for (std::uint8_t i = 0; i < n; ++i) {
    swim::Update u;
    if (!swim::Update::decode(r, u)) return false;
    updates.push_back(u);
  }
  return !r.failed();
}

}  // namespace

Buffer SwimProbe::encode() const {
  BinaryWriter w = begin(MsgKind::kSwimProbe);
  w.u8(kClusterWireVersion);
  w.i32(from);
  w.i32(origin);
  swim_encode_tail(w, seq, role, incarnation, replica_ready, updates);
  return std::move(w).take();
}

bool SwimProbe::decode(const Buffer& b, SwimProbe& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kSwimProbe, r)) return false;
  if (r.u8() != kClusterWireVersion) return false;
  out.from = r.i32();
  out.origin = r.i32();
  if (!swim_decode_tail(r, out.seq, out.role, out.incarnation,
                        out.replica_ready, out.updates)) {
    return false;
  }
  return !r.failed();
}

Buffer SwimAck::encode() const {
  BinaryWriter w = begin(MsgKind::kSwimAck);
  w.u8(kClusterWireVersion);
  w.i32(from);
  w.i32(origin);
  swim_encode_tail(w, seq, role, incarnation, replica_ready, updates);
  return std::move(w).take();
}

bool SwimAck::decode(const Buffer& b, SwimAck& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kSwimAck, r)) return false;
  if (r.u8() != kClusterWireVersion) return false;
  out.from = r.i32();
  out.origin = r.i32();
  if (!swim_decode_tail(r, out.seq, out.role, out.incarnation,
                        out.replica_ready, out.updates)) {
    return false;
  }
  return !r.failed();
}

Buffer SwimPingReq::encode() const {
  BinaryWriter w = begin(MsgKind::kSwimPingReq);
  w.u8(kClusterWireVersion);
  w.i32(from);
  w.i32(target);
  swim_encode_tail(w, seq, role, incarnation, replica_ready, updates);
  return std::move(w).take();
}

bool SwimPingReq::decode(const Buffer& b, SwimPingReq& out) {
  BinaryReader r(b);
  if (!begin_read(b, MsgKind::kSwimPingReq, r)) return false;
  if (r.u8() != kClusterWireVersion) return false;
  out.from = r.i32();
  out.target = r.i32();
  if (!swim_decode_tail(r, out.seq, out.role, out.incarnation,
                        out.replica_ready, out.updates)) {
    return false;
  }
  return !r.failed();
}

}  // namespace oftt::core
