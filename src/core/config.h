// OFTT configuration: identity of the redundant pair, failure-detection
// timing, and the startup policy whose original form caused the §3.2
// erroneous-shutdown bug.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sim/time.h"

namespace oftt::core {

enum class Role : std::uint8_t {
  kUnknown = 0,
  kNegotiating = 1,
  kPrimary = 2,
  kBackup = 3,
  kShutdown = 4,
};

const char* role_name(Role r);

/// How the execution unit keeps its backups restorable. The numeric
/// values travel on the wire (FtHeartbeat, PolicySwitch) and in the
/// policy journal — append, never renumber.
enum class ReplicationMode : std::uint8_t {
  /// The paper's scheme: periodic checkpoints held serialized on the
  /// backup, bulk restore at switchover.
  kColdPassive = 0,
  /// Continuous dirty-range delta streaming; backups fold every image
  /// into their live runtime on receipt, so switchover skips the bulk
  /// restore.
  kWarmPassive = 1,
  /// Leader-follower (LLFT-style): followers execute the workload from
  /// the leader's compact decision log; switchover is promotion-only.
  kSemiActive = 2,
};

const char* replication_mode_name(ReplicationMode m);

/// How cluster mode learns liveness. Pair mode ignores this.
enum class DetectionMode : std::uint8_t {
  /// The original scheme: every member heartbeats every other member
  /// each period (O(N^2) datagrams cluster-wide).
  kGossip = 0,
  /// SWIM-style: each period one random direct probe, k indirect probes
  /// on miss, suspect-before-dead with incarnation-numbered refutation;
  /// membership piggybacks on probe traffic (O(1) per node per period).
  kSwim = 1,
};

const char* detection_mode_name(DetectionMode m);

/// What a node does when startup probing finds no peer.
enum class AloneStartupPolicy : std::uint8_t {
  /// The paper's conservative choice: shut down rather than risk
  /// dual-primary across a dead network.
  kShutdown = 0,
  /// Become primary and serve alone (risks dual-primary if the network,
  /// not the peer, was down).
  kBecomePrimary = 1,
};

/// Static recovery rule (paper: "the current implementation only
/// supports static decision").
struct RecoveryRule {
  /// Local restarts to attempt before declaring the fault permanent
  /// (transient-fault handling).
  int max_local_restarts = 1;
  /// On a permanent fault: transfer control to the backup node.
  bool switchover_on_permanent = true;
};

struct OfttConfig {
  std::string unit_name = "unit";  // logical execution unit (the pair)
  int peer_node = -1;              // node id of the partner
  std::vector<int> networks = {0};  // one or dual Ethernet (Fig. 1)
  int monitor_node = -1;            // where the System Monitor lives (-1: none)

  /// Cluster mode (N-replica role management): node ids of every member
  /// of the execution unit, self included, in initial succession-rank
  /// order. Size >= 2 switches the engine from pair negotiation to
  /// membership-view gossip with quorum-gated promotion; empty keeps
  /// the paper's pair protocol.
  std::vector<int> cluster_nodes;
  /// Cluster mode: a primary that can no longer see a live majority of
  /// the configured membership steps down to backup (keeps a minority
  /// partition's old primary from serving stale state).
  bool quorum_stepdown = true;

  bool cluster_mode() const { return cluster_nodes.size() >= 2; }
  std::vector<int> cluster_peers(int self) const {
    std::vector<int> peers = cluster_nodes;
    peers.erase(std::remove(peers.begin(), peers.end(), self), peers.end());
    return peers;
  }

  // Failure detection.
  sim::SimTime heartbeat_period = sim::milliseconds(100);
  sim::SimTime component_timeout = sim::milliseconds(400);
  sim::SimTime peer_timeout = sim::milliseconds(500);

  /// Cluster mode only: liveness source. kGossip keeps the all-to-all
  /// heartbeats byte-identical to previous releases; kSwim scales the
  /// detection plane to hundreds of members.
  DetectionMode detection = DetectionMode::kGossip;
  /// Swim: direct-probe ack deadline before fanning out the indirect
  /// probes. Must leave room inside one heartbeat_period for the
  /// indirect round trip, so keep it well under the period.
  sim::SimTime swim_probe_timeout = sim::milliseconds(40);
  /// Swim: proxies asked to probe on the origin's behalf after a direct
  /// miss (the paper's k).
  int swim_indirect_probes = 3;
  /// Swim: how long a suspect may refute before it is confirmed dead.
  /// 0 = auto: (2*ceil(log2 N) + 6) * heartbeat_period — long enough
  /// for a refutation to disseminate, short enough to keep failover
  /// p99 within 2x of a 9-node cluster at N=512.
  sim::SimTime swim_suspicion_timeout = 0;
  /// Swim: most membership updates riding one probe/ack frame.
  std::size_t swim_max_piggyback = 6;

  // Startup negotiation (§3.2).
  sim::SimTime startup_probe_timeout = sim::milliseconds(800);
  int startup_retries = 3;  // 0 reproduces the paper's original logic
  AloneStartupPolicy alone_policy = AloneStartupPolicy::kShutdown;

  /// Default replication policy for the unit's components. FTIMs that
  /// do not spell out their own mode inherit this through
  /// OFTTInitialize. Warm-passive and semi-active need at least one
  /// replication peer (peer_node or cluster_nodes) — Engine::install
  /// rejects the combination otherwise.
  ReplicationMode replication = ReplicationMode::kColdPassive;

  // Status reporting.
  sim::SimTime status_report_period = sim::seconds(1);

  // Telemetry: bound on the engine's operator-facing incident log
  // (oldest entries evicted first once the cap is reached).
  std::size_t event_history_cap = 256;

  RecoveryRule default_rule;
};

/// Well-known ports.
inline constexpr const char* kEnginePort = "oftt.engine";
inline constexpr const char* kMonitorPort = "oftt.monitor";
/// FTIM port is "oftt.ftim.<process name>" on both nodes of the pair.
std::string ftim_port(const std::string& process_name);

}  // namespace oftt::core
