#include "core/engine.h"

#include "core/engine_com.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace oftt::core {
namespace {
constexpr const char* kEngineProcess = "oftt_engine";

// obs cannot see core's Role enum (it sits below core in the layering),
// so the span tracker keys on a mirrored constant. Keep them in sync.
static_assert(static_cast<std::uint64_t>(Role::kPrimary) == obs::kRoleChangePrimary,
              "obs::kRoleChangePrimary must mirror core::Role::kPrimary");
}

Engine::Engine(sim::Process& process, OfttConfig config)
    : process_(&process),
      config_(std::move(config)),
      event_log_(config_.event_history_cap),
      ctr_takeovers_(process.sim().telemetry().metrics().counter("oftt.takeovers")),
      ctr_startup_shutdown_(
          process.sim().telemetry().metrics().counter("oftt.startup_shutdown")),
      ctr_component_failures_(
          process.sim().telemetry().metrics().counter("oftt.component_failures")),
      ctr_local_restarts_(process.sim().telemetry().metrics().counter("oftt.local_restarts")),
      ctr_watchdog_expired_(
          process.sim().telemetry().metrics().counter("oftt.watchdog_expired")),
      ctr_dual_primary_(
          process.sim().telemetry().metrics().counter("oftt.dual_primary_detected")),
      ctr_distress_(process.sim().telemetry().metrics().counter("oftt.distress")),
      ctr_bad_packet_(process.sim().telemetry().metrics().counter("oftt.engine_bad_packet")),
      hb_timer_(process.main_strand()),
      status_timer_(process.main_strand()) {
  process_->bind(kEnginePort, [this](const sim::Datagram& d) { on_datagram(d); });
  hb_timer_.start(config_.heartbeat_period, [this] { tick(); });
  status_timer_.start(config_.status_report_period, [this] {
    send_status();
    announce_role();  // refresh subscribers even without changes
  });
  OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": engine up, unit '",
                config_.unit_name, "', peer node ", config_.peer_node);
  probe_round();
}

std::shared_ptr<sim::Process> Engine::install(sim::Node& node, OfttConfig config) {
  return node.start_process(kEngineProcess, [config](sim::Process& proc) {
    proc.attachment<Engine>(proc, config);
    install_engine_com(proc);  // the engine's remotely activatable COM face
  });
}

Engine* Engine::find(sim::Node& node) {
  auto proc = node.find_process(kEngineProcess);
  if (!proc || !proc->alive()) return nullptr;
  return proc->find_attachment<Engine>();
}

bool Engine::peer_visible() const {
  sim::SimTime now = process_->sim().now();
  for (const auto& [net, last] : peer_last_hb_) {
    if (now - last < config_.peer_timeout) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Startup negotiation (§3.2)
// ---------------------------------------------------------------------

void Engine::probe_round() {
  if (role_ != Role::kNegotiating || negotiation_resolved_) return;
  ++probe_rounds_;
  Probe p;
  p.node = process_->node().id();
  p.boot_count = process_->node().boot_count();
  p.incarnation = incarnation_;
  p.role = role_;
  send_peer(p.encode(/*reply=*/false));
  process_->main_strand().schedule_after(config_.startup_probe_timeout, [this] {
    if (role_ != Role::kNegotiating || negotiation_resolved_) return;
    if (probe_rounds_ <= config_.startup_retries) {
      OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": no peer response, retry ",
                    probe_rounds_, "/", config_.startup_retries);
      probe_round();
    } else {
      decide_alone();
    }
  });
}

void Engine::resolve_with_peer(Role peer_role, std::uint32_t peer_inc, int peer_node) {
  if (role_ != Role::kNegotiating || negotiation_resolved_) return;
  negotiation_resolved_ = true;
  peer_role_ = peer_role;
  peer_incarnation_ = peer_inc;
  // We just heard from the peer; prime liveness so a backup does not
  // promote spuriously before the first heartbeat lands.
  for (int net : config_.networks) peer_last_hb_[net] = process_->sim().now();
  switch (peer_role) {
    case Role::kPrimary:
      incarnation_ = peer_inc;
      enter_role(Role::kBackup);
      break;
    case Role::kBackup:
      incarnation_ = peer_inc + 1;
      enter_role(Role::kPrimary);
      break;
    default:
      // Both negotiating: deterministic tie-break, lower node id wins.
      if (process_->node().id() < peer_node) {
        ++incarnation_;
        enter_role(Role::kPrimary);
      } else {
        enter_role(Role::kBackup);
      }
      break;
  }
}

void Engine::decide_alone() {
  if (config_.alone_policy == AloneStartupPolicy::kBecomePrimary) {
    OFTT_LOG_WARN("oftt/engine", process_->node().name(),
                  ": no peer found after retries — becoming primary alone");
    negotiation_resolved_ = true;
    ++incarnation_;
    enter_role(Role::kPrimary);
  } else {
    // The paper's original conservative logic: a node that cannot see
    // its peer shuts down to avoid dual-primary across a dead network.
    OFTT_LOG_WARN("oftt/engine", process_->node().name(),
                  ": no peer found after retries — shutting down");
    ctr_startup_shutdown_.inc();
    obs::Event e;
    e.kind = obs::EventKind::kStartupShutdown;
    e.detail = "no peer found after startup retries";
    e.a = static_cast<std::uint64_t>(probe_rounds_);
    record(std::move(e));
    role_ = Role::kShutdown;
    announce_role();
    send_status();
    process_->exit_self("startup: no peer");
  }
}

// ---------------------------------------------------------------------
// Role transitions
// ---------------------------------------------------------------------

void Engine::record(obs::Event e) {
  e.node = process_->node().id();
  if (e.unit.empty()) e.unit = config_.unit_name;
  e.at = process_->sim().now();
  event_log_.append(e);  // bounded local copy for the operator
  process_->sim().telemetry().bus().publish(std::move(e));
}

void Engine::enter_role(Role role) {
  if (role_ == role) return;
  OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": ", role_name(role_), " -> ",
                role_name(role), " (incarnation ", incarnation_, ")");
  obs::Event e;
  e.kind = obs::EventKind::kRoleChange;
  e.detail = cat("role ", role_name(role_), " -> ", role_name(role));
  e.a = static_cast<std::uint64_t>(role);
  e.b = incarnation_;
  record(std::move(e));
  role_ = role;
  set_components_active(role_ == Role::kPrimary);
  announce_role();
  send_status();
}

void Engine::promote(const std::string& reason) {
  if (role_ == Role::kPrimary) return;
  OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": PROMOTING — ", reason);
  ++takeovers_;
  ctr_takeovers_.inc();
  incarnation_ = std::max(incarnation_, peer_incarnation_) + 1;
  negotiation_resolved_ = true;
  enter_role(Role::kPrimary);
}

void Engine::demote(const std::string& reason) {
  if (role_ == Role::kBackup) return;
  OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": DEMOTING — ", reason);
  enter_role(Role::kBackup);
}

void Engine::set_components_active(bool active) {
  for (auto& [name, c] : components_) {
    send_set_active(c, active);
  }
}

void Engine::send_set_active(const Component& c, bool active) {
  SetActive msg;
  msg.active = active;
  msg.incarnation = incarnation_;
  msg.role = role_;
  process_->send(0, process_->node().id(), c.reg.ftim_port, msg.encode(), kEnginePort);
}

// ---------------------------------------------------------------------
// Detection & recovery
// ---------------------------------------------------------------------

void Engine::tick() {
  sim::SimTime now = process_->sim().now();

  // Peer heartbeat out, on every configured network.
  PeerHeartbeat hb;
  hb.node = process_->node().id();
  hb.role = role_;
  hb.incarnation = incarnation_;
  hb.seq = ++hb_seq_;
  send_peer(hb.encode());

  // Peer liveness: a backup promotes when the primary's heartbeat is
  // stale on *every* configured network.
  if (role_ == Role::kBackup && negotiation_resolved_ && !peer_visible()) {
    // Open the failover trace: evidence is the last moment the primary
    // was provably alive (freshest heartbeat on any network).
    sim::SimTime evidence = 0;
    for (const auto& [net, last] : peer_last_hb_) evidence = std::max(evidence, last);
    obs::Event fe;
    fe.kind = obs::EventKind::kFailureDetected;
    fe.detail = cat("peer heartbeat timeout (", sim::to_millis(config_.peer_timeout), " ms)");
    fe.a = static_cast<std::uint64_t>(evidence);
    record(std::move(fe));
    promote(cat("peer heartbeat timeout (", sim::to_millis(config_.peer_timeout), " ms)"));
  }

  // Component heartbeats and watchdogs.
  for (auto& [name, c] : components_) {
    if (c.state == ComponentState::kUp && now - c.last_hb > config_.component_timeout) {
      component_failed(c, "heartbeat timeout");
      continue;
    }
    for (auto it = c.watchdogs.begin(); it != c.watchdogs.end();) {
      if (it->second.deadline != sim::kNever && now > it->second.deadline) {
        std::string wd = it->first;
        it = c.watchdogs.erase(it);
        ctr_watchdog_expired_.inc();
        obs::Event we;
        we.kind = obs::EventKind::kWatchdogExpired;
        we.component = c.reg.component;
        we.detail = cat("watchdog '", wd, "' expired");
        record(std::move(we));
        component_failed(c, cat("watchdog '", wd, "' expired"));
        break;  // component_failed may restart the process; stop iterating
      } else {
        ++it;
      }
    }
  }
}

void Engine::component_failed(Component& c, const std::string& why) {
  OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": component '", c.reg.component,
                "' FAILED: ", why);
  ctr_component_failures_.inc();
  obs::Event e;
  e.kind = obs::EventKind::kComponentFailed;
  e.component = c.reg.component;
  e.detail = cat("component '", c.reg.component, "' failed: ", why);
  record(std::move(e));
  c.state = ComponentState::kFailed;
  send_status();

  int max_restarts = c.reg.max_local_restarts >= 0 ? c.reg.max_local_restarts
                                                   : config_.default_rule.max_local_restarts;
  bool switchover = c.reg.switchover_on_permanent >= 0
                        ? c.reg.switchover_on_permanent != 0
                        : config_.default_rule.switchover_on_permanent;

  if (c.restarts < max_restarts) {
    // Transient-fault provision: local restart.
    restart_component(c);
    return;
  }
  // Permanent fault.
  if (switchover && role_ == Role::kPrimary && peer_visible()) {
    do_switchover(cat("component '", c.reg.component, "' permanent failure"));
    // Restore redundancy: bring the app back (passively) on this node.
    c.restarts = 0;
    restart_component(c);
  } else {
    // No healthy peer (or rule says stay): keep trying locally.
    restart_component(c);
  }
}

void Engine::restart_component(Component& c) {
  c.state = ComponentState::kRestarting;
  ++c.restarts;
  ctr_local_restarts_.inc();
  sim::Node& node = process_->node();
  OFTT_LOG_INFO("oftt/engine", node.name(), ": restarting process '", c.reg.process_name, "'");
  obs::Event e;
  e.kind = obs::EventKind::kComponentRestart;
  e.component = c.reg.component;
  e.detail = cat("local restart #", c.restarts, " of '", c.reg.component, "'");
  e.a = static_cast<std::uint64_t>(c.restarts);
  record(std::move(e));
  // Grace so the fresh instance has time to register and heartbeat.
  c.last_hb = process_->sim().now() + config_.component_timeout;
  c.watchdogs.clear();
  node.restart_process(c.reg.process_name);
}

void Engine::do_switchover(const std::string& reason) {
  // A deliberate transfer of control still opens a failover trace: the
  // "evidence" and the decision coincide (detection phase is zero), and
  // the peer's promotion / activation / reroute milestones follow.
  obs::Event fe;
  fe.kind = obs::EventKind::kFailureDetected;
  fe.detail = cat("switchover: ", reason);
  fe.a = static_cast<std::uint64_t>(process_->sim().now());
  record(std::move(fe));
  Takeover t;
  t.from_node = process_->node().id();
  t.incarnation = incarnation_;
  t.reason = reason;
  send_peer(t.encode());
  demote(cat("switchover: ", reason));
}

HRESULT Engine::set_recovery_rule(const std::string& component, int max_local_restarts,
                                  int switchover_on_permanent) {
  auto it = components_.find(component);
  if (it == components_.end()) return E_INVALIDARG;
  it->second.reg.max_local_restarts = max_local_restarts;
  it->second.reg.switchover_on_permanent = switchover_on_permanent;
  it->second.rule_overridden = true;
  // A relaxed rule also forgives past restarts, so the fresh budget
  // applies from now.
  it->second.restarts = 0;
  OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": recovery rule for '", component,
                "' now restarts=", max_local_restarts,
                " switchover=", switchover_on_permanent);
  return S_OK;
}

HRESULT Engine::request_switchover(const std::string& reason) {
  if (role_ != Role::kPrimary) return OFTT_E_NOT_PRIMARY;
  if (!peer_visible()) return OFTT_E_NO_PEER;
  do_switchover(cat("operator request: ", reason));
  return S_OK;
}

// ---------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------

void Engine::send_peer(const Buffer& payload) {
  if (config_.peer_node < 0) return;
  for (int net : config_.networks) {
    process_->send(net, config_.peer_node, kEnginePort, payload, kEnginePort);
  }
}

void Engine::send_status() {
  if (config_.monitor_node < 0) return;
  StatusReport sr;
  sr.unit = config_.unit_name;
  sr.node = process_->node().id();
  sr.role = role_;
  sr.incarnation = incarnation_;
  sr.peer_visible = peer_visible();
  for (const auto& [name, c] : components_) {
    sr.components.push_back(
        ComponentStatus{c.reg.component, c.state, c.restarts, c.heartbeats});
  }
  int net = sim::pick_network(process_->sim(), process_->node().id(), config_.monitor_node);
  if (net < 0) return;
  process_->send(net, config_.monitor_node, kMonitorPort, sr.encode(), kEnginePort);
}

void Engine::announce_role() {
  RoleAnnounce ra;
  ra.unit = config_.unit_name;
  ra.node = process_->node().id();
  ra.role = role_;
  ra.incarnation = incarnation_;
  Buffer payload = ra.encode();
  for (const auto& [node, port] : role_subscribers_) {
    int net = sim::pick_network(process_->sim(), process_->node().id(), node);
    if (net < 0) continue;
    process_->send(net, node, port, payload, kEnginePort);
  }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

void Engine::on_datagram(const sim::Datagram& d) {
  sim::SimTime now = process_->sim().now();
  switch (static_cast<MsgKind>(wire_kind(d.payload))) {
    case MsgKind::kProbe: {
      Probe p;
      if (!Probe::decode(d.payload, p, false)) return;
      Probe reply;
      reply.node = process_->node().id();
      reply.boot_count = process_->node().boot_count();
      reply.incarnation = incarnation_;
      reply.role = role_;
      process_->send(d.network_id, d.src_node, kEnginePort, reply.encode(true), kEnginePort);
      if (role_ == Role::kNegotiating) resolve_with_peer(p.role, p.incarnation, p.node);
      break;
    }
    case MsgKind::kProbeReply: {
      Probe p;
      if (!Probe::decode(d.payload, p, true)) return;
      if (role_ == Role::kNegotiating) resolve_with_peer(p.role, p.incarnation, p.node);
      break;
    }
    case MsgKind::kPeerHeartbeat: {
      PeerHeartbeat hb;
      if (!PeerHeartbeat::decode(d.payload, hb)) return;
      peer_last_hb_[d.network_id] = now;
      peer_role_ = hb.role;
      peer_incarnation_ = hb.incarnation;
      if (role_ == Role::kNegotiating &&
          (hb.role == Role::kPrimary || hb.role == Role::kBackup)) {
        resolve_with_peer(hb.role, hb.incarnation, hb.node);
      } else if (role_ == Role::kPrimary && hb.role == Role::kPrimary) {
        // Dual primary (e.g. healed partition): highest incarnation
        // wins; ties go to the lower node id.
        ctr_dual_primary_.inc();
        obs::Event e;
        e.kind = obs::EventKind::kDualPrimary;
        e.detail = cat("dual primary with node ", hb.node, " (peer inc ", hb.incarnation,
                       ", ours ", incarnation_, ")");
        e.a = static_cast<std::uint64_t>(hb.node);
        e.b = hb.incarnation;
        record(std::move(e));
        bool peer_wins = hb.incarnation > incarnation_ ||
                         (hb.incarnation == incarnation_ &&
                          hb.node < process_->node().id());
        if (peer_wins) {
          demote("dual-primary resolution");
        }
      }
      break;
    }
    case MsgKind::kTakeover: {
      Takeover t;
      if (!Takeover::decode(d.payload, t)) return;
      peer_incarnation_ = t.incarnation;
      if (role_ != Role::kPrimary) {
        promote(cat("takeover handoff: ", t.reason));
      }
      break;
    }
    case MsgKind::kFtRegister: {
      FtRegister reg;
      if (!FtRegister::decode(d.payload, reg)) return;
      auto it = components_.find(reg.component);
      if (it == components_.end()) {
        Component c;
        c.reg = reg;
        c.last_hb = now;
        components_.emplace(reg.component, std::move(c));
        OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": registered component '",
                      reg.component, "' (", reg.process_name, ")");
      } else {
        if (it->second.rule_overridden) {
          // Keep the dynamic rule over the registrant's static one.
          reg.max_local_restarts = it->second.reg.max_local_restarts;
          reg.switchover_on_permanent = it->second.reg.switchover_on_permanent;
        }
        it->second.reg = reg;
        it->second.last_hb = now;
        if (it->second.state != ComponentState::kUp) {
          it->second.state = ComponentState::kUp;
        }
      }
      // A still-active component means this node was the live primary
      // before an engine restart: adopt that, don't renegotiate over
      // running state.
      if (role_ == Role::kNegotiating && reg.currently_active) {
        incarnation_ = std::max(incarnation_, reg.incarnation);
        negotiation_resolved_ = true;
        OFTT_LOG_INFO("oftt/engine", process_->node().name(),
                      ": adopting live PRIMARY role from active component '",
                      reg.component, "'");
        enter_role(Role::kPrimary);
      }
      // Tell the (re)registered FTIM its role immediately.
      send_set_active(components_.at(reg.component), role_ == Role::kPrimary);
      break;
    }
    case MsgKind::kFtHeartbeat: {
      FtHeartbeat hb;
      if (!FtHeartbeat::decode(d.payload, hb)) return;
      auto it = components_.find(hb.component);
      if (it == components_.end()) return;
      it->second.last_hb = now;
      ++it->second.heartbeats;
      if (it->second.state == ComponentState::kRestarting ||
          it->second.state == ComponentState::kSuspect) {
        it->second.state = ComponentState::kUp;
      }
      break;
    }
    case MsgKind::kFtDistress: {
      FtDistress distress;
      if (!FtDistress::decode(d.payload, distress)) return;
      OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": DISTRESS from '",
                    distress.component, "': ", distress.reason);
      ctr_distress_.inc();
      obs::Event e;
      e.kind = obs::EventKind::kDistress;
      e.component = distress.component;
      e.detail = cat("distress from '", distress.component, "': ", distress.reason);
      record(std::move(e));
      if (role_ == Role::kPrimary && peer_visible()) {
        do_switchover(cat("distress from '", distress.component, "': ", distress.reason));
      }
      break;
    }
    case MsgKind::kWatchdogCreate:
    case MsgKind::kWatchdogReset:
    case MsgKind::kWatchdogDelete: {
      WatchdogMsg wd;
      if (!WatchdogMsg::decode(d.payload, wd)) return;
      auto it = components_.find(wd.component);
      if (it == components_.end()) return;
      if (wd.op == MsgKind::kWatchdogDelete) {
        it->second.watchdogs.erase(wd.watchdog);
      } else {
        WatchdogState& state = it->second.watchdogs[wd.watchdog];
        if (wd.timeout > 0) state.period = wd.timeout;
        // Create with no timeout leaves the watchdog unarmed; Set/Reset
        // (re)arm using the explicit or remembered period.
        state.deadline = state.period > 0 ? now + state.period : sim::kNever;
        if (wd.op == MsgKind::kWatchdogCreate && wd.timeout <= 0) {
          state.deadline = sim::kNever;
        }
      }
      break;
    }
    case MsgKind::kSetRule: {
      SetRule rule;
      if (!SetRule::decode(d.payload, rule)) return;
      set_recovery_rule(rule.component, rule.max_local_restarts,
                        rule.switchover_on_permanent);
      break;
    }
    case MsgKind::kSubscribeRoles: {
      SubscribeRoles sub;
      if (!SubscribeRoles::decode(d.payload, sub)) return;
      role_subscribers_.insert({sub.subscriber_node, sub.subscriber_port});
      // Answer immediately so the diverter learns the current role.
      RoleAnnounce ra;
      ra.unit = config_.unit_name;
      ra.node = process_->node().id();
      ra.role = role_;
      ra.incarnation = incarnation_;
      int net = sim::pick_network(process_->sim(), process_->node().id(), sub.subscriber_node);
      if (net >= 0) {
        process_->send(net, sub.subscriber_node, sub.subscriber_port, ra.encode(), kEnginePort);
      }
      break;
    }
    default:
      ctr_bad_packet_.inc();
      break;
  }
}

}  // namespace oftt::core
