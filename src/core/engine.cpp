#include "core/engine.h"

#include "core/engine_com.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/disk.h"
#include "sim/simulation.h"

namespace oftt::core {
namespace {
constexpr const char* kEngineProcess = "oftt_engine";

// obs cannot see core's Role enum (it sits below core in the layering),
// so the span tracker keys on a mirrored constant. Keep them in sync.
static_assert(static_cast<std::uint64_t>(Role::kPrimary) == obs::kRoleChangePrimary,
              "obs::kRoleChangePrimary must mirror core::Role::kPrimary");
}

Engine::Engine(sim::Process& process, OfttConfig config)
    : process_(&process),
      config_(std::move(config)),
      event_log_(config_.event_history_cap),
      ctr_takeovers_(process.sim().telemetry().metrics().counter("oftt.takeovers")),
      ctr_startup_shutdown_(
          process.sim().telemetry().metrics().counter("oftt.startup_shutdown")),
      ctr_component_failures_(
          process.sim().telemetry().metrics().counter("oftt.component_failures")),
      ctr_local_restarts_(process.sim().telemetry().metrics().counter("oftt.local_restarts")),
      ctr_watchdog_expired_(
          process.sim().telemetry().metrics().counter("oftt.watchdog_expired")),
      ctr_dual_primary_(
          process.sim().telemetry().metrics().counter("oftt.dual_primary_detected")),
      ctr_distress_(process.sim().telemetry().metrics().counter("oftt.distress")),
      ctr_bad_packet_(process.sim().telemetry().metrics().counter("oftt.engine_bad_packet")),
      ctr_swim_probes_sent_(
          process.sim().telemetry().metrics().counter("oftt.swim_probes_sent")),
      ctr_swim_probes_acked_(
          process.sim().telemetry().metrics().counter("oftt.swim_probes_acked")),
      ctr_swim_indirect_(
          process.sim().telemetry().metrics().counter("oftt.swim_indirect_probes")),
      ctr_swim_false_positive_(
          process.sim().telemetry().metrics().counter("oftt.swim_false_positive")),
      hist_swim_suspicion_ms_(process.sim().telemetry().metrics().histogram(
          "oftt.swim_suspicion_ms", {50, 100, 250, 500, 1000, 2000, 4000, 8000})),
      hb_timer_(process.main_strand()),
      status_timer_(process.main_strand()) {
  process_->bind(kEnginePort, [this](const sim::Datagram& d) { on_datagram(d); });
  hb_timer_.start(config_.heartbeat_period, [this] { tick(); });
  status_timer_.start(config_.status_report_period, [this] {
    send_status();
    announce_role();  // refresh subscribers even without changes
  });
  started_at_ = process_->sim().now();
  restore_role_hint();
  if (config_.cluster_mode()) {
    // N-replica role management: no pairwise probe exchange. The
    // engine starts from the configured rank-ordered view; the initial
    // primary emerges through the same quorum-gated election that
    // handles failover (see cluster_tick).
    view_ = cluster::MembershipView::initial(config_.cluster_nodes);
    member_last_hb_[process_->node().id()] = started_at_;
    // View gossip and promotion rounds ride reliable sessions so a
    // single lost datagram never stalls a view change or an election.
    // Small window + drop-oldest queue: only the newest view matters,
    // and a dead member must not accumulate an unbounded backlog.
    transport::SessionConfig scfg;
    scfg.networks = config_.networks;
    scfg.window_bytes = 4096;
    scfg.queue_cap = 8;
    scfg.queue_policy = transport::QueuePolicy::kDropOldest;
    scfg.rto_initial = sim::milliseconds(50);
    scfg.rto_max = sim::milliseconds(400);
    ep_ = std::make_unique<transport::Endpoint>(process.main_strand(), kEnginePort, scfg);
    ep_->on_deliver([this](int src_node, int network_id, const Buffer& payload) {
      sim::Datagram d;
      d.network_id = network_id;
      d.src_node = src_node;
      d.src_port = kEnginePort;
      d.dst_node = process_->node().id();
      d.dst_port = kEnginePort;
      d.payload = payload;
      dispatch(d);
    });
    if (config_.detection == DetectionMode::kSwim) {
      swim::DetectorConfig dc;
      dc.self = process_->node().id();
      dc.members = config_.cluster_nodes;
      dc.probe_timeout = config_.swim_probe_timeout;
      dc.suspicion_timeout = swim_suspicion_timeout();
      dc.indirect_probes = config_.swim_indirect_probes;
      dc.max_piggyback = config_.swim_max_piggyback;
      // Per-node fork name: every detector draws from its own stream, so
      // N detectors shuffle independently and adding one never perturbs
      // another (or any non-swim module).
      swim_ = std::make_unique<swim::Detector>(
          dc, process_->sim().fork_rng(cat("swim.", process_->node().id())));
      swim_->announce(process_->node().id());  // join: disseminate alive@0
    }
    OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": engine up, unit '",
                  config_.unit_name, "', cluster of ", config_.cluster_nodes.size(),
                  " (quorum ", view_.quorum(), ", detection ",
                  detection_mode_name(config_.detection), ")");
    return;
  }
  OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": engine up, unit '",
                config_.unit_name, "', peer node ", config_.peer_node);
  probe_round();
}

std::shared_ptr<sim::Process> Engine::install(sim::Node& node, OfttConfig config) {
  if (config.peer_node == node.id()) {
    throw std::invalid_argument(
        cat("Engine::install: peer_node ", config.peer_node,
            " is this node — a node cannot be its own backup"));
  }
  if (config.replication != ReplicationMode::kColdPassive && config.peer_node < 0 &&
      !config.cluster_mode()) {
    throw std::invalid_argument(
        cat("Engine::install: replication mode '", replication_mode_name(config.replication),
            "' needs a replica to stream to — set peer_node or cluster_nodes"));
  }
  if (config.cluster_mode()) {
    std::vector<int> sorted = config.cluster_nodes;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument(
          "Engine::install: cluster_nodes contains a duplicate node id");
    }
    if (std::find(sorted.begin(), sorted.end(), node.id()) == sorted.end()) {
      throw std::invalid_argument(
          cat("Engine::install: cluster_nodes must include this node (", node.id(), ")"));
    }
  }
  if (config.detection == DetectionMode::kSwim) {
    if (!config.cluster_mode()) {
      throw std::invalid_argument(
          "Engine::install: swim detection needs cluster_nodes — the pair "
          "protocol keeps its own heartbeats");
    }
    if (config.swim_probe_timeout <= 0 ||
        config.swim_probe_timeout >= config.heartbeat_period) {
      throw std::invalid_argument(
          "Engine::install: swim_probe_timeout must be positive and leave room "
          "for the indirect round inside one heartbeat_period");
    }
    if (config.swim_indirect_probes < 0) {
      throw std::invalid_argument("Engine::install: swim_indirect_probes < 0");
    }
    if (config.swim_max_piggyback < 1 || config.swim_max_piggyback > 255) {
      throw std::invalid_argument(
          "Engine::install: swim_max_piggyback must be in [1, 255] (the frame "
          "carries a one-byte update count)");
    }
    if (config.swim_suspicion_timeout < 0) {
      throw std::invalid_argument("Engine::install: swim_suspicion_timeout < 0");
    }
  }
  return node.start_process(kEngineProcess, [config](sim::Process& proc) {
    proc.attachment<Engine>(proc, config);
    install_engine_com(proc);  // the engine's remotely activatable COM face
  });
}

Engine* Engine::find(sim::Node& node) {
  auto proc = node.find_process(kEngineProcess);
  if (!proc || !proc->alive()) return nullptr;
  return proc->find_attachment<Engine>();
}

bool Engine::node_replica_ready() const {
  for (const auto& [name, c] : components_) {
    if (c.reg.kind != FtimKind::kOpcClient) continue;
    if (!c.replica_ready) return false;
  }
  return true;
}

bool Engine::peer_visible() const {
  sim::SimTime now = process_->sim().now();
  if (config_.cluster_mode()) {
    for (int peer : config_.cluster_peers(process_->node().id())) {
      // Swim mode: a peer is visible while the detector has not
      // confirmed it dead — per-member heartbeat freshness no longer
      // exists (each peer is contacted only ~once per N periods).
      if (swim_) {
        if (swim_->presumed_live(peer)) return true;
        continue;
      }
      auto it = member_last_hb_.find(peer);
      if (it != member_last_hb_.end() && now - it->second < config_.peer_timeout) return true;
    }
    return false;
  }
  for (const auto& [net, last] : peer_last_hb_) {
    if (now - last < config_.peer_timeout) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Startup negotiation (§3.2)
// ---------------------------------------------------------------------

void Engine::probe_round() {
  if (role_ != Role::kNegotiating || negotiation_resolved_) return;
  ++probe_rounds_;
  Probe p;
  p.node = process_->node().id();
  p.boot_count = process_->node().boot_count();
  p.incarnation = incarnation_;
  p.role = role_;
  send_peer(p.encode(/*reply=*/false));
  process_->main_strand().schedule_after(config_.startup_probe_timeout, [this] {
    if (role_ != Role::kNegotiating || negotiation_resolved_) return;
    if (probe_rounds_ <= config_.startup_retries) {
      OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": no peer response, retry ",
                    probe_rounds_, "/", config_.startup_retries);
      probe_round();
    } else {
      decide_alone();
    }
  });
}

void Engine::resolve_with_peer(Role peer_role, std::uint32_t peer_inc, int peer_node) {
  if (role_ != Role::kNegotiating || negotiation_resolved_) return;
  negotiation_resolved_ = true;
  peer_role_ = peer_role;
  peer_incarnation_ = peer_inc;
  // We just heard from the peer; prime liveness so a backup does not
  // promote spuriously before the first heartbeat lands.
  for (int net : config_.networks) peer_last_hb_[net] = process_->sim().now();
  switch (peer_role) {
    case Role::kPrimary:
      incarnation_ = peer_inc;
      enter_role(Role::kBackup);
      break;
    case Role::kBackup:
      incarnation_ = peer_inc + 1;
      enter_role(Role::kPrimary);
      break;
    default:
      // Both negotiating: deterministic tie-break, lower node id wins.
      if (process_->node().id() < peer_node) {
        ++incarnation_;
        enter_role(Role::kPrimary);
      } else {
        enter_role(Role::kBackup);
      }
      break;
  }
}

void Engine::decide_alone() {
  if (config_.alone_policy == AloneStartupPolicy::kBecomePrimary) {
    OFTT_LOG_WARN("oftt/engine", process_->node().name(),
                  ": no peer found after retries — becoming primary alone");
    negotiation_resolved_ = true;
    ++incarnation_;
    enter_role(Role::kPrimary);
  } else {
    // The paper's original conservative logic: a node that cannot see
    // its peer shuts down to avoid dual-primary across a dead network.
    OFTT_LOG_WARN("oftt/engine", process_->node().name(),
                  ": no peer found after retries — shutting down");
    ctr_startup_shutdown_.inc();
    obs::Event e;
    e.kind = obs::EventKind::kStartupShutdown;
    e.detail = "no peer found after startup retries";
    e.a = static_cast<std::uint64_t>(probe_rounds_);
    record(std::move(e));
    role_ = Role::kShutdown;
    announce_role();
    send_status();
    process_->exit_self("startup: no peer");
  }
}

// ---------------------------------------------------------------------
// Role transitions
// ---------------------------------------------------------------------

void Engine::record(obs::Event e) {
  e.node = process_->node().id();
  if (e.unit.empty()) e.unit = config_.unit_name;
  e.at = process_->sim().now();
  event_log_.append(e);  // bounded local copy for the operator
  process_->sim().telemetry().bus().publish(std::move(e));
}

void Engine::enter_role(Role role) {
  if (role_ == role) return;
  OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": ", role_name(role_), " -> ",
                role_name(role), " (incarnation ", incarnation_, ")");
  obs::Event e;
  e.kind = obs::EventKind::kRoleChange;
  e.detail = cat("role ", role_name(role_), " -> ", role_name(role));
  e.a = static_cast<std::uint64_t>(role);
  e.b = incarnation_;
  record(std::move(e));
  role_ = role;
  persist_role_hint();
  set_components_active(role_ == Role::kPrimary);
  announce_role();
  send_status();
}

void Engine::persist_role_hint() {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(role_));
  w.u32(incarnation_);
  sim::DiskStore::of(process_->sim())
      .write(process_->node().id(), "oftt.role." + config_.unit_name, std::move(w).take());
}

void Engine::restore_role_hint() {
  auto blob = sim::DiskStore::of(process_->sim())
                  .read(process_->node().id(), "oftt.role." + config_.unit_name);
  if (!blob) return;
  BinaryReader r(*blob);
  Role stored_role = static_cast<Role>(r.u8());
  std::uint32_t stored_inc = r.u32();
  if (r.failed()) return;
  // Seed the incarnation clock from before the reboot: a former primary
  // must not come back announcing a *stale* incarnation, or its probes
  // would look older than the promoted peer's reign and the negotiation
  // could regress. The role itself is still negotiated fresh — the hint
  // only says what this node last was, not what it is now.
  incarnation_ = std::max(incarnation_, stored_inc);
  role_hint_restored_ = true;
  OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": restored role hint (last ",
                role_name(stored_role), ", incarnation ", stored_inc, ")");
}

void Engine::promote(const std::string& reason) {
  if (role_ == Role::kPrimary) return;
  OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": PROMOTING — ", reason);
  ++takeovers_;
  ctr_takeovers_.inc();
  incarnation_ = std::max(incarnation_, peer_incarnation_) + 1;
  negotiation_resolved_ = true;
  enter_role(Role::kPrimary);
}

void Engine::demote(const std::string& reason) {
  if (role_ == Role::kBackup) return;
  OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": DEMOTING — ", reason);
  enter_role(Role::kBackup);
}

void Engine::set_components_active(bool active) {
  for (auto& [name, c] : components_) {
    send_set_active(c, active);
  }
}

void Engine::send_set_active(const Component& c, bool active) {
  SetActive msg;
  msg.active = active;
  msg.incarnation = incarnation_;
  msg.role = role_;
  process_->send(0, process_->node().id(), c.reg.ftim_port, msg.encode(), kEnginePort);
}

// ---------------------------------------------------------------------
// Detection & recovery
// ---------------------------------------------------------------------

void Engine::tick() {
  sim::SimTime now = process_->sim().now();

  if (config_.cluster_mode()) {
    cluster_tick(now);
    check_components(now);
    return;
  }

  // Peer heartbeat out, on every configured network.
  PeerHeartbeat hb;
  hb.node = process_->node().id();
  hb.role = role_;
  hb.incarnation = incarnation_;
  hb.seq = ++hb_seq_;
  hb.replica_ready = node_replica_ready();
  send_peer(hb.encode());

  // Peer liveness: a backup promotes when the primary's heartbeat is
  // stale on *every* configured network.
  if (role_ == Role::kBackup && negotiation_resolved_ && !peer_visible()) {
    // Open the failover trace: evidence is the last moment the primary
    // was provably alive (freshest heartbeat on any network).
    sim::SimTime evidence = 0;
    for (const auto& [net, last] : peer_last_hb_) evidence = std::max(evidence, last);
    obs::Event fe;
    fe.kind = obs::EventKind::kFailureDetected;
    fe.detail = cat("peer heartbeat timeout (", sim::to_millis(config_.peer_timeout), " ms)");
    fe.a = static_cast<std::uint64_t>(evidence);
    record(std::move(fe));
    promote(cat("peer heartbeat timeout (", sim::to_millis(config_.peer_timeout), " ms)"));
  }

  check_components(now);
}

void Engine::check_components(sim::SimTime now) {
  // Component heartbeats and watchdogs.
  for (auto& [name, c] : components_) {
    if (c.state == ComponentState::kUp && now - c.last_hb > config_.component_timeout) {
      component_failed(c, "heartbeat timeout");
      continue;
    }
    for (auto it = c.watchdogs.begin(); it != c.watchdogs.end();) {
      if (it->second.deadline != sim::kNever && now > it->second.deadline) {
        std::string wd = it->first;
        it = c.watchdogs.erase(it);
        ctr_watchdog_expired_.inc();
        obs::Event we;
        we.kind = obs::EventKind::kWatchdogExpired;
        we.component = c.reg.component;
        we.detail = cat("watchdog '", wd, "' expired");
        record(std::move(we));
        component_failed(c, cat("watchdog '", wd, "' expired"));
        break;  // component_failed may restart the process; stop iterating
      } else {
        ++it;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Cluster mode: membership view, ranked succession, quorum-gated
// promotion
// ---------------------------------------------------------------------

std::set<int> Engine::live_members(sim::SimTime now) const {
  std::set<int> live;
  live.insert(process_->node().id());
  for (int peer : config_.cluster_peers(process_->node().id())) {
    if (swim_) {
      // Suspects count as live: a member is removed from quorum and
      // succession math only once its suspicion timeout expired without
      // refutation (never merely on a missed probe).
      if (swim_->presumed_live(peer)) live.insert(peer);
      continue;
    }
    auto it = member_last_hb_.find(peer);
    if (it != member_last_hb_.end() && now - it->second < config_.peer_timeout) {
      live.insert(peer);
    }
  }
  return live;
}

void Engine::cluster_tick(sim::SimTime now) {
  int self = process_->node().id();

  if (swim_) {
    // One direct probe (plus a scheduled indirect fan-out) instead of
    // the all-to-all heartbeat: per-node send cost is O(1) per period
    // regardless of cluster size.
    swim_tick(now);
  } else {
    // Heartbeat every configured member on every configured network.
    PeerHeartbeat hb;
    hb.node = self;
    hb.role = role_;
    hb.incarnation = incarnation_;
    hb.seq = ++hb_seq_;
    hb.replica_ready = node_replica_ready();
    Buffer hb_payload = hb.encode();
    for (int peer : config_.cluster_peers(self)) send_to_member(peer, hb_payload);
  }

  member_last_hb_[self] = now;
  if (auto* me = view_.find(self)) me->last_heartbeat = now;

  if (role_ == Role::kPrimary) {
    // Fold our liveness observations into the view we own.
    for (auto& m : view_.members) {
      auto it = member_last_hb_.find(m.node);
      if (it != member_last_hb_.end()) {
        m.last_heartbeat = std::max(m.last_heartbeat, it->second);
      }
    }
    // Readmit rebooted members: a dead member heartbeating again (or,
    // under swim, refuting its death certificate with a bumped
    // incarnation) rejoins as a backup at the back of the succession
    // order.
    for (int peer : config_.cluster_peers(self)) {
      const cluster::Member* m = view_.find(peer);
      if (m == nullptr || m->role != cluster::MemberRole::kDead) continue;
      bool back;
      if (swim_) {
        back = swim_->state(peer) == swim::MemberState::kAlive;
      } else {
        auto it = member_last_hb_.find(peer);
        back = it != member_last_hb_.end() && now - it->second < config_.peer_timeout;
      }
      if (back && cluster::SuccessionPlanner::rejoin(view_, peer)) {
        obs::Event e;
        e.kind = obs::EventKind::kViewChange;
        e.detail = cat("member ", peer, " rejoined: ", view_.summary());
        e.a = view_.version;
        e.b = view_.incarnation;
        record(std::move(e));
        // Swim refreshes the view round-robin (one member per tick), so
        // a membership *change* broadcasts once to cut its staleness
        // window from O(N) ticks to one.
        if (swim_) gossip_view();
      }
    }
    // Quorum stepdown: a primary that cannot see a live majority of the
    // configured membership must stop serving (it may be the minority
    // side of a partition while the majority elects a successor).
    if (config_.quorum_stepdown &&
        static_cast<int>(live_members(now).size()) < view_.quorum()) {
      demote(cat("quorum lost: ", live_members(now).size(), " live of ",
                 view_.size(), ", need ", view_.quorum()));
      return;
    }
    if (swim_) {
      // O(1) view refresh: one member per tick, full traversal every N
      // ticks. View *changes* still broadcast at the change site.
      std::vector<int> peers = config_.cluster_peers(self);
      if (!peers.empty()) {
        ViewGossip g;
        g.from_node = self;
        g.unit = config_.unit_name;
        g.view = view_;
        ep_->send(peers[swim_gossip_rr_++ % peers.size()], g.encode());
      }
    } else {
      gossip_view();
    }
    return;
  }

  // Backup / negotiating: watch the primary; campaign when we are the
  // designated successor and the primary is provably stale.
  const cluster::Member* prim = view_.primary();
  if (prim != nullptr) {
    bool primary_ok;
    if (swim_) {
      // Campaign only on a *confirmed* death — a mere suspect may still
      // refute. This is what keeps the false-failover rate at the
      // detector's false-positive rate, not its suspicion rate.
      primary_ok = swim_->presumed_live(prim->node);
    } else {
      auto it = member_last_hb_.find(prim->node);
      sim::SimTime seen = it != member_last_hb_.end() ? it->second : 0;
      // Join grace: a freshly (re)booted engine has heard nothing yet —
      // give the primary one full timeout from our own start.
      seen = std::max(seen, started_at_);
      primary_ok = now - seen < config_.peer_timeout;
    }
    if (primary_ok) {
      if (campaign_.active) campaign_.clear();  // primary is back
      return;
    }
  } else {
    // No primary has ever been elected (startup). Give the other
    // members the startup probe window to boot and be counted before
    // the lowest-ranked live member claims the role.
    if (now - started_at_ < config_.startup_probe_timeout) return;
  }

  std::set<int> live = live_members(now);
  if (campaign_.active) {
    // Retransmit on a fixed cadence; give up after a few rounds so the
    // successor choice can be recomputed against fresh liveness.
    if (now - campaign_.started >=
        2 * config_.heartbeat_period * (campaign_.retries + 1)) {
      if (++campaign_.retries > 4) {
        OFTT_LOG_WARN("oftt/engine", process_->node().name(),
                      ": promotion campaign for incarnation ", campaign_.incarnation,
                      " timed out without quorum");
        campaign_.clear();
      } else {
        send_campaign_requests();
      }
    }
    return;
  }
  // Succession prefers members whose replicas are fresh enough to
  // promote per their policy (piggybacked on peer heartbeats); if no
  // live member qualifies, the planner falls back to plain seniority.
  std::set<int> eligible;
  for (int n : live) {
    if (n == process_->node().id()) {
      if (node_replica_ready()) eligible.insert(n);
      continue;
    }
    auto rit = member_ready_.find(n);
    if (rit == member_ready_.end() || rit->second) eligible.insert(n);
  }
  if (cluster::SuccessionPlanner::successor(view_, live, eligible) !=
      process_->node().id()) {
    return;
  }

  if (prim != nullptr) {
    if (swim_) {
      sim::SimTime evidence =
          std::max(swim_->last_heard(prim->node), started_at_);
      start_campaign(now,
                     cat("primary node ", prim->node,
                         " confirmed dead (swim, incarnation ",
                         swim_->incarnation(prim->node), ")"),
                     evidence, /*had_primary=*/true);
    } else {
      auto it = member_last_hb_.find(prim->node);
      sim::SimTime evidence =
          std::max(it != member_last_hb_.end() ? it->second : 0, started_at_);
      start_campaign(now,
                     cat("primary node ", prim->node, " heartbeat timeout (",
                         sim::to_millis(config_.peer_timeout), " ms)"),
                     evidence, /*had_primary=*/true);
    }
  } else {
    start_campaign(now, "startup election", now, /*had_primary=*/false);
  }
}

void Engine::start_campaign(sim::SimTime now, const std::string& reason,
                            sim::SimTime evidence, bool had_primary) {
  campaign_.clear();
  campaign_.active = true;
  campaign_.incarnation = std::max(incarnation_, view_.incarnation) + 1;
  campaign_.started = now;
  campaign_.reason = reason;
  campaign_.evidence = evidence;
  // Our own ledger entry: we will refuse any rival candidate at this
  // incarnation, which is what makes concurrent candidates mutually
  // exclusive.
  votes_.grant(campaign_.incarnation, process_->node().id());
  if (had_primary) {
    // Open the failover trace. Startup elections record no failure:
    // nothing failed, there is simply no primary yet.
    obs::Event fe;
    fe.kind = obs::EventKind::kFailureDetected;
    fe.detail = reason;
    fe.a = static_cast<std::uint64_t>(evidence);
    record(std::move(fe));
  }
  obs::Event e;
  e.kind = obs::EventKind::kPromotionRequested;
  e.detail = cat("campaigning for incarnation ", campaign_.incarnation, ": ", reason);
  e.a = campaign_.incarnation;
  e.b = static_cast<std::uint64_t>(view_.quorum());
  record(std::move(e));
  send_campaign_requests();
  maybe_promote_on_quorum();  // N=2: our own vote already is a majority
}

void Engine::send_campaign_requests() {
  PromoteRequest req;
  req.candidate = process_->node().id();
  req.unit = config_.unit_name;
  req.incarnation = campaign_.incarnation;
  req.view_version = view_.version;
  req.reason = campaign_.reason;
  Buffer payload = req.encode();
  for (int peer : config_.cluster_peers(process_->node().id())) {
    ep_->send(peer, payload);
  }
}

void Engine::maybe_promote_on_quorum() {
  if (!campaign_.active || campaign_.tally() < view_.quorum()) return;
  sim::SimTime now = process_->sim().now();
  obs::Event e;
  e.kind = obs::EventKind::kPromotionQuorum;
  e.detail = cat("quorum for incarnation ", campaign_.incarnation, ": ", campaign_.tally(),
                 " of ", view_.quorum(), " votes");
  e.a = static_cast<std::uint64_t>(campaign_.tally());
  e.b = static_cast<std::uint64_t>(view_.quorum());
  record(std::move(e));
  std::string reason = campaign_.reason;
  std::uint32_t inc = campaign_.incarnation;
  campaign_.clear();
  cluster::SuccessionPlanner::promote(view_, process_->node().id(), inc, live_members(now));
  incarnation_ = inc;
  negotiation_resolved_ = true;
  ++takeovers_;
  ctr_takeovers_.inc();
  OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": PROMOTING (quorum) — ", reason);
  enter_role(Role::kPrimary);
  gossip_view();
}

void Engine::cluster_handoff(const std::string& reason) {
  sim::SimTime now = process_->sim().now();
  std::set<int> live = live_members(now);
  std::set<int> others = live;
  others.erase(process_->node().id());
  std::set<int> eligible;
  for (int n : others) {
    auto rit = member_ready_.find(n);
    if (rit == member_ready_.end() || rit->second) eligible.insert(n);
  }
  int succ = cluster::SuccessionPlanner::successor(view_, others, eligible);
  if (succ < 0) return;  // callers check peer_visible() first
  // Primary-led view change: no quorum round needed — the incumbent
  // still owns the view and simply publishes its successor.
  obs::Event fe;
  fe.kind = obs::EventKind::kFailureDetected;
  fe.detail = cat("switchover: ", reason);
  fe.a = static_cast<std::uint64_t>(now);
  record(std::move(fe));
  cluster::SuccessionPlanner::promote(view_, succ, incarnation_ + 1, live);
  obs::Event ve;
  ve.kind = obs::EventKind::kViewChange;
  ve.detail = cat("handoff to node ", succ, ": ", view_.summary());
  ve.a = view_.version;
  ve.b = view_.incarnation;
  record(std::move(ve));
  gossip_view();
  demote(cat("switchover: ", reason));
}

void Engine::gossip_view() {
  ViewGossip g;
  g.from_node = process_->node().id();
  g.unit = config_.unit_name;
  g.view = view_;
  Buffer payload = g.encode();
  // Every configured member, dead ones included: a rebooted node
  // resynchronizes its view from this broadcast, no join protocol.
  // Rides the session — the drop-oldest queue sheds superseded views
  // to unreachable members instead of hoarding them.
  for (int peer : config_.cluster_peers(process_->node().id())) {
    ep_->send(peer, payload);
  }
}

void Engine::handle_view_gossip(const ViewGossip& g, sim::SimTime now) {
  member_last_hb_[g.from_node] = now;
  bool changed = view_.merge(g.view);
  if (changed) {
    obs::Event e;
    e.kind = obs::EventKind::kViewChange;
    e.detail = cat("adopted view from node ", g.from_node, ": ", view_.summary());
    e.a = view_.version;
    e.b = view_.incarnation;
    record(std::move(e));
  }
  // A view at or beyond our proposed incarnation means someone already
  // won (or the primary is alive and publishing): stand down.
  if (campaign_.active && view_.incarnation >= campaign_.incarnation) campaign_.clear();

  const cluster::Member* prim = view_.primary();
  if (prim == nullptr) return;
  int self = process_->node().id();
  if (prim->node == self) {
    if (role_ != Role::kPrimary) {
      // Handoff: the incumbent planned our promotion and published it.
      incarnation_ = view_.incarnation;
      negotiation_resolved_ = true;
      ++takeovers_;
      ctr_takeovers_.inc();
      OFTT_LOG_WARN("oftt/engine", process_->node().name(),
                    ": PROMOTING — designated by view ", view_.summary());
      enter_role(Role::kPrimary);
      gossip_view();
    } else {
      incarnation_ = std::max(incarnation_, view_.incarnation);
    }
    return;
  }
  if (role_ == Role::kPrimary && view_.incarnation >= incarnation_) {
    demote(cat("superseded by node ", prim->node, " (incarnation ", view_.incarnation, ")"));
    return;
  }
  if (role_ != Role::kPrimary) {
    incarnation_ = view_.incarnation;
    if (role_ == Role::kNegotiating) {
      negotiation_resolved_ = true;
      enter_role(Role::kBackup);
    }
  }
}

void Engine::handle_promote_request(const sim::Datagram& d, const PromoteRequest& req,
                                    sim::SimTime now) {
  member_last_hb_[req.candidate] = now;
  bool granted = false;
  if (role_ != Role::kPrimary && req.incarnation > view_.incarnation) {
    // Partition safety: refuse while the primary is demonstrably alive
    // to us, even if it looks dead to the candidate.
    const cluster::Member* prim = view_.primary();
    bool primary_fresh = false;
    if (prim != nullptr) {
      if (swim_) {
        // In swim mode "fresh" means undisputed: we hold neither a
        // suspicion nor a confirmation against the primary. Per-member
        // heartbeat recency does not exist (a peer is contacted ~once
        // per N periods), but by the time a candidate has confirmed the
        // death the suspicion has disseminated — honest voters are at
        // least suspecting and therefore grant.
        primary_fresh = swim_->state(prim->node) == swim::MemberState::kAlive;
      } else {
        auto it = member_last_hb_.find(prim->node);
        primary_fresh = it != member_last_hb_.end() &&
                        now - it->second < 2 * config_.heartbeat_period;
      }
    }
    if (!primary_fresh) {
      granted = votes_.grant(req.incarnation, req.candidate);
    }
  }
  if (granted && campaign_.active && req.candidate != process_->node().id() &&
      req.incarnation >= campaign_.incarnation) {
    // We just endorsed a rival at a higher incarnation; our own
    // campaign can no longer win this round.
    campaign_.clear();
  }
  PromoteAck ack;
  ack.voter = process_->node().id();
  ack.candidate = req.candidate;
  ack.incarnation = req.incarnation;
  ack.granted = granted;
  // The vote rides the session back to the candidate: losing a granted
  // ack would stall the election for a full campaign retry.
  ep_->send(d.src_node, ack.encode());
}

void Engine::handle_promote_ack(const PromoteAck& ack) {
  if (!campaign_.active || ack.candidate != process_->node().id() ||
      ack.incarnation != campaign_.incarnation || !ack.granted) {
    return;
  }
  campaign_.votes.insert(ack.voter);
  maybe_promote_on_quorum();
}

// ---------------------------------------------------------------------
// Swim failure detection (cluster mode with detection = kSwim)
// ---------------------------------------------------------------------

sim::SimTime Engine::swim_suspicion_timeout() const {
  if (config_.swim_suspicion_timeout > 0) return config_.swim_suspicion_timeout;
  // Auto: a suspicion needs ~log2(N) piggyback rounds to reach the
  // accused and the refutation needs ~log2(N) to come back, plus slack
  // for probe-timeout phases and loss. Growing with log N (not N) is
  // what keeps failover p99 at N=512 within ~2x of a 9-node cluster.
  int log2n = 1;
  while ((std::size_t{1} << log2n) < config_.cluster_nodes.size()) ++log2n;
  return (2 * log2n + 6) * config_.heartbeat_period;
}

void Engine::swim_tick(sim::SimTime now) {
  int self = process_->node().id();
  std::vector<swim::Transition> trs;
  swim_->tick(now, trs);
  swim_publish(trs, now);

  int target = swim_->next_target(now);
  if (target < 0) return;  // every peer confirmed dead
  SwimProbe p;
  p.from = self;
  p.origin = self;
  p.seq = swim_->probe_seq();
  p.role = role_;
  p.incarnation = incarnation_;
  p.replica_ready = node_replica_ready();
  // piggyback_for: when we hold a suspicion/confirmation against the
  // target itself it leads the batch, so the accused can refute on this
  // very round trip.
  p.updates = swim_->piggyback_for(target);
  send_to_member(target, p.encode());
  ctr_swim_probes_sent_.inc();

  std::uint64_t seq = swim_->probe_seq();
  process_->main_strand().schedule_after(config_.swim_probe_timeout, [this, target, seq] {
    // Only escalate the round we armed for: an ack, a crash-restart or
    // a newer round all void this deadline.
    if (!swim_ || !swim_->probe_outstanding()) return;
    if (swim_->probe_target() != target || swim_->probe_seq() != seq) return;
    SwimPingReq req;
    req.from = process_->node().id();
    req.target = target;
    req.seq = seq;
    req.role = role_;
    req.incarnation = incarnation_;
    req.replica_ready = node_replica_ready();
    for (int proxy : swim_->proxies(target, config_.swim_indirect_probes)) {
      req.updates = swim_->piggyback();
      send_to_member(proxy, req.encode());
      ctr_swim_indirect_.inc();
    }
  });
}

void Engine::swim_publish(const std::vector<swim::Transition>& transitions,
                          sim::SimTime now) {
  (void)now;
  int self = process_->node().id();
  for (const auto& tr : transitions) {
    switch (tr.to) {
      case swim::MemberState::kSuspect: {
        obs::Event e;
        e.kind = obs::EventKind::kSwimSuspect;
        e.detail = cat("suspecting node ", tr.node, " (incarnation ", tr.incarnation, ")");
        e.a = static_cast<std::uint64_t>(tr.node);
        e.b = tr.incarnation;
        record(std::move(e));
        break;
      }
      case swim::MemberState::kDead: {
        obs::Event e;
        e.kind = obs::EventKind::kSwimDeadConfirm;
        e.detail = cat("node ", tr.node, " confirmed dead (incarnation ", tr.incarnation,
                       ", suspected ", sim::to_millis(tr.suspected_for), " ms)");
        e.a = static_cast<std::uint64_t>(tr.node);
        e.b = tr.incarnation;
        record(std::move(e));
        if (tr.from == swim::MemberState::kSuspect) {
          hist_swim_suspicion_ms_.record(sim::to_millis(tr.suspected_for));
        }
        // A death certificate is failover-critical news: burst it to
        // every member now instead of waiting on epidemic luck, so the
        // successor's campaign finds voters already convinced.
        swim_burst(swim::Update{tr.node, tr.incarnation, swim::MemberState::kDead});
        break;
      }
      case swim::MemberState::kAlive: {
        obs::Event e;
        e.kind = obs::EventKind::kSwimRefute;
        e.detail = tr.node == self
                       ? cat("refuting accusation, incarnation now ", tr.incarnation)
                       : cat("node ", tr.node, " refuted ",
                             tr.refuted_death ? "death" : "suspicion",
                             " (incarnation ", tr.incarnation, ")");
        e.a = static_cast<std::uint64_t>(tr.node);
        e.b = tr.incarnation;
        record(std::move(e));
        if (tr.from == swim::MemberState::kSuspect) {
          hist_swim_suspicion_ms_.record(sim::to_millis(tr.suspected_for));
        }
        // A retracted death certificate is a detector false positive
        // (counted at the observers, not at the refuting member).
        if (tr.refuted_death && tr.node != self) ctr_swim_false_positive_.inc();
        // Our own refutation races a pending election: burst it.
        if (tr.node == self) {
          swim_burst(swim::Update{self, tr.incarnation, swim::MemberState::kAlive});
        }
        break;
      }
    }
  }
}

void Engine::swim_burst(const swim::Update& u) {
  int self = process_->node().id();
  SwimProbe p;
  p.from = self;
  p.origin = self;
  p.seq = 0;  // never matches a probe round (round seqs start at 1)
  p.role = role_;
  p.incarnation = incarnation_;
  p.replica_ready = node_replica_ready();
  p.updates.push_back(u);
  Buffer payload = p.encode();
  for (int peer : config_.cluster_peers(self)) send_to_member(peer, payload);
}

void Engine::swim_note_sender(int node, Role sender_role, std::uint32_t inc, bool ready,
                              sim::SimTime now) {
  member_last_hb_[node] = now;
  member_ready_[node] = ready;
  swim_->heard_from(node, now);
  if (role_ == Role::kPrimary && sender_role == Role::kPrimary &&
      node != process_->node().id()) {
    // Dual primary after a healed partition: detection traffic carries
    // the sender's engine role precisely so this arbitration still runs
    // without all-to-all heartbeats — highest incarnation wins, ties go
    // to the lower node id.
    ctr_dual_primary_.inc();
    obs::Event e;
    e.kind = obs::EventKind::kDualPrimary;
    e.detail = cat("dual primary with node ", node, " (peer inc ", inc, ", ours ",
                   incarnation_, ")");
    e.a = static_cast<std::uint64_t>(node);
    e.b = inc;
    record(std::move(e));
    bool peer_wins =
        inc > incarnation_ || (inc == incarnation_ && node < process_->node().id());
    if (peer_wins) demote("dual-primary resolution");
  }
}

void Engine::swim_absorb(const std::vector<swim::Update>& updates, sim::SimTime now) {
  std::vector<swim::Transition> trs;
  for (const auto& u : updates) swim_->absorb(u, now, trs);
  swim_publish(trs, now);
}

void Engine::handle_swim_probe(const sim::Datagram& d, const SwimProbe& p,
                               sim::SimTime now) {
  swim_note_sender(p.from, p.role, p.incarnation, p.replica_ready, now);
  swim_absorb(p.updates, now);
  // Ack to whoever delivered the probe (the origin, or the relaying
  // proxy); the ack's origin field routes it the rest of the way back.
  SwimAck ack;
  ack.from = process_->node().id();
  ack.origin = p.origin;
  ack.seq = p.seq;
  ack.role = role_;
  ack.incarnation = incarnation_;
  ack.replica_ready = node_replica_ready();
  ack.updates = swim_->piggyback_for(d.src_node);
  process_->send(d.network_id, d.src_node, kEnginePort, ack.encode(), kEnginePort);
}

void Engine::handle_swim_ack(const sim::Datagram& d, const SwimAck& a, sim::SimTime now) {
  swim_note_sender(a.from, a.role, a.incarnation, a.replica_ready, now);
  swim_absorb(a.updates, now);
  if (a.origin == process_->node().id()) {
    bool closes_round = swim_->probe_outstanding() && swim_->probe_target() == a.from &&
                        swim_->probe_seq() == a.seq;
    swim_->on_ack(a.from, a.seq, now);
    if (closes_round) ctr_swim_probes_acked_.inc();
    return;
  }
  // We proxied this round: forward the target's ack verbatim to the
  // origin whose probe it answers.
  process_->send(d.network_id, a.origin, kEnginePort, d.payload, kEnginePort);
}

void Engine::handle_swim_ping_req(const sim::Datagram& d, const SwimPingReq& req,
                                  sim::SimTime now) {
  swim_note_sender(req.from, req.role, req.incarnation, req.replica_ready, now);
  swim_absorb(req.updates, now);
  int self = process_->node().id();
  if (req.target == self) {
    // Degenerate (a confused origin asking us to probe ourselves):
    // answer the round directly.
    SwimAck ack;
    ack.from = self;
    ack.origin = req.from;
    ack.seq = req.seq;
    ack.role = role_;
    ack.incarnation = incarnation_;
    ack.replica_ready = node_replica_ready();
    ack.updates = swim_->piggyback_for(d.src_node);
    process_->send(d.network_id, d.src_node, kEnginePort, ack.encode(), kEnginePort);
    return;
  }
  // Relay: probe the target on the origin's behalf, keeping the
  // origin's round identity so its detector can match the ack.
  SwimProbe p;
  p.from = self;
  p.origin = req.from;
  p.seq = req.seq;
  p.role = role_;
  p.incarnation = incarnation_;
  p.replica_ready = node_replica_ready();
  p.updates = swim_->piggyback_for(req.target);
  send_to_member(req.target, p.encode());
}

void Engine::component_failed(Component& c, const std::string& why) {
  OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": component '", c.reg.component,
                "' FAILED: ", why);
  ctr_component_failures_.inc();
  obs::Event e;
  e.kind = obs::EventKind::kComponentFailed;
  e.component = c.reg.component;
  e.detail = cat("component '", c.reg.component, "' failed: ", why);
  record(std::move(e));
  c.state = ComponentState::kFailed;
  send_status();

  int max_restarts = c.reg.max_local_restarts >= 0 ? c.reg.max_local_restarts
                                                   : config_.default_rule.max_local_restarts;
  bool switchover = c.reg.switchover_on_permanent >= 0
                        ? c.reg.switchover_on_permanent != 0
                        : config_.default_rule.switchover_on_permanent;

  if (c.restarts < max_restarts) {
    // Transient-fault provision: local restart.
    restart_component(c);
    return;
  }
  // Permanent fault.
  if (switchover && role_ == Role::kPrimary && peer_visible()) {
    do_switchover(cat("component '", c.reg.component, "' permanent failure"));
    // Restore redundancy: bring the app back (passively) on this node.
    c.restarts = 0;
    restart_component(c);
  } else {
    // No healthy peer (or rule says stay): keep trying locally.
    restart_component(c);
  }
}

void Engine::restart_component(Component& c) {
  c.state = ComponentState::kRestarting;
  ++c.restarts;
  ctr_local_restarts_.inc();
  sim::Node& node = process_->node();
  OFTT_LOG_INFO("oftt/engine", node.name(), ": restarting process '", c.reg.process_name, "'");
  obs::Event e;
  e.kind = obs::EventKind::kComponentRestart;
  e.component = c.reg.component;
  e.detail = cat("local restart #", c.restarts, " of '", c.reg.component, "'");
  e.a = static_cast<std::uint64_t>(c.restarts);
  record(std::move(e));
  // Grace so the fresh instance has time to register and heartbeat.
  c.last_hb = process_->sim().now() + config_.component_timeout;
  c.watchdogs.clear();
  node.restart_process(c.reg.process_name);
}

void Engine::do_switchover(const std::string& reason) {
  if (config_.cluster_mode()) {
    cluster_handoff(reason);
    return;
  }
  // A deliberate transfer of control still opens a failover trace: the
  // "evidence" and the decision coincide (detection phase is zero), and
  // the peer's promotion / activation / reroute milestones follow.
  obs::Event fe;
  fe.kind = obs::EventKind::kFailureDetected;
  fe.detail = cat("switchover: ", reason);
  fe.a = static_cast<std::uint64_t>(process_->sim().now());
  record(std::move(fe));
  Takeover t;
  t.from_node = process_->node().id();
  t.incarnation = incarnation_;
  t.reason = reason;
  send_peer(t.encode());
  demote(cat("switchover: ", reason));
}

HRESULT Engine::set_recovery_rule(const std::string& component, int max_local_restarts,
                                  int switchover_on_permanent) {
  auto it = components_.find(component);
  if (it == components_.end()) return E_INVALIDARG;
  it->second.reg.max_local_restarts = max_local_restarts;
  it->second.reg.switchover_on_permanent = switchover_on_permanent;
  it->second.rule_overridden = true;
  // A relaxed rule also forgives past restarts, so the fresh budget
  // applies from now.
  it->second.restarts = 0;
  OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": recovery rule for '", component,
                "' now restarts=", max_local_restarts,
                " switchover=", switchover_on_permanent);
  return S_OK;
}

HRESULT Engine::request_switchover(const std::string& reason) {
  if (role_ != Role::kPrimary) return OFTT_E_NOT_PRIMARY;
  if (!peer_visible()) return OFTT_E_NO_PEER;
  do_switchover(cat("operator request: ", reason));
  return S_OK;
}

// ---------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------

void Engine::send_peer(const Buffer& payload) {
  if (config_.peer_node < 0) return;
  for (int net : config_.networks) {
    process_->send(net, config_.peer_node, kEnginePort, payload, kEnginePort);
  }
}

void Engine::send_to_member(int node, const Buffer& payload) {
  for (int net : config_.networks) {
    process_->send(net, node, kEnginePort, payload, kEnginePort);
  }
}

void Engine::send_status() {
  if (config_.monitor_node < 0) return;
  StatusReport sr;
  sr.unit = config_.unit_name;
  sr.node = process_->node().id();
  sr.role = role_;
  sr.incarnation = incarnation_;
  sr.peer_visible = peer_visible();
  if (config_.cluster_mode()) sr.view = view_;
  if (swim_) {
    // Our per-member verdicts (self included) for the monitor's board.
    for (int n : config_.cluster_nodes) {
      sr.swim_members.push_back(swim::Update{n, swim_->incarnation(n), swim_->state(n)});
    }
  }
  for (const auto& [name, c] : components_) {
    sr.components.push_back(ComponentStatus{c.reg.component, c.state, c.restarts,
                                            c.heartbeats, c.policy, c.replica_ready});
  }
  int net = sim::pick_network(process_->sim(), process_->node().id(), config_.monitor_node);
  if (net < 0) return;
  process_->send(net, config_.monitor_node, kMonitorPort, sr.encode(), kEnginePort);
}

void Engine::announce_role() {
  RoleAnnounce ra;
  ra.unit = config_.unit_name;
  ra.node = process_->node().id();
  ra.role = role_;
  ra.incarnation = incarnation_;
  Buffer payload = ra.encode();
  for (const auto& [node, port] : role_subscribers_) {
    int net = sim::pick_network(process_->sim(), process_->node().id(), node);
    if (net < 0) continue;
    process_->send(net, node, port, payload, kEnginePort);
  }
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

void Engine::on_datagram(const sim::Datagram& d) {
  // Session frames (cluster gossip / promotion) are consumed by the
  // endpoint and re-delivered through dispatch(); everything else —
  // heartbeats, probes, FTIM loopback — is raw by design.
  if (ep_ && ep_->handle(d)) return;
  dispatch(d);
}

void Engine::dispatch(const sim::Datagram& d) {
  sim::SimTime now = process_->sim().now();
  switch (static_cast<MsgKind>(wire_kind(d.payload))) {
    case MsgKind::kProbe: {
      Probe p;
      if (!Probe::decode(d.payload, p, false)) return;
      Probe reply;
      reply.node = process_->node().id();
      reply.boot_count = process_->node().boot_count();
      reply.incarnation = incarnation_;
      reply.role = role_;
      process_->send(d.network_id, d.src_node, kEnginePort, reply.encode(true), kEnginePort);
      if (role_ == Role::kNegotiating) resolve_with_peer(p.role, p.incarnation, p.node);
      break;
    }
    case MsgKind::kProbeReply: {
      Probe p;
      if (!Probe::decode(d.payload, p, true)) return;
      if (role_ == Role::kNegotiating) resolve_with_peer(p.role, p.incarnation, p.node);
      break;
    }
    case MsgKind::kPeerHeartbeat: {
      PeerHeartbeat hb;
      if (!PeerHeartbeat::decode(d.payload, hb)) return;
      if (config_.cluster_mode()) {
        if (!view_.knows(hb.node)) return;  // not a configured member
        member_last_hb_[hb.node] = now;
        member_ready_[hb.node] = hb.replica_ready;
        if (role_ == Role::kPrimary && hb.role == Role::kPrimary) {
          // Dual primary after a healed partition: same arbitration as
          // the pair protocol — highest incarnation wins, ties go to
          // the lower node id.
          ctr_dual_primary_.inc();
          obs::Event e;
          e.kind = obs::EventKind::kDualPrimary;
          e.detail = cat("dual primary with node ", hb.node, " (peer inc ", hb.incarnation,
                         ", ours ", incarnation_, ")");
          e.a = static_cast<std::uint64_t>(hb.node);
          e.b = hb.incarnation;
          record(std::move(e));
          bool peer_wins = hb.incarnation > incarnation_ ||
                           (hb.incarnation == incarnation_ &&
                            hb.node < process_->node().id());
          if (peer_wins) demote("dual-primary resolution");
        }
        break;
      }
      peer_last_hb_[d.network_id] = now;
      peer_role_ = hb.role;
      peer_incarnation_ = hb.incarnation;
      member_ready_[hb.node] = hb.replica_ready;
      if (role_ == Role::kNegotiating &&
          (hb.role == Role::kPrimary || hb.role == Role::kBackup)) {
        resolve_with_peer(hb.role, hb.incarnation, hb.node);
      } else if (role_ == Role::kPrimary && hb.role == Role::kPrimary) {
        // Dual primary (e.g. healed partition): highest incarnation
        // wins; ties go to the lower node id.
        ctr_dual_primary_.inc();
        obs::Event e;
        e.kind = obs::EventKind::kDualPrimary;
        e.detail = cat("dual primary with node ", hb.node, " (peer inc ", hb.incarnation,
                       ", ours ", incarnation_, ")");
        e.a = static_cast<std::uint64_t>(hb.node);
        e.b = hb.incarnation;
        record(std::move(e));
        bool peer_wins = hb.incarnation > incarnation_ ||
                         (hb.incarnation == incarnation_ &&
                          hb.node < process_->node().id());
        if (peer_wins) {
          demote("dual-primary resolution");
        }
      }
      break;
    }
    case MsgKind::kTakeover: {
      Takeover t;
      if (!Takeover::decode(d.payload, t)) return;
      if (config_.cluster_mode()) break;  // cluster handoff goes via view gossip
      peer_incarnation_ = t.incarnation;
      if (role_ != Role::kPrimary) {
        promote(cat("takeover handoff: ", t.reason));
      }
      break;
    }
    case MsgKind::kViewGossip: {
      ViewGossip g;
      if (!ViewGossip::decode(d.payload, g)) return;
      if (!config_.cluster_mode() || !view_.knows(g.from_node)) return;
      handle_view_gossip(g, now);
      break;
    }
    case MsgKind::kPromoteRequest: {
      PromoteRequest req;
      if (!PromoteRequest::decode(d.payload, req)) return;
      if (!config_.cluster_mode() || !view_.knows(req.candidate)) return;
      handle_promote_request(d, req, now);
      break;
    }
    case MsgKind::kPromoteAck: {
      PromoteAck ack;
      if (!PromoteAck::decode(d.payload, ack)) return;
      if (!config_.cluster_mode() || !view_.knows(ack.voter)) return;
      member_last_hb_[ack.voter] = now;
      handle_promote_ack(ack);
      break;
    }
    case MsgKind::kSwimProbe: {
      SwimProbe p;
      if (!SwimProbe::decode(d.payload, p)) return;
      if (!swim_ || !view_.knows(p.from) || !view_.knows(p.origin)) return;
      handle_swim_probe(d, p, now);
      break;
    }
    case MsgKind::kSwimAck: {
      SwimAck a;
      if (!SwimAck::decode(d.payload, a)) return;
      if (!swim_ || !view_.knows(a.from) || !view_.knows(a.origin)) return;
      handle_swim_ack(d, a, now);
      break;
    }
    case MsgKind::kSwimPingReq: {
      SwimPingReq req;
      if (!SwimPingReq::decode(d.payload, req)) return;
      if (!swim_ || !view_.knows(req.from) || !view_.knows(req.target)) return;
      handle_swim_ping_req(d, req, now);
      break;
    }
    case MsgKind::kFtRegister: {
      FtRegister reg;
      if (!FtRegister::decode(d.payload, reg)) return;
      auto it = components_.find(reg.component);
      if (it == components_.end()) {
        Component c;
        c.reg = reg;
        c.last_hb = now;
        components_.emplace(reg.component, std::move(c));
        OFTT_LOG_INFO("oftt/engine", process_->node().name(), ": registered component '",
                      reg.component, "' (", reg.process_name, ")");
      } else {
        if (it->second.rule_overridden) {
          // Keep the dynamic rule over the registrant's static one.
          reg.max_local_restarts = it->second.reg.max_local_restarts;
          reg.switchover_on_permanent = it->second.reg.switchover_on_permanent;
        }
        it->second.reg = reg;
        it->second.last_hb = now;
        if (it->second.state != ComponentState::kUp) {
          it->second.state = ComponentState::kUp;
        }
      }
      // A still-active component means this node was the live primary
      // before an engine restart: adopt that, don't renegotiate over
      // running state.
      if (role_ == Role::kNegotiating && reg.currently_active) {
        incarnation_ = std::max(incarnation_, reg.incarnation);
        negotiation_resolved_ = true;
        OFTT_LOG_INFO("oftt/engine", process_->node().name(),
                      ": adopting live PRIMARY role from active component '",
                      reg.component, "'");
        enter_role(Role::kPrimary);
      }
      // Tell the (re)registered FTIM its role immediately.
      send_set_active(components_.at(reg.component), role_ == Role::kPrimary);
      break;
    }
    case MsgKind::kFtHeartbeat: {
      FtHeartbeat hb;
      if (!FtHeartbeat::decode(d.payload, hb)) return;
      auto it = components_.find(hb.component);
      if (it == components_.end()) return;
      it->second.last_hb = now;
      ++it->second.heartbeats;
      it->second.policy = hb.policy;
      it->second.replica_ready = hb.ready;
      it->second.last_applied_at = hb.applied_at;
      if (it->second.state == ComponentState::kRestarting ||
          it->second.state == ComponentState::kSuspect) {
        it->second.state = ComponentState::kUp;
      }
      break;
    }
    case MsgKind::kFtDistress: {
      FtDistress distress;
      if (!FtDistress::decode(d.payload, distress)) return;
      OFTT_LOG_WARN("oftt/engine", process_->node().name(), ": DISTRESS from '",
                    distress.component, "': ", distress.reason);
      ctr_distress_.inc();
      obs::Event e;
      e.kind = obs::EventKind::kDistress;
      e.component = distress.component;
      e.detail = cat("distress from '", distress.component, "': ", distress.reason);
      record(std::move(e));
      if (role_ == Role::kPrimary && peer_visible()) {
        do_switchover(cat("distress from '", distress.component, "': ", distress.reason));
      }
      break;
    }
    case MsgKind::kWatchdogCreate:
    case MsgKind::kWatchdogReset:
    case MsgKind::kWatchdogDelete: {
      WatchdogMsg wd;
      if (!WatchdogMsg::decode(d.payload, wd)) return;
      auto it = components_.find(wd.component);
      if (it == components_.end()) return;
      if (wd.op == MsgKind::kWatchdogDelete) {
        it->second.watchdogs.erase(wd.watchdog);
      } else {
        WatchdogState& state = it->second.watchdogs[wd.watchdog];
        if (wd.timeout > 0) state.period = wd.timeout;
        // Create with no timeout leaves the watchdog unarmed; Set/Reset
        // (re)arm using the explicit or remembered period.
        state.deadline = state.period > 0 ? now + state.period : sim::kNever;
        if (wd.op == MsgKind::kWatchdogCreate && wd.timeout <= 0) {
          state.deadline = sim::kNever;
        }
      }
      break;
    }
    case MsgKind::kSetRule: {
      SetRule rule;
      if (!SetRule::decode(d.payload, rule)) return;
      set_recovery_rule(rule.component, rule.max_local_restarts,
                        rule.switchover_on_permanent);
      break;
    }
    case MsgKind::kSubscribeRoles: {
      SubscribeRoles sub;
      if (!SubscribeRoles::decode(d.payload, sub)) return;
      role_subscribers_.insert({sub.subscriber_node, sub.subscriber_port});
      // Answer immediately so the diverter learns the current role.
      RoleAnnounce ra;
      ra.unit = config_.unit_name;
      ra.node = process_->node().id();
      ra.role = role_;
      ra.incarnation = incarnation_;
      int net = sim::pick_network(process_->sim(), process_->node().id(), sub.subscriber_node);
      if (net >= 0) {
        process_->send(net, sub.subscriber_node, sub.subscriber_port, ra.encode(), kEnginePort);
      }
      break;
    }
    default:
      ctr_bad_packet_.inc();
      break;
  }
}

}  // namespace oftt::core
