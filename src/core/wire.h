// OFTT control-plane wire messages.
//
// Three conversations share the engine port, distinguished by kind:
//   engine <-> engine  (peer probes, heartbeats, takeover handoff)
//   FTIM   <-> engine  (registration, component heartbeats, distress,
//                       watchdog management; loopback only)
//   diverter/monitor <-> engine (role subscription, status reports)
// Checkpoints flow FTIM -> peer FTIM on the FTIM port directly (Fig. 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "common/bytes.h"
#include "core/config.h"
#include "swim/swim.h"

namespace oftt::core {

enum class MsgKind : std::uint8_t {
  // engine <-> engine
  kProbe = 1,
  kProbeReply = 2,
  kPeerHeartbeat = 3,
  kTakeover = 4,
  // FTIM -> engine (loopback)
  kFtRegister = 10,
  kFtHeartbeat = 11,
  kFtDistress = 12,
  kWatchdogCreate = 13,
  kWatchdogReset = 14,
  kWatchdogDelete = 15,
  kSetRule = 16,
  // engine -> FTIM (loopback)
  kSetActive = 20,
  kEngineHello = 21,
  // engine -> monitor / diverter
  kStatusReport = 30,
  kRoleAnnounce = 31,
  // diverter -> engine
  kSubscribeRoles = 32,
  // FTIM -> FTIM (all of it rides transport::Endpoint sessions, which
  // provide ordering, retransmission and the ack watermark; 41/43 were
  // kCheckpointAck/kCheckpointBatch before the session layer subsumed
  // per-checkpoint acks and the one-frame batch workaround)
  kCheckpoint = 40,
  kCheckpointNack = 41,
  kCheckpointPull = 42,
  /// Semi-active: leader -> follower ordering decision (LLFT-style).
  kDecision = 43,
  /// Replication-policy switch announcement (active FTIM -> replicas).
  kPolicySwitch = 44,
  // engine <-> engine, cluster mode (N-replica role management)
  kViewGossip = 50,
  kPromoteRequest = 51,
  kPromoteAck = 52,
  // engine <-> engine, SWIM failure detection (cluster mode with
  // detection = kSwim). Raw datagrams like the heartbeats they replace:
  // detection must feel loss (DESIGN §5.7), so none of these ride the
  // session layer. Values stay clear of transport's 0xD1/0xD2 frames.
  kSwimProbe = 60,
  kSwimAck = 61,
  kSwimPingReq = 62,
};

/// Version tag carried by the cluster messages so mixed-version
/// clusters fail closed: a decoder that sees an unknown version rejects
/// the frame instead of misparsing it.
inline constexpr std::uint8_t kClusterWireVersion = 1;

std::uint8_t wire_kind(const Buffer& payload);

struct Probe {
  int node = -1;
  int boot_count = 0;
  std::uint32_t incarnation = 0;
  Role role = Role::kUnknown;
  Buffer encode(bool reply) const;
  static bool decode(const Buffer& b, Probe& out, bool reply);
};

struct PeerHeartbeat {
  int node = -1;
  Role role = Role::kUnknown;
  std::uint32_t incarnation = 0;
  std::uint64_t seq = 0;
  /// Every local replica is fresh enough (per its policy's staleness
  /// bound) to take over. Succession prefers ready nodes.
  bool replica_ready = true;
  Buffer encode() const;
  static bool decode(const Buffer& b, PeerHeartbeat& out);
};

struct Takeover {
  int from_node = -1;
  std::uint32_t incarnation = 0;
  std::string reason;
  Buffer encode() const;
  static bool decode(const Buffer& b, Takeover& out);
};

enum class FtimKind : std::uint8_t { kOpcClient = 0, kOpcServer = 1 };

struct FtRegister {
  std::string component;     // logical component name
  std::string process_name;  // for engine-driven restart
  std::string ftim_port;
  FtimKind kind = FtimKind::kOpcClient;
  int max_local_restarts = -1;       // -1: use engine default rule
  int switchover_on_permanent = -1;  // tri-state: -1 default, 0 no, 1 yes
  /// Set on re-registration: lets a freshly restarted engine adopt the
  /// node's live role instead of renegotiating over running state.
  bool currently_active = false;
  std::uint32_t incarnation = 0;
  Buffer encode() const;
  static bool decode(const Buffer& b, FtRegister& out);
};

struct FtHeartbeat {
  std::string component;
  std::uint64_t seq = 0;
  /// Active replication policy, so the engine can aggregate per-node
  /// promotion readiness and the monitor can render it.
  ReplicationMode policy = ReplicationMode::kColdPassive;
  /// Promotion readiness per the policy's staleness bound (always true
  /// on the active side and under cold-passive).
  bool ready = true;
  /// When the newest replica state this FTIM holds was applied (sim
  /// time; 0 = nothing applied yet).
  sim::SimTime applied_at = 0;
  Buffer encode() const;
  static bool decode(const Buffer& b, FtHeartbeat& out);
};

struct FtDistress {
  std::string component;
  std::string reason;
  Buffer encode() const;
  static bool decode(const Buffer& b, FtDistress& out);
};

struct WatchdogMsg {
  MsgKind op = MsgKind::kWatchdogCreate;
  std::string component;
  std::string watchdog;
  sim::SimTime timeout = 0;  // create/reset
  Buffer encode() const;
  static bool decode(const Buffer& b, WatchdogMsg& out);
};

/// Run-time recovery-rule update — the paper's stated extension ("An
/// application that uses the OFTT can explicitly specify the recovery
/// rule either statically at compilation time or dynamically at
/// run-time. The current implementation only supports static
/// decision."); this implementation supports both.
struct SetRule {
  std::string component;
  int max_local_restarts = -1;
  int switchover_on_permanent = -1;
  Buffer encode() const;
  static bool decode(const Buffer& b, SetRule& out);
};

struct SetActive {
  bool active = false;
  std::uint32_t incarnation = 0;
  Role role = Role::kUnknown;
  Buffer encode() const;
  static bool decode(const Buffer& b, SetActive& out);
};

struct EngineHello {
  int node = -1;
  Buffer encode() const;
  static bool decode(const Buffer& b, EngineHello& out);
};

enum class ComponentState : std::uint8_t {
  kUp = 0,
  kSuspect = 1,
  kFailed = 2,
  kRestarting = 3,
};
const char* component_state_name(ComponentState s);

struct ComponentStatus {
  std::string name;
  ComponentState state = ComponentState::kUp;
  int restarts = 0;
  std::uint64_t heartbeats = 0;
  ReplicationMode policy = ReplicationMode::kColdPassive;
  bool ready = true;
};

struct StatusReport {
  std::string unit;
  int node = -1;
  Role role = Role::kUnknown;
  std::uint32_t incarnation = 0;
  bool peer_visible = false;
  std::vector<ComponentStatus> components;
  /// Cluster mode only: the reporter's membership view (empty members
  /// list in pair mode — the monitor falls back to the pair rendering).
  cluster::MembershipView view;
  /// Swim detection only: this reporter's per-member verdicts (alive /
  /// suspect / dead with incarnation numbers) — what the monitor's swim
  /// board renders. Empty under legacy gossip detection.
  std::vector<swim::Update> swim_members;
  Buffer encode() const;
  static bool decode(const Buffer& b, StatusReport& out);
};

struct RoleAnnounce {
  std::string unit;
  int node = -1;
  Role role = Role::kUnknown;
  std::uint32_t incarnation = 0;
  Buffer encode() const;
  static bool decode(const Buffer& b, RoleAnnounce& out);
};

struct SubscribeRoles {
  int subscriber_node = -1;
  std::string subscriber_port;
  Buffer encode() const;
  static bool decode(const Buffer& b, SubscribeRoles& out);
};

/// The primary's periodic membership broadcast (cluster mode). Sent to
/// every configured member — including ones marked dead, so a rebooted
/// node resynchronizes its view without a separate join protocol.
struct ViewGossip {
  int from_node = -1;
  std::string unit;
  cluster::MembershipView view;
  Buffer encode() const;
  static bool decode(const Buffer& b, ViewGossip& out);
};

/// A backup that believes the primary failed asks the surviving members
/// to ack its promotion at `incarnation` (see cluster/quorum.h).
struct PromoteRequest {
  int candidate = -1;
  std::string unit;
  std::uint32_t incarnation = 0;   // proposed (current + 1)
  std::uint64_t view_version = 0;  // candidate's view when it decided
  std::string reason;
  Buffer encode() const;
  static bool decode(const Buffer& b, PromoteRequest& out);
};

/// Voter's reply. `granted` is false when the voter still sees a live
/// primary or already voted for a different candidate this incarnation.
struct PromoteAck {
  int voter = -1;
  int candidate = -1;
  std::uint32_t incarnation = 0;
  bool granted = false;
  Buffer encode() const;
  static bool decode(const Buffer& b, PromoteAck& out);
};

/// Semi-active ordering decision (leader -> followers, over the same
/// FTIM session as checkpoints but on its own traffic class). Followers
/// apply decisions in seq order through the application's registered
/// decision handler; a gap means a lost leader epoch and triggers a
/// full-checkpoint resync.
struct DecisionMsg {
  std::string component;
  std::uint64_t seq = 0;
  sim::SimTime decided_at = 0;
  Buffer payload;
  Buffer encode() const;
  static bool decode(const Buffer& b, DecisionMsg& out);
};

/// Live policy switch: the active FTIM tells its replicas which policy
/// governs the stream from (incarnation, at_seq) onward so both sides
/// change discipline at the same point in the checkpoint sequence.
struct PolicySwitchMsg {
  std::string component;
  ReplicationMode to = ReplicationMode::kColdPassive;
  std::uint32_t incarnation = 0;
  std::uint64_t at_seq = 0;        // checkpoint seq the switch takes effect at
  std::uint64_t decision_seq = 0;  // decision-log watermark at the switch
  std::string reason;
  Buffer encode() const;
  static bool decode(const Buffer& b, PolicySwitchMsg& out);
};

/// SWIM direct probe (origin -> target, or proxy -> target on behalf of
/// origin). The target acks to whoever delivered the probe; the ack's
/// `origin` routes it back to the member whose probe round it answers.
/// Every swim frame carries the sender's engine role/incarnation
/// (dual-primary arbitration rides detection traffic — there are no
/// all-to-all heartbeats in swim mode to carry it) plus the bounded,
/// freshness-prioritized piggyback batch that disseminates membership.
struct SwimProbe {
  int from = -1;    // sending member (prober, or the relaying proxy)
  int origin = -1;  // member whose probe round this is
  std::uint64_t seq = 0;
  Role role = Role::kUnknown;          // sender's engine role
  std::uint32_t incarnation = 0;       // sender's engine incarnation
  bool replica_ready = true;
  std::vector<swim::Update> updates;
  Buffer encode() const;
  static bool decode(const Buffer& b, SwimProbe& out);
};

/// Probe acknowledgement. `from` is the acking member (the probed
/// target); a proxy that receives an ack whose origin is not itself
/// forwards the frame verbatim to `origin`.
struct SwimAck {
  int from = -1;
  int origin = -1;
  std::uint64_t seq = 0;
  Role role = Role::kUnknown;
  std::uint32_t incarnation = 0;
  bool replica_ready = true;
  std::vector<swim::Update> updates;
  Buffer encode() const;
  static bool decode(const Buffer& b, SwimAck& out);
};

/// Indirect-probe request (origin -> proxy): "probe `target` for me".
/// Sent to k random proxies when the direct probe misses its ack — the
/// k extra paths separate a dead member from a lossy or one-way link.
struct SwimPingReq {
  int from = -1;    // the origin asking for help
  int target = -1;  // the member to probe
  std::uint64_t seq = 0;
  Role role = Role::kUnknown;
  std::uint32_t incarnation = 0;
  bool replica_ready = true;
  std::vector<swim::Update> updates;
  Buffer encode() const;
  static bool decode(const Buffer& b, SwimPingReq& out);
};

/// Checkpoint frame: kind byte + component + image blob.
Buffer encode_checkpoint(const std::string& component, const Buffer& image);
bool decode_checkpoint(const Buffer& b, std::string& component, Buffer& image);

/// Delta nack: a backup received a delta it cannot apply from its
/// current state (sequence gap ahead of what it holds, or a newer
/// incarnation it has no base for) and needs a self-contained image to
/// resync. Per-checkpoint *acks* no longer exist on the wire — the
/// transport session's ack watermark carries replication progress.
Buffer encode_checkpoint_nack(const std::string& component, std::uint64_t have_seq);
bool decode_checkpoint_nack(const Buffer& b, std::string& component,
                            std::uint64_t& have_seq);

/// Cold-restart resync request (FTIM -> primary FTIM): "I recovered my
/// local journal up to (have_incarnation, have_seq) — send me what I'm
/// missing." The primary replies with the chained delta suffix as
/// individual session frames (the session keeps them in order) when the
/// requester's state is a valid base, or broadcasts a fresh full image
/// otherwise.
struct CheckpointPull {
  std::string component;
  std::uint64_t have_seq = 0;
  std::uint32_t have_incarnation = 0;
  int from_node = -1;
  Buffer encode() const;
  static bool decode(const Buffer& b, CheckpointPull& out);
};

}  // namespace oftt::core
