// PairDeployment: assembles the paper's reference configuration —
// a redundant node pair (one or dual Ethernet, Fig. 1) plus the
// test-and-interface PC running the System Monitor (Fig. 3 / Table 1).
//
// Each pair node boots: SCM (DCOM activation), the MSMQ queue manager,
// the OFTT engine, and the application process (whose factory the
// caller provides; the application calls OFTTInitialize itself, as a
// real OFTT application would). Reboot re-runs the same script.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/diverter.h"
#include "core/engine.h"
#include "core/ftim.h"
#include "core/monitor.h"
#include "dcom/scm.h"
#include "msmq/queue_manager.h"
#include "sim/simulation.h"

namespace oftt::core {

struct PairDeploymentOptions {
  std::string unit = "unit";
  std::string app_process = "app";
  /// Creates the application inside its process (both nodes run the
  /// same image). Null for engine-only deployments.
  std::function<void(sim::Process&)> app_factory;

  /// Engine timing/policy knobs; peer/monitor/unit fields are filled in
  /// per node by the deployment. The heartbeat tuning knobs that matter
  /// for failover behaviour:
  ///   engine.heartbeat_period   how often engines heartbeat each other
  ///                             and FTIMs heartbeat their engine
  ///   engine.peer_timeout       staleness after which the backup
  ///                             declares the primary dead (must be
  ///                             >= heartbeat_period, typically 3-5x —
  ///                             below ~2x a single delayed heartbeat
  ///                             triggers a spurious failover)
  ///   engine.component_timeout  staleness after which the engine
  ///                             declares a local component failed
  /// The deployment constructor rejects nonsensical combinations
  /// (zero/negative periods, timeout shorter than the period) with
  /// std::invalid_argument rather than simulating a config that can
  /// only misbehave.
  OfttConfig engine;

  bool dual_network = false;
  sim::SimTime net_latency_min = sim::microseconds(100);
  sim::SimTime net_latency_max = sim::microseconds(300);
  double net_loss = 0.0;

  bool with_msmq = true;
  bool with_scm = true;
  bool with_monitor = true;
  /// Opt-in: run a Message Diverter on the test PC, routing
  /// `diverter_queue` to the unit's current primary. Off by default
  /// because it needs with_msmq and adds a process to every
  /// deployment; turn it on when external senders must keep reaching
  /// the unit across failovers, or when a test/bench needs the full
  /// failover timeline — the replay phase (detection -> ... -> diverter
  /// reroute) only completes with a diverter deployed.
  bool with_diverter = false;
  std::string diverter_queue = "unit.q";
  /// Skew node B's boot by this much after node A (both at 0 = together).
  sim::SimTime node_b_boot_delay = 0;
  bool autostart = true;  // boot the pair immediately
};

namespace detail {
/// Shared sanity checks for deployment options. A zero heartbeat
/// period would spin the engine timer at the scheduler's resolution; a
/// timeout below the period can never see a heartbeat before expiring.
inline void validate_engine_timing(const OfttConfig& engine, double net_loss) {
  if (engine.heartbeat_period <= 0) {
    throw std::invalid_argument(
        cat("deployment: engine.heartbeat_period must be > 0 (got ",
            engine.heartbeat_period, " ns)"));
  }
  if (engine.peer_timeout < engine.heartbeat_period) {
    throw std::invalid_argument(
        cat("deployment: engine.peer_timeout (", engine.peer_timeout,
            " ns) must be >= heartbeat_period (", engine.heartbeat_period,
            " ns) — the backup would declare the primary dead between heartbeats"));
  }
  if (engine.component_timeout <= 0) {
    throw std::invalid_argument(
        cat("deployment: engine.component_timeout must be > 0 (got ",
            engine.component_timeout, " ns)"));
  }
  if (engine.status_report_period <= 0) {
    throw std::invalid_argument("deployment: engine.status_report_period must be > 0");
  }
  if (net_loss < 0.0 || net_loss > 1.0) {
    throw std::invalid_argument(
        cat("deployment: net_loss must be within [0, 1] (got ", net_loss, ")"));
  }
}

/// Replication-knob sanity for a deployment. The per-FTIM combinations
/// (delta periods, dirty-range tracking, governor windows) are checked
/// by validate_ftim_options when the FTIM is built; this catches the
/// deployment-shape mistakes that would otherwise only surface as a
/// silently-cold pair.
inline void validate_replication(const OfttConfig& engine, bool has_app) {
  const auto mode = static_cast<int>(engine.replication);
  if (mode < 0 || mode > static_cast<int>(ReplicationMode::kSemiActive)) {
    throw std::invalid_argument(
        cat("deployment: unknown replication mode (", mode, ")"));
  }
  if (engine.replication != ReplicationMode::kColdPassive && !has_app) {
    throw std::invalid_argument(
        cat("deployment: replication mode '", replication_mode_name(engine.replication),
            "' configured but no app_factory — there is no application state to stream"));
  }
}

/// Detection-knob sanity. `clustered` says whether this deployment runs
/// engines in cluster mode — swim detection has no meaning for the
/// paper's pair protocol, which keeps its own heartbeat/probe exchange.
inline void validate_detection(const OfttConfig& engine, bool clustered) {
  const auto mode = static_cast<int>(engine.detection);
  if (mode < 0 || mode > static_cast<int>(DetectionMode::kSwim)) {
    throw std::invalid_argument(cat("deployment: unknown detection mode (", mode, ")"));
  }
  if (engine.detection != DetectionMode::kSwim) return;
  if (!clustered) {
    throw std::invalid_argument(
        "deployment: detection = swim needs a cluster deployment — the pair "
        "protocol keeps its own heartbeats");
  }
  if (engine.swim_probe_timeout <= 0 ||
      engine.swim_probe_timeout >= engine.heartbeat_period) {
    throw std::invalid_argument(
        cat("deployment: swim_probe_timeout (", engine.swim_probe_timeout,
            " ns) must be positive and below heartbeat_period (",
            engine.heartbeat_period,
            " ns) so the indirect round fits inside one protocol period"));
  }
  if (engine.swim_indirect_probes < 0) {
    throw std::invalid_argument("deployment: swim_indirect_probes must be >= 0");
  }
  if (engine.swim_max_piggyback < 1 || engine.swim_max_piggyback > 255) {
    throw std::invalid_argument(
        "deployment: swim_max_piggyback must be in [1, 255]");
  }
  if (engine.swim_suspicion_timeout < 0) {
    throw std::invalid_argument("deployment: swim_suspicion_timeout must be >= 0");
  }
  if (engine.swim_suspicion_timeout > 0 &&
      engine.swim_suspicion_timeout < engine.heartbeat_period) {
    throw std::invalid_argument(
        cat("deployment: swim_suspicion_timeout (", engine.swim_suspicion_timeout,
            " ns) below heartbeat_period leaves the accused no protocol period "
            "in which to refute"));
  }
}
}  // namespace detail

class PairDeployment {
 public:
  PairDeployment(sim::Simulation& sim, PairDeploymentOptions options)
      : sim_(&sim), options_(std::move(options)) {
    detail::validate_engine_timing(options_.engine, options_.net_loss);
    detail::validate_replication(options_.engine, options_.app_factory != nullptr);
    detail::validate_detection(options_.engine, /*clustered=*/false);
    if (options_.node_b_boot_delay < 0) {
      throw std::invalid_argument("PairDeployment: node_b_boot_delay must be >= 0");
    }
    node_a_ = &sim.add_node("nodeA");
    node_b_ = &sim.add_node("nodeB");
    monitor_node_ = &sim.add_node("testpc");

    auto& lan0 = sim.add_network("lan0");
    for (auto* n : {node_a_, node_b_, monitor_node_}) lan0.attach(n->id());
    lan0.set_latency(options_.net_latency_min, options_.net_latency_max);
    lan0.set_loss(options_.net_loss);
    if (options_.dual_network) {
      auto& lan1 = sim.add_network("lan1");
      lan1.attach(node_a_->id());
      lan1.attach(node_b_->id());
      lan1.set_latency(options_.net_latency_min, options_.net_latency_max);
      lan1.set_loss(options_.net_loss);
    }

    node_a_->set_boot_script(make_boot_script(node_b_->id()));
    node_b_->set_boot_script(make_boot_script(node_a_->id()));
    monitor_node_->set_boot_script([this](sim::Node& node) {
      if (options_.with_scm) dcom::install_scm(node);
      if (options_.with_msmq) msmq::QueueManager::install(node);
      if (options_.with_monitor) {
        node.start_process("system_monitor", [](sim::Process& p) {
          p.attachment<SystemMonitor>(p);
        });
      }
      if (options_.with_diverter && options_.with_msmq) {
        DiverterOptions dopts;
        dopts.unit = options_.unit;
        dopts.queue = options_.diverter_queue;
        dopts.node_a = node_a_->id();
        dopts.node_b = node_b_->id();
        node.start_process("diverter", [dopts](sim::Process& p) {
          p.attachment<MessageDiverter>(p, dopts);
        });
      }
    });

    monitor_node_->boot();
    if (options_.autostart) {
      node_a_->boot();
      if (options_.node_b_boot_delay > 0) {
        node_b_->reboot(options_.node_b_boot_delay);
      } else {
        node_b_->boot();
      }
    }
  }

  sim::Simulation& sim() { return *sim_; }
  sim::Node& node_a() { return *node_a_; }
  sim::Node& node_b() { return *node_b_; }
  sim::Node& monitor_node() { return *monitor_node_; }

  Engine* engine_a() { return Engine::find(*node_a_); }
  Engine* engine_b() { return Engine::find(*node_b_); }

  SystemMonitor* monitor() {
    auto proc = monitor_node_->find_process("system_monitor");
    return proc ? proc->find_attachment<SystemMonitor>() : nullptr;
  }

  MessageDiverter* diverter() {
    auto proc = monitor_node_->find_process("diverter");
    return proc ? proc->find_attachment<MessageDiverter>() : nullptr;
  }

  Ftim* ftim_on(sim::Node& node) {
    auto proc = node.find_process(options_.app_process);
    return proc && proc->alive() ? Ftim::find(*proc) : nullptr;
  }

  /// The node currently holding the primary role (engine view); -1 if
  /// neither claims it.
  int primary_node() {
    if (Engine* e = engine_a(); e && e->role() == Role::kPrimary) return node_a_->id();
    if (Engine* e = engine_b(); e && e->role() == Role::kPrimary) return node_b_->id();
    return -1;
  }
  int backup_node() {
    if (Engine* e = engine_a(); e && e->role() == Role::kBackup) return node_a_->id();
    if (Engine* e = engine_b(); e && e->role() == Role::kBackup) return node_b_->id();
    return -1;
  }

  sim::Node* node_by_id(int id) {
    if (id == node_a_->id()) return node_a_;
    if (id == node_b_->id()) return node_b_;
    if (id == monitor_node_->id()) return monitor_node_;
    return nullptr;
  }

 private:
  sim::Node::BootScript make_boot_script(int peer) {
    return [this, peer](sim::Node& node) {
      if (options_.with_scm) dcom::install_scm(node);
      if (options_.with_msmq) msmq::QueueManager::install(node);
      OfttConfig cfg = options_.engine;
      cfg.unit_name = options_.unit;
      cfg.peer_node = peer;
      cfg.monitor_node = options_.with_monitor ? monitor_node_->id() : -1;
      cfg.networks = options_.dual_network ? std::vector<int>{0, 1} : std::vector<int>{0};
      Engine::install(node, cfg);
      if (options_.app_factory) {
        node.start_process(options_.app_process, options_.app_factory);
      }
    };
  }

  sim::Simulation* sim_;
  PairDeploymentOptions options_;
  sim::Node* node_a_ = nullptr;
  sim::Node* node_b_ = nullptr;
  sim::Node* monitor_node_ = nullptr;
};

// ---------------------------------------------------------------------
// ClusterDeployment: the N-replica generalization (extension beyond the
// paper). N nodes each run the full per-node stack (SCM, MSMQ, Engine
// in cluster mode, one application replica); the test PC runs the
// System Monitor and optionally one shared Message Diverter subscribed
// to every member's engine. The engines manage roles through the
// membership view / quorum-gated promotion machinery in src/cluster/.
// ---------------------------------------------------------------------

struct ClusterDeploymentOptions {
  std::string unit = "unit";
  std::string app_process = "app";
  /// Creates the application inside its process (every replica runs the
  /// same image). Null for engine-only deployments.
  std::function<void(sim::Process&)> app_factory;

  /// Engine timing/policy knobs; cluster_nodes/monitor/unit fields are
  /// filled in per node by the deployment. Same tuning guidance as
  /// PairDeploymentOptions::engine.
  OfttConfig engine;

  /// Number of replicas (>= 2). Replica i boots node "node<i>" with
  /// initial succession rank i; quorum is a majority of this count.
  int replicas = 3;

  sim::SimTime net_latency_min = sim::microseconds(100);
  sim::SimTime net_latency_max = sim::microseconds(300);
  double net_loss = 0.0;

  bool with_msmq = true;
  bool with_scm = true;
  bool with_monitor = true;
  /// One shared Message Diverter on the test PC, subscribed to every
  /// member engine (any replica can become primary).
  bool with_diverter = false;
  std::string diverter_queue = "unit.q";
  bool autostart = true;  // boot all replicas immediately
};

class ClusterDeployment {
 public:
  ClusterDeployment(sim::Simulation& sim, ClusterDeploymentOptions options)
      : sim_(&sim), options_(std::move(options)) {
    detail::validate_engine_timing(options_.engine, options_.net_loss);
    detail::validate_replication(options_.engine, options_.app_factory != nullptr);
    detail::validate_detection(options_.engine, /*clustered=*/true);
    if (options_.replicas < 2) {
      throw std::invalid_argument(
          cat("ClusterDeployment: replicas must be >= 2 (got ", options_.replicas, ")"));
    }
    for (int i = 0; i < options_.replicas; ++i) {
      nodes_.push_back(&sim.add_node(cat("node", i)));
    }
    monitor_node_ = &sim.add_node("testpc");

    auto& lan0 = sim.add_network("lan0");
    for (auto* n : nodes_) lan0.attach(n->id());
    lan0.attach(monitor_node_->id());
    lan0.set_latency(options_.net_latency_min, options_.net_latency_max);
    lan0.set_loss(options_.net_loss);

    std::vector<int> member_ids;
    for (auto* n : nodes_) member_ids.push_back(n->id());

    for (auto* n : nodes_) {
      n->set_boot_script([this, member_ids](sim::Node& node) {
        if (options_.with_scm) dcom::install_scm(node);
        if (options_.with_msmq) msmq::QueueManager::install(node);
        OfttConfig cfg = options_.engine;
        cfg.unit_name = options_.unit;
        cfg.cluster_nodes = member_ids;
        cfg.monitor_node = options_.with_monitor ? monitor_node_->id() : -1;
        cfg.networks = {0};
        Engine::install(node, cfg);
        if (options_.app_factory) {
          node.start_process(options_.app_process, options_.app_factory);
        }
      });
    }
    monitor_node_->set_boot_script([this, member_ids](sim::Node& node) {
      if (options_.with_scm) dcom::install_scm(node);
      if (options_.with_msmq) msmq::QueueManager::install(node);
      if (options_.with_monitor) {
        node.start_process("system_monitor",
                           [](sim::Process& p) { p.attachment<SystemMonitor>(p); });
      }
      if (options_.with_diverter && options_.with_msmq) {
        DiverterOptions dopts;
        dopts.unit = options_.unit;
        dopts.queue = options_.diverter_queue;
        dopts.nodes = member_ids;
        node.start_process("diverter",
                           [dopts](sim::Process& p) { p.attachment<MessageDiverter>(p, dopts); });
      }
    });

    monitor_node_->boot();
    if (options_.autostart) {
      for (auto* n : nodes_) n->boot();
    }
  }

  sim::Simulation& sim() { return *sim_; }
  int replicas() const { return options_.replicas; }
  sim::Node& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  sim::Node& monitor_node() { return *monitor_node_; }

  Engine* engine(int i) { return Engine::find(node(i)); }

  SystemMonitor* monitor() {
    auto proc = monitor_node_->find_process("system_monitor");
    return proc ? proc->find_attachment<SystemMonitor>() : nullptr;
  }

  MessageDiverter* diverter() {
    auto proc = monitor_node_->find_process("diverter");
    return proc ? proc->find_attachment<MessageDiverter>() : nullptr;
  }

  Ftim* ftim_on(sim::Node& node) {
    auto proc = node.find_process(options_.app_process);
    return proc && proc->alive() ? Ftim::find(*proc) : nullptr;
  }

  /// Node id of the current primary; -1 if none claims the role.
  int primary_node() {
    for (auto* n : nodes_) {
      if (Engine* e = Engine::find(*n); e && e->role() == Role::kPrimary) return n->id();
    }
    return -1;
  }
  /// How many live engines currently claim PRIMARY (the split-brain
  /// invariant: never > 1 once views converge).
  int primary_count() {
    int count = 0;
    for (auto* n : nodes_) {
      if (Engine* e = Engine::find(*n); e && e->role() == Role::kPrimary) ++count;
    }
    return count;
  }

  sim::Node* node_by_id(int id) {
    for (auto* n : nodes_) {
      if (n->id() == id) return n;
    }
    if (id == monitor_node_->id()) return monitor_node_;
    return nullptr;
  }

 private:
  sim::Simulation* sim_;
  ClusterDeploymentOptions options_;
  std::vector<sim::Node*> nodes_;
  sim::Node* monitor_node_ = nullptr;
};

}  // namespace oftt::core
