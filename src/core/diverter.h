// The Message Diverter (§2.2.3): lets the primary/backup pair appear as
// one logical unit to external non-replicated sources. Built on MSMQ —
// the diverter tracks which node is primary (role subscriptions to both
// engines) and keeps the local queue manager's route for the unit's
// logical queue pointed at it; MSMQ's store-and-forward retry then
// guarantees that "if a message is sent during a switchover, the
// message non-delivery is detected and retried".
#pragma once

#include <string>
#include <vector>

#include <memory>

#include "core/config.h"
#include "core/wire.h"
#include "msmq/queue_manager.h"
#include "sim/timer.h"
#include "store/journal.h"

namespace oftt::core {

struct DiverterOptions {
  std::string unit;
  std::string queue;  // logical queue the unit's application consumes
  int node_a = -1;
  int node_b = -1;
  /// Cluster mode: every replica's node id. When non-empty this takes
  /// precedence over node_a/node_b — the diverter subscribes to every
  /// member's engine, since any of them can become primary.
  std::vector<int> nodes;
  sim::SimTime resubscribe_period = sim::seconds(1);
  /// Journal recoverable sends to the node-local durable store and
  /// replay them after a restart: covers the window where the message
  /// left the application but the local QM died before persisting it.
  /// MSMQ's at-least-once contract makes the possible duplicate benign.
  bool durable_sends = true;
  /// Bound on the send journal (it has no snapshots to compact against;
  /// the oldest segment is dropped instead).
  std::size_t send_journal_max_segments = 4;
};

class MessageDiverter {
 public:
  MessageDiverter(sim::Process& process, DiverterOptions options);

  /// Send a message to the logical unit (current primary).
  void send(const std::string& label, Buffer body,
            msmq::DeliveryMode mode = msmq::DeliveryMode::kRecoverable);

  int current_primary() const { return primary_node_; }
  std::uint64_t reroutes() const { return reroutes_; }
  /// Recoverable sends re-driven from the journal after a restart.
  std::uint64_t replayed_sends() const { return replayed_sends_; }
  std::uint64_t journaled_sends() const { return journaled_sends_; }
  const store::Journal* send_journal() const { return journal_.get(); }

 private:
  void on_announce(const sim::Datagram& d);
  void subscribe();
  void apply_route();
  void replay_journal();

  sim::Process* process_;
  DiverterOptions options_;
  std::string port_;
  int primary_node_ = -1;
  int last_primary_ = -1;  // survives transient "no primary" gaps
  std::uint32_t primary_incarnation_ = 0;
  std::uint64_t reroutes_ = 0;
  std::unique_ptr<store::Journal> journal_;
  std::uint64_t msg_seq_ = 0;
  std::uint64_t replayed_sends_ = 0;
  std::uint64_t journaled_sends_ = 0;
  sim::PeriodicTimer resubscribe_timer_;
};

}  // namespace oftt::core
