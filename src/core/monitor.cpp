#include "core/monitor.h"

#include <sstream>

#include "common/strings.h"
#include "sim/fault_plan.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::core {

SystemMonitor::SystemMonitor(sim::Process& process) : process_(&process) {
  process_->bind(kMonitorPort, [this](const sim::Datagram& d) { on_report(d); });
  // Role transitions come from the typed bus, not from diffing lossy
  // StatusReports: subscribe to kRoleChange only, guarded by this
  // process's main-strand life so delivery stops the instant the
  // process dies (even before the attachment destructor runs).
  auto life = process.main_strand().life();
  sub_ = process_->sim().telemetry().bus().subscribe(
      obs::mask_of(obs::EventKind::kRoleChange),
      [this](const obs::Event& e) { on_role_event(e); },
      [life] { return life->runnable(); });
}

SystemMonitor::~SystemMonitor() {
  process_->sim().telemetry().bus().unsubscribe(sub_);
}

void SystemMonitor::on_role_event(const obs::Event& e) {
  Role to = static_cast<Role>(e.a);
  auto key = std::make_pair(e.unit, e.node);
  auto it = last_roles_.find(key);
  Role from = it == last_roles_.end() ? Role::kUnknown : it->second;
  last_roles_[key] = to;
  transitions_.push_back(Transition{e.at, e.unit, e.node, from, to});
}

void SystemMonitor::on_report(const sim::Datagram& d) {
  StatusReport sr;
  if (!StatusReport::decode(d.payload, sr)) return;
  ++reports_;
  NodeView& v = views_[std::make_pair(sr.unit, sr.node)];
  v.report = std::move(sr);
  v.last_seen = process_->sim().now();
}

const SystemMonitor::NodeView* SystemMonitor::view(const std::string& unit, int node) const {
  auto it = views_.find({unit, node});
  return it == views_.end() ? nullptr : &it->second;
}

int SystemMonitor::primary_of(const std::string& unit) const {
  int best = -1;
  std::uint32_t best_inc = 0;
  for (const auto& [key, v] : views_) {
    if (key.first != unit || v.report.role != Role::kPrimary) continue;
    if (best < 0 || v.report.incarnation > best_inc) {
      best = key.second;
      best_inc = v.report.incarnation;
    }
  }
  return best;
}

const cluster::MembershipView* SystemMonitor::membership_of(const std::string& unit) const {
  const cluster::MembershipView* best = nullptr;
  for (const auto& [key, v] : views_) {
    if (key.first != unit || v.report.view.members.empty()) continue;
    if (best == nullptr || best->superseded_by(v.report.view)) best = &v.report.view;
  }
  return best;
}

std::map<int, SystemMonitor::SwimTally> SystemMonitor::swim_board_of(
    const std::string& unit) const {
  std::map<int, SwimTally> board;
  for (const auto& [key, v] : views_) {
    if (key.first != unit) continue;
    for (const auto& u : v.report.swim_members) {
      SwimTally& t = board[u.node];
      switch (u.state) {
        case swim::MemberState::kAlive: ++t.alive; break;
        case swim::MemberState::kSuspect: ++t.suspect; break;
        case swim::MemberState::kDead: ++t.dead; break;
      }
      t.incarnation = std::max(t.incarnation, u.incarnation);
    }
  }
  return board;
}

bool SystemMonitor::node_silent(const std::string& unit, int node,
                                sim::SimTime staleness) const {
  const NodeView* v = view(unit, node);
  if (v == nullptr) return true;
  return process_->sim().now() - v->last_seen > staleness;
}

std::string SystemMonitor::render() const {
  std::ostringstream os;
  os << "=== OFTT System Monitor @ " << sim::to_seconds(process_->sim().now()) << "s ===\n";
  // Cluster units first: one membership line per unit (rank order, the
  // succession plan an operator needs during an incident).
  {
    std::string last_unit;
    for (const auto& [key, v] : views_) {
      if (key.first == last_unit) continue;
      last_unit = key.first;
      if (const cluster::MembershipView* mv = membership_of(key.first)) {
        os << "unit '" << key.first << "' membership " << mv->summary() << " (quorum "
           << mv->quorum() << "/" << mv->size() << ")\n";
        for (const auto& m : mv->members) {
          os << "    rank " << m.rank << ": node " << m.node << " "
             << cluster::member_role_name(m.role) << "\n";
        }
      }
      // Swim board: what the failure detectors collectively believe —
      // per member, how many reporters call it alive/suspect/dead and
      // the highest incarnation in circulation. A member every reporter
      // calls dead is confirmed; a split (some suspect, some alive) is a
      // suspicion still in its refutation window.
      if (auto board = swim_board_of(key.first); !board.empty()) {
        os << "unit '" << key.first << "' swim board:\n";
        for (const auto& [node, t] : board) {
          const char* verdict = t.dead > t.alive + t.suspect ? "DEAD"
                                : t.suspect > t.alive        ? "SUSPECT"
                                                             : "alive";
          os << "    node " << node << ": " << verdict << "@" << t.incarnation
             << " (alive " << t.alive << ", suspect " << t.suspect << ", dead "
             << t.dead << ")\n";
        }
      }
    }
  }
  for (const auto& [key, v] : views_) {
    os << "unit '" << key.first << "' node " << key.second << ": " << role_name(v.report.role)
       << " inc=" << v.report.incarnation << (v.report.peer_visible ? "" : " [PEER LOST]")
       << (process_->sim().now() - v.last_seen > sim::seconds(3) ? " [SILENT]" : "") << "\n";
    for (const auto& c : v.report.components) {
      os << "    " << c.name << ": " << component_state_name(c.state)
         << " restarts=" << c.restarts << " heartbeats=" << c.heartbeats << " "
         << replication_mode_name(c.policy) << (c.ready ? "" : " [STALE REPLICA]") << "\n";
    }
  }
  return os.str();
}

std::string SystemMonitor::opc_board() const {
  const auto& metrics = process_->sim().telemetry().metrics();
  std::ostringstream os;
  // Groups: oftt.opc.group.<instance>.{items,notified,suppressed}. The
  // three live in separate maps, so key off the ".items" gauge and look
  // the counters up by rebuilt name.
  constexpr std::string_view kGroupPrefix = "oftt.opc.group.";
  constexpr std::string_view kItemsSuffix = ".items";
  std::size_t groups = 0;
  for (const auto& [name, cell] : metrics.gauges()) {
    if (name.compare(0, kGroupPrefix.size(), kGroupPrefix) != 0) continue;
    if (name.size() < kItemsSuffix.size() ||
        name.compare(name.size() - kItemsSuffix.size(), kItemsSuffix.size(),
                     kItemsSuffix) != 0) {
      continue;
    }
    std::string base = name.substr(0, name.size() - kItemsSuffix.size());
    std::uint64_t notified = 0, suppressed = 0;
    const auto& counters = metrics.counters();
    if (auto it = counters.find(base + ".notified"); it != counters.end()) {
      notified = it->second->value;
    }
    if (auto it = counters.find(base + ".suppressed"); it != counters.end()) {
      suppressed = it->second->value;
    }
    ++groups;
    os << "  group " << base.substr(kGroupPrefix.size()) << ": items=" << cell->value
       << " notified=" << notified << " deadband_suppressed=" << suppressed << "\n";
  }
  // Plane totals and per-client pending-batch depth.
  std::ostringstream plane;
  for (const auto& [name, cell] : metrics.gauges()) {
    if (name == "oftt.opc.notifications_per_s" || name == "oftt.opc.coalesced_bytes_per_s") {
      plane << "  " << name.substr(9) << " = " << cell->value << "\n";
    } else if (name.compare(0, 25, "oftt.opc.pending_batches.") == 0) {
      plane << "  pending batches -> " << name.substr(25) << ": " << cell->value << "\n";
    }
  }
  if (auto it = metrics.counters().find("oftt.opc.batch_drops");
      it != metrics.counters().end() && it->second->value > 0) {
    plane << "  batch_drops = " << it->second->value << " [OVERLOAD]\n";
  }
  if (groups == 0 && plane.str().empty()) return {};
  return cat("=== OPC data plane ===\n", os.str(), plane.str());
}

std::string SystemMonitor::pdes_board() const {
  const auto& metrics = process_->sim().telemetry().metrics();
  const auto& counters = metrics.counters();
  auto counter_or = [&](const char* name) -> std::uint64_t {
    auto it = counters.find(name);
    return it != counters.end() ? static_cast<std::uint64_t>(it->second->value) : 0;
  };
  const std::uint64_t windows = counter_or("oftt.pdes.windows");
  if (windows == 0) return {};  // sequential run: nothing published.

  std::ostringstream os;
  os << "  windows=" << windows << " events=" << counter_or("oftt.pdes.events") << "\n";
  // Per-worker lanes: oftt.pdes.w<N>.events gauges, already in worker
  // order in the registry's ordered map (w0, w1, ... — lexicographic
  // works up to w9; beyond that the order wobbles but every lane still
  // prints).
  constexpr std::string_view kWorkerPrefix = "oftt.pdes.w";
  for (const auto& [name, cell] : metrics.gauges()) {
    if (name.compare(0, kWorkerPrefix.size(), kWorkerPrefix) != 0) continue;
    os << "  worker " << name.substr(kWorkerPrefix.size(), name.size() - kWorkerPrefix.size() - 7)
       << ": events=" << cell->value << "\n";
  }
  const auto& gauges = metrics.gauges();
  if (auto it = gauges.find("oftt.pdes.stall_ns"); it != gauges.end()) {
    os << "  horizon_stall_ms=" << static_cast<double>(it->second->value) / 1e6 << "\n";
  }
  if (auto it = gauges.find("oftt.pdes.mailbox_peak"); it != gauges.end()) {
    os << "  mailbox peak=" << it->second->value << " spills=" << counter_or("oftt.pdes.mailbox_spills")
       << "\n";
  }
  return cat("=== Parallel engine (PDES) ===\n", os.str());
}

std::string SystemMonitor::render_fault_plan(const sim::FaultPlan& plan) {
  std::ostringstream os;
  os << "=== Injected fault schedule (" << plan.fired_count() << "/" << plan.size()
     << " fired) ===\n";
  for (const auto& inj : plan.journal()) {
    os << "  [fired   t=" << sim::to_seconds(inj.at) << "s] " << inj.what << "\n";
  }
  for (const auto& op : plan.pending()) {
    os << "  [pending t=" << sim::to_seconds(op.at) << "s] " << op.what << "\n";
  }
  return os.str();
}

}  // namespace oftt::core
