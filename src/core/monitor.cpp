#include "core/monitor.h"

#include <sstream>

#include "common/strings.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::core {

SystemMonitor::SystemMonitor(sim::Process& process) : process_(&process) {
  process_->bind(kMonitorPort, [this](const sim::Datagram& d) { on_report(d); });
}

void SystemMonitor::on_report(const sim::Datagram& d) {
  StatusReport sr;
  if (!StatusReport::decode(d.payload, sr)) return;
  ++reports_;
  auto key = std::make_pair(sr.unit, sr.node);
  auto it = views_.find(key);
  if (it != views_.end() && it->second.report.role != sr.role) {
    transitions_.push_back(Transition{process_->sim().now(), sr.unit, sr.node,
                                      it->second.report.role, sr.role});
  } else if (it == views_.end()) {
    transitions_.push_back(
        Transition{process_->sim().now(), sr.unit, sr.node, Role::kUnknown, sr.role});
  }
  NodeView& v = views_[key];
  v.report = std::move(sr);
  v.last_seen = process_->sim().now();
}

const SystemMonitor::NodeView* SystemMonitor::view(const std::string& unit, int node) const {
  auto it = views_.find({unit, node});
  return it == views_.end() ? nullptr : &it->second;
}

int SystemMonitor::primary_of(const std::string& unit) const {
  int best = -1;
  std::uint32_t best_inc = 0;
  for (const auto& [key, v] : views_) {
    if (key.first != unit || v.report.role != Role::kPrimary) continue;
    if (best < 0 || v.report.incarnation > best_inc) {
      best = key.second;
      best_inc = v.report.incarnation;
    }
  }
  return best;
}

bool SystemMonitor::node_silent(const std::string& unit, int node,
                                sim::SimTime staleness) const {
  const NodeView* v = view(unit, node);
  if (v == nullptr) return true;
  return process_->sim().now() - v->last_seen > staleness;
}

std::string SystemMonitor::render() const {
  std::ostringstream os;
  os << "=== OFTT System Monitor @ " << sim::to_seconds(process_->sim().now()) << "s ===\n";
  for (const auto& [key, v] : views_) {
    os << "unit '" << key.first << "' node " << key.second << ": " << role_name(v.report.role)
       << " inc=" << v.report.incarnation << (v.report.peer_visible ? "" : " [PEER LOST]")
       << (process_->sim().now() - v.last_seen > sim::seconds(3) ? " [SILENT]" : "") << "\n";
    for (const auto& c : v.report.components) {
      os << "    " << c.name << ": " << component_state_name(c.state)
         << " restarts=" << c.restarts << " heartbeats=" << c.heartbeats << "\n";
    }
  }
  return os.str();
}

}  // namespace oftt::core
