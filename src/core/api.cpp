#include "core/api.h"

#include "core/engine.h"
#include "sim/node.h"

namespace oftt::core {
namespace {

Ftim* require_ftim(sim::Process& process) { return Ftim::find(process); }

}  // namespace

HRESULT OFTTInitialize(sim::Process& process, FtimOptions options,
                       const OfttConfig* engine_config) {
  if (Ftim::find(process) != nullptr) return OFTT_E_ALREADY_INITIALIZED;
  if (engine_config != nullptr && Engine::find(process.node()) == nullptr) {
    Engine::install(process.node(), *engine_config);
  }
  // The FTIM learns the pair/cluster configuration from the node's
  // engine when the application did not spell it out.
  if (options.peer_node < 0 && options.peer_nodes.empty()) {
    if (Engine* engine = Engine::find(process.node())) {
      options.peer_node = engine->config().peer_node;
      options.networks = engine->config().networks;
      options.heartbeat_period = engine->config().heartbeat_period;
      if (engine->config().cluster_mode()) {
        // Checkpoint fan-out: every other replica of the unit.
        options.peer_nodes = engine->config().cluster_peers(process.node().id());
      }
    }
  }
  // Inherit the engine's configured replication mode unless the
  // application picked one explicitly.
  if (options.replication == ReplicationMode::kColdPassive) {
    if (Engine* engine = Engine::find(process.node())) {
      options.replication = engine->config().replication;
    }
  }
  process.attachment<Ftim>(process, options);
  return S_OK;
}

HRESULT OFTTSelSave(sim::Process& process, const std::string& region, std::uint32_t offset,
                    std::uint32_t size) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  if (size == 0) return E_INVALIDARG;
  ftim->sel_save(region, offset, size);
  return S_OK;
}

HRESULT OFTTSave(sim::Process& process) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  return ftim->save_now();
}

Role OFTTGetMyRole(sim::Process& process) {
  Ftim* ftim = require_ftim(process);
  return ftim == nullptr ? Role::kUnknown : ftim->role();
}

HRESULT OFTTWatchdogCreate(sim::Process& process, const std::string& name,
                           sim::SimTime timeout) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  return ftim->watchdog_create(name, timeout);
}

HRESULT OFTTWatchdogSet(sim::Process& process, const std::string& name, sim::SimTime timeout) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  if (timeout <= 0) return E_INVALIDARG;
  return ftim->watchdog_reset(name, timeout);
}

HRESULT OFTTWatchdogReset(sim::Process& process, const std::string& name) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  return ftim->watchdog_reset(name, 0);
}

HRESULT OFTTWatchdogDelete(sim::Process& process, const std::string& name) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  return ftim->watchdog_delete(name);
}

HRESULT OFTTSetRecoveryRule(sim::Process& process, int max_local_restarts,
                            int switchover_on_permanent) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  return ftim->set_recovery_rule(max_local_restarts, switchover_on_permanent);
}

HRESULT OFTTDistress(sim::Process& process, const std::string& reason) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  return ftim->distress(reason);
}

HRESULT OFTTPropose(sim::Process& process, const Buffer& decision) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  return ftim->propose(decision);
}

HRESULT OFTTOnApplyDecision(sim::Process& process, std::function<void(const Buffer&)> fn) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  ftim->on_apply_decision(std::move(fn));
  return S_OK;
}

HRESULT OFTTSwitchReplication(sim::Process& process, ReplicationMode to,
                              const std::string& reason) {
  Ftim* ftim = require_ftim(process);
  if (ftim == nullptr) return OFTT_E_NOT_INITIALIZED;
  return ftim->switch_policy(to, reason);
}

ReplicationMode OFTTGetReplicationMode(sim::Process& process) {
  Ftim* ftim = require_ftim(process);
  return ftim == nullptr ? ReplicationMode::kColdPassive : ftim->replication_mode();
}

}  // namespace oftt::core
