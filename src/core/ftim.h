// FTIM — the Fault Tolerance Interface Module (§2.2.2).
//
// "The application and the FTIM run as two separate threads within the
// same address space": here the FTIM owns its own Strand, so an
// application-thread hang leaves heartbeats flowing (only a watchdog
// catches it), while a process crash kills both.
//
// Responsibilities: register with / heartbeat to the local engine,
// take checkpoints (OPC-client FTIMs only) and ship them to the peer
// FTIM, receive control (SetActive) from the engine, restore state on
// activation, and restart a dead engine — the engine "runs as a
// separate process started by the application", so the application side
// is who brings it back (failure class d).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/hresult.h"
#include "core/checkpoint.h"
#include "core/config.h"
#include "core/replication.h"
#include "core/wire.h"
#include "nt/runtime.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "sim/timer.h"
#include "store/journal.h"
#include "transport/session.h"

namespace oftt::core {

struct FtimOptions {
  std::string component;  // defaults to the process name
  FtimKind kind = FtimKind::kOpcClient;
  CheckpointMode checkpoint_mode = CheckpointMode::kFull;
  sim::SimTime checkpoint_period = sim::milliseconds(500);
  sim::SimTime heartbeat_period = sim::milliseconds(100);
  int peer_node = -1;
  /// Cluster mode: checkpoint fan-out targets — every other replica of
  /// the execution unit. When empty, falls back to {peer_node} (pair
  /// mode). Filled by OFTTInitialize from the engine's cluster_nodes.
  std::vector<int> peer_nodes;
  std::vector<int> networks = {0};
  /// Recovery-rule overrides (-1: engine default).
  int max_local_restarts = -1;
  int switchover_on_permanent = -1;
  /// Hook CreateThread in the IAT so dynamically created threads are
  /// checkpointable (§3.1). Turning this off reproduces the paper's
  /// "dynamic threads invisible to documented APIs" problem.
  bool install_iat_hook = true;
  /// Restart a dead engine (checked every engine_check_period).
  bool restart_engine_if_dead = true;
  sim::SimTime engine_check_period = sim::milliseconds(500);
  /// Journal every checkpoint taken or received to the node-local
  /// durable store, so a cold restart recovers from its own disk and
  /// only pulls the missing suffix from the primary.
  bool journal_checkpoints = true;
  /// kFull mode only: every Nth checkpoint is a self-contained image,
  /// the ones between ship as deltas of the dirty regions. 1 disables
  /// deltas (every checkpoint full). Selective mode always ships its
  /// (already small) designated cells.
  std::uint32_t full_checkpoint_interval = 8;
  std::size_t journal_segment_bytes = 64 * 1024;
  /// Replication policy for this component. kColdPassive reproduces the
  /// paper's scheme byte-identically; FTIMs left at the default inherit
  /// the engine's configured mode through OFTTInitialize.
  ReplicationMode replication = ReplicationMode::kColdPassive;
  /// Warm-passive capture cadence. 0 derives checkpoint_period / 4
  /// (min 1 ms). Setting it with a non-warm policy is rejected.
  sim::SimTime delta_stream_period = 0;
  /// Region dirty-range tracking feeds delta capture; turning it off
  /// with a delta interval > 1 (or warm-passive) is rejected.
  bool track_dirty_ranges = true;
  /// Promotion-readiness staleness bound override; 0 = policy default
  /// (8 capture periods).
  sim::SimTime promotion_staleness_bound = 0;
  /// Models the cost of the bulk restore at activation: the activation
  /// callback (and the first checkpoint of the new reign) is delayed by
  /// image_bytes / rate. 0 = instantaneous (the seed behavior) — set it
  /// in benches to make the cold-vs-warm switchover difference visible.
  std::uint64_t restore_rate_bytes_per_s = 0;
  /// Adaptive policy switching (disabled by default).
  GovernorConfig governor;
};

class Ftim {
 public:
  Ftim(sim::Process& process, FtimOptions options);

  /// The FTIM previously created by OFTTInitialize on this process.
  static Ftim* find(sim::Process& process) { return process.find_attachment<Ftim>(); }

  Role role() const { return role_; }
  bool active() const { return active_; }
  std::uint32_t incarnation() const { return incarnation_; }
  const FtimOptions& options() const { return options_; }

  /// Application hooks: activation delivers whether state was restored
  /// from a received checkpoint.
  void on_activate(std::function<void(bool restored)> fn) { on_activate_ = std::move(fn); }
  void on_deactivate(std::function<void()> fn) { on_deactivate_ = std::move(fn); }
  /// Semi-active: how a follower (and the leader itself) executes one
  /// ordered decision from the leader's decision log.
  void on_apply_decision(std::function<void(const Buffer&)> fn) {
    on_decision_ = std::move(fn);
  }

  // --- the OFTT API backing (api.h wraps these) ---
  void sel_save(const std::string& region, std::uint32_t offset, std::uint32_t size);
  template <typename T>
  void sel_save(const nt::Cell<T>& cell) {
    sel_save(cell.region()->name(), static_cast<std::uint32_t>(cell.offset()),
             static_cast<std::uint32_t>(cell.size()));
  }
  HRESULT save_now();
  HRESULT distress(const std::string& reason);
  HRESULT watchdog_create(const std::string& name, sim::SimTime timeout);
  HRESULT watchdog_reset(const std::string& name, sim::SimTime timeout);
  HRESULT watchdog_delete(const std::string& name);
  /// Dynamic recovery-rule update for this component (engine-side).
  HRESULT set_recovery_rule(int max_local_restarts, int switchover_on_permanent);
  /// Semi-active leader: order one application decision — journal it,
  /// apply it locally through the registered handler, ship it to every
  /// follower on the decision traffic class.
  HRESULT propose(const Buffer& decision);
  /// Live, state-preserving replication-policy switch. On the active
  /// side the switch is journaled, announced to every replica
  /// (PolicySwitchMsg) and followed by an immediate self-contained
  /// checkpoint so both sides change discipline at the same point in
  /// the stream.
  HRESULT switch_policy(ReplicationMode to, const std::string& reason);

  // --- introspection (tests / benches / monitor) ---
  std::uint64_t checkpoints_sent() const { return checkpoints_sent_; }
  /// Highest checkpoint seq any peer has acknowledged (primary side).
  /// Backed by the transport session's per-peer ack watermark — the
  /// hand-rolled kCheckpointAck frames this used to require are gone.
  std::uint64_t peer_acked_seq() const;
  /// Checkpoints taken but not (yet) confirmed by any peer.
  std::uint64_t replication_lag() const {
    const std::uint64_t acked = peer_acked_seq();
    return ckpt_seq_ > acked ? ckpt_seq_ - acked : 0;
  }
  /// Lowest seq acknowledged across ALL fan-out peers (0 until every
  /// peer has acked something) — the cluster replication watermark.
  std::uint64_t min_acked_seq() const;
  /// Highest seq a specific peer node has acknowledged (0 if none).
  std::uint64_t acked_by(int node) const;
  /// Effective checkpoint destinations (peer_nodes, or {peer_node}).
  const std::vector<int>& checkpoint_peers() const { return ckpt_peers_; }
  std::uint64_t checkpoints_received() const { return checkpoints_received_; }
  std::uint64_t checkpoints_rejected() const { return checkpoints_rejected_; }
  std::size_t last_checkpoint_bytes() const { return last_checkpoint_bytes_; }
  // Delta-checkpoint accounting (primary side).
  std::uint64_t full_checkpoints_sent() const { return full_checkpoints_sent_; }
  std::uint64_t delta_checkpoints_sent() const { return delta_checkpoints_sent_; }
  std::uint64_t full_bytes_sent() const { return full_bytes_sent_; }
  std::uint64_t delta_bytes_sent() const { return delta_bytes_sent_; }
  std::uint64_t need_full_nacks() const { return need_full_nacks_; }
  // Backup / restart side.
  std::uint64_t deltas_applied() const { return deltas_applied_; }
  std::uint64_t full_checkpoints_received() const { return full_checkpoints_received_; }
  /// True when the constructor rebuilt `latest_checkpoint()` from the
  /// node-local journal (the cold-restart recovery path).
  bool recovered_from_journal() const { return recovered_from_journal_; }
  std::uint64_t journal_replayed_records() const { return journal_replayed_records_; }
  // Resync-pull servicing (primary side).
  std::uint64_t pulls_served_delta() const { return pulls_served_delta_; }
  std::uint64_t pulls_served_full() const { return pulls_served_full_; }
  const store::Journal* journal() const { return journal_.get(); }
  // Replication-policy introspection.
  ReplicationMode replication_mode() const { return policy_->mode(); }
  const ReplicationPolicy& policy() const { return *policy_; }
  const ReplicationConfig& replication_config() const { return rcfg_; }
  std::uint64_t policy_switches() const { return policy_switches_; }
  std::uint64_t decisions_proposed() const { return decisions_proposed_; }
  std::uint64_t decisions_applied() const { return decisions_applied_; }
  std::uint64_t decision_gaps() const { return decision_gaps_; }
  std::uint64_t decision_bytes_sent() const { return decision_bytes_sent_; }
  /// When this replica last folded state (checkpoint or decision) into
  /// its runtime / held image. 0 = never.
  sim::SimTime last_applied_at() const { return applied_at_; }
  /// The live runtime currently holds the replicated state (warm/semi
  /// replicas after their first fold; any side after activation).
  bool runtime_current() const { return runtime_current_; }
  /// Would this replica be promoted without a fresh pull, judged
  /// against `evidence` (last moment the primary was provably alive)?
  bool promotion_ready_at(sim::SimTime evidence) const {
    return active_ || promotion_ready(*policy_, rcfg_, applied_at_, evidence);
  }
  bool has_checkpoint() const { return latest_.has_value(); }
  const CheckpointImage* latest_checkpoint() const {
    return latest_ ? &*latest_ : nullptr;
  }
  /// Tasks the checkpointer can see (static + IAT-hooked dynamic).
  std::vector<nt::Task*> discoverable_tasks() const;

 private:
  /// Outcome of offering an incoming image to the local state.
  ///   kApplied — adopted (full) or merged (delta).
  ///   kStale   — we already hold this or newer; drop silently. With
  ///              ordered session delivery this happens only when a
  ///              session reset re-delivers, or a pull reply races a
  ///              journal-recovered node that caught up another way.
  ///   kGap     — a delta whose base we do not hold: only this warrants
  ///              a need-full nack.
  enum class Accept { kApplied, kStale, kGap };

  void on_port(const sim::Datagram& d);
  /// Dispatch one application frame (session-delivered or raw local).
  void on_frame(int src_node, int network_id, const Buffer& payload);
  void register_with_engine();
  void heartbeat_tick();
  void take_checkpoint();
  void handle_set_active(const SetActive& msg);
  /// The restore (if any) is done; start the reign: checkpoint timer,
  /// activation event, application callback.
  void finish_activation(bool restored, int anomalies);
  void handle_checkpoint(int src_node, const Buffer& payload);
  void handle_checkpoint_pull(const CheckpointPull& msg);
  void handle_decision(int src_node, const DecisionMsg& msg);
  void handle_policy_switch(const PolicySwitchMsg& msg);
  Accept accept_image(CheckpointImage&& img, const Buffer& blob);
  void check_engine();
  void send_engine(const Buffer& payload);
  void publish_event(obs::EventKind kind, std::string detail, std::uint64_t a,
                     std::uint64_t b);
  /// Replay the local journal into latest_ (cold-restart recovery),
  /// then ask the peers for whatever suffix this node missed.
  void recover_from_journal();
  void journal_checkpoint(const CheckpointImage& img, const Buffer& blob);
  /// Record the active policy in the (tiny, snapshot-free) policy
  /// journal so a cold restart resumes under the switched policy.
  void persist_policy(ReplicationMode mode);
  /// Apply journal-recovered decisions that chain on decisions_applied_
  /// (runs after the runtime has been restored to the base image).
  void replay_pending_decisions();
  void governor_tick();

  sim::Process* process_;
  FtimOptions options_;
  sim::Strand* strand_;  // the FTIM thread
  nt::NtRuntime* rt_;
  std::string port_;
  Role role_ = Role::kUnknown;
  bool active_ = false;
  std::uint32_t incarnation_ = 0;
  std::uint64_t hb_seq_ = 0;
  std::uint64_t ckpt_seq_ = 0;
  std::uint64_t hb_count_ = 0;
  std::vector<CellSpec> cells_;
  std::set<std::uint32_t> hooked_tids_;
  nt::NtRuntime::CreateThreadFn original_create_thread_;
  std::optional<CheckpointImage> latest_;
  std::unique_ptr<store::Journal> journal_;
  /// Reliable ordered sessions to the peer FTIMs: checkpoints, deltas,
  /// pulls, pull replies and nacks all ride it. Each checkpoint frame is
  /// tagged with its seq, so the session's per-peer acked-tag watermark
  /// IS the replication watermark.
  std::unique_ptr<transport::Endpoint> ep_;
  std::vector<int> ckpt_peers_;               // resolved fan-out targets
  std::uint64_t checkpoints_sent_ = 0;
  std::uint64_t checkpoints_received_ = 0;
  std::uint64_t checkpoints_rejected_ = 0;
  std::size_t last_checkpoint_bytes_ = 0;
  /// The next checkpoint must be self-contained: set at start, on
  /// activation (a restore dirties everything anyway) and when a peer
  /// nacks a delta it could not apply.
  bool force_full_ = true;
  std::uint32_t ckpts_since_full_ = 0;
  std::uint64_t full_checkpoints_sent_ = 0;
  std::uint64_t delta_checkpoints_sent_ = 0;
  std::uint64_t full_bytes_sent_ = 0;
  std::uint64_t delta_bytes_sent_ = 0;
  std::uint64_t need_full_nacks_ = 0;
  std::uint64_t deltas_applied_ = 0;
  std::uint64_t full_checkpoints_received_ = 0;
  bool recovered_from_journal_ = false;
  std::uint64_t journal_replayed_records_ = 0;
  std::uint64_t pulls_served_delta_ = 0;
  std::uint64_t pulls_served_full_ = 0;
  // --- replication policy state ---
  ReplicationConfig rcfg_;
  std::unique_ptr<ReplicationPolicy> policy_;
  /// Tiny snapshot-free journal (own prefix, max 2 segments) holding the
  /// newest kPolicy record. Separate from the checkpoint journal so the
  /// checkpoint compaction cycle can never retire the policy record.
  std::unique_ptr<store::Journal> policy_journal_;
  std::uint64_t policy_record_seq_ = 0;
  std::uint64_t policy_switches_ = 0;
  std::optional<PolicyGovernor> governor_;
  /// Governor sampling baselines (previous window's cumulative values).
  std::uint64_t gov_last_ckpt_bytes_ = 0;
  std::uint64_t gov_last_decision_bytes_ = 0;
  std::uint64_t gov_last_data_sent_ = 0;
  std::uint64_t gov_last_retransmits_ = 0;
  // Semi-active decision log.
  std::uint64_t decision_seq_ = 0;        // leader: last ordered
  std::uint64_t decisions_proposed_ = 0;
  std::uint64_t decisions_applied_ = 0;   // last executed locally
  std::uint64_t decision_gaps_ = 0;
  std::uint64_t decision_bytes_sent_ = 0;
  /// Journal-recovered decisions newer than the recovered image's
  /// watermark, replayed once the runtime holds the base state.
  std::map<std::uint64_t, Buffer> pending_decisions_;
  /// A resync nack is already outstanding; don't nack every further
  /// out-of-order decision (each nack costs the leader a full image).
  bool resync_pending_ = false;
  std::function<void(const Buffer&)> on_decision_;
  /// The live runtime holds the replicated state (vs. only latest_
  /// serialized). False on a fresh boot; a bulk restore or the first
  /// fold-on-receipt makes it true.
  bool runtime_current_ = false;
  sim::SimTime applied_at_ = 0;
  std::function<void(bool)> on_activate_;
  std::function<void()> on_deactivate_;
  // Pre-resolved metric handles for the periodic checkpoint path.
  obs::Counter ctr_ckpt_sent_;
  obs::Counter ctr_ckpt_received_;
  obs::Counter ctr_ckpt_corrupt_;
  obs::Counter ctr_engine_restarts_;
  obs::Counter ctr_full_bytes_;
  obs::Counter ctr_delta_bytes_;
  obs::Counter ctr_journal_recoveries_;
  obs::Histogram ckpt_bytes_;
  obs::Histogram replay_records_;
  obs::Gauge gauge_ckpt_rate_;
  obs::Gauge gauge_decision_rate_;
  obs::Gauge gauge_staleness_;
  sim::PeriodicTimer hb_timer_;
  sim::PeriodicTimer ckpt_timer_;
  sim::PeriodicTimer engine_check_timer_;
  sim::PeriodicTimer governor_timer_;
};

}  // namespace oftt::core
