// The OFTT public API — the exact surface §2.2.2 documents. "At the
// minimum, [OFTTInitialize] is the only API an application needs to add
// in order to use the OFTT services."
//
// Functions operate on the calling process (the simulated analogue of
// linking the FTIM DLL into the application image).
#pragma once

#include "common/hresult.h"
#include "core/config.h"
#include "core/ftim.h"
#include "nt/memory.h"

namespace oftt::core {

/// Require the OFTT services: creates the FTIM (its thread, engine
/// registration, heartbeats) and — since the engine "runs as a separate
/// process started by the application" — starts the node's OFTT engine
/// if it is not already running and `engine_config` is provided.
/// Returns OFTT_E_ALREADY_INITIALIZED on a second call.
HRESULT OFTTInitialize(sim::Process& process, FtimOptions options = {},
                       const OfttConfig* engine_config = nullptr);

/// Checkpoint variable designation: mark [offset, offset+size) of a
/// memory region for selective checkpointing.
HRESULT OFTTSelSave(sim::Process& process, const std::string& region, std::uint32_t offset,
                    std::uint32_t size);

/// Typed convenience overload for a Cell.
template <typename T>
HRESULT OFTTSelSave(sim::Process& process, const nt::Cell<T>& cell) {
  return OFTTSelSave(process, cell.region()->name(),
                     static_cast<std::uint32_t>(cell.offset()),
                     static_cast<std::uint32_t>(cell.size()));
}

/// Checkpoint save: copy the address space (or the selected subset) to
/// the peer node immediately, without waiting for a checkpoint period.
HRESULT OFTTSave(sim::Process& process);

/// Identify the role (primary or backup) of this node.
Role OFTTGetMyRole(sim::Process& process);

/// Reliable watchdog timer objects (deadline tracking lives in the
/// engine process, so an application hang cannot suppress expiry).
HRESULT OFTTWatchdogCreate(sim::Process& process, const std::string& name,
                           sim::SimTime timeout = 0);
HRESULT OFTTWatchdogSet(sim::Process& process, const std::string& name, sim::SimTime timeout);
HRESULT OFTTWatchdogReset(sim::Process& process, const std::string& name);
HRESULT OFTTWatchdogDelete(sim::Process& process, const std::string& name);

/// Report a significant problem and request a switchover (granted only
/// if the application on the peer node is functional).
HRESULT OFTTDistress(sim::Process& process, const std::string& reason);

/// Change this component's recovery rule at run time (the paper's
/// dynamic-decision extension): how many local restarts to attempt for
/// transient faults, and whether permanent faults transfer control to
/// the backup node. Pass -1 to restore the engine default for a field.
HRESULT OFTTSetRecoveryRule(sim::Process& process, int max_local_restarts,
                            int switchover_on_permanent);

/// Semi-active replication: order one application decision through the
/// leader's decision log. Followers (and a restarted leader replaying
/// its journal) execute it via the OFTTOnApplyDecision handler.
/// S_FALSE under a passive policy: the decision was applied locally but
/// nothing shipped (state replicates through checkpoints instead).
HRESULT OFTTPropose(sim::Process& process, const Buffer& decision);

/// Register the decision-execution handler. Must be deterministic: the
/// leader and every follower run it on the same ordered log.
HRESULT OFTTOnApplyDecision(sim::Process& process, std::function<void(const Buffer&)> fn);

/// Live, state-preserving replication-policy switch for this component.
/// On the active side the switch is journaled, announced to every
/// replica and pinned with an immediate full checkpoint. S_FALSE when
/// already in `to`.
HRESULT OFTTSwitchReplication(sim::Process& process, ReplicationMode to,
                              const std::string& reason = "operator request");

/// The component's currently active replication policy (kColdPassive
/// when OFTT is not initialized on this process).
ReplicationMode OFTTGetReplicationMode(sim::Process& process);

}  // namespace oftt::core
