#include "core/engine_com.h"

#include "com/object.h"
#include "com/runtime.h"
#include "dcom/client.h"
#include "dcom/marshal.h"
#include "dcom/registry.h"
#include "dcom/server.h"
#include "sim/node.h"

namespace oftt::core {
namespace {

using com::ComPtr;
using com::IUnknown;

enum EngineMethod : std::uint16_t {
  kGetStatus = 1,
  kRequestSwitchover = 2,
  kSetRecoveryRule = 3,
};

/// Server-side implementation wrapping the live Engine of its process.
class EngineComObject final : public com::Object<EngineComObject, IOFTTEngine> {
 public:
  explicit EngineComObject(sim::Process& process) : process_(&process) {}

  void GetStatus(StatusFn done) override {
    Engine* engine = engine_of();
    if (engine == nullptr) {
      if (done) done(OFTT_E_ENGINE_DOWN, {});
      return;
    }
    StatusReport sr;
    sr.unit = engine->unit();
    sr.node = process_->node().id();
    sr.role = engine->role();
    sr.incarnation = engine->incarnation();
    sr.peer_visible = engine->peer_visible();
    for (const auto& [name, c] : engine->components()) {
      sr.components.push_back(
          ComponentStatus{c.reg.component, c.state, c.restarts, c.heartbeats});
    }
    if (done) done(S_OK, sr);
  }

  void RequestSwitchover(const std::string& reason, AckFn done) override {
    Engine* engine = engine_of();
    HRESULT hr = engine ? engine->request_switchover(reason) : OFTT_E_ENGINE_DOWN;
    if (done) done(hr);
  }

  void SetRecoveryRule(const std::string& component, int max_local_restarts,
                       int switchover_on_permanent, AckFn done) override {
    Engine* engine = engine_of();
    HRESULT hr = engine ? engine->set_recovery_rule(component, max_local_restarts,
                                                    switchover_on_permanent)
                        : OFTT_E_ENGINE_DOWN;
    if (done) done(hr);
  }

 private:
  Engine* engine_of() { return process_->find_attachment<Engine>(); }
  sim::Process* process_;
};

dcom::StubDispatch make_engine_stub(ComPtr<IUnknown> obj, dcom::OrpcServer&) {
  ComPtr<IOFTTEngine> target = obj.as<IOFTTEngine>();
  return [target](std::uint16_t method, BinaryReader& args, BinaryWriter& result) -> HRESULT {
    if (!target) return E_NOINTERFACE;
    HRESULT out = E_UNEXPECTED;
    switch (method) {
      case kGetStatus:
        target->GetStatus([&](HRESULT hr, const StatusReport& sr) {
          out = hr;
          if (SUCCEEDED(hr)) result.blob(sr.encode());
        });
        return out;
      case kRequestSwitchover: {
        std::string reason = args.str();
        if (args.failed()) return E_INVALIDARG;
        target->RequestSwitchover(reason, [&](HRESULT hr) { out = hr; });
        return out;
      }
      case kSetRecoveryRule: {
        std::string component = args.str();
        int restarts = args.i32();
        int switchover = args.i32();
        if (args.failed()) return E_INVALIDARG;
        target->SetRecoveryRule(component, restarts, switchover,
                                [&](HRESULT hr) { out = hr; });
        return out;
      }
      default: return E_NOTIMPL;
    }
  };
}

class EngineProxy final : public com::Object<EngineProxy, IOFTTEngine>,
                          public dcom::ProxyBase {
 public:
  EngineProxy(dcom::OrpcClient& client, dcom::ObjectRef ref)
      : ProxyBase(client, std::move(ref)) {}

  void GetStatus(StatusFn done) override {
    invoke(kGetStatus, {}, [done](HRESULT hr, BinaryReader& r) {
      StatusReport sr;
      if (SUCCEEDED(hr)) {
        Buffer blob = r.blob();
        if (r.failed() || !StatusReport::decode(blob, sr)) hr = E_UNEXPECTED;
      }
      if (done) done(hr, sr);
    });
  }

  void RequestSwitchover(const std::string& reason, AckFn done) override {
    BinaryWriter w;
    w.str(reason);
    invoke(kRequestSwitchover, std::move(w).take(), [done](HRESULT hr, BinaryReader&) {
      if (done) done(hr);
    });
  }

  void SetRecoveryRule(const std::string& component, int max_local_restarts,
                       int switchover_on_permanent, AckFn done) override {
    BinaryWriter w;
    w.str(component);
    w.i32(max_local_restarts);
    w.i32(switchover_on_permanent);
    invoke(kSetRecoveryRule, std::move(w).take(), [done](HRESULT hr, BinaryReader&) {
      if (done) done(hr);
    });
  }
};

com::ComPtr<IUnknown> make_engine_proxy(dcom::OrpcClient& client, const dcom::ObjectRef& ref) {
  return EngineProxy::create(client, ref).as<IUnknown>();
}

}  // namespace

const Clsid& clsid_oftt_engine() {
  static const Clsid clsid = Guid::from_name("CLSID_OFTTEngine");
  return clsid;
}

void ensure_engine_proxy_stub_registered() {
  static const bool registered = [] {
    dcom::InterfaceRegistry::instance().register_interface(IOFTTEngine::iid(),
                                                           make_engine_stub,
                                                           make_engine_proxy);
    return true;
  }();
  (void)registered;
}

void install_engine_com(sim::Process& engine_process) {
  ensure_engine_proxy_stub_registered();
  auto& com_rt = com::ComRuntime::of(engine_process);
  auto factory = com::LambdaClassFactory::create(
      [proc = &engine_process](com::REFIID iid, void** ppv) -> HRESULT {
        auto obj = EngineComObject::create(*proc);
        return obj->QueryInterface(iid, ppv);
      });
  com_rt.register_class(clsid_oftt_engine(), com::ComPtr<com::IClassFactory>(factory.get()),
                        "OFTT Engine");
  dcom::OrpcServer::of(engine_process).register_server_class(clsid_oftt_engine(),
                                                             "OFTT Engine");
}

void connect_engine(sim::Process& process, int node,
                    std::function<void(HRESULT, com::ComPtr<IOFTTEngine>)> done) {
  ensure_engine_proxy_stub_registered();
  auto& orpc = dcom::OrpcClient::of(process);
  orpc.activate(node, clsid_oftt_engine(), IOFTTEngine::iid(),
                [&process, done](HRESULT hr, const dcom::ObjectRef& ref) {
                  com::ComPtr<IOFTTEngine> engine;
                  if (SUCCEEDED(hr)) {
                    engine = dcom::OrpcClient::of(process).unmarshal(ref).as<IOFTTEngine>();
                    if (!engine) hr = E_NOINTERFACE;
                  }
                  if (done) done(hr, std::move(engine));
                });
}

}  // namespace oftt::core
