#include "core/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace oftt::core {

std::size_t CheckpointImage::payload_bytes() const {
  std::size_t n = 0;
  for (const auto& [name, bytes] : regions) n += name.size() + bytes.size();
  for (const auto& c : cells) n += c.region.size() + c.bytes.size();
  for (const auto& [name, ctx] : task_contexts) n += name.size() + ctx.size();
  return n;
}

Buffer CheckpointImage::marshal() const {
  BinaryWriter w;
  w.u64(seq);
  w.u64(base_seq);
  w.u64(decision_seq);
  w.u32(incarnation);
  w.u8(static_cast<std::uint8_t>(mode));
  w.i64(taken_at);
  w.u32(static_cast<std::uint32_t>(regions.size()));
  for (const auto& [name, bytes] : regions) {
    w.str(name);
    w.blob(bytes);
  }
  w.u32(static_cast<std::uint32_t>(cells.size()));
  for (const auto& c : cells) {
    w.str(c.region);
    w.u32(c.offset);
    w.blob(c.bytes);
  }
  w.u32(static_cast<std::uint32_t>(task_contexts.size()));
  for (const auto& [name, ctx] : task_contexts) {
    w.str(name);
    w.blob(ctx);
  }
  // Checksum over everything serialized so far.
  w.u64(fnv64(w.data()));
  return std::move(w).take();
}

bool CheckpointImage::unmarshal(const Buffer& buf, CheckpointImage& out) {
  if (buf.size() < 8) return false;
  // Validate the trailing checksum first.
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(buf[buf.size() - 8 + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (fnv64(buf.data(), buf.size() - 8) != stored) return false;

  BinaryReader r(buf.data(), buf.size() - 8);
  out = CheckpointImage{};
  out.seq = r.u64();
  out.base_seq = r.u64();
  out.decision_seq = r.u64();
  out.incarnation = r.u32();
  out.mode = static_cast<CheckpointMode>(r.u8());
  out.taken_at = r.i64();
  // Each declared count is validated against the bytes actually left in
  // the buffer (at the minimum size an entry can serialize to) BEFORE
  // any loop allocates: a garbage count in an otherwise checksum-valid
  // buffer must be rejected, not fed to push_back a billion times.
  std::uint32_t nregions = r.u32();
  if (nregions > r.remaining() / 8) return false;  // name len + blob len
  for (std::uint32_t i = 0; i < nregions && !r.failed(); ++i) {
    std::string name = r.str();
    out.regions[name] = r.blob();
  }
  std::uint32_t ncells = r.u32();
  if (ncells > r.remaining() / 12) return false;  // name len + offset + blob len
  for (std::uint32_t i = 0; i < ncells && !r.failed(); ++i) {
    SelectiveCell c;
    c.region = r.str();
    c.offset = r.u32();
    c.bytes = r.blob();
    out.cells.push_back(std::move(c));
  }
  std::uint32_t nctx = r.u32();
  if (nctx > r.remaining() / 8) return false;  // name len + blob len
  for (std::uint32_t i = 0; i < nctx && !r.failed(); ++i) {
    std::string name = r.str();
    out.task_contexts[name] = r.blob();
  }
  out.checksum = stored;
  return !r.failed();
}

CheckpointImage capture_checkpoint(nt::NtRuntime& rt, CheckpointMode mode,
                                   const std::vector<CellSpec>& cells, std::uint64_t seq,
                                   std::uint32_t incarnation,
                                   const std::vector<nt::Task*>& discoverable_tasks) {
  CheckpointImage img;
  img.seq = seq;
  img.incarnation = incarnation;
  img.mode = mode;
  img.taken_at = 0;
  if (mode == CheckpointMode::kFull) {
    // Memory walkthrough: snapshot every region.
    for (const auto& [name, region] : rt.memory().regions()) {
      img.regions[name] = region->snapshot();
    }
  } else {
    for (const auto& spec : cells) {
      // Const view: capturing must not disturb the dirty tracking.
      const nt::Region* region = rt.memory().find(spec.region);
      if (region == nullptr || spec.offset + spec.size > region->size()) continue;
      SelectiveCell c;
      c.region = spec.region;
      c.offset = spec.offset;
      c.bytes.assign(region->data() + spec.offset, region->data() + spec.offset + spec.size);
      img.cells.push_back(std::move(c));
    }
  }
  for (nt::Task* task : discoverable_tasks) {
    img.task_contexts[task->name()] = task->capture_context().serialize();
  }
  return img;
}

CheckpointImage capture_delta_checkpoint(nt::NtRuntime& rt, std::uint64_t seq,
                                         std::uint64_t base_seq, std::uint32_t incarnation,
                                         const std::vector<nt::Task*>& discoverable_tasks) {
  CheckpointImage img;
  img.seq = seq;
  img.base_seq = base_seq;
  img.incarnation = incarnation;
  img.mode = CheckpointMode::kDelta;
  img.taken_at = 0;
  for (const auto& [name, region_ptr] : rt.memory().regions()) {
    // Const view: capturing must not disturb the dirty tracking (the
    // non-const data() overload marks the whole region dirty).
    const nt::Region& region = *region_ptr;
    if (!region.dirty()) continue;
    if (region.dirty_all()) {
      img.regions[name] = region.snapshot();
      continue;
    }
    const std::uint8_t* base = region.data();
    for (const nt::Region::Range& range : region.dirty_ranges()) {
      SelectiveCell c;
      c.region = name;
      c.offset = static_cast<std::uint32_t>(range.begin);
      c.bytes.assign(base + range.begin, base + range.end);
      img.cells.push_back(std::move(c));
    }
  }
  for (nt::Task* task : discoverable_tasks) {
    img.task_contexts[task->name()] = task->capture_context().serialize();
  }
  return img;
}

DeltaApplyResult apply_delta(CheckpointImage& base, const CheckpointImage& delta) {
  DeltaApplyResult result;
  // Verify the chain before touching the base: a delta that does not
  // apply on exactly this image would merge stale bytes into regions it
  // was never diffed against, and the corruption would ride every later
  // delta. The caller gets an explicit need-full signal instead.
  if (delta.mode != CheckpointMode::kDelta || delta.incarnation != base.incarnation ||
      delta.base_seq != base.seq) {
    OFTT_LOG_WARN("oftt/ckpt", "delta ", delta.seq, " (base ", delta.base_seq, " inc ",
                  delta.incarnation, ") does not chain on image ", base.seq, " inc ",
                  base.incarnation, "; full resync needed");
    result.status = DeltaApply::kNeedFull;
    return result;
  }
  for (const auto& [name, bytes] : delta.regions) base.regions[name] = bytes;
  for (const auto& c : delta.cells) {
    auto it = base.regions.find(c.region);
    if (it == base.regions.end() || c.offset + c.bytes.size() > it->second.size()) {
      ++result.anomalies;
      continue;
    }
    std::memcpy(it->second.data() + c.offset, c.bytes.data(), c.bytes.size());
  }
  for (const auto& [name, ctx] : delta.task_contexts) base.task_contexts[name] = ctx;
  base.seq = delta.seq;
  base.incarnation = delta.incarnation;
  base.taken_at = delta.taken_at;
  if (delta.decision_seq > base.decision_seq) base.decision_seq = delta.decision_seq;
  if (result.anomalies > 0) {
    OFTT_LOG_WARN("oftt/ckpt", "delta ", delta.seq, " applied with ", result.anomalies,
                  " anomalies");
  }
  return result;
}

int restore_checkpoint(nt::NtRuntime& rt, const CheckpointImage& image) {
  int anomalies = 0;
  for (const auto& [name, bytes] : image.regions) {
    nt::Region& region = rt.memory().alloc(name, bytes.size() == 0 ? 1 : bytes.size());
    if (region.size() == bytes.size()) {
      region.restore(bytes);
    } else {
      std::size_t n = std::min<std::size_t>(region.size(), bytes.size());
      std::memcpy(region.data(), bytes.data(), n);
      ++anomalies;
    }
  }
  for (const auto& c : image.cells) {
    nt::Region* region = rt.memory().find(c.region);
    if (region == nullptr || c.offset + c.bytes.size() > region->size()) {
      ++anomalies;
      continue;
    }
    std::memcpy(region->data() + c.offset, c.bytes.data(), c.bytes.size());
  }
  for (const auto& [name, ctx_bytes] : image.task_contexts) {
    nt::Task* task = rt.find_task_by_name(name);
    if (task == nullptr) {
      ++anomalies;
      continue;
    }
    BinaryReader r(ctx_bytes);
    nt::TaskContext ctx = nt::TaskContext::deserialize(r);
    if (r.failed()) {
      ++anomalies;
      continue;
    }
    task->restore_context(ctx);
  }
  if (anomalies > 0) {
    OFTT_LOG_WARN("oftt/ckpt", "restore completed with ", anomalies, " anomalies");
  }
  return anomalies;
}

}  // namespace oftt::core
