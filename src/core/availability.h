// AvailabilityTracker: measures what the whole toolkit exists to
// maximize — the fraction of time the logical unit has an active
// primary making progress. Probes a user-supplied "is the unit serving"
// predicate on a fixed tick and accumulates uptime, downtime, and
// outage episodes (count, longest).
#pragma once

#include <functional>

#include "sim/timer.h"

namespace oftt::core {

class AvailabilityTracker {
 public:
  /// `serving` is evaluated every `probe_period`; it should return true
  /// when the unit is doing useful work (e.g. primary app progressing).
  AvailabilityTracker(sim::Strand& strand, std::function<bool()> serving,
                      sim::SimTime probe_period = sim::milliseconds(10))
      : strand_(&strand),
        serving_(std::move(serving)),
        probe_period_(probe_period),
        timer_(strand) {
    timer_.start(probe_period_, [this] { probe(); });
  }

  void stop() { timer_.stop(); }

  sim::SimTime uptime() const { return uptime_; }
  sim::SimTime downtime() const { return downtime_; }
  double availability() const {
    sim::SimTime total = uptime_ + downtime_;
    return total == 0 ? 1.0 : static_cast<double>(uptime_) / static_cast<double>(total);
  }
  int outages() const { return outages_; }
  sim::SimTime longest_outage() const { return longest_outage_; }

 private:
  void probe() {
    bool up = serving_();
    if (up) {
      uptime_ += probe_period_;
      current_outage_ = 0;
    } else {
      downtime_ += probe_period_;
      if (current_outage_ == 0) ++outages_;
      current_outage_ += probe_period_;
      if (current_outage_ > longest_outage_) longest_outage_ = current_outage_;
    }
  }

  sim::Strand* strand_;
  std::function<bool()> serving_;
  sim::SimTime probe_period_;
  sim::SimTime uptime_ = 0;
  sim::SimTime downtime_ = 0;
  sim::SimTime current_outage_ = 0;
  sim::SimTime longest_outage_ = 0;
  int outages_ = 0;
  sim::PeriodicTimer timer_;
};

}  // namespace oftt::core
