#include "core/diverter.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace oftt::core {

MessageDiverter::MessageDiverter(sim::Process& process, DiverterOptions options)
    : process_(&process),
      options_(std::move(options)),
      port_(cat("oftt.divert.", process.name())),
      resubscribe_timer_(process.main_strand()) {
  process_->bind(port_, [this](const sim::Datagram& d) { on_announce(d); });
  if (options_.durable_sends) {
    store::JournalOptions jopts;
    jopts.auto_compact = false;  // a pure message log has no snapshots
    jopts.max_segments = options_.send_journal_max_segments;
    journal_ = std::make_unique<store::Journal>(process.sim(), process.node().id(),
                                                "oftt.dvrt." + options_.unit, jopts);
    replay_journal();
  }
  subscribe();
  resubscribe_timer_.start(options_.resubscribe_period, [this] {
    subscribe();
    apply_route();  // re-assert the route (the QM may have restarted)
  });
}

void MessageDiverter::replay_journal() {
  std::vector<store::Record> records = journal_->recover();
  if (records.empty()) return;
  // Re-drive every journaled recoverable send through the fresh QM.
  // wipe() first: send() re-journals each message, so surviving ones
  // stay durable without accumulating duplicates across restarts.
  journal_->wipe();
  for (store::Record& r : records) {
    if (r.type != store::RecordType::kMessage) continue;
    BinaryReader reader(r.payload);
    std::string label = reader.str();
    Buffer body = reader.blob();
    auto mode = static_cast<msmq::DeliveryMode>(reader.u8());
    if (reader.failed()) continue;
    ++replayed_sends_;
    send(label, std::move(body), mode);
  }
  if (replayed_sends_ > 0) {
    OFTT_LOG_INFO("oftt/diverter", process_->name(), ": replayed ", replayed_sends_,
                  " journaled sends for unit '", options_.unit, "'");
  }
}

void MessageDiverter::subscribe() {
  SubscribeRoles sub;
  sub.subscriber_node = process_->node().id();
  sub.subscriber_port = port_;
  Buffer payload = sub.encode();
  std::vector<int> targets = options_.nodes;
  if (targets.empty()) targets = {options_.node_a, options_.node_b};
  for (int node : targets) {
    if (node < 0) continue;
    int net = sim::pick_network(process_->sim(), process_->node().id(), node);
    if (net < 0) continue;
    process_->send(net, node, kEnginePort, payload, port_);
  }
}

void MessageDiverter::on_announce(const sim::Datagram& d) {
  RoleAnnounce ra;
  if (!RoleAnnounce::decode(d.payload, ra)) return;
  if (ra.unit != options_.unit) return;
  if (ra.role == Role::kPrimary) {
    // Newest incarnation wins; ignore echoes of deposed primaries.
    if (ra.node != primary_node_ && ra.incarnation >= primary_incarnation_) {
      if (last_primary_ >= 0 && ra.node != last_primary_) ++reroutes_;
      last_primary_ = ra.node;
      OFTT_LOG_INFO("oftt/diverter", process_->name(), ": unit '", options_.unit,
                    "' primary is now node ", ra.node, " (inc ", ra.incarnation, ")");
      primary_node_ = ra.node;
      primary_incarnation_ = ra.incarnation;
      apply_route();
      // Closes the failover trace: external traffic now reaches the
      // new primary again.
      obs::Event e;
      e.kind = obs::EventKind::kDiverterReroute;
      e.node = process_->node().id();
      e.unit = options_.unit;
      e.detail = options_.queue;
      e.a = static_cast<std::uint64_t>(ra.node);
      e.b = ra.incarnation;
      process_->sim().telemetry().bus().publish(std::move(e));
    } else if (ra.node == primary_node_) {
      primary_incarnation_ = ra.incarnation;
    }
  } else if (ra.node == primary_node_ && ra.incarnation >= primary_incarnation_) {
    // Our primary says it is no longer primary; await the new one.
    primary_node_ = -1;
  }
}

void MessageDiverter::apply_route() {
  if (primary_node_ < 0) return;
  msmq::QueueManager* qm = msmq::QueueManager::find(process_->node());
  if (qm == nullptr) return;  // QM down; retried on next period
  qm->set_route(options_.queue, primary_node_);
}

void MessageDiverter::send(const std::string& label, Buffer body, msmq::DeliveryMode mode) {
  // Journal BEFORE handing off: if this process dies inside the QM call
  // the message is still re-driven on restart. Express messages are
  // explicitly lossy, so only recoverable ones are journaled.
  if (journal_ && mode == msmq::DeliveryMode::kRecoverable) {
    BinaryWriter w;
    w.str(label);
    w.blob(body);
    w.u8(static_cast<std::uint8_t>(mode));
    if (journal_->append(store::RecordType::kMessage, ++msg_seq_, 0, std::move(w).take())) {
      ++journaled_sends_;
    }
  }
  msmq::MsmqApi::of(*process_).send(options_.queue, label, std::move(body), mode);
}

}  // namespace oftt::core
