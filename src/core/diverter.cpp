#include "core/diverter.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace oftt::core {

MessageDiverter::MessageDiverter(sim::Process& process, DiverterOptions options)
    : process_(&process),
      options_(std::move(options)),
      port_(cat("oftt.divert.", process.name())),
      resubscribe_timer_(process.main_strand()) {
  process_->bind(port_, [this](const sim::Datagram& d) { on_announce(d); });
  subscribe();
  resubscribe_timer_.start(options_.resubscribe_period, [this] {
    subscribe();
    apply_route();  // re-assert the route (the QM may have restarted)
  });
}

void MessageDiverter::subscribe() {
  SubscribeRoles sub;
  sub.subscriber_node = process_->node().id();
  sub.subscriber_port = port_;
  Buffer payload = sub.encode();
  std::vector<int> targets = options_.nodes;
  if (targets.empty()) targets = {options_.node_a, options_.node_b};
  for (int node : targets) {
    if (node < 0) continue;
    int net = sim::pick_network(process_->sim(), process_->node().id(), node);
    if (net < 0) continue;
    process_->send(net, node, kEnginePort, payload, port_);
  }
}

void MessageDiverter::on_announce(const sim::Datagram& d) {
  RoleAnnounce ra;
  if (!RoleAnnounce::decode(d.payload, ra)) return;
  if (ra.unit != options_.unit) return;
  if (ra.role == Role::kPrimary) {
    // Newest incarnation wins; ignore echoes of deposed primaries.
    if (ra.node != primary_node_ && ra.incarnation >= primary_incarnation_) {
      if (last_primary_ >= 0 && ra.node != last_primary_) ++reroutes_;
      last_primary_ = ra.node;
      OFTT_LOG_INFO("oftt/diverter", process_->name(), ": unit '", options_.unit,
                    "' primary is now node ", ra.node, " (inc ", ra.incarnation, ")");
      primary_node_ = ra.node;
      primary_incarnation_ = ra.incarnation;
      apply_route();
      // Closes the failover trace: external traffic now reaches the
      // new primary again.
      obs::Event e;
      e.kind = obs::EventKind::kDiverterReroute;
      e.node = process_->node().id();
      e.unit = options_.unit;
      e.detail = options_.queue;
      e.a = static_cast<std::uint64_t>(ra.node);
      e.b = ra.incarnation;
      process_->sim().telemetry().bus().publish(std::move(e));
    } else if (ra.node == primary_node_) {
      primary_incarnation_ = ra.incarnation;
    }
  } else if (ra.node == primary_node_ && ra.incarnation >= primary_incarnation_) {
    // Our primary says it is no longer primary; await the new one.
    primary_node_ = -1;
  }
}

void MessageDiverter::apply_route() {
  if (primary_node_ < 0) return;
  msmq::QueueManager* qm = msmq::QueueManager::find(process_->node());
  if (qm == nullptr) return;  // QM down; retried on next period
  qm->set_route(options_.queue, primary_node_);
}

void MessageDiverter::send(const std::string& label, Buffer body, msmq::DeliveryMode mode) {
  msmq::MsmqApi::of(*process_).send(options_.queue, label, std::move(body), mode);
}

}  // namespace oftt::core
