// IOFTTEngine: the engine's own COM face.
//
// "Fault tolerance functions such as state checkpointing, failure
// detection and recovery are implemented as COM objects" — this is the
// engine's: a remotely activatable coclass (CLSID_OFTTEngine) exposing
// status queries and operator actions (switchover, dynamic recovery
// rules) over DCOM. The System Monitor uses it for its operator
// actions; anything on the LAN with the proxy installed can.
#pragma once

#include <functional>

#include "com/unknown.h"
#include "core/engine.h"
#include "core/wire.h"

namespace oftt::core {

struct IOFTTEngine : com::IUnknown {
  OFTT_COM_INTERFACE_ID(IOFTTEngine)

  using StatusFn = std::function<void(HRESULT, const StatusReport&)>;
  using AckFn = std::function<void(HRESULT)>;

  virtual void GetStatus(StatusFn done) = 0;
  virtual void RequestSwitchover(const std::string& reason, AckFn done) = 0;
  virtual void SetRecoveryRule(const std::string& component, int max_local_restarts,
                               int switchover_on_permanent, AckFn done) = 0;
};

/// CLSID under which every node's engine registers its COM face.
const Clsid& clsid_oftt_engine();

/// Register the coclass + proxy/stub inside the engine process.
/// Engine::install calls this; only needed directly in bespoke setups.
void install_engine_com(sim::Process& engine_process);

/// Idempotent proxy/stub installation for IOFTTEngine (client side).
void ensure_engine_proxy_stub_registered();

/// Activate the engine's COM face on `node` from `process` and deliver
/// a typed proxy (null + failure HRESULT if the engine is down).
void connect_engine(sim::Process& process, int node,
                    std::function<void(HRESULT, com::ComPtr<IOFTTEngine>)> done);

}  // namespace oftt::core
