#include "core/ftim.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

#include "sim/disk.h"

namespace oftt::core {
namespace {
constexpr const char* kEngineProcess = "oftt_engine";
}

Ftim::Ftim(sim::Process& process, FtimOptions options)
    : process_(&process),
      options_(std::move(options)),
      strand_(&process.create_strand("ftim")),
      rt_(&nt::NtRuntime::of(process)),
      port_(ftim_port(process.name())),
      ctr_ckpt_sent_(process.sim().telemetry().metrics().counter("oftt.checkpoints_sent")),
      ctr_ckpt_received_(
          process.sim().telemetry().metrics().counter("oftt.checkpoints_received")),
      ctr_ckpt_corrupt_(
          process.sim().telemetry().metrics().counter("oftt.checkpoints_corrupt")),
      ctr_engine_restarts_(
          process.sim().telemetry().metrics().counter("oftt.engine_restarts")),
      ctr_full_bytes_(
          process.sim().telemetry().metrics().counter("oftt.ckpt_full_bytes")),
      ctr_delta_bytes_(
          process.sim().telemetry().metrics().counter("oftt.ckpt_delta_bytes")),
      ctr_journal_recoveries_(
          process.sim().telemetry().metrics().counter("oftt.journal_recoveries")),
      ckpt_bytes_(process.sim().telemetry().metrics().histogram(
          "oftt.checkpoint_bytes", {256, 1024, 4096, 16384, 65536, 262144})),
      replay_records_(process.sim().telemetry().metrics().histogram(
          "oftt.recovery_replay_records", {1, 2, 4, 8, 16, 32, 64})),
      hb_timer_(*strand_),
      ckpt_timer_(*strand_),
      engine_check_timer_(*strand_) {
  if (options_.component.empty()) options_.component = process.name();
  ckpt_peers_ = options_.peer_nodes;
  if (ckpt_peers_.empty() && options_.peer_node >= 0) ckpt_peers_ = {options_.peer_node};

  // The FTIM thread owns the control/checkpoint port.
  strand_->bind(port_, [this](const sim::Datagram& d) { on_port(d); });

  // All FTIM <-> FTIM traffic (checkpoints, deltas, pulls, pull replies,
  // nacks) rides a reliable ordered session per peer. Checkpoint frames
  // are tagged with their seq so the session's acked-tag watermark is
  // the replication watermark. Engine control (SetActive) stays raw: it
  // is loopback-only and idempotent.
  transport::SessionConfig scfg;
  scfg.networks = options_.networks;
  scfg.window_bytes = 1024 * 1024;
  scfg.queue_cap = 128;
  scfg.queue_policy = transport::QueuePolicy::kReject;
  scfg.rto_initial = sim::milliseconds(50);
  scfg.rto_max = sim::milliseconds(500);
  ep_ = std::make_unique<transport::Endpoint>(*strand_, port_, scfg);
  ep_->on_deliver([this](int src_node, int network_id, const Buffer& payload) {
    on_frame(src_node, network_id, payload);
  });

  if (options_.install_iat_hook) {
    // Intercept CreateThread so dynamically created threads become
    // discoverable for checkpointing (§3.1).
    auto original = rt_->hook_create_thread(
        [this](const std::string& name, std::uint64_t start) -> nt::Task& {
          nt::Task& task = original_create_thread_(name, start);
          hooked_tids_.insert(task.tid());
          return task;
        });
    original_create_thread_ = std::move(original);
  }

  // A restarted instance recovers the newest checkpoint chain from the
  // node-local journal (state it took as primary or received as
  // backup), so a local restart — or a full node reboot — does not come
  // back empty and only needs the missing suffix from the peers.
  if (options_.journal_checkpoints) {
    store::JournalOptions jopts;
    jopts.segment_bytes = options_.journal_segment_bytes;
    journal_ = std::make_unique<store::Journal>(process.sim(), process.node().id(),
                                                "oftt.jrnl." + options_.component, jopts);
    recover_from_journal();
  }

  register_with_engine();
  hb_timer_.start(options_.heartbeat_period, [this] { heartbeat_tick(); });
  if (options_.restart_engine_if_dead) {
    engine_check_timer_.start(options_.engine_check_period, [this] { check_engine(); });
  }
}

std::vector<nt::Task*> Ftim::discoverable_tasks() const {
  std::vector<nt::Task*> out;
  for (nt::Task* t : rt_->all_tasks()) {
    if (t->statically_created() || hooked_tids_.count(t->tid()) != 0) out.push_back(t);
  }
  return out;
}

void Ftim::register_with_engine() {
  FtRegister reg;
  reg.component = options_.component;
  reg.process_name = process_->name();
  reg.ftim_port = port_;
  reg.kind = options_.kind;
  reg.max_local_restarts = options_.max_local_restarts;
  reg.switchover_on_permanent = options_.switchover_on_permanent;
  reg.currently_active = active_;
  reg.incarnation = incarnation_;
  send_engine(reg.encode());
}

void Ftim::send_engine(const Buffer& payload) {
  process_->send(0, process_->node().id(), kEnginePort, payload, port_);
}

void Ftim::publish_event(obs::EventKind kind, std::string detail, std::uint64_t a,
                         std::uint64_t b) {
  obs::Event e;
  e.kind = kind;
  e.node = process_->node().id();
  e.component = options_.component;
  e.detail = std::move(detail);
  e.a = a;
  e.b = b;
  process_->sim().telemetry().bus().publish(std::move(e));
}

void Ftim::heartbeat_tick() {
  FtHeartbeat hb;
  hb.component = options_.component;
  hb.seq = ++hb_seq_;
  send_engine(hb.encode());
  // Periodic re-registration keeps a restarted engine informed.
  if (++hb_count_ % 10 == 0) register_with_engine();
}

bool Ftim::next_checkpoint_is_delta() const {
  if (options_.checkpoint_mode != CheckpointMode::kFull) return false;
  if (options_.full_checkpoint_interval <= 1) return false;
  if (force_full_ || ckpt_seq_ == 0) return false;
  return ckpts_since_full_ + 1 < options_.full_checkpoint_interval;
}

void Ftim::take_checkpoint() {
  if (!active_ || options_.kind != FtimKind::kOpcClient) return;
  const bool delta = next_checkpoint_is_delta();
  const std::uint64_t base = ckpt_seq_;
  CheckpointImage img =
      delta ? capture_delta_checkpoint(*rt_, ++ckpt_seq_, base, incarnation_,
                                       discoverable_tasks())
            : capture_checkpoint(*rt_, options_.checkpoint_mode, cells_, ++ckpt_seq_,
                                 incarnation_, discoverable_tasks());
  img.taken_at = process_->sim().now();
  // Everything up to this instant is captured: the dirty tracking now
  // measures what the NEXT delta must carry.
  rt_->memory().clear_all_dirty();
  if (delta) {
    ++ckpts_since_full_;
  } else {
    ckpts_since_full_ = 0;
    force_full_ = false;
  }
  Buffer blob = img.marshal();
  last_checkpoint_bytes_ = blob.size();
  ++checkpoints_sent_;
  if (delta) ++delta_checkpoints_sent_; else ++full_checkpoints_sent_;
  ctr_ckpt_sent_.inc();
  ckpt_bytes_.record(static_cast<std::int64_t>(blob.size()));
  publish_event(obs::EventKind::kCheckpointTaken, delta ? "delta" : "full", ckpt_seq_,
                blob.size());
  journal_checkpoint(img, blob);
  if (ckpt_peers_.empty()) return;
  Buffer frame = encode_checkpoint(options_.component, blob);
  // Fan out to every backup replica over its session; the session
  // handles retransmission, ordering and (on the dual-network
  // configuration) alternating networks across retries.
  for (int peer : ckpt_peers_) {
    if (!ep_->send(peer, frame, /*tag=*/ckpt_seq_)) {
      // Session queue full — the peer has been unreachable long enough
      // to absorb the whole window. Shed this frame; the stream resumes
      // self-contained once the peer is back.
      force_full_ = true;
      continue;
    }
    if (delta) {
      delta_bytes_sent_ += blob.size();
      ctr_delta_bytes_.inc(static_cast<std::int64_t>(blob.size()));
    } else {
      full_bytes_sent_ += blob.size();
      ctr_full_bytes_.inc(static_cast<std::int64_t>(blob.size()));
    }
  }
}

void Ftim::journal_checkpoint(const CheckpointImage& img, const Buffer& blob) {
  if (!journal_) return;
  const bool is_delta = img.mode == CheckpointMode::kDelta;
  if (!journal_->append(
          is_delta ? store::RecordType::kDelta : store::RecordType::kSnapshot, img.seq,
          is_delta ? img.base_seq : 0, blob)) {
    OFTT_LOG_WARN("oftt/ftim", process_->node().name(), "/", process_->name(),
                  ": journal append failed for seq ", img.seq, " (disk full?)");
  }
}

void Ftim::recover_from_journal() {
  store::RecoveredImage rec = journal_->recover_image();
  if (!rec.valid) return;
  CheckpointImage img;
  if (!CheckpointImage::unmarshal(rec.snapshot, img)) return;
  std::uint64_t replayed = 1;
  for (const store::Record& d : rec.deltas) {
    CheckpointImage delta;
    if (!CheckpointImage::unmarshal(d.payload, delta)) break;
    if (delta.incarnation != img.incarnation || delta.base_seq != img.seq) break;
    apply_delta(img, delta);
    ++replayed;
  }
  ckpt_seq_ = img.seq;
  latest_ = std::move(img);
  recovered_from_journal_ = true;
  journal_replayed_records_ = replayed;
  ctr_journal_recoveries_.inc();
  replay_records_.record(static_cast<std::int64_t>(replayed));
  OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                ": recovered checkpoint seq ", latest_->seq, " from local journal (",
                replayed, " records)");
  publish_event(obs::EventKind::kJournalRecovered, "recovered from local journal", replayed,
                latest_->seq);
  // Ask the peers for the suffix this node missed while it was down.
  // Whoever is currently primary answers; everyone else ignores it.
  if (ckpt_peers_.empty()) return;
  CheckpointPull pull;
  pull.component = options_.component;
  pull.have_seq = latest_->seq;
  pull.have_incarnation = latest_->incarnation;
  pull.from_node = process_->node().id();
  Buffer frame = pull.encode();
  for (int peer : ckpt_peers_) ep_->send(peer, frame);
}

std::uint64_t Ftim::peer_acked_seq() const {
  std::uint64_t highest = 0;
  for (int peer : ckpt_peers_) highest = std::max(highest, ep_->acked_tag(peer));
  return highest;
}

std::uint64_t Ftim::min_acked_seq() const {
  if (ckpt_peers_.empty()) return 0;
  std::uint64_t lowest = ~std::uint64_t{0};
  for (int peer : ckpt_peers_) lowest = std::min(lowest, ep_->acked_tag(peer));
  return lowest;
}

std::uint64_t Ftim::acked_by(int node) const { return ep_->acked_tag(node); }

HRESULT Ftim::save_now() {
  if (!active_) return OFTT_E_NOT_PRIMARY;
  take_checkpoint();
  return S_OK;
}

void Ftim::sel_save(const std::string& region, std::uint32_t offset, std::uint32_t size) {
  cells_.push_back(CellSpec{region, offset, size});
}

HRESULT Ftim::distress(const std::string& reason) {
  FtDistress d;
  d.component = options_.component;
  d.reason = reason;
  send_engine(d.encode());
  return S_OK;
}

HRESULT Ftim::watchdog_create(const std::string& name, sim::SimTime timeout) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogCreate;
  wd.component = options_.component;
  wd.watchdog = name;
  wd.timeout = timeout;
  send_engine(wd.encode());
  return S_OK;
}

HRESULT Ftim::watchdog_reset(const std::string& name, sim::SimTime timeout) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogReset;
  wd.component = options_.component;
  wd.watchdog = name;
  wd.timeout = timeout;
  send_engine(wd.encode());
  return S_OK;
}

HRESULT Ftim::set_recovery_rule(int max_local_restarts, int switchover_on_permanent) {
  SetRule rule;
  rule.component = options_.component;
  rule.max_local_restarts = max_local_restarts;
  rule.switchover_on_permanent = switchover_on_permanent;
  send_engine(rule.encode());
  // Keep re-registrations consistent with the new rule.
  options_.max_local_restarts = max_local_restarts;
  options_.switchover_on_permanent = switchover_on_permanent;
  return S_OK;
}

HRESULT Ftim::watchdog_delete(const std::string& name) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogDelete;
  wd.component = options_.component;
  wd.watchdog = name;
  send_engine(wd.encode());
  return S_OK;
}

void Ftim::handle_set_active(const SetActive& msg) {
  role_ = msg.role;
  incarnation_ = msg.incarnation;
  if (msg.active == active_) return;
  active_ = msg.active;
  if (active_) {
    // A restore marks every region dirty and starts a new incarnation:
    // the first checkpoint of this reign must be self-contained.
    force_full_ = true;
    bool restored = false;
    if (latest_) {
      int anomalies = restore_checkpoint(*rt_, *latest_);
      restored = true;
      OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                    ": ACTIVATED with checkpoint seq ", latest_->seq,
                    anomalies ? " (anomalies)" : "");
      publish_event(obs::EventKind::kCheckpointApplied, "restored on activation",
                    latest_->seq, static_cast<std::uint64_t>(anomalies));
    } else {
      OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                    ": ACTIVATED cold (no checkpoint)");
    }
    publish_event(obs::EventKind::kComponentActivated,
                  restored ? "activated from checkpoint" : "activated cold",
                  latest_ ? latest_->seq : 0, incarnation_);
    if (options_.kind == FtimKind::kOpcClient) {
      ckpt_timer_.start(options_.checkpoint_period, [this] { take_checkpoint(); });
    }
    if (on_activate_) on_activate_(restored);
  } else {
    ckpt_timer_.stop();
    OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(), ": DEACTIVATED");
    publish_event(obs::EventKind::kComponentDeactivated, "", 0, incarnation_);
    if (on_deactivate_) on_deactivate_();
  }
}

void Ftim::on_port(const sim::Datagram& d) {
  // Session frames first: the endpoint consumes transport data/acks and
  // re-delivers application payloads through on_frame in order.
  if (ep_ && ep_->handle(d)) return;
  on_frame(d.src_node, d.network_id, d.payload);
}

void Ftim::on_frame(int src_node, int network_id, const Buffer& payload) {
  (void)network_id;
  switch (static_cast<MsgKind>(wire_kind(payload))) {
    case MsgKind::kSetActive: {
      SetActive msg;
      if (SetActive::decode(payload, msg)) handle_set_active(msg);
      break;
    }
    case MsgKind::kCheckpoint: {
      handle_checkpoint(src_node, payload);
      break;
    }
    case MsgKind::kCheckpointNack: {
      std::string component;
      std::uint64_t have_seq = 0;
      if (!decode_checkpoint_nack(payload, component, have_seq)) return;
      // The peer could not apply a delta (sequence gap / wrong
      // incarnation): fall back to a self-contained image next round.
      ++need_full_nacks_;
      force_full_ = true;
      break;
    }
    case MsgKind::kCheckpointPull: {
      CheckpointPull msg;
      if (CheckpointPull::decode(payload, msg)) handle_checkpoint_pull(msg);
      break;
    }
    default:
      break;
  }
}

Ftim::Accept Ftim::accept_image(CheckpointImage&& img, const Buffer& blob) {
  if (img.mode == CheckpointMode::kDelta) {
    if (!latest_ || latest_->incarnation != img.incarnation ||
        latest_->seq != img.base_seq) {
      ++checkpoints_rejected_;
      // Distinguish "already have it" from "cannot get there from
      // here": only a genuine gap warrants forcing a full image.
      const bool stale =
          latest_ && (img.incarnation < latest_->incarnation ||
                      (img.incarnation == latest_->incarnation && img.seq <= latest_->seq));
      return stale ? Accept::kStale : Accept::kGap;
    }
    journal_checkpoint(img, blob);
    apply_delta(*latest_, img);
    ++deltas_applied_;
    ++checkpoints_received_;
    ctr_ckpt_received_.inc();
    return Accept::kApplied;
  }
  // Reject stale images: lower incarnation, or not newer than held.
  if (latest_ && (img.incarnation < latest_->incarnation ||
                  (img.incarnation == latest_->incarnation && img.seq <= latest_->seq))) {
    ++checkpoints_rejected_;
    return Accept::kStale;
  }
  // Journal before adopting: a crash between the two leaves the
  // journal ahead of memory, which recovery tolerates (it replays the
  // newest durable chain).
  journal_checkpoint(img, blob);
  latest_ = std::move(img);
  ++checkpoints_received_;
  ++full_checkpoints_received_;
  ctr_ckpt_received_.inc();
  return Accept::kApplied;
}

void Ftim::handle_checkpoint(int src_node, const Buffer& payload) {
  std::string component;
  Buffer blob;
  if (!decode_checkpoint(payload, component, blob)) return;
  CheckpointImage img;
  if (!CheckpointImage::unmarshal(blob, img)) {
    ++checkpoints_rejected_;
    ctr_ckpt_corrupt_.inc();
    return;
  }
  const bool is_delta = img.mode == CheckpointMode::kDelta;
  switch (accept_image(std::move(img), blob)) {
    case Accept::kApplied:
    case Accept::kStale:
      // No explicit ack: the transport session already confirmed the
      // tagged frame, which is what the primary's watermark reads.
      // Stale re-deliveries (session reset, raced pull reply) drop
      // silently — nacking them would force a redundant full.
      break;
    case Accept::kGap:
      // A delta whose base we do not hold: ask the primary for a
      // self-contained image. (Full images never gap.)
      if (is_delta) {
        ep_->send(src_node,
                  encode_checkpoint_nack(options_.component, latest_ ? latest_->seq : 0));
      }
      break;
  }
}

void Ftim::handle_checkpoint_pull(const CheckpointPull& msg) {
  // Only the active primary owns the authoritative chain; everyone else
  // stays quiet and lets it answer.
  if (!active_ || options_.kind != FtimKind::kOpcClient) return;
  if (msg.component != options_.component || msg.from_node < 0) return;
  // Delta-suffix path: the requester's recovered state is a valid base
  // in our current incarnation, and our journal still holds an unbroken
  // delta chain from there to the newest checkpoint. (Compaction on the
  // last full checkpoint retires older-incarnation records, so chain
  // ids cannot alias across incarnations.)
  if (journal_ && msg.have_seq > 0 && msg.have_incarnation == incarnation_) {
    struct SuffixDelta {
      std::uint64_t seq;
      Buffer blob;
    };
    std::vector<SuffixDelta> suffix;
    std::size_t suffix_bytes = 0;
    std::uint64_t cur = msg.have_seq;
    std::vector<store::Record> records = journal_->recover();
    for (store::Record& r : records) {
      if (r.type == store::RecordType::kDelta && r.base == cur) {
        cur = r.id;
        suffix_bytes += r.payload.size();
        suffix.push_back(SuffixDelta{r.id, std::move(r.payload)});
      }
    }
    if (cur == ckpt_seq_) {
      // Ship the chain as individual session frames: the session keeps
      // them in order on the wire (the old single-frame batch existed
      // only because separate datagrams reordered under latency
      // jitter), and any live delta taken after this point queues
      // strictly behind them on the same session.
      for (SuffixDelta& d : suffix) {
        ep_->send(msg.from_node, encode_checkpoint(options_.component, d.blob),
                  /*tag=*/d.seq);
      }
      if (!suffix.empty()) {
        delta_bytes_sent_ += suffix_bytes;
        ctr_delta_bytes_.inc(static_cast<std::int64_t>(suffix_bytes));
      }
      ++pulls_served_delta_;
      OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                    ": resynced node ", msg.from_node, " with ", suffix.size(),
                    " deltas (", suffix_bytes, " bytes)");
      publish_event(obs::EventKind::kResyncDelta, "delta suffix resync", suffix.size(),
                    suffix_bytes);
      return;
    }
  }
  // Chain broken (or nothing in common): broadcast a fresh full image.
  ++pulls_served_full_;
  publish_event(obs::EventKind::kResyncFull, "full resync", ckpt_seq_ + 1, 0);
  force_full_ = true;
  take_checkpoint();
}

void Ftim::check_engine() {
  auto engine = process_->node().find_process(kEngineProcess);
  if (engine && engine->alive()) return;
  OFTT_LOG_WARN("oftt/ftim", process_->node().name(), "/", process_->name(),
                ": engine is down — restarting it");
  ctr_engine_restarts_.inc();
  publish_event(obs::EventKind::kEngineRestart, "engine dead, restarting", 0, 0);
  process_->node().restart_process(kEngineProcess);
  // The fresh engine knows nothing; re-register right away.
  register_with_engine();
}

}  // namespace oftt::core
